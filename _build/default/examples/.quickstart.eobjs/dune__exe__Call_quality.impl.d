examples/call_quality.ml: Array List Phi_net Phi_predict Phi_sim Phi_tcp Phi_util Printf
