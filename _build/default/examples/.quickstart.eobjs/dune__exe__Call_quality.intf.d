examples/call_quality.mli:
