examples/outage_war_room.ml: Format List Phi_diagnosis Phi_experiments Phi_util Phi_workload Printf
