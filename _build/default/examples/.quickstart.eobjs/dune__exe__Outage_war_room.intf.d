examples/outage_war_room.mli:
