examples/quickstart.ml: Phi Phi_experiments Phi_net Phi_sim Printf
