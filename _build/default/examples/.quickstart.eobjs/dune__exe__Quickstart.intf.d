examples/quickstart.mli:
