examples/two_entities.ml: Array Float List Phi Phi_experiments Phi_net Phi_sim Phi_tcp Phi_util Printf
