examples/two_entities.mli:
