examples/video_cdn.ml: Array Float List Phi Phi_experiments Phi_net Printf String
