examples/video_cdn.mli:
