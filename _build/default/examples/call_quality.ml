(* Performance prediction surfaced to the user (Section 3.5).

   A provider accumulates per-connection measurements keyed by client
   /24.  Before a client starts a download or a VoIP call, the
   application asks the predictor what to expect — and can warn the user
   ("this call is likely to be poor") before dialling.

   History here comes from actual simulated TCP transfers to three
   client populations behind different paths, so the predictor is fed by
   the same machinery the congestion-control experiments use.

   Run with: dune exec examples/call_quality.exe *)

module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module History = Phi_predict.History
module Predictor = Phi_predict.Predictor
module Voip = Phi_predict.Voip

(* Run a few TCP transfers over a dumbbell with the given RTT/bandwidth
   and record what the connections measured. *)
let observe_population history ~prefix24 ~rtt_s ~bw_bps ~loss_probability ~seed =
  let spec =
    { Topology.paper_spec with Topology.n = 2; bottleneck_bw_bps = bw_bps; rtt_s }
  in
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine spec in
  if loss_probability > 0. then
    Phi_net.Link.set_fault_injection dumbbell.Topology.bottleneck
      ~rng:(Phi_util.Prng.create ~seed) ~drop_probability:loss_probability;
  let rng = Phi_util.Prng.create ~seed:(seed + 1) in
  let flows = Phi_tcp.Flow.allocator () in
  let source =
    Phi_tcp.Source.create engine ~rng ~flows
      ~src_node:dumbbell.Topology.senders.(0)
      ~dst_node:dumbbell.Topology.receivers.(0)
      ~index:0
      ~cc_factory:(fun () -> Phi_tcp.Cubic.make Phi_tcp.Cubic.default_params)
      ~on_conn_end:(fun stats ->
        if stats.Phi_tcp.Flow.rtt_samples > 0 then
          History.add history ~prefix24
            {
              History.throughput_bps = Phi_tcp.Flow.throughput_bps stats;
              rtt_s = stats.Phi_tcp.Flow.mean_rtt;
              loss_rate =
                (if stats.Phi_tcp.Flow.segments = 0 then 0.
                 else
                   float_of_int stats.Phi_tcp.Flow.retransmitted_segments
                   /. float_of_int stats.Phi_tcp.Flow.segments);
            })
      { Phi_tcp.Source.mean_on_bytes = 150e3; mean_off_s = 0.3 }
  in
  Phi_tcp.Source.start source;
  Engine.run ~until:240. engine;
  Phi_tcp.Source.abort_current source

let prefix_of a b c = (a lsl 16) lor (b lsl 8) lor c

let () =
  let history = History.create () in
  let populations =
    [
      ("fibre-metro   (10.1.1.0/24)", prefix_of 10 1 1, 0.030, 50e6, 0.000);
      ("dsl-suburb    (23.2.2.0/24)", prefix_of 23 2 2, 0.120, 8e6, 0.002);
      ("satellite-isl (98.3.3.0/24)", prefix_of 98 3 3, 0.600, 4e6, 0.02);
    ]
  in
  print_endline "collecting connection history from simulated transfers...";
  List.iteri
    (fun i (_, prefix24, rtt_s, bw_bps, loss) ->
      observe_population history ~prefix24 ~rtt_s ~bw_bps ~loss_probability:loss
        ~seed:(100 + i))
    populations;
  Printf.printf "history: %d samples\n\n" (History.total history);
  let download_bytes = 25_000_000 in
  List.iter
    (fun (name, prefix24, _, _, _) ->
      Printf.printf "%s\n" name;
      (match Predictor.download_time_s history ~prefix24 ~bytes:download_bytes with
      | Some (expected, pessimistic) ->
        Printf.printf "  25 MB download: ~%.0f s (up to %.0f s if unlucky)\n" expected
          pessimistic
      | None -> print_endline "  download: no estimate");
      (match Predictor.voip_mos history ~prefix24 with
      | Some mos ->
        Printf.printf "  VoIP call:      MOS %.2f (%s)%s\n" mos (Voip.quality_label mos)
          (if mos < 3.1 then "  << warn the user before dialling" else "")
      | None -> print_endline "  VoIP: no estimate"))
    populations;
  (* A client from an unseen /24 in a known /16 still gets an answer. *)
  let cousin = prefix_of 10 1 99 in
  print_endline "\nnew client 10.1.99.0/24 (never seen, same /16 as fibre-metro):";
  match Predictor.throughput_bps history ~prefix24:cousin () with
  | Some est ->
    let level =
      match est.Predictor.level with
      | `P24 -> "/24"
      | `P16 -> "/16"
      | `P8 -> "/8"
      | `Global -> "global"
    in
    Printf.printf "  predicted throughput %.1f Mbps (from %s history, %d samples)\n"
      (est.Predictor.value /. 1e6) level est.Predictor.samples
  | None -> print_endline "  no estimate"
