(* Problem diagnosis from the provider's vantage point (Section 3.4 /
   Figure 5).

   The cloud service watches its own request volume, sliced by (metro,
   ISP, service).  An unreachability event silently knocks out one ISP's
   customers in one metro for two hours.  No client files a ticket; the
   provider's anomaly detector finds and localizes the event from the
   aggregate telemetry alone.

   Run with: dune exec examples/outage_war_room.exe *)

module Rs = Phi_workload.Request_stream
module Figure5 = Phi_experiments.Figure5
module Localize = Phi_diagnosis.Localize
module Anomaly = Phi_diagnosis.Anomaly

let () =
  let outage =
    {
      Rs.start_min = 1440 + (9 * 60);  (* day 2, 09:00 *)
      duration_min = 120;
      scope = { Rs.metro = Some "mumbai"; isp = Some "as9829"; service = None };
      severity = 0.9;
    }
  in
  Printf.printf "telemetry: 3 days of per-minute request counts, %d cells\n"
    (List.length Rs.default_config.Rs.metros
    * List.length Rs.default_config.Rs.isps
    * List.length Rs.default_config.Rs.services);
  Printf.printf "(an outage is hidden somewhere in day 2...)\n\n";
  let r = Figure5.run ~outage ~seed:77 () in
  (match r.Figure5.events with
  | [] -> print_endline "nothing detected — the pager stays quiet (unexpected!)"
  | events ->
    List.iter
      (fun e ->
        let day = e.Anomaly.start_min / 1440 + 1 in
        let hh = e.Anomaly.start_min mod 1440 / 60 and mm = e.Anomaly.start_min mod 60 in
        Printf.printf "PAGE: request volume anomaly, day %d %02d:%02d, %d minutes, drop %.0f%%\n"
          day hh mm (Anomaly.duration_min e) (100. *. e.Anomaly.mean_drop))
      events);
  (match r.Figure5.localization with
  | Some f ->
    Printf.printf "\nwar-room drill-down: %s explains %.0f%% of the deficit (own drop %.0f%%)\n"
      (Format.asprintf "%a" Rs.pp_scope f.Localize.scope)
      (100. *. f.Localize.deficit_share)
      (100. *. f.Localize.own_drop)
  | None -> print_endline "\nno single slice explains the event (global issue?)");
  (* The ranked console an operator would scroll. *)
  (match r.Figure5.events with
  | e :: _ ->
    let rng = Phi_util.Prng.create ~seed:77 in
    let cells = Rs.generate rng Rs.default_config ~outages:[ outage ] in
    let ranked = Localize.rank ~cells ~window:(e.Anomaly.start_min, e.Anomaly.end_min) in
    print_endline "\ntop suspects:";
    List.iteri
      (fun i f ->
        if i < 5 then
          Printf.printf "  %d. %-40s deficit %5.1f%%  drop %5.1f%%\n" (i + 1)
            (Format.asprintf "%a" Rs.pp_scope f.Localize.scope)
            (100. *. f.Localize.deficit_share)
            (100. *. f.Localize.own_drop))
      ranked
  | [] -> ());
  Printf.printf "\nground truth: %s — %s\n"
    (Format.asprintf "%a" Rs.pp_scope outage.Rs.scope)
    (if Figure5.correctly_localized r then "CORRECTLY identified" else "missed")
