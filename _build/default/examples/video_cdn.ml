(* A "five computers" scenario: a video CDN pushing traffic through one
   bottleneck it shares with other entities' traffic.

   The CDN runs four persistent flows: one HD stream it cares deeply
   about and three background bulk transfers.  Using Phi's cross-host
   prioritization (Section 3.3) it gives the HD stream a 4x weight while
   keeping the ensemble exactly as aggressive as four standard TCP flows,
   so the other entities on the link are not harmed.

   Run with: dune exec examples/video_cdn.exe *)

module Topology = Phi_net.Topology
module Pe = Phi_experiments.Priority_experiment

let () =
  let priorities = [| 4.; 1.; 1.; 1. |] in
  Printf.printf "CDN flows: 1 HD stream (priority 4) + 3 bulk transfers (priority 1)\n";
  Printf.printf "competition: 4 standard TCP flows from other entities\n\n";
  let weights = Phi.Priority.ensemble_weights ~priorities in
  Printf.printf "ensemble weights: %s (sum = flows, so the ensemble stays TCP-friendly)\n\n"
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.2f") weights)));
  let r = Pe.run ~priorities ~n_competitors:4 ~duration_s:180. ~spec:Topology.paper_spec ~seed:21 () in
  List.iteri
    (fun i (f : Pe.flow_share) ->
      Printf.printf "  %-12s weight %.2f -> %5.2f Mbps\n"
        (if i = 0 then "HD stream" else "bulk")
        f.Pe.weight
        (f.Pe.throughput_bps /. 1e6))
    r.Pe.entity_flows;
  Printf.printf "\nCDN aggregate:        %5.2f Mbps\n" (r.Pe.entity_aggregate_bps /. 1e6);
  Printf.printf "4 standard flows get: %5.2f Mbps (control run)\n"
    (r.Pe.reference_aggregate_bps /. 1e6);
  Printf.printf "competitors now:      %5.2f Mbps (control: %5.2f Mbps)\n"
    (r.Pe.competitor_aggregate_bps /. 1e6)
    (r.Pe.competitor_reference_bps /. 1e6);
  let hd = (List.hd r.Pe.entity_flows).Pe.throughput_bps in
  let bulk =
    match r.Pe.entity_flows with
    | _ :: rest ->
      List.fold_left (fun acc f -> acc +. f.Pe.throughput_bps) 0. rest
      /. float_of_int (List.length rest)
    | [] -> 0.
  in
  Printf.printf "\nHD stream enjoys %.1fx a bulk flow's bandwidth without hurting other entities\n"
    (hd /. Float.max 1. bulk)
