lib/core/adaptation.ml: Array Phi_util
