lib/core/adaptation.mli:
