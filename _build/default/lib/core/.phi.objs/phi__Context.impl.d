lib/core/context.ml: Array Float Format
