lib/core/context.mli: Format
