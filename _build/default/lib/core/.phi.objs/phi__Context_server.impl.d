lib/core/context_server.ml: Context Float Hashtbl List Phi_sim Phi_tcp Phi_util Stdlib
