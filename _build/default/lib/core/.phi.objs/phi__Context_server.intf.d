lib/core/context_server.mli: Context Phi_sim Phi_tcp
