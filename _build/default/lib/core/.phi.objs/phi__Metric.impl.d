lib/core/metric.ml: Float
