lib/core/metric.mli:
