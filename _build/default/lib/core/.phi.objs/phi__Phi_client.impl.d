lib/core/phi_client.ml: Context Context_server Phi_tcp Policy
