lib/core/phi_client.mli: Context Context_server Phi_tcp Policy
