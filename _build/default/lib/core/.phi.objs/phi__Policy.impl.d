lib/core/policy.ml: Context Hashtbl Phi_tcp
