lib/core/policy.mli: Context Phi_tcp
