lib/core/priority.ml: Array Phi_tcp
