lib/core/priority.mli: Phi_tcp
