lib/core/secure_agg.ml: Array Float Int64 List Phi_util
