lib/core/secure_agg.mli: Phi_util
