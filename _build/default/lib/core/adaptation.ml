module Stats = Phi_util.Stats

let cold_start_jitter_buffer_ms = 120.

let jitter_buffer_ms ~shared_jitter_ms ?(percentile = 95.) ?(margin_ms = 5.) () =
  Stats.percentile shared_jitter_ms ~p:percentile +. margin_ms

let late_packet_fraction ~jitter_ms ~buffer_ms =
  if Array.length jitter_ms = 0 then 0.
  else
    let late = Array.fold_left (fun acc j -> if j > buffer_ms then acc + 1 else acc) 0 jitter_ms in
    float_of_int late /. float_of_int (Array.length jitter_ms)

let dupack_threshold ~reorder_depths ?(target_spurious = 0.01) () =
  if target_spurious <= 0. || target_spurious > 1. then
    invalid_arg "Adaptation.dupack_threshold: target out of (0, 1]";
  let n = Array.length reorder_depths in
  if n = 0 then 3
  else
    (* A fast retransmit at threshold k is spurious when a segment merely
       reordered by depth >= k triggers it; pick the smallest k bounding
       that fraction. *)
    let spurious_fraction k =
      let hits = Array.fold_left (fun acc d -> if d >= k then acc + 1 else acc) 0 reorder_depths in
      float_of_int hits /. float_of_int n
    in
    let rec search k = if spurious_fraction k <= target_spurious then k else search (k + 1) in
    search 3
