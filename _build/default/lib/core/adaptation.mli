(** Informed adaptation without cooperation (Section 3.2).

    Even when the majority of traffic ignores Phi, a minority that shares
    information can adapt endpoint knobs from others' experience instead
    of cold-starting.  The paper's two examples: sizing a streaming jitter
    buffer from shared delay-variation measurements, and adjusting the
    duplicate-ACK fast-retransmit threshold where reordering is
    prevalent. *)

val cold_start_jitter_buffer_ms : float
(** What a client must assume with no information (a conservative fixed
    buffer; 120 ms). *)

val jitter_buffer_ms :
  shared_jitter_ms:float array -> ?percentile:float -> ?margin_ms:float -> unit -> float
(** Initial jitter buffer from the jitter samples other connections on the
    path shared: the given percentile (default 95) plus a margin (default
    5 ms).  Raises [Invalid_argument] on an empty sample. *)

val late_packet_fraction : jitter_ms:float array -> buffer_ms:float -> float
(** Fraction of packets that would miss their playout deadline with the
    given buffer — the quality metric for comparing buffer choices. *)

val dupack_threshold : reorder_depths:int array -> ?target_spurious:float -> unit -> int
(** Smallest threshold (at least the standard 3) keeping the expected
    fraction of spurious fast retransmits under [target_spurious]
    (default 0.01), given the reordering depths other connections
    observed.  An empty sample returns 3. *)
