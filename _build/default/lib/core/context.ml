type t = {
  utilization : float;
  queue_delay_s : float;
  competing_senders : int;
  loss_rate : float;
}

let empty = { utilization = 0.; queue_delay_s = 0.; competing_senders = 0; loss_rate = 0. }

let clamp01 x = Float.max 0. (Float.min 1. x)

let severity t =
  (* Utilization dominates; queueing and population confirm it.  Each term
     is normalized to [0, 1] before blending. *)
  let u = clamp01 t.utilization in
  let q = clamp01 (t.queue_delay_s /. 0.2) in
  let n = clamp01 (float_of_int t.competing_senders /. 64.) in
  let l = clamp01 (t.loss_rate /. 0.05) in
  clamp01 ((0.45 *. u) +. (0.25 *. q) +. (0.15 *. n) +. (0.15 *. l))

type bucket = { u_bucket : int; n_bucket : int; q_bucket : int }

let u_buckets = [| 0.3; 0.6; 0.85; infinity |]
let n_buckets = [| 2; 8; 32; max_int |]
let q_buckets = [| 0.01; 0.05; 0.2; infinity |]

let index_of edges value le =
  let rec search i = if le value edges.(i) then i else search (i + 1) in
  search 0

let bucketize t =
  {
    u_bucket = index_of u_buckets t.utilization (fun v e -> v <= e);
    n_bucket = index_of n_buckets t.competing_senders (fun v e -> v <= e);
    q_bucket = index_of q_buckets t.queue_delay_s (fun v e -> v <= e);
  }

let bucket_distance a b =
  abs (a.u_bucket - b.u_bucket) + abs (a.n_bucket - b.n_bucket) + abs (a.q_bucket - b.q_bucket)

let pp ppf t =
  Format.fprintf ppf "ctx{u=%.2f q=%.1fms n=%d loss=%.2f%%}" t.utilization
    (1000. *. t.queue_delay_s) t.competing_senders (100. *. t.loss_rate)

let pp_bucket ppf b = Format.fprintf ppf "bucket(u=%d n=%d q=%d)" b.u_bucket b.n_bucket b.q_bucket
