(** The congestion context of Section 2.2.2.

    The paper characterizes the state of a network path by (i) the
    bottleneck utilization [u], (ii) the queue occupancy [q] (observed by
    senders as RTT in excess of the minimum) and (iii) the number of
    competing senders [n].  We carry the loss rate as a fourth,
    derived signal since the context server learns it for free from
    connection reports. *)

type t = {
  utilization : float;  (** bottleneck busy fraction in [0, 1] *)
  queue_delay_s : float;  (** estimated queueing delay *)
  competing_senders : int;  (** concurrently active flows on the path *)
  loss_rate : float;  (** recent retransmission fraction in [0, 1] *)
}

val empty : t
(** The all-quiet context a server reports before any information
    arrives. *)

val severity : t -> float
(** Scalar congestion level in [0, 1]; a monotone blend of the three
    primary signals, useful for coarse decisions and ordering. *)

(** {2 Bucketing}

    Policies key shared knowledge on a coarse grid so that a modest number
    of observed workloads covers the context space. *)

type bucket = { u_bucket : int; n_bucket : int; q_bucket : int }

val u_buckets : float array
(** Upper edges of the utilization buckets (last is [infinity]). *)

val n_buckets : int array
(** Upper edges of the competing-sender buckets. *)

val q_buckets : float array
(** Upper edges of the queue-delay buckets, seconds. *)

val bucketize : t -> bucket

val bucket_distance : bucket -> bucket -> int
(** L1 distance on bucket coordinates — used for nearest-neighbour policy
    fallback. *)

val pp : Format.formatter -> t -> unit
val pp_bucket : Format.formatter -> bucket -> unit
