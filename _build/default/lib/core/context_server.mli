(** The Phi context server (Section 2.2.2).

    A per-domain repository of shared network state.  Senders interact
    with it exactly twice per connection: a {!lookup} when the connection
    starts (returning the current {!Context.t} for the path, and counting
    the sender as active) and a {!report} when it ends (feeding the
    connection's own measurements back).  From those minimal signals the
    server estimates the congestion context:

    - [u]: bytes reported over a sliding window, divided by the path
      capacity (configured, or learned as the largest rate ever seen);
    - [q]: EWMA of reported [mean_rtt - min_rtt];
    - [n]: currently active connections (lookups minus reports);
    - loss: EWMA of reported retransmission fractions.

    For the "ideal" variants of the paper's experiments an oracle (e.g. a
    {!Phi_net.Monitor} on the bottleneck) can be attached, replacing the
    report-driven utilization estimate with up-to-the-minute truth. *)

type t

val create : Phi_sim.Engine.t -> ?capacity_bps:float -> ?window_s:float -> unit -> t
(** [window_s] (default 10 s) is the horizon of the utilization estimate.
    Without [capacity_bps] the server learns capacity from the peak
    observed rate. *)

val lookup : t -> path:string -> Context.t
(** Called by a sender when a connection starts. *)

val report :
  t ->
  path:string ->
  bytes:int ->
  duration_s:float ->
  min_rtt:float ->
  mean_rtt:float ->
  retransmitted:int ->
  segments:int ->
  unit
(** Called by a sender when a connection ends.  [min_rtt]/[mean_rtt] may be
    NaN when the connection took no RTT sample. *)

val report_stats : t -> path:string -> Phi_tcp.Flow.conn_stats -> unit
(** Convenience wrapper around {!report} for a finished connection. *)

val peek : t -> path:string -> Context.t
(** Current context without registering a connection (monitoring UIs,
    tests). *)

val set_oracle : t -> path:string -> (unit -> float) -> unit
(** Override the utilization estimate for [path] with live truth. *)

val clear_oracle : t -> path:string -> unit

val active_connections : t -> path:string -> int

val lookup_count : t -> int

val report_count : t -> int
(** Total messages processed — the "minimal overhead" the paper argues
    for is [2] per connection; benches print these counters. *)

val learned_capacity_bps : t -> path:string -> float option
(** The capacity estimate in use for [path] when none was configured. *)
