(** The objective functions of the paper's evaluation.

    Network power is Kleinrock/Giessler's [P = r / d] (throughput over
    delay); the paper extends it with the packet loss rate to
    [P_l = r * (1 - l) / d] and optimizes [P_l] for the Cubic sweeps and
    [log P] for Remy. *)

val power : throughput_bps:float -> delay_s:float -> float
(** [r / d]; 0 when either input is non-positive.  Throughput is taken in
    Mbps and delay in seconds, matching the magnitudes in Table 3. *)

val power_with_loss : throughput_bps:float -> loss_rate:float -> delay_s:float -> float
(** The paper's [P_l = r (1 - l) / d]. *)

val log_power : throughput_bps:float -> delay_s:float -> float
(** Remy's objective, [log (r / d)] = [log r - log d]; [neg_infinity] when
    starved. *)

val compare_desc : float -> float -> int
(** Ordering for "higher metric is better" sorts, treating NaN as worst. *)
