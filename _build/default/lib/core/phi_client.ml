type t = {
  server : Context_server.t;
  policy : Policy.t;
  path : string;
  mutable last_context : Context.t option;
  mutable last_params : Phi_tcp.Cubic.params option;
}

let create ~server ~policy ~path = { server; policy; path; last_context = None; last_params = None }

let cubic_factory t () =
  let ctx = Context_server.lookup t.server ~path:t.path in
  let params = Policy.params_for t.policy ctx in
  t.last_context <- Some ctx;
  t.last_params <- Some params;
  Phi_tcp.Cubic.make params

let on_conn_end t stats = Context_server.report_stats t.server ~path:t.path stats

let last_context t = t.last_context

let last_params t = t.last_params
