(** Sender-side Phi integration.

    Bundles the per-connection protocol of Section 2.2.2 into the two
    hooks {!Phi_tcp.Source} exposes: a congestion-controller factory
    (which performs the context-server lookup and applies the policy) and
    an end-of-connection callback (which reports back). *)

type t

val create : server:Context_server.t -> policy:Policy.t -> path:string -> t

val cubic_factory : t -> unit -> Phi_tcp.Cc.t
(** Looks the context up, asks the policy for parameters and builds a
    Cubic controller.  Exactly one context-server round trip. *)

val on_conn_end : t -> Phi_tcp.Flow.conn_stats -> unit
(** Reports the finished connection to the context server. *)

val last_context : t -> Context.t option
(** The context returned by the most recent lookup (introspection). *)

val last_params : t -> Phi_tcp.Cubic.params option
(** The parameters chosen at the most recent lookup. *)
