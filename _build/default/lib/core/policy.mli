(** Mapping congestion context to TCP Cubic parameters.

    Phi's coordination, concretely: every cooperating sender asks the
    policy which parameter setting fits the current network weather.  A
    policy is a table keyed on {!Context.bucket} — populated from offline
    sweeps exactly like the paper's Section 2.2.1 grid search — with a
    documented heuristic fallback for buckets never swept (derived from
    the paper's observations: shift to smaller initial windows and
    slow-start thresholds, and sharper back-off, as congestion rises). *)

type t

val create : ?default:Phi_tcp.Cubic.params -> unit -> t
(** [default] backs the final fallback; defaults to
    {!Phi_tcp.Cubic.default_params}. *)

val learn : t -> Context.bucket -> Phi_tcp.Cubic.params -> unit
(** Record the optimal parameters found for a bucket (overwrites). *)

val learned : t -> (Context.bucket * Phi_tcp.Cubic.params) list

val params_for : t -> Context.t -> Phi_tcp.Cubic.params
(** Exact bucket hit; otherwise the nearest learned bucket (L1 bucket
    distance, at most 2 away); otherwise {!heuristic}. *)

val heuristic : Context.t -> Phi_tcp.Cubic.params
(** Rule-based parameters from the paper's findings: low congestion
    admits an aggressive start (large initial window, generous ssthresh);
    high congestion calls for a conservative start; persistent heavy
    congestion with deep queues also calls for a larger beta (sharper
    back-off, the Figure 2c observation). *)
