let allocate ~total_weight ~priorities =
  if total_weight <= 0. then invalid_arg "Priority.allocate: total_weight must be positive";
  if Array.length priorities = 0 then invalid_arg "Priority.allocate: no priorities";
  Array.iter
    (fun p -> if p <= 0. then invalid_arg "Priority.allocate: priorities must be positive")
    priorities;
  let sum = Array.fold_left ( +. ) 0. priorities in
  Array.map (fun p -> total_weight *. p /. sum) priorities

let ensemble_weights ~priorities =
  allocate ~total_weight:(float_of_int (Array.length priorities)) ~priorities

let cc_factories ~priorities =
  let weights = ensemble_weights ~priorities in
  Array.map (fun weight () -> Phi_tcp.Reno.make_weighted ~weight ()) weights
