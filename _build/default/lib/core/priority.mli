(** Prioritization across an entity's flows (Section 3.3).

    One of the "five computers" may run many flows through the same
    bottleneck and care more about some (an HD stream) than others (a bulk
    transfer).  Phi lets it skew aggressiveness across flows — weighted
    AIMD, MulTCP-style — while keeping the *ensemble* exactly as
    aggressive as the same number of standard TCP flows. *)

val allocate : total_weight:float -> priorities:float array -> float array
(** Split [total_weight] proportionally to [priorities].  All priorities
    must be positive. *)

val ensemble_weights : priorities:float array -> float array
(** TCP-friendly allocation: total weight equals the number of flows, so
    the ensemble consumes the share of [n] standard flows. *)

val cc_factories : priorities:float array -> (unit -> Phi_tcp.Cc.t) array
(** Weighted-Reno factories with {!ensemble_weights}. *)
