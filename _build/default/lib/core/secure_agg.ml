module Prng = Phi_util.Prng

type session = {
  n : int;
  pair_rngs : Prng.t array array;
      (* pair_rngs.(p).(q) for p < q: both participants draw the same
         stream; p adds the mask, q subtracts it *)
}

let scale = 1e6

let create rng ~participants =
  if participants < 2 then invalid_arg "Secure_agg.create: need at least 2 participants";
  let n = participants in
  (* One shared generator per unordered pair; cloned so both sides read
     the identical stream. *)
  let pair_rngs =
    Array.init n (fun _ -> Array.init n (fun _ -> Prng.create ~seed:0))
  in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      let shared = Prng.split rng in
      pair_rngs.(p).(q) <- shared;
      pair_rngs.(q).(p) <- Prng.copy shared
    done
  done;
  { n; pair_rngs }

let participants t = t.n

let fixed_point value =
  if not (Float.is_finite value) then invalid_arg "Secure_agg.submit: non-finite value";
  Int64.of_float (Float.round (value *. scale))

let submit t ~participant ~value =
  if participant < 0 || participant >= t.n then
    invalid_arg "Secure_agg.submit: unknown participant";
  let masked = ref (fixed_point value) in
  for other = 0 to t.n - 1 do
    if other <> participant then begin
      let mask = Prng.bits64 t.pair_rngs.(participant).(other) in
      (* The lower-indexed side adds, the higher-indexed side subtracts:
         the pair cancels in the aggregate. *)
      if participant < other then masked := Int64.add !masked mask
      else masked := Int64.sub !masked mask
    end
  done;
  !masked

let aggregate t shares =
  if List.length shares <> t.n then
    invalid_arg "Secure_agg.aggregate: need one share per participant";
  let total = List.fold_left Int64.add 0L shares in
  Int64.to_float total /. scale

let mean t shares = aggregate t shares /. float_of_int t.n
