(** Privacy-preserving aggregation across providers (Section 3.1).

    The paper argues that the "five computers" could establish a common
    barometer on the network weather by sharing minimal aggregates, and
    points at secure multiparty computation to shield the inputs.  This
    module implements the standard pairwise-masking protocol for additive
    aggregation: every pair of providers derives a shared mask from a
    common seed; each provider submits its value plus the signed sum of
    its pairwise masks (in fixed point, wrapping 64-bit arithmetic).
    Masks cancel in the sum, so the coordinator learns the total — e.g.
    the average congestion level on a shared path — while each individual
    submission is uniformly distributed and reveals nothing on its own. *)

type session

val create : Phi_util.Prng.t -> participants:int -> session
(** Set up pairwise seeds among [participants] (>= 2) providers. *)

val participants : session -> int

val scale : float
(** Fixed-point resolution of submissions (1e6 units per 1.0). *)

val submit : session -> participant:int -> value:float -> int64
(** The masked share provider [participant] publishes.  Each participant
    may submit once per session round; a second call returns the share
    for the next round (masks are re-derived, so rounds stay
    independent).  Raises [Invalid_argument] on unknown participants or
    non-finite values. *)

val aggregate : session -> int64 list -> float
(** Sum of the submitted values, valid once all participants of the same
    round have submitted (masks cancel).  Raises [Invalid_argument] when
    the number of shares differs from the participant count. *)

val mean : session -> int64 list -> float
(** [aggregate / participants] — the "common barometer" (e.g. mean
    utilization across providers). *)
