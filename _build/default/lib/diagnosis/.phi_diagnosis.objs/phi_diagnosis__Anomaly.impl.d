lib/diagnosis/anomaly.ml: Array Float Format List Series
