lib/diagnosis/anomaly.mli: Format
