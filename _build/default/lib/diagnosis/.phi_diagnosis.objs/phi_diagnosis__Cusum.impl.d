lib/diagnosis/cusum.ml: Array Float List Series Stdlib
