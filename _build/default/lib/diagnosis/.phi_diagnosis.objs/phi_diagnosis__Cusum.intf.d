lib/diagnosis/cusum.mli:
