lib/diagnosis/localize.ml: Array Float List Phi_workload Series
