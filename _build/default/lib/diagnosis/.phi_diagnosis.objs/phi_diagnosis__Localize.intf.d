lib/diagnosis/localize.mli: Phi_workload
