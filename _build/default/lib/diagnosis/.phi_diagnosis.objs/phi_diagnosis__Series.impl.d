lib/diagnosis/series.ml: Array Float Phi_util
