lib/diagnosis/series.mli:
