type event = { start_min : int; end_min : int; min_z : float; mean_drop : float }

let duration_min e = e.end_min - e.start_min

let pp ppf e =
  Format.fprintf ppf "event[%d, %d) dur=%dmin min_z=%.1f drop=%.0f%%" e.start_min e.end_min
    (duration_min e) e.min_z (100. *. e.mean_drop)

let drop actual baseline i =
  if baseline.(i) <= 0. then 0. else Float.max 0. (1. -. (actual.(i) /. baseline.(i)))

let detect ?(threshold = 3.0) ?(min_duration = 5) ~actual ~baseline () =
  if threshold <= 0. then invalid_arg "Anomaly.detect: threshold must be positive";
  if min_duration < 1 then invalid_arg "Anomaly.detect: min_duration must be >= 1";
  let z = Series.robust_z ~actual ~baseline in
  let n = Array.length z in
  let grace = 4 in
  let events = ref [] in
  let finish start last =
    if last - start + 1 >= min_duration then begin
      let min_z = ref 0. and drop_sum = ref 0. in
      for i = start to last do
        if z.(i) < !min_z then min_z := z.(i);
        drop_sum := !drop_sum +. drop actual baseline i
      done;
      events :=
        {
          start_min = start;
          end_min = last + 1;
          min_z = !min_z;
          mean_drop = !drop_sum /. float_of_int (last - start + 1);
        }
        :: !events
    end
  in
  let state = ref None in
  (* [state = Some (start, last_bad, calm)] while inside a candidate run:
     [last_bad] is the most recent anomalous minute and [calm] counts the
     quiet minutes since. *)
  for i = 0 to n - 1 do
    let bad = z.(i) < -.threshold in
    match (!state, bad) with
    | None, false -> ()
    | None, true -> state := Some (i, i, 0)
    | Some (start, _last_bad, _calm), true -> state := Some (start, i, 0)
    | Some (start, last_bad, calm), false ->
      if calm + 1 > grace then begin
        finish start last_bad;
        state := None
      end
      else state := Some (start, last_bad, calm + 1)
  done;
  (match !state with Some (start, last_bad, _) -> finish start last_bad | None -> ());
  List.rev !events
