(** Anomalous-departure detection on robust z-scores. *)

type event = {
  start_min : int;  (** first anomalous minute *)
  end_min : int;  (** one past the last anomalous minute *)
  min_z : float;  (** deepest score inside the event *)
  mean_drop : float;  (** mean of [1 - actual/baseline] inside the event *)
}

val duration_min : event -> int

val pp : Format.formatter -> event -> unit

val detect :
  ?threshold:float ->
  ?min_duration:int ->
  actual:float array ->
  baseline:float array ->
  unit ->
  event list
(** Find maximal runs where the robust z-score stays below [-threshold]
    (default 3.0) and that last at least [min_duration] minutes (default
    5), in time order.  Runs may include up to 4 isolated recovering
    minutes without splitting (hysteresis against noise, so a shallow
    event does not fragment). *)
