(** CUSUM change-point detection — an alternative to the robust-z run
    detector in {!Anomaly}, kept for the detection-latency ablation in
    DESIGN.md §5.

    A one-sided (downward) cumulative-sum scheme on standardized
    residuals: [S_t = max (0, S_{t-1} + (-z_t - k))], alarm when
    [S_t > h].  CUSUM accumulates evidence, so it catches shallow
    sustained drops earlier than a fixed run-length threshold, at the
    cost of a fuzzier event end. *)

type event = {
  alarm_min : int;  (** minute at which the alarm fired *)
  start_min : int;  (** estimated change point (last time [S] was 0) *)
  end_min : int;  (** minute at which [S] returned to 0 *)
}

val detect :
  ?reference:float ->
  ?alarm_threshold:float ->
  actual:float array ->
  baseline:float array ->
  unit ->
  event list
(** [reference] ([k], default 0.5) is the per-minute drift that is
    tolerated; [alarm_threshold] ([h], default 8.0) trades detection
    latency against false alarms.  Events come back in time order. *)

val detection_latency : injected_start:int -> event list -> int option
(** Minutes from the injected change to the first alarm at or after it. *)
