(** Coarse diagnosis by dimensional drill-down (Figure 5).

    Given per-cell series and a detected anomaly window, score every
    candidate slice of the dimension space — each single dimension value
    and each (metro, ISP) pair — by how much of the total traffic deficit
    it explains and how hard it itself dropped.  The diagnosis is the most
    *specific* slice that explains the bulk of the deficit: e.g. Figure
    5's unreachability event localizes to one ISP in one metro. *)

type finding = {
  scope : Phi_workload.Request_stream.scope;
  deficit_share : float;  (** fraction of the global deficit inside this slice *)
  own_drop : float;  (** the slice's own traffic drop fraction in the window *)
}

val candidate_scopes :
  (Phi_workload.Request_stream.cell * float array) list ->
  Phi_workload.Request_stream.scope list
(** Every single-value slice plus every (metro, ISP) pair present. *)

val localize :
  ?explain_threshold:float ->
  ?drop_threshold:float ->
  cells:(Phi_workload.Request_stream.cell * float array) list ->
  window:int * int ->
  unit ->
  finding option
(** The most specific candidate whose deficit share is at least
    [explain_threshold] (default 0.6) and whose own drop is at least
    [drop_threshold] (default 0.3).  [None] means the event is global or
    unexplained by any single slice.  Specificity order: (metro, ISP)
    pairs first, then single dimensions. *)

val rank :
  cells:(Phi_workload.Request_stream.cell * float array) list ->
  window:int * int ->
  finding list
(** All candidates, best (highest deficit share) first — the raw material
    for an operator console. *)
