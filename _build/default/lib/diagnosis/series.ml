module Stats = Phi_util.Stats

let minutes_per_day = 1440

let seasonal_baseline ?(period = minutes_per_day) ?(smooth = 2) series =
  if period < 1 then invalid_arg "Series.seasonal_baseline: period must be positive";
  if smooth < 0 then invalid_arg "Series.seasonal_baseline: negative smooth";
  let n = Array.length series in
  if n = 0 then [||]
  else begin
    (* Median across periods for each phase. *)
    let phase_median = Array.make period 0. in
    for phase = 0 to period - 1 do
      let samples = ref [] in
      let i = ref phase in
      while !i < n do
        samples := series.(!i) :: !samples;
        i := !i + period
      done;
      match !samples with
      | [] -> ()
      | s -> phase_median.(phase) <- Stats.median (Array.of_list s)
    done;
    (* Smooth over neighbouring phases (circularly). *)
    let smoothed =
      Array.init period (fun phase ->
          let acc = ref 0. in
          for d = -smooth to smooth do
            acc := !acc +. phase_median.(((phase + d) mod period + period) mod period)
          done;
          !acc /. float_of_int ((2 * smooth) + 1))
    in
    Array.init n (fun i -> smoothed.(i mod period))
  end

let robust_z ~actual ~baseline =
  let n = Array.length actual in
  if Array.length baseline <> n then invalid_arg "Series.robust_z: length mismatch";
  if n = 0 then [||]
  else begin
    let residuals = Array.init n (fun i -> actual.(i) -. baseline.(i)) in
    let abs_res = Array.map Float.abs residuals in
    let mad = Stats.median abs_res in
    let scale = 1.4826 *. mad in
    if scale <= 0. then Array.make n 0.
    else Array.map (fun r -> r /. scale) residuals
  end
