(** Time-series modelling for request volumes (Section 3.4).

    The model is deliberately simple and robust: a seasonal baseline (the
    median across days of the same minute-of-day, lightly smoothed) plus a
    robust residual score (scaled by the median absolute deviation), so a
    two-hour outage cannot drag its own baseline down. *)

val minutes_per_day : int
(** 1440. *)

val seasonal_baseline : ?period:int -> ?smooth:int -> float array -> float array
(** [seasonal_baseline series] has the same length as [series]; element
    [i] is the median of the observations at the same phase
    [(i mod period)] across all periods, averaged over a [2 * smooth + 1]
    phase window (defaults: [period = 1440], [smooth = 2]).  The series
    need not be a whole number of periods. *)

val robust_z : actual:float array -> baseline:float array -> float array
(** Per-element robust z-score: [(actual - baseline) / (1.4826 * MAD)],
    where the MAD is computed over all residuals.  A constant series
    yields zeros. *)
