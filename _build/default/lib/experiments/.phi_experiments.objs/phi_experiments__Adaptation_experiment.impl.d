lib/experiments/adaptation_experiment.ml: Array Phi Phi_util
