lib/experiments/adaptation_experiment.mli:
