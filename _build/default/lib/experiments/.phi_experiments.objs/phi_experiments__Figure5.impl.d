lib/experiments/figure5.ml: Phi_diagnosis Phi_util Phi_workload
