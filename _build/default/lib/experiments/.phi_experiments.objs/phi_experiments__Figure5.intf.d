lib/experiments/figure5.mli: Phi_diagnosis Phi_workload
