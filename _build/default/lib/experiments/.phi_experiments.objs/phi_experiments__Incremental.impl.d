lib/experiments/incremental.ml: Array Float List Phi_net Phi_tcp Phi_util Scenario
