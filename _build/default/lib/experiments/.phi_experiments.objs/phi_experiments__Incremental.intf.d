lib/experiments/incremental.mli: Phi_net Phi_sim Phi_tcp Scenario
