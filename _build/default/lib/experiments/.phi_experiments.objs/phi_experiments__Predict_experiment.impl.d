lib/experiments/predict_experiment.ml: Array Float List Phi_predict Phi_util
