lib/experiments/predict_experiment.mli:
