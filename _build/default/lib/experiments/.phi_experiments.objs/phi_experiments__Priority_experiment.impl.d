lib/experiments/priority_experiment.ml: Array Phi Phi_net Phi_sim Phi_tcp Phi_util
