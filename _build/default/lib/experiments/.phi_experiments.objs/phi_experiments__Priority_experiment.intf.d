lib/experiments/priority_experiment.mli: Phi_net
