lib/experiments/scenario.ml: Array Float List Phi Phi_net Phi_sim Phi_tcp Phi_util
