lib/experiments/scenario.mli: Phi_net Phi_sim Phi_tcp
