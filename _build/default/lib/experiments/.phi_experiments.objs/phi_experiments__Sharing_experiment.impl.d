lib/experiments/sharing_experiment.ml: List Phi_ipfix Phi_util Phi_workload
