lib/experiments/sharing_experiment.mli: Phi_workload
