lib/experiments/sweep.ml: Array List Phi_tcp Phi_util Scenario
