lib/experiments/sweep.mli: Phi_net Phi_tcp Scenario
