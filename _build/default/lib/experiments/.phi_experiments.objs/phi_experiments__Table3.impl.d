lib/experiments/table3.ml: Array Float List Phi Phi_net Phi_remy Phi_sim Phi_tcp Phi_util Scenario
