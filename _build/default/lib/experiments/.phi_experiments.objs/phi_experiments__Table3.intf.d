lib/experiments/table3.mli: Phi_remy Scenario
