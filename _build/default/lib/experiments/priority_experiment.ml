module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Flow = Phi_tcp.Flow
module Prng = Phi_util.Prng

type flow_share = { weight : float; throughput_bps : float }

type result = {
  entity_flows : flow_share list;
  entity_aggregate_bps : float;
  reference_aggregate_bps : float;
  competitor_aggregate_bps : float;
  competitor_reference_bps : float;
}

(* Persistent flows, each with its own congestion controller; measured
   over the second half of the run.  Returns per-flow delivered bits/s. *)
let run_persistent_mixed ~spec ~duration_s ~seed ~ccs =
  let n = Array.length ccs in
  let spec = { spec with Topology.n } in
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine spec in
  let rng = Prng.create ~seed in
  let flows = Flow.allocator () in
  let senders =
    Array.init n (fun i ->
        let flow = Flow.fresh flows in
        let _receiver =
          Phi_tcp.Receiver.create engine
            ~node:dumbbell.Topology.receivers.(i)
            ~flow
            ~peer:(Topology.sender_id dumbbell i)
        in
        Phi_tcp.Sender.create engine
          ~node:dumbbell.Topology.senders.(i)
          ~flow
          ~dst:(Topology.receiver_id dumbbell i)
          ~cc:(ccs.(i) ()) ~total_segments:Phi_tcp.Sender.persistent_total ~source_index:i ())
  in
  Array.iter
    (fun sender ->
      ignore
        (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () ->
             Phi_tcp.Sender.start sender)))
    senders;
  let half = duration_s /. 2. in
  Engine.run ~until:half engine;
  let acked0 = Array.map Phi_tcp.Sender.acked_segments senders in
  Engine.run ~until:duration_s engine;
  let throughputs =
    Array.mapi
      (fun i sender ->
        float_of_int ((Phi_tcp.Sender.acked_segments sender - acked0.(i)) * Phi_net.Packet.mss * 8)
        /. half)
      senders
  in
  Array.iter Phi_tcp.Sender.abort senders;
  throughputs

let sum a = Array.fold_left ( +. ) 0. a

let run ?(priorities = [| 4.; 1.; 1.; 1. |]) ?(n_competitors = 4) ?(duration_s = 60.) ~spec
    ~seed () =
  let k = Array.length priorities in
  if k = 0 then invalid_arg "Priority_experiment.run: no priorities";
  let weights = Phi.Priority.ensemble_weights ~priorities in
  let entity_ccs = Array.map (fun w () -> Phi_tcp.Reno.make_weighted ~weight:w ()) weights in
  let standard () = Phi_tcp.Reno.make () in
  let competitor_ccs = Array.make n_competitors standard in
  (* Treatment: weighted entity flows + standard competitors. *)
  let treatment =
    run_persistent_mixed ~spec ~duration_s ~seed
      ~ccs:(Array.append entity_ccs competitor_ccs)
  in
  (* Control: same number of flows, all standard. *)
  let control =
    run_persistent_mixed ~spec ~duration_s ~seed
      ~ccs:(Array.make (k + n_competitors) standard)
  in
  let entity = Array.sub treatment 0 k in
  let competitors = Array.sub treatment k n_competitors in
  let control_entity = Array.sub control 0 k in
  let control_competitors = Array.sub control k n_competitors in
  {
    entity_flows =
      Array.to_list
        (Array.mapi (fun i thr -> { weight = weights.(i); throughput_bps = thr }) entity);
    entity_aggregate_bps = sum entity;
    reference_aggregate_bps = sum control_entity;
    competitor_aggregate_bps = sum competitors;
    competitor_reference_bps = sum control_competitors;
  }
