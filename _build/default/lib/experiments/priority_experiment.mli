(** Section 3.3: prioritization across one entity's flows.

    The entity runs [k] persistent flows through the bottleneck with
    unequal priorities (an HD stream vs bulk transfers), implemented as
    weighted AIMD with ensemble weight [k].  Competing standard Reno
    flows from other entities share the link.  Two properties to verify:

    - {b differentiation}: within the entity, throughput is roughly
      proportional to weight;
    - {b ensemble friendliness}: the entity's aggregate throughput is
      close to what [k] standard flows would earn against the same
      competition. *)

type flow_share = { weight : float; throughput_bps : float }

type result = {
  entity_flows : flow_share list;
  entity_aggregate_bps : float;
  reference_aggregate_bps : float;
      (** aggregate of [k] standard flows in the control run *)
  competitor_aggregate_bps : float;
  competitor_reference_bps : float;
}

val run :
  ?priorities:float array ->
  ?n_competitors:int ->
  ?duration_s:float ->
  spec:Phi_net.Topology.spec ->
  seed:int ->
  unit ->
  result
(** Defaults: priorities [| 4; 1; 1; 1 |] (one HD stream, three bulk),
    4 competitors, 60 s.  [spec.n] must accommodate
    [length priorities + n_competitors] sender pairs (it is overridden to
    exactly that). *)
