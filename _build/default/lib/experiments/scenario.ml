module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Link = Phi_net.Link
module Flow = Phi_tcp.Flow
module Cubic = Phi_tcp.Cubic
module Prng = Phi_util.Prng

type workload = { mean_on_bytes : float; mean_off_s : float }

type config = {
  spec : Topology.spec;
  workload : workload;
  duration_s : float;
  seed : int;
}

let low_utilization =
  {
    spec = Topology.paper_spec;
    workload = { mean_on_bytes = 500e3; mean_off_s = 2.0 };
    duration_s = 120.;
    seed = 1;
  }

let high_utilization =
  { low_utilization with workload = { mean_on_bytes = 500e3; mean_off_s = 0.3 } }

let table3 =
  {
    low_utilization with
    workload = { mean_on_bytes = 100e3; mean_off_s = 0.5 };
    duration_s = 60.;
  }

type result = {
  throughput_bps : float;
  queueing_delay_s : float;
  loss_rate : float;
  utilization : float;
  power : float;
  connections : int;
  records : Flow.conn_stats list;
}

let power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s =
  Phi.Metric.power_with_loss ~throughput_bps ~loss_rate
    ~delay_s:(spec.Topology.rtt_s +. queueing_delay_s)

(* Aggregate on-time throughput: total bits over total connection-on
   time, per the paper's "throughput = bits transferred / ontime". *)
let aggregate_throughput records =
  let bits, on_time =
    List.fold_left
      (fun (bits, on_time) r ->
        (bits +. float_of_int (r.Flow.bytes * 8), on_time +. Flow.duration r))
      (0., 0.) records
  in
  if on_time <= 0. then 0. else bits /. on_time

let result_of_run ~spec ~duration_s ~bottleneck records =
  let queueing_delay_s =
    let delivered = Link.packets_delivered bottleneck in
    if delivered = 0 then 0. else Link.total_queue_wait bottleneck /. float_of_int delivered
  in
  let loss_rate =
    let offered = Link.packets_offered bottleneck in
    if offered = 0 then 0. else float_of_int (Link.drops bottleneck) /. float_of_int offered
  in
  let throughput_bps = aggregate_throughput records in
  {
    throughput_bps;
    queueing_delay_s;
    loss_rate;
    utilization = Float.min 1. (Link.busy_time bottleneck /. duration_s);
    power = power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s;
    connections = List.length records;
    records;
  }

let default_factory _index () = Cubic.make Cubic.default_params

let run ?(cc_factory = default_factory) ?(on_conn_end = fun _ -> ()) ?(observe = fun _ _ -> ())
    config =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine config.spec in
  observe engine dumbbell;
  let rng = Prng.create ~seed:config.seed in
  let flows = Flow.allocator () in
  let records = ref [] in
  let sources =
    Array.init config.spec.Topology.n (fun i ->
        Phi_tcp.Source.create engine ~rng:(Prng.split rng) ~flows
          ~src_node:dumbbell.Topology.senders.(i)
          ~dst_node:dumbbell.Topology.receivers.(i)
          ~index:i ~cc_factory:(cc_factory i)
          ~on_conn_end:(fun stats ->
            records := stats :: !records;
            on_conn_end stats)
          {
            Phi_tcp.Source.mean_on_bytes = config.workload.mean_on_bytes;
            mean_off_s = config.workload.mean_off_s;
          })
  in
  Array.iter Phi_tcp.Source.start sources;
  Engine.run ~until:config.duration_s engine;
  Array.iter Phi_tcp.Source.abort_current sources;
  result_of_run ~spec:config.spec ~duration_s:config.duration_s
    ~bottleneck:dumbbell.Topology.bottleneck !records

let run_cubic ~params config = run ~cc_factory:(fun _ () -> Cubic.make params) config

let run_persistent ?(params = Cubic.default_params) ~n_flows ~duration_s ~spec ~seed () =
  let spec = { spec with Topology.n = n_flows } in
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine spec in
  let rng = Prng.create ~seed in
  let flows = Flow.allocator () in
  let senders =
    Array.init n_flows (fun i ->
        let flow = Flow.fresh flows in
        let _receiver =
          Phi_tcp.Receiver.create engine
            ~node:dumbbell.Topology.receivers.(i)
            ~flow
            ~peer:(Topology.sender_id dumbbell i)
        in
        let sender =
          Phi_tcp.Sender.create engine
            ~node:dumbbell.Topology.senders.(i)
            ~flow
            ~dst:(Topology.receiver_id dumbbell i)
            ~cc:(Cubic.make params) ~total_segments:Phi_tcp.Sender.persistent_total
            ~source_index:i ()
        in
        sender)
  in
  (* Stagger flow starts over the first second to desynchronize. *)
  Array.iter
    (fun sender ->
      ignore
        (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () ->
             Phi_tcp.Sender.start sender)))
    senders;
  (* Warm-up half, then measure deltas over the second half. *)
  let half = duration_s /. 2. in
  Engine.run ~until:half engine;
  let bottleneck = dumbbell.Topology.bottleneck in
  let busy0 = Link.busy_time bottleneck in
  let wait0 = Link.total_queue_wait bottleneck in
  let delivered0 = Link.packets_delivered bottleneck in
  let offered0 = Link.packets_offered bottleneck in
  let drops0 = Link.drops bottleneck in
  let bytes0 = Link.bytes_delivered bottleneck in
  Engine.run ~until:duration_s engine;
  let delivered = Link.packets_delivered bottleneck - delivered0 in
  let offered = Link.packets_offered bottleneck - offered0 in
  let queueing_delay_s =
    if delivered = 0 then 0.
    else (Link.total_queue_wait bottleneck -. wait0) /. float_of_int delivered
  in
  let loss_rate =
    if offered = 0 then 0. else float_of_int (Link.drops bottleneck - drops0) /. float_of_int offered
  in
  let throughput_bps = float_of_int ((Link.bytes_delivered bottleneck - bytes0) * 8) /. half in
  let records = Array.to_list (Array.map Phi_tcp.Sender.stats senders) in
  Array.iter Phi_tcp.Sender.abort senders;
  {
    throughput_bps;
    queueing_delay_s;
    loss_rate;
    utilization = Float.min 1. ((Link.busy_time bottleneck -. busy0) /. half);
    power = power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s;
    connections = n_flows;
    records;
  }
