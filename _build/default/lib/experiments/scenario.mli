(** Shared dumbbell scenario runner for the congestion-control
    experiments (Sections 2.2.1–2.2.4).

    One run = one seeded simulation of [n] on/off senders over the Figure
    1 dumbbell, yielding the aggregate measurements every figure and table
    is built from. *)

type workload = {
  mean_on_bytes : float;
  mean_off_s : float;
}

type config = {
  spec : Phi_net.Topology.spec;
  workload : workload;
  duration_s : float;
  seed : int;
}

val low_utilization : config
(** Figure 2a's setting: 8 senders, 500 KB mean transfers, 2 s mean idle
    (~50–60 % bottleneck utilization). *)

val high_utilization : config
(** Figure 2b's setting: same transfers, 0.3 s mean idle (~85–95 %). *)

val table3 : config
(** Table 3's setting: 100 KB mean transfers, 0.5 s mean idle. *)

type result = {
  throughput_bps : float;
      (** aggregate on-time throughput: total bits over total "on" time *)
  queueing_delay_s : float;  (** mean per-packet wait in the bottleneck queue *)
  loss_rate : float;  (** bottleneck drops / packets offered *)
  utilization : float;  (** bottleneck busy fraction over the run *)
  power : float;  (** the paper's P_l, with delay = base RTT + queueing delay *)
  connections : int;
  records : Phi_tcp.Flow.conn_stats list;
}

val power_of : spec:Phi_net.Topology.spec -> throughput_bps:float -> loss_rate:float -> queueing_delay_s:float -> float
(** The P_l formula used everywhere: throughput (Mbps) times delivery rate
    over (base RTT + queueing delay). *)

val run :
  ?cc_factory:(int -> unit -> Phi_tcp.Cc.t) ->
  ?on_conn_end:(Phi_tcp.Flow.conn_stats -> unit) ->
  ?observe:(Phi_sim.Engine.t -> Phi_net.Topology.dumbbell -> unit) ->
  config ->
  result
(** Run the scenario.  [cc_factory index] builds the controller for each
    new connection of sender [index] (default: Cubic with default
    parameters).  [observe] runs right after topology construction — the
    hook for attaching monitors or context servers. *)

val run_cubic : params:Phi_tcp.Cubic.params -> config -> result
(** All senders use the same fixed Cubic parameters (the paper's
    simplified setting of Section 2.2.1). *)

val run_persistent :
  ?params:Phi_tcp.Cubic.params ->
  n_flows:int ->
  duration_s:float ->
  spec:Phi_net.Topology.spec ->
  seed:int ->
  unit ->
  result
(** Figure 2c's setting: [n_flows] long-running Cubic connections
    (one per sender/receiver pair, [spec.n] forced to [n_flows]),
    measured over the second half of the run to skip the start-up
    transient.  Throughput is the aggregate delivery rate. *)
