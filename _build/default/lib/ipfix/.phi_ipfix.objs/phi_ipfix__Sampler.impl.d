lib/ipfix/sampler.ml: List Phi_util Phi_workload Stdlib
