lib/ipfix/sampler.mli: Phi_util Phi_workload
