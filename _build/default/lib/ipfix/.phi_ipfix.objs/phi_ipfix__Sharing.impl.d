lib/ipfix/sharing.ml: Array Hashtbl List Phi_util Sampler
