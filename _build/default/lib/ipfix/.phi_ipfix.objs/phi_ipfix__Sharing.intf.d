lib/ipfix/sharing.mli: Sampler
