(** Packet-sampled flow export, IPFIX-style (RFC 7011).

    Routers sample one in [rate] packets and export the sampled packet
    headers to a collector.  Sampling a flow of [p] packets therefore
    observes it with [Binomial(p, 1/rate)] draws — which is how we sample
    flow records directly, without materializing packets. *)

type record = {
  ts : float;  (** timestamp of the sampled packet *)
  src_ip : int;
  src_port : int;
  dst_ip : int;
  dst_port : int;
}

val key : record -> int * int * int * int
(** The flow 4-tuple. *)

val default_rate : int
(** 4096, the rate used in Section 2.1. *)

val sample_flows :
  Phi_util.Prng.t -> rate:int -> Phi_workload.Cloud_trace.flow list -> record list
(** Export records for every sampled packet; a flow hit [k] times yields
    [k] records at uniform times within its lifetime.  Ordered by
    timestamp. *)

val binomial : Phi_util.Prng.t -> n:int -> p:float -> int
(** Exact Bernoulli summation below 512 trials, Poisson approximation
    above (valid here since [p] is tiny).  Exposed for tests. *)
