module Stats = Phi_util.Stats

type stats = { flows_observed : int; slices : int; sharing_counts : float array }

type slice_key = { subnet : int; minute : int }

let analyze records =
  (* slice -> set of distinct flow keys seen in it *)
  let slices : (slice_key, (int * int * int * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun (r : Sampler.record) ->
      let key = { subnet = r.Sampler.dst_ip lsr 8; minute = int_of_float (r.Sampler.ts /. 60.) } in
      let flows =
        match Hashtbl.find_opt slices key with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 4 in
          Hashtbl.add slices key tbl;
          tbl
      in
      Hashtbl.replace flows (Sampler.key r) ())
    records;
  (* flow -> maximum "others in my slice" over the slices it appears in *)
  let per_flow : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _key flows ->
      let others = Hashtbl.length flows - 1 in
      Hashtbl.iter
        (fun flow () ->
          match Hashtbl.find_opt per_flow flow with
          | Some best when best >= others -> ()
          | _ -> Hashtbl.replace per_flow flow others)
        flows)
    slices;
  let sharing_counts =
    Hashtbl.fold (fun _ others acc -> float_of_int others :: acc) per_flow []
    |> Array.of_list
  in
  { flows_observed = Hashtbl.length per_flow; slices = Hashtbl.length slices; sharing_counts }

let flows_observed t = t.flows_observed
let slices t = t.slices
let sharing_counts t = t.sharing_counts

let fraction_sharing_at_least t k =
  if Array.length t.sharing_counts = 0 then 0.
  else Stats.fraction_at_least t.sharing_counts ~threshold:(float_of_int k)

let ccdf t ~thresholds = List.map (fun k -> (k, fraction_sharing_at_least t k)) thresholds
