(** The Section 2.1 path-sharing analysis.

    Group sampled packet records into (destination /24, minute) slices —
    the "compact spatio-temporal granularity" within which all flows can
    be assumed to follow the same WAN path — count distinct flows per
    slice, and ask: for a typical flow, how many *other* flows share its
    path?  The paper reports that, even at 1-in-4096 sampling, 50 % of
    flows share with at least 5 others and 12 % with at least 100. *)

type stats

val analyze : Sampler.record list -> stats
(** Each observed flow is attributed to the (subnet, minute) slices in
    which it was sampled; its sharing count in a slice is the number of
    other distinct flows seen there.  A flow appearing in several slices
    contributes its maximum sharing count. *)

val flows_observed : stats -> int

val slices : stats -> int
(** Number of non-empty (subnet, minute) slices. *)

val sharing_counts : stats -> float array
(** Per observed flow: how many others shared its slice. *)

val fraction_sharing_at_least : stats -> int -> float
(** E.g. [fraction_sharing_at_least stats 5 = 0.5] reproduces the paper's
    "50 % of flows share the WAN path with at least 5 other flows". *)

val ccdf : stats -> thresholds:int list -> (int * float) list
(** [(k, fraction with >= k)] pairs, ready for printing. *)
