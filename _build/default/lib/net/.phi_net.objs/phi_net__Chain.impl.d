lib/net/chain.ml: Array Float Link Node Packet Phi_sim Stdlib
