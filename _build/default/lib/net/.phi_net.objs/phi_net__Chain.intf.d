lib/net/chain.mli: Link Node Phi_sim
