lib/net/link.ml: Float Packet Phi_sim Phi_util Queue Stdlib
