lib/net/link.mli: Packet Phi_sim Phi_util
