lib/net/monitor.ml: Array Float Link List Phi_sim
