lib/net/monitor.mli: Link Phi_sim
