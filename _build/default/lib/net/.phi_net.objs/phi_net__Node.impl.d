lib/net/node.ml: Hashtbl Link Packet Printf
