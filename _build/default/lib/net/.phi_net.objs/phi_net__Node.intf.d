lib/net/node.mli: Link Packet Phi_sim
