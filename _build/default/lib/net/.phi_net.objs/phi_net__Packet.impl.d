lib/net/packet.ml: Format List
