lib/net/packet.mli: Format
