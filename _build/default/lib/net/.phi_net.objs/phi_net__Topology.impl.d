lib/net/topology.ml: Array Float Link Node Packet Phi_sim Stdlib
