lib/net/topology.mli: Link Node Phi_sim
