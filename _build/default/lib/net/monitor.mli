(** Periodic link instrumentation.

    Samples a link on a fixed interval and keeps per-bin utilization and
    queue-occupancy series.  This is both the measurement device behind
    the reproduced figures and the oracle feeding "up-to-the-minute"
    bottleneck utilization to Remy-Phi-ideal senders (Section 2.2.4). *)

type t

val create : Phi_sim.Engine.t -> Link.t -> interval_s:float -> t
(** Starts sampling immediately; one sample is recorded at the end of each
    interval. *)

val current_utilization : t -> float
(** Utilization of the most recently completed bin (0 before the first
    bin closes). *)

val current_queue : t -> int
(** Instantaneous queue length of the monitored link. *)

val mean_utilization : t -> float
(** Busy fraction since the monitor was created. *)

val mean_queue : t -> float
(** Average of the per-bin queue samples (0 if none yet). *)

val utilization_series : t -> (float * float) array
(** [(bin_end_time, busy_fraction)] pairs. *)

val queue_series : t -> (float * int) array

val stop : t -> unit
(** Stop sampling (series remain readable). *)
