(** Forwarding nodes.

    A node either consumes a packet addressed to it (dispatching on the
    flow id to the handler a sender/receiver registered) or forwards it on
    the link its routing table maps the destination to.  This is all the
    routing the paper's dumbbell experiments need, while staying general
    enough for arbitrary topologies. *)

type t

val create : Phi_sim.Engine.t -> id:int -> t

val id : t -> int

val add_route : t -> dst:int -> Link.t -> unit
(** Route packets destined to node [dst] out of the given link.  Replaces
    any previous route for [dst]. *)

val set_default_route : t -> Link.t -> unit
(** Fallback when no per-destination route matches. *)

val bind_flow : t -> flow:int -> (Packet.t -> unit) -> unit
(** Local delivery handler for packets of [flow] addressed to this node. *)

val unbind_flow : t -> flow:int -> unit

val receive : t -> Packet.t -> unit
(** Entry point used by links (and by local senders to originate traffic).
    Packets addressed to this node with no bound flow are counted and
    dropped; packets with no route raise [Failure]. *)

val unroutable_drops : t -> int
val unclaimed_deliveries : t -> int
