type kind =
  | Data
  | Ack of {
      echo_sent_at : float option;
      echo_tx_time : float;
      sack : (int * int) list;
      ece : bool;
    }

type t = {
  flow : int;
  src : int;
  dst : int;
  seq : int;
  size : int;
  kind : kind;
  sent_at : float;
  retransmit : bool;
  mutable ce : bool;
  mutable enqueued_at : float;
}

let mss = 1500
let ack_size = 40
let max_sack_blocks = 3

let data ~flow ~src ~dst ~seq ~now ~retransmit =
  {
    flow;
    src;
    dst;
    seq;
    size = mss;
    kind = Data;
    sent_at = now;
    retransmit;
    ce = false;
    enqueued_at = now;
  }

let ack ~flow ~src ~dst ~next_expected ~echo_sent_at ~echo_tx_time ~sack ~ece ~now =
  if List.length sack > max_sack_blocks then invalid_arg "Packet.ack: too many SACK blocks";
  {
    flow;
    src;
    dst;
    seq = next_expected;
    size = ack_size;
    kind = Ack { echo_sent_at; echo_tx_time; sack; ece };
    sent_at = now;
    retransmit = false;
    ce = false;
    enqueued_at = now;
  }

let is_data t = match t.kind with Data -> true | Ack _ -> false

let pp ppf t =
  let kind = match t.kind with Data -> "data" | Ack _ -> "ack" in
  Format.fprintf ppf "%s[flow=%d %d->%d seq=%d %dB t=%.4f]" kind t.flow t.src t.dst t.seq
    t.size t.sent_at
