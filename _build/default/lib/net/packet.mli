(** Packets exchanged inside the simulator.

    Segments are counted in MSS-sized units (as in ns-2's TCP agents):
    [seq] is a segment number on data packets and a cumulative
    next-expected segment number on ACKs.  ACKs echo the original send
    timestamp so senders can take RTT samples without keeping a
    retransmission map, and carry SACK blocks describing out-of-order
    data the receiver holds (the paper's ns-2 Cubic is the SACK-enabled
    linux agent). *)

type kind =
  | Data
  | Ack of {
      echo_sent_at : float option;
          (** send time of the segment that triggered this ACK; [None] when
              that segment was a retransmission (Karn's algorithm: such
              ACKs must not produce RTT samples) *)
      echo_tx_time : float;
          (** transmission time of the (data) packet that triggered this
              ACK, echoed unconditionally; FIFO paths make this a precise
              delivery-order signal (RACK-style loss detection) *)
      sack : (int * int) list;
          (** up to {!max_sack_blocks} half-open [\[lo, hi)] ranges of
              segments held above the cumulative ACK, most recent first *)
      ece : bool;
          (** ECN-echo: the data packet triggering this ACK carried a
              congestion-experienced mark (RFC 3168, simulator-grade: not
              sticky, no CWR handshake) *)
    }

type t = {
  flow : int;  (** globally unique flow identifier *)
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  seq : int;
  size : int;  (** wire size in bytes *)
  kind : kind;
  sent_at : float;  (** origination time (set by the sender) *)
  retransmit : bool;  (** true when this data segment is a retransmission *)
  mutable ce : bool;
      (** congestion experienced: set by an ECN-marking queue in place of
          dropping (data packets are always ECN-capable here) *)
  mutable enqueued_at : float;  (** bookkeeping for per-queue waiting time *)
}

val mss : int
(** Data segment wire size in bytes (1500, Ethernet-sized as in the ns-2
    setup). *)

val ack_size : int
(** ACK wire size in bytes (40). *)

val max_sack_blocks : int
(** Maximum SACK ranges carried per ACK (3, as in a real TCP header with
    timestamps). *)

val data : flow:int -> src:int -> dst:int -> seq:int -> now:float -> retransmit:bool -> t

val ack :
  flow:int ->
  src:int ->
  dst:int ->
  next_expected:int ->
  echo_sent_at:float option ->
  echo_tx_time:float ->
  sack:(int * int) list ->
  ece:bool ->
  now:float ->
  t
(** Raises [Invalid_argument] when more than {!max_sack_blocks} ranges are
    supplied. *)

val is_data : t -> bool

val pp : Format.formatter -> t -> unit
