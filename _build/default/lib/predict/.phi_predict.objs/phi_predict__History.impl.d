lib/predict/history.ml: Hashtbl List Phi_util
