lib/predict/history.mli:
