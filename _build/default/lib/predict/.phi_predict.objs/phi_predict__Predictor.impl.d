lib/predict/predictor.ml: Array History List Phi_util Voip
