lib/predict/predictor.mli: History
