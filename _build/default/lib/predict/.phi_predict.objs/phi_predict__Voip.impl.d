lib/predict/voip.ml: Float
