lib/predict/voip.mli:
