module Prng = Phi_util.Prng

type sample = { throughput_bps : float; rtt_s : float; loss_rate : float }

type reservoir = { mutable kept : sample list; mutable kept_count : int; mutable seen : int }

type t = {
  per_prefix_cap : int;
  rng : Prng.t;
  by_p24 : (int, reservoir) Hashtbl.t;
  by_p16 : (int, reservoir) Hashtbl.t;
  by_p8 : (int, reservoir) Hashtbl.t;
  global : reservoir;
}

let fresh_reservoir () = { kept = []; kept_count = 0; seen = 0 }

let create ?(per_prefix_cap = 512) () =
  if per_prefix_cap < 1 then invalid_arg "History.create: cap must be >= 1";
  {
    per_prefix_cap;
    rng = Prng.create ~seed:0x9e11;
    by_p24 = Hashtbl.create 256;
    by_p16 = Hashtbl.create 64;
    by_p8 = Hashtbl.create 16;
    global = fresh_reservoir ();
  }

let reservoir_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = fresh_reservoir () in
    Hashtbl.add tbl key r;
    r

(* Algorithm R: every sample survives with probability cap/seen. *)
let reservoir_add t r sample =
  r.seen <- r.seen + 1;
  if r.kept_count < t.per_prefix_cap then begin
    r.kept <- sample :: r.kept;
    r.kept_count <- r.kept_count + 1
  end
  else if Prng.int t.rng ~bound:r.seen < t.per_prefix_cap then begin
    let victim = Prng.int t.rng ~bound:r.kept_count in
    r.kept <- List.mapi (fun i s -> if i = victim then sample else s) r.kept
  end

let keys_of prefix24 = (prefix24, prefix24 lsr 8, prefix24 lsr 16)

let add t ~prefix24 sample =
  let p24, p16, p8 = keys_of prefix24 in
  reservoir_add t (reservoir_of t.by_p24 p24) sample;
  reservoir_add t (reservoir_of t.by_p16 p16) sample;
  reservoir_add t (reservoir_of t.by_p8 p8) sample;
  reservoir_add t t.global sample

let reservoir_at t ~level ~prefix24 =
  let p24, p16, p8 = keys_of prefix24 in
  match level with
  | `P24 -> Hashtbl.find_opt t.by_p24 p24
  | `P16 -> Hashtbl.find_opt t.by_p16 p16
  | `P8 -> Hashtbl.find_opt t.by_p8 p8
  | `Global -> Some t.global

let samples t ~level ~prefix24 =
  match reservoir_at t ~level ~prefix24 with None -> [] | Some r -> r.kept

let count t ~level ~prefix24 =
  match reservoir_at t ~level ~prefix24 with None -> 0 | Some r -> r.kept_count

let total t = t.global.seen
