(** Transfer-history store backing performance prediction (Section 3.5).

    A cloud provider sees enormous volumes of per-connection measurements;
    keyed by client /24 prefix they become a predictor for the next
    connection to the same place.  The store keeps bounded per-prefix
    reservoirs and aggregates them up a prefix hierarchy
    (/24 → /16 → /8 → global) so sparse destinations still get
    estimates. *)

type sample = {
  throughput_bps : float;
  rtt_s : float;
  loss_rate : float;
}

type t

val create : ?per_prefix_cap:int -> unit -> t
(** [per_prefix_cap] (default 512) bounds each /24 reservoir; once full,
    reservoir sampling keeps a uniform subset (deterministic, seeded
    internally). *)

val add : t -> prefix24:int -> sample -> unit

val samples : t -> level:[ `P24 | `P16 | `P8 | `Global ] -> prefix24:int -> sample list
(** All retained samples under the ancestor of [prefix24] at [level]. *)

val count : t -> level:[ `P24 | `P16 | `P8 | `Global ] -> prefix24:int -> int

val total : t -> int
(** Total samples retained across all prefixes. *)
