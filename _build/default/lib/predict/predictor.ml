module Stats = Phi_util.Stats

type estimate = { value : float; level : [ `P24 | `P16 | `P8 | `Global ]; samples : int }

let min_samples = 8

let levels = [ `P24; `P16; `P8; `Global ]

let estimate history ~prefix24 ~quantile ~field =
  let pick level =
    let samples = History.samples history ~level ~prefix24 in
    let n = List.length samples in
    let enough = n >= min_samples || (level = `Global && n > 0) in
    if not enough then None
    else
      let values = Array.of_list (List.map field samples) in
      Some { value = Stats.percentile values ~p:(quantile *. 100.); level; samples = n }
  in
  List.find_map pick levels

let throughput_bps history ~prefix24 ?(quantile = 0.5) () =
  estimate history ~prefix24 ~quantile ~field:(fun (s : History.sample) -> s.throughput_bps)

let rtt_s history ~prefix24 ?(quantile = 0.5) () =
  estimate history ~prefix24 ~quantile ~field:(fun (s : History.sample) -> s.rtt_s)

let loss_rate history ~prefix24 ?(quantile = 0.5) () =
  estimate history ~prefix24 ~quantile ~field:(fun (s : History.sample) -> s.loss_rate)

let download_time_s history ~prefix24 ~bytes =
  if bytes < 0 then invalid_arg "Predictor.download_time_s: negative size";
  match
    ( throughput_bps history ~prefix24 ~quantile:0.5 (),
      throughput_bps history ~prefix24 ~quantile:0.1 () )
  with
  | Some median, Some p10 when median.value > 0. && p10.value > 0. ->
    let bits = float_of_int (bytes * 8) in
    Some (bits /. median.value, bits /. p10.value)
  | _ -> None

let voip_mos history ~prefix24 =
  match (rtt_s history ~prefix24 (), loss_rate history ~prefix24 ()) with
  | Some rtt, Some loss -> Some (Voip.mos ~rtt_s:rtt.value ~loss_rate:loss.value)
  | _ -> None
