(** Hierarchical performance prediction (Section 3.5).

    Before an application starts a transfer or call, ask what performance
    to expect.  Predictions use the deepest prefix level with enough
    history, falling back /24 → /16 → /8 → global. *)

type estimate = {
  value : float;
  level : [ `P24 | `P16 | `P8 | `Global ];
  samples : int;
}

val min_samples : int
(** History required at a level before it is trusted (8). *)

val throughput_bps : History.t -> prefix24:int -> ?quantile:float -> unit -> estimate option
(** Predicted throughput at the given quantile (default the median).
    [None] only when the store is empty. *)

val rtt_s : History.t -> prefix24:int -> ?quantile:float -> unit -> estimate option

val loss_rate : History.t -> prefix24:int -> ?quantile:float -> unit -> estimate option

val download_time_s :
  History.t -> prefix24:int -> bytes:int -> (float * float) option
(** [(expected, pessimistic)] completion times for a transfer: the median
    and the 10th-percentile throughput estimates. *)

val voip_mos : History.t -> prefix24:int -> float option
(** Predicted call quality (1–4.5 MOS) from median RTT and loss via
    {!Voip.mos}. *)
