let r_factor ~rtt_s ~loss_rate =
  let rtt_s = Float.max 0. rtt_s in
  let loss_rate = Float.max 0. (Float.min 1. loss_rate) in
  let one_way_ms = (rtt_s /. 2. *. 1000.) +. 30. in
  let delay_impairment =
    (0.024 *. one_way_ms)
    +. if one_way_ms > 177.3 then 0.11 *. (one_way_ms -. 177.3) else 0.
  in
  let loss_impairment = 30. *. log (1. +. (15. *. loss_rate)) in
  93.2 -. delay_impairment -. loss_impairment

let mos ~rtt_s ~loss_rate =
  let r = r_factor ~rtt_s ~loss_rate in
  let raw =
    if r <= 0. then 1.
    else if r >= 100. then 4.5
    else 1. +. (0.035 *. r) +. (7e-6 *. r *. (r -. 60.) *. (100. -. r))
  in
  Float.max 1. (Float.min 4.5 raw)

let quality_label mos =
  if mos >= 4.0 then "excellent"
  else if mos >= 3.6 then "good"
  else if mos >= 3.1 then "fair"
  else if mos >= 2.6 then "poor"
  else "bad"
