(** Call-quality scoring: a simplified ITU-T G.107 E-model, mapping
    network RTT and loss to a mean opinion score.  Used to surface "this
    call is likely to be poor" predictions (Section 3.5's example). *)

val r_factor : rtt_s:float -> loss_rate:float -> float
(** Transmission rating 0–93.2: base quality minus delay impairment
    (one-way delay taken as RTT/2 plus a fixed 30 ms of processing and
    jitter buffering) minus the G.711 loss impairment
    [30 ln (1 + 15 e)]. *)

val mos : rtt_s:float -> loss_rate:float -> float
(** The standard R → MOS mapping, clamped to [1, 4.5]. *)

val quality_label : float -> string
(** Human label for a MOS: "excellent" (>= 4.0), "good" (>= 3.6),
    "fair" (>= 3.1), "poor" (>= 2.6), "bad" otherwise. *)
