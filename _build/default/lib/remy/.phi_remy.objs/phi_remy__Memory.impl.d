lib/remy/memory.ml: Float
