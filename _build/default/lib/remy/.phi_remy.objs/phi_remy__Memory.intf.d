lib/remy/memory.mli:
