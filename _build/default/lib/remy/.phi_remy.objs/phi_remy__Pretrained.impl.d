lib/remy/pretrained.ml: Rule_table
