lib/remy/pretrained.mli: Rule_table
