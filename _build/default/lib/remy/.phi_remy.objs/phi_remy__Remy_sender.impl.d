lib/remy/remy_sender.ml: Float Memory Phi_net Phi_sim Phi_tcp Rule_table Whisker
