lib/remy/remy_sender.mli: Phi_net Phi_sim Phi_tcp Rule_table
