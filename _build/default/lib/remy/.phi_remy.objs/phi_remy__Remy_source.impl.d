lib/remy/remy_source.ml: Float List Phi_net Phi_sim Phi_tcp Phi_util Remy_sender Rule_table Stdlib
