lib/remy/remy_source.mli: Phi_net Phi_sim Phi_tcp Phi_util Remy_sender Rule_table
