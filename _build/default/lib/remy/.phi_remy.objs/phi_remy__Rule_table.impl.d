lib/remy/rule_table.ml: Array List Printf String Whisker
