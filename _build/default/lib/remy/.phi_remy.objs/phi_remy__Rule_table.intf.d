lib/remy/rule_table.mli: Whisker
