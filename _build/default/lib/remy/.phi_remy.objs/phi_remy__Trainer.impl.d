lib/remy/trainer.ml: Array Float List Memory Phi_net Phi_sim Phi_tcp Phi_util Printf Remy_sender Remy_source Rule_table Stdlib Whisker
