lib/remy/trainer.mli: Phi_net Rule_table
