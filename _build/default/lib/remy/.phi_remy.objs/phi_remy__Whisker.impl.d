lib/remy/whisker.ml: Array Float Format List Printf String
