lib/remy/whisker.mli: Format
