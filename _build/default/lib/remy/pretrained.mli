(** Trained rule tables shipped with the library.

    Both tables were produced by {!Trainer.train} on
    {!Trainer.default_scenarios} (see [bin/train_remy.ml] for the exact
    invocation) and embedded here so Table 3 reproduces without a training
    run.  Retrain and re-embed with [phi-cli train-remy]. *)

val remy : unit -> Rule_table.t
(** Classic 3-dimensional Remy table. *)

val remy_phi : unit -> Rule_table.t
(** 4-dimensional table whose memory includes bottleneck utilization
    (trained with the ideal, up-to-the-minute feed, as in the paper). *)
