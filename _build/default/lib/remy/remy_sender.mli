(** A Remy sender: congestion window plus paced sends, both dictated by a
    whisker {!Rule_table.t}.

    On every (RTT-sampling) ACK the sender updates its {!Memory.t}, looks
    up the matching whisker and applies its action: the window map and the
    minimum intersend spacing.  Loss recovery is a plain go-back-N
    retransmission timeout — Remy's control law itself is loss-agnostic.

    Utilization feeds (the Phi extension) come in two flavours matching
    the paper: [`Live] re-reads an oracle at every ACK (Remy-Phi-ideal),
    [`At_start] samples once when the connection begins (Remy-Phi-
    practical); [`None] is classic Remy. *)

type util_feed =
  [ `None  (** classic Remy: 3-dimensional memory *)
  | `At_start of (unit -> float)  (** sampled once at connection start *)
  | `Live of (unit -> float)  (** re-read on every ACK *) ]

type t

val create :
  Phi_sim.Engine.t ->
  node:Phi_net.Node.t ->
  flow:int ->
  dst:int ->
  table:Rule_table.t ->
  util:util_feed ->
  total_segments:int ->
  ?source_index:int ->
  ?on_complete:(Phi_tcp.Flow.conn_stats -> unit) ->
  unit ->
  t
(** Raises [Invalid_argument] when the table's dimensionality does not
    match the utilization feed (3 for [`None], 4 otherwise). *)

val start : t -> unit

val abort : t -> unit

val cwnd : t -> float
val acked_segments : t -> int
val completed : t -> bool
val timeouts : t -> int

val stats : t -> Phi_tcp.Flow.conn_stats
