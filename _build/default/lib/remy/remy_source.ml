module Engine = Phi_sim.Engine
module Node = Phi_net.Node
module Packet = Phi_net.Packet
module Prng = Phi_util.Prng
module Dist = Phi_util.Dist
module Flow = Phi_tcp.Flow
module Receiver = Phi_tcp.Receiver

type config = { mean_on_bytes : float; mean_off_s : float }

type t = {
  engine : Engine.t;
  rng : Prng.t;
  flows : Flow.allocator;
  src_node : Node.t;
  dst_node : Node.t;
  index : int;
  table : Rule_table.t;
  util : Remy_sender.util_feed;
  on_conn_end : Flow.conn_stats -> unit;
  config : config;
  mutable running : bool;
  mutable started : bool;
  mutable current : (Remy_sender.t * Receiver.t) option;
  mutable records : Flow.conn_stats list;
  mutable completed : int;
}

let off_delay t =
  if t.config.mean_off_s <= 0. then 0. else Dist.exponential t.rng ~mean:t.config.mean_off_s

let transfer_segments t =
  let bytes = Dist.exponential t.rng ~mean:t.config.mean_on_bytes in
  Stdlib.max 1 (int_of_float (Float.round (bytes /. float_of_int Packet.mss)))

let rec launch t =
  if t.running then begin
    let flow = Flow.fresh t.flows in
    let receiver = Receiver.create t.engine ~node:t.dst_node ~flow ~peer:(Node.id t.src_node) in
    let on_complete stats =
      Receiver.close receiver;
      t.current <- None;
      t.records <- stats :: t.records;
      t.completed <- t.completed + 1;
      t.on_conn_end stats;
      schedule_next t
    in
    let sender =
      Remy_sender.create t.engine ~node:t.src_node ~flow ~dst:(Node.id t.dst_node)
        ~table:t.table ~util:t.util ~total_segments:(transfer_segments t)
        ~source_index:t.index ~on_complete ()
    in
    t.current <- Some (sender, receiver);
    Remy_sender.start sender
  end

and schedule_next t =
  if t.running then
    ignore (Engine.schedule_after t.engine ~delay:(off_delay t) (fun () -> launch t))

let create engine ~rng ~flows ~src_node ~dst_node ~index ~table ~util
    ?(on_conn_end = fun _ -> ()) config =
  if config.mean_on_bytes <= 0. then
    invalid_arg "Remy_source.create: mean_on_bytes must be positive";
  if config.mean_off_s < 0. then invalid_arg "Remy_source.create: negative mean_off_s";
  {
    engine;
    rng;
    flows;
    src_node;
    dst_node;
    index;
    table;
    util;
    on_conn_end;
    config;
    running = false;
    started = false;
    current = None;
    records = [];
    completed = 0;
  }

let start t =
  if not t.started then begin
    t.started <- true;
    t.running <- true;
    schedule_next t
  end

let stop t = t.running <- false

let abort_current t =
  stop t;
  match t.current with
  | Some (sender, receiver) ->
    Remy_sender.abort sender;
    Receiver.close receiver;
    t.current <- None
  | None -> ()

let records t = List.rev t.records

let connections_completed t = t.completed
