(** On/off workload driver for Remy senders, mirroring
    {!Phi_tcp.Source}: sequential connections with exponential transfer
    sizes and idle gaps.  Each connection gets a fresh memory and (for the
    Phi variants) a fresh utilization sample. *)

type config = { mean_on_bytes : float; mean_off_s : float }

type t

val create :
  Phi_sim.Engine.t ->
  rng:Phi_util.Prng.t ->
  flows:Phi_tcp.Flow.allocator ->
  src_node:Phi_net.Node.t ->
  dst_node:Phi_net.Node.t ->
  index:int ->
  table:Rule_table.t ->
  util:Remy_sender.util_feed ->
  ?on_conn_end:(Phi_tcp.Flow.conn_stats -> unit) ->
  config ->
  t

val start : t -> unit
val stop : t -> unit
val abort_current : t -> unit
val records : t -> Phi_tcp.Flow.conn_stats list
val connections_completed : t -> int
