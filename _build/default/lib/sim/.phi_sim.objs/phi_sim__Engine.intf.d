lib/sim/engine.mli:
