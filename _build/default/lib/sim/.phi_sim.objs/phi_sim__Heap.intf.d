lib/sim/heap.mli:
