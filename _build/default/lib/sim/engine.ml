type handle = { mutable live : bool }

type event = { handle : handle; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable next_seq : int;
  mutable stopping : bool;
}

let create () = { clock = 0.; queue = Heap.create (); next_seq = 0; stopping = false }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  let handle = { live = true } in
  Heap.push t.queue ~priority:time ~seq:t.next_seq { handle; action = f };
  t.next_seq <- t.next_seq + 1;
  handle

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel handle = handle.live <- false

let cancelled handle = not handle.live

let pending t = Heap.size t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _seq, event) ->
    t.clock <- Stdlib.max t.clock time;
    if event.handle.live then begin
      event.handle.live <- false;
      event.action ()
    end;
    true

let stop t = t.stopping <- true

let run ?until t =
  t.stopping <- false;
  let horizon_reached () =
    match until with
    | None -> false
    | Some limit -> (
      match Heap.peek t.queue with
      | None -> true
      | Some (time, _, _) -> time > limit)
  in
  let rec loop () =
    if t.stopping then ()
    else if horizon_reached () then ()
    else if step t then loop ()
  in
  loop ();
  match until with
  | Some limit when not t.stopping -> t.clock <- Stdlib.max t.clock limit
  | _ -> ()
