type 'a entry = { priority : float; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority ~seq payload =
  let entry = { priority; seq; payload } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t =
  if t.len = 0 then None
  else
    let e = t.data.(0) in
    Some (e.priority, e.seq, e.payload)

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (e.priority, e.seq, e.payload)
  end

let clear t =
  t.data <- [||];
  t.len <- 0
