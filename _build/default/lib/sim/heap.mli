(** Array-backed binary min-heap keyed by [(priority, seq)].

    The integer sequence number breaks ties so that events scheduled for
    the same instant fire in FIFO order — the property the whole simulator
    relies on for deterministic replay. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> seq:int -> 'a -> unit

val peek : 'a t -> (float * int * 'a) option
(** Smallest element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
