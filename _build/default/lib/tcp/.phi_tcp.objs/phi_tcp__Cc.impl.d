lib/tcp/cc.ml:
