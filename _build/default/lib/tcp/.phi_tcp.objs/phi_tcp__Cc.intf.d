lib/tcp/cc.mli:
