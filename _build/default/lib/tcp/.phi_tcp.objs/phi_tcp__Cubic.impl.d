lib/tcp/cubic.ml: Cc Float Format Printf
