lib/tcp/cubic.mli: Cc Format
