lib/tcp/cwnd_trace.ml: Array Float List Phi_sim Sender
