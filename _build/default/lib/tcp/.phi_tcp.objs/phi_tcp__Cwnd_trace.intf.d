lib/tcp/cwnd_trace.mli: Phi_sim Sender
