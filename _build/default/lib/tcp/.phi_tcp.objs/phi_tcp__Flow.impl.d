lib/tcp/flow.ml: Format
