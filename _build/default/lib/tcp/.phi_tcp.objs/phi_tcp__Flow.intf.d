lib/tcp/flow.mli: Format
