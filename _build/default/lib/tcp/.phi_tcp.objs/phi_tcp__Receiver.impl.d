lib/tcp/receiver.ml: Hashtbl List Phi_net Phi_sim
