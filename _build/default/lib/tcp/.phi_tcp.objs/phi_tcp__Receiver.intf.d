lib/tcp/receiver.mli: Phi_net Phi_sim
