lib/tcp/reno.ml: Cc Float Printf
