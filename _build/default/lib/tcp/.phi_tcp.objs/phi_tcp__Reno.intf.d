lib/tcp/reno.mli: Cc
