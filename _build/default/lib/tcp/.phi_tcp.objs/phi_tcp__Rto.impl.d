lib/tcp/rto.ml: Float
