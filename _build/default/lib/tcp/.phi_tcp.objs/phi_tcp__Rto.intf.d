lib/tcp/rto.mli:
