lib/tcp/sender.ml: Cc Float Flow Hashtbl List Phi_net Phi_sim Queue Rto Stdlib
