lib/tcp/sender.mli: Cc Flow Phi_net Phi_sim
