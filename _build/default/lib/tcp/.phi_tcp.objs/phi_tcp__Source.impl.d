lib/tcp/source.ml: Cc Float Flow List Phi_net Phi_sim Phi_util Receiver Sender Stdlib
