lib/tcp/source.mli: Cc Flow Phi_net Phi_sim Phi_util
