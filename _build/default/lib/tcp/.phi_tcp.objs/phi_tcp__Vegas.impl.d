lib/tcp/vegas.ml: Cc Float
