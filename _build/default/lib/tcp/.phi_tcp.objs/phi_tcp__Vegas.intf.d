lib/tcp/vegas.mli: Cc
