type t = {
  name : string;
  mutable cwnd : float;
  mutable ssthresh : float;
  on_ack : t -> now:float -> rtt:float option -> newly_acked:int -> unit;
  on_loss : t -> now:float -> unit;
  on_timeout : t -> now:float -> unit;
}

let make ~name ~initial_cwnd ~initial_ssthresh ~on_ack ~on_loss ~on_timeout =
  if initial_cwnd < 1. then invalid_arg "Cc.make: initial_cwnd must be >= 1";
  if initial_ssthresh < 1. then invalid_arg "Cc.make: initial_ssthresh must be >= 1";
  { name; cwnd = initial_cwnd; ssthresh = initial_ssthresh; on_ack; on_loss; on_timeout }

let min_cwnd = 2.

let in_slow_start t = t.cwnd < t.ssthresh
