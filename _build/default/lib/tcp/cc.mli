(** Pluggable congestion control.

    A congestion controller owns the congestion window and slow-start
    threshold (both in segments, as in ns-2) and reacts to the three
    events the sender machinery reports: a new cumulative ACK, a fast-
    retransmit loss indication (three duplicate ACKs) and a retransmission
    timeout.  Algorithm-private state lives inside the event closures. *)

type t = {
  name : string;
  mutable cwnd : float;  (** congestion window, segments *)
  mutable ssthresh : float;  (** slow-start threshold, segments *)
  on_ack : t -> now:float -> rtt:float option -> newly_acked:int -> unit;
      (** [rtt] is the sample from this ACK when one was available. *)
  on_loss : t -> now:float -> unit;
  on_timeout : t -> now:float -> unit;
}

val make :
  name:string ->
  initial_cwnd:float ->
  initial_ssthresh:float ->
  on_ack:(t -> now:float -> rtt:float option -> newly_acked:int -> unit) ->
  on_loss:(t -> now:float -> unit) ->
  on_timeout:(t -> now:float -> unit) ->
  t

val min_cwnd : float
(** Floor applied by all controllers after a decrease (2 segments, per
    RFC 5681). *)

val in_slow_start : t -> bool
