(** TCP Cubic (Ha, Rhee & Xu; RFC 8312) with the three knobs the paper
    sweeps: the initial congestion window ([windowInit_] in ns-2), the
    initial slow-start threshold ([initial_ssthresh]) and the
    multiplicative-decrease parameter beta, where the window shrinks to
    [(1 - beta) * cwnd] on a fast-retransmit loss. *)

type params = {
  initial_cwnd : float;  (** ns-2 [windowInit_], segments *)
  initial_ssthresh : float;  (** segments; RFC 5681 says "arbitrarily high" *)
  beta : float;  (** decrease parameter in (0, 1); ns-2 default 0.2 *)
  c : float;  (** cubic scaling constant, conventionally 0.4 *)
  fast_convergence : bool;
  tcp_friendly : bool;
}

val default_params : params
(** The Table 1 defaults: initial_ssthresh 65536 segments, windowInit_ 2
    segments, beta 0.2 (plus C = 0.4, fast convergence and TCP-friendliness
    on, as in ns-2's linux-like Cubic). *)

val with_knobs : ?initial_cwnd:float -> ?initial_ssthresh:float -> ?beta:float -> params -> params
(** Override just the swept knobs of an existing parameter set. *)

val make : params -> Cc.t
(** Fresh Cubic controller.  Raises [Invalid_argument] on out-of-range
    parameters. *)

val pp_params : Format.formatter -> params -> unit

val params_to_string : params -> string
(** Compact "ssthresh/init/beta" rendering used in sweep tables. *)
