module Engine = Phi_sim.Engine

type t = {
  engine : Engine.t;
  sender : Sender.t;
  interval_s : float;
  mutable samples : (float * float) list;  (* newest first *)
  mutable running : bool;
}

let rec sample t =
  if t.running && not (Sender.completed t.sender) then begin
    t.samples <- (Engine.now t.engine, Sender.cwnd t.sender) :: t.samples;
    ignore (Engine.schedule_after t.engine ~delay:t.interval_s (fun () -> sample t))
  end

let attach engine sender ~interval_s =
  if interval_s <= 0. then invalid_arg "Cwnd_trace.attach: interval must be positive";
  let t = { engine; sender; interval_s; samples = []; running = true } in
  sample t;
  t

let series t = Array.of_list (List.rev t.samples)

let max_cwnd t = List.fold_left (fun acc (_, w) -> Float.max acc w) 0. t.samples

let stop t = t.running <- false
