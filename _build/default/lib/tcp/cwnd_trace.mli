(** Congestion-window tracing: samples a sender's window on a fixed
    interval, the standard observability hook for debugging congestion
    control behaviour (and for plotting sawtooths). *)

type t

val attach : Phi_sim.Engine.t -> Sender.t -> interval_s:float -> t
(** Starts sampling immediately; stops by itself once the sender
    completes. *)

val series : t -> (float * float) array
(** [(time, cwnd)] samples, oldest first. *)

val max_cwnd : t -> float
(** Largest window observed (0 before any sample). *)

val stop : t -> unit
