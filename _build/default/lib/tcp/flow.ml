type allocator = { mutable next : int }

let allocator () = { next = 0 }

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

type conn_stats = {
  flow : int;
  source_index : int;
  started_at : float;
  finished_at : float;
  bytes : int;
  segments : int;
  retransmitted_segments : int;
  timeouts : int;
  rtt_samples : int;
  min_rtt : float;
  mean_rtt : float;
}

let duration t = t.finished_at -. t.started_at

let throughput_bps t =
  let d = duration t in
  if d <= 0. then 0. else float_of_int (t.bytes * 8) /. d

let queueing_delay t = t.mean_rtt -. t.min_rtt

let pp ppf t =
  Format.fprintf ppf
    "conn[flow=%d src=%d bytes=%d dur=%.3fs thr=%.3fMbps rexmit=%d rto=%d rtt=%.1f/%.1fms]"
    t.flow t.source_index t.bytes (duration t)
    (throughput_bps t /. 1e6)
    t.retransmitted_segments t.timeouts (1000. *. t.min_rtt) (1000. *. t.mean_rtt)
