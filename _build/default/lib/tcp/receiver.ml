module Engine = Phi_sim.Engine
module Node = Phi_net.Node
module Packet = Phi_net.Packet

type t = {
  engine : Engine.t;
  node : Node.t;
  flow : int;
  peer : int;
  buffered : (int, unit) Hashtbl.t;  (* received out-of-order segments *)
  mutable recent : int list;  (* recently arrived out-of-order seqs, newest first *)
  mutable next_expected : int;
  mutable segments_received : int;
  mutable duplicate_segments : int;
}

(* Expand the contiguous buffered run containing [seq] into a [lo, hi)
   block. *)
let block_around t seq =
  let lo = ref seq in
  while Hashtbl.mem t.buffered (!lo - 1) do decr lo done;
  let hi = ref (seq + 1) in
  while Hashtbl.mem t.buffered !hi do incr hi done;
  (!lo, !hi)

let sack_blocks t =
  let rec collect acc seen = function
    | [] -> List.rev acc
    | _ when List.length acc >= Packet.max_sack_blocks -> List.rev acc
    | seq :: rest ->
      if seq < t.next_expected || not (Hashtbl.mem t.buffered seq) then collect acc seen rest
      else
        let lo, hi = block_around t seq in
        if List.mem (lo, hi) seen then collect acc seen rest
        else collect ((lo, hi) :: acc) ((lo, hi) :: seen) rest
  in
  collect [] [] t.recent

let remember_recent t seq =
  let keep = List.filter (fun s -> s <> seq && s >= t.next_expected) t.recent in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.recent <- seq :: take (Packet.max_sack_blocks * 2) keep

let send_ack t ~echo ~tx_time ~ece =
  let pkt =
    Packet.ack ~flow:t.flow ~src:(Node.id t.node) ~dst:t.peer ~next_expected:t.next_expected
      ~echo_sent_at:echo ~echo_tx_time:tx_time ~sack:(sack_blocks t) ~ece
      ~now:(Engine.now t.engine)
  in
  Node.receive t.node pkt

let handle t (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Ack _ -> () (* receivers only consume data *)
  | Packet.Data ->
    let echo = if pkt.retransmit then None else Some pkt.sent_at in
    if pkt.seq < t.next_expected || Hashtbl.mem t.buffered pkt.seq then begin
      (* Already have it: spurious retransmission; still ACK so the sender
         can make progress. *)
      t.duplicate_segments <- t.duplicate_segments + 1;
      send_ack t ~echo:None ~tx_time:pkt.sent_at ~ece:pkt.Packet.ce
    end
    else begin
      t.segments_received <- t.segments_received + 1;
      if pkt.seq = t.next_expected then begin
        t.next_expected <- t.next_expected + 1;
        (* Advance over any previously buffered run. *)
        while Hashtbl.mem t.buffered t.next_expected do
          Hashtbl.remove t.buffered t.next_expected;
          t.next_expected <- t.next_expected + 1
        done;
        t.recent <- List.filter (fun s -> s >= t.next_expected) t.recent;
        send_ack t ~echo ~tx_time:pkt.sent_at ~ece:pkt.Packet.ce
      end
      else begin
        Hashtbl.add t.buffered pkt.seq ();
        remember_recent t pkt.seq;
        (* Duplicate ACK: cumulative number unchanged, SACK describes the
           hole; no RTT echo. *)
        send_ack t ~echo:None ~tx_time:pkt.sent_at ~ece:pkt.Packet.ce
      end
    end

let create engine ~node ~flow ~peer =
  let t =
    {
      engine;
      node;
      flow;
      peer;
      buffered = Hashtbl.create 64;
      recent = [];
      next_expected = 0;
      segments_received = 0;
      duplicate_segments = 0;
    }
  in
  Node.bind_flow node ~flow (handle t);
  t

let next_expected t = t.next_expected
let segments_received t = t.segments_received
let duplicate_segments t = t.duplicate_segments
let close t = Node.unbind_flow t.node ~flow:t.flow
