(** TCP receiver: cumulative ACKs with duplicate-ACK generation.

    Every data segment triggers exactly one ACK (no delayed ACKs, matching
    the ns-2 agents the paper used).  Out-of-order segments are buffered
    and produce duplicate ACKs; in-order arrivals advance the cumulative
    ACK over any buffered run. *)

type t

val create :
  Phi_sim.Engine.t ->
  node:Phi_net.Node.t ->
  flow:int ->
  peer:int ->
  t
(** Install a receiver for [flow] on [node], sending ACKs back to node
    [peer]. *)

val next_expected : t -> int
(** Lowest segment number not yet received in order. *)

val segments_received : t -> int
(** Count of distinct data segments delivered (in or out of order). *)

val duplicate_segments : t -> int
(** Data segments that had already been received (spurious
    retransmissions). *)

val close : t -> unit
(** Unbind from the node. *)
