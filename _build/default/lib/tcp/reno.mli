(** TCP Reno congestion control (RFC 5681) and its MulTCP-style weighted
    generalization.

    The weighted variant implements the Section 3.3 idea: a flow with
    weight [w] behaves like the aggregate of [w] standard Reno flows
    (additive increase of [w] per RTT, multiplicative decrease of
    [1/(2w)]), so an entity can shift bandwidth between its own flows
    while the ensemble stays TCP-friendly. *)

val make : ?initial_cwnd:float -> ?initial_ssthresh:float -> unit -> Cc.t
(** Standard Reno.  Defaults: [initial_cwnd = 2.],
    [initial_ssthresh = 65536.]. *)

val make_weighted :
  weight:float -> ?initial_cwnd:float -> ?initial_ssthresh:float -> unit -> Cc.t
(** MulTCP with the given positive weight; [weight = 1.] coincides with
    standard Reno. *)
