type t = {
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable backoff_factor : float;
}

let create ?(min_rto = 0.2) ?(max_rto = 60.) () =
  if min_rto <= 0. || max_rto < min_rto then invalid_arg "Rto.create: bad bounds";
  { min_rto; max_rto; srtt = 1.; rttvar = 0.5; have_sample = false; backoff_factor = 1. }

let observe t ~rtt =
  if rtt <= 0. then invalid_arg "Rto.observe: non-positive rtt";
  if t.have_sample then begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt)
  end
  else begin
    t.srtt <- rtt;
    t.rttvar <- rtt /. 2.;
    t.have_sample <- true
  end;
  t.backoff_factor <- 1.

let current t =
  let base =
    if t.have_sample then t.srtt +. (4. *. t.rttvar)
    else 1. (* RFC 6298 initial RTO before any sample *)
  in
  Float.min t.max_rto (Float.max t.min_rto base *. t.backoff_factor)

let backoff t = t.backoff_factor <- Float.min (t.backoff_factor *. 2.) 64.

let reset_backoff t = t.backoff_factor <- 1.

let srtt t = if t.have_sample then Some t.srtt else None
