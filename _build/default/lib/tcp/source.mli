(** On/off workload driver (Section 2.2): each source launches fresh
    connections sequentially, with exponentially distributed transfer
    sizes ("on" periods) separated by exponentially distributed idle
    ("off") periods.

    The congestion controller is created anew for every connection via
    [cc_factory] — exactly the hook a Phi client uses to consult the
    context server when a connection starts — and [on_conn_end] fires with
    the finished connection's statistics — the hook used to report back. *)

type config = {
  mean_on_bytes : float;  (** mean transfer size per connection *)
  mean_off_s : float;  (** mean idle time between connections *)
}

type t

val create :
  Phi_sim.Engine.t ->
  rng:Phi_util.Prng.t ->
  flows:Flow.allocator ->
  src_node:Phi_net.Node.t ->
  dst_node:Phi_net.Node.t ->
  index:int ->
  cc_factory:(unit -> Cc.t) ->
  ?on_conn_end:(Flow.conn_stats -> unit) ->
  config ->
  t
(** The first connection starts after a random initial idle period (to
    desynchronize sources), once {!start} is called. *)

val start : t -> unit

val stop : t -> unit
(** No further connections are launched; an in-flight connection is left
    to finish. *)

val abort_current : t -> unit
(** Additionally abort the in-flight connection, if any. *)

val records : t -> Flow.conn_stats list
(** Completed connections, oldest first. *)

val connections_completed : t -> int
