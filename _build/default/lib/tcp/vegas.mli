(** TCP Vegas (Brakmo, O'Malley & Peterson, SIGCOMM 1994) — the classic
    delay-based congestion control, cited by the paper as one of the
    "myriad flavors" of feedback.  Included as an additional baseline for
    the ablation benches: unlike loss-based Cubic, Vegas backs off from
    the *difference* between expected and actual throughput and keeps
    queues short without shared state.

    Per RTT, with [diff = cwnd * (1 - base_rtt / rtt)] (segments resident
    in queues): grow by one segment if [diff < alpha], shrink by one if
    [diff > beta], hold otherwise.  Slow start is halted once
    [diff > gamma]. *)

val make :
  ?alpha:float ->
  ?beta:float ->
  ?gamma:float ->
  ?initial_cwnd:float ->
  ?initial_ssthresh:float ->
  unit ->
  Cc.t
(** Defaults: [alpha = 2.], [beta = 4.], [gamma = 1.] segments,
    [initial_cwnd = 2.], [initial_ssthresh = 65536.].  Requires
    [alpha <= beta]. *)
