lib/util/csv.ml: Buffer List Printf String
