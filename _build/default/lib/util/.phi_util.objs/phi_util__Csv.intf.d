lib/util/csv.mli:
