lib/util/dist.ml: Array Float Prng Stdlib
