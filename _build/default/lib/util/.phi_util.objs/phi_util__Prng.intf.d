lib/util/prng.mli:
