lib/util/table.ml: List Printf Stdlib String
