lib/util/table.mli:
