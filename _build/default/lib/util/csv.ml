let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let write ~path ~header rows =
  let oc = open_out path in
  let emit row = output_string oc (String.concat "," (List.map escape row) ^ "\n") in
  (try
     emit header;
     List.iter emit rows
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let float_cell x = Printf.sprintf "%.17g" x
