(** Minimal CSV writing, for exporting figure data from the bench harness
    (each paper figure can be re-plotted from these files). *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a header plus rows.  Creates/truncates [path]. *)

val float_cell : float -> string
(** Full-precision float rendering ([%.17g]). *)
