(** Random-variate generation for the distributions used by the workload
    models: exponential on/off periods (Section 2.2 of the paper), Zipf
    destination popularity (Section 2.1), and a few auxiliary laws. *)

val exponential : Prng.t -> mean:float -> float
(** Exponentially distributed with the given mean.  [mean] must be
    positive. *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. *)

val normal : Prng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller. *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** exp of a Gaussian; handy for heavy-ish flow sizes. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** Pareto with minimum [scale] and tail index [shape] (> 0). *)

val poisson : Prng.t -> lambda:float -> int
(** Poisson counts; uses Knuth's method for small [lambda] and a normal
    approximation above 64 to stay O(1). *)

type zipf
(** Precomputed Zipf sampler over ranks [0 .. n-1]. *)

val zipf : n:int -> alpha:float -> zipf
(** [zipf ~n ~alpha] prepares a sampler with popularity ∝ 1/(rank+1)^alpha.
    [n] must be positive. *)

val zipf_draw : zipf -> Prng.t -> int
(** Sample a rank; rank 0 is the most popular. *)

val zipf_support : zipf -> int
(** Number of ranks the sampler covers. *)
