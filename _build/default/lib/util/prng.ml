type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from SplitMix64: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top bits avoids modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits bound64 in
    if Int64.sub (Int64.add (Int64.sub bits v) bound64) 1L < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let float_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.float_range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t ~bound:(Array.length a))
