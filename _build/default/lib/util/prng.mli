(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
    statistical quality for simulation purposes, and cheap splitting, which
    lets each sender / workload source own an independent stream derived
    from the experiment seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose future output is independent of
    [t]'s (in the SplitMix sense).  Advances [t] by one step. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty arrays. *)
