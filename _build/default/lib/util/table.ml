type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~headers rows =
  let columns = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length headers) rows in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> Stdlib.max acc (String.length (cell row i)))
      (String.length (cell headers i))
      rows
  in
  let widths = List.init columns width in
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Right in
  let line row =
    let cells = List.mapi (fun i w -> pad (align_of i) w (cell row i)) widths in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|" in
  let body = List.map line rows in
  String.concat "\n" ((line headers :: rule :: body) @ [ "" ])

let print ?align ~headers rows = print_string (render ?align ~headers rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
