(** Plain-text table rendering for the benchmark harness, so every
    reproduced paper table prints with aligned columns. *)

type align = Left | Right

val render : ?align:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with a header rule.  Cells
    default to right alignment (numbers dominate); [align] overrides
    per-column.  Short rows are padded with empty cells. *)

val print : ?align:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper with a default of 2 decimals. *)
