lib/workload/cloud_trace.ml: Float List Phi_util Stdlib
