lib/workload/cloud_trace.mli: Phi_util
