lib/workload/request_stream.ml: Array Float Format List Phi_util String
