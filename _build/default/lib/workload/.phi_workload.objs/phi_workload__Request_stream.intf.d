lib/workload/request_stream.mli: Format Phi_util
