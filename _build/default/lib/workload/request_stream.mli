(** Synthetic request-volume telemetry for the diagnosis experiments
    (Figure 5).

    Models what a global cloud service sees: per-minute request counts
    sliced by (metro, ISP, service).  Each cell has a weight, traffic
    follows a diurnal curve with Poisson noise, and unreachability events
    can be injected: during an outage the matching cells lose a fraction
    of their volume. *)

type cell = { metro : string; isp : string; service : string }

val pp_cell : Format.formatter -> cell -> unit

type scope = {
  metro : string option;
  isp : string option;
  service : string option;
}
(** A slice of the dimension space; [None] matches every value. *)

val scope_matches : scope -> cell -> bool

val pp_scope : Format.formatter -> scope -> unit

type outage = {
  start_min : int;
  duration_min : int;
  scope : scope;
  severity : float;  (** fraction of the slice's traffic lost, in (0, 1] *)
}

type config = {
  metros : string list;
  isps : string list;
  services : string list;
  base_rate_per_min : float;  (** global mean requests/minute at the diurnal peak-trough midpoint *)
  days : int;
}

val default_config : config

val generate : Phi_util.Prng.t -> config -> outages:outage list -> (cell * float array) list
(** Per-cell minute series of length [days * 1440].  Cell weights are
    deterministic (derived from positions), so the same config yields the
    same traffic mix across runs with different noise seeds. *)

val total_series : (cell * float array) list -> float array
(** Sum across cells. *)

val sum_where : (cell * float array) list -> scope -> float array
(** Sum of the series of all cells matching the scope. *)
