test/test_diagnosis.ml: Alcotest Array Float List Phi_diagnosis Phi_experiments Phi_util Phi_workload
