test/test_ipfix.ml: Alcotest Float List Phi_ipfix Phi_util Phi_workload Sampler Sharing
