test/test_net.ml: Alcotest Array List Phi_net Phi_sim Phi_tcp Phi_util Stdlib
