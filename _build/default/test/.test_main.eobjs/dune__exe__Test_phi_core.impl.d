test/test_phi_core.ml: Adaptation Alcotest Array Context Context_server Float Gen Int64 List Metric Phi Phi_client Phi_sim Phi_tcp Phi_util Policy Priority QCheck QCheck_alcotest Secure_agg String
