test/test_predict.ml: Alcotest History Phi_predict Predictor QCheck QCheck_alcotest Voip
