test/test_remy.ml: Alcotest Array Float List Memory Phi_net Phi_remy Phi_sim Phi_tcp Phi_util Pretrained QCheck QCheck_alcotest Remy_sender Rule_table Trainer Whisker
