test/test_sim.ml: Alcotest Gen List Phi_sim QCheck QCheck_alcotest
