test/test_source.ml: Alcotest Array Cubic Flow List Phi_net Phi_remy Phi_sim Phi_tcp Phi_util Source
