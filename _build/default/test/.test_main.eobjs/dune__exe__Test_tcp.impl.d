test/test_tcp.ml: Alcotest Array Cc Cubic Cwnd_trace Flow List Phi_net Phi_sim Phi_tcp Phi_util QCheck QCheck_alcotest Receiver Reno Rto Sender Stdlib Vegas
