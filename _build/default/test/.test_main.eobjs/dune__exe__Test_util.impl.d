test/test_util.ml: Alcotest Array Csv Dist Filename Float Gen List Phi_util Prng QCheck QCheck_alcotest Stats String Sys Table
