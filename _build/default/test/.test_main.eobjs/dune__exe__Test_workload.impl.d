test/test_workload.ml: Alcotest Array Cloud_trace Float List Phi_util Phi_workload Request_stream Stdlib
