(* Tests for phi_diagnosis: seasonal baselines, anomaly detection and
   dimensional localization. *)

module Series = Phi_diagnosis.Series
module Anomaly = Phi_diagnosis.Anomaly
module Localize = Phi_diagnosis.Localize
module Rs = Phi_workload.Request_stream
module Prng = Phi_util.Prng

(* {2 Series} *)

let test_baseline_constant_series () =
  let series = Array.make (3 * 1440) 100. in
  let baseline = Series.seasonal_baseline series in
  Array.iter (fun b -> Alcotest.(check (float 1e-9)) "flat" 100. b) baseline

let test_baseline_tracks_seasonality () =
  (* Two days of a square wave: high in the first half of each day. *)
  let series =
    Array.init (2 * 1440) (fun i -> if i mod 1440 < 720 then 200. else 50.)
  in
  let baseline = Series.seasonal_baseline ~smooth:0 series in
  Alcotest.(check (float 1e-9)) "high phase" 200. baseline.(100);
  Alcotest.(check (float 1e-9)) "low phase" 50. baseline.(1000)

let test_baseline_robust_to_one_day_outage () =
  (* Three days; day 2 has a two-hour dip.  The median across days must
     not follow the dip. *)
  let series = Array.make (3 * 1440) 100. in
  for i = 1440 + 600 to 1440 + 719 do
    series.(i) <- 5.
  done;
  let baseline = Series.seasonal_baseline series in
  Alcotest.(check (float 1e-9)) "baseline unmoved" 100. baseline.(1440 + 650)

let test_baseline_partial_period () =
  let series = Array.init 2000 (fun i -> float_of_int (i mod 1440)) in
  let baseline = Series.seasonal_baseline ~smooth:0 series in
  Alcotest.(check int) "same length" 2000 (Array.length baseline)

let test_robust_z_flags_outlier () =
  let n = 2 * 1440 in
  let actual = Array.make n 100. in
  actual.(1500) <- 10.;
  let baseline = Array.make n 100. in
  (* Give the residuals a little natural spread so the MAD is nonzero. *)
  for i = 0 to n - 1 do
    if i mod 2 = 0 then actual.(i) <- actual.(i) +. 2. else actual.(i) <- actual.(i) -. 2.
  done;
  actual.(1500) <- 10.;
  let z = Series.robust_z ~actual ~baseline in
  Alcotest.(check bool) "outlier deeply negative" true (z.(1500) < -10.);
  Alcotest.(check bool) "normal points small" true (Float.abs z.(100) < 2.)

let test_robust_z_constant_is_zero () =
  let actual = Array.make 100 5. and baseline = Array.make 100 5. in
  let z = Series.robust_z ~actual ~baseline in
  Array.iter (fun v -> Alcotest.(check (float 0.)) "zero" 0. v) z

let test_robust_z_length_mismatch () =
  let raised =
    try ignore (Series.robust_z ~actual:[| 1. |] ~baseline:[| 1.; 2. |]); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "mismatch rejected" true raised

(* {2 Anomaly} *)

let noisy_series rng n level =
  Array.init n (fun _ -> level +. Phi_util.Dist.normal rng ~mu:0. ~sigma:2.)

let test_anomaly_detects_injected_dip () =
  let rng = Prng.create ~seed:1 in
  let n = 2 * 1440 in
  let actual = noisy_series rng n 100. in
  for i = 2000 to 2119 do
    actual.(i) <- 20.
  done;
  let baseline = Array.make n 100. in
  let events = Anomaly.detect ~actual ~baseline () in
  Alcotest.(check int) "one event" 1 (List.length events);
  let e = List.hd events in
  Alcotest.(check bool) "covers dip start" true (abs (e.Anomaly.start_min - 2000) <= 2);
  Alcotest.(check bool) "covers dip end" true (abs (e.Anomaly.end_min - 2120) <= 2);
  Alcotest.(check bool) "drop ~80%" true (e.Anomaly.mean_drop > 0.6)

let test_anomaly_clean_series_silent () =
  let rng = Prng.create ~seed:2 in
  let n = 2 * 1440 in
  let actual = noisy_series rng n 100. in
  let baseline = Array.make n 100. in
  Alcotest.(check int) "no events" 0 (List.length (Anomaly.detect ~actual ~baseline ()))

let test_anomaly_short_blip_ignored () =
  let rng = Prng.create ~seed:3 in
  let n = 1440 in
  let actual = noisy_series rng n 100. in
  actual.(700) <- 0.;
  actual.(701) <- 0.;
  let baseline = Array.make n 100. in
  Alcotest.(check int) "short blip below min duration" 0
    (List.length (Anomaly.detect ~min_duration:5 ~actual ~baseline ()))

let test_anomaly_grace_bridges_noise () =
  let rng = Prng.create ~seed:4 in
  let n = 1440 in
  let actual = noisy_series rng n 100. in
  for i = 600 to 659 do
    actual.(i) <- 10.
  done;
  (* One recovering minute inside the dip must not split the event. *)
  actual.(630) <- 100.;
  let baseline = Array.make n 100. in
  let events = Anomaly.detect ~actual ~baseline () in
  Alcotest.(check int) "still one event" 1 (List.length events)

let test_anomaly_validation () =
  let raised =
    try ignore (Anomaly.detect ~threshold:0. ~actual:[| 1. |] ~baseline:[| 1. |] ()); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "threshold validated" true raised

(* {2 Cusum} *)

let test_cusum_detects_dip () =
  let rng = Prng.create ~seed:21 in
  let n = 1440 in
  let actual = noisy_series rng n 100. in
  for i = 800 to 899 do
    actual.(i) <- 60.
  done;
  let baseline = Array.make n 100. in
  let events = Phi_diagnosis.Cusum.detect ~actual ~baseline () in
  Alcotest.(check bool) "detected" true (List.length events >= 1);
  match Phi_diagnosis.Cusum.detection_latency ~injected_start:800 events with
  | Some latency -> Alcotest.(check bool) "alarm within 10 min" true (latency <= 10)
  | None -> Alcotest.fail "no alarm after the change"

let test_cusum_quiet_on_clean_series () =
  let rng = Prng.create ~seed:22 in
  let n = 1440 in
  let actual = noisy_series rng n 100. in
  let baseline = Array.make n 100. in
  Alcotest.(check int) "no alarms" 0
    (List.length (Phi_diagnosis.Cusum.detect ~actual ~baseline ()))

let test_cusum_catches_shallow_drop_faster_than_runs () =
  (* A 20% sustained drop: each minute scores only ~-2 z, below the run
     detector's -3 threshold, but CUSUM accumulates it. *)
  let rng = Prng.create ~seed:23 in
  let n = 1440 in
  let actual = Array.init n (fun _ -> 100. +. Phi_util.Dist.normal rng ~mu:0. ~sigma:8.) in
  for i = 700 to 819 do
    actual.(i) <- actual.(i) -. 20.
  done;
  let baseline = Array.make n 100. in
  let cusum_events = Phi_diagnosis.Cusum.detect ~actual ~baseline () in
  Alcotest.(check bool) "cusum fires" true
    (Phi_diagnosis.Cusum.detection_latency ~injected_start:700 cusum_events <> None)

let test_cusum_validation () =
  let raised =
    try
      ignore
        (Phi_diagnosis.Cusum.detect ~alarm_threshold:0. ~actual:[| 1. |] ~baseline:[| 1. |] ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "threshold validated" true raised

(* {2 Localize (and the full Figure 5 pipeline)} *)

let test_localize_finds_injected_cell () =
  let result = Phi_experiments.Figure5.run ~seed:42 () in
  Alcotest.(check bool) "at least one event" true (List.length result.Phi_experiments.Figure5.events > 0);
  Alcotest.(check bool) "correct localization" true
    (Phi_experiments.Figure5.correctly_localized result)

let test_localize_event_duration_about_two_hours () =
  let result = Phi_experiments.Figure5.run ~seed:43 () in
  match result.Phi_experiments.Figure5.events with
  | e :: _ ->
    let d = Anomaly.duration_min e in
    Alcotest.(check bool) "within 20% of 120 min" true (d >= 96 && d <= 144)
  | [] -> Alcotest.fail "no event detected"

let test_localize_prefers_specific_scope () =
  let result = Phi_experiments.Figure5.run ~seed:44 () in
  match result.Phi_experiments.Figure5.localization with
  | Some f ->
    Alcotest.(check bool) "metro pinned" true (f.Localize.scope.Rs.metro <> None);
    Alcotest.(check bool) "isp pinned" true (f.Localize.scope.Rs.isp <> None);
    Alcotest.(check bool) "explains most deficit" true (f.Localize.deficit_share > 0.7)
  | None -> Alcotest.fail "no localization"

let test_localize_global_outage_unlocalized () =
  (* An outage hitting everything must not be pinned to a single slice. *)
  let rng = Prng.create ~seed:45 in
  let config = Rs.default_config in
  let scope = { Rs.metro = None; isp = None; service = None } in
  let outage = { Rs.start_min = 2000; duration_min = 120; scope; severity = 0.9 } in
  let cells = Rs.generate rng config ~outages:[ outage ] in
  match Localize.localize ~cells ~window:(2000, 2120) () with
  | None -> ()
  | Some f ->
    (* If anything is reported it must not be a (metro, isp) pair: a global
       event has no single explaining pair. *)
    Alcotest.(check bool) "not a specific pair" false
      (f.Localize.scope.Rs.metro <> None && f.Localize.scope.Rs.isp <> None)

let test_rank_orders_by_deficit () =
  let result = Phi_experiments.Figure5.run ~seed:46 () in
  match result.Phi_experiments.Figure5.events with
  | e :: _ ->
    let cells_rng = Prng.create ~seed:46 in
    let cells =
      Rs.generate cells_rng Rs.default_config
        ~outages:[ result.Phi_experiments.Figure5.injected ]
    in
    let ranked =
      Localize.rank ~cells ~window:(e.Anomaly.start_min, e.Anomaly.end_min)
    in
    let shares = List.map (fun f -> f.Localize.deficit_share) ranked in
    let rec non_increasing = function
      | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
      | _ -> true
    in
    Alcotest.(check bool) "sorted" true (non_increasing shares)
  | [] -> Alcotest.fail "no event"

let suite =
  [
    ("baseline constant", `Quick, test_baseline_constant_series);
    ("baseline tracks seasonality", `Quick, test_baseline_tracks_seasonality);
    ("baseline robust to outage", `Quick, test_baseline_robust_to_one_day_outage);
    ("baseline partial period", `Quick, test_baseline_partial_period);
    ("robust z flags outlier", `Quick, test_robust_z_flags_outlier);
    ("robust z constant", `Quick, test_robust_z_constant_is_zero);
    ("robust z length mismatch", `Quick, test_robust_z_length_mismatch);
    ("anomaly detects dip", `Quick, test_anomaly_detects_injected_dip);
    ("anomaly clean silent", `Quick, test_anomaly_clean_series_silent);
    ("anomaly short blip ignored", `Quick, test_anomaly_short_blip_ignored);
    ("anomaly grace bridges noise", `Quick, test_anomaly_grace_bridges_noise);
    ("anomaly validation", `Quick, test_anomaly_validation);
    ("cusum detects dip", `Quick, test_cusum_detects_dip);
    ("cusum quiet on clean", `Quick, test_cusum_quiet_on_clean_series);
    ("cusum catches shallow drop", `Quick, test_cusum_catches_shallow_drop_faster_than_runs);
    ("cusum validation", `Quick, test_cusum_validation);
    ("figure5 localizes injected cell", `Quick, test_localize_finds_injected_cell);
    ("figure5 duration ~2h", `Quick, test_localize_event_duration_about_two_hours);
    ("figure5 specific scope", `Quick, test_localize_prefers_specific_scope);
    ("localize global outage", `Quick, test_localize_global_outage_unlocalized);
    ("rank orders by deficit", `Quick, test_rank_orders_by_deficit);
  ]
