(* Tests for phi_ipfix: the packet sampler and the path-sharing
   analysis of Section 2.1. *)

module Prng = Phi_util.Prng
open Phi_ipfix

let record ~ts ~src_port ~dst_ip =
  { Sampler.ts; src_ip = 1; src_port; dst_ip; dst_port = 443 }

(* {2 Sampler} *)

let test_binomial_edge_cases () =
  let rng = Prng.create ~seed:1 in
  Alcotest.(check int) "n=0" 0 (Sampler.binomial rng ~n:0 ~p:0.5);
  Alcotest.(check int) "p=0" 0 (Sampler.binomial rng ~n:100 ~p:0.);
  Alcotest.(check int) "p=1" 100 (Sampler.binomial rng ~n:100 ~p:1.)

let test_binomial_mean_small_n () =
  let rng = Prng.create ~seed:2 in
  let total = ref 0 in
  for _ = 1 to 10_000 do
    total := !total + Sampler.binomial rng ~n:100 ~p:0.1
  done;
  let mean = float_of_int !total /. 10_000. in
  Alcotest.(check bool) "mean ~10" true (Float.abs (mean -. 10.) < 0.3)

let test_binomial_mean_large_n () =
  let rng = Prng.create ~seed:3 in
  let total = ref 0 in
  for _ = 1 to 2_000 do
    total := !total + Sampler.binomial rng ~n:100_000 ~p:(1. /. 4096.)
  done;
  let mean = float_of_int !total /. 2_000. in
  Alcotest.(check bool) "poisson approx mean ~24.4" true (Float.abs (mean -. 24.4) < 1.)

let test_sampler_rate () =
  let rng = Prng.create ~seed:4 in
  let flow =
    {
      Phi_workload.Cloud_trace.start_s = 0.;
      duration_s = 10.;
      src_ip = 1;
      src_port = 1234;
      dst_ip = 99;
      dst_port = 443;
      packets = 409_600;
      bytes = 0;
    }
  in
  let records = Sampler.sample_flows rng ~rate:4096 [ flow ] in
  let n = List.length records in
  (* Expectation 100 samples; Poisson sd 10. *)
  Alcotest.(check bool) "~100 samples" true (n > 60 && n < 140);
  List.iter
    (fun (r : Sampler.record) ->
      Alcotest.(check bool) "ts within flow" true (r.Sampler.ts >= 0. && r.Sampler.ts <= 10.))
    records

let test_sampler_timestamps_sorted () =
  let rng = Prng.create ~seed:5 in
  let flow i =
    {
      Phi_workload.Cloud_trace.start_s = float_of_int i;
      duration_s = 5.;
      src_ip = i;
      src_port = 1000 + i;
      dst_ip = i;
      dst_port = 443;
      packets = 10_000;
      bytes = 0;
    }
  in
  let records = Sampler.sample_flows rng ~rate:100 [ flow 0; flow 3; flow 6 ] in
  let sorted = ref true and last = ref neg_infinity in
  List.iter
    (fun (r : Sampler.record) ->
      if r.Sampler.ts < !last then sorted := false;
      last := r.Sampler.ts)
    records;
  Alcotest.(check bool) "sorted" true !sorted

(* {2 Sharing} *)

let test_sharing_crafted_slices () =
  (* Subnet 0, minute 0: three flows.  Subnet 1, minute 0: one flow. *)
  let records =
    [
      record ~ts:1. ~src_port:1 ~dst_ip:(0 lsl 8);
      record ~ts:2. ~src_port:2 ~dst_ip:(0 lsl 8);
      record ~ts:3. ~src_port:3 ~dst_ip:((0 lsl 8) lor 7);
      record ~ts:4. ~src_port:4 ~dst_ip:(1 lsl 8);
    ]
  in
  let stats = Sharing.analyze records in
  Alcotest.(check int) "four flows" 4 (Sharing.flows_observed stats);
  Alcotest.(check int) "two slices" 2 (Sharing.slices stats);
  (* Three flows share with 2 others; one shares with 0. *)
  Alcotest.(check (float 1e-9)) "75% share with >=2" 0.75
    (Sharing.fraction_sharing_at_least stats 2);
  Alcotest.(check (float 1e-9)) "all share with >=0" 1.
    (Sharing.fraction_sharing_at_least stats 0)

let test_sharing_minute_separation () =
  (* Same subnet, different minutes: no sharing. *)
  let records =
    [ record ~ts:10. ~src_port:1 ~dst_ip:0; record ~ts:70. ~src_port:2 ~dst_ip:0 ]
  in
  let stats = Sharing.analyze records in
  Alcotest.(check (float 1e-9)) "no sharing across minutes" 0.
    (Sharing.fraction_sharing_at_least stats 1)

let test_sharing_same_flow_not_double_counted () =
  (* Two sampled packets of the same 4-tuple in one slice: one flow, no
     self-sharing. *)
  let records =
    [ record ~ts:1. ~src_port:1 ~dst_ip:0; record ~ts:2. ~src_port:1 ~dst_ip:0 ]
  in
  let stats = Sharing.analyze records in
  Alcotest.(check int) "one flow" 1 (Sharing.flows_observed stats);
  Alcotest.(check (float 1e-9)) "shares with none" 0.
    (Sharing.fraction_sharing_at_least stats 1)

let test_sharing_flow_takes_max_over_slices () =
  (* Flow A appears alone in minute 0 but with two others in minute 1. *)
  let records =
    [
      record ~ts:10. ~src_port:1 ~dst_ip:0;
      record ~ts:70. ~src_port:1 ~dst_ip:0;
      record ~ts:75. ~src_port:2 ~dst_ip:0;
      record ~ts:80. ~src_port:3 ~dst_ip:0;
    ]
  in
  let stats = Sharing.analyze records in
  let counts = Sharing.sharing_counts stats in
  Alcotest.(check (float 0.)) "max sharing for flow A" 2.
    (Phi_util.Stats.maximum counts)

let test_sharing_ccdf_monotone () =
  let rng = Prng.create ~seed:6 in
  let config =
    { Phi_workload.Cloud_trace.default_config with
      Phi_workload.Cloud_trace.n_subnets = 100;
      flows_per_minute = 2000.;
      horizon_minutes = 2;
    }
  in
  let flows = Phi_workload.Cloud_trace.generate rng config in
  let records = Sampler.sample_flows rng ~rate:16 flows in
  let stats = Sharing.analyze records in
  let ccdf = Sharing.ccdf stats ~thresholds:[ 0; 1; 5; 10 ] in
  let values = List.map snd ccdf in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ccdf non-increasing" true (non_increasing values)

let suite =
  [
    ("binomial edge cases", `Quick, test_binomial_edge_cases);
    ("binomial mean small n", `Quick, test_binomial_mean_small_n);
    ("binomial mean large n", `Quick, test_binomial_mean_large_n);
    ("sampler rate", `Quick, test_sampler_rate);
    ("sampler timestamps sorted", `Quick, test_sampler_timestamps_sorted);
    ("sharing crafted slices", `Quick, test_sharing_crafted_slices);
    ("sharing minute separation", `Quick, test_sharing_minute_separation);
    ("sharing no double count", `Quick, test_sharing_same_flow_not_double_counted);
    ("sharing takes max over slices", `Quick, test_sharing_flow_takes_max_over_slices);
    ("sharing ccdf monotone", `Quick, test_sharing_ccdf_monotone);
  ]
