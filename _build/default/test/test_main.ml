let () =
  Alcotest.run "phi"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("source", Test_source.suite);
      ("remy", Test_remy.suite);
      ("core", Test_phi_core.suite);
      ("workload", Test_workload.suite);
      ("ipfix", Test_ipfix.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("predict", Test_predict.suite);
      ("experiments", Test_experiments.suite);
    ]
