(* Tests for phi_predict: the history store, hierarchical predictor and
   VoIP quality model. *)

open Phi_predict

let sample ?(thr = 1e6) ?(rtt = 0.1) ?(loss = 0.) () =
  { History.throughput_bps = thr; rtt_s = rtt; loss_rate = loss }

(* {2 History} *)

let test_history_levels () =
  let h = History.create () in
  let prefix24 = (10 lsl 16) lor (20 lsl 8) lor 30 in
  History.add h ~prefix24 (sample ());
  Alcotest.(check int) "p24" 1 (History.count h ~level:`P24 ~prefix24);
  Alcotest.(check int) "p16" 1 (History.count h ~level:`P16 ~prefix24);
  Alcotest.(check int) "p8" 1 (History.count h ~level:`P8 ~prefix24);
  Alcotest.(check int) "global" 1 (History.count h ~level:`Global ~prefix24);
  (* A sibling /24 in the same /16 aggregates at /16 but not /24. *)
  let sibling = (10 lsl 16) lor (20 lsl 8) lor 31 in
  History.add h ~prefix24:sibling (sample ());
  Alcotest.(check int) "p24 isolated" 1 (History.count h ~level:`P24 ~prefix24);
  Alcotest.(check int) "p16 shared" 2 (History.count h ~level:`P16 ~prefix24)

let test_history_reservoir_cap () =
  let h = History.create ~per_prefix_cap:10 () in
  for _ = 1 to 1000 do
    History.add h ~prefix24:5 (sample ())
  done;
  Alcotest.(check int) "capped" 10 (History.count h ~level:`P24 ~prefix24:5);
  Alcotest.(check int) "seen total" 1000 (History.total h)

let test_history_unknown_prefix_empty () =
  let h = History.create () in
  Alcotest.(check int) "empty" 0 (History.count h ~level:`P24 ~prefix24:99);
  Alcotest.(check bool) "no samples" true (History.samples h ~level:`P24 ~prefix24:99 = [])

(* {2 Predictor} *)

let test_predictor_prefers_deep_level () =
  let h = History.create () in
  for _ = 1 to 20 do
    History.add h ~prefix24:1 (sample ~thr:2e6 ())
  done;
  match Predictor.throughput_bps h ~prefix24:1 () with
  | Some est ->
    Alcotest.(check bool) "p24 level" true (est.Predictor.level = `P24);
    Alcotest.(check (float 1.)) "median" 2e6 est.Predictor.value
  | None -> Alcotest.fail "expected estimate"

let test_predictor_falls_back () =
  let h = History.create () in
  (* Plenty of /16 history, nothing at this /24. *)
  for i = 0 to 19 do
    History.add h ~prefix24:((7 lsl 8) lor i) (sample ~thr:3e6 ())
  done;
  (match Predictor.throughput_bps h ~prefix24:((7 lsl 8) lor 200) () with
  | Some est -> Alcotest.(check bool) "fell back to p16" true (est.Predictor.level = `P16)
  | None -> Alcotest.fail "expected fallback estimate");
  (* A totally unknown corner of the space still gets the global answer. *)
  match Predictor.throughput_bps h ~prefix24:(200 lsl 16) () with
  | Some est -> Alcotest.(check bool) "global" true (est.Predictor.level = `Global)
  | None -> Alcotest.fail "expected global estimate"

let test_predictor_empty_store () =
  let h = History.create () in
  Alcotest.(check bool) "none" true (Predictor.throughput_bps h ~prefix24:0 () = None)

let test_predictor_quantiles () =
  let h = History.create () in
  for i = 1 to 100 do
    History.add h ~prefix24:2 (sample ~thr:(float_of_int i) ())
  done;
  let q10 = Predictor.throughput_bps h ~prefix24:2 ~quantile:0.1 () in
  let q90 = Predictor.throughput_bps h ~prefix24:2 ~quantile:0.9 () in
  match (q10, q90) with
  | Some a, Some b -> Alcotest.(check bool) "q10 < q90" true (a.Predictor.value < b.Predictor.value)
  | _ -> Alcotest.fail "expected estimates"

let test_download_time () =
  let h = History.create () in
  for _ = 1 to 20 do
    History.add h ~prefix24:3 (sample ~thr:8e6 ())
  done;
  match Predictor.download_time_s h ~prefix24:3 ~bytes:1_000_000 with
  | Some (expected, pessimistic) ->
    Alcotest.(check (float 1e-6)) "1 MB at 8 Mb/s = 1 s" 1. expected;
    Alcotest.(check bool) "pessimistic >= expected" true (pessimistic >= expected)
  | None -> Alcotest.fail "expected estimate"

let test_voip_mos_prediction () =
  let h = History.create () in
  for _ = 1 to 20 do
    History.add h ~prefix24:4 (sample ~rtt:0.03 ~loss:0.001 ())
  done;
  match Predictor.voip_mos h ~prefix24:4 with
  | Some mos -> Alcotest.(check bool) "good call" true (mos > 4.)
  | None -> Alcotest.fail "expected mos"

(* {2 Voip} *)

let test_mos_monotone_in_rtt () =
  let m1 = Voip.mos ~rtt_s:0.02 ~loss_rate:0. in
  let m2 = Voip.mos ~rtt_s:0.3 ~loss_rate:0. in
  let m3 = Voip.mos ~rtt_s:0.8 ~loss_rate:0. in
  Alcotest.(check bool) "rtt degrades" true (m1 > m2 && m2 > m3)

let test_mos_monotone_in_loss () =
  let m1 = Voip.mos ~rtt_s:0.05 ~loss_rate:0. in
  let m2 = Voip.mos ~rtt_s:0.05 ~loss_rate:0.03 in
  let m3 = Voip.mos ~rtt_s:0.05 ~loss_rate:0.15 in
  Alcotest.(check bool) "loss degrades" true (m1 > m2 && m2 > m3)

let test_mos_bounds () =
  Alcotest.(check bool) "upper" true (Voip.mos ~rtt_s:0. ~loss_rate:0. <= 4.5);
  Alcotest.(check bool) "lower" true (Voip.mos ~rtt_s:5. ~loss_rate:1. >= 1.)

let test_quality_labels () =
  Alcotest.(check string) "excellent" "excellent" (Voip.quality_label 4.4);
  Alcotest.(check string) "bad" "bad" (Voip.quality_label 1.5)

let prop_mos_in_range =
  QCheck.Test.make ~name:"mos always in [1, 4.5]" ~count:300
    QCheck.(pair (float_bound_inclusive 3.) (float_bound_inclusive 1.))
    (fun (rtt_s, loss_rate) ->
      let m = Voip.mos ~rtt_s ~loss_rate in
      m >= 1. && m <= 4.5)

let suite =
  [
    ("history levels", `Quick, test_history_levels);
    ("history reservoir cap", `Quick, test_history_reservoir_cap);
    ("history unknown prefix", `Quick, test_history_unknown_prefix_empty);
    ("predictor prefers deep level", `Quick, test_predictor_prefers_deep_level);
    ("predictor falls back", `Quick, test_predictor_falls_back);
    ("predictor empty store", `Quick, test_predictor_empty_store);
    ("predictor quantiles", `Quick, test_predictor_quantiles);
    ("download time", `Quick, test_download_time);
    ("voip mos prediction", `Quick, test_voip_mos_prediction);
    ("mos monotone in rtt", `Quick, test_mos_monotone_in_rtt);
    ("mos monotone in loss", `Quick, test_mos_monotone_in_loss);
    ("mos bounds", `Quick, test_mos_bounds);
    ("quality labels", `Quick, test_quality_labels);
    QCheck_alcotest.to_alcotest prop_mos_in_range;
  ]
