(* Tests for phi_workload: cloud traces and request streams. *)

module Prng = Phi_util.Prng
module Stats = Phi_util.Stats
open Phi_workload

(* {2 Cloud_trace} *)

let small_config =
  {
    Cloud_trace.n_servers = 50;
    n_subnets = 200;
    zipf_alpha = 1.1;
    flows_per_minute = 500.;
    horizon_minutes = 3;
    mean_flow_packets = 40.;
  }

let test_trace_volume_and_order () =
  let rng = Prng.create ~seed:1 in
  let flows = Cloud_trace.generate rng small_config in
  let n = List.length flows in
  Alcotest.(check bool) "about 1500 flows" true (n > 1200 && n < 1800);
  let sorted = ref true and last = ref neg_infinity in
  List.iter
    (fun (f : Cloud_trace.flow) ->
      if f.Cloud_trace.start_s < !last then sorted := false;
      last := f.Cloud_trace.start_s)
    flows;
  Alcotest.(check bool) "ordered by start" true !sorted

let test_trace_fields_valid () =
  let rng = Prng.create ~seed:2 in
  let flows = Cloud_trace.generate rng small_config in
  List.iter
    (fun (f : Cloud_trace.flow) ->
      Alcotest.(check bool) "src in range" true
        (f.Cloud_trace.src_ip >= 0 && f.Cloud_trace.src_ip < 50);
      Alcotest.(check bool) "subnet in range" true
        (Cloud_trace.dst_subnet f >= 0 && Cloud_trace.dst_subnet f < 200);
      Alcotest.(check bool) "packets positive" true (f.Cloud_trace.packets >= 1);
      Alcotest.(check bool) "port ephemeral" true (f.Cloud_trace.src_port >= 1024))
    flows

let test_trace_zipf_skew () =
  let rng = Prng.create ~seed:3 in
  let flows = Cloud_trace.generate rng small_config in
  let counts = Array.make 200 0 in
  List.iter
    (fun f -> counts.(Cloud_trace.dst_subnet f) <- counts.(Cloud_trace.dst_subnet f) + 1)
    flows;
  (* Top subnet should attract far more than an even share. *)
  let top = Array.fold_left Stdlib.max 0 counts in
  let even_share = List.length flows / 200 in
  Alcotest.(check bool) "skewed" true (top > 5 * even_share)

let test_trace_validation () =
  let rng = Prng.create ~seed:4 in
  let raised =
    try ignore (Cloud_trace.generate rng { small_config with Cloud_trace.n_subnets = 0 }); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad config rejected" true raised

(* {2 Request_stream} *)

let small_rs_config =
  {
    Request_stream.metros = [ "m1"; "m2" ];
    isps = [ "i1"; "i2" ];
    services = [ "s1" ];
    base_rate_per_min = 1000.;
    days = 2;
  }

let test_stream_shape () =
  let rng = Prng.create ~seed:5 in
  let cells = Request_stream.generate rng small_rs_config ~outages:[] in
  Alcotest.(check int) "cells = 2x2x1" 4 (List.length cells);
  List.iter
    (fun (_, series) -> Alcotest.(check int) "2 days of minutes" 2880 (Array.length series))
    cells

let test_stream_total_rate () =
  let rng = Prng.create ~seed:6 in
  let cells = Request_stream.generate rng small_rs_config ~outages:[] in
  let total = Request_stream.total_series cells in
  (* The diurnal factor averages to ~1, so the daily mean should be near
     the configured base rate. *)
  Alcotest.(check bool) "mean near base rate" true
    (Float.abs (Stats.mean total -. 1000.) < 60.)

let test_stream_diurnal_variation () =
  let rng = Prng.create ~seed:7 in
  let cells = Request_stream.generate rng small_rs_config ~outages:[] in
  let total = Request_stream.total_series cells in
  let trough = Stats.mean (Array.sub total 0 120) in
  let peak = Stats.mean (Array.sub total 660 120) in
  Alcotest.(check bool) "evening peak above morning trough" true (peak > 1.5 *. trough)

let test_stream_outage_suppresses_scope () =
  let rng = Prng.create ~seed:8 in
  let scope = { Request_stream.metro = Some "m1"; isp = Some "i1"; service = None } in
  let outage = { Request_stream.start_min = 700; duration_min = 60; scope; severity = 1.0 } in
  let cells = Request_stream.generate rng small_rs_config ~outages:[ outage ] in
  let affected = Request_stream.sum_where cells scope in
  let during = Stats.mean (Array.sub affected 700 60) in
  let before = Stats.mean (Array.sub affected 600 60) in
  Alcotest.(check (float 0.)) "total outage" 0. during;
  Alcotest.(check bool) "healthy before" true (before > 0.);
  (* Unmatched cells are untouched. *)
  let other =
    Request_stream.sum_where cells
      { Request_stream.metro = Some "m2"; isp = None; service = None }
  in
  Alcotest.(check bool) "others unaffected" true (Stats.mean (Array.sub other 700 60) > 0.)

let test_stream_scope_matching () =
  let cell : Request_stream.cell = { Request_stream.metro = "m"; isp = "i"; service = "s" } in
  let all = { Request_stream.metro = None; isp = None; service = None } in
  Alcotest.(check bool) "wildcard" true (Request_stream.scope_matches all cell);
  let wrong = { all with Request_stream.metro = Some "x" } in
  Alcotest.(check bool) "mismatch" false (Request_stream.scope_matches wrong cell)

let test_stream_severity_validation () =
  let rng = Prng.create ~seed:9 in
  let scope = { Request_stream.metro = None; isp = None; service = None } in
  let bad = { Request_stream.start_min = 0; duration_min = 1; scope; severity = 1.5 } in
  let raised =
    try ignore (Request_stream.generate rng small_rs_config ~outages:[ bad ]); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "severity validated" true raised

let suite =
  [
    ("trace volume and order", `Quick, test_trace_volume_and_order);
    ("trace fields valid", `Quick, test_trace_fields_valid);
    ("trace zipf skew", `Quick, test_trace_zipf_skew);
    ("trace validation", `Quick, test_trace_validation);
    ("stream shape", `Quick, test_stream_shape);
    ("stream total rate", `Quick, test_stream_total_rate);
    ("stream diurnal variation", `Quick, test_stream_diurnal_variation);
    ("stream outage suppresses scope", `Quick, test_stream_outage_suppresses_scope);
    ("stream scope matching", `Quick, test_stream_scope_matching);
    ("stream severity validation", `Quick, test_stream_severity_validation);
  ]
