(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus the DESIGN.md extension experiments), then runs one
   Bechamel micro-benchmark per experiment kernel.

   Usage: dune exec bench/main.exe [-- --quick|--full] [--only ID] [--no-micro]
                                   [--csv DIR] [--jobs N] [--json PATH]
                                   [--cc NAME[,NAME...]]

   The default configuration is a documented downsampling of the paper's
   budgets (coarser parameter grid, fewer seeds) so the whole harness
   finishes in minutes; --full uses the paper's Table 2 grid and 8 runs.

   --jobs N fans the grid-shaped experiments' (setting, seed) cells over
   N domains via Phi_runner.Pool (default: the core count; --jobs 1 is
   the serial path).  Tables are bit-for-bit identical for every N.

   --json PATH additionally writes a machine-readable report (schema
   "phi-bench-report/1"): per-experiment wall clock, cells/sec, the
   headline figure metrics, the cross-algorithm "cc_matrix" cells, and a
   serial-vs-parallel calibration, so CI can track the perf trajectory
   across PRs.  Running bench/micro.exe --json on the same path merges
   in the "micro" and "alloc" sections and stamps the schema to
   "phi-bench-report/2" — to "phi-bench-report/3" when the report
   carries a cc_matrix section, to "phi-bench-report/4" when it also
   carries the million-flow "swarm" context-plane section, to
   "phi-bench-report/6" when the parallel-DES "pdes" scaling section is
   present as well, and to "phi-bench-report/7" when the topology-zoo
   "wan_matrix" section rides along with all of the above — which is
   what bin/phi_json_check gates on in CI (the committed
   allocations-per-packet budget, the swarm throughput floor and p99
   lookup-latency budget, the pdes determinism and scaling floors, and
   the wan_matrix fairness/FCT sanity and serial-probe determinism in
   Phi_check.Report_check).

   --cc NAME[,NAME...] restricts the cross-algorithm matrix to a subset
   of the registry (default: every registered algorithm). *)

module Topology = Phi_net.Topology
module Cubic = Phi_tcp.Cubic
module Table = Phi_util.Table
module Stats = Phi_util.Stats
module Json = Phi_util.Json
module Pool = Phi_runner.Pool
open Phi_experiments

type budget = { grid : Sweep.grid; seeds : int list; duration_s : float; label : string }

let quick_budget =
  {
    grid = { Sweep.ssthresh = [ 2.; 64. ]; init_w = [ 2.; 16. ]; beta = [ 0.2 ] };
    seeds = [ 1; 2 ];
    duration_s = 45.;
    label = "quick (4-point grid, 2 seeds, 45 s runs)";
  }

let default_budget =
  {
    grid = Sweep.coarse_grid;
    seeds = [ 1; 2; 3 ];
    duration_s = 90.;
    label = "default (48-point grid, 3 seeds, 90 s runs; --full for the paper grid)";
  }

let full_budget =
  {
    grid = Sweep.paper_grid;
    seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    duration_s = 120.;
    label = "full (paper 576-point grid, 8 seeds, 120 s runs)";
  }

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* Optional CSV export of figure data (--csv DIR). *)
let csv_dir : string option ref = ref None

let csv_out name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (* mkdirs creates missing parents too ("out/run3" used to fail when
       "out" did not exist) and tolerates concurrent creation. *)
    let path = Filename.concat dir name in
    Phi_util.Csv.write ~mkdirs:true ~path ~header rows;
    Printf.printf "(wrote %s)\n" path

(* Worker-pool width for the grid-shaped experiments (--jobs N). *)
let jobs = ref 1

(* {2 Machine-readable report (--json PATH)} *)

let timings : (string * float * int) list ref = ref []  (* (id, wall_s, cells), reverse order *)
let headlines : (string * Json.t) list ref = ref []
let headline id fields = headlines := (id, Json.Obj fields) :: !headlines

let timed id ~cells f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := (id, Unix.gettimeofday () -. t0, cells) :: !timings;
  r

(* Cells of the cross-algorithm matrix, kept for the JSON report.
   bench/micro.exe stamps the merged schema to /3 when this section is
   present. *)
let cc_matrix_json : Json.t option ref = ref None

(* The swarm context-plane section, kept for the JSON report.
   bench/micro.exe stamps the merged schema to /4 when this section is
   present alongside cc_matrix; Phi_check.Report_check gates its
   lookups/s and p99 figures whenever it is present at all. *)
let swarm_json : Json.t option ref = ref None

(* The conservative-parallel-DES scaling section (the 1000-sender
   parking lot at 1/2/4 domains), kept for the JSON report.
   bench/micro.exe stamps the merged schema to /6 when this section is
   present alongside cc_matrix and swarm; Phi_check.Report_check gates
   fingerprint/event equality across the runs always, and the >= 2x
   speedup floor at 4 domains whenever the box has >= 4 cores. *)
let pdes_json : Json.t option ref = ref None

(* The WAN evaluation matrix section (algorithm x topology zoo x
   adversarial dynamics), kept for the JSON report.  bench/micro.exe
   stamps the merged schema to /7 when this section is present
   alongside cc_matrix, swarm and pdes; Phi_check.Report_check gates
   every cell's Jain index and p99 FCT, and the serial-probe
   fingerprint equality, whenever it is present at all. *)
let wan_matrix_json : Json.t option ref = ref None

(* Matrix algorithm subset (--cc NAME[,NAME...]; default: the whole
   registry). *)
let matrix_algorithms = ref Phi.Cc_algo.all

let sweep_cells budget = (List.length (Sweep.settings budget.grid) + 1) * List.length budget.seeds

let report_json ~budget ~calibration =
  let experiments =
    List.rev_map
      (fun (id, wall_s, cells) ->
        Json.Obj
          ([ ("id", Json.String id); ("wall_s", Json.float wall_s); ("cells", Json.Int cells) ]
          @
          if wall_s > 0. && cells > 0 then
            [ ("cells_per_s", Json.float (float_of_int cells /. wall_s)) ]
          else []))
      !timings
  in
  let total_wall = List.fold_left (fun acc (_, w, _) -> acc +. w) 0. !timings in
  Json.Obj
    ([
      ("schema", Json.String "phi-bench-report/1");
      ("budget", Json.String budget.label);
      ("jobs", Json.Int !jobs);
      ("cores", Json.Int (Pool.available_cores ()));
      ("total_wall_s", Json.float total_wall);
      ("experiments", Json.List experiments);
      ("headline", Json.Obj (List.rev !headlines));
      ("parallel_calibration", calibration);
    ]
    @ (match !cc_matrix_json with
      | Some cells -> [ ("cc_matrix", cells) ]
      | None -> [])
    @ (match !swarm_json with
      | Some swarm -> [ ("swarm", swarm) ]
      | None -> [])
    @ (match !pdes_json with
      | Some pdes -> [ ("pdes", pdes) ]
      | None -> [])
    @ (match !wan_matrix_json with
      | Some wan -> [ ("wan_matrix", wan) ]
      | None -> []))

(* Serial-vs-parallel calibration: re-run the Figure 2a sweep cells at
   --jobs 1 and compare against the recorded wall clock of the same
   sweep at the requested width.  At --jobs 1 the speedup is 1 by
   definition and no extra work is done. *)
let calibrate budget =
  match List.find_opt (fun (id, _, _) -> id = "figure2a") !timings with
  | None -> Json.Null
  | Some (_, parallel_wall, cells) ->
    let serial_wall =
      if !jobs = 1 then parallel_wall
      else begin
        Printf.printf "\n(calibrating: re-running the figure2a sweep at --jobs 1)\n%!";
        let t0 = Unix.gettimeofday () in
        let config = { Scenario.low_utilization with Scenario.duration_s = budget.duration_s } in
        ignore (Sweep.run ~jobs:1 config budget.grid ~seeds:budget.seeds);
        Unix.gettimeofday () -. t0
      end
    in
    Json.Obj
      [
        ("experiment", Json.String "figure2a");
        ("cells", Json.Int cells);
        ("jobs", Json.Int !jobs);
        ("serial_wall_s", Json.float serial_wall);
        ("parallel_wall_s", Json.float parallel_wall);
        ("speedup", Json.float (if parallel_wall > 0. then serial_wall /. parallel_wall else 1.));
      ]

let mbps bps = Table.fmt_float (bps /. 1e6)
let ms s = Table.fmt_float (1000. *. s) ~decimals:1
let pct x = Table.fmt_float (100. *. x) ^ "%"

(* {2 Table 1} *)

let bench_table1 _budget =
  section "Table 1: default settings of the TCP Cubic parameters";
  let p = Cubic.default_params in
  Table.print ~align:[ Table.Left; Table.Left ]
    ~headers:[ "Parameter"; "Default value" ]
    [
      [ "initial_ssthresh"; Printf.sprintf "%g segments (arbitrarily large)" p.Cubic.initial_ssthresh ];
      [ "windowInit_"; Printf.sprintf "%g segments" p.Cubic.initial_cwnd ];
      [ "beta"; Printf.sprintf "%g" p.Cubic.beta ];
    ]

(* {2 Table 2} *)

let bench_table2 budget =
  section "Table 2: parameter sweep ranges";
  let render_grid name (g : Sweep.grid) =
    [
      [ name ^ " initial_ssthresh"; String.concat " " (List.map string_of_float g.Sweep.ssthresh) ];
      [ name ^ " windowInit_"; String.concat " " (List.map string_of_float g.Sweep.init_w) ];
      [ name ^ " beta"; String.concat " " (List.map (Printf.sprintf "%.1f") g.Sweep.beta) ];
    ]
  in
  Table.print ~align:[ Table.Left; Table.Left ]
    ~headers:[ "Grid"; "Values" ]
    (render_grid "paper" Sweep.paper_grid @ render_grid "this run" budget.grid)

(* {2 Figure 2a/2b: sweep scatter} *)

let print_sweep_points ~keep (sweep : Sweep.t) =
  let best = Sweep.optimal sweep in
  let row marker (p : Sweep.point) =
    [
      marker;
      Cubic.params_to_string p.Sweep.params;
      mbps p.Sweep.mean_throughput_bps;
      ms p.Sweep.mean_queueing_delay_s;
      pct p.Sweep.mean_loss_rate;
      Table.fmt_float p.Sweep.mean_power;
    ]
  in
  (* Keep the table readable: best/default plus the [keep] next-best
     settings. *)
  let others =
    sweep.Sweep.points
    |> List.filter (fun p -> p != best)
    |> List.sort (fun a b -> Float.compare b.Sweep.mean_power a.Sweep.mean_power)
    |> List.filteri (fun i _ -> i < keep)
  in
  Table.print ~align:[ Table.Left; Table.Left ]
    ~headers:[ ""; "ssthresh/init/beta"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l" ]
    ((row "optimal" best :: List.map (row "") others)
    @ [ row "default" sweep.Sweep.default_point ]);
  Printf.printf "(%d settings swept; showing optimal, top %d, default)\n"
    (List.length sweep.Sweep.points) keep

let run_sweep budget config =
  let config = { config with Scenario.duration_s = budget.duration_s } in
  Sweep.run ~jobs:!jobs config budget.grid ~seeds:budget.seeds

let sweep_headline id (sweep : Sweep.t) =
  let best = Sweep.optimal sweep in
  let point (p : Sweep.point) =
    Json.Obj
      [
        ("params", Json.String (Cubic.params_to_string p.Sweep.params));
        ("mean_throughput_bps", Json.float p.Sweep.mean_throughput_bps);
        ("mean_queueing_delay_s", Json.float p.Sweep.mean_queueing_delay_s);
        ("mean_loss_rate", Json.float p.Sweep.mean_loss_rate);
        ("mean_power", Json.float p.Sweep.mean_power);
      ]
  in
  headline id
    [
      ("settings", Json.Int (List.length sweep.Sweep.points));
      ("optimal", point best);
      ("default", point sweep.Sweep.default_point);
    ]

let sweep_csv name (sweep : Sweep.t) =
  let row marker (p : Sweep.point) =
    [
      Cubic.params_to_string p.Sweep.params;
      Phi_util.Csv.float_cell p.Sweep.params.Cubic.initial_ssthresh;
      Phi_util.Csv.float_cell p.Sweep.params.Cubic.initial_cwnd;
      Phi_util.Csv.float_cell p.Sweep.params.Cubic.beta;
      Phi_util.Csv.float_cell p.Sweep.mean_throughput_bps;
      Phi_util.Csv.float_cell p.Sweep.mean_queueing_delay_s;
      Phi_util.Csv.float_cell p.Sweep.mean_loss_rate;
      Phi_util.Csv.float_cell p.Sweep.mean_power;
      marker;
    ]
  in
  let best = Sweep.optimal sweep in
  csv_out name
    ~header:
      [ "params"; "ssthresh"; "init_cwnd"; "beta"; "throughput_bps"; "queueing_delay_s";
        "loss_rate"; "power"; "marker" ]
    (List.map
       (fun p -> row (if p == best then "optimal" else "") p)
       sweep.Sweep.points
    @ [ row "default" sweep.Sweep.default_point ])

let bench_figure2a budget =
  section "Figure 2a: Cubic parameter sweep, low link utilization (500 KB on / 2 s off)";
  let sweep = run_sweep budget Scenario.low_utilization in
  print_sweep_points ~keep:6 sweep;
  sweep_csv "figure2a.csv" sweep;
  sweep_headline "figure2a" sweep;
  sweep

let bench_figure2b budget =
  section "Figure 2b: Cubic parameter sweep, high link utilization (500 KB on / 0.3 s off)";
  let sweep = run_sweep budget Scenario.high_utilization in
  print_sweep_points ~keep:6 sweep;
  let best = Sweep.optimal sweep in
  Printf.printf
    "paper's observation: optimal uses larger init window, much smaller ssthresh, lower loss\n";
  Printf.printf "  optimal %s vs default %s | loss %s vs %s (paper: 0.01%% vs 3.92%%)\n"
    (Cubic.params_to_string best.Sweep.params)
    (Cubic.params_to_string sweep.Sweep.default_point.Sweep.params)
    (pct best.Sweep.mean_loss_rate)
    (pct sweep.Sweep.default_point.Sweep.mean_loss_rate);
  sweep_csv "figure2b.csv" sweep;
  sweep_headline "figure2b" sweep;
  sweep

(* {2 Figure 2c: long-running flows, beta sweep} *)

let bench_figure2c budget =
  section "Figure 2c: 100 long-running connections (~99% utilization), beta sweep";
  let betas = (Sweep.beta_grid : Sweep.grid).Sweep.beta in
  let n_flows = if budget.label = quick_budget.label then 40 else 100 in
  let results =
    Sweep.run_longrunning ~jobs:!jobs ~spec:Topology.paper_spec ~n_flows
      ~duration_s:budget.duration_s ~seeds:[ List.hd budget.seeds ] ~betas ()
  in
  Table.print
    ~headers:[ "beta"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l" ]
    (List.map
       (fun (beta, (p : Sweep.point)) ->
         [
           Table.fmt_float beta ~decimals:1;
           mbps p.Sweep.mean_throughput_bps;
           ms p.Sweep.mean_queueing_delay_s;
           pct p.Sweep.mean_loss_rate;
           Table.fmt_float p.Sweep.mean_power;
         ])
       results);
  csv_out "figure2c.csv"
    ~header:[ "beta"; "throughput_bps"; "queueing_delay_s"; "loss_rate"; "power" ]
    (List.map
       (fun (beta, (p : Sweep.point)) ->
         [
           Phi_util.Csv.float_cell beta;
           Phi_util.Csv.float_cell p.Sweep.mean_throughput_bps;
           Phi_util.Csv.float_cell p.Sweep.mean_queueing_delay_s;
           Phi_util.Csv.float_cell p.Sweep.mean_loss_rate;
           Phi_util.Csv.float_cell p.Sweep.mean_power;
         ])
       results);
  let q_of b = (List.assoc b results).Sweep.mean_queueing_delay_s in
  Printf.printf
    "paper's observation: larger beta (sharper back-off) yields much lower queueing delay\n";
  Printf.printf "  qdelay at beta 0.2: %s ms vs beta 0.8: %s ms (n_flows=%d)\n"
    (ms (q_of 0.2)) (ms (q_of 0.8)) n_flows;
  headline "figure2c"
    [
      ("n_flows", Json.Int n_flows);
      ("qdelay_s_beta_0_2", Json.float (q_of 0.2));
      ("qdelay_s_beta_0_8", Json.float (q_of 0.8));
    ]

(* {2 Figure 3: leave-one-out stability} *)

let bench_figure3 ~(sweep_low : Sweep.t) ~(sweep_high : Sweep.t) =
  section "Figure 3: stability of the optimal setting (leave-one-out validation)";
  let row name sweep =
    let v = Sweep.validate sweep in
    [
      name;
      Table.fmt_float v.Sweep.default_power;
      Table.fmt_float v.Sweep.common_power;
      Table.fmt_float v.Sweep.optimal_power;
      pct ((v.Sweep.common_power -. v.Sweep.default_power)
          /. Float.max 1e-9 (v.Sweep.optimal_power -. v.Sweep.default_power));
    ]
  in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "workload"; "default P_l"; "common (LOO) P_l"; "optimal P_l"; "gain retained" ]
    [ row "low utilization" sweep_low; row "high utilization" sweep_high ];
  print_endline
    "paper's observation: the common (cross-run) setting retains nearly all of the optimal's gain"

(* {2 Figure 4: incremental deployment} *)

let bench_figure4 budget ~(sweep_low : Sweep.t) =
  section "Figure 4: incremental deployment (half modified, half default)";
  let optimal = (Sweep.optimal sweep_low).Sweep.params in
  let config =
    { Scenario.low_utilization with Scenario.duration_s = budget.duration_s }
  in
  let r = Incremental.run ~params_modified:optimal config in
  let group name (g : Incremental.group_result) =
    [
      name;
      string_of_int g.Incremental.connections;
      mbps g.Incremental.throughput_bps;
      ms g.Incremental.queueing_delay_s;
      pct g.Incremental.loss_proxy;
      Table.fmt_float g.Incremental.power;
    ]
  in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "group"; "conns"; "thr Mbps"; "qdelay ms"; "rexmit"; "power P_l" ]
    [ group "modified (optimal params)" r.Incremental.modified;
      group "unmodified (defaults)" r.Incremental.unmodified ];
  Printf.printf "modified senders use %s; unmodified keep %s\n"
    (Cubic.params_to_string optimal)
    (Cubic.params_to_string Cubic.default_params);
  (* Ablation: the same half-and-half split with a RED bottleneck.  The
     paper's incentive argument (Section 3.1) rests on FIFO drop-tail
     queueing; RED's early dropping shields the unmodified senders from
     the default setting's standing queue. *)
  let with_red engine dumbbell =
    let bottleneck = dumbbell.Phi_net.Topology.bottleneck in
    ignore engine;
    Phi_net.Link.set_discipline bottleneck
      ~rng:(Phi_util.Prng.create ~seed:4242)
      (Phi_net.Link.Red
         (Phi_net.Link.default_red
            ~capacity_pkts:(Phi_net.Link.capacity_pkts bottleneck)
            ()))
  in
  let red = Incremental.run ~observe:with_red ~params_modified:optimal config in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "group (RED bottleneck)"; "conns"; "thr Mbps"; "qdelay ms"; "rexmit"; "power P_l" ]
    [ group "modified (optimal params)" red.Incremental.modified;
      group "unmodified (defaults)" red.Incremental.unmodified ];
  Printf.printf
    "ablation — drop-tail vs RED: unmodified qdelay %s -> %s ms (RED curbs the default's standing queue)\n"
    (ms r.Incremental.unmodified.Incremental.queueing_delay_s)
    (ms red.Incremental.unmodified.Incremental.queueing_delay_s);
  (* The DESIGN.md ablation: deployment-fraction sweep. *)
  let sweep =
    Incremental.fraction_sweep ~jobs:!jobs ~fractions:[ 0.25; 0.5; 0.75; 1.0 ]
      ~params_modified:optimal ~seeds:[ List.hd budget.seeds ] config
  in
  Table.print
    ~headers:[ "fraction modified"; "modified P_l"; "unmodified P_l" ]
    (List.map
       (fun (f, m, u) ->
         [
           pct f;
           Table.fmt_float m.Incremental.power;
           (if u.Incremental.connections = 0 then "-" else Table.fmt_float u.Incremental.power);
         ])
       sweep)

(* {2 Table 3: Remy vs Phi} *)

let bench_table3 budget =
  section "Table 3: Remy / Remy-Phi / Cubic on the paper dumbbell";
  let config = { Scenario.table3 with Scenario.duration_s = Float.min 60. budget.duration_s } in
  let rows = Table3.run ~jobs:!jobs ~seeds:budget.seeds config in
  let paper name =
    match List.find_opt (fun (n, _, _, _) -> n = name) Table3.paper_rows with
    | Some (_, thr, d, obj) ->
      (Printf.sprintf "%.2f" thr, Printf.sprintf "%.1f" d, Printf.sprintf "%.2f" obj)
    | None -> ("?", "?", "?")
  in
  Table.print ~align:[ Table.Left ]
    ~headers:
      [
        "Algorithm"; "thr Mbps"; "(paper)"; "qdelay ms"; "(paper)"; "objective"; "(paper)";
        "conns"; "msgs";
      ]
    (List.map
       (fun (r : Table3.row) ->
         let pt, pd, po = paper r.Table3.name in
         [
           r.Table3.name;
           mbps r.Table3.median_throughput_bps;
           pt;
           ms r.Table3.median_queueing_delay_s;
           pd;
           Table.fmt_float r.Table3.median_objective;
           po;
           string_of_int r.Table3.connections;
           string_of_int r.Table3.server_messages;
         ])
       rows);
  print_endline
    "shape to reproduce: objective Phi-ideal >= Phi-practical > Remy > Cubic; Cubic worst delay";
  headline "table3"
    (List.map
       (fun (r : Table3.row) -> (r.Table3.name, Json.float r.Table3.median_objective))
       rows);
  (* Ablation: a delay-based baseline (TCP Vegas) on the same workload,
     for perspective on what autonomous delay feedback achieves without
     any shared state. *)
  let vegas =
    Scenario.run
      ~cc_factory:(fun _ () -> Phi_tcp.Vegas.make ())
      { config with Scenario.seed = List.hd budget.seeds }
  in
  let records = vegas.Scenario.records in
  let median f =
    match List.filter_map f records with
    | [] -> nan
    | l -> Stats.median (Array.of_list l)
  in
  let thr =
    median (fun r ->
        let t = Phi_tcp.Flow.throughput_bps r in
        if t > 0. then Some t else None)
  in
  let qd =
    median (fun r ->
        let q = Phi_tcp.Flow.queueing_delay r in
        if Float.is_finite q && q >= 0. then Some q else None)
  in
  Printf.printf "ablation — TCP Vegas (autonomous, delay-based): %s Mbps median, %s ms qdelay\n"
    (mbps thr) (ms qd)

(* {2 Cross-algorithm matrix} *)

let bench_matrix budget =
  section "Cross-algorithm matrix: the Cc_algo registry over low/high dumbbells";
  let duration_s = Float.min 30. budget.duration_s in
  let cells =
    Cc_matrix.run ~jobs:!jobs ~algorithms:!matrix_algorithms ~duration_s
      ~seeds:budget.seeds ()
  in
  Table.print ~align:[ Table.Left; Table.Left ]
    ~headers:[ "algorithm"; "workload"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l"; "conns" ]
    (List.map
       (fun (c : Cc_matrix.cell) ->
         [
           c.Cc_matrix.algorithm;
           c.Cc_matrix.workload;
           mbps c.Cc_matrix.mean_throughput_bps;
           ms c.Cc_matrix.mean_queueing_delay_s;
           pct c.Cc_matrix.mean_loss_rate;
           Table.fmt_float c.Cc_matrix.mean_power;
           string_of_int c.Cc_matrix.connections;
         ])
       cells);
  Printf.printf "(%d algorithms x %d workloads, means over %d seeds, %g s runs)\n"
    (List.length !matrix_algorithms)
    (List.length Cc_matrix.workloads)
    (List.length budget.seeds) duration_s;
  csv_out "cc_matrix.csv"
    ~header:
      [ "algorithm"; "workload"; "throughput_bps"; "queueing_delay_s"; "loss_rate"; "power";
        "connections" ]
    (List.map
       (fun (c : Cc_matrix.cell) ->
         [
           c.Cc_matrix.algorithm;
           c.Cc_matrix.workload;
           Phi_util.Csv.float_cell c.Cc_matrix.mean_throughput_bps;
           Phi_util.Csv.float_cell c.Cc_matrix.mean_queueing_delay_s;
           Phi_util.Csv.float_cell c.Cc_matrix.mean_loss_rate;
           Phi_util.Csv.float_cell c.Cc_matrix.mean_power;
           string_of_int c.Cc_matrix.connections;
         ])
       cells);
  headline "matrix"
    (List.map
       (fun (c : Cc_matrix.cell) ->
         ( c.Cc_matrix.algorithm ^ "/" ^ c.Cc_matrix.workload,
           Json.float c.Cc_matrix.mean_power ))
       cells);
  cc_matrix_json :=
    Some
      (Json.List
         (List.map
            (fun (c : Cc_matrix.cell) ->
              Json.Obj
                [
                  ("algorithm", Json.String c.Cc_matrix.algorithm);
                  ("workload", Json.String c.Cc_matrix.workload);
                  ("mean_throughput_bps", Json.float c.Cc_matrix.mean_throughput_bps);
                  ("mean_queueing_delay_s", Json.float c.Cc_matrix.mean_queueing_delay_s);
                  ("mean_loss_rate", Json.float c.Cc_matrix.mean_loss_rate);
                  ("mean_power", Json.float c.Cc_matrix.mean_power);
                  ("connections", Json.Int c.Cc_matrix.connections);
                ])
            cells))

(* {2 Section 2.1: path sharing} *)

let bench_sharing _budget =
  section "Section 2.1: flows sharing the WAN path (IPFIX, 1-in-4096 sampling)";
  let r = Sharing_experiment.run ~seed:7 () in
  Printf.printf "trace: %d flows, observed after sampling: %d (in %d subnet-minute slices)\n"
    r.Sharing_experiment.total_flows r.Sharing_experiment.sampled_flows
    r.Sharing_experiment.slices;
  headline "sharing"
    [
      ("total_flows", Json.Int r.Sharing_experiment.total_flows);
      ("sampled_flows", Json.Int r.Sharing_experiment.sampled_flows);
      ( "share_ge_5",
        match List.assoc_opt 5 r.Sharing_experiment.ccdf with
        | Some f -> Json.float f
        | None -> Json.Null );
    ];
  Table.print
    ~headers:[ "shares path with >= k others"; "fraction of flows"; "paper" ]
    (List.map
       (fun (k, frac) ->
         let paper =
           match List.assoc_opt k Sharing_experiment.paper_points with
           | Some p -> pct p
           | None -> "-"
         in
         [ string_of_int k; pct frac; paper ])
       r.Sharing_experiment.ccdf)

(* {2 Figure 5: outage detection and localization} *)

let bench_figure5 _budget =
  section "Figure 5: unreachability event detection and localization";
  let r = Figure5.run ~seed:11 () in
  let inj = r.Figure5.injected in
  Printf.printf "injected: %d min outage at minute %d, scope %s, severity %s\n"
    inj.Phi_workload.Request_stream.duration_min inj.Phi_workload.Request_stream.start_min
    (Format.asprintf "%a" Phi_workload.Request_stream.pp_scope
       inj.Phi_workload.Request_stream.scope)
    (pct inj.Phi_workload.Request_stream.severity);
  (match r.Figure5.events with
  | [] -> print_endline "NO EVENT DETECTED (unexpected)"
  | events ->
    List.iter
      (fun e -> Printf.printf "detected: %s\n" (Format.asprintf "%a" Phi_diagnosis.Anomaly.pp e))
      events);
  (match r.Figure5.localization with
  | Some f ->
    Printf.printf "localized to: %s (deficit share %s, own drop %s)\n"
      (Format.asprintf "%a" Phi_workload.Request_stream.pp_scope f.Phi_diagnosis.Localize.scope)
      (pct f.Phi_diagnosis.Localize.deficit_share)
      (pct f.Phi_diagnosis.Localize.own_drop)
  | None -> print_endline "no localization (unexpected)");
  Printf.printf "correct localization: %b\n" (Figure5.correctly_localized r);
  headline "figure5"
    [
      ("events_detected", Json.Int (List.length r.Figure5.events));
      ("correctly_localized", Json.Bool (Figure5.correctly_localized r));
    ];
  (* The figure itself: the affected slice's volume vs its baseline around
     the event, in 15-minute bins. *)
  let start = Stdlib.max 0 (inj.Phi_workload.Request_stream.start_min - 60) in
  let stop =
    Stdlib.min
      (Array.length r.Figure5.affected_series)
      (inj.Phi_workload.Request_stream.start_min + inj.Phi_workload.Request_stream.duration_min + 60)
  in
  let bins = ref [] in
  let i = ref start in
  while !i + 15 <= stop do
    let slice a = Stats.mean (Array.sub a !i 15) in
    bins :=
      [
        string_of_int !i;
        Table.fmt_float ~decimals:0 (slice r.Figure5.affected_baseline);
        Table.fmt_float ~decimals:0 (slice r.Figure5.affected_series);
      ]
      :: !bins;
    i := !i + 15
  done;
  Table.print ~headers:[ "minute"; "expected req/min"; "actual req/min" ] (List.rev !bins);
  csv_out "figure5.csv"
    ~header:[ "minute"; "affected_actual"; "affected_expected"; "total_actual" ]
    (List.init
       (Array.length r.Figure5.affected_series)
       (fun i ->
         [
           string_of_int i;
           Phi_util.Csv.float_cell r.Figure5.affected_series.(i);
           Phi_util.Csv.float_cell r.Figure5.affected_baseline.(i);
           Phi_util.Csv.float_cell r.Figure5.total_series.(i);
         ]));
  (* Ablation: CUSUM change-point detection vs the robust-z run detector
     (detection latency from the injected start). *)
  let baseline = Phi_diagnosis.Series.seasonal_baseline r.Figure5.total_series in
  let cusum_events =
    Phi_diagnosis.Cusum.detect ~actual:r.Figure5.total_series ~baseline ()
  in
  let runs_latency =
    match r.Figure5.events with
    | e :: _ -> Printf.sprintf "%d min" (e.Phi_diagnosis.Anomaly.start_min - inj.Phi_workload.Request_stream.start_min + 5)
    | [] -> "not detected"
  in
  let cusum_latency =
    match
      Phi_diagnosis.Cusum.detection_latency
        ~injected_start:inj.Phi_workload.Request_stream.start_min cusum_events
    with
    | Some l -> Printf.sprintf "%d min" l
    | None -> "not detected"
  in
  Printf.printf "ablation — detection latency: robust-z runs ~%s vs CUSUM %s\n" runs_latency
    cusum_latency

(* {2 Section 3.3: prioritization} *)

let bench_priority budget =
  section "Section 3.3: prioritization across an entity's flows (weighted ensemble)";
  let r =
    Priority_experiment.run ~duration_s:budget.duration_s ~spec:Topology.paper_spec ~seed:3 ()
  in
  Table.print
    ~headers:[ "flow weight"; "throughput Mbps" ]
    (List.map
       (fun (f : Priority_experiment.flow_share) ->
         [
           Table.fmt_float f.Priority_experiment.weight;
           mbps f.Priority_experiment.throughput_bps;
         ])
       r.Priority_experiment.entity_flows);
  Printf.printf "entity aggregate: %s Mbps vs %s Mbps for the same number of standard flows\n"
    (mbps r.Priority_experiment.entity_aggregate_bps)
    (mbps r.Priority_experiment.reference_aggregate_bps);
  Printf.printf "competitors kept: %s Mbps (vs %s in the all-standard control)\n"
    (mbps r.Priority_experiment.competitor_aggregate_bps)
    (mbps r.Priority_experiment.competitor_reference_bps)

(* {2 Section 3.5: performance prediction} *)

let bench_predict _budget =
  section "Section 3.5: performance prediction from shared history";
  let r = Predict_experiment.run ~seed:4 () in
  Printf.printf "%d prefixes, %d training samples, %d test queries\n"
    r.Predict_experiment.prefixes r.Predict_experiment.training_samples
    r.Predict_experiment.test_samples;
  Table.print ~align:[ Table.Left ]
    ~headers:[ "predictor"; "median abs relative error" ]
    [
      [ "hierarchical (/24 -> /16 -> /8 -> global)"; pct r.Predict_experiment.hierarchical_mape ];
      [ "global median (no shared hierarchy)"; pct r.Predict_experiment.global_mape ];
    ];
  Printf.printf "cold prefixes served by fallback levels: %d\n"
    r.Predict_experiment.cold_prefixes_served;
  headline "predict"
    [
      ("hierarchical_mape", Json.float r.Predict_experiment.hierarchical_mape);
      ("global_mape", Json.float r.Predict_experiment.global_mape);
    ];
  Table.print ~align:[ Table.Left ]
    ~headers:[ "path"; "predicted MOS"; "label" ]
    (List.map
       (fun (name, mos) ->
         [ name; Table.fmt_float mos; Phi_predict.Voip.quality_label mos ])
       r.Predict_experiment.example_mos)

(* {2 Section 3.2: informed adaptation} *)

let bench_adaptation _budget =
  section "Section 3.2: informed adaptation without cooperation";
  let r = Adaptation_experiment.run ~seed:5 () in
  let j = r.Adaptation_experiment.jitter in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "jitter buffer"; "size ms"; "late packets" ]
    [
      [ "cold start"; Table.fmt_float j.Adaptation_experiment.cold_buffer_ms;
        pct j.Adaptation_experiment.cold_late_fraction ];
      [ "informed (shared p95)"; Table.fmt_float j.Adaptation_experiment.informed_buffer_ms;
        pct j.Adaptation_experiment.informed_late_fraction ];
    ];
  Printf.printf "latency saved by informed initialization: %s ms\n"
    (Table.fmt_float j.Adaptation_experiment.buffer_saving_ms);
  headline "adaptation"
    [
      ("buffer_saving_ms", Json.float j.Adaptation_experiment.buffer_saving_ms);
      ( "informed_late_fraction",
        Json.float j.Adaptation_experiment.informed_late_fraction );
      ("cold_late_fraction", Json.float j.Adaptation_experiment.cold_late_fraction);
    ];
  let d = r.Adaptation_experiment.dupack in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "dup-ACK threshold"; "value"; "spurious fast-retransmit rate" ]
    [
      [ "standard"; string_of_int d.Adaptation_experiment.standard_threshold;
        pct d.Adaptation_experiment.standard_spurious_fraction ];
      [ "informed (shared reorder depths)"; string_of_int d.Adaptation_experiment.recommended_threshold;
        pct d.Adaptation_experiment.informed_spurious_fraction ];
    ]

(* {2 Mega-scale context plane: the million-flow swarm} *)

let bench_swarm budget =
  section "Mega-scale context plane: sharded, epoch-batched swarm";
  (* One lookup -> connect -> report round trip per flow, every message
     through the binary wire format.  The full budget doubles the fleet;
     quick keeps the acceptance-level million flows — the swarm is
     cheap next to the simulation sweeps. *)
  let n_flows = if budget.label = full_budget.label then 2_000_000 else 1_000_000 in
  let config = { Swarm.default_config with Swarm.n_flows } in
  let r = Swarm.run ~jobs:!jobs ~config () in
  let us v = Table.fmt_float (v *. 1e6) in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "metric"; "value" ]
    [
      [ "flows served"; string_of_int r.Swarm.flows ];
      [ "lookups/s"; Table.fmt_float r.Swarm.lookups_per_s ];
      [ "reports/s"; Table.fmt_float r.Swarm.reports_per_s ];
      [ "p50 lookup us"; us r.Swarm.p50_lookup_s ];
      [ "p99 lookup us"; us r.Swarm.p99_lookup_s ];
      [ "shard balance (Jain)"; Printf.sprintf "%.4f" r.Swarm.jain_index ];
      [ "resident paths"; string_of_int r.Swarm.resident_paths ];
      [ "evictions"; string_of_int r.Swarm.evictions ];
      [ "epoch flushes"; string_of_int r.Swarm.flushes ];
    ];
  Printf.printf "fingerprint: %s\n" r.Swarm.fingerprint;
  Printf.printf "(%d cells x %d shards, %.2f s wall)\n" config.Swarm.cells
    config.Swarm.shards_per_cell r.Swarm.elapsed_s;
  csv_out "swarm.csv"
    ~header:
      [ "flows"; "lookups_per_s"; "reports_per_s"; "p50_lookup_s"; "p99_lookup_s";
        "jain_index"; "resident_paths"; "evictions" ]
    [
      [
        string_of_int r.Swarm.flows;
        Phi_util.Csv.float_cell r.Swarm.lookups_per_s;
        Phi_util.Csv.float_cell r.Swarm.reports_per_s;
        Phi_util.Csv.float_cell r.Swarm.p50_lookup_s;
        Phi_util.Csv.float_cell r.Swarm.p99_lookup_s;
        Phi_util.Csv.float_cell r.Swarm.jain_index;
        string_of_int r.Swarm.resident_paths;
        string_of_int r.Swarm.evictions;
      ];
    ];
  headline "swarm"
    [
      ("lookups_per_s", Json.float r.Swarm.lookups_per_s);
      ("p99_lookup_s", Json.float r.Swarm.p99_lookup_s);
      ("jain_index", Json.float r.Swarm.jain_index);
    ];
  swarm_json :=
    Some
      (Json.Obj
         [
           ("flows", Json.Int r.Swarm.flows);
           ("lookups", Json.Int r.Swarm.lookups);
           ("reports", Json.Int r.Swarm.reports);
           ("cells", Json.Int config.Swarm.cells);
           ("shards_per_cell", Json.Int config.Swarm.shards_per_cell);
           ("lookups_per_s", Json.float r.Swarm.lookups_per_s);
           ("reports_per_s", Json.float r.Swarm.reports_per_s);
           ("p50_lookup_s", Json.float r.Swarm.p50_lookup_s);
           ("p99_lookup_s", Json.float r.Swarm.p99_lookup_s);
           ("jain_index", Json.float r.Swarm.jain_index);
           ("resident_paths", Json.Int r.Swarm.resident_paths);
           ("evictions", Json.Int r.Swarm.evictions);
           ("flushes", Json.Int r.Swarm.flushes);
           ("elapsed_s", Json.float r.Swarm.elapsed_s);
           ("fingerprint", Json.String r.Swarm.fingerprint);
           ( "jobs",
             Json.Int (Pool.effective_jobs ~jobs:!jobs ~cells:config.Swarm.cells ()) );
         ])

(* {2 Conservative parallel DES: the 1000-sender parking lot} *)

let bench_pdes budget =
  section "Conservative parallel DES: 1000-sender multi-bottleneck parking lot";
  (* One giant topology — four 500 Mb/s bottleneck segments, 960 local
     Cubic pairs plus 40 flows traversing every segment — partitioned
     one island per segment and advanced in 10 ms lookahead windows.
     The same scenario runs at 1, 2 and 4 worker domains; the
     fingerprint (and event count) must be identical for every width,
     and the wall-clock ratio is the scaling curve the report gates. *)
  let spec =
    let duration_s =
      if budget.label = quick_budget.label then 2.
      else if budget.label = full_budget.label then Parking_lot.default_spec.Parking_lot.duration_s
      else 4.
    in
    { Parking_lot.default_spec with Parking_lot.duration_s }
  in
  (* Under the armed sanitizer Parking_lot forces every run serial, so
     a scaling curve would be three identical measurements — keep one. *)
  let jobs_list =
    if Phi_sim.Invariant.enabled () then [ 1 ]
    else if budget.label = quick_budget.label then [ 1; 2 ]
    else [ 1; 2; 4 ]
  in
  let runs = List.map (fun j -> Parking_lot.run ~jobs:j ~spec ()) jobs_list in
  let serial = List.hd runs in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "jobs"; "wall s"; "events/s"; "speedup"; "efficiency" ]
    (List.map
       (fun (r : Parking_lot.result) ->
         let speedup = serial.Parking_lot.wall_s /. r.Parking_lot.wall_s in
         [
           string_of_int r.Parking_lot.jobs;
           Printf.sprintf "%.2f" r.Parking_lot.wall_s;
           Table.fmt_float r.Parking_lot.events_per_s;
           Printf.sprintf "%.2f" speedup;
           Printf.sprintf "%.2f" (speedup /. float_of_int r.Parking_lot.jobs);
         ])
       runs);
  List.iter
    (fun (r : Parking_lot.result) ->
      if r.Parking_lot.fingerprint <> serial.Parking_lot.fingerprint then begin
        Printf.eprintf "bench: pdes fingerprint diverged at jobs %d:\n  %s\n  %s\n"
          r.Parking_lot.jobs serial.Parking_lot.fingerprint r.Parking_lot.fingerprint;
        exit 1
      end)
    runs;
  Printf.printf "fingerprint: %s\n" serial.Parking_lot.fingerprint;
  Printf.printf
    "(%d senders, %d islands, %.0f ms window; long flows %.2f Mb/s, local %.1f Mb/s)\n"
    (Parking_lot.senders spec) serial.Parking_lot.islands
    (serial.Parking_lot.window_s *. 1e3)
    (serial.Parking_lot.long_goodput_bps /. 1e6)
    (serial.Parking_lot.local_goodput_bps /. 1e6);
  csv_out "pdes.csv"
    ~header:[ "jobs"; "wall_s"; "events"; "events_per_s"; "fingerprint" ]
    (List.map
       (fun (r : Parking_lot.result) ->
         [
           string_of_int r.Parking_lot.jobs;
           Phi_util.Csv.float_cell r.Parking_lot.wall_s;
           string_of_int r.Parking_lot.events;
           Phi_util.Csv.float_cell r.Parking_lot.events_per_s;
           r.Parking_lot.fingerprint;
         ])
       runs);
  let best = List.fold_left (fun acc (r : Parking_lot.result) -> Float.max acc r.Parking_lot.events_per_s) 0. runs in
  headline "pdes"
    [
      ("events_per_s", Json.float best);
      ("senders", Json.Int (Parking_lot.senders spec));
    ];
  pdes_json :=
    Some
      (Json.Obj
         [
           ("islands", Json.Int serial.Parking_lot.islands);
           ("window_s", Json.float serial.Parking_lot.window_s);
           ("senders", Json.Int (Parking_lot.senders spec));
           ("duration_s", Json.float spec.Parking_lot.duration_s);
           ("cores", Json.Int (Pool.available_cores ()));
           ( "jobs",
             Json.Int
               (List.fold_left
                  (fun acc (r : Parking_lot.result) -> Stdlib.max acc r.Parking_lot.jobs)
                  1 runs) );
           ( "runs",
             Json.List
               (List.map
                  (fun (r : Parking_lot.result) ->
                    Json.Obj
                      [
                        ("jobs", Json.Int r.Parking_lot.jobs);
                        ("wall_s", Json.float r.Parking_lot.wall_s);
                        ("events", Json.Int r.Parking_lot.events);
                        ("events_per_s", Json.float r.Parking_lot.events_per_s);
                        ("fingerprint", Json.String r.Parking_lot.fingerprint);
                      ])
                  runs) );
         ])

(* {2 WAN evaluation matrix: algorithm x topology zoo x dynamics} *)

let bench_wan_matrix budget =
  section "WAN evaluation matrix: algorithm x topology zoo x adversarial dynamics";
  (* The quick budget keeps the matrix to a single smoke cell (first
     algorithm over the WAN zoo under link flaps) so CI exercises the
     whole plumbing — graph builder, dynamics script, report gates —
     in seconds; default and full budgets sweep the three structural
     topology classes x three regimes for every selected algorithm. *)
  let quick = budget.label = quick_budget.label in
  let algorithms = if quick then [ List.hd !matrix_algorithms ] else !matrix_algorithms in
  let topologies = if quick then [ "wan" ] else Cc_matrix.default_topologies in
  let dynamics = if quick then [ "flap" ] else Cc_matrix.default_dynamics in
  let seeds = if quick then [ List.hd budget.seeds ] else budget.seeds in
  let duration_s = if quick then 6. else 12. in
  let cells =
    Cc_matrix.run_matrix ~jobs:!jobs ~algorithms ~topologies ~dynamics ~duration_s ~seeds ()
  in
  Table.print ~align:[ Table.Left; Table.Left; Table.Left; Table.Left ]
    ~headers:
      [ "algorithm"; "topology"; "dynamics"; "aqm"; "thr Mbps"; "delay ms"; "loss"; "power P_l";
        "jain"; "p99 fct s"; "conns" ]
    (List.map
       (fun (c : Cc_matrix.matrix_cell) ->
         [
           c.Cc_matrix.m_algorithm;
           c.Cc_matrix.m_topology;
           c.Cc_matrix.m_dynamics;
           c.Cc_matrix.m_aqm;
           mbps c.Cc_matrix.m_throughput_bps;
           ms c.Cc_matrix.m_delay_s;
           pct c.Cc_matrix.m_loss_rate;
           Table.fmt_float c.Cc_matrix.m_power;
           Printf.sprintf "%.3f" c.Cc_matrix.m_jain;
           Printf.sprintf "%.2f" c.Cc_matrix.m_p99_fct_s;
           string_of_int c.Cc_matrix.m_connections;
         ])
       cells);
  Printf.printf "(%d algorithms x %d topologies x %d dynamics, means over %d seeds, %g s cells)\n"
    (List.length algorithms) (List.length topologies) (List.length dynamics)
    (List.length seeds) duration_s;
  (* Determinism probe: re-run the first combination's seeds serially
     and fold the floats of both cells into fingerprints.  Report_check
     gates their equality, so a pool-introduced divergence (worker
     state leaking across cells, a jobs-dependent rng) fails CI loudly
     instead of drifting the dashboards.  At --jobs 1 the probe is a
     pure replay of the same serial path. *)
  let fingerprint (c : Cc_matrix.matrix_cell) =
    Printf.sprintf "%h;%h;%h;%h;%h;%d" c.Cc_matrix.m_throughput_bps c.Cc_matrix.m_delay_s
      c.Cc_matrix.m_jain c.Cc_matrix.m_p99_fct_s c.Cc_matrix.m_power c.Cc_matrix.m_connections
  in
  let probe_parallel = List.hd cells in
  let probe_serial =
    List.hd
      (Cc_matrix.run_matrix ~jobs:1 ~algorithms:[ List.hd algorithms ]
         ~topologies:[ List.hd topologies ] ~dynamics:[ List.hd dynamics ] ~duration_s ~seeds ())
  in
  let probe_name =
    Printf.sprintf "%s/%s/%s" probe_parallel.Cc_matrix.m_algorithm
      probe_parallel.Cc_matrix.m_topology probe_parallel.Cc_matrix.m_dynamics
  in
  if fingerprint probe_parallel <> fingerprint probe_serial then begin
    Printf.eprintf "bench: wan_matrix cell %s diverged from its serial replay:\n  %s\n  %s\n"
      probe_name (fingerprint probe_parallel) (fingerprint probe_serial);
    exit 1
  end;
  Printf.printf "determinism probe %s: %s\n" probe_name (fingerprint probe_serial);
  csv_out "wan_matrix.csv"
    ~header:
      [ "algorithm"; "topology"; "dynamics"; "aqm"; "throughput_bps"; "delay_s";
        "queueing_delay_s"; "loss_rate"; "power"; "jain"; "p99_fct_s"; "connections" ]
    (List.map
       (fun (c : Cc_matrix.matrix_cell) ->
         [
           c.Cc_matrix.m_algorithm;
           c.Cc_matrix.m_topology;
           c.Cc_matrix.m_dynamics;
           c.Cc_matrix.m_aqm;
           Phi_util.Csv.float_cell c.Cc_matrix.m_throughput_bps;
           Phi_util.Csv.float_cell c.Cc_matrix.m_delay_s;
           Phi_util.Csv.float_cell c.Cc_matrix.m_queueing_delay_s;
           Phi_util.Csv.float_cell c.Cc_matrix.m_loss_rate;
           Phi_util.Csv.float_cell c.Cc_matrix.m_power;
           Phi_util.Csv.float_cell c.Cc_matrix.m_jain;
           Phi_util.Csv.float_cell c.Cc_matrix.m_p99_fct_s;
           string_of_int c.Cc_matrix.m_connections;
         ])
       cells);
  let min_over f = List.fold_left (fun acc c -> Float.min acc (f c)) infinity cells in
  let max_over f = List.fold_left (fun acc c -> Float.max acc (f c)) neg_infinity cells in
  headline "wan_matrix"
    [
      ("cells", Json.Int (List.length cells));
      ("min_jain", Json.float (min_over (fun c -> c.Cc_matrix.m_jain)));
      ("max_p99_fct_s", Json.float (max_over (fun c -> c.Cc_matrix.m_p99_fct_s)));
      ("max_power", Json.float (max_over (fun c -> c.Cc_matrix.m_power)));
    ];
  wan_matrix_json :=
    Some
      (Json.Obj
         [
           ("duration_s", Json.float duration_s);
           ("seeds", Json.Int (List.length seeds));
           ("jobs", Json.Int !jobs);
           ("aqm", Json.String "droptail");
           ( "cells",
             Json.List
               (List.map
                  (fun (c : Cc_matrix.matrix_cell) ->
                    Json.Obj
                      [
                        ("algorithm", Json.String c.Cc_matrix.m_algorithm);
                        ("topology", Json.String c.Cc_matrix.m_topology);
                        ("dynamics", Json.String c.Cc_matrix.m_dynamics);
                        ("aqm", Json.String c.Cc_matrix.m_aqm);
                        ("throughput_bps", Json.float c.Cc_matrix.m_throughput_bps);
                        ("delay_s", Json.float c.Cc_matrix.m_delay_s);
                        ("queueing_delay_s", Json.float c.Cc_matrix.m_queueing_delay_s);
                        ("loss_rate", Json.float c.Cc_matrix.m_loss_rate);
                        ("power", Json.float c.Cc_matrix.m_power);
                        ("jain", Json.float c.Cc_matrix.m_jain);
                        ("p99_fct_s", Json.float c.Cc_matrix.m_p99_fct_s);
                        ("connections", Json.Int c.Cc_matrix.m_connections);
                      ])
                  cells) );
           ( "determinism",
             Json.Obj
               [
                 ("cell", Json.String probe_name);
                 ("parallel", Json.String (fingerprint probe_parallel));
                 ("serial", Json.String (fingerprint probe_serial));
               ] );
         ])

(* {2 Section 3.1: cross-provider aggregation} *)

let bench_secure_agg _budget =
  section "Section 3.1: privacy-preserving cross-provider aggregation";
  (* Five providers each hold a private congestion estimate for a shared
     transit path; pairwise masking lets them publish a common barometer
     without revealing anyone's number. *)
  let rng = Phi_util.Prng.create ~seed:9 in
  let session = Phi.Secure_agg.create rng ~participants:5 in
  let private_utils = [ 0.82; 0.47; 0.91; 0.55; 0.63 ] in
  let shares =
    List.mapi (fun p u -> Phi.Secure_agg.submit session ~participant:p ~value:u) private_utils
  in
  Table.print ~align:[ Table.Left ]
    ~headers:[ "provider"; "private estimate"; "published share (masked)" ]
    (List.mapi
       (fun i (u, share) ->
         [ Printf.sprintf "provider-%d" i; pct u; Int64.to_string share ])
       (List.combine private_utils shares));
  Printf.printf "common barometer (mean utilization): %s — true mean %s\n"
    (pct (Phi.Secure_agg.mean session shares))
    (pct (Phi_util.Stats.mean (Array.of_list private_utils)))

(* {2 Bechamel micro-benchmarks: one per experiment kernel} *)

let micro_benchmarks () =
  section "Bechamel micro-benchmarks (one kernel per table/figure)";
  let open Bechamel in
  let cubic_kernel () =
    let cc = Cubic.make Cubic.default_params in
    for i = 1 to 1000 do
      let now = float_of_int i *. 0.01 in
      cc.Phi_tcp.Cc.on_ack cc ~now ~rtt:0.1 ~sent_at:(now -. 0.1) ~newly_acked:1
    done
  in
  let scenario_kernel () =
    ignore
      (Scenario.run
         { Scenario.low_utilization with Scenario.duration_s = 3.; Scenario.seed = 1 })
  in
  let persistent_kernel () =
    ignore
      (Scenario.run_persistent ~n_flows:10 ~duration_s:4. ~spec:Topology.paper_spec ~seed:1 ())
  in
  let remy_kernel () =
    let table = Phi_remy.Pretrained.remy () in
    ignore
      (Phi_remy.Trainer.evaluate ~table ~util:`None ~seeds:[ 1 ]
         [ { Phi_remy.Trainer.paper_scenario with Phi_remy.Trainer.duration_s = 3. } ])
  in
  let sharing_kernel () =
    let config =
      { Phi_workload.Cloud_trace.default_config with
        Phi_workload.Cloud_trace.flows_per_minute = 2000.;
        horizon_minutes = 2;
      }
    in
    ignore (Sharing_experiment.run ~config ~seed:1 ())
  in
  let figure5_kernel () =
    let config = { Phi_workload.Request_stream.default_config with Phi_workload.Request_stream.days = 2 } in
    ignore (Figure5.run ~config ~seed:1 ())
  in
  let priority_kernel () =
    ignore
      (Priority_experiment.run ~duration_s:4. ~n_competitors:2
         ~priorities:[| 2.; 1. |] ~spec:Topology.paper_spec ~seed:1 ())
  in
  let predict_kernel () = ignore (Predict_experiment.run ~n_p16:2 ~p24_per_p16:8 ~seed:1 ()) in
  let adaptation_kernel () = ignore (Adaptation_experiment.run ~n_shared:500 ~n_test:500 ~seed:1 ()) in
  let tests =
    [
      Test.make ~name:"table1-cubic-on-ack-x1000" (Staged.stage cubic_kernel);
      Test.make ~name:"figure2-onoff-scenario-3s" (Staged.stage scenario_kernel);
      Test.make ~name:"figure2c-persistent-4s" (Staged.stage persistent_kernel);
      Test.make ~name:"table3-remy-eval-3s" (Staged.stage remy_kernel);
      Test.make ~name:"s21-ipfix-sharing" (Staged.stage sharing_kernel);
      Test.make ~name:"figure5-diagnosis" (Staged.stage figure5_kernel);
      Test.make ~name:"s33-priority-4s" (Staged.stage priority_kernel);
      Test.make ~name:"s35-prediction" (Staged.stage predict_kernel);
      Test.make ~name:"s32-adaptation" (Staged.stage adaptation_kernel);
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.3f us/run\n%!" name (est /. 1e3)
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    tests

(* {2 Driver} *)

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let value_of flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let budget =
    if has "--full" then full_budget
    else if has "--quick" then quick_budget
    else default_budget
  in
  let only = value_of "--only" in
  csv_dir := value_of "--csv";
  let json_path = value_of "--json" in
  (jobs :=
     match value_of "--jobs" with
     | Some v -> (
       match int_of_string_opt v with
       | Some j when j >= 1 -> j
       | Some _ | None ->
         prerr_endline "bench: --jobs expects a positive integer";
         exit 2)
     | None -> Pool.default_jobs ());
  (* The invariant sanitizer accumulates into a process-global buffer
     that is not domain-safe; armed runs must stay serial. *)
  if Phi_sim.Invariant.enabled () && !jobs > 1 then begin
    Printf.printf "(PHI_SANITIZE=1: forcing --jobs 1, the sanitizer is not domain-safe)\n";
    jobs := 1
  end;
  (match value_of "--cc" with
  | None -> ()
  | Some spec -> (
    try
      matrix_algorithms :=
        List.map Cc_select.parse_cc (String.split_on_char ',' spec)
    with Invalid_argument msg ->
      prerr_endline ("bench: --cc: " ^ msg);
      exit 2));
  let want id = match only with None -> true | Some o -> o = id in
  let run_if id ~cells f = if want id then ignore (timed id ~cells (fun () -> f ())) else () in
  let cells1 = List.length budget.seeds in
  Printf.printf "Phi benchmark harness — budget: %s\n" budget.label;
  Printf.printf "jobs: %d (of %d cores)\n" !jobs (Pool.available_cores ());
  run_if "table1" ~cells:1 (fun () -> bench_table1 budget);
  run_if "table2" ~cells:1 (fun () -> bench_table2 budget);
  let sweep_low =
    if want "figure2a" || want "figure3" || want "figure4" then
      Some (timed "figure2a" ~cells:(sweep_cells budget) (fun () -> bench_figure2a budget))
    else None
  in
  let sweep_high =
    if want "figure2b" || want "figure3" then
      Some (timed "figure2b" ~cells:(sweep_cells budget) (fun () -> bench_figure2b budget))
    else None
  in
  run_if "figure2c" ~cells:9 (fun () -> bench_figure2c budget);
  (match (sweep_low, sweep_high) with
  | Some low, Some high when want "figure3" ->
    run_if "figure3" ~cells:1 (fun () -> bench_figure3 ~sweep_low:low ~sweep_high:high)
  | _ -> ());
  (match sweep_low with
  | Some low when want "figure4" ->
    run_if "figure4" ~cells:6 (fun () -> bench_figure4 budget ~sweep_low:low)
  | _ -> ());
  run_if "table3" ~cells:(4 * cells1) (fun () -> bench_table3 budget);
  run_if "matrix"
    ~cells:(List.length !matrix_algorithms * List.length Cc_matrix.workloads * cells1)
    (fun () -> bench_matrix budget);
  run_if "sharing" ~cells:1 (fun () -> bench_sharing budget);
  run_if "figure5" ~cells:1 (fun () -> bench_figure5 budget);
  run_if "priority" ~cells:1 (fun () -> bench_priority budget);
  run_if "secureagg" ~cells:1 (fun () -> bench_secure_agg budget);
  run_if "predict" ~cells:1 (fun () -> bench_predict budget);
  run_if "adaptation" ~cells:1 (fun () -> bench_adaptation budget);
  run_if "swarm" ~cells:Swarm.default_config.Swarm.cells (fun () -> bench_swarm budget);
  run_if "pdes" ~cells:3 (fun () -> bench_pdes budget);
  let wan_matrix_cells =
    if budget.label = quick_budget.label then 1
    else
      List.length !matrix_algorithms
      * List.length Cc_matrix.default_topologies
      * List.length Cc_matrix.default_dynamics
      * cells1
  in
  run_if "wan_matrix" ~cells:wan_matrix_cells (fun () -> bench_wan_matrix budget);
  if (not (has "--no-micro")) && only = None then micro_benchmarks ();
  (match json_path with
  | None -> ()
  | Some path ->
    let calibration = calibrate budget in
    let report = report_json ~budget ~calibration in
    Json.to_file ~path report;
    (* Re-read and parse: a malformed report must fail loudly here, not
       downstream in CI. *)
    (match Json.of_file ~path with
    | Ok _ -> Printf.printf "\n(wrote %s)\n" path
    | Error msg ->
      Printf.eprintf "bench: emitted JSON failed to parse: %s\n" msg;
      exit 1));
  print_endline "\ndone."
