(* Event-core microbenchmarks: the allocation-free engine against a
   verbatim copy of the pre-refactor implementation.

   Usage: dune exec bench/micro.exe [-- --quick] [--json PATH]

   Two metric families:

   - events/s: a timer-churn workload (65536 outstanding
     self-rescheduling chains, one cancelled bystander per 8 events)
     run against the old boxed binary-heap engine
     ([Legacy_heap]/[Legacy_engine] below) and against
     [Phi_sim.Engine], both through the closure API and through the
     closure-free port API.  The legacy copy is embedded here so the
     comparison survives the old code's deletion.

   - packets/s: the link pipeline under saturation — a closed loop of
     packets circulating through one 1 Gbps link, and the paper dumbbell
     at ~99% utilization with 8 persistent Cubic flows (data packets
     counted; ACKs roughly double the true event rate).

   Both families also report an allocation profile: [Gc.minor_words]
   deltas around the port-churn and link-loop runs give minor words per
   event and per packet (the regression gate [phi_json_check] enforces a
   committed budget on the latter), and the link-loop packet pool
   reports its high-water mark.

   - decisions/s: the compiled decision plane — per-ack whisker lookup
     (interpreted Rule_table scan against the flat Compiled_table) and
     per-connection policy choice (interpreted Policy.choice_for
     against the flat 64-entry Policy.Compiled) on identical
     pregenerated inputs, with a Gc.minor_words delta around the
     compiled whisker loop (the gate is ~0 words/lookup).

   --json PATH merges "micro", "alloc" and "decision" sections into an
   existing phi-bench-report document (bench/main.exe --json output),
   stamping the schema to phi-bench-report/2 — /3 when the document
   carries the cross-algorithm "cc_matrix" section, /5 when the
   million-flow "swarm" section is there as well (micro always
   contributes the decision section, so the old /4 stamp is subsumed),
   /6 when the parallel-DES "pdes" scaling section is also present —
   or writes a standalone /2 report when PATH does not exist yet. *)

module Engine = Phi_sim.Engine
module Link = Phi_net.Link
module Packet = Phi_net.Packet
module Topology = Phi_net.Topology
module Scenario = Phi_experiments.Scenario
module Json = Phi_util.Json
module Pool = Phi_runner.Pool
module Prng = Phi_util.Prng
module Rule_table = Phi_remy.Rule_table
module Compiled_table = Phi_remy.Compiled_table
module Context = Phi.Context
module Policy = Phi.Policy
module Cc_algo = Phi.Cc_algo

(* {2 The pre-refactor event core, embedded verbatim}

   Boxed heap entries, a record handle and a record event per schedule —
   exactly the code this PR replaced, minus the sanitizer hooks (which
   cost nothing on the hot path when disarmed). *)

module Legacy_heap = struct
  type 'a entry = { priority : float; seq : int; payload : 'a }
  type 'a t = { mutable data : 'a entry array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

  let grow t entry =
    let cap = Array.length t.data in
    if t.len = cap then begin
      let ncap = Stdlib.max 16 (2 * cap) in
      let ndata = Array.make ncap entry in
      Array.blit t.data 0 ndata 0 t.len;
      t.data <- ndata
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t.data.(i) t.data.(parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let push t ~priority ~seq payload =
    let entry = { priority; seq; payload } in
    grow t entry;
    t.data.(t.len) <- entry;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)

  let pop t =
    if t.len = 0 then None
    else begin
      let e = t.data.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        sift_down t 0
      end;
      Some (e.priority, e.seq, e.payload)
    end
end

module Legacy_engine = struct
  type handle = { mutable live : bool }
  type event = { handle : handle; action : unit -> unit }

  type t = {
    mutable clock : float;
    queue : event Legacy_heap.t;
    mutable next_seq : int;
  }

  let create () = { clock = 0.; queue = Legacy_heap.create (); next_seq = 0 }

  let schedule_at t ~time f =
    if time < t.clock then invalid_arg "Legacy_engine.schedule_at: time in the past";
    let handle = { live = true } in
    Legacy_heap.push t.queue ~priority:time ~seq:t.next_seq { handle; action = f };
    t.next_seq <- t.next_seq + 1;
    handle

  let schedule_after t ~delay f = schedule_at t ~time:(t.clock +. delay) f
  let cancel handle = handle.live <- false

  let step t =
    match Legacy_heap.pop t.queue with
    | None -> false
    | Some (time, _seq, event) ->
      t.clock <- Stdlib.max t.clock time;
      if event.handle.live then begin
        event.handle.live <- false;
        event.action ()
      end;
      true

  let run t = while step t do () done
end

(* {2 Harness} *)

let quick = ref false
let repetitions = 3

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let rate n wall = if wall > 0. then float_of_int n /. wall else 0.

(* {2 events/s: timer churn}

   65536 outstanding chains; every fired event reschedules itself 1 s
   out, and every 8th event also schedules a bystander and cancels it —
   the TCP-timer pattern (RTO armed per segment, cancelled by the ACK).
   The outstanding-event count matches a very busy many-flow simulation
   (tens of thousands of flows each holding a timer or two); deep
   queues are where the old engine's boxed, pointer-chasing heap
   entries hurt most and where the flat arrays pull ahead hardest. *)

let churn_legacy chains total () =
  let e = Legacy_engine.create () in
  let count = ref 0 in
  let rec handler () =
    incr count;
    if !count land 7 = 0 then
      Legacy_engine.cancel (Legacy_engine.schedule_after e ~delay:0.5 ignore);
    if !count < total then ignore (Legacy_engine.schedule_after e ~delay:1. handler)
  in
  for _ = 1 to chains do
    ignore (Legacy_engine.schedule_after e ~delay:1. handler)
  done;
  Legacy_engine.run e

let churn_new chains total () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec handler () =
    incr count;
    if !count land 7 = 0 then
      Engine.cancel e (Engine.schedule_after e ~delay:0.5 ignore);
    if !count < total then ignore (Engine.schedule_after e ~delay:1. handler)
  in
  for _ = 1 to chains do
    ignore (Engine.schedule_after e ~delay:1. handler)
  done;
  Engine.run e

(* The same workload with the recurring timer as a {!Engine.port} —
   registered once, rescheduled by reference — while the cancelled
   bystanders still go through the closure API (ports are not
   cancellable).  This is exactly how the real code divides the work:
   links reschedule ports, TCP timers are cancellable closures.  All
   three variants perform the identical event sequence, so the rates
   are directly comparable. *)
let churn_ports chains total () =
  let e = Engine.create () in
  let count = ref 0 in
  let p = ref (Engine.port e ignore) in
  p :=
    Engine.port e (fun () ->
        incr count;
        if !count land 7 = 0 then
          Engine.cancel e (Engine.schedule_after e ~delay:0.5 ignore);
        if !count < total then Engine.schedule_port_after e ~delay:1. !p);
  for _ = 1 to chains do
    Engine.schedule_port_after e ~delay:1. !p
  done;
  Engine.run e

(* {2 packets/s: saturated link pipeline} *)

let link_loop n () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = Link.create engine pool ~bandwidth_bps:1e9 ~delay_s:1e-4 ~capacity_pkts:128 in
  let delivered = ref 0 in
  Link.set_receiver link (fun pkt ->
      incr delivered;
      (* The receiver owns the handle on delivery; the closed loop hands
         it straight back to the link, so 32 slab cells serve the whole
         run.  Once the quota is met the stragglers go back to the free
         list. *)
      if !delivered < n then Link.send link pkt else Packet.release pool pkt);
  for i = 0 to 31 do
    Link.send link
      (Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:i ~now:0. ~retransmit:false)
  done;
  Engine.run engine;
  (!delivered, Packet.high_water pool)

let dumbbell_packets duration_s () =
  let r =
    Scenario.run_persistent ~n_flows:8 ~duration_s ~spec:Topology.paper_spec ~seed:1 ()
  in
  List.fold_left
    (fun acc (s : Phi_tcp.Flow.conn_stats) -> acc + (s.Phi_tcp.Flow.bytes / Packet.mss))
    0 r.Scenario.records

(* {2 decisions/s: the compiled decision plane}

   The pretrained Phi table with every whisker split once more — the
   few-hundred-rule size a converged Remy run actually carries, where
   the interpreted scan's O(whiskers) cost is real.  Points and
   contexts are pregenerated (both float-array and floatarray forms, so
   no conversion is timed); both variants fold the returned index into
   a sink, which doubles as an equivalence check across the two
   lookups. *)

let decision_table () =
  let table = Phi_remy.Pretrained.remy_phi () in
  List.iter (fun w -> Rule_table.split table w) (Rule_table.whiskers table);
  table

let decision_points dims n =
  let rng = Prng.create ~seed:11 in
  Array.init n (fun _ ->
      let p = Float.Array.make dims 0. in
      for a = 0 to dims - 1 do
        Float.Array.set p a (Prng.float rng)
      done;
      p)

let boxed_points = Array.map (fun p -> Array.init (Float.Array.length p) (Float.Array.get p))

let interpreted_lookups table points rounds () =
  let sink = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to Array.length points - 1 do
      sink := !sink + Rule_table.lookup_index table (Array.unsafe_get points i)
    done
  done;
  !sink

let compiled_lookups table (points : floatarray array) rounds () =
  let sink = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to Array.length points - 1 do
      sink := !sink + Compiled_table.lookup table (Array.unsafe_get points i)
    done
  done;
  !sink

(* The swarm's learned entries: one per registered algorithm, so the
   choice loops exercise both the flat-array hits and the heuristic
   fallback. *)
let decision_policy () =
  let policy = Policy.create () in
  let bucket u n q = { Context.u_bucket = u; Context.n_bucket = n; Context.q_bucket = q } in
  List.iter
    (fun (b, algo) -> Policy.learn policy b algo)
    [
      (bucket 0 0 0, Cc_algo.Remy);
      (bucket 0 1 0, Cc_algo.Remy_phi);
      (bucket 1 2 1, Cc_algo.Vegas);
      (bucket 2 3 1, Cc_algo.Reno 1.);
      (bucket 3 3 2, Cc_algo.Cubic Phi_tcp.Cubic.default_params);
    ];
  policy

let decision_contexts n =
  let rng = Prng.create ~seed:13 in
  Array.init n (fun _ ->
      {
        Context.utilization = Prng.float rng;
        Context.queue_delay_s = Prng.float_range rng ~lo:0. ~hi:0.3;
        Context.competing_senders = Prng.int rng ~bound:64;
        Context.loss_rate = Prng.float_range rng ~lo:0. ~hi:0.05;
      })

let remyish = function Cc_algo.Remy | Cc_algo.Remy_phi -> 1 | _ -> 0

let interpreted_choices policy contexts rounds () =
  let sink = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to Array.length contexts - 1 do
      sink := !sink + remyish (Policy.choice_for policy (Array.unsafe_get contexts i))
    done
  done;
  !sink

let compiled_choices compiled contexts rounds () =
  let sink = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to Array.length contexts - 1 do
      sink :=
        !sink + remyish (Policy.Compiled.choice_for compiled (Array.unsafe_get contexts i))
    done
  done;
  !sink

(* {2 Driver} *)

let () =
  let args = Array.to_list Sys.argv in
  quick := List.mem "--quick" args;
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let churn_total = if !quick then 200_000 else 2_000_000 in
  (* The quick (CI smoke) budget scales the outstanding-chain count down
     with the event count, so setup does not dominate the measurement. *)
  let chains = if !quick then 8192 else 65536 in
  let loop_packets = if !quick then 100_000 else 1_000_000 in
  let dumbbell_s = if !quick then 10. else 30. in
  Printf.printf "Event-core microbenchmarks (%s budget, best of %d)\n%!"
    (if !quick then "quick" else "default")
    repetitions;

  (* Size the minor heap the way sweep workers do, so the numbers below
     reflect the tuned configuration the experiments actually run in. *)
  Pool.tune_gc ();

  (* Interleave the repetitions (legacy, new, ports, legacy, ...) so a
     load spike on the shared machine cannot hit one variant's whole
     sample; each variant keeps its best wall.  The port variant also
     keeps its smallest [Gc.minor_words] delta — the steady-state
     allocation profile, free of first-run warm-up noise. *)
  let legacy_wall = ref infinity in
  let new_wall = ref infinity in
  let port_wall = ref infinity in
  let port_minor = ref infinity in
  for _ = 1 to repetitions do
    let keep best f = let wall, () = timed f in if wall < !best then best := wall in
    keep legacy_wall (churn_legacy chains churn_total);
    keep new_wall (churn_new chains churn_total);
    let m0 = Gc.minor_words () in
    keep port_wall (churn_ports chains churn_total);
    let m = Gc.minor_words () -. m0 in
    if m < !port_minor then port_minor := m
  done;
  let legacy_wall = !legacy_wall in
  let new_wall = !new_wall in
  let port_wall = !port_wall in
  let port_minor = !port_minor in
  let legacy_eps = rate churn_total legacy_wall in
  let new_eps = rate churn_total new_wall in
  let port_eps = rate churn_total port_wall in
  let speedup = if legacy_wall > 0. then legacy_wall /. new_wall else 1. in
  Printf.printf "\n  timer churn, %d events (%d chains, 1-in-8 cancelled bystander):\n"
    churn_total chains;
  Printf.printf "    legacy engine (boxed heap, record handles) %10.0f events/s\n" legacy_eps;
  Printf.printf "    new engine    (SoA 8-ary heap, cell slab)  %10.0f events/s  (%.2fx)\n"
    new_eps speedup;
  Printf.printf "    new engine, recurring timer as a port      %10.0f events/s  (%.2fx)\n%!"
    port_eps
    (if legacy_wall > 0. then legacy_wall /. port_wall else 1.);

  let loop_wall, loop_delivered, loop_minor, loop_high_water =
    let best_wall = ref infinity in
    let best_d = ref 0 in
    let best_minor = ref infinity in
    let high_water = ref 0 in
    for _ = 1 to repetitions do
      let m0 = Gc.minor_words () in
      let wall, (d, hw) = timed (link_loop loop_packets) in
      let m = Gc.minor_words () -. m0 in
      if wall < !best_wall then begin
        best_wall := wall;
        best_d := d
      end;
      if m < !best_minor then best_minor := m;
      if hw > !high_water then high_water := hw
    done;
    (!best_wall, !best_d, !best_minor, !high_water)
  in
  let loop_pps = rate loop_delivered loop_wall in
  let words_per_event = port_minor /. float_of_int churn_total in
  let words_per_packet = loop_minor /. float_of_int loop_delivered in
  Printf.printf "\n  saturated 1 Gbps link, closed loop of 32 packets:\n";
  Printf.printf "    %d packets delivered                  %10.0f packets/s\n%!" loop_delivered
    loop_pps;
  Printf.printf "\n  allocation (best of %d, Gc.minor_words deltas):\n" repetitions;
  Printf.printf "    port churn   %10.4f minor words/event\n" words_per_event;
  Printf.printf "    link loop    %10.4f minor words/packet  (pool high water %d cells)\n%!"
    words_per_packet loop_high_water;

  let dumbbell_wall, data_packets = timed (dumbbell_packets dumbbell_s) in
  let dumbbell_pps = rate data_packets dumbbell_wall in
  Printf.printf "\n  paper dumbbell, 8 persistent Cubic flows, %.0f simulated s:\n" dumbbell_s;
  Printf.printf "    %d data packets delivered               %10.0f packets/s (wall %.2f s)\n%!"
    data_packets dumbbell_pps dumbbell_wall;

  let table = decision_table () in
  let compiled = Compiled_table.compile table in
  let n_points = if !quick then 10_000 else 50_000 in
  let interp_rounds = if !quick then 2 else 10 in
  let comp_rounds = interp_rounds * 20 in
  let points = decision_points (Rule_table.dims table) n_points in
  let box = boxed_points points in
  let policy = decision_policy () in
  let cpolicy = Policy.Compiled.compile policy in
  let n_ctx = if !quick then 10_000 else 20_000 in
  let ctx_interp_rounds = if !quick then 10 else 50 in
  let ctx_comp_rounds = ctx_interp_rounds * 10 in
  let contexts = decision_contexts n_ctx in
  let interp_wall = ref infinity in
  let comp_wall = ref infinity in
  let comp_minor = ref infinity in
  let pol_interp_wall = ref infinity in
  let pol_comp_wall = ref infinity in
  let interp_sink = ref 0 in
  let comp_sink = ref 0 in
  for _ = 1 to repetitions do
    let keep best sink f = let wall, s = timed f in if wall < !best then best := wall; sink := s in
    keep interp_wall interp_sink (interpreted_lookups table box interp_rounds);
    let m0 = Gc.minor_words () in
    keep comp_wall comp_sink (compiled_lookups compiled points comp_rounds);
    let m = Gc.minor_words () -. m0 in
    if m < !comp_minor then comp_minor := m;
    keep pol_interp_wall (ref 0) (interpreted_choices policy contexts ctx_interp_rounds);
    keep pol_comp_wall (ref 0) (compiled_choices cpolicy contexts ctx_comp_rounds)
  done;
  (* The sinks fold every returned index, so equal per-pass sums are a
     cheap online equivalence check between the two lookup paths. *)
  if !comp_sink * interp_rounds <> !interp_sink * comp_rounds then begin
    Printf.eprintf "decision: compiled and interpreted lookups disagree\n";
    Stdlib.exit 1
  end;
  let interp_lps = rate (n_points * interp_rounds) !interp_wall in
  let comp_lps = rate (n_points * comp_rounds) !comp_wall in
  let decision_speedup = if interp_lps > 0. then comp_lps /. interp_lps else 0. in
  let words_per_lookup = !comp_minor /. float_of_int (n_points * comp_rounds) in
  let pol_interp_cps = rate (n_ctx * ctx_interp_rounds) !pol_interp_wall in
  let pol_comp_cps = rate (n_ctx * ctx_comp_rounds) !pol_comp_wall in
  let policy_speedup = if pol_interp_cps > 0. then pol_comp_cps /. pol_interp_cps else 0. in
  Printf.printf "\n  decision plane, %d whiskers -> %d cells, %d random points:\n"
    (Rule_table.size table) (Compiled_table.cell_count compiled) n_points;
  Printf.printf "    interpreted Rule_table scan            %10.0f lookups/s\n" interp_lps;
  Printf.printf "    compiled flat table                    %10.0f lookups/s  (%.1fx, %.4f minor words/lookup)\n"
    comp_lps decision_speedup words_per_lookup;
  Printf.printf "    interpreted Policy.choice_for          %10.0f choices/s\n" pol_interp_cps;
  Printf.printf "    compiled 64-entry policy               %10.0f choices/s  (%.1fx)\n%!"
    pol_comp_cps policy_speedup;

  (match json_path with
  | None -> ()
  | Some path ->
    let micro =
      Json.Obj
        [
          ("quick", Json.Bool !quick);
          ( "events",
            Json.Obj
              [
                ("events", Json.Int churn_total);
                ("chains", Json.Int chains);
                ("legacy_events_per_s", Json.float legacy_eps);
                ("new_events_per_s", Json.float new_eps);
                ("port_events_per_s", Json.float port_eps);
                ("speedup_vs_legacy", Json.float speedup);
                ( "port_speedup_vs_legacy",
                  Json.float (if legacy_wall > 0. then legacy_wall /. port_wall else 1.) );
              ] );
          ( "packets",
            Json.Obj
              [
                ("link_loop_packets", Json.Int loop_delivered);
                ("link_loop_packets_per_s", Json.float loop_pps);
                ("dumbbell_sim_s", Json.float dumbbell_s);
                ("dumbbell_data_packets", Json.Int data_packets);
                ("dumbbell_packets_per_s", Json.float dumbbell_pps);
              ] );
        ]
    in
    let alloc =
      Json.Obj
        [
          ("minor_words_per_event", Json.float words_per_event);
          ("minor_words_per_packet", Json.float words_per_packet);
          ("pool_high_water", Json.Int loop_high_water);
        ]
    in
    let decision =
      Json.Obj
        [
          ("whiskers", Json.Int (Rule_table.size table));
          ("cells", Json.Int (Compiled_table.cell_count compiled));
          ("points", Json.Int n_points);
          ("interpreted_lookups_per_s", Json.float interp_lps);
          ("compiled_lookups_per_s", Json.float comp_lps);
          ("speedup", Json.float decision_speedup);
          ("minor_words_per_lookup", Json.float words_per_lookup);
          ("policy_interpreted_choices_per_s", Json.float pol_interp_cps);
          ("policy_compiled_choices_per_s", Json.float pol_comp_cps);
          ("policy_speedup", Json.float policy_speedup);
        ]
    in
    let doc =
      match Json.of_file ~path with
      | Ok (Json.Obj fields) ->
        (* Merge into an existing bench report, replacing any stale
           micro/alloc/decision sections.  The schema stamp records
           what the document now carries: /2 for micro+alloc+decision,
           /3 when the cross-algorithm cc_matrix section is present
           too, /5 when the swarm context-plane section is there as
           well (decision is always contributed here, so the old /4
           stamp is subsumed), /6 when the parallel-DES pdes scaling
           section rides along with all of the above, and /7 when the
           topology-zoo wan_matrix section is present as well. *)
        let fields =
          List.filter
            (fun (k, _) ->
              k <> "micro" && k <> "alloc" && k <> "decision" && k <> "schema")
            fields
        in
        let schema =
          match
            ( List.mem_assoc "cc_matrix" fields,
              List.mem_assoc "swarm" fields,
              List.mem_assoc "pdes" fields,
              List.mem_assoc "wan_matrix" fields )
          with
          | true, true, true, true -> "phi-bench-report/7"
          | true, true, true, false -> "phi-bench-report/6"
          | true, true, false, _ -> "phi-bench-report/5"
          | true, false, _, _ -> "phi-bench-report/3"
          | false, _, _, _ -> "phi-bench-report/2"
        in
        Json.Obj
          ((("schema", Json.String schema) :: fields)
          @ [ ("alloc", alloc); ("decision", decision); ("micro", micro) ])
      | Ok _ | Error _ ->
        (* Standalone report: the minimal valid phi-bench-report/2
           document plus the alloc, decision and micro sections. *)
        let experiment id wall cells =
          Json.Obj
            [ ("id", Json.String id); ("wall_s", Json.float wall); ("cells", Json.Int cells) ]
        in
        Json.Obj
          [
            ("schema", Json.String "phi-bench-report/2");
            ( "budget",
              Json.String
                (if !quick then "micro-only (quick)" else "micro-only (default)") );
            ("jobs", Json.Int 1);
            ("cores", Json.Int (Pool.available_cores ()));
            ( "total_wall_s",
              Json.float (legacy_wall +. new_wall +. port_wall +. loop_wall +. dumbbell_wall)
            );
            ( "experiments",
              Json.List
                [
                  experiment "micro-churn-legacy" legacy_wall churn_total;
                  experiment "micro-churn-new" new_wall churn_total;
                  experiment "micro-churn-ports" port_wall churn_total;
                  experiment "micro-link-loop" loop_wall loop_delivered;
                  experiment "micro-dumbbell" dumbbell_wall data_packets;
                ] );
            ("headline", Json.Obj []);
            ("alloc", alloc);
            ("decision", decision);
            ("micro", micro);
          ]
    in
    Json.to_file ~path doc;
    Printf.printf "\n(wrote %s)\n" path);
  print_endline "\ndone."
