(* phi-cli: run any of the paper's experiments from the command line.

   Each subcommand is a thin wrapper over Phi_experiments; the benchmark
   harness (bench/main.exe) runs everything at once, while this tool gives
   control over workloads, grids, seeds and budgets. *)

module Topology = Phi_net.Topology
module Cubic = Phi_tcp.Cubic
module Table = Phi_util.Table
open Phi_experiments
open Cmdliner

let mbps bps = Table.fmt_float (bps /. 1e6)
let ms s = Table.fmt_float (1000. *. s) ~decimals:1
let pct x = Table.fmt_float (100. *. x) ^ "%"

(* {2 Common arguments} *)

let seeds_arg =
  let doc = "Comma-separated list of run seeds." in
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)

let duration_arg default =
  let doc = "Simulated seconds per run." in
  Arg.(value & opt float default & info [ "duration" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for grid-shaped experiments (default: the core count; 1 = serial). \
     Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let workload_arg =
  let doc = "Workload: low (500KB on / 2s off), high (500KB / 0.3s) or table3 (100KB / 0.5s)." in
  Arg.(
    value
    & opt (enum [ ("low", `Low); ("high", `High); ("table3", `Table3) ]) `High
    & info [ "workload" ] ~docv:"NAME" ~doc)

let config_of_workload = function
  | `Low -> Scenario.low_utilization
  | `High -> Scenario.high_utilization
  | `Table3 -> Scenario.table3

(* {2 sweep} *)

let sweep_cmd =
  let full_arg =
    let doc = "Sweep the paper's full Table 2 grid (576 settings) instead of the coarse grid." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let run workload full seeds duration jobs =
    let config = { (config_of_workload workload) with Scenario.duration_s = duration } in
    let grid = if full then Sweep.paper_grid else Sweep.coarse_grid in
    let total = List.length (Sweep.settings grid) in
    Printf.printf "sweeping %d settings x %d seeds...\n%!" total (List.length seeds);
    let progress done_ total =
      if done_ mod 16 = 0 || done_ = total then Printf.printf "  %d/%d\n%!" done_ total
    in
    let sweep = Sweep.run ~progress ?jobs config grid ~seeds in
    let best = Sweep.optimal sweep in
    let row tag (p : Sweep.point) =
      [
        tag;
        Cubic.params_to_string p.Sweep.params;
        mbps p.Sweep.mean_throughput_bps;
        ms p.Sweep.mean_queueing_delay_s;
        pct p.Sweep.mean_loss_rate;
        Table.fmt_float p.Sweep.mean_power;
      ]
    in
    let ranked =
      List.sort (fun a b -> Float.compare b.Sweep.mean_power a.Sweep.mean_power) sweep.Sweep.points
    in
    let top = List.filteri (fun i _ -> i < 10) ranked in
    Table.print ~align:[ Table.Left; Table.Left ]
      ~headers:[ ""; "ssthresh/init/beta"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l" ]
      ((row "optimal" best
       :: List.map (row "") (List.filter (fun p -> p != best) top))
      @ [ row "default" sweep.Sweep.default_point ]);
    if List.length seeds >= 2 then begin
      let v = Sweep.validate sweep in
      Printf.printf "leave-one-out: default P_l %.2f | common %.2f | optimal %.2f\n"
        v.Sweep.default_power v.Sweep.common_power v.Sweep.optimal_power
    end
  in
  let term =
    Term.(const run $ workload_arg $ full_arg $ seeds_arg $ duration_arg 90. $ jobs_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Cubic parameter sweep (Figures 2a/2b, Figure 3)") term

(* {2 longrun (Figure 2c)} *)

let longrun_cmd =
  let flows_arg =
    Arg.(value & opt int 100 & info [ "flows" ] ~docv:"N" ~doc:"Long-running connections.")
  in
  let run flows seeds duration jobs =
    let betas = List.init 9 (fun i -> 0.1 +. (0.1 *. float_of_int i)) in
    let results =
      Sweep.run_longrunning ?jobs ~spec:Topology.paper_spec ~n_flows:flows
        ~duration_s:duration ~seeds ~betas ()
    in
    Table.print
      ~headers:[ "beta"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l" ]
      (List.map
         (fun (beta, (p : Sweep.point)) ->
           [
             Table.fmt_float beta ~decimals:1;
             mbps p.Sweep.mean_throughput_bps;
             ms p.Sweep.mean_queueing_delay_s;
             pct p.Sweep.mean_loss_rate;
             Table.fmt_float p.Sweep.mean_power;
           ])
         results)
  in
  let term = Term.(const run $ flows_arg $ seeds_arg $ duration_arg 90. $ jobs_arg) in
  Cmd.v (Cmd.info "longrun" ~doc:"Long-running flows, beta sweep (Figure 2c)") term

(* {2 incremental (Figure 4)} *)

let incremental_cmd =
  let fractions_arg =
    Arg.(
      value
      & opt (list float) [ 0.25; 0.5; 0.75; 1.0 ]
      & info [ "fractions" ] ~docv:"FRACTIONS" ~doc:"Deployment fractions to test.")
  in
  let params_arg =
    let doc = "Modified senders' parameters as ssthresh,initwnd,beta." in
    Arg.(value & opt (t3 float float float) (64., 16., 0.2) & info [ "params" ] ~docv:"P" ~doc)
  in
  let run workload fractions (ssthresh, init_w, beta) seeds duration jobs =
    let config = { (config_of_workload workload) with Scenario.duration_s = duration } in
    let params =
      Cubic.with_knobs ~initial_cwnd:init_w ~initial_ssthresh:ssthresh ~beta
        Cubic.default_params
    in
    let rows =
      Incremental.fraction_sweep ?jobs ~fractions ~params_modified:params ~seeds config
    in
    Table.print
      ~headers:
        [ "fraction"; "mod thr Mbps"; "mod qdelay ms"; "mod P_l"; "unmod thr Mbps";
          "unmod qdelay ms"; "unmod P_l" ]
      (List.map
         (fun (f, m, u) ->
           [
             pct f;
             mbps m.Incremental.throughput_bps;
             ms m.Incremental.queueing_delay_s;
             Table.fmt_float m.Incremental.power;
             mbps u.Incremental.throughput_bps;
             ms u.Incremental.queueing_delay_s;
             Table.fmt_float u.Incremental.power;
           ])
         rows)
  in
  let term =
    Term.(
      const run $ workload_arg $ fractions_arg $ params_arg $ seeds_arg $ duration_arg 90.
      $ jobs_arg)
  in
  Cmd.v (Cmd.info "incremental" ~doc:"Partial deployment of Phi-tuned parameters (Figure 4)") term

(* {2 table3} *)

let read_table path = Phi_remy.Rule_table.deserialize (In_channel.with_open_text path In_channel.input_all)

let table3_cmd =
  let table_arg name doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)
  in
  let run seeds duration jobs remy_file phi_file =
    let config = { Scenario.table3 with Scenario.duration_s = duration } in
    let remy_table = Option.map read_table remy_file in
    let remy_phi_table = Option.map read_table phi_file in
    let rows = Table3.run ?jobs ?remy_table ?remy_phi_table ~seeds config in
    Table.print ~align:[ Table.Left ]
      ~headers:[ "Algorithm"; "thr Mbps"; "qdelay ms"; "objective"; "conns"; "msgs" ]
      (List.map
         (fun (r : Table3.row) ->
           [
             r.Table3.name;
             mbps r.Table3.median_throughput_bps;
             ms r.Table3.median_queueing_delay_s;
             Table.fmt_float r.Table3.median_objective;
             string_of_int r.Table3.connections;
             string_of_int r.Table3.server_messages;
           ])
         rows)
  in
  let term =
    Term.(
      const run $ seeds_arg $ duration_arg 60. $ jobs_arg
      $ table_arg "remy-table" "Serialized 3-dim rule table (default: pretrained)."
      $ table_arg "phi-table" "Serialized 4-dim rule table (default: pretrained).")
  in
  Cmd.v (Cmd.info "table3" ~doc:"Remy / Remy-Phi / Cubic comparison (Table 3)") term

(* {2 matrix} *)

let matrix_cmd =
  let cc_conv =
    let parse s =
      match Cc_select.parse_cc s with
      | algo -> Ok algo
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print ppf algo = Format.pp_print_string ppf (Phi.Cc_algo.name algo) in
    Arg.conv (parse, print)
  in
  let cc_arg =
    let doc =
      "Algorithm to include (repeatable; default: every algorithm registered in Phi.Cc_algo)."
    in
    Arg.(value & opt_all cc_conv [] & info [ "cc" ] ~docv:"NAME" ~doc)
  in
  let table_arg name doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)
  in
  let run seeds duration jobs ccs remy_file phi_file =
    let algorithms = match ccs with [] -> Phi.Cc_algo.all | l -> l in
    let remy_table = Option.map read_table remy_file in
    let remy_phi_table = Option.map read_table phi_file in
    let cells =
      Cc_matrix.run ?jobs ~algorithms ?remy_table ?remy_phi_table ~duration_s:duration
        ~seeds ()
    in
    Table.print ~align:[ Table.Left; Table.Left ]
      ~headers:[ "algorithm"; "workload"; "thr Mbps"; "qdelay ms"; "loss"; "power P_l"; "conns" ]
      (List.map
         (fun (c : Cc_matrix.cell) ->
           [
             c.Cc_matrix.algorithm;
             c.Cc_matrix.workload;
             mbps c.Cc_matrix.mean_throughput_bps;
             ms c.Cc_matrix.mean_queueing_delay_s;
             pct c.Cc_matrix.mean_loss_rate;
             Table.fmt_float c.Cc_matrix.mean_power;
             string_of_int c.Cc_matrix.connections;
           ])
         cells)
  in
  let term =
    Term.(
      const run $ seeds_arg $ duration_arg 30. $ jobs_arg $ cc_arg
      $ table_arg "remy-table" "Serialized 3-dim rule table (default: pretrained)."
      $ table_arg "phi-table" "Serialized 4-dim rule table (default: pretrained).")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Cross-algorithm matrix: the Cc_algo registry over low/high dumbbells")
    term

(* {2 wan-matrix} *)

let wan_matrix_cmd =
  let cc_conv =
    let parse s =
      match Cc_select.parse_cc s with
      | algo -> Ok algo
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print ppf algo = Format.pp_print_string ppf (Phi.Cc_algo.name algo) in
    Arg.conv (parse, print)
  in
  let cc_arg =
    let doc = "Algorithm to include (repeatable; default: the whole Cc_algo registry)." in
    Arg.(value & opt_all cc_conv [] & info [ "cc" ] ~docv:"NAME" ~doc)
  in
  let topo_arg =
    let doc =
      "Topology to include (repeatable; default: dumbbell, parking_lot, wan; \
       also available: fat_tree_pod)."
    in
    Arg.(value & opt_all string [] & info [ "topo" ] ~docv:"NAME" ~doc)
  in
  let dynamics_arg =
    let doc =
      "Dynamics regime to include (repeatable; default: steady, flap, incast; \
       also available: jitter, flash_crowd)."
    in
    Arg.(value & opt_all string [] & info [ "dynamics" ] ~docv:"NAME" ~doc)
  in
  let aqm_arg =
    let doc = "Bottleneck queue regime: droptail, red or red_ecn." in
    Arg.(
      value
      & opt (enum [ ("droptail", Scenario.Drop_tail); ("red", Scenario.Red); ("red_ecn", Scenario.Red_ecn) ]) Scenario.Drop_tail
      & info [ "aqm" ] ~docv:"NAME" ~doc)
  in
  let table_arg name doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)
  in
  let run seeds duration jobs ccs topos dyns aqm remy_file phi_file =
    let algorithms = match ccs with [] -> Phi.Cc_algo.all | l -> l in
    let topologies = match topos with [] -> Cc_matrix.default_topologies | l -> l in
    let dynamics = match dyns with [] -> Cc_matrix.default_dynamics | l -> l in
    let remy_table = Option.map read_table remy_file in
    let remy_phi_table = Option.map read_table phi_file in
    let cells =
      Cc_matrix.run_matrix ?jobs ~algorithms ~topologies ~dynamics ~aqm ?remy_table
        ?remy_phi_table ~duration_s:duration ~seeds ()
    in
    Table.print
      ~align:[ Table.Left; Table.Left; Table.Left; Table.Left ]
      ~headers:
        [
          "algorithm"; "topology"; "dynamics"; "aqm"; "thr Mbps"; "delay ms"; "loss"; "power P_l";
          "jain"; "p99 fct s"; "conns";
        ]
      (List.map
         (fun (c : Cc_matrix.matrix_cell) ->
           [
             c.Cc_matrix.m_algorithm;
             c.Cc_matrix.m_topology;
             c.Cc_matrix.m_dynamics;
             c.Cc_matrix.m_aqm;
             mbps c.Cc_matrix.m_throughput_bps;
             ms c.Cc_matrix.m_delay_s;
             pct c.Cc_matrix.m_loss_rate;
             Table.fmt_float c.Cc_matrix.m_power;
             Table.fmt_float c.Cc_matrix.m_jain ~decimals:3;
             Table.fmt_float c.Cc_matrix.m_p99_fct_s ~decimals:2;
             string_of_int c.Cc_matrix.m_connections;
           ])
         cells)
  in
  let term =
    Term.(
      const run $ seeds_arg $ duration_arg 30. $ jobs_arg $ cc_arg $ topo_arg $ dynamics_arg
      $ aqm_arg
      $ table_arg "remy-table" "Serialized 3-dim rule table (default: pretrained)."
      $ table_arg "phi-table" "Serialized 4-dim rule table (default: pretrained).")
  in
  Cmd.v
    (Cmd.info "wan-matrix"
       ~doc:"WAN evaluation matrix: algorithm x topology zoo x adversarial dynamics")
    term

(* {2 train-remy} *)

let train_remy_cmd =
  let rounds_arg =
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"N" ~doc:"Optimize-and-split rounds.")
  in
  let out_arg name default =
    Arg.(value & opt string default & info [ name ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run rounds seeds remy_out phi_out =
    let log s = Printf.printf "%s\n%!" s in
    let budget = { Phi_remy.Trainer.default_budget with Phi_remy.Trainer.rounds; seeds } in
    let scenarios = Phi_remy.Trainer.default_scenarios in
    log "training classic Remy (3-dim)...";
    let remy = Phi_remy.Rule_table.create ~dims:3 Phi_remy.Whisker.default_action in
    let r = Phi_remy.Trainer.train ~log ~table:remy ~util:`None ~scenarios budget in
    Printf.printf "remy: objective %.3f over %d connections\n" r.Phi_remy.Trainer.objective
      r.Phi_remy.Trainer.connections;
    log "deriving Remy-Phi: extrude + utilization refinement...";
    let phi = Phi_remy.Rule_table.extrude remy in
    let rp = Phi_remy.Trainer.refine_utilization ~log ~table:phi ~scenarios ~top:3 budget in
    Printf.printf "remy-phi: objective %.3f over %d connections\n" rp.Phi_remy.Trainer.objective
      rp.Phi_remy.Trainer.connections;
    let save path table =
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Phi_remy.Rule_table.serialize table);
          Out_channel.output_char oc '\n')
    in
    save remy_out remy;
    save phi_out phi;
    Printf.printf "wrote %s and %s (pass via table3 --remy-table/--phi-table)\n" remy_out phi_out
  in
  let term =
    Term.(
      const run $ rounds_arg $ seeds_arg $ out_arg "remy-out" "remy_table.txt"
      $ out_arg "phi-out" "remy_phi_table.txt")
  in
  Cmd.v (Cmd.info "train-remy" ~doc:"Train Remy and Remy-Phi rule tables by simulation") term

(* {2 sharing} *)

let sharing_cmd =
  let flows_arg =
    Arg.(value & opt float 60_000. & info [ "flows-per-minute" ] ~docv:"F" ~doc:"Arrival rate.")
  in
  let rate_arg =
    Arg.(value & opt int 4096 & info [ "rate" ] ~docv:"N" ~doc:"Sample 1 in N packets.")
  in
  let run seed flows rate =
    let config =
      { Phi_workload.Cloud_trace.default_config with Phi_workload.Cloud_trace.flows_per_minute = flows }
    in
    let r = Sharing_experiment.run ~config ~rate ~seed () in
    Printf.printf "%d flows generated; %d observed after 1-in-%d sampling (%d slices)\n"
      r.Sharing_experiment.total_flows r.Sharing_experiment.sampled_flows rate
      r.Sharing_experiment.slices;
    Table.print
      ~headers:[ ">= k others"; "fraction" ]
      (List.map (fun (k, f) -> [ string_of_int k; pct f ]) r.Sharing_experiment.ccdf)
  in
  let term = Term.(const run $ seed_arg $ flows_arg $ rate_arg) in
  Cmd.v (Cmd.info "sharing" ~doc:"IPFIX path-sharing analysis (Section 2.1)") term

(* {2 diagnose} *)

let diagnose_cmd =
  let metro_arg =
    Arg.(value & opt string "london" & info [ "metro" ] ~docv:"METRO" ~doc:"Outage metro.")
  in
  let isp_arg =
    Arg.(value & opt string "as3320" & info [ "isp" ] ~docv:"ISP" ~doc:"Outage ISP.")
  in
  let duration_min_arg =
    Arg.(value & opt int 120 & info [ "minutes" ] ~docv:"MIN" ~doc:"Outage duration.")
  in
  let severity_arg =
    Arg.(value & opt float 0.95 & info [ "severity" ] ~docv:"S" ~doc:"Traffic fraction lost.")
  in
  let run seed metro isp minutes severity =
    let outage =
      {
        Figure5.default_outage with
        Phi_workload.Request_stream.duration_min = minutes;
        severity;
        scope = { Phi_workload.Request_stream.metro = Some metro; isp = Some isp; service = None };
      }
    in
    let r = Figure5.run ~outage ~seed () in
    List.iter
      (fun e ->
        Printf.printf "detected: %s\n" (Format.asprintf "%a" Phi_diagnosis.Anomaly.pp e))
      r.Figure5.events;
    (match r.Figure5.localization with
    | Some f ->
      Printf.printf "localized: %s (deficit %s, drop %s)\n"
        (Format.asprintf "%a" Phi_workload.Request_stream.pp_scope f.Phi_diagnosis.Localize.scope)
        (pct f.Phi_diagnosis.Localize.deficit_share)
        (pct f.Phi_diagnosis.Localize.own_drop)
    | None -> print_endline "no localization");
    Printf.printf "correct: %b\n" (Figure5.correctly_localized r)
  in
  let term = Term.(const run $ seed_arg $ metro_arg $ isp_arg $ duration_min_arg $ severity_arg) in
  Cmd.v (Cmd.info "diagnose" ~doc:"Outage detection and localization (Figure 5)") term

(* {2 priority / predict / adaptation} *)

let priority_cmd =
  let priorities_arg =
    Arg.(
      value
      & opt (list float) [ 4.; 1.; 1.; 1. ]
      & info [ "priorities" ] ~docv:"P" ~doc:"Per-flow priorities of the entity.")
  in
  let run seed priorities duration =
    let r =
      Priority_experiment.run
        ~priorities:(Array.of_list priorities)
        ~duration_s:duration ~spec:Topology.paper_spec ~seed ()
    in
    Table.print
      ~headers:[ "weight"; "thr Mbps" ]
      (List.map
         (fun (f : Priority_experiment.flow_share) ->
           [ Table.fmt_float f.Priority_experiment.weight; mbps f.Priority_experiment.throughput_bps ])
         r.Priority_experiment.entity_flows);
    Printf.printf "ensemble: %s Mbps (reference: %s Mbps)\n"
      (mbps r.Priority_experiment.entity_aggregate_bps)
      (mbps r.Priority_experiment.reference_aggregate_bps)
  in
  let term = Term.(const run $ seed_arg $ priorities_arg $ duration_arg 60.) in
  Cmd.v (Cmd.info "priority" ~doc:"Weighted-ensemble prioritization (Section 3.3)") term

let predict_cmd =
  let run seed =
    let r = Predict_experiment.run ~seed () in
    Printf.printf "hierarchical MAPE %s vs global %s (%d cold-prefix fallbacks)\n"
      (pct r.Predict_experiment.hierarchical_mape)
      (pct r.Predict_experiment.global_mape)
      r.Predict_experiment.cold_prefixes_served;
    List.iter
      (fun (name, mos) ->
        Printf.printf "  %-36s MOS %.2f (%s)\n" name mos (Phi_predict.Voip.quality_label mos))
      r.Predict_experiment.example_mos
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Performance prediction from shared history (Section 3.5)")
    Term.(const run $ seed_arg)

let adaptation_cmd =
  let run seed =
    let r = Adaptation_experiment.run ~seed () in
    let j = r.Adaptation_experiment.jitter in
    Printf.printf "jitter buffer: informed %.1f ms (late %s) vs cold %.1f ms (late %s)\n"
      j.Adaptation_experiment.informed_buffer_ms
      (pct j.Adaptation_experiment.informed_late_fraction)
      j.Adaptation_experiment.cold_buffer_ms
      (pct j.Adaptation_experiment.cold_late_fraction);
    let d = r.Adaptation_experiment.dupack in
    Printf.printf "dup-ACK threshold: informed %d (spurious %s) vs standard %d (spurious %s)\n"
      d.Adaptation_experiment.recommended_threshold
      (pct d.Adaptation_experiment.informed_spurious_fraction)
      d.Adaptation_experiment.standard_threshold
      (pct d.Adaptation_experiment.standard_spurious_fraction)
  in
  Cmd.v
    (Cmd.info "adaptation" ~doc:"Informed adaptation without cooperation (Section 3.2)")
    Term.(const run $ seed_arg)

let () =
  let doc = "Phi: information sharing and coordination for the five-computer Internet" in
  let info = Cmd.info "phi-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sweep_cmd;
            longrun_cmd;
            incremental_cmd;
            table3_cmd;
            matrix_cmd;
            wan_matrix_cmd;
            train_remy_cmd;
            sharing_cmd;
            diagnose_cmd;
            priority_cmd;
            predict_cmd;
            adaptation_cmd;
          ]))
