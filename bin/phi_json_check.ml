(* phi-json-check: validate a bench report produced by
   [bench/main.exe --json PATH].  Exits non-zero when the file is
   missing, malformed JSON, or not a phi-bench-report document — the CI
   gate for the bench smoke run's artifact. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("phi-json-check: " ^ msg); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: phi_json_check REPORT.json";
      exit 2
  in
  match Phi_util.Json.of_file ~path with
  | Error msg -> fail "%s: %s" path msg
  | Ok doc ->
    let module J = Phi_util.Json in
    (match J.member "schema" doc with
    | Some (J.String "phi-bench-report/1") -> ()
    | Some _ | None -> fail "%s: missing or unknown \"schema\" field" path);
    let require field =
      match J.member field doc with
      | Some _ -> ()
      | None -> fail "%s: missing \"%s\" field" path field
    in
    List.iter require [ "budget"; "jobs"; "cores"; "experiments"; "headline" ];
    (match J.member "experiments" doc with
    | Some (J.List (_ :: _)) -> ()
    | _ -> fail "%s: \"experiments\" must be a non-empty array" path);
    (* The "micro" section (bench/micro.exe --json) is optional, but
       when present it must carry both metric families with positive
       rates — a zero or missing rate means the harness mis-ran. *)
    (match J.member "micro" doc with
    | None -> ()
    | Some micro ->
      let positive_rate section field =
        match J.member field section with
        | Some (J.Float v) when v > 0. -> ()
        | Some (J.Int v) when v > 0 -> ()
        | Some _ -> fail "%s: micro field \"%s\" must be a positive number" path field
        | None -> fail "%s: micro section missing \"%s\"" path field
      in
      (match J.member "events" micro with
      | Some (J.Obj _ as events) ->
        List.iter (positive_rate events)
          [
            "legacy_events_per_s";
            "new_events_per_s";
            "port_events_per_s";
            "speedup_vs_legacy";
            "port_speedup_vs_legacy";
          ]
      | Some _ | None -> fail "%s: micro section missing \"events\" object" path);
      match J.member "packets" micro with
      | Some (J.Obj _ as packets) ->
        List.iter (positive_rate packets)
          [ "link_loop_packets_per_s"; "dumbbell_packets_per_s" ]
      | Some _ | None -> fail "%s: micro section missing \"packets\" object" path);
    Printf.printf "phi-json-check: %s ok\n" path
