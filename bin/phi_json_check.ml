(* phi-json-check: validate a bench report produced by
   [bench/main.exe --json PATH] (schema phi-bench-report/1), optionally
   upgraded by [bench/micro.exe --json PATH] to phi-bench-report/2
   ("alloc" section), /3 ("cc_matrix" covering every registered
   algorithm), or /4 ("swarm" context-plane benchmark).  Exits non-zero
   when the file is missing, malformed JSON, not a phi-bench-report
   document, or over a committed budget (allocation, swarm throughput,
   swarm tail latency) — the CI gate for the bench smoke run's
   artifact.  All validation lives in [Phi_check.Report_check] so the
   gate itself is unit-testable; this wrapper only maps the result to
   an exit code. *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: phi_json_check REPORT.json";
      exit 2
  in
  match Phi_util.Json.of_file ~path with
  | Error msg ->
    prerr_endline (Printf.sprintf "phi-json-check: %s: %s" path msg);
    exit 1
  | Ok doc -> (
    match Phi_check.Report_check.check ~path doc with
    | Ok () -> Printf.printf "phi-json-check: %s ok\n" path
    | Error msg ->
      prerr_endline ("phi-json-check: " ^ msg);
      exit 1)
