(* phi-json-check: validate a bench report produced by
   [bench/main.exe --json PATH] (schema phi-bench-report/1), optionally
   upgraded by [bench/micro.exe --json PATH] to phi-bench-report/2 with
   an "alloc" section — or to phi-bench-report/3 when the report also
   carries the cross-algorithm "cc_matrix" section, which must then
   cover every algorithm registered in [Phi.Cc_algo].  Exits non-zero
   when the file is missing, malformed JSON, not a phi-bench-report
   document, or over the committed allocation budget — the CI gate for
   the bench smoke run's artifact. *)

(* The allocation-regression budget: minor words allocated per packet
   through the saturated link loop (pool acquire -> enqueue -> tx ->
   deliver).  The pooled packet path allocates nothing per packet in
   steady state, so the measured value is ~0; the budget leaves room for
   measurement noise (a stray minor collection's bookkeeping) but fails
   the moment someone reintroduces a per-packet box — one record on the
   hot path costs >= 3 words and blows straight past it. *)
let max_minor_words_per_packet = 0.5

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("phi-json-check: " ^ msg); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: phi_json_check REPORT.json";
      exit 2
  in
  match Phi_util.Json.of_file ~path with
  | Error msg -> fail "%s: %s" path msg
  | Ok doc ->
    let module J = Phi_util.Json in
    let version =
      match J.member "schema" doc with
      | Some (J.String "phi-bench-report/1") -> 1
      | Some (J.String "phi-bench-report/2") -> 2
      | Some (J.String "phi-bench-report/3") -> 3
      | Some _ | None -> fail "%s: missing or unknown \"schema\" field" path
    in
    let require field =
      match J.member field doc with
      | Some _ -> ()
      | None -> fail "%s: missing \"%s\" field" path field
    in
    List.iter require [ "budget"; "jobs"; "cores"; "experiments"; "headline" ];
    (match J.member "experiments" doc with
    | Some (J.List (_ :: _)) -> ()
    | _ -> fail "%s: \"experiments\" must be a non-empty array" path);
    (* The "micro" section (bench/micro.exe --json) is optional, but
       when present it must carry both metric families with positive
       rates — a zero or missing rate means the harness mis-ran. *)
    (match J.member "micro" doc with
    | None -> ()
    | Some micro ->
      let positive_rate section field =
        match J.member field section with
        | Some (J.Float v) when v > 0. -> ()
        | Some (J.Int v) when v > 0 -> ()
        | Some _ -> fail "%s: micro field \"%s\" must be a positive number" path field
        | None -> fail "%s: micro section missing \"%s\"" path field
      in
      (match J.member "events" micro with
      | Some (J.Obj _ as events) ->
        List.iter (positive_rate events)
          [
            "legacy_events_per_s";
            "new_events_per_s";
            "port_events_per_s";
            "speedup_vs_legacy";
            "port_speedup_vs_legacy";
          ]
      | Some _ | None -> fail "%s: micro section missing \"events\" object" path);
      match J.member "packets" micro with
      | Some (J.Obj _ as packets) ->
        List.iter (positive_rate packets)
          [ "link_loop_packets_per_s"; "dumbbell_packets_per_s" ]
      | Some _ | None -> fail "%s: micro section missing \"packets\" object" path);
    (* The "alloc" section is what distinguishes a /2 report; its
       per-packet figure is enforced against the committed budget so an
       allocation regression on the packet path fails CI, not just a
       benchmark graph. *)
    (match J.member "alloc" doc with
    | None -> if version >= 2 then fail "%s: phi-bench-report/2 requires an \"alloc\" section" path
    | Some alloc ->
      let number field =
        match J.member field alloc with
        | Some (J.Float v) -> v
        | Some (J.Int v) -> float_of_int v
        | Some _ -> fail "%s: alloc field \"%s\" must be a number" path field
        | None -> fail "%s: alloc section missing \"%s\"" path field
      in
      let per_packet = number "minor_words_per_packet" in
      let per_event = number "minor_words_per_event" in
      let high_water = number "pool_high_water" in
      if per_packet < 0. || per_event < 0. then
        fail "%s: alloc counters must be non-negative" path;
      if high_water < 1. then fail "%s: alloc \"pool_high_water\" must be >= 1" path;
      if per_packet > max_minor_words_per_packet then
        fail "%s: allocation regression: %.4f minor words/packet exceeds the budget of %g"
          path per_packet max_minor_words_per_packet);
    (* The "cc_matrix" section is what distinguishes a /3 report: the
       cross-algorithm matrix must cover every algorithm registered in
       the unified control plane, so a registry addition that never
       reaches the harness fails CI here. *)
    (match J.member "cc_matrix" doc with
    | None ->
      if version >= 3 then
        fail "%s: phi-bench-report/3 requires a \"cc_matrix\" section" path
    | Some (J.List (_ :: _ as cells)) ->
      let algo_of = function
        | J.Obj _ as cell -> (
          (match J.member "workload" cell with
          | Some (J.String _) -> ()
          | Some _ | None -> fail "%s: cc_matrix cell missing \"workload\" string" path);
          (match J.member "connections" cell with
          | Some (J.Int n) when n > 0 -> ()
          | Some _ | None ->
            fail "%s: cc_matrix cell missing positive \"connections\"" path);
          match J.member "algorithm" cell with
          | Some (J.String a) -> a
          | Some _ | None -> fail "%s: cc_matrix cell missing \"algorithm\" string" path)
        | _ -> fail "%s: cc_matrix cells must be objects" path
      in
      let covered = List.map algo_of cells in
      (* Full registry coverage is what the /3 stamp asserts; a /1
         report may carry a --cc-filtered subset. *)
      if version >= 3 then
        List.iter
          (fun name ->
            if not (List.mem name covered) then
              fail "%s: cc_matrix does not cover registered algorithm %S" path name)
          Phi.Cc_algo.names
    | Some _ -> fail "%s: \"cc_matrix\" must be a non-empty array" path);
    Printf.printf "phi-json-check: %s ok\n" path
