(* phi-json-check: validate a bench report produced by
   [bench/main.exe --json PATH].  Exits non-zero when the file is
   missing, malformed JSON, or not a phi-bench-report document — the CI
   gate for the bench smoke run's artifact. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("phi-json-check: " ^ msg); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: phi_json_check REPORT.json";
      exit 2
  in
  match Phi_util.Json.of_file ~path with
  | Error msg -> fail "%s: %s" path msg
  | Ok doc ->
    let module J = Phi_util.Json in
    (match J.member "schema" doc with
    | Some (J.String "phi-bench-report/1") -> ()
    | Some _ | None -> fail "%s: missing or unknown \"schema\" field" path);
    let require field =
      match J.member field doc with
      | Some _ -> ()
      | None -> fail "%s: missing \"%s\" field" path field
    in
    List.iter require [ "budget"; "jobs"; "cores"; "experiments"; "headline" ];
    (match J.member "experiments" doc with
    | Some (J.List (_ :: _)) -> ()
    | _ -> fail "%s: \"experiments\" must be a non-empty array" path);
    Printf.printf "phi-json-check: %s ok\n" path
