(* phi-lint driver: walk the given roots (default: the current
   directory), lint every .ml/.mli found, print diagnostics, and exit
   non-zero on any violation.  Wired into the build as [dune build
   @lint].  [--json PATH] additionally writes the machine-readable
   report (Lint.json_report) that CI uploads as an artifact. *)

let skip_dir name =
  name = "_build" || name = "_opam"
  || name = "lint_fixtures" (* the test corpus is deliberately full of violations *)
  || (String.length name > 0 && name.[0] = '.')

let has_suffix ~suffix s =
  let sn = String.length suffix and n = String.length s in
  n >= sn && String.sub s (n - sn) sn = suffix

let rec walk acc path =
  if Sys.file_exists path then
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if skip_dir entry then acc else walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if has_suffix ~suffix:".ml" path || has_suffix ~suffix:".mli" path then path :: acc
    else acc
  else acc

let read_file path = In_channel.with_open_bin path In_channel.input_all

let () =
  let rec parse_args json roots = function
    | [] -> (json, List.rev roots)
    | "--json" :: path :: rest -> parse_args (Some path) roots rest
    | "--json" :: [] ->
      prerr_endline "phi-lint: --json requires a path";
      exit 2
    | root :: rest -> parse_args json (root :: roots) rest
  in
  let json, roots = parse_args None [] (List.tl (Array.to_list Sys.argv)) in
  let roots = match roots with [] -> [ "." ] | roots -> roots in
  (* A typo'd root must not pass the gate as "0 files clean". *)
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "phi-lint: no such file or directory: %s\n" root;
        exit 2
      end)
    roots;
  let files = List.sort String.compare (List.concat_map (walk []) roots) in
  let sources = List.map (fun path -> (path, read_file path)) files in
  let violations = Lint.lint_tree sources in
  Option.iter
    (fun path -> Phi_util.Json.to_file ~path (Lint.json_report violations))
    json;
  List.iter (fun v -> print_endline (Lint.to_string v)) violations;
  match violations with
  | [] -> Printf.eprintf "phi-lint: %d files clean\n" (List.length files)
  | vs ->
    Printf.eprintf "phi-lint: %d violation(s) in %d files\n" (List.length vs)
      (List.length files);
    exit 1
