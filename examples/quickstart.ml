(* Quickstart: the smallest end-to-end Phi deployment.

   Eight senders share a 15 Mb/s bottleneck (the paper's Figure 1
   dumbbell).  First they run stock TCP Cubic; then they run the same
   workload as Phi clients: every connection asks the context server for
   the current network weather, picks Cubic parameters via the policy,
   and reports its measurements back when it finishes.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Scenario = Phi_experiments.Scenario

let describe name (r : Scenario.result) =
  Printf.printf "%-12s %5.2f Mbps throughput | %6.1f ms queueing delay | %5.2f%% loss | P_l %.2f\n"
    name
    (r.Scenario.throughput_bps /. 1e6)
    (1000. *. r.Scenario.queueing_delay_s)
    (100. *. r.Scenario.loss_rate)
    r.Scenario.power

let () =
  let config =
    { Scenario.high_utilization with Scenario.duration_s = 60.; Scenario.seed = 7 }
  in

  (* 1. Baseline: every connection starts blind, with the Table 1
     defaults (a 65536-segment slow-start threshold!). *)
  let baseline = Scenario.run config in
  describe "default" baseline;

  (* 2. Phi: a per-domain context server plus a parameter policy.  The
     policy here is the built-in heuristic; a production deployment would
     populate it from sweeps (see Phi.Policy.learn). *)
  let phi_run =
    let client = ref None in
    Scenario.run
      ~observe:(fun engine dumbbell ->
        let server =
          Phi.Context_server.create engine
            ~capacity_bps:(Phi_net.Link.bandwidth_bps dumbbell.Topology.bottleneck)
            ()
        in
        let policy = Phi.Policy.create () in
        client := Some (Phi.Phi_client.create ~server ~policy ~path:"egress" ()))
      ~cc_factory:(fun _index () ->
        match !client with
        | Some c -> Phi.Phi_client.factory c ()
        | None -> assert false)
      ~on_conn_end:(fun stats ->
        match !client with
        | Some c -> Phi.Phi_client.on_conn_end c stats
        | None -> assert false)
      config
  in
  describe "phi" phi_run;

  let better = phi_run.Scenario.power > baseline.Scenario.power in
  Printf.printf "\nPhi %s the power metric (%.2f -> %.2f)\n"
    (if better then "improved" else "did not improve")
    baseline.Scenario.power phi_run.Scenario.power;

  (* Under PHI_SANITIZE=1 the runs above were checked against the
     simulator's invariants; surface any violation as a failure. *)
  let module Invariant = Phi_sim.Invariant in
  if Invariant.enabled () then
    if Invariant.count () = 0 then print_endline "sanitize: clean"
    else begin
      prerr_string (Invariant.report ());
      exit 1
    end
