(* Independent per-entity deployment (Section 3.1).

   Even if data sensitivities stop the "five computers" from sharing with
   each other, each can deploy Phi over its own servers.  Here two
   entities split the paper dumbbell's eight senders.  Entity A runs a
   context server over its four senders; entity B's four senders stay on
   default Cubic.  Entity A's coordination is purely internal — no
   information crosses the entity boundary — yet its connections do
   better, and the control run shows what full (both-entity) deployment
   would add.

   Run with: dune exec examples/two_entities.exe *)

module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Scenario = Phi_experiments.Scenario
module Flow = Phi_tcp.Flow
module Stats = Phi_util.Stats

let group_stats records =
  let thr =
    let bits, on_time =
      List.fold_left
        (fun (b, t) (r : Flow.conn_stats) ->
          (b +. float_of_int (r.Flow.bytes * 8), t +. Flow.duration r))
        (0., 0.) records
    in
    if on_time > 0. then bits /. on_time else 0.
  in
  let qdelay =
    match
      List.filter_map
        (fun r ->
          let q = Flow.queueing_delay r in
          if Float.is_finite q && q >= 0. then Some q else None)
        records
    with
    | [] -> 0.
    | l -> Stats.mean (Array.of_list l)
  in
  (thr, qdelay, List.length records)

let describe label records =
  let thr, qdelay, conns = group_stats records in
  Printf.printf "  %-24s %5.2f Mbps | %6.1f ms excess rtt | %d conns\n" label (thr /. 1e6)
    (1000. *. qdelay) conns

(* Run the shared dumbbell with entity A (senders 0-3) optionally running
   Phi and entity B (senders 4-7) always on defaults. *)
let run ~a_uses_phi =
  let config =
    { Scenario.high_utilization with Scenario.duration_s = 90.; Scenario.seed = 5 }
  in
  let client = ref None in
  let result =
    Scenario.run
      ~observe:(fun engine dumbbell ->
        if a_uses_phi then begin
          let server =
            Phi.Context_server.create engine
              ~capacity_bps:(Phi_net.Link.bandwidth_bps dumbbell.Topology.bottleneck)
              ()
          in
          let policy = Phi.Policy.create () in
          client := Some (Phi.Phi_client.create ~server ~policy ~path:"entity-a" ())
        end)
      ~cc_factory:(fun index () ->
        match (!client, index < 4) with
        | Some c, true -> Phi.Phi_client.factory c ()
        | _ -> Phi_tcp.Cubic.make Phi_tcp.Cubic.default_params)
      ~on_conn_end:(fun stats ->
        match (!client, stats.Flow.source_index < 4) with
        | Some c, true -> Phi.Phi_client.on_conn_end c stats
        | _ -> ())
      config
  in
  let a, b = List.partition (fun (r : Flow.conn_stats) -> r.Flow.source_index < 4) result.Scenario.records in
  (a, b)

let () =
  print_endline "baseline: both entities on default Cubic";
  let a0, b0 = run ~a_uses_phi:false in
  describe "entity A (default)" a0;
  describe "entity B (default)" b0;
  print_endline "\nentity A deploys Phi internally (B unchanged, no cross-entity sharing):";
  let a1, b1 = run ~a_uses_phi:true in
  describe "entity A (phi)" a1;
  describe "entity B (default)" b1;
  let thr (rs : Flow.conn_stats list) =
    let t, _, _ = group_stats rs in
    t
  in
  Printf.printf
    "\nentity A gained %.0f%% throughput from purely internal coordination\n"
    (100. *. ((thr a1 /. Float.max 1. (thr a0)) -. 1.));
  Printf.printf "entity B moved by %.0f%% (no cooperation required from it)\n"
    (100. *. ((thr b1 /. Float.max 1. (thr b0)) -. 1.))
