module J = Phi_util.Json

(* The allocation-regression budget: minor words allocated per packet
   through the saturated link loop (pool acquire -> enqueue -> tx ->
   deliver).  The pooled packet path allocates nothing per packet in
   steady state, so the measured value is ~0; the budget leaves room for
   measurement noise (a stray minor collection's bookkeeping) but fails
   the moment someone reintroduces a per-packet box — one record on the
   hot path costs >= 3 words and blows straight past it. *)
let max_minor_words_per_packet = 0.5

(* The swarm-regression budgets.  The quick-budget swarm serves one
   million flows (two million wire messages); even a single-core
   sandboxed runner clears ~4x this floor, so tripping it means the
   context plane's service path got several times slower — a
   per-message mutation sneaking back in, a flush turning quadratic.
   The p99 bound is per-lookup service latency (measured ~4 us): the
   budget leaves ~500x for scheduler noise on shared runners while
   still catching any lookup that starts walking a table. *)
let min_swarm_lookups_per_s = 15_000.
let max_swarm_p99_lookup_s = 0.002

(* The decision-plane budgets.  The compiled whisker table runs ~150x
   the interpreted scan on the converged-size benchmark table (512
   whiskers); the committed floor of 10x catches the flat table
   degenerating back into a walk while leaving wide headroom for
   runner noise.  The per-lookup allocation budget is effectively
   zero: the branch-free search passes only ints and pointers, so a
   single boxed float sneaking into the lookup path (2 words) blows
   straight past it. *)
let min_decision_speedup = 10.
let max_minor_words_per_lookup = 0.01

(* The parallel-DES scaling floor: the 1000-sender parking lot must run
   at least twice as fast on four domains as on one.  Conservative
   windowing costs two barriers per 10 ms of virtual time — noise next
   to the millions of events per window — so a healthy partition scales
   near-linearly and 2x at 4 domains leaves room for one congested
   island dominating a window.  The floor is only enforceable where
   four domains can actually run in parallel, so it applies when the
   report's box has >= 4 cores and the section carries a >= 4-job run;
   the determinism gates (identical fingerprints and event counts
   across every width) apply everywhere, always. *)
let min_pdes_speedup_at_4 = 2.

type failure = { message : string }

exception Bad of failure

let bad fmt = Printf.ksprintf (fun message -> raise (Bad { message })) fmt

let check_version ~path doc =
  match J.member "schema" doc with
  | Some (J.String "phi-bench-report/1") -> 1
  | Some (J.String "phi-bench-report/2") -> 2
  | Some (J.String "phi-bench-report/3") -> 3
  | Some (J.String "phi-bench-report/4") -> 4
  | Some (J.String "phi-bench-report/5") -> 5
  | Some (J.String "phi-bench-report/6") -> 6
  | Some (J.String "phi-bench-report/7") -> 7
  | Some _ | None -> bad "%s: missing or unknown \"schema\" field" path

let check_structure ~path doc =
  List.iter
    (fun field ->
      match J.member field doc with
      | Some _ -> ()
      | None -> bad "%s: missing \"%s\" field" path field)
    [ "budget"; "jobs"; "cores"; "experiments"; "headline" ];
  match J.member "experiments" doc with
  | Some (J.List (_ :: _)) -> ()
  | _ -> bad "%s: \"experiments\" must be a non-empty array" path

(* The "micro" section (bench/micro.exe --json) is optional, but when
   present it must carry both metric families with positive rates — a
   zero or missing rate means the harness mis-ran. *)
let check_micro ~path doc =
  match J.member "micro" doc with
  | None -> ()
  | Some micro ->
    let positive_rate section field =
      match J.member field section with
      | Some (J.Float v) when v > 0. -> ()
      | Some (J.Int v) when v > 0 -> ()
      | Some _ -> bad "%s: micro field \"%s\" must be a positive number" path field
      | None -> bad "%s: micro section missing \"%s\"" path field
    in
    (match J.member "events" micro with
    | Some (J.Obj _ as events) ->
      List.iter (positive_rate events)
        [
          "legacy_events_per_s";
          "new_events_per_s";
          "port_events_per_s";
          "speedup_vs_legacy";
          "port_speedup_vs_legacy";
        ]
    | Some _ | None -> bad "%s: micro section missing \"events\" object" path);
    (match J.member "packets" micro with
    | Some (J.Obj _ as packets) ->
      List.iter (positive_rate packets)
        [ "link_loop_packets_per_s"; "dumbbell_packets_per_s" ]
    | Some _ | None -> bad "%s: micro section missing \"packets\" object" path)

(* The "alloc" section is what distinguishes a /2 report; its per-packet
   figure is enforced against the committed budget so an allocation
   regression on the packet path fails CI, not just a benchmark graph. *)
let check_alloc ~path ~version doc =
  match J.member "alloc" doc with
  | None -> if version >= 2 then bad "%s: phi-bench-report/2 requires an \"alloc\" section" path
  | Some alloc ->
    let number field =
      match J.member field alloc with
      | Some (J.Float v) -> v
      | Some (J.Int v) -> float_of_int v
      | Some _ -> bad "%s: alloc field \"%s\" must be a number" path field
      | None -> bad "%s: alloc section missing \"%s\"" path field
    in
    let per_packet = number "minor_words_per_packet" in
    let per_event = number "minor_words_per_event" in
    let high_water = number "pool_high_water" in
    if per_packet < 0. || per_event < 0. then bad "%s: alloc counters must be non-negative" path;
    if high_water < 1. then bad "%s: alloc \"pool_high_water\" must be >= 1" path;
    if per_packet > max_minor_words_per_packet then
      bad "%s: allocation regression: %.4f minor words/packet exceeds the budget of %g" path
        per_packet max_minor_words_per_packet

(* The "cc_matrix" section is what distinguishes a /3 report: the
   cross-algorithm matrix must cover every algorithm registered in the
   unified control plane, so a registry addition that never reaches the
   harness fails CI here. *)
let check_cc_matrix ~path ~version doc =
  match J.member "cc_matrix" doc with
  | None -> if version >= 3 then bad "%s: phi-bench-report/3 requires a \"cc_matrix\" section" path
  | Some (J.List (_ :: _ as cells)) ->
    let algo_of = function
      | J.Obj _ as cell -> (
        (match J.member "workload" cell with
        | Some (J.String _) -> ()
        | Some _ | None -> bad "%s: cc_matrix cell missing \"workload\" string" path);
        (match J.member "connections" cell with
        | Some (J.Int n) when n > 0 -> ()
        | Some _ | None -> bad "%s: cc_matrix cell missing positive \"connections\"" path);
        match J.member "algorithm" cell with
        | Some (J.String a) -> a
        | Some _ | None -> bad "%s: cc_matrix cell missing \"algorithm\" string" path)
      | _ -> bad "%s: cc_matrix cells must be objects" path
    in
    let covered = List.map algo_of cells in
    (* Full registry coverage is what the /3 stamp asserts; a /1 report
       may carry a --cc-filtered subset. *)
    if version >= 3 then
      List.iter
        (fun name ->
          if not (List.mem name covered) then
            bad "%s: cc_matrix does not cover registered algorithm %S" path name)
        Phi.Cc_algo.names
  | Some _ -> bad "%s: \"cc_matrix\" must be a non-empty array" path

(* The "swarm" section is what distinguishes a /4 report: the
   million-flow context-plane benchmark.  Whenever present it is gated
   against the committed service floors, so a throughput or tail-latency
   regression in the sharded server fails CI, not just a dashboard. *)
let check_swarm ~path ~version doc =
  match J.member "swarm" doc with
  | None -> if version >= 4 then bad "%s: phi-bench-report/4 requires a \"swarm\" section" path
  | Some (J.Obj _ as swarm) ->
    let number field =
      match J.member field swarm with
      | Some (J.Float v) -> v
      | Some (J.Int v) -> float_of_int v
      | Some _ -> bad "%s: swarm field \"%s\" must be a number" path field
      | None -> bad "%s: swarm section missing \"%s\"" path field
    in
    let int_field field =
      match J.member field swarm with
      | Some (J.Int v) -> v
      | Some _ -> bad "%s: swarm field \"%s\" must be an integer" path field
      | None -> bad "%s: swarm section missing \"%s\"" path field
    in
    let flows = int_field "flows" in
    let lookups = int_field "lookups" in
    let reports = int_field "reports" in
    if flows < 1 then bad "%s: swarm must have served at least one flow" path;
    if lookups <> flows || reports <> flows then
      bad "%s: swarm flow accounting broken: %d flows, %d lookups, %d reports" path flows
        lookups reports;
    (match J.member "fingerprint" swarm with
    | Some (J.String s) when String.length s > 0 -> ()
    | Some _ | None -> bad "%s: swarm section missing a non-empty \"fingerprint\"" path);
    let jain = number "jain_index" in
    if jain <= 0. || jain > 1. then bad "%s: swarm \"jain_index\" must be in (0, 1]" path;
    (* The Zipf-skewed workload legitimately concentrates load (measured
       ~0.3 over 64 shards); total collapse onto one shard would read
       ~1/64, so the floor only catches a broken prefix hash. *)
    if jain < 0.05 then
      bad "%s: swarm shard balance collapsed: jain index %.4f (the prefix hash is broken)" path
        jain;
    let p50 = number "p50_lookup_s" in
    let p99 = number "p99_lookup_s" in
    if p50 < 0. || p99 < p50 then bad "%s: swarm lookup percentiles are inconsistent" path;
    let lookups_per_s = number "lookups_per_s" in
    if number "reports_per_s" <= 0. then bad "%s: swarm \"reports_per_s\" must be positive" path;
    if lookups_per_s < min_swarm_lookups_per_s then
      bad "%s: swarm regression: %.0f lookups/s is below the committed floor of %.0f" path
        lookups_per_s min_swarm_lookups_per_s;
    if p99 > max_swarm_p99_lookup_s then
      bad "%s: swarm regression: p99 lookup latency %.6fs exceeds the budget of %gs" path p99
        max_swarm_p99_lookup_s
  | Some _ -> bad "%s: \"swarm\" must be an object" path

(* The "decision" section is what distinguishes a /5 report: the
   compiled decision plane (flat whisker tables and the 64-entry
   policy array).  Whenever present it is gated against the committed
   speedup floor and the zero-allocation budget, so the hot lookup
   regressing to the interpreted scan — or starting to box — fails CI. *)
let check_decision ~path ~version doc =
  match J.member "decision" doc with
  | None ->
    if version >= 5 then bad "%s: phi-bench-report/5 requires a \"decision\" section" path
  | Some (J.Obj _ as decision) ->
    let number field =
      match J.member field decision with
      | Some (J.Float v) -> v
      | Some (J.Int v) -> float_of_int v
      | Some _ -> bad "%s: decision field \"%s\" must be a number" path field
      | None -> bad "%s: decision section missing \"%s\"" path field
    in
    List.iter
      (fun field ->
        if number field <= 0. then
          bad "%s: decision field \"%s\" must be a positive number" path field)
      [
        "whiskers";
        "cells";
        "interpreted_lookups_per_s";
        "compiled_lookups_per_s";
        "policy_interpreted_choices_per_s";
        "policy_compiled_choices_per_s";
      ];
    let speedup = number "speedup" in
    if speedup < min_decision_speedup then
      bad "%s: decision regression: compiled lookup is only %.1fx the interpreted scan (floor %g)"
        path speedup min_decision_speedup;
    let words = number "minor_words_per_lookup" in
    if words < 0. then bad "%s: decision \"minor_words_per_lookup\" must be non-negative" path;
    if words > max_minor_words_per_lookup then
      bad "%s: decision regression: %.4f minor words/lookup exceeds the budget of %g" path
        words max_minor_words_per_lookup
  | Some _ -> bad "%s: \"decision\" must be an object" path

(* The "pdes" section is what distinguishes a /6 report: the
   conservative-parallel-DES scaling curve over the 1000-sender parking
   lot.  Determinism is gated unconditionally — every run of the curve
   must report the same fingerprint and event count, or the partitioned
   engine diverged from its jobs=1 golden reference.  The speedup floor
   is gated only where it is measurable: a box with >= 4 cores whose
   curve includes a >= 4-domain run. *)
let check_pdes ~path ~version doc =
  match J.member "pdes" doc with
  | None -> if version >= 6 then bad "%s: phi-bench-report/6 requires a \"pdes\" section" path
  | Some (J.Obj _ as pdes) ->
    let int_field ?(where = "pdes") obj field =
      match J.member field obj with
      | Some (J.Int v) -> v
      | Some _ -> bad "%s: %s field \"%s\" must be an integer" path where field
      | None -> bad "%s: %s section missing \"%s\"" path where field
    in
    let number ?(where = "pdes") obj field =
      match J.member field obj with
      | Some (J.Float v) -> v
      | Some (J.Int v) -> float_of_int v
      | Some _ -> bad "%s: %s field \"%s\" must be a number" path where field
      | None -> bad "%s: %s section missing \"%s\"" path where field
    in
    if int_field pdes "islands" < 1 then bad "%s: pdes \"islands\" must be >= 1" path;
    if number pdes "window_s" <= 0. then bad "%s: pdes \"window_s\" must be positive" path;
    let cores = int_field pdes "cores" in
    if cores < 1 then bad "%s: pdes \"cores\" must be >= 1" path;
    let runs =
      match J.member "runs" pdes with
      | Some (J.List (_ :: _ as runs)) -> runs
      | Some _ | None -> bad "%s: pdes section needs a non-empty \"runs\" array" path
    in
    let parsed =
      List.map
        (fun run ->
          match run with
          | J.Obj _ ->
            let jobs = int_field ~where:"pdes run" run "jobs" in
            if jobs < 1 then bad "%s: pdes run \"jobs\" must be >= 1" path;
            let wall_s = number ~where:"pdes run" run "wall_s" in
            if wall_s <= 0. then bad "%s: pdes run \"wall_s\" must be positive" path;
            let events = int_field ~where:"pdes run" run "events" in
            if events < 1 then bad "%s: pdes run \"events\" must be positive" path;
            if number ~where:"pdes run" run "events_per_s" <= 0. then
              bad "%s: pdes run \"events_per_s\" must be positive" path;
            let fingerprint =
              match J.member "fingerprint" run with
              | Some (J.String s) when String.length s > 0 -> s
              | Some _ | None -> bad "%s: pdes run missing a non-empty \"fingerprint\"" path
            in
            (jobs, wall_s, events, fingerprint)
          | _ -> bad "%s: pdes runs must be objects" path)
        runs
    in
    let _, ref_wall, ref_events, ref_fp =
      match List.find_opt (fun (jobs, _, _, _) -> jobs = 1) parsed with
      | Some r -> r
      | None -> List.hd parsed
    in
    List.iter
      (fun (jobs, _, events, fp) ->
        if fp <> ref_fp then
          bad "%s: pdes determinism broken: fingerprint diverges at jobs %d" path jobs;
        if events <> ref_events then
          bad "%s: pdes determinism broken: %d events at jobs %d vs %d at the reference" path
            events jobs ref_events)
      parsed;
    (match List.find_opt (fun (jobs, _, _, _) -> jobs >= 4) parsed with
    | Some (jobs, wall, _, _) when cores >= 4 ->
      let speedup = ref_wall /. wall in
      if speedup < min_pdes_speedup_at_4 then
        bad "%s: pdes scaling regression: %.2fx at %d domains is below the floor of %gx" path
          speedup jobs min_pdes_speedup_at_4
    | _ -> ())
  | Some _ -> bad "%s: \"pdes\" must be an object" path

(* The "wan_matrix" section is what distinguishes a /7 report: the
   algorithm x topology zoo x adversarial dynamics evaluation matrix.
   Whenever present, every cell's figures must be physically sane —
   Jain fairness in (0, 1], a 99th-percentile flow completion time
   within the cell's duration, a positive delivery rate — and the
   serial determinism probe must match its pool-fanned counterpart, so
   a jobs-dependent cell (worker state leaking between runs, rng draw
   order depending on the fan-out) fails CI instead of silently
   drifting the dashboards. *)
let check_wan_matrix ~path ~version doc =
  match J.member "wan_matrix" doc with
  | None ->
    if version >= 7 then bad "%s: phi-bench-report/7 requires a \"wan_matrix\" section" path
  | Some (J.Obj _ as wan) ->
    let number ?(where = "wan_matrix") obj field =
      match J.member field obj with
      | Some (J.Float v) -> v
      | Some (J.Int v) -> float_of_int v
      | Some _ -> bad "%s: %s field \"%s\" must be a number" path where field
      | None -> bad "%s: %s section missing \"%s\"" path where field
    in
    let string_field ?(where = "wan_matrix") obj field =
      match J.member field obj with
      | Some (J.String s) when String.length s > 0 -> s
      | Some _ | None -> bad "%s: %s missing a non-empty \"%s\" string" path where field
    in
    let duration_s = number wan "duration_s" in
    if duration_s <= 0. then bad "%s: wan_matrix \"duration_s\" must be positive" path;
    let cells =
      match J.member "cells" wan with
      | Some (J.List (_ :: _ as cells)) -> cells
      | Some _ | None -> bad "%s: wan_matrix section needs a non-empty \"cells\" array" path
    in
    List.iter
      (fun cell ->
        match cell with
        | J.Obj _ ->
          let where =
            Printf.sprintf "wan_matrix cell %s/%s/%s"
              (string_field ~where:"wan_matrix cell" cell "algorithm")
              (string_field ~where:"wan_matrix cell" cell "topology")
              (string_field ~where:"wan_matrix cell" cell "dynamics")
          in
          ignore (string_field ~where cell "aqm");
          (match J.member "connections" cell with
          | Some (J.Int n) when n > 0 -> ()
          | Some _ | None -> bad "%s: %s missing positive \"connections\"" path where);
          if number ~where cell "throughput_bps" <= 0. then
            bad "%s: %s \"throughput_bps\" must be positive" path where;
          let loss = number ~where cell "loss_rate" in
          if loss < 0. || loss > 1. then
            bad "%s: %s \"loss_rate\" must be in [0, 1]" path where;
          if number ~where cell "power" < 0. then
            bad "%s: %s \"power\" must be non-negative" path where;
          let jain = number ~where cell "jain" in
          if jain <= 0. || jain > 1. +. 1e-9 then
            bad "%s: %s \"jain\" must be in (0, 1]" path where;
          let p99 = number ~where cell "p99_fct_s" in
          (* Flow completion times are measured inside the run, so the
             p99 can never exceed the cell duration; 0 would mean no
             connection completed, which the connections gate above
             already excludes. *)
          if p99 <= 0. || p99 > duration_s then
            bad "%s: %s \"p99_fct_s\" %.4f outside (0, %g]" path where p99 duration_s
        | _ -> bad "%s: wan_matrix cells must be objects" path)
      cells;
    (match J.member "determinism" wan with
    | Some (J.Obj _ as probe) ->
      let cell = string_field ~where:"wan_matrix determinism" probe "cell" in
      let parallel = string_field ~where:"wan_matrix determinism" probe "parallel" in
      let serial = string_field ~where:"wan_matrix determinism" probe "serial" in
      if parallel <> serial then
        bad "%s: wan_matrix determinism broken: cell %s diverges from its serial replay" path
          cell
    | Some _ | None -> bad "%s: wan_matrix section missing a \"determinism\" probe" path)
  | Some _ -> bad "%s: \"wan_matrix\" must be an object" path

let check ~path doc =
  match
    let version = check_version ~path doc in
    check_structure ~path doc;
    check_micro ~path doc;
    check_alloc ~path ~version doc;
    check_cc_matrix ~path ~version doc;
    check_swarm ~path ~version doc;
    check_decision ~path ~version doc;
    check_pdes ~path ~version doc;
    check_wan_matrix ~path ~version doc
  with
  | () -> Ok ()
  | exception Bad { message } -> Error message
