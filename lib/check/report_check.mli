(** Validation and regression gating for phi-bench-report documents.

    A report is produced by [bench/main.exe --json PATH] (schema
    [phi-bench-report/1]) and optionally upgraded by
    [bench/micro.exe --json PATH]: to [/2] with an "alloc" section, to
    [/3] when the report also carries the cross-algorithm "cc_matrix"
    section (which must then cover every algorithm registered in
    [Phi.Cc_algo]), to [/4] when it additionally carries the
    million-flow "swarm" section from the sharded context plane, to
    [/5] when the compiled-decision-plane "decision" section rides
    along as well (micro.exe now always contributes it), to [/6]
    when the conservative-parallel-DES "pdes" scaling section is
    present too, and to [/7] when the topology-zoo "wan_matrix"
    evaluation section is present as well (so fresh full reports
    stamp [/7]).

    [check] is pure validation over the parsed JSON — the CI gate
    ([bin/phi_json_check.ml]) is a thin exit-code wrapper around it,
    and the gate's own unit tests inject regressions here to prove the
    gate trips. *)

val max_minor_words_per_packet : float
(** The allocation budget enforced on the "alloc" section's
    [minor_words_per_packet] figure. *)

val min_swarm_lookups_per_s : float
(** The committed throughput floor enforced on the "swarm" section's
    [lookups_per_s] figure. *)

val max_swarm_p99_lookup_s : float
(** The committed tail-latency budget enforced on the "swarm" section's
    [p99_lookup_s] figure, in seconds. *)

val min_decision_speedup : float
(** The committed floor on the "decision" section's [speedup] figure:
    compiled whisker lookups must beat the interpreted scan by at least
    this factor on the converged-size benchmark table. *)

val max_minor_words_per_lookup : float
(** The allocation budget enforced on the "decision" section's
    [minor_words_per_lookup] figure — effectively zero: one boxed float
    on the lookup path (2 words) trips it. *)

val min_pdes_speedup_at_4 : float
(** The committed scaling floor on the "pdes" section: wall-clock
    speedup of the >= 4-domain run over the 1-domain run of the
    1000-sender parking lot.  Enforced only when the report's box has
    at least 4 cores and the curve includes a >= 4-domain run; the
    section's determinism gates (identical fingerprints and event
    counts across every worker count) are enforced unconditionally. *)

val check : path:string -> Phi_util.Json.t -> (unit, string) result
(** [check ~path doc] validates a parsed bench report.  [path] is used
    only to prefix error messages.  Returns [Error message] on the
    first violation: unknown schema, missing required fields, malformed
    sections, or a committed-budget regression (allocation, swarm
    throughput, swarm tail latency, decision-plane speedup, per-lookup
    allocation, pdes determinism or scaling, wan_matrix fairness/FCT
    sanity or serial-probe determinism).  Optional sections ("micro",
    "alloc", "cc_matrix", "swarm", "decision", "pdes", "wan_matrix")
    are validated whenever present; schema versions [/2]..[/7]
    additionally require their distinguishing sections to be
    present. *)
