module Cubic = Phi_tcp.Cubic

type t =
  | Cubic of Cubic.params
  | Reno of float
  | Vegas
  | Remy
  | Remy_phi

let name = function
  | Cubic _ -> "cubic"
  | Reno _ -> "reno"
  | Vegas -> "vegas"
  | Remy -> "remy"
  | Remy_phi -> "remy-phi"

let all = [ Cubic Cubic.default_params; Reno 1.; Vegas; Remy; Remy_phi ]

let names = List.map name all

let of_name = function
  | "cubic" -> Some (Cubic Cubic.default_params)
  | "reno" -> Some (Reno 1.)
  | "vegas" -> Some Vegas
  | "remy" -> Some Remy
  | "remy-phi" -> Some Remy_phi
  | _ -> None

type builder = ctx:Context.t -> t -> Phi_tcp.Cc.t

let basic_builder ~ctx:_ algo =
  match algo with
  | Cubic params -> Cubic.make params
  | Reno weight -> Phi_tcp.Reno.make_weighted ~weight ()
  | Vegas -> Phi_tcp.Vegas.make ()
  | Remy | Remy_phi ->
    invalid_arg
      ("Cc_algo.basic_builder: " ^ name algo
     ^ " needs a rule table; install a Remy-capable builder (see Phi_experiments.Cc_select)")
