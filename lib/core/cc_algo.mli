(** The congestion-control algorithm registry.

    A policy decision is no longer "which Cubic parameters" but "which
    algorithm, with which parameters".  The registry enumerates every
    algorithm the unified {!Phi_tcp.Sender} control plane can run and
    gives each a stable name for command lines ([--cc NAME]) and JSON
    reports.

    Construction is split from selection: this module (and the core
    library) knows how to build the window-based controllers, while the
    Remy variants need a trained rule table the core cannot depend on — a
    {!builder} injected into {!Phi_client.create} (or used directly)
    supplies those.  The builder receives the looked-up {!Context.t}, so a
    Remy-Phi controller gets its utilization signal from the same
    one-lookup-per-connection protocol as every other algorithm. *)

type t =
  | Cubic of Phi_tcp.Cubic.params
  | Reno of float  (** MulTCP weight; [1.] is standard Reno *)
  | Vegas
  | Remy  (** classic Remy, 3-dimensional rule table *)
  | Remy_phi  (** Remy + shared utilization, 4-dimensional table *)

val name : t -> string
(** Registry name: ["cubic"], ["reno"], ["vegas"], ["remy"],
    ["remy-phi"]. *)

val all : t list
(** Every registered algorithm, with default parameters. *)

val names : string list
(** [List.map name all]. *)

val of_name : string -> t option
(** Inverse of {!name} (default parameters); [None] for unknown names. *)

type builder = ctx:Context.t -> t -> Phi_tcp.Cc.t
(** Turns a policy choice into a fresh per-connection controller, given
    the context the Phi lookup returned. *)

val basic_builder : builder
(** Builds [Cubic]/[Reno]/[Vegas]; raises [Invalid_argument] for the Remy
    variants, which need a rule table supplied by a richer builder. *)
