type t = {
  utilization : float;
  queue_delay_s : float;
  competing_senders : int;
  loss_rate : float;
}

let empty = { utilization = 0.; queue_delay_s = 0.; competing_senders = 0; loss_rate = 0. }

let clamp01 x = Float.max 0. (Float.min 1. x)

let severity t =
  (* Utilization dominates; queueing and population confirm it.  Each term
     is normalized to [0, 1] before blending. *)
  let u = clamp01 t.utilization in
  let q = clamp01 (t.queue_delay_s /. 0.2) in
  let n = clamp01 (float_of_int t.competing_senders /. 64.) in
  let l = clamp01 (t.loss_rate /. 0.05) in
  clamp01 ((0.45 *. u) +. (0.25 *. q) +. (0.15 *. n) +. (0.15 *. l))

type bucket = { u_bucket : int; n_bucket : int; q_bucket : int }

(* Pure threshold ladders (no module-level arrays: [bucket_code] runs
   inside pool worker domains, so the edges live in code, not state). *)
let u_bucket_of u = if u <= 0.3 then 0 else if u <= 0.6 then 1 else if u <= 0.85 then 2 else 3
let n_bucket_of n = if n <= 2 then 0 else if n <= 8 then 1 else if n <= 32 then 2 else 3
let q_bucket_of q = if q <= 0.01 then 0 else if q <= 0.05 then 1 else if q <= 0.2 then 2 else 3

let bucketize t =
  {
    u_bucket = u_bucket_of t.utilization;
    n_bucket = n_bucket_of t.competing_senders;
    q_bucket = q_bucket_of t.queue_delay_s;
  }

(* 4 buckets per axis, 3 axes: 64 packed codes. *)
let bucket_codes = 64

let pack_bucket b = (b.u_bucket * 16) + (b.n_bucket * 4) + b.q_bucket

let bucket_of_code code =
  if code < 0 || code >= bucket_codes then invalid_arg "Context.bucket_of_code: out of range";
  { u_bucket = code / 16; n_bucket = code / 4 mod 4; q_bucket = code mod 4 }

let bucket_code t =
  (u_bucket_of t.utilization * 16)
  + (n_bucket_of t.competing_senders * 4)
  + q_bucket_of t.queue_delay_s

let bucket_distance a b =
  abs (a.u_bucket - b.u_bucket) + abs (a.n_bucket - b.n_bucket) + abs (a.q_bucket - b.q_bucket)

let pp ppf t =
  Format.fprintf ppf "ctx{u=%.2f q=%.1fms n=%d loss=%.2f%%}" t.utilization
    (1000. *. t.queue_delay_s) t.competing_senders (100. *. t.loss_rate)

let pp_bucket ppf b = Format.fprintf ppf "bucket(u=%d n=%d q=%d)" b.u_bucket b.n_bucket b.q_bucket
