(** The congestion context of Section 2.2.2.

    The paper characterizes the state of a network path by (i) the
    bottleneck utilization [u], (ii) the queue occupancy [q] (observed by
    senders as RTT in excess of the minimum) and (iii) the number of
    competing senders [n].  We carry the loss rate as a fourth,
    derived signal since the context server learns it for free from
    connection reports. *)

type t = {
  utilization : float;  (** bottleneck busy fraction in [0, 1] *)
  queue_delay_s : float;  (** estimated queueing delay *)
  competing_senders : int;  (** concurrently active flows on the path *)
  loss_rate : float;  (** recent retransmission fraction in [0, 1] *)
}

val empty : t
(** The all-quiet context a server reports before any information
    arrives. *)

val severity : t -> float
(** Scalar congestion level in [0, 1]; a monotone blend of the three
    primary signals, useful for coarse decisions and ordering. *)

(** {2 Bucketing}

    Policies key shared knowledge on a coarse grid so that a modest number
    of observed workloads covers the context space. *)

type bucket = { u_bucket : int; n_bucket : int; q_bucket : int }

val bucketize : t -> bucket
(** Threshold ladders per axis — utilization at 0.3/0.6/0.85, competing
    senders at 2/8/32, queue delay at 10/50/200 ms — four buckets each.
    Pure code, no module-level edge tables: bucketing runs inside pool
    worker domains. *)

val bucket_codes : int
(** 64: the number of distinct buckets (4 per axis, 3 axes).  Packed
    codes index the flat [Policy.Compiled] choice table. *)

val pack_bucket : bucket -> int
(** The bucket's packed code: [u*16 + n*4 + q], in [0, bucket_codes). *)

val bucket_of_code : int -> bucket
(** Inverse of {!pack_bucket}; raises [Invalid_argument] out of range. *)

val bucket_code : t -> int
(** [pack_bucket (bucketize t)] without allocating the intermediate
    bucket record — the hot-path entry into compiled policy tables. *)

val bucket_distance : bucket -> bucket -> int
(** L1 distance on bucket coordinates — used for nearest-neighbour policy
    fallback. *)

val pp : Format.formatter -> t -> unit
val pp_bucket : Format.formatter -> bucket -> unit
