module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant
module Stats = Phi_util.Stats

type report = { finished_at : float; bytes : int; duration_s : float }

type path_state = {
  mutable active : int;
  mutable recent : report list;  (* newest first, pruned to the window *)
  q_ewma : Stats.ewma;
  loss_ewma : Stats.ewma;
  mutable learned_capacity : float;
  mutable oracle : (unit -> float) option;
}

type t = {
  engine : Engine.t;
  capacity_bps : float option;
  window_s : float;
  paths : (string, path_state) Hashtbl.t;
  mutable lookups : int;
  mutable reports : int;
}

let create engine ?capacity_bps ?(window_s = 10.) () =
  if window_s <= 0. then invalid_arg "Context_server.create: window must be positive";
  (match capacity_bps with
  | Some c when c <= 0. -> invalid_arg "Context_server.create: capacity must be positive"
  | _ -> ());
  { engine; capacity_bps; window_s; paths = Hashtbl.create 8; lookups = 0; reports = 0 }

let path_state t path =
  match Hashtbl.find_opt t.paths path with
  | Some st -> st
  | None ->
    let st =
      {
        active = 0;
        recent = [];
        q_ewma = Stats.ewma ~alpha:0.2;
        loss_ewma = Stats.ewma ~alpha:0.2;
        learned_capacity = 0.;
        oracle = None;
      }
    in
    Hashtbl.add t.paths path st;
    st

let prune t st =
  let horizon = Engine.now t.engine -. t.window_s in
  st.recent <- List.filter (fun r -> r.finished_at >= horizon) st.recent

(* Bytes a report contributes to the window [now - window_s, now]: its
   transfer interval clipped to the window, assuming a uniform rate over
   the connection's lifetime. *)
let windowed_bytes t now r =
  let lo = Float.max (r.finished_at -. r.duration_s) (now -. t.window_s) in
  let hi = Float.min r.finished_at now in
  if hi <= lo || r.duration_s <= 0. then 0.
  else float_of_int r.bytes *. ((hi -. lo) /. r.duration_s)

let reported_rate t st =
  prune t st;
  let now = Engine.now t.engine in
  let bytes = List.fold_left (fun acc r -> acc +. windowed_bytes t now r) 0. st.recent in
  bytes *. 8. /. t.window_s

let capacity t st =
  match t.capacity_bps with
  | Some c -> c
  | None -> if st.learned_capacity > 0. then st.learned_capacity else infinity

let utilization t st =
  match st.oracle with
  | Some f ->
    let u = f () in
    if Float.is_finite u then Float.max 0. (Float.min 1. u)
    else begin
      (* A NaN here would poison every context lookup on the path. *)
      Invariant.record ~rule:"metric-finite" ~time:(Engine.now t.engine)
        (Printf.sprintf "utilization oracle returned %g" u);
      0.
    end
  | None ->
    let cap = capacity t st in
    if not (Float.is_finite cap) then 0. else Float.min 1. (reported_rate t st /. cap)

let context t st =
  {
    Context.utilization = utilization t st;
    queue_delay_s = Stats.ewma_value_or st.q_ewma ~default:0.;
    competing_senders = st.active;
    loss_rate = Stats.ewma_value_or st.loss_ewma ~default:0.;
  }

let lookup t ~path =
  t.lookups <- t.lookups + 1;
  let st = path_state t path in
  let ctx = context t st in
  st.active <- st.active + 1;
  ctx

(* Sanitizer hook: reject-and-record NaN/Inf or out-of-range metrics
   before they reach the EWMAs and the capacity estimate.  The existing
   guards below already skip such values silently; with PHI_SANITIZE=1
   the skip becomes a recorded violation.  A min/mean RTT pair that is
   entirely NaN is the legitimate "no RTT samples" sentinel. *)
let sanitize_report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments =
  if Invariant.enabled () then begin
    let now = Engine.now t.engine in
    let bad rule detail = Invariant.record ~rule ~time:now detail in
    if bytes < 0 then bad "metric-range" (Printf.sprintf "report on %s: %d bytes" path bytes);
    if retransmitted < 0 || segments < 0 then
      bad "metric-range" (Printf.sprintf "report on %s: negative segment counts" path);
    if not (Float.is_finite duration_s) || duration_s < 0. then
      bad "metric-finite" (Printf.sprintf "report on %s: duration %g" path duration_s);
    match (Float.is_nan min_rtt, Float.is_nan mean_rtt) with
    | true, true -> ()
    | false, false ->
      if not (Float.is_finite min_rtt && Float.is_finite mean_rtt) then
        bad "metric-finite"
          (Printf.sprintf "report on %s: rtt min=%g mean=%g" path min_rtt mean_rtt)
      else if min_rtt -. mean_rtt > 1e-9 *. min_rtt then
        (* Tolerance: a mean over n equal samples can round an ulp or two
           below the min; only a materially smaller mean is a violation. *)
        bad "metric-range"
          (Printf.sprintf "report on %s: mean rtt %g below min %g" path mean_rtt min_rtt)
    | _ ->
      bad "metric-finite"
        (Printf.sprintf "report on %s: rtt pair min=%g mean=%g" path min_rtt mean_rtt)
  end

let report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments =
  sanitize_report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments;
  t.reports <- t.reports + 1;
  let st = path_state t path in
  st.active <- Stdlib.max 0 (st.active - 1);
  let now = Engine.now t.engine in
  if bytes > 0 && duration_s > 0. then begin
    st.recent <- { finished_at = now; bytes; duration_s } :: st.recent;
    prune t st;
    (* Without a configured capacity, take the peak windowed rate as the
       best available capacity estimate. *)
    if t.capacity_bps = None then
      st.learned_capacity <- Float.max st.learned_capacity (reported_rate t st)
  end;
  let queueing = mean_rtt -. min_rtt in
  if Float.is_finite queueing && queueing >= 0. then Stats.ewma_update st.q_ewma queueing;
  if segments > 0 then
    (* Retransmissions can outnumber delivered segments (multiple copies
       of one segment); as a loss-rate proxy the ratio is clamped. *)
    Stats.ewma_update st.loss_ewma
      (Float.min 1. (float_of_int retransmitted /. float_of_int segments))

let report_stats t ~path (stats : Phi_tcp.Flow.conn_stats) =
  report t ~path ~bytes:stats.bytes
    ~duration_s:(Phi_tcp.Flow.duration stats)
    ~min_rtt:stats.min_rtt ~mean_rtt:stats.mean_rtt
    ~retransmitted:stats.retransmitted_segments ~segments:stats.segments

let peek t ~path = context t (path_state t path)

let set_oracle t ~path f = (path_state t path).oracle <- Some f

let clear_oracle t ~path = (path_state t path).oracle <- None

let active_connections t ~path = (path_state t path).active

let lookup_count t = t.lookups

let report_count t = t.reports

let learned_capacity_bps t ~path =
  match t.capacity_bps with
  | Some _ -> None
  | None ->
    let st = path_state t path in
    if st.learned_capacity > 0. then Some st.learned_capacity else None
