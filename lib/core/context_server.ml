module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant
module Stats = Phi_util.Stats

(* {2 Per-path committed state}

   The utilization window is a ring of per-epoch byte buckets instead of
   a pruned report list: a report's bytes are spread uniformly over the
   epochs its transfer interval covers, and the windowed rate is the
   overlap-weighted sum of the buckets inside [now - window_s, now].
   Nothing is ever pruned with an allocation — expiry is the ring slot
   being overwritten or weighted to zero. *)

type path_state = {
  mutable active : int;
  mutable win_newest : int;  (* newest epoch represented in [win] *)
  win : floatarray;  (* bytes per epoch, indexed by [epoch mod n_buckets] *)
  q_ewma : Stats.ewma;
  loss_ewma : Stats.ewma;
  mutable learned_capacity : float;
  mutable oracle : (unit -> float) option;
  mutable last_touch : int;  (* epoch of the last flush that touched this path *)
}

(* {2 Per-shard pending aggregation}

   Reports and connection-start registrations coalesce here between
   epoch flushes; nothing touches [path_state] per message.  An [agg]
   lives for one flush interval and is dropped wholesale at the flush —
   in particular, lookup-only traffic on prefixes that never report
   leaves no committed state behind. *)

type agg = {
  mutable p_active : int;  (* lookups minus reports since the last flush *)
  p_created : int;  (* epoch the aggregate was opened (scan decay clock) *)
  mutable p_reports : int;
  mutable p_report_epoch : int;  (* epoch of this batch's reports, -1 if none *)
  mutable p_win_newest : int;
  p_win : floatarray;
  mutable p_q_sum : float;
  mutable p_q_n : int;
  mutable p_loss_sum : float;
  mutable p_loss_n : int;
}

type shard = {
  paths : (string, path_state) Hashtbl.t;
  pending : (string, agg) Hashtbl.t;
  mutable epoch : int;  (* epoch through which reports are committed *)
  mutable next_sweep : int;  (* next TTL sweep, in epochs *)
  mutable s_lookups : int;
  mutable s_reports : int;
  mutable s_evictions : int;
  mutable s_flushes : int;
}

type shard_stat = {
  lookups : int;
  reports : int;
  resident : int;
  evictions : int;
  flushes : int;
}

type t = {
  engine : Engine.t;
  capacity_bps : float option;
  window_s : float;
  epoch_s : float;
  n_buckets : int;
  shards : shard array;
  max_paths : int;  (* per shard *)
  ttl_epochs : int;
  mutable lookups : int;
  mutable reports : int;
}

let create engine ?capacity_bps ?(window_s = 10.) ?(epoch_s = 1.) ?(shards = 1)
    ?(max_paths_per_shard = 65536) ?(ttl_epochs = 600) () =
  if window_s <= 0. then invalid_arg "Context_server.create: window must be positive";
  if epoch_s <= 0. then invalid_arg "Context_server.create: epoch must be positive";
  if shards < 1 then invalid_arg "Context_server.create: need at least one shard";
  if max_paths_per_shard < 1 then invalid_arg "Context_server.create: need path capacity";
  if ttl_epochs < 1 then invalid_arg "Context_server.create: ttl must be positive";
  (match capacity_bps with
  | Some c when c <= 0. -> invalid_arg "Context_server.create: capacity must be positive"
  | _ -> ());
  let n_buckets = int_of_float (Float.ceil (window_s /. epoch_s)) + 1 in
  let shard () =
    {
      paths = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      epoch = 0;
      next_sweep = ttl_epochs;
      s_lookups = 0;
      s_reports = 0;
      s_evictions = 0;
      s_flushes = 0;
    }
  in
  {
    engine;
    capacity_bps;
    window_s;
    epoch_s;
    n_buckets;
    shards = Array.init shards (fun _ -> shard ());
    max_paths = max_paths_per_shard;
    ttl_epochs;
    lookups = 0;
    reports = 0;
  }

let shard_count t = Array.length t.shards

(* FNV-1a over the prefix, reduced mod the shard count: stable across
   runs and processes (the swarm's jobs-invariance rests on it). *)
let prefix_hash path =
  let h = ref 0x811c9dc5 in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xffffffff) path;
  !h

let shard_of t path =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0) else t.shards.(prefix_hash path mod n)

let current_epoch t = int_of_float (Engine.now t.engine /. t.epoch_s)

(* {2 Epoch-bucket rings} *)

(* Advance a ring so [to_e] is representable, zeroing the slots the
   window slides over.  Returns the new newest epoch. *)
let ring_advance t slots ~newest ~to_e =
  if to_e > newest then begin
    if to_e - newest >= t.n_buckets then Float.Array.fill slots 0 t.n_buckets 0.
    else
      for e = newest + 1 to to_e do
        Float.Array.set slots (e mod t.n_buckets) 0.
      done;
    to_e
  end
  else newest

(* Attribute [bytes] uniformly over the transfer interval
   [finished_at - duration_s, finished_at], clipped to the epochs the
   ring still holds.  The ring must already be advanced to [now_e]. *)
let ring_add t slots ~now_e ~finished_at ~bytes ~duration_s =
  let lo = finished_at -. duration_s in
  let oldest = Stdlib.max 0 (now_e - t.n_buckets + 1) in
  let e_lo = Stdlib.max oldest (int_of_float (lo /. t.epoch_s)) in
  let fbytes = float_of_int bytes in
  for e = e_lo to now_e do
    let b_lo = float_of_int e *. t.epoch_s and b_hi = float_of_int (e + 1) *. t.epoch_s in
    let o_lo = Float.max lo b_lo and o_hi = Float.min finished_at b_hi in
    if o_hi > o_lo then begin
      let i = e mod t.n_buckets in
      Float.Array.set slots i
        (Float.Array.get slots i +. (fbytes *. ((o_hi -. o_lo) /. duration_s)))
    end
  done

(* Overlap-weighted bytes of the ring inside [now - window_s, now]. *)
let ring_window_bytes t slots ~newest ~now =
  let lo = now -. t.window_s in
  let acc = ref 0. in
  for i = 0 to t.n_buckets - 1 do
    let e = newest - i in
    if e >= 0 then begin
      let v = Float.Array.get slots (e mod t.n_buckets) in
      if v > 0. then begin
        let b_lo = float_of_int e *. t.epoch_s and b_hi = float_of_int (e + 1) *. t.epoch_s in
        let o_lo = Float.max b_lo lo and o_hi = Float.min b_hi now in
        if o_hi > o_lo then acc := !acc +. (v *. ((o_hi -. o_lo) /. t.epoch_s))
      end
    end
  done;
  !acc

(* {2 Flush: commit a shard's pending batch} *)

(* [epoch] seeds only the LRU clock; the window ring starts at 0 so its
   advancement (and thus committed window content) is a function of
   report epochs alone, not of when the path first got flushed. *)
let fresh_state t ~epoch =
  {
    active = 0;
    win_newest = 0;
    win = Float.Array.make t.n_buckets 0.;
    q_ewma = Stats.ewma ~alpha:0.2;
    loss_ewma = Stats.ewma ~alpha:0.2;
    learned_capacity = 0.;
    oracle = None;
    last_touch = epoch;
  }

(* Commit one pending batch into committed state.  Everything here is a
   function of the batch's own timestamps, never of when the flush runs:
   a shard's flush schedule depends on its co-resident paths, and the
   committed state per path must not (that is the sharding-transparency
   property the test suite holds against a single-shard reference). *)
let merge_agg t ~now_e st agg =
  st.active <- Stdlib.max 0 (st.active + agg.p_active);
  st.last_touch <- now_e;
  if agg.p_reports > 0 then begin
    st.win_newest <-
      ring_advance t st.win ~newest:st.win_newest
        ~to_e:(Stdlib.max st.win_newest agg.p_report_epoch);
    let floor_e = st.win_newest - t.n_buckets + 1 in
    for i = 0 to t.n_buckets - 1 do
      let e = agg.p_win_newest - i in
      if e >= 0 && e >= floor_e then begin
        let v = Float.Array.get agg.p_win (e mod t.n_buckets) in
        if v > 0. then begin
          let j = e mod t.n_buckets in
          Float.Array.set st.win j (Float.Array.get st.win j +. v)
        end
      end
    done;
    (* Without a configured capacity, the peak windowed rate is the best
       available capacity estimate — evaluated at the close of the
       batch's epoch, not at flush time. *)
    (match t.capacity_bps with
    | Some _ -> ()
    | None ->
      let eval_now = float_of_int (agg.p_report_epoch + 1) *. t.epoch_s in
      let rate =
        ring_window_bytes t st.win ~newest:st.win_newest ~now:eval_now *. 8. /. t.window_s
      in
      st.learned_capacity <- Float.max st.learned_capacity rate)
  end;
  if agg.p_q_n > 0 then Stats.ewma_update_n st.q_ewma (agg.p_q_sum /. float_of_int agg.p_q_n) ~n:agg.p_q_n;
  if agg.p_loss_n > 0 then
    Stats.ewma_update_n st.loss_ewma (agg.p_loss_sum /. float_of_int agg.p_loss_n) ~n:agg.p_loss_n

(* Decay/LRU eviction.  A TTL pass drops prefixes idle for more than
   [ttl_epochs]; if the shard is still over its path budget, the
   least-recently-touched prefixes go next (ties broken by name so
   eviction is deterministic).  Oracle-pinned paths are never evicted —
   an oracle is an explicit installation, not learned state. *)
let evict t shard ~now_e =
  shard.next_sweep <- now_e + t.ttl_epochs;
  let dead =
    Hashtbl.fold
      (fun path st acc ->
        match st.oracle with
        | Some _ -> acc
        | None -> if now_e - st.last_touch > t.ttl_epochs then path :: acc else acc)
      shard.paths []
  in
  List.iter (fun path -> Hashtbl.remove shard.paths path) dead;
  shard.s_evictions <- shard.s_evictions + List.length dead;
  let over = Hashtbl.length shard.paths - t.max_paths in
  if over > 0 then begin
    let entries =
      Hashtbl.fold
        (fun path st acc ->
          match st.oracle with Some _ -> acc | None -> (st.last_touch, path) :: acc)
        shard.paths []
    in
    let arr = Array.of_list entries in
    Array.sort
      (fun (ta, pa) (tb, pb) ->
        match Int.compare ta tb with 0 -> String.compare pa pb | c -> c)
      arr;
    let n = Stdlib.min over (Array.length arr) in
    for i = 0 to n - 1 do
      Hashtbl.remove shard.paths (snd arr.(i))
    done;
    shard.s_evictions <- shard.s_evictions + n
  end

let flush_shard t shard =
  let now_e = current_epoch t in
  if Hashtbl.length shard.pending > 0 then begin
    shard.s_flushes <- shard.s_flushes + 1;
    let carry = ref [] in
    Hashtbl.iter
      (fun path agg ->
        match Hashtbl.find_opt shard.paths path with
        | Some st -> merge_agg t ~now_e st agg
        | None ->
          if agg.p_reports > 0 then begin
            let st = fresh_state t ~epoch:now_e in
            merge_agg t ~now_e st agg;
            Hashtbl.add shard.paths path st
          end
          else if agg.p_active > 0 && now_e - agg.p_created <= t.ttl_epochs then
            (* An unknown prefix with open connections but no report yet:
               keep it pending (its eventual report closes the loop) —
               but never commit it.  Past the ttl it is a scan, not a
               connection, and is dropped: lookups on never-reported
               prefixes must not grow any table without bound. *)
            carry := (path, agg) :: !carry)
      shard.pending;
    Hashtbl.reset shard.pending;
    List.iter (fun (path, agg) -> Hashtbl.add shard.pending path agg) !carry
  end;
  shard.epoch <- now_e;
  if now_e >= shard.next_sweep || Hashtbl.length shard.paths > t.max_paths then
    evict t shard ~now_e

let flush t = Array.iter (fun shard -> flush_shard t shard) t.shards

(* Commit the shard when its snapshot is older than the caller
   tolerates: staleness 0 flushes at every epoch boundary, staleness k
   lets k epochs of reports pool up in the batch buffer. *)
let refresh t shard ~max_staleness =
  if current_epoch t - shard.epoch > Stdlib.max 0 max_staleness then flush_shard t shard

(* {2 Context views} *)

let pending_agg t shard path =
  match Hashtbl.find_opt shard.pending path with
  | Some agg -> agg
  | None ->
    let agg =
      {
        p_active = 0;
        p_created = current_epoch t;
        p_reports = 0;
        p_report_epoch = -1;
        p_win_newest = current_epoch t;
        p_win = Float.Array.make t.n_buckets 0.;
        p_q_sum = 0.;
        p_q_n = 0;
        p_loss_sum = 0.;
        p_loss_n = 0;
      }
    in
    Hashtbl.add shard.pending path agg;
    agg

let merged_rate t ~now st_opt agg_opt =
  let bytes =
    (match st_opt with
    | Some st -> ring_window_bytes t st.win ~newest:st.win_newest ~now
    | None -> 0.)
    +.
    match agg_opt with
    | Some agg when agg.p_reports > 0 ->
      ring_window_bytes t agg.p_win ~newest:agg.p_win_newest ~now
    | Some _ | None -> 0.
  in
  bytes *. 8. /. t.window_s

let oracle_utilization t f =
  let u = f () in
  if Float.is_finite u then Float.max 0. (Float.min 1. u)
  else begin
    (* A NaN here would poison every context lookup on the path. *)
    Invariant.record ~rule:"metric-finite" ~time:(Engine.now t.engine)
      (Printf.sprintf "utilization oracle returned %g" u);
    0.
  end

(* The freshness-0 view: committed state overlaid with the shard's
   pending batch for this prefix, computed without committing either. *)
let merged_context t ~now st_opt agg_opt =
  (match st_opt with
  | Some { oracle = Some f; _ } -> Some (oracle_utilization t f)
  | Some _ | None -> None)
  |> fun oracle_u ->
  let utilization =
    match oracle_u with
    | Some u -> u
    | None ->
      let rate = merged_rate t ~now st_opt agg_opt in
      let cap =
        match t.capacity_bps with
        | Some c -> c
        | None ->
          let learned =
            match st_opt with Some st -> st.learned_capacity | None -> 0.
          in
          let learned = Float.max learned rate in
          if learned > 0. then learned else infinity
      in
      if not (Float.is_finite cap) then 0. else Float.min 1. (rate /. cap)
  in
  let preview ewma_of sum n =
    let mean = sum /. float_of_int n in
    match st_opt with
    | Some st -> Stats.ewma_next (ewma_of st) mean ~n
    | None -> mean
  in
  let queue_delay_s =
    match agg_opt with
    | Some agg when agg.p_q_n > 0 -> preview (fun st -> st.q_ewma) agg.p_q_sum agg.p_q_n
    | Some _ | None -> (
      match st_opt with
      | Some st -> Stats.ewma_value_or st.q_ewma ~default:0.
      | None -> 0.)
  in
  let loss_rate =
    match agg_opt with
    | Some agg when agg.p_loss_n > 0 ->
      preview (fun st -> st.loss_ewma) agg.p_loss_sum agg.p_loss_n
    | Some _ | None -> (
      match st_opt with
      | Some st -> Stats.ewma_value_or st.loss_ewma ~default:0.
      | None -> 0.)
  in
  let committed_active = match st_opt with Some st -> st.active | None -> 0 in
  let pending_active = match agg_opt with Some agg -> agg.p_active | None -> 0 in
  {
    Context.utilization;
    queue_delay_s;
    competing_senders = Stdlib.max 0 (committed_active + pending_active);
    loss_rate;
  }

(* The committed-only view served to staleness-tolerant lookups: no
   pending overlay, so the answer reflects exactly the data committed
   through the shard's epoch (the window itself still slides to [now]). *)
let committed_context t ~now st = merged_context t ~now (Some st) None

(* {2 The service API} *)

let lookup_epoch ?(max_staleness = 0) t ~path =
  t.lookups <- t.lookups + 1;
  let shard = shard_of t path in
  shard.s_lookups <- shard.s_lookups + 1;
  refresh t shard ~max_staleness;
  let now = Engine.now t.engine in
  let answer =
    if max_staleness <= 0 then
      ( merged_context t ~now
          (Hashtbl.find_opt shard.paths path)
          (Hashtbl.find_opt shard.pending path),
        current_epoch t )
    else
      match Hashtbl.find_opt shard.paths path with
      | Some st -> (committed_context t ~now st, shard.epoch)
      | None -> (Context.empty, shard.epoch)
  in
  (* Register the connection start; committed with the next flush. *)
  let agg = pending_agg t shard path in
  agg.p_active <- agg.p_active + 1;
  answer

let lookup ?max_staleness t ~path = fst (lookup_epoch ?max_staleness t ~path)

(* Sanitizer hook: reject-and-record NaN/Inf or out-of-range metrics
   before they reach the aggregation buffers.  The guards in [report]
   below already skip such values silently; with PHI_SANITIZE=1 the skip
   becomes a recorded violation.  A min/mean RTT pair that is entirely
   NaN is the legitimate "no RTT samples" sentinel. *)
let sanitize_report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments =
  if Invariant.enabled () then begin
    let now = Engine.now t.engine in
    let bad rule detail = Invariant.record ~rule ~time:now detail in
    if bytes < 0 then bad "metric-range" (Printf.sprintf "report on %s: %d bytes" path bytes);
    if retransmitted < 0 || segments < 0 then
      bad "metric-range" (Printf.sprintf "report on %s: negative segment counts" path);
    if not (Float.is_finite duration_s) || duration_s < 0. then
      bad "metric-finite" (Printf.sprintf "report on %s: duration %g" path duration_s);
    match (Float.is_nan min_rtt, Float.is_nan mean_rtt) with
    | true, true -> ()
    | false, false ->
      if not (Float.is_finite min_rtt && Float.is_finite mean_rtt) then
        bad "metric-finite"
          (Printf.sprintf "report on %s: rtt min=%g mean=%g" path min_rtt mean_rtt)
      else if min_rtt -. mean_rtt > 1e-9 *. min_rtt then
        (* Tolerance: a mean over n equal samples can round an ulp or two
           below the min; only a materially smaller mean is a violation. *)
        bad "metric-range"
          (Printf.sprintf "report on %s: mean rtt %g below min %g" path mean_rtt min_rtt)
    | _ ->
      bad "metric-finite"
        (Printf.sprintf "report on %s: rtt pair min=%g mean=%g" path min_rtt mean_rtt)
  end

let report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments =
  sanitize_report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments;
  t.reports <- t.reports + 1;
  let shard = shard_of t path in
  shard.s_reports <- shard.s_reports + 1;
  refresh t shard ~max_staleness:0;
  let now = Engine.now t.engine in
  let now_e = current_epoch t in
  let agg = pending_agg t shard path in
  agg.p_active <- agg.p_active - 1;
  agg.p_reports <- agg.p_reports + 1;
  agg.p_report_epoch <- now_e;
  if bytes > 0 && duration_s > 0. then begin
    agg.p_win_newest <- ring_advance t agg.p_win ~newest:agg.p_win_newest ~to_e:now_e;
    ring_add t agg.p_win ~now_e ~finished_at:now ~bytes ~duration_s
  end;
  let queueing = mean_rtt -. min_rtt in
  if Float.is_finite queueing && queueing >= 0. then begin
    agg.p_q_sum <- agg.p_q_sum +. queueing;
    agg.p_q_n <- agg.p_q_n + 1
  end;
  if segments > 0 then begin
    (* Retransmissions can outnumber delivered segments (multiple copies
       of one segment); as a loss-rate proxy the ratio is clamped. *)
    agg.p_loss_sum <-
      agg.p_loss_sum +. Float.min 1. (float_of_int retransmitted /. float_of_int segments);
    agg.p_loss_n <- agg.p_loss_n + 1
  end

let report_stats t ~path (stats : Phi_tcp.Flow.conn_stats) =
  report t ~path ~bytes:stats.bytes
    ~duration_s:(Phi_tcp.Flow.duration stats)
    ~min_rtt:stats.min_rtt ~mean_rtt:stats.mean_rtt
    ~retransmitted:stats.retransmitted_segments ~segments:stats.segments

let peek t ~path =
  let shard = shard_of t path in
  refresh t shard ~max_staleness:0;
  merged_context t ~now:(Engine.now t.engine)
    (Hashtbl.find_opt shard.paths path)
    (Hashtbl.find_opt shard.pending path)

let handle t req =
  match req with
  | Context_wire.Lookup { path; max_staleness } ->
    let ctx, epoch = lookup_epoch t ~max_staleness ~path in
    Context_wire.Context_of { ctx; epoch }
  | Context_wire.Report { path; bytes; duration_s; min_rtt; mean_rtt; retransmitted; segments }
    ->
    report t ~path ~bytes ~duration_s ~min_rtt ~mean_rtt ~retransmitted ~segments;
    Context_wire.Accepted { epoch = (shard_of t path).epoch }

(* Installing an oracle pins the path: it is committed state immediately
   and the eviction passes skip it. *)
let set_oracle t ~path f =
  let shard = shard_of t path in
  refresh t shard ~max_staleness:0;
  let st =
    match Hashtbl.find_opt shard.paths path with
    | Some st -> st
    | None ->
      let st = fresh_state t ~epoch:(current_epoch t) in
      Hashtbl.add shard.paths path st;
      st
  in
  st.oracle <- Some f

let clear_oracle t ~path =
  match Hashtbl.find_opt (shard_of t path).paths path with
  | Some st -> st.oracle <- None
  | None -> ()

let active_connections t ~path =
  let shard = shard_of t path in
  refresh t shard ~max_staleness:0;
  let committed =
    match Hashtbl.find_opt shard.paths path with Some st -> st.active | None -> 0
  in
  let pending =
    match Hashtbl.find_opt shard.pending path with Some agg -> agg.p_active | None -> 0
  in
  Stdlib.max 0 (committed + pending)

let lookup_count t = t.lookups

let report_count t = t.reports

let learned_capacity_bps t ~path =
  match t.capacity_bps with
  | Some _ -> None
  | None ->
    let shard = shard_of t path in
    refresh t shard ~max_staleness:0;
    let st_opt = Hashtbl.find_opt shard.paths path in
    let rate = merged_rate t ~now:(Engine.now t.engine) st_opt (Hashtbl.find_opt shard.pending path) in
    let learned =
      Float.max rate (match st_opt with Some st -> st.learned_capacity | None -> 0.)
    in
    if learned > 0. then Some learned else None

(* {2 Introspection (benchmarks, eviction tests, the swarm harness)} *)

let resident_paths t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.paths) 0 t.shards

let pending_paths t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.pending) 0 t.shards

let eviction_count t =
  Array.fold_left (fun acc shard -> acc + shard.s_evictions) 0 t.shards

let flush_count t = Array.fold_left (fun acc shard -> acc + shard.s_flushes) 0 t.shards

let shard_stats t =
  Array.map
    (fun shard ->
      {
        lookups = shard.s_lookups;
        reports = shard.s_reports;
        resident = Hashtbl.length shard.paths;
        evictions = shard.s_evictions;
        flushes = shard.s_flushes;
      })
    t.shards
