(** The Phi context server (Section 2.2.2), at datacenter scale.

    A per-domain repository of shared network state.  Senders interact
    with it exactly twice per connection: a {!lookup} when the connection
    starts (returning the current {!Context.t} for the path, and counting
    the sender as active) and a {!report} when it ends (feeding the
    connection's own measurements back).  From those minimal signals the
    server estimates the congestion context:

    - [u]: bytes reported over a sliding window, divided by the path
      capacity (configured, or learned as the largest rate ever seen);
    - [q]: EWMA of reported [mean_rtt - min_rtt];
    - [n]: currently active connections (lookups minus reports);
    - loss: EWMA of reported retransmission fractions.

    The implementation is shaped like the service a "five computers"
    operator would deploy, not a toy table:

    - {b Shards.}  Prefixes hash (stable FNV-1a) onto [shards]
      independent shards, each with its own committed table, pending
      batch, and epoch — the unit of parallel service and of the swarm
      benchmark's balance metric.
    - {b Epoch batching.}  Reports and lookup registrations coalesce in
      a per-shard pending buffer and are committed in one pass per
      epoch ([epoch_s]) instead of mutating per-path state per message.
    - {b Bounded staleness.}  A lookup carries the number of epochs of
      staleness it tolerates; staleness-0 answers overlay the pending
      batch, staleness-[k] answers are served from the committed
      snapshot as long as it is at most [k] epochs old.
    - {b Bounded memory.}  The utilization window is a ring of per-epoch
      byte buckets (no report list, no pruning allocation), unknown
      prefixes that only get looked up never enter the committed table,
      and a TTL/LRU sweep evicts prefixes that stop reporting.

    For the "ideal" variants of the paper's experiments an oracle (e.g. a
    {!Phi_net.Monitor} on the bottleneck) can be attached, replacing the
    report-driven utilization estimate with up-to-the-minute truth.
    Oracle-pinned paths are never evicted. *)

type t

val create :
  Phi_sim.Engine.t ->
  ?capacity_bps:float ->
  ?window_s:float ->
  ?epoch_s:float ->
  ?shards:int ->
  ?max_paths_per_shard:int ->
  ?ttl_epochs:int ->
  unit ->
  t
(** [window_s] (default 10 s) is the horizon of the utilization estimate.
    Without [capacity_bps] the server learns capacity from the peak
    observed rate.  [epoch_s] (default 1 s) is the batching interval;
    [shards] (default 1) the number of independent shards;
    [max_paths_per_shard] (default 65536) the per-shard resident-path
    budget and [ttl_epochs] (default 600) the idle lifetime before a
    prefix is swept. *)

val shard_count : t -> int

val lookup : ?max_staleness:int -> t -> path:string -> Context.t
(** Called by a sender when a connection starts.  [max_staleness]
    (default 0) is the freshness demand in epochs: 0 answers from the
    committed snapshot overlaid with the shard's pending batch; [k > 0]
    answers from the committed snapshot alone, which is refreshed first
    if it is more than [k] epochs old. *)

val lookup_epoch : ?max_staleness:int -> t -> path:string -> Context.t * int
(** Like {!lookup}, also returning the epoch the answer was computed
    from so the caller can check its staleness bound was honoured. *)

val report :
  t ->
  path:string ->
  bytes:int ->
  duration_s:float ->
  min_rtt:float ->
  mean_rtt:float ->
  retransmitted:int ->
  segments:int ->
  unit
(** Called by a sender when a connection ends.  [min_rtt]/[mean_rtt] may be
    NaN when the connection took no RTT sample. *)

val report_stats : t -> path:string -> Phi_tcp.Flow.conn_stats -> unit
(** Convenience wrapper around {!report} for a finished connection. *)

val handle : t -> Context_wire.request -> Context_wire.response
(** Serve one decoded wire message — the entry point a transport would
    call after {!Context_wire.decode_request}. *)

val peek : t -> path:string -> Context.t
(** Current (staleness-0) context without registering a connection
    (monitoring UIs, tests). *)

val flush : t -> unit
(** Commit every shard's pending batch now, regardless of epoch — used
    at quiesce points (end of an experiment, tests comparing sharded
    and reference servers at an epoch boundary). *)

val set_oracle : t -> path:string -> (unit -> float) -> unit
(** Override the utilization estimate for [path] with live truth.  Pins
    [path]: oracle paths are exempt from eviction. *)

val clear_oracle : t -> path:string -> unit

val active_connections : t -> path:string -> int

val lookup_count : t -> int

val report_count : t -> int
(** Total messages processed — the "minimal overhead" the paper argues
    for is [2] per connection; benches print these counters. *)

val learned_capacity_bps : t -> path:string -> float option
(** The capacity estimate in use for [path] when none was configured. *)

val resident_paths : t -> int
(** Prefixes with committed state, across all shards.  Lookup-only
    prefixes never become resident (see the eviction model above). *)

val pending_paths : t -> int
(** Prefixes with uncommitted activity in some shard's pending batch. *)

val eviction_count : t -> int

val flush_count : t -> int

type shard_stat = {
  lookups : int;
  reports : int;
  resident : int;
  evictions : int;
  flushes : int;
}

val shard_stats : t -> shard_stat array
(** Per-shard counters, in shard order — the swarm benchmark derives its
    Jain balance index from these. *)
