(* Versioned wire format for the context service.  See context_wire.mli
   for the layout; the encoder and decoder are hand-rolled over
   Buffer/string so the hot swarm loop round-trips millions of messages
   without a serialization dependency. *)

let version = 1

type request =
  | Lookup of { path : string; max_staleness : int }
  | Report of {
      path : string;
      bytes : int;
      duration_s : float;
      min_rtt : float;
      mean_rtt : float;
      retransmitted : int;
      segments : int;
    }

type response =
  | Context_of of { ctx : Context.t; epoch : int }
  | Accepted of { epoch : int }

(* {2 Primitive writers}

   Non-negative ints are LEB128 varints (7 bits per byte, high bit =
   continuation); floats are their IEEE-754 bits, little-endian, so NaN
   sentinels (a report with no RTT samples) survive the round trip. *)

let put_varint buf n =
  if n < 0 then invalid_arg "Context_wire: negative integer field";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_float buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

(* {2 Primitive readers}

   Every reader takes the source and a mutable position and returns a
   [result]; decoding never raises, whatever the input bytes (the fuzz
   tests feed random garbage). *)

type cursor = { src : string; mutable pos : int }

let read_byte c =
  if c.pos >= String.length c.src then Error "truncated message"
  else begin
    let b = Char.code c.src.[c.pos] in
    c.pos <- c.pos + 1;
    Ok b
  end

let read_varint c =
  let rec go shift acc =
    if shift > 56 then Error "varint too long"
    else
      match read_byte c with
      | Error _ as e -> e
      | Ok b ->
        if b = 0 && shift > 0 then Error "non-canonical varint"
        else
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if acc < 0 then Error "varint overflow"
          else if b land 0x80 = 0 then Ok acc
          else go (shift + 7) acc
  in
  go 0 0

let read_float c =
  if c.pos + 8 > String.length c.src then Error "truncated float"
  else begin
    let bits = String.get_int64_le c.src c.pos in
    c.pos <- c.pos + 8;
    Ok (Int64.float_of_bits bits)
  end

let read_string c =
  match read_varint c with
  | Error _ as e -> e
  | Ok len ->
    if c.pos + len > String.length c.src then Error "truncated string"
    else begin
      let s = String.sub c.src c.pos len in
      c.pos <- c.pos + len;
      Ok s
    end

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let finish c v =
  if c.pos = String.length c.src then Ok v else Error "trailing bytes after message"

let check_header c =
  let* v = read_byte c in
  if v <> version then Error (Printf.sprintf "unsupported wire version %d" v)
  else read_byte c

(* {2 Requests} *)

let tag_lookup = 0x01
let tag_report = 0x02
let tag_context = 0x81
let tag_accepted = 0x82

let encode_request buf req =
  Buffer.add_char buf (Char.chr version);
  match req with
  | Lookup { path; max_staleness } ->
    Buffer.add_char buf (Char.chr tag_lookup);
    put_string buf path;
    put_varint buf max_staleness
  | Report { path; bytes; duration_s; min_rtt; mean_rtt; retransmitted; segments } ->
    Buffer.add_char buf (Char.chr tag_report);
    put_string buf path;
    put_varint buf bytes;
    put_float buf duration_s;
    put_float buf min_rtt;
    put_float buf mean_rtt;
    put_varint buf retransmitted;
    put_varint buf segments

let decode_request src =
  let c = { src; pos = 0 } in
  let* tag = check_header c in
  if tag = tag_lookup then begin
    let* path = read_string c in
    let* max_staleness = read_varint c in
    finish c (Lookup { path; max_staleness })
  end
  else if tag = tag_report then begin
    let* path = read_string c in
    let* bytes = read_varint c in
    let* duration_s = read_float c in
    let* min_rtt = read_float c in
    let* mean_rtt = read_float c in
    let* retransmitted = read_varint c in
    let* segments = read_varint c in
    finish c (Report { path; bytes; duration_s; min_rtt; mean_rtt; retransmitted; segments })
  end
  else Error (Printf.sprintf "unknown request tag 0x%02x" tag)

(* {2 Responses} *)

let encode_response buf resp =
  Buffer.add_char buf (Char.chr version);
  match resp with
  | Context_of { ctx; epoch } ->
    Buffer.add_char buf (Char.chr tag_context);
    put_varint buf epoch;
    put_float buf ctx.Context.utilization;
    put_float buf ctx.Context.queue_delay_s;
    put_varint buf ctx.Context.competing_senders;
    put_float buf ctx.Context.loss_rate
  | Accepted { epoch } ->
    Buffer.add_char buf (Char.chr tag_accepted);
    put_varint buf epoch

let decode_response src =
  let c = { src; pos = 0 } in
  let* tag = check_header c in
  if tag = tag_context then begin
    let* epoch = read_varint c in
    let* utilization = read_float c in
    let* queue_delay_s = read_float c in
    let* competing_senders = read_varint c in
    let* loss_rate = read_float c in
    finish c
      (Context_of
         { ctx = { Context.utilization; queue_delay_s; competing_senders; loss_rate }; epoch })
  end
  else if tag = tag_accepted then begin
    let* epoch = read_varint c in
    finish c (Accepted { epoch })
  end
  else Error (Printf.sprintf "unknown response tag 0x%02x" tag)

(* {2 Convenience string forms} *)

let request_to_string req =
  let buf = Buffer.create 64 in
  encode_request buf req;
  Buffer.contents buf

let response_to_string resp =
  let buf = Buffer.create 48 in
  encode_response buf resp;
  Buffer.contents buf
