(** Wire format of the context service.

    The paper's protocol is two messages per connection — a lookup at
    connection start, a report at connection end — so the format is a
    compact, explicit binary layout rather than a generic serializer:

    {v
    byte 0          version (currently 1)
    byte 1          message tag
    then, per tag   length-prefixed path string, LEB128 varints for
                    non-negative integers, IEEE-754 little-endian bits
                    for floats
    v}

    Floats travel as raw bits, so the NaN sentinel of a report with no
    RTT samples survives the round trip.  Decoding never raises: any
    byte string — truncated, overlong, wrong version, unknown tag,
    trailing garbage — comes back as [Error reason].  Encodings are
    canonical (non-canonical varints are rejected), so a message has
    exactly one byte-level spelling — which is what lets the swarm
    benchmark checksum response bytes deterministically.  The format is
    versioned by its leading byte; a decoder rejects versions it does
    not speak instead of misparsing them. *)

val version : int
(** Version stamped into (and required of) every message. *)

type request =
  | Lookup of { path : string; max_staleness : int }
      (** Connection start.  [max_staleness] is the freshness demand in
          epochs: 0 means the answer must reflect every report received
          so far; [k] allows an answer computed up to [k] epochs ago. *)
  | Report of {
      path : string;
      bytes : int;
      duration_s : float;
      min_rtt : float;
      mean_rtt : float;
      retransmitted : int;
      segments : int;
    }  (** Connection end; the fields of {!Context_server.report}. *)

type response =
  | Context_of of { ctx : Context.t; epoch : int }
      (** Answer to a {!Lookup}; [epoch] is the epoch the answer was
          computed from, so the client can verify its freshness demand
          was met. *)
  | Accepted of { epoch : int }
      (** Answer to a {!Report}; [epoch] is the receiving shard's
          committed epoch (the batch the report will flush with). *)

val encode_request : Buffer.t -> request -> unit
val decode_request : string -> (request, string) result

val encode_response : Buffer.t -> response -> unit
val decode_response : string -> (response, string) result

val request_to_string : request -> string
(** One-shot {!encode_request} into a fresh string. *)

val response_to_string : response -> string
