let power ~throughput_bps ~delay_s =
  if throughput_bps <= 0. || delay_s <= 0. then 0.
  else throughput_bps /. 1e6 /. delay_s

let power_with_loss ~throughput_bps ~loss_rate ~delay_s =
  let loss_rate = Float.max 0. (Float.min 1. loss_rate) in
  power ~throughput_bps ~delay_s *. (1. -. loss_rate)

let log_power ~throughput_bps ~delay_s =
  if throughput_bps <= 0. || delay_s <= 0. then neg_infinity
  else log (throughput_bps /. 1e6 /. delay_s)

let compare_desc a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare b a
