type t = {
  server : Context_server.t;
  policy : Policy.t;
  path : string;
  builder : Cc_algo.builder;
  mutable compiled : Policy.Compiled.t;
  mutable last_context : Context.t option;
  mutable last_choice : Cc_algo.t option;
}

let create ?(builder = Cc_algo.basic_builder) ~server ~policy ~path () =
  {
    server;
    policy;
    path;
    builder;
    compiled = Policy.Compiled.compile policy;
    last_context = None;
    last_choice = None;
  }

let factory t () =
  let ctx = Context_server.lookup t.server ~path:t.path in
  (* Recompile lazily after [Policy.learn]; connection setup then pays
     one flat-array choice instead of a learned-table walk. *)
  if not (Policy.Compiled.is_fresh t.compiled t.policy) then
    t.compiled <- Policy.Compiled.compile t.policy;
  let choice = Policy.Compiled.choice_for t.compiled ctx in
  t.last_context <- Some ctx;
  t.last_choice <- Some choice;
  t.builder ~ctx choice

let on_conn_end t stats = Context_server.report_stats t.server ~path:t.path stats

let last_context t = t.last_context

let last_choice t = t.last_choice
