(** Sender-side Phi integration.

    Bundles the per-connection protocol of Section 2.2.2 into the two
    hooks {!Phi_tcp.Source} exposes: a congestion-controller factory
    (which performs the context-server lookup, applies the policy and
    builds whichever algorithm it chose) and an end-of-connection
    callback (which reports back).

    [factory] replaces the old Cubic-only [cubic_factory]: the policy now
    returns a {!Cc_algo.t} choice and the client's [builder] constructs
    it.  The default {!Cc_algo.basic_builder} covers Cubic/Reno/Vegas;
    pass a richer builder at {!create} to serve the Remy variants from
    the same single lookup. *)

type t

val create :
  ?builder:Cc_algo.builder ->
  server:Context_server.t ->
  policy:Policy.t ->
  path:string ->
  unit ->
  t
(** [builder] defaults to {!Cc_algo.basic_builder}. *)

val factory : t -> unit -> Phi_tcp.Cc.t
(** Looks the context up, asks the policy for an algorithm choice and
    builds the controller.  Exactly one context-server round trip.  The
    choice goes through a {!Policy.Compiled} table held by the client
    and recompiled lazily whenever the policy's generation moved. *)

val on_conn_end : t -> Phi_tcp.Flow.conn_stats -> unit
(** Reports the finished connection to the context server. *)

val last_context : t -> Context.t option
(** The context returned by the most recent lookup (introspection). *)

val last_choice : t -> Cc_algo.t option
(** The algorithm chosen at the most recent lookup. *)
