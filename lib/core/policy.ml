module Cubic = Phi_tcp.Cubic

type t = { default : Cc_algo.t; table : (Context.bucket, Cc_algo.t) Hashtbl.t }

let create ?(default = Cc_algo.Cubic Cubic.default_params) () =
  { default; table = Hashtbl.create 32 }

let learn t bucket choice = Hashtbl.replace t.table bucket choice

let learned t = Hashtbl.fold (fun b c acc -> (b, c) :: acc) t.table []

let heuristic ctx =
  let severity = Context.severity ctx in
  let deep_queue = ctx.Context.queue_delay_s > 0.05 in
  Cc_algo.Cubic
    (if severity < 0.25 then
       Cubic.with_knobs ~initial_cwnd:32. ~initial_ssthresh:128. ~beta:0.2 Cubic.default_params
     else if severity < 0.5 then
       Cubic.with_knobs ~initial_cwnd:16. ~initial_ssthresh:64. ~beta:0.2 Cubic.default_params
     else if severity < 0.75 then
       Cubic.with_knobs ~initial_cwnd:8. ~initial_ssthresh:32.
         ~beta:(if deep_queue then 0.4 else 0.2)
         Cubic.default_params
     else
       Cubic.with_knobs ~initial_cwnd:2. ~initial_ssthresh:8.
         ~beta:(if deep_queue then 0.5 else 0.3)
         Cubic.default_params)

let nearest t bucket =
  Hashtbl.fold
    (fun b c best ->
      let d = Context.bucket_distance bucket b in
      match best with
      | Some (best_d, _) when best_d <= d -> best
      | _ -> Some (d, c))
    t.table None

let choice_for t ctx =
  let bucket = Context.bucketize ctx in
  match Hashtbl.find_opt t.table bucket with
  | Some choice -> choice
  | None -> (
    match nearest t bucket with
    | Some (d, choice) when d <= 2 -> choice
    | Some _ | None -> heuristic ctx)
