module Cubic = Phi_tcp.Cubic

type t = {
  default : Cc_algo.t;
  table : (Context.bucket, Cc_algo.t) Hashtbl.t;
  mutable generation : int;
}

let create ?(default = Cc_algo.Cubic Cubic.default_params) () =
  { default; table = Hashtbl.create 32; generation = 0 }

let learn t bucket choice =
  Hashtbl.replace t.table bucket choice;
  t.generation <- t.generation + 1

let learned t = Hashtbl.fold (fun b c acc -> (b, c) :: acc) t.table []

let generation t = t.generation

(* The heuristic's severity-tier presets, hoisted to module init (the
   two congested tiers double up for the deep-queue beta variant): the
   fallback path hands out shared values instead of allocating fresh
   Cubic params per call. *)
let quiet_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:32. ~initial_ssthresh:128. ~beta:0.2 Cubic.default_params)

let light_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:16. ~initial_ssthresh:64. ~beta:0.2 Cubic.default_params)

let busy_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:8. ~initial_ssthresh:32. ~beta:0.2 Cubic.default_params)

let busy_deep_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:8. ~initial_ssthresh:32. ~beta:0.4 Cubic.default_params)

let heavy_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:2. ~initial_ssthresh:8. ~beta:0.3 Cubic.default_params)

let heavy_deep_preset =
  Cc_algo.Cubic
    (Cubic.with_knobs ~initial_cwnd:2. ~initial_ssthresh:8. ~beta:0.5 Cubic.default_params)

let heuristic ctx =
  let severity = Context.severity ctx in
  let deep_queue = ctx.Context.queue_delay_s > 0.05 in
  if severity < 0.25 then quiet_preset
  else if severity < 0.5 then light_preset
  else if severity < 0.75 then if deep_queue then busy_deep_preset else busy_preset
  else if deep_queue then heavy_deep_preset
  else heavy_preset

let nearest t bucket =
  Hashtbl.fold
    (fun b c best ->
      let d = Context.bucket_distance bucket b in
      match best with
      | Some (best_d, _) when best_d <= d -> best
      | _ -> Some (d, c))
    t.table None

(* The learned part of the resolution: exact hit, else nearest learned
   bucket within distance 2.  [None] means "fall through to the
   heuristic", which needs the full context, not just the bucket. *)
let resolved t bucket =
  match Hashtbl.find_opt t.table bucket with
  | Some choice -> Some choice
  | None -> (
    match nearest t bucket with
    | Some (d, choice) when d <= 2 -> Some choice
    | Some _ | None -> None)

let choice_for t ctx =
  match resolved t (Context.bucketize ctx) with
  | Some choice -> choice
  | None -> heuristic ctx

module Compiled = struct
  type policy = t

  type t = {
    source : policy;
    generation : int;
    (* Packed bucket code -> learned resolution; [None] falls through
       to the (preset-backed, allocation-free) heuristic at lookup. *)
    entries : Cc_algo.t option array;
  }

  let compile source =
    {
      source;
      generation = source.generation;
      entries =
        Array.init Context.bucket_codes (fun code ->
            resolved source (Context.bucket_of_code code));
    }

  let is_fresh t source = t.source == source && t.generation = source.generation

  let choice_for t ctx =
    match Array.unsafe_get t.entries (Context.bucket_code ctx) with
    | Some choice -> choice
    | None -> heuristic ctx

  let source t = t.source
  let generation t = t.generation
end
