(** Mapping congestion context to a congestion-control choice.

    Phi's coordination, concretely: every cooperating sender asks the
    policy which algorithm (and parameter setting) fits the current
    network weather.  A policy is a table keyed on {!Context.bucket} —
    populated from offline sweeps exactly like the paper's Section 2.2.1
    grid search — with a documented heuristic fallback for buckets never
    swept (derived from the paper's observations: shift to smaller
    initial windows and slow-start thresholds, and sharper back-off, as
    congestion rises).  Choices are {!Cc_algo.t} values, so a bucket can
    select any registered algorithm, not just Cubic parameters. *)

type t

val create : ?default:Cc_algo.t -> unit -> t
(** [default] backs the final fallback; defaults to Cubic with
    {!Phi_tcp.Cubic.default_params}. *)

val learn : t -> Context.bucket -> Cc_algo.t -> unit
(** Record the optimal choice found for a bucket (overwrites); bumps the
    generation, invalidating compiled forms. *)

val learned : t -> (Context.bucket * Cc_algo.t) list

val generation : t -> int
(** Bumped by every {!learn}; {!Compiled.is_fresh} checks against it. *)

val choice_for : t -> Context.t -> Cc_algo.t
(** Exact bucket hit; otherwise the nearest learned bucket (L1 bucket
    distance, at most 2 away); otherwise {!heuristic}.  The interpreted
    reference: walks the learned table on every miss.  Hot paths go
    through {!Compiled.choice_for} instead. *)

val heuristic : Context.t -> Cc_algo.t
(** Rule-based Cubic parameters from the paper's findings: low congestion
    admits an aggressive start (large initial window, generous ssthresh);
    high congestion calls for a conservative start; persistent heavy
    congestion with deep queues also calls for a larger beta (sharper
    back-off, the Figure 2c observation).  Returns one of six presets
    computed at module init — no per-call allocation. *)

(** The compiled decision plane: the bucket → choice resolution
    precomputed into a flat dense array keyed by {!Context.bucket_code}.
    Compilation runs the same exact/nearest resolution as {!choice_for}
    for all 64 buckets (the values are physically the learned ones);
    buckets that would fall through to the heuristic stay [None] and
    resolve through the preset-backed heuristic at lookup — so a
    compiled choice is always physically identical to the interpreted
    one.  Immutable and domain-shareable; generation-stamped against the
    source policy, so holders recompile after {!learn}. *)
module Compiled : sig
  type policy := t

  type t

  val compile : policy -> t

  val is_fresh : t -> policy -> bool
  (** [true] iff compiled from exactly this policy (physical equality)
      at its current generation. *)

  val choice_for : t -> Context.t -> Cc_algo.t
  (** One bucketization + one array load (heuristic presets on [None]):
      allocation-free. *)

  val source : t -> policy
  val generation : t -> int
end
