type event = { alarm_min : int; start_min : int; end_min : int }

let detect ?(reference = 0.5) ?(alarm_threshold = 8.0) ~actual ~baseline () =
  if reference < 0. then invalid_arg "Cusum.detect: negative reference";
  if alarm_threshold <= 0. then invalid_arg "Cusum.detect: alarm threshold must be positive";
  let z = Series.robust_z ~actual ~baseline in
  let n = Array.length z in
  let events = ref [] in
  let s = ref 0. in
  let run_start = ref 0 in  (* last minute at which s was 0 *)
  let alarmed = ref None in
  for i = 0 to n - 1 do
    let prev = !s in
    s := Float.max 0. (!s +. ((-.z.(i)) -. reference));
    if Float.equal prev 0. && !s > 0. then run_start := i;
    (match !alarmed with
    | None -> if !s > alarm_threshold then alarmed := Some (i, !run_start)
    | Some (alarm_min, start_min) ->
      if Float.equal !s 0. then begin
        events := { alarm_min; start_min; end_min = i } :: !events;
        alarmed := None
      end)
  done;
  (match !alarmed with
  | Some (alarm_min, start_min) -> events := { alarm_min; start_min; end_min = n } :: !events
  | None -> ());
  List.rev !events

let detection_latency ~injected_start events =
  let candidates =
    List.filter_map
      (fun e -> if e.alarm_min >= injected_start then Some (e.alarm_min - injected_start) else None)
      events
  in
  match candidates with [] -> None | l -> Some (List.fold_left Stdlib.min max_int l)
