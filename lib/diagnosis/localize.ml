module Rs = Phi_workload.Request_stream

type finding = { scope : Rs.scope; deficit_share : float; own_drop : float }

let window_sums series (start_min, end_min) baseline =
  let actual = ref 0. and expected = ref 0. in
  for i = start_min to end_min - 1 do
    if i >= 0 && i < Array.length series then begin
      actual := !actual +. series.(i);
      expected := !expected +. baseline.(i)
    end
  done;
  (!actual, !expected)

let uniques values = List.sort_uniq String.compare values

let candidate_scopes cells =
  let cells_only = List.map fst cells in
  let metros = uniques (List.map (fun (c : Rs.cell) -> c.Rs.metro) cells_only) in
  let isps = uniques (List.map (fun (c : Rs.cell) -> c.Rs.isp) cells_only) in
  let services = uniques (List.map (fun (c : Rs.cell) -> c.Rs.service) cells_only) in
  let pair_scopes =
    List.concat_map
      (fun metro ->
        List.map (fun isp -> { Rs.metro = Some metro; isp = Some isp; service = None }) isps)
      metros
  in
  let single f = List.map f in
  pair_scopes
  @ single (fun m -> { Rs.metro = Some m; isp = None; service = None }) metros
  @ single (fun i -> { Rs.metro = None; isp = Some i; service = None }) isps
  @ single (fun s -> { Rs.metro = None; isp = None; service = Some s }) services

let scope_specificity (s : Rs.scope) =
  let count = function Some _ -> 1 | None -> 0 in
  count s.Rs.metro + count s.Rs.isp + count s.Rs.service

(* Deficit of a scope inside the window, against each cell's own seasonal
   baseline. *)
let evaluate_scope ~cells ~window ~baselines scope =
  let actual = ref 0. and expected = ref 0. in
  List.iter2
    (fun (cell, series) baseline ->
      if Rs.scope_matches scope cell then begin
        let a, e = window_sums series window baseline in
        actual := !actual +. a;
        expected := !expected +. e
      end)
    cells baselines;
  let deficit = Float.max 0. (!expected -. !actual) in
  let own_drop = if !expected > 0. then deficit /. !expected else 0. in
  (deficit, own_drop)

let findings ~cells ~window =
  let baselines = List.map (fun (_, series) -> Series.seasonal_baseline series) cells in
  let global_deficit =
    let total = ref 0. in
    List.iter2
      (fun (_, series) baseline ->
        let a, e = window_sums series window baseline in
        total := !total +. Float.max 0. (e -. a))
      cells baselines;
    !total
  in
  List.map
    (fun scope ->
      let deficit, own_drop = evaluate_scope ~cells ~window ~baselines scope in
      let deficit_share = if global_deficit > 0. then deficit /. global_deficit else 0. in
      { scope; deficit_share; own_drop })
    (candidate_scopes cells)

let rank ~cells ~window =
  findings ~cells ~window
  |> List.sort (fun a b -> Float.compare b.deficit_share a.deficit_share)

let localize ?(explain_threshold = 0.6) ?(drop_threshold = 0.3) ~cells ~window () =
  let explaining =
    List.filter
      (fun f -> f.deficit_share >= explain_threshold && f.own_drop >= drop_threshold)
      (findings ~cells ~window)
  in
  (* Most specific first; ties broken by hardest own drop. *)
  let ordered =
    List.sort
      (fun a b ->
        match Int.compare (scope_specificity b.scope) (scope_specificity a.scope) with
        | 0 -> Float.compare b.own_drop a.own_drop
        | c -> c)
      explaining
  in
  match ordered with [] -> None | best :: _ -> Some best
