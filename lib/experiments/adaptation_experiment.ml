module Adaptation = Phi.Adaptation
module Prng = Phi_util.Prng
module Dist = Phi_util.Dist

type jitter_result = {
  informed_buffer_ms : float;
  cold_buffer_ms : float;
  informed_late_fraction : float;
  cold_late_fraction : float;
  buffer_saving_ms : float;
}

type dupack_result = {
  recommended_threshold : int;
  standard_threshold : int;
  informed_spurious_fraction : float;
  standard_spurious_fraction : float;
}

type result = { jitter : jitter_result; dupack : dupack_result }

(* Path jitter: mostly small, with a lognormal tail (bufferbloat
   spikes). *)
let draw_jitter rng = Dist.lognormal rng ~mu:(log 8.) ~sigma:0.9

(* Reordering depth on a path with parallel forwarding: usually 0, but a
   tail of deep reordering that fools dupthresh 3. *)
let draw_reorder_depth rng =
  if Prng.float rng < 0.9 then 0 else 1 + int_of_float (Dist.pareto rng ~shape:1.3 ~scale:1.5)

let run ?(n_shared = 2000) ?(n_test = 2000) ~seed () =
  let rng = Prng.create ~seed in
  let shared_jitter = Array.init n_shared (fun _ -> draw_jitter rng) in
  let test_jitter = Array.init n_test (fun _ -> draw_jitter rng) in
  let informed_buffer = Adaptation.jitter_buffer_ms ~shared_jitter_ms:shared_jitter () in
  let cold_buffer = Adaptation.cold_start_jitter_buffer_ms in
  let jitter =
    {
      informed_buffer_ms = informed_buffer;
      cold_buffer_ms = cold_buffer;
      informed_late_fraction =
        Adaptation.late_packet_fraction ~jitter_ms:test_jitter ~buffer_ms:informed_buffer;
      cold_late_fraction =
        Adaptation.late_packet_fraction ~jitter_ms:test_jitter ~buffer_ms:cold_buffer;
      buffer_saving_ms = cold_buffer -. informed_buffer;
    }
  in
  let shared_depths = Array.init n_shared (fun _ -> draw_reorder_depth rng) in
  let test_depths = Array.init n_test (fun _ -> draw_reorder_depth rng) in
  let recommended = Adaptation.dupack_threshold ~reorder_depths:shared_depths () in
  let spurious threshold =
    let hits = Array.fold_left (fun acc d -> if d >= threshold then acc + 1 else acc) 0 test_depths in
    float_of_int hits /. float_of_int (Array.length test_depths)
  in
  let dupack =
    {
      recommended_threshold = recommended;
      standard_threshold = 3;
      informed_spurious_fraction = spurious recommended;
      standard_spurious_fraction = spurious 3;
    }
  in
  { jitter; dupack }

let run_many ?jobs ?n_shared ?n_test ~seeds () =
  Phi_runner.Pool.map ?jobs (fun seed -> run ?n_shared ?n_test ~seed ()) seeds
