(** Section 3.2: informed adaptation without cooperation.

    A minority of senders cannot change the congestion state of a FIFO
    network, but they can still set endpoint knobs from each other's
    measurements.  Two quantified examples:

    - {b jitter buffer}: initialize a new stream's buffer from the p95 of
      jitter samples shared by concurrent streams on the same path,
      instead of a conservative cold-start constant — compare late-packet
      rate and added latency;
    - {b dup-ACK threshold}: on paths where other connections report deep
      reordering, raise the fast-retransmit threshold — compare spurious
      fast-retransmit rates. *)

type jitter_result = {
  informed_buffer_ms : float;
  cold_buffer_ms : float;
  informed_late_fraction : float;  (** packets missing playout, informed buffer *)
  cold_late_fraction : float;
  buffer_saving_ms : float;  (** latency saved vs the cold-start buffer *)
}

type dupack_result = {
  recommended_threshold : int;
  standard_threshold : int;
  informed_spurious_fraction : float;
  standard_spurious_fraction : float;
}

type result = { jitter : jitter_result; dupack : dupack_result }

val run : ?n_shared:int -> ?n_test:int -> seed:int -> unit -> result
(** [n_shared] (default 2000) samples are shared by other connections;
    [n_test] (default 2000) fresh samples from the same distributions
    evaluate the choices. *)

val run_many :
  ?jobs:int -> ?n_shared:int -> ?n_test:int -> seeds:int list -> unit -> result list
(** One independent run per seed, fanned across [jobs] domains via
    {!Phi_runner.Pool}; results are in seed order. *)
