module Topology = Phi_net.Topology
module Stats = Phi_util.Stats
module Pool = Phi_runner.Pool
module Cc_algo = Phi.Cc_algo
module Remy_cc = Phi_remy.Remy_cc
module Compiled_table = Phi_remy.Compiled_table

type cell = {
  algorithm : string;
  workload : string;
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
  connections : int;
}

let workloads =
  [ ("low", Scenario.low_utilization); ("high", Scenario.high_utilization) ]

(* One seeded run of one algorithm over one workload.  The window-based
   controllers come straight from the registry's basic builder; Remy
   shares the compiled pretrained table (immutable, so safe across pool
   domains); Remy-Phi follows the practical protocol — a context server
   fed by end-of-connection reports, one utilization lookup when each
   connection starts. *)
let run_one ~remy_table ~remy_phi_table ~seed (config : Scenario.config) algo =
  let config = { config with Scenario.seed } in
  match algo with
  | Cc_algo.Cubic _ | Cc_algo.Reno _ | Cc_algo.Vegas ->
    Scenario.run ~cc_factory:(fun _ () -> Cc_algo.basic_builder ~ctx:Phi.Context.empty algo) config
  | Cc_algo.Remy ->
    Scenario.run ~cc_factory:(fun _ () -> Remy_cc.make ~table:remy_table ~util:`None ()) config
  | Cc_algo.Remy_phi ->
    let table = remy_phi_table in
    let util_feed : Remy_cc.util_feed ref = ref `None in
    let reporter = ref (fun (_ : Phi_tcp.Flow.conn_stats) -> ()) in
    let observe engine (_ : Topology.dumbbell) =
      let server =
        Phi.Context_server.create engine
          ~capacity_bps:config.Scenario.spec.Topology.bottleneck_bw_bps ()
      in
      util_feed :=
        `At_start
          (fun () -> (Phi.Context_server.lookup server ~path:"dumbbell").Phi.Context.utilization);
      reporter := fun stats -> Phi.Context_server.report_stats server ~path:"dumbbell" stats
    in
    Scenario.run ~observe
      ~cc_factory:(fun _ () -> Remy_cc.make ~table ~util:!util_feed ())
      ~on_conn_end:(fun stats -> !reporter stats)
      config

let cell_of ~algorithm ~workload (results : Scenario.result array) =
  let mean f = Stats.mean (Array.map f results) in
  {
    algorithm;
    workload;
    mean_throughput_bps = mean (fun r -> r.Scenario.throughput_bps);
    mean_queueing_delay_s = mean (fun r -> r.Scenario.queueing_delay_s);
    mean_loss_rate = mean (fun r -> r.Scenario.loss_rate);
    mean_power = mean (fun r -> r.Scenario.power);
    connections = Array.fold_left (fun acc r -> acc + r.Scenario.connections) 0 results;
  }

let run ?jobs ?(algorithms = Cc_algo.all) ?remy_table ?remy_phi_table ?duration_s ~seeds () =
  if seeds = [] then invalid_arg "Cc_matrix.run: no seeds";
  if algorithms = [] then invalid_arg "Cc_matrix.run: no algorithms";
  (* Compile once before fanning out: every (workload, seed) cell shares
     the two flat tables. *)
  let remy_table =
    Compiled_table.compile
      (match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy ())
  in
  let remy_phi_table =
    Compiled_table.compile
      (match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ())
  in
  let config_of base =
    match duration_s with
    | Some d -> { base with Scenario.duration_s = d }
    | None -> base
  in
  (* (algorithm, workload)-major, seed-minor: the pool returns results in
     submission order, so the regrouping below is positional. *)
  let groups =
    List.concat_map
      (fun algo -> List.map (fun (wname, cfg) -> (algo, wname, config_of cfg)) workloads)
      algorithms
  in
  let cells =
    List.concat_map (fun (algo, wname, cfg) -> List.map (fun seed -> (algo, wname, cfg, seed)) seeds)
      groups
  in
  let results =
    Pool.map ?jobs
      (fun (algo, _wname, cfg, seed) -> run_one ~remy_table ~remy_phi_table ~seed cfg algo)
      cells
  in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i (algo, wname, _) ->
      cell_of ~algorithm:(Cc_algo.name algo) ~workload:wname (Array.sub arr (i * n_seeds) n_seeds))
    groups

(* {2 The WAN evaluation matrix: algorithm x topology x dynamics} *)

type matrix_cell = {
  m_algorithm : string;
  m_topology : string;
  m_dynamics : string;
  m_aqm : string;
  m_throughput_bps : float;
  m_delay_s : float;
  m_queueing_delay_s : float;
  m_loss_rate : float;
  m_power : float;
  m_jain : float;
  m_p99_fct_s : float;
  m_connections : int;
}

let default_topologies = [ "dumbbell"; "parking_lot"; "wan" ]
let default_dynamics = [ "steady"; "flap"; "incast" ]

(* One seeded run_zoo cell.  The topology and the regime are
   materialized from their names inside the worker — a [Zoo.t] holds a
   mutable graph, so nothing mutable crosses the pool boundary; only
   the two compiled Remy tables (immutable flat arrays) are shared. *)
let run_one_zoo ~remy_table ~remy_phi_table ~aqm ?duration_s ~seed ~topology ~dynamics algo =
  let zoo = Topology.Zoo.by_name topology in
  let dynamics = Dynamics.by_name dynamics in
  let run = Scenario.run_zoo ~aqm ~dynamics ?duration_s ~seed in
  match algo with
  | Cc_algo.Cubic _ | Cc_algo.Reno _ | Cc_algo.Vegas ->
    run ~cc_factory:(fun _ () -> Cc_algo.basic_builder ~ctx:Phi.Context.empty algo) zoo
  | Cc_algo.Remy ->
    run ~cc_factory:(fun _ () -> Remy_cc.make ~table:remy_table ~util:`None ()) zoo
  | Cc_algo.Remy_phi ->
    let table = remy_phi_table in
    let util_feed : Remy_cc.util_feed ref = ref `None in
    let reporter = ref (fun (_ : Phi_tcp.Flow.conn_stats) -> ()) in
    let path = zoo.Topology.Zoo.name in
    let observe engine (_ : Topology.built) =
      let server =
        Phi.Context_server.create engine
          ~capacity_bps:zoo.Topology.Zoo.bottleneck_bw_bps ()
      in
      util_feed :=
        `At_start (fun () -> (Phi.Context_server.lookup server ~path).Phi.Context.utilization);
      reporter := fun stats -> Phi.Context_server.report_stats server ~path stats
    in
    run ~observe
      ~cc_factory:(fun _ () -> Remy_cc.make ~table ~util:!util_feed ())
      ~on_conn_end:(fun stats -> !reporter stats)
      zoo

let matrix_cell_of ~algorithm ~topology ~dynamics ~aqm (results : Scenario.zoo_result array) =
  let mean f = Stats.mean (Array.map f results) in
  {
    m_algorithm = algorithm;
    m_topology = topology;
    m_dynamics = dynamics;
    m_aqm = Scenario.aqm_name aqm;
    m_throughput_bps = mean (fun r -> r.Scenario.z_throughput_bps);
    m_delay_s = mean (fun r -> r.Scenario.z_delay_s);
    m_queueing_delay_s = mean (fun r -> r.Scenario.z_queueing_delay_s);
    m_loss_rate = mean (fun r -> r.Scenario.z_loss_rate);
    m_power = mean (fun r -> r.Scenario.z_power);
    m_jain = mean (fun r -> r.Scenario.z_jain);
    m_p99_fct_s = mean (fun r -> r.Scenario.z_p99_fct_s);
    m_connections = Array.fold_left (fun acc r -> acc + r.Scenario.z_connections) 0 results;
  }

let run_matrix ?jobs ?(algorithms = Cc_algo.all) ?(topologies = default_topologies)
    ?(dynamics = default_dynamics) ?(aqm = Scenario.Drop_tail) ?remy_table ?remy_phi_table
    ?duration_s ~seeds () =
  if seeds = [] then invalid_arg "Cc_matrix.run_matrix: no seeds";
  if algorithms = [] then invalid_arg "Cc_matrix.run_matrix: no algorithms";
  if topologies = [] then invalid_arg "Cc_matrix.run_matrix: no topologies";
  if dynamics = [] then invalid_arg "Cc_matrix.run_matrix: no dynamics";
  (* Validate the names before fanning out, so a typo fails fast
     instead of inside a worker. *)
  List.iter (fun t -> ignore (Topology.Zoo.by_name t)) topologies;
  List.iter (fun d -> ignore (Dynamics.by_name d)) dynamics;
  let remy_table =
    Compiled_table.compile
      (match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy ())
  in
  let remy_phi_table =
    Compiled_table.compile
      (match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ())
  in
  (* (algorithm, topology, dynamics)-major, seed-minor: the pool
     returns results in submission order, so the regrouping below is
     positional — jobs-invariant by construction. *)
  let groups =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun topology -> List.map (fun dyn -> (algo, topology, dyn)) dynamics)
          topologies)
      algorithms
  in
  let cells =
    List.concat_map
      (fun (algo, topology, dyn) -> List.map (fun seed -> (algo, topology, dyn, seed)) seeds)
      groups
  in
  let results =
    Pool.map ?jobs
      (fun (algo, topology, dyn, seed) ->
        run_one_zoo ~remy_table ~remy_phi_table ~aqm ?duration_s ~seed ~topology ~dynamics:dyn
          algo)
      cells
  in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i (algo, topology, dyn) ->
      matrix_cell_of ~algorithm:(Cc_algo.name algo) ~topology ~dynamics:dyn ~aqm
        (Array.sub arr (i * n_seeds) n_seeds))
    groups
