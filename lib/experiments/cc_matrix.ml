module Topology = Phi_net.Topology
module Stats = Phi_util.Stats
module Pool = Phi_runner.Pool
module Cc_algo = Phi.Cc_algo
module Remy_cc = Phi_remy.Remy_cc
module Compiled_table = Phi_remy.Compiled_table

type cell = {
  algorithm : string;
  workload : string;
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
  connections : int;
}

let workloads =
  [ ("low", Scenario.low_utilization); ("high", Scenario.high_utilization) ]

(* One seeded run of one algorithm over one workload.  The window-based
   controllers come straight from the registry's basic builder; Remy
   shares the compiled pretrained table (immutable, so safe across pool
   domains); Remy-Phi follows the practical protocol — a context server
   fed by end-of-connection reports, one utilization lookup when each
   connection starts. *)
let run_one ~remy_table ~remy_phi_table ~seed (config : Scenario.config) algo =
  let config = { config with Scenario.seed } in
  match algo with
  | Cc_algo.Cubic _ | Cc_algo.Reno _ | Cc_algo.Vegas ->
    Scenario.run ~cc_factory:(fun _ () -> Cc_algo.basic_builder ~ctx:Phi.Context.empty algo) config
  | Cc_algo.Remy ->
    Scenario.run ~cc_factory:(fun _ () -> Remy_cc.make ~table:remy_table ~util:`None ()) config
  | Cc_algo.Remy_phi ->
    let table = remy_phi_table in
    let util_feed : Remy_cc.util_feed ref = ref `None in
    let reporter = ref (fun (_ : Phi_tcp.Flow.conn_stats) -> ()) in
    let observe engine (_ : Topology.dumbbell) =
      let server =
        Phi.Context_server.create engine
          ~capacity_bps:config.Scenario.spec.Topology.bottleneck_bw_bps ()
      in
      util_feed :=
        `At_start
          (fun () -> (Phi.Context_server.lookup server ~path:"dumbbell").Phi.Context.utilization);
      reporter := fun stats -> Phi.Context_server.report_stats server ~path:"dumbbell" stats
    in
    Scenario.run ~observe
      ~cc_factory:(fun _ () -> Remy_cc.make ~table ~util:!util_feed ())
      ~on_conn_end:(fun stats -> !reporter stats)
      config

let cell_of ~algorithm ~workload (results : Scenario.result array) =
  let mean f = Stats.mean (Array.map f results) in
  {
    algorithm;
    workload;
    mean_throughput_bps = mean (fun r -> r.Scenario.throughput_bps);
    mean_queueing_delay_s = mean (fun r -> r.Scenario.queueing_delay_s);
    mean_loss_rate = mean (fun r -> r.Scenario.loss_rate);
    mean_power = mean (fun r -> r.Scenario.power);
    connections = Array.fold_left (fun acc r -> acc + r.Scenario.connections) 0 results;
  }

let run ?jobs ?(algorithms = Cc_algo.all) ?remy_table ?remy_phi_table ?duration_s ~seeds () =
  if seeds = [] then invalid_arg "Cc_matrix.run: no seeds";
  if algorithms = [] then invalid_arg "Cc_matrix.run: no algorithms";
  (* Compile once before fanning out: every (workload, seed) cell shares
     the two flat tables. *)
  let remy_table =
    Compiled_table.compile
      (match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy ())
  in
  let remy_phi_table =
    Compiled_table.compile
      (match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ())
  in
  let config_of base =
    match duration_s with
    | Some d -> { base with Scenario.duration_s = d }
    | None -> base
  in
  (* (algorithm, workload)-major, seed-minor: the pool returns results in
     submission order, so the regrouping below is positional. *)
  let groups =
    List.concat_map
      (fun algo -> List.map (fun (wname, cfg) -> (algo, wname, config_of cfg)) workloads)
      algorithms
  in
  let cells =
    List.concat_map (fun (algo, wname, cfg) -> List.map (fun seed -> (algo, wname, cfg, seed)) seeds)
      groups
  in
  let results =
    Pool.map ?jobs
      (fun (algo, _wname, cfg, seed) -> run_one ~remy_table ~remy_phi_table ~seed cfg algo)
      cells
  in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i (algo, wname, _) ->
      cell_of ~algorithm:(Cc_algo.name algo) ~workload:wname (Array.sub arr (i * n_seeds) n_seeds))
    groups
