(** Cross-algorithm matrix: every registered congestion-control algorithm
    over the low- and high-utilization dumbbells.

    The CoCo-Beholder-style harness check for the unified control plane:
    one scenario runner, one sender transport, five algorithms selected
    through the {!Phi.Cc_algo} registry.  Cells fan out one
    [(algorithm, workload, seed)] run per pool job; per-workload rows are
    means over seeds. *)

type cell = {
  algorithm : string;  (** registry name *)
  workload : string;  (** ["low"] or ["high"] *)
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
  connections : int;  (** total completed connections across seeds *)
}

val workloads : (string * Scenario.config) list
(** [("low", Scenario.low_utilization); ("high", Scenario.high_utilization)]. *)

val run :
  ?jobs:int ->
  ?algorithms:Phi.Cc_algo.t list ->
  ?remy_table:Phi_remy.Rule_table.t ->
  ?remy_phi_table:Phi_remy.Rule_table.t ->
  ?duration_s:float ->
  seeds:int list ->
  unit ->
  cell list
(** Cells come back algorithm-major, workload-minor, in registry order
    (default [algorithms]: {!Phi.Cc_algo.all}).  [duration_s] overrides
    both workloads' durations (for quick runs).  Results are identical
    for every [jobs] value. *)

(** {2 The WAN evaluation matrix}

    Algorithm x topology x dynamics, one [Scenario.run_zoo] cell per
    seeded combination.  Topologies and regimes travel as names and
    are materialized from the registries inside each pool worker
    (nothing mutable crosses the pool boundary), so the matrix is
    jobs-invariant. *)

type matrix_cell = {
  m_algorithm : string;  (** registry name *)
  m_topology : string;  (** {!Phi_net.Topology.Zoo.names} entry *)
  m_dynamics : string;  (** {!Dynamics.names} entry *)
  m_aqm : string;  (** {!Scenario.aqm_names} entry *)
  m_throughput_bps : float;  (** Pareto throughput coordinate, mean over seeds *)
  m_delay_s : float;  (** Pareto delay coordinate (base RTT + queueing) *)
  m_queueing_delay_s : float;
  m_loss_rate : float;
  m_power : float;  (** the paper's P_l *)
  m_jain : float;  (** Jain fairness over per-source delivered bytes *)
  m_p99_fct_s : float;  (** 99th-percentile flow completion time *)
  m_connections : int;  (** total completed connections across seeds *)
}

val default_topologies : string list
(** [["dumbbell"; "parking_lot"; "wan"]] — the three structurally
    distinct classes; add ["fat_tree_pod"] for the full zoo. *)

val default_dynamics : string list
(** [["steady"; "flap"; "incast"]] — baseline, link-level adversity,
    workload-level adversity. *)

val run_matrix :
  ?jobs:int ->
  ?algorithms:Phi.Cc_algo.t list ->
  ?topologies:string list ->
  ?dynamics:string list ->
  ?aqm:Scenario.aqm ->
  ?remy_table:Phi_remy.Rule_table.t ->
  ?remy_phi_table:Phi_remy.Rule_table.t ->
  ?duration_s:float ->
  seeds:int list ->
  unit ->
  matrix_cell list
(** Cells come back algorithm-major, then topology, then dynamics, in
    the given list orders; each is a mean over [seeds].  Unknown
    topology or dynamics names raise [Invalid_argument] before any
    work fans out.  Results are identical for every [jobs] value. *)
