(** Cross-algorithm matrix: every registered congestion-control algorithm
    over the low- and high-utilization dumbbells.

    The CoCo-Beholder-style harness check for the unified control plane:
    one scenario runner, one sender transport, five algorithms selected
    through the {!Phi.Cc_algo} registry.  Cells fan out one
    [(algorithm, workload, seed)] run per pool job; per-workload rows are
    means over seeds. *)

type cell = {
  algorithm : string;  (** registry name *)
  workload : string;  (** ["low"] or ["high"] *)
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
  connections : int;  (** total completed connections across seeds *)
}

val workloads : (string * Scenario.config) list
(** [("low", Scenario.low_utilization); ("high", Scenario.high_utilization)]. *)

val run :
  ?jobs:int ->
  ?algorithms:Phi.Cc_algo.t list ->
  ?remy_table:Phi_remy.Rule_table.t ->
  ?remy_phi_table:Phi_remy.Rule_table.t ->
  ?duration_s:float ->
  seeds:int list ->
  unit ->
  cell list
(** Cells come back algorithm-major, workload-minor, in registry order
    (default [algorithms]: {!Phi.Cc_algo.all}).  [duration_s] overrides
    both workloads' durations (for quick runs).  Results are identical
    for every [jobs] value. *)
