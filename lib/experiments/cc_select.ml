module Cc_algo = Phi.Cc_algo
module Remy_cc = Phi_remy.Remy_cc
module Rule_table = Phi_remy.Rule_table

type t = { remy_table : Rule_table.t; remy_phi_table : Rule_table.t }

let create ?remy_table ?remy_phi_table () =
  {
    remy_table = (match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy ());
    remy_phi_table =
      (match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ());
  }

let builder t : Cc_algo.builder =
 fun ~ctx algo ->
  match algo with
  | Cc_algo.Remy -> Remy_cc.make ~table:t.remy_table ~util:`None ()
  | Cc_algo.Remy_phi ->
    (* The utilization signal is the one the Phi lookup already returned:
       same single round trip as every other algorithm. *)
    let u = ctx.Phi.Context.utilization in
    Remy_cc.make ~table:t.remy_phi_table ~util:(`At_start (fun () -> u)) ()
  | Cc_algo.Cubic _ | Cc_algo.Reno _ | Cc_algo.Vegas -> Cc_algo.basic_builder ~ctx algo

let parse_cc s =
  match Cc_algo.of_name (String.lowercase_ascii (String.trim s)) with
  | Some algo -> algo
  | None ->
    invalid_arg
      (Printf.sprintf "unknown congestion-control algorithm %S (registered: %s)" s
         (String.concat ", " Cc_algo.names))
