module Cc_algo = Phi.Cc_algo
module Remy_cc = Phi_remy.Remy_cc
module Compiled_table = Phi_remy.Compiled_table

type t = { remy_table : Compiled_table.t; remy_phi_table : Compiled_table.t }

let create ?remy_table ?remy_phi_table () =
  (* Compile once at registry setup: every connection the builder makes
     shares the two flat tables (immutable, domain-safe). *)
  let compile_or default = function
    | Some table -> Compiled_table.compile table
    | None -> Compiled_table.compile (default ())
  in
  {
    remy_table = compile_or Phi_remy.Pretrained.remy remy_table;
    remy_phi_table = compile_or Phi_remy.Pretrained.remy_phi remy_phi_table;
  }

let builder t : Cc_algo.builder =
 fun ~ctx algo ->
  match algo with
  | Cc_algo.Remy -> Remy_cc.make ~table:t.remy_table ~util:`None ()
  | Cc_algo.Remy_phi ->
    (* The utilization signal is the one the Phi lookup already returned:
       same single round trip as every other algorithm. *)
    let u = ctx.Phi.Context.utilization in
    Remy_cc.make ~table:t.remy_phi_table ~util:(`At_start (fun () -> u)) ()
  | Cc_algo.Cubic _ | Cc_algo.Reno _ | Cc_algo.Vegas -> Cc_algo.basic_builder ~ctx algo

let parse_cc s =
  match Cc_algo.of_name (String.lowercase_ascii (String.trim s)) with
  | Some algo -> algo
  | None ->
    invalid_arg
      (Printf.sprintf "unknown congestion-control algorithm %S (registered: %s)" s
         (String.concat ", " Cc_algo.names))
