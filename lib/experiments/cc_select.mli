(** Registry-backed construction of every algorithm, pretrained tables
    included.

    {!Phi.Cc_algo.basic_builder} covers the window-based controllers but
    cannot build the Remy variants (the core library has no rule tables).
    This module completes the registry: {!builder} serves all five
    algorithms and plugs straight into {!Phi.Phi_client.create}, with
    Remy-Phi consuming the utilization from the context of the client's
    single per-connection lookup. *)

type t

val create : ?remy_table:Phi_remy.Rule_table.t -> ?remy_phi_table:Phi_remy.Rule_table.t -> unit -> t
(** Tables default to {!Phi_remy.Pretrained}; both are compiled
    ({!Phi_remy.Compiled_table}) once here, so every connection shares
    the flat immutable forms. *)

val builder : t -> Phi.Cc_algo.builder
(** Builds any registered algorithm. *)

val parse_cc : string -> Phi.Cc_algo.t
(** Parse a [--cc NAME] argument (case-insensitive, trimmed).  Raises
    [Invalid_argument] with the registered names for unknown input. *)
