module Engine = Phi_sim.Engine
module Link = Phi_net.Link
module Prng = Phi_util.Prng

type t =
  | Steady
  | Link_flap of { period_s : float; down_s : float }
  | Rtt_jitter of { period_s : float; magnitude : float }
  | Incast of { period_s : float; fan_in : int; burst_segments : int }
  | Flash_crowd of { at_frac : float; multiplier : int }

let steady = Steady
let default_flap = Link_flap { period_s = 4.0; down_s = 0.25 }
let default_jitter = Rtt_jitter { period_s = 0.5; magnitude = 0.3 }
let default_incast = Incast { period_s = 3.0; fan_in = 8; burst_segments = 64 }
let default_flash_crowd = Flash_crowd { at_frac = 0.5; multiplier = 3 }

let name = function
  | Steady -> "steady"
  | Link_flap _ -> "flap"
  | Rtt_jitter _ -> "jitter"
  | Incast _ -> "incast"
  | Flash_crowd _ -> "flash_crowd"

let names = [ "steady"; "flap"; "jitter"; "incast"; "flash_crowd" ]

let by_name = function
  | "steady" -> steady
  | "flap" -> default_flap
  | "jitter" -> default_jitter
  | "incast" -> default_incast
  | "flash_crowd" -> default_flash_crowd
  | other -> invalid_arg (Printf.sprintf "Dynamics.by_name: unknown regime %S" other)

let all = [ steady; default_flap; default_jitter; default_incast; default_flash_crowd ]

let at engine ~time f =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Dynamics.at: time must be finite and non-negative";
  ignore (Engine.schedule_at engine ~time f)

let every engine ~start_s ~period_s ~until_s f =
  if not (Float.is_finite period_s) || period_s <= 0. then
    invalid_arg "Dynamics.every: period must be finite and positive";
  if not (Float.is_finite start_s) || start_s < 0. then
    invalid_arg "Dynamics.every: start must be finite and non-negative";
  (* Each tick schedules its successor, so the heap only ever holds one
     pending tick per script. *)
  let rec tick k time =
    if time <= until_s then
      ignore
        (Engine.schedule_at engine ~time (fun () ->
             f k;
             tick (k + 1) (time +. period_s)))
  in
  tick 0 start_s

let install ~engine ~rng ~bottlenecks ~duration_s = function
  | Steady | Incast _ | Flash_crowd _ ->
      (* Workload-level regimes: the scenario runner owns the transport,
         so it interprets these itself (through {!at}/{!every}). *)
      ignore rng
  | Link_flap { period_s; down_s } ->
      if down_s <= 0. || down_s >= period_s then
        invalid_arg "Dynamics.install: flap down time must be within (0, period)";
      if Array.length bottlenecks > 0 then
        every engine ~start_s:period_s ~period_s ~until_s:duration_s (fun k ->
            (* Rotate over the contended links so every island sees an
               outage; the link comes back up [down_s] later. *)
            let link = bottlenecks.(k mod Array.length bottlenecks) in
            Link.set_down link;
            at engine ~time:(Engine.now engine +. down_s) (fun () -> Link.set_up link))
  | Rtt_jitter { period_s; magnitude } ->
      if magnitude < 0. || magnitude >= 1. then
        invalid_arg "Dynamics.install: jitter magnitude must be within [0, 1)";
      let base = Array.map Link.delay_s bottlenecks in
      every engine ~start_s:period_s ~period_s ~until_s:duration_s (fun _ ->
          Array.iteri
            (fun i link ->
              (* Uniform multiplicative jitter around each link's
                 construction-time delay; the seeded rng makes the
                 draw sequence a pure function of the scenario seed. *)
              let u = (2. *. Prng.float rng) -. 1. in
              Link.set_delay_s link (base.(i) *. (1. +. (magnitude *. u))))
            bottlenecks)
