(** Scripted adversarial dynamics for the scenario plane.

    A regime is data: a named description of how the network or the
    workload misbehaves over a run.  {!install} compiles the link-level
    regimes (flaps, RTT jitter) into engine-scheduled events against a
    topology's bottleneck links; the workload-level regimes (incast
    bursts, flash crowds) are interpreted by [Scenario.run_zoo], which
    owns the transport.  Everything is deterministic: events are
    scheduled through the same engine that runs the traffic, and the
    only randomness comes from the seeded [rng] handed to {!install},
    so a (topology, regime, seed) cell replays bit-identically whether
    it runs inline or inside a pool worker. *)

type t =
  | Steady  (** no dynamics — the baseline column of the matrix *)
  | Link_flap of { period_s : float; down_s : float }
      (** every [period_s] a bottleneck link (rotating over them) goes
          administratively down for [down_s] seconds *)
  | Rtt_jitter of { period_s : float; magnitude : float }
      (** every [period_s] each bottleneck's propagation delay is
          re-drawn uniformly within [±magnitude] of its base value *)
  | Incast of { period_s : float; fan_in : int; burst_segments : int }
      (** every [period_s], [fan_in] hosts simultaneously fire a
          [burst_segments]-segment transfer at one sink *)
  | Flash_crowd of { at_frac : float; multiplier : int }
      (** at [at_frac] of the run, the number of active sources jumps
          to [multiplier] times the baseline *)

val steady : t

val default_flap : t
(** 250 ms outage every 4 s. *)

val default_jitter : t
(** ±30% delay re-draw every 500 ms. *)

val default_incast : t
(** 8-way, 64-segment synchronized burst every 3 s. *)

val default_flash_crowd : t
(** Offered load triples at the half-way point. *)

val name : t -> string

val names : string list
(** The registry: ["steady"; "flap"; "jitter"; "incast"; "flash_crowd"]. *)

val by_name : string -> t
(** Default-parameter lookup — how matrix cells materialize a regime
    inside a pool worker from its name alone.  Raises
    [Invalid_argument] on an unknown name. *)

val all : t list

(** {2 Script combinators}

    The primitives every dynamics script is built from.  phi-lint
    treats callbacks passed to these as pool-reachable entry points
    (like [Pool.map] bodies), so a script body that touches shared
    mutable state without a lock is flagged. *)

val at : Phi_sim.Engine.t -> time:float -> (unit -> unit) -> unit
(** Run the callback at the absolute simulation [time]. *)

val every :
  Phi_sim.Engine.t ->
  start_s:float ->
  period_s:float ->
  until_s:float ->
  (int -> unit) ->
  unit
(** Run the callback at [start_s], [start_s + period_s], ... while the
    tick time is [<= until_s], passing the tick index from 0.  Each
    tick schedules the next, so cancellation is simply the engine
    draining at [until_s]. *)

val install :
  engine:Phi_sim.Engine.t ->
  rng:Phi_util.Prng.t ->
  bottlenecks:Phi_net.Link.t array ->
  duration_s:float ->
  t ->
  unit
(** Schedule the link-level regimes ({!Link_flap}, {!Rtt_jitter})
    against the given bottleneck links.  {!Steady} and the
    workload-level regimes are no-ops here.  Raises
    [Invalid_argument] on nonsensical parameters (flap down time
    outside (0, period), jitter magnitude outside [0, 1)). *)
