module Rs = Phi_workload.Request_stream
module Series = Phi_diagnosis.Series
module Anomaly = Phi_diagnosis.Anomaly
module Localize = Phi_diagnosis.Localize
module Prng = Phi_util.Prng

type result = {
  injected : Rs.outage;
  events : Anomaly.event list;
  localization : Localize.finding option;
  affected_series : float array;
  affected_baseline : float array;
  total_series : float array;
}

let default_outage =
  {
    Rs.start_min = Series.minutes_per_day + (15 * 60);  (* day 2, 15:00 *)
    duration_min = 120;
    scope = { Rs.metro = Some "london"; isp = Some "as3320"; service = None };
    severity = 0.95;
  }

let run ?(config = Rs.default_config) ?(outage = default_outage) ~seed () =
  let rng = Prng.create ~seed in
  let cells = Rs.generate rng config ~outages:[ outage ] in
  let total = Rs.total_series cells in
  let baseline = Series.seasonal_baseline total in
  let events = Anomaly.detect ~actual:total ~baseline () in
  let localization =
    match events with
    | [] -> None
    | event :: _ ->
      Localize.localize ~cells ~window:(event.Anomaly.start_min, event.Anomaly.end_min) ()
  in
  let affected_series = Rs.sum_where cells outage.Rs.scope in
  {
    injected = outage;
    events;
    localization;
    affected_series;
    affected_baseline = Series.seasonal_baseline affected_series;
    total_series = total;
  }

let run_many ?jobs ?config ?outage ~seeds () =
  Phi_runner.Pool.map ?jobs (fun seed -> run ?config ?outage ~seed ()) seeds

let correctly_localized result =
  match (result.events, result.localization) with
  | event :: _, Some finding ->
    let inj = result.injected in
    let overlap =
      event.Anomaly.start_min < inj.Rs.start_min + inj.Rs.duration_min
      && event.Anomaly.end_min > inj.Rs.start_min
    in
    let scope = finding.Localize.scope in
    overlap
    && scope.Rs.metro = inj.Rs.scope.Rs.metro
    && scope.Rs.isp = inj.Rs.scope.Rs.isp
  | _ -> false
