(** Figure 5: detecting and localizing an unreachability event.

    A diurnal request stream with an injected two-hour outage confined to
    one ISP in one metro.  The pipeline: seasonal baseline on the global
    series, robust-z anomaly detection, then dimensional drill-down to
    localize the responsible slice. *)

type result = {
  injected : Phi_workload.Request_stream.outage;
  events : Phi_diagnosis.Anomaly.event list;  (** on the global series *)
  localization : Phi_diagnosis.Localize.finding option;  (** for the first event *)
  affected_series : float array;  (** the affected slice's own series *)
  affected_baseline : float array;
  total_series : float array;
}

val default_outage : Phi_workload.Request_stream.outage
(** Two hours in metro "london" on ISP "as3320", 95 % of traffic lost,
    starting mid-afternoon of day 2 — the shape of the paper's Figure 5
    event. *)

val run :
  ?config:Phi_workload.Request_stream.config ->
  ?outage:Phi_workload.Request_stream.outage ->
  seed:int ->
  unit ->
  result

val run_many :
  ?jobs:int ->
  ?config:Phi_workload.Request_stream.config ->
  ?outage:Phi_workload.Request_stream.outage ->
  seeds:int list ->
  unit ->
  result list
(** One independent detection run per seed, fanned across [jobs] domains
    via {!Phi_runner.Pool} (default {!Phi_runner.Pool.default_jobs});
    results are in seed order regardless of [jobs]. *)

val correctly_localized : result -> bool
(** The first detected event overlaps the injected window and the
    localization names exactly the injected (metro, ISP). *)
