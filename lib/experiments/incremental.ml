module Cubic = Phi_tcp.Cubic
module Flow = Phi_tcp.Flow
module Stats = Phi_util.Stats
module Topology = Phi_net.Topology

type group_result = {
  throughput_bps : float;
  queueing_delay_s : float;
  loss_proxy : float;
  power : float;
  connections : int;
}

type result = {
  modified : group_result;
  unmodified : group_result;
  overall : Scenario.result;
}

let group_result ~spec records =
  let bits, on_time, retx, segs =
    List.fold_left
      (fun (bits, on_time, retx, segs) (r : Flow.conn_stats) ->
        ( bits +. float_of_int (r.Flow.bytes * 8),
          on_time +. Flow.duration r,
          retx + r.Flow.retransmitted_segments,
          segs + r.Flow.segments ))
      (0., 0., 0, 0) records
  in
  let throughput_bps = if on_time > 0. then bits /. on_time else 0. in
  let qdelays =
    List.filter_map
      (fun r ->
        let q = Flow.queueing_delay r in
        if Float.is_finite q && q >= 0. then Some q else None)
      records
  in
  let queueing_delay_s = if qdelays = [] then 0. else Stats.mean (Array.of_list qdelays) in
  let loss_proxy = if segs = 0 then 0. else float_of_int retx /. float_of_int segs in
  {
    throughput_bps;
    queueing_delay_s;
    loss_proxy;
    power =
      Scenario.power_of ~spec ~throughput_bps ~loss_rate:loss_proxy ~queueing_delay_s;
    connections = List.length records;
  }

let run ?(fraction_modified = 0.5) ?observe ~params_modified config =
  if fraction_modified < 0. || fraction_modified > 1. then
    invalid_arg "Incremental.run: fraction out of [0, 1]";
  let n = config.Scenario.spec.Topology.n in
  let n_modified =
    int_of_float (Float.round (fraction_modified *. float_of_int n))
  in
  let cc_factory index () =
    if index < n_modified then Cubic.make params_modified else Cubic.make Cubic.default_params
  in
  let overall = Scenario.run ~cc_factory ?observe config in
  let spec = config.Scenario.spec in
  let in_modified (r : Flow.conn_stats) = r.Flow.source_index < n_modified in
  let modified_records, unmodified_records =
    List.partition in_modified overall.Scenario.records
  in
  {
    modified = group_result ~spec modified_records;
    unmodified = group_result ~spec unmodified_records;
    overall;
  }

let average_groups groups =
  let arr f = Stats.mean (Array.of_list (List.map f groups)) in
  {
    throughput_bps = arr (fun g -> g.throughput_bps);
    queueing_delay_s = arr (fun g -> g.queueing_delay_s);
    loss_proxy = arr (fun g -> g.loss_proxy);
    power = arr (fun g -> g.power);
    connections = List.fold_left (fun acc g -> acc + g.connections) 0 groups;
  }

let fraction_sweep ?jobs ~fractions ~params_modified ~seeds config =
  if seeds = [] then invalid_arg "Incremental.fraction_sweep: no seeds";
  let cells =
    List.concat_map (fun f -> List.map (fun seed -> (f, seed)) seeds) fractions
  in
  let results =
    Phi_runner.Pool.map ?jobs
      (fun (fraction, seed) ->
        run ~fraction_modified:fraction ~params_modified { config with Scenario.seed })
      cells
  in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i fraction ->
      let per_seed = Array.to_list (Array.sub arr (i * n_seeds) n_seeds) in
      ( fraction,
        average_groups (List.map (fun r -> r.modified) per_seed),
        average_groups (List.map (fun r -> r.unmodified) per_seed) ))
    fractions
