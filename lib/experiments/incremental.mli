(** Incremental deployment (Section 2.2.3, Figure 4).

    A fraction of the senders ("modified") adopts the parameter setting
    that would be optimal under full cooperation, while the rest
    ("unmodified") keeps the Table 1 defaults.  The question: do the
    modified senders still benefit, and do the unmodified ones suffer? *)

type group_result = {
  throughput_bps : float;  (** aggregate on-time throughput of the group *)
  queueing_delay_s : float;  (** from the group's own RTT samples *)
  loss_proxy : float;  (** the group's retransmitted-segment fraction *)
  power : float;
  connections : int;
}

type result = {
  modified : group_result;
  unmodified : group_result;
  overall : Scenario.result;
}

val run :
  ?fraction_modified:float ->
  ?observe:(Phi_sim.Engine.t -> Phi_net.Topology.dumbbell -> unit) ->
  params_modified:Phi_tcp.Cubic.params ->
  Scenario.config ->
  result
(** Default fraction 0.5 (the paper's half-and-half split).  Sender
    indices below [fraction * n] are modified.  [observe] is forwarded to
    {!Scenario.run} — the hook used by the queue-discipline ablation. *)

val fraction_sweep :
  ?jobs:int ->
  fractions:float list ->
  params_modified:Phi_tcp.Cubic.params ->
  seeds:int list ->
  Scenario.config ->
  (float * group_result * group_result) list
(** The DESIGN.md ablation: benefit as a function of deployment fraction.
    Each entry is [(fraction, modified, unmodified)] with the group
    metrics averaged across [seeds].  (fraction, seed) cells fan out
    across [jobs] domains via {!Phi_runner.Pool} (default
    {!Phi_runner.Pool.default_jobs}); results are deterministic for
    every [jobs] value. *)
