module Engine = Phi_sim.Engine
module Pdes = Phi_sim.Pdes
module Invariant = Phi_sim.Invariant
module Node = Phi_net.Node
module Link = Phi_net.Link
module Boundary_link = Phi_net.Boundary_link
module Packet = Phi_net.Packet
module Flow = Phi_tcp.Flow
module Sender = Phi_tcp.Sender
module Receiver = Phi_tcp.Receiver
module Cubic = Phi_tcp.Cubic
module Prng = Phi_util.Prng

type spec = {
  segments : int;
  local_pairs : int;
  long_flows : int;
  hop_bw_bps : float;
  hop_delay_s : float;
  cut_bw_bps : float;
  cut_delay_s : float;
  access_bw_bps : float;
  access_delay_s : float;
  buffer_pkts : int;
  duration_s : float;
  seed : int;
}

(* 4 x 240 local + 40 long = 1000 senders. *)
let default_spec =
  {
    segments = 4;
    local_pairs = 240;
    long_flows = 40;
    hop_bw_bps = 500e6;
    hop_delay_s = 0.005;
    cut_bw_bps = 1e9;
    cut_delay_s = 0.010;
    access_bw_bps = 1e9;
    access_delay_s = 0.0005;
    buffer_pkts = 600;
    duration_s = 8.;
    seed = 42;
  }

let senders spec = (spec.segments * spec.local_pairs) + spec.long_flows

(* Node id scheme: globally unique so packet headers are unambiguous in
   traces even though each island has its own engine and pool. *)
let long_sender_id i = i
let long_receiver_id i = 1_000_000 + i
let local_sender_id ~segment ~pair = (10_000 * (segment + 1)) + pair
let local_receiver_id ~segment ~pair = (10_000 * (segment + 1)) + 5_000 + pair
let left_router_id segment = 900_000 + (2 * segment)
let right_router_id segment = 900_000 + (2 * segment) + 1

type hop_stat = {
  delivered : int;
  drops : int;
  bytes : int;
  utilization : float;
}

type result = {
  jobs : int;
  islands : int;
  window_s : float;
  wall_s : float;
  events : int;
  events_per_s : float;
  fingerprint : string;
  long_goodput_bps : float;
  local_goodput_bps : float;
  hop_stats : hop_stat array;
  boundary_packets : int;
  retransmitted : int;
}

let fnv_int h v = (h lxor (v land 0xffffffff)) * 0x01000193 land 0xffffffff

(* The multi-bottleneck parking lot, partitioned one island per
   segment.  Each segment holds a bottleneck hop [L_s -> R_s] (with a
   reverse twin for ACKs), [local_pairs] sender/receiver pairs loading
   exactly that hop, and the long flows traverse every segment, crossing
   each cut over a pair of [Boundary_link]s (forward data
   [R_s -> L_s+1], reverse ACKs [L_s+1 -> R_s]) whose 10 ms propagation
   delay is the lookahead that buys the parallel window. *)
let run ?(jobs = 1) ?(spec = default_spec) () =
  if spec.segments < 1 then invalid_arg "Parking_lot.run: need at least one segment";
  if spec.local_pairs < 0 || spec.long_flows < 0 then
    invalid_arg "Parking_lot.run: negative flow counts";
  if jobs < 1 then invalid_arg "Parking_lot.run: jobs must be >= 1";
  let s_count = spec.segments in
  let coordinator = Pdes.create () in
  let islands = Array.init s_count (fun _ -> Pdes.add_island coordinator) in
  let engines = Array.map Pdes.engine islands in
  let pools = Array.map (fun _ -> Packet.create_pool ()) islands in
  (* Routers. *)
  let left =
    Array.init s_count (fun s -> Node.create engines.(s) pools.(s) ~id:(left_router_id s))
  in
  let right =
    Array.init s_count (fun s -> Node.create engines.(s) pools.(s) ~id:(right_router_id s))
  in
  (* Bottleneck hops and their reverse twins. *)
  let hop_link s ~to_ =
    let link =
      Link.create engines.(s) pools.(s) ~bandwidth_bps:spec.hop_bw_bps
        ~delay_s:spec.hop_delay_s ~capacity_pkts:spec.buffer_pkts
    in
    Link.set_receiver link (Node.receive to_);
    link
  in
  let hop_fwd = Array.init s_count (fun s -> hop_link s ~to_:right.(s)) in
  let hop_rev = Array.init s_count (fun s -> hop_link s ~to_:left.(s)) in
  let access s ~to_ =
    let link =
      Link.create engines.(s) pools.(s) ~bandwidth_bps:spec.access_bw_bps
        ~delay_s:spec.access_delay_s ~capacity_pkts:10_000
    in
    Link.set_receiver link (Node.receive to_);
    link
  in
  (* Island cuts: a boundary pair per adjacent segment. *)
  let boundary ~src_s ~dst_s ~to_ =
    let b =
      Boundary_link.create coordinator ~src:islands.(src_s) ~dst:islands.(dst_s)
        ~src_pool:pools.(src_s) ~dst_pool:pools.(dst_s) ~bandwidth_bps:spec.cut_bw_bps
        ~delay_s:spec.cut_delay_s ~capacity_pkts:10_000 ()
    in
    Boundary_link.set_receiver b (Node.receive to_);
    b
  in
  let f_cut = Array.init (s_count - 1) (fun s -> boundary ~src_s:s ~dst_s:(s + 1) ~to_:left.(s + 1)) in
  let r_cut = Array.init (s_count - 1) (fun s -> boundary ~src_s:(s + 1) ~dst_s:s ~to_:right.(s)) in
  (* End hosts.  Every host hangs off its router by a dedicated access
     pair (up for its own traffic, down for deliveries to it). *)
  let local_senders =
    Array.init s_count (fun s ->
        Array.init spec.local_pairs (fun j ->
            let node =
              Node.create engines.(s) pools.(s) ~id:(local_sender_id ~segment:s ~pair:j)
            in
            Node.set_default_route node (access s ~to_:left.(s));
            node))
  in
  let local_receivers =
    Array.init s_count (fun s ->
        Array.init spec.local_pairs (fun j ->
            let node =
              Node.create engines.(s) pools.(s) ~id:(local_receiver_id ~segment:s ~pair:j)
            in
            Node.set_default_route node (access s ~to_:right.(s));
            node))
  in
  let long_senders =
    Array.init spec.long_flows (fun i ->
        let node = Node.create engines.(0) pools.(0) ~id:(long_sender_id i) in
        Node.set_default_route node (access 0 ~to_:left.(0));
        node)
  in
  let long_receivers =
    Array.init spec.long_flows (fun i ->
        let node =
          Node.create engines.(s_count - 1) pools.(s_count - 1) ~id:(long_receiver_id i)
        in
        Node.set_default_route node (access (s_count - 1) ~to_:right.(s_count - 1));
        node)
  in
  (* Routing.  Left router [s]: deliveries to its local senders go down
     their access links; anything for a long sender heads back toward
     segment 0; everything else flows forward over the hop. *)
  for s = 0 to s_count - 1 do
    Array.iteri
      (fun j sender ->
        Node.add_route left.(s)
          ~dst:(local_sender_id ~segment:s ~pair:j)
          (access s ~to_:sender))
      local_senders.(s);
    for i = 0 to spec.long_flows - 1 do
      if s = 0 then
        Node.add_route left.(s) ~dst:(long_sender_id i) (access 0 ~to_:long_senders.(i))
      else
        Node.add_route left.(s) ~dst:(long_sender_id i) (Boundary_link.egress r_cut.(s - 1))
    done;
    Node.set_default_route left.(s) hop_fwd.(s);
    (* Right router [s]: local receivers down, anything for a sender
       back over the reverse hop, long receivers onward (or down at the
       last segment). *)
    Array.iteri
      (fun j receiver ->
        Node.add_route right.(s)
          ~dst:(local_receiver_id ~segment:s ~pair:j)
          (access s ~to_:receiver))
      local_receivers.(s);
    Array.iteri
      (fun j _ ->
        Node.add_route right.(s) ~dst:(local_sender_id ~segment:s ~pair:j) hop_rev.(s))
      local_senders.(s);
    for i = 0 to spec.long_flows - 1 do
      Node.add_route right.(s) ~dst:(long_sender_id i) hop_rev.(s);
      if s = s_count - 1 then
        Node.add_route right.(s) ~dst:(long_receiver_id i)
          (access (s_count - 1) ~to_:long_receivers.(i))
      else Node.add_route right.(s) ~dst:(long_receiver_id i) (Boundary_link.egress f_cut.(s))
    done;
    if s = s_count - 1 then Node.set_default_route right.(s) hop_rev.(s)
    else Node.set_default_route right.(s) (Boundary_link.egress f_cut.(s))
  done;
  (* Transport.  Flow ids are allocated in a fixed construction order
     (all local pairs segment-major, then the long flows), so ids — and
     the Prng draws staggering the starts — are identical whatever the
     worker count. *)
  let flows = Flow.allocator () in
  let rng = Prng.create ~seed:spec.seed in
  let params = Cubic.default_params in
  let start_on engine sender delay =
    ignore (Engine.schedule_after engine ~delay (fun () -> Sender.start sender))
  in
  let local_tcp =
    Array.init s_count (fun s ->
        Array.init spec.local_pairs (fun j ->
            let flow = Flow.fresh flows in
            let _receiver =
              Receiver.create engines.(s) ~node:local_receivers.(s).(j) ~flow
                ~peer:(local_sender_id ~segment:s ~pair:j)
            in
            let sender =
              Sender.create engines.(s) ~node:local_senders.(s).(j) ~flow
                ~dst:(local_receiver_id ~segment:s ~pair:j)
                ~cc:(Cubic.make params) ~total_segments:Sender.persistent_total
                ~source_index:flow ()
            in
            start_on engines.(s) sender (Prng.float rng);
            sender))
  in
  let long_tcp =
    Array.init spec.long_flows (fun i ->
        let flow = Flow.fresh flows in
        let _receiver =
          Receiver.create engines.(s_count - 1) ~node:long_receivers.(i) ~flow
            ~peer:(long_sender_id i)
        in
        let sender =
          Sender.create engines.(0) ~node:long_senders.(i) ~flow ~dst:(long_receiver_id i)
            ~cc:(Cubic.make params) ~total_segments:Sender.persistent_total ~source_index:flow
            ()
        in
        start_on engines.(0) sender (Prng.float rng);
        sender)
  in
  (* Execute. *)
  let jobs_used = if Invariant.enabled () then 1 else Stdlib.min jobs s_count in
  let window_s = Pdes.lookahead_s coordinator in
  let window_s = if Float.is_finite window_s then window_s else spec.duration_s in
  let t0 = Unix.gettimeofday () in
  Pdes.run ~jobs:jobs_used ~window_s ~until:spec.duration_s coordinator;
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  (* Harvest (serial again). *)
  let events = Array.fold_left (fun acc e -> acc + Engine.executed e) 0 engines in
  let hop_stats =
    Array.init s_count (fun s ->
        {
          delivered = Link.packets_delivered hop_fwd.(s) + Link.packets_delivered hop_rev.(s);
          drops = Link.drops hop_fwd.(s) + Link.drops hop_rev.(s);
          bytes = Link.bytes_delivered hop_fwd.(s) + Link.bytes_delivered hop_rev.(s);
          utilization = Float.min 1. (Link.busy_time hop_fwd.(s) /. spec.duration_s);
        })
  in
  let boundary_packets =
    Array.fold_left (fun acc b -> acc + Boundary_link.delivered b) 0 f_cut
    + Array.fold_left (fun acc b -> acc + Boundary_link.delivered b) 0 r_cut
  in
  let goodput stats_list =
    List.fold_left
      (fun acc (st : Flow.conn_stats) ->
        acc +. (float_of_int (st.Flow.segments * Packet.mss * 8) /. spec.duration_s))
      0. stats_list
  in
  let local_stats =
    Array.to_list local_tcp
    |> List.concat_map (fun arr -> Array.to_list (Array.map Sender.stats arr))
  in
  let long_stats = Array.to_list (Array.map Sender.stats long_tcp) in
  let retransmitted =
    List.fold_left
      (fun acc (st : Flow.conn_stats) -> acc + st.Flow.retransmitted_segments)
      0
      (local_stats @ long_stats)
  in
  (* Determinism fingerprint: everything observable about the run that
     must not depend on the worker count — link counters, boundary
     crossings, per-flow progress, and the engines' event counts. *)
  let checksum =
    let h = ref 0x811c9dc5 in
    Array.iter
      (fun (hs : hop_stat) ->
        h := fnv_int !h hs.delivered;
        h := fnv_int !h hs.drops;
        h := fnv_int !h hs.bytes)
      hop_stats;
    Array.iter (fun b -> h := fnv_int !h (Boundary_link.delivered b)) f_cut;
    Array.iter (fun b -> h := fnv_int !h (Boundary_link.delivered b)) r_cut;
    List.iter
      (fun (st : Flow.conn_stats) ->
        h := fnv_int !h st.Flow.segments;
        h := fnv_int !h st.Flow.retransmitted_segments)
      (local_stats @ long_stats);
    h := fnv_int !h events;
    !h
  in
  let fingerprint =
    Printf.sprintf "senders=%d events=%d boundary=%d retx=%d checksum=%08x" (senders spec)
      events boundary_packets retransmitted checksum
  in
  Array.iter (fun arr -> Array.iter Sender.abort arr) local_tcp;
  Array.iter Sender.abort long_tcp;
  {
    jobs = jobs_used;
    islands = s_count;
    window_s;
    wall_s;
    events;
    events_per_s = float_of_int events /. wall_s;
    fingerprint;
    long_goodput_bps = goodput long_stats;
    local_goodput_bps = goodput local_stats;
    hop_stats;
    boundary_packets;
    retransmitted;
  }
