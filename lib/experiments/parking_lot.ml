module Engine = Phi_sim.Engine
module Pdes = Phi_sim.Pdes
module Invariant = Phi_sim.Invariant
module Topology = Phi_net.Topology
module Zoo = Phi_net.Topology.Zoo
module Link = Phi_net.Link
module Boundary_link = Phi_net.Boundary_link
module Packet = Phi_net.Packet
module Flow = Phi_tcp.Flow
module Sender = Phi_tcp.Sender
module Receiver = Phi_tcp.Receiver
module Cubic = Phi_tcp.Cubic
module Prng = Phi_util.Prng

type spec = {
  segments : int;
  local_pairs : int;
  long_flows : int;
  hop_bw_bps : float;
  hop_delay_s : float;
  cut_bw_bps : float;
  cut_delay_s : float;
  access_bw_bps : float;
  access_delay_s : float;
  buffer_pkts : int;
  duration_s : float;
  seed : int;
}

(* 4 x 240 local + 40 long = 1000 senders. *)
let default_spec =
  {
    segments = 4;
    local_pairs = 240;
    long_flows = 40;
    hop_bw_bps = 500e6;
    hop_delay_s = 0.005;
    cut_bw_bps = 1e9;
    cut_delay_s = 0.010;
    access_bw_bps = 1e9;
    access_delay_s = 0.0005;
    buffer_pkts = 600;
    duration_s = 8.;
    seed = 42;
  }

let senders spec = (spec.segments * spec.local_pairs) + spec.long_flows

let zoo_spec spec =
  {
    Zoo.segments = spec.segments;
    local_pairs = spec.local_pairs;
    long_flows = spec.long_flows;
    hop_bw_bps = spec.hop_bw_bps;
    hop_delay_s = spec.hop_delay_s;
    cut_bw_bps = spec.cut_bw_bps;
    cut_delay_s = spec.cut_delay_s;
    pl_access_bw_bps = spec.access_bw_bps;
    pl_access_delay_s = spec.access_delay_s;
    buffer_pkts = spec.buffer_pkts;
  }

type hop_stat = {
  delivered : int;
  drops : int;
  bytes : int;
  utilization : float;
}

type result = {
  jobs : int;
  islands : int;
  window_s : float;
  wall_s : float;
  events : int;
  events_per_s : float;
  fingerprint : string;
  long_goodput_bps : float;
  local_goodput_bps : float;
  hop_stats : hop_stat array;
  boundary_packets : int;
  retransmitted : int;
}

let fnv_int h v = (h lxor (v land 0xffffffff)) * 0x01000193 land 0xffffffff

(* The multi-bottleneck parking lot, partitioned one island per
   segment: [Zoo.parking_lot] describes the graph (a bottleneck hop per
   segment with a reverse twin for ACKs, [local_pairs] host pairs
   loading exactly that hop, long flows traversing every segment) and
   [Topology.build_partitioned] realizes each island cut as a pair of
   [Boundary_link]s whose 10 ms propagation delay is the lookahead that
   buys the parallel window. *)
let run ?(jobs = 1) ?(spec = default_spec) () =
  if spec.segments < 1 then invalid_arg "Parking_lot.run: need at least one segment";
  if spec.local_pairs < 0 || spec.long_flows < 0 then
    invalid_arg "Parking_lot.run: negative flow counts";
  if jobs < 1 then invalid_arg "Parking_lot.run: jobs must be >= 1";
  let s_count = spec.segments in
  let coordinator = Pdes.create () in
  let zoo = Zoo.parking_lot ~spec:(zoo_spec spec) () in
  let built = Topology.build_partitioned coordinator zoo.Zoo.graph in
  (* Transport.  Flow ids are allocated in the zoo's flow-path order
     (all local pairs segment-major, then the long flows — the order
     the ad-hoc builder always used), so ids — and the Prng draws
     staggering the starts — are identical whatever the worker count. *)
  let flows = Flow.allocator () in
  let rng = Prng.create ~seed:spec.seed in
  let params = Cubic.default_params in
  let tcp =
    Array.map
      (fun (fp : Zoo.flow_path) ->
        let flow = Flow.fresh flows in
        let _receiver =
          Receiver.create
            (Topology.node_engine built ~id:fp.Zoo.dst)
            ~node:(Topology.node built ~id:fp.Zoo.dst)
            ~flow ~peer:fp.Zoo.src
        in
        let engine = Topology.node_engine built ~id:fp.Zoo.src in
        let sender =
          Sender.create engine
            ~node:(Topology.node built ~id:fp.Zoo.src)
            ~flow ~dst:fp.Zoo.dst ~cc:(Cubic.make params)
            ~total_segments:Sender.persistent_total ~source_index:flow ()
        in
        ignore
          (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () -> Sender.start sender));
        sender)
      zoo.Zoo.flow_paths
  in
  (* Execute. *)
  let jobs_used = if Invariant.enabled () then 1 else Stdlib.min jobs s_count in
  let window_s = Pdes.lookahead_s coordinator in
  let window_s = if Float.is_finite window_s then window_s else spec.duration_s in
  let t0 = Unix.gettimeofday () in
  Pdes.run ~jobs:jobs_used ~window_s ~until:spec.duration_s coordinator;
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  (* Harvest (serial again). *)
  let events = Topology.total_events built in
  let labeled kind s = Topology.link_of built (Topology.find_link built ~label:(Printf.sprintf "%s:%d" kind s)) in
  let hop_stats =
    Array.init s_count (fun s ->
        let fwd = labeled "hop_fwd" s and rev = labeled "hop_rev" s in
        {
          delivered = Link.packets_delivered fwd + Link.packets_delivered rev;
          drops = Link.drops fwd + Link.drops rev;
          bytes = Link.bytes_delivered fwd + Link.bytes_delivered rev;
          utilization = Float.min 1. (Link.busy_time fwd /. spec.duration_s);
        })
  in
  let cut kind s =
    match Topology.boundary_of built (Topology.find_link built ~label:(Printf.sprintf "%s:%d" kind s)) with
    | Some b -> b
    | None -> assert false (* every cut link crosses islands by construction *)
  in
  let f_cut = Array.init (s_count - 1) (cut "f_cut") in
  let r_cut = Array.init (s_count - 1) (cut "r_cut") in
  let boundary_packets =
    Array.fold_left (fun acc b -> acc + Boundary_link.delivered b) 0 f_cut
    + Array.fold_left (fun acc b -> acc + Boundary_link.delivered b) 0 r_cut
  in
  let goodput stats_list =
    List.fold_left
      (fun acc (st : Flow.conn_stats) ->
        acc +. (float_of_int (st.Flow.segments * Packet.mss * 8) /. spec.duration_s))
      0. stats_list
  in
  let n_local = s_count * spec.local_pairs in
  let local_stats =
    Array.to_list (Array.map Sender.stats (Array.sub tcp 0 n_local))
  in
  let long_stats =
    Array.to_list (Array.map Sender.stats (Array.sub tcp n_local spec.long_flows))
  in
  let retransmitted =
    List.fold_left
      (fun acc (st : Flow.conn_stats) -> acc + st.Flow.retransmitted_segments)
      0
      (local_stats @ long_stats)
  in
  (* Determinism fingerprint: everything observable about the run that
     must not depend on the worker count — link counters, boundary
     crossings, per-flow progress, and the engines' event counts. *)
  let checksum =
    let h = ref 0x811c9dc5 in
    Array.iter
      (fun (hs : hop_stat) ->
        h := fnv_int !h hs.delivered;
        h := fnv_int !h hs.drops;
        h := fnv_int !h hs.bytes)
      hop_stats;
    Array.iter (fun b -> h := fnv_int !h (Boundary_link.delivered b)) f_cut;
    Array.iter (fun b -> h := fnv_int !h (Boundary_link.delivered b)) r_cut;
    List.iter
      (fun (st : Flow.conn_stats) ->
        h := fnv_int !h st.Flow.segments;
        h := fnv_int !h st.Flow.retransmitted_segments)
      (local_stats @ long_stats);
    h := fnv_int !h events;
    !h
  in
  let fingerprint =
    Printf.sprintf "senders=%d events=%d boundary=%d retx=%d checksum=%08x" (senders spec)
      events boundary_packets retransmitted checksum
  in
  Array.iter Sender.abort tcp;
  {
    jobs = jobs_used;
    islands = s_count;
    window_s;
    wall_s;
    events;
    events_per_s = float_of_int events /. wall_s;
    fingerprint;
    long_goodput_bps = goodput long_stats;
    local_goodput_bps = goodput local_stats;
    hop_stats;
    boundary_packets;
    retransmitted;
  }
