(** 1000-sender multi-bottleneck parking lot on the parallel engine.

    The scenario the serial engine could not reach: [segments]
    bottleneck hops in a row, each loaded by its own [local_pairs]
    Cubic pairs, plus [long_flows] Cubic flows traversing every hop.
    Each segment is a [Phi_sim.Pdes] island with its own engine and
    packet pool; adjacent segments are joined by [Phi_net.Boundary_link]
    pairs whose propagation delay ([cut_delay_s]) is the lookahead, so
    the islands advance in parallel windows of that size.

    The run is deterministic in the worker count: {!result.fingerprint}
    folds every link counter, boundary crossing, per-flow progress
    number and the engines' event counts, and must be identical for any
    [jobs] — that equality is asserted by the test suite and gated in
    the bench report's [pdes] section. *)

type spec = {
  segments : int;  (** bottleneck hops = islands (>= 1) *)
  local_pairs : int;  (** sender/receiver pairs per segment *)
  long_flows : int;  (** flows crossing every segment *)
  hop_bw_bps : float;  (** per-segment bottleneck bandwidth *)
  hop_delay_s : float;  (** one-way propagation of each bottleneck hop *)
  cut_bw_bps : float;  (** inter-segment (boundary) link bandwidth *)
  cut_delay_s : float;  (** boundary propagation = lookahead = window *)
  access_bw_bps : float;
  access_delay_s : float;
  buffer_pkts : int;  (** bottleneck queue capacity *)
  duration_s : float;
  seed : int;  (** staggers flow starts over the first second *)
}

val default_spec : spec
(** 4 segments x 240 local pairs + 40 long flows = 1000 senders;
    500 Mb/s hops (5 ms), 1 Gb/s cuts (10 ms lookahead), 8 s. *)

val senders : spec -> int
(** Total transmitting connections ([segments * local_pairs +
    long_flows]). *)

type hop_stat = {
  delivered : int;  (** packets carried by the hop (both directions) *)
  drops : int;
  bytes : int;
  utilization : float;  (** forward-direction serialization time / duration *)
}

type result = {
  jobs : int;  (** worker domains actually used (1 under the sanitizer) *)
  islands : int;
  window_s : float;
  wall_s : float;
  events : int;  (** engine events executed, summed over islands *)
  events_per_s : float;
  fingerprint : string;  (** jobs-invariant digest of the whole run *)
  long_goodput_bps : float;  (** aggregate acked goodput of the long flows *)
  local_goodput_bps : float;
  hop_stats : hop_stat array;  (** one per segment *)
  boundary_packets : int;  (** packets materialized across all cuts *)
  retransmitted : int;  (** total retransmitted segments *)
}

val run : ?jobs:int -> ?spec:spec -> unit -> result
(** Build the partitioned topology and advance it to
    [spec.duration_s] with [jobs] worker domains (clamped to the
    island count; forced serial under [PHI_SANITIZE=1]).  Raises
    [Invalid_argument] on a non-positive segment count or [jobs < 1]. *)
