module History = Phi_predict.History
module Predictor = Phi_predict.Predictor
module Voip = Phi_predict.Voip
module Prng = Phi_util.Prng
module Dist = Phi_util.Dist
module Stats = Phi_util.Stats

type result = {
  prefixes : int;
  training_samples : int;
  test_samples : int;
  hierarchical_mape : float;
  global_mape : float;
  cold_prefixes_served : int;
  example_mos : (string * float) list;
}

(* Latent ground truth for one /24: a throughput level, an RTT and a loss
   rate, correlated within the /16. *)
type truth = { prefix24 : int; thr : float; rtt : float; loss : float }

let build_truths rng ~n_p16 ~p24_per_p16 =
  List.concat
    (List.init n_p16 (fun r ->
         (* Region-level latent performance. *)
         let region_thr = Dist.lognormal rng ~mu:(log 8e6) ~sigma:0.8 in
         let region_rtt = Dist.uniform rng ~lo:0.02 ~hi:0.25 in
         let region_loss = Dist.uniform rng ~lo:0. ~hi:0.03 in
         List.init p24_per_p16 (fun s ->
             {
               prefix24 = (r lsl 8) lor s;
               thr = region_thr *. Dist.lognormal rng ~mu:0. ~sigma:0.3;
               rtt = Float.max 0.005 (region_rtt *. Dist.lognormal rng ~mu:0. ~sigma:0.15);
               loss = Float.max 0. (region_loss *. Dist.lognormal rng ~mu:0. ~sigma:0.3);
             })))

let observe rng (t : truth) =
  {
    History.throughput_bps = t.thr *. Dist.lognormal rng ~mu:0. ~sigma:0.25;
    rtt_s = t.rtt *. Dist.lognormal rng ~mu:0. ~sigma:0.1;
    loss_rate = Float.min 1. (t.loss *. Dist.lognormal rng ~mu:0. ~sigma:0.3);
  }

let run ?(n_p16 = 8) ?(p24_per_p16 = 32) ?(samples_per_p24 = 20) ~seed () =
  let rng = Prng.create ~seed in
  let truths = build_truths rng ~n_p16 ~p24_per_p16 in
  let history = History.create () in
  let training = ref 0 in
  let global_samples = ref [] in
  List.iter
    (fun t ->
      (* Skewed coverage: popular prefixes have plenty of history, a third
         are nearly cold (that is where the hierarchy earns its keep). *)
      let n =
        if Prng.int rng ~bound:3 = 0 then Prng.int rng ~bound:3
        else samples_per_p24 + Prng.int rng ~bound:samples_per_p24
      in
      for _ = 1 to n do
        let sample = observe rng t in
        History.add history ~prefix24:t.prefix24 sample;
        global_samples := sample.History.throughput_bps :: !global_samples;
        incr training
      done)
    truths;
  let global_median =
    match !global_samples with
    | [] -> 0.
    | l -> Stats.median (Array.of_list l)
  in
  let hierarchical_errors = ref [] in
  let global_errors = ref [] in
  let cold = ref 0 in
  let tests = ref 0 in
  List.iter
    (fun t ->
      for _ = 1 to 3 do
        let actual = (observe rng t).History.throughput_bps in
        incr tests;
        (match Predictor.throughput_bps history ~prefix24:t.prefix24 () with
        | Some est ->
          if est.Predictor.level <> `P24 then incr cold;
          hierarchical_errors :=
            (Float.abs (est.Predictor.value -. actual) /. actual) :: !hierarchical_errors
        | None -> ());
        if global_median > 0. then
          global_errors := (Float.abs (global_median -. actual) /. actual) :: !global_errors
      done)
    truths;
  let mape l = match l with [] -> nan | _ -> Stats.median (Array.of_list l) in
  let example_mos =
    [
      ("nearby fibre (30ms, 0% loss)", Voip.mos ~rtt_s:0.03 ~loss_rate:0.);
      ("intercontinental (250ms, 1% loss)", Voip.mos ~rtt_s:0.25 ~loss_rate:0.01);
      ("congested (400ms, 5% loss)", Voip.mos ~rtt_s:0.4 ~loss_rate:0.05);
    ]
  in
  {
    prefixes = List.length truths;
    training_samples = !training;
    test_samples = !tests;
    hierarchical_mape = mape !hierarchical_errors;
    global_mape = mape !global_errors;
    cold_prefixes_served = !cold;
    example_mos;
  }

let run_many ?jobs ?n_p16 ?p24_per_p16 ?samples_per_p24 ~seeds () =
  Phi_runner.Pool.map ?jobs
    (fun seed -> run ?n_p16 ?p24_per_p16 ?samples_per_p24 ~seed ())
    seeds
