(** Section 3.5: performance prediction from aggregate history.

    Synthetic ground truth: each /16 region has a latent performance
    level; its /24s vary around it.  A training stream of transfer
    observations feeds the hierarchical predictor; held-out observations
    score it against the naive single-global-median predictor a host
    without shared history would effectively use. *)

type result = {
  prefixes : int;
  training_samples : int;
  test_samples : int;
  hierarchical_mape : float;
      (** median absolute relative error of the throughput prediction *)
  global_mape : float;  (** the same for the global-median baseline *)
  cold_prefixes_served : int;
      (** test predictions that had to fall back above the /24 level *)
  example_mos : (string * float) list;
      (** illustrative (path label, predicted MOS) pairs *)
}

val run : ?n_p16:int -> ?p24_per_p16:int -> ?samples_per_p24:int -> seed:int -> unit -> result
(** Defaults: 8 /16 regions x 32 /24s, ~20 training samples per /24. *)

val run_many :
  ?jobs:int ->
  ?n_p16:int ->
  ?p24_per_p16:int ->
  ?samples_per_p24:int ->
  seeds:int list ->
  unit ->
  result list
(** One independent run per seed, fanned across [jobs] domains via
    {!Phi_runner.Pool}; results are in seed order. *)
