module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Zoo = Phi_net.Topology.Zoo
module Link = Phi_net.Link
module Flow = Phi_tcp.Flow
module Cubic = Phi_tcp.Cubic
module Prng = Phi_util.Prng
module Stats = Phi_util.Stats

type workload = { mean_on_bytes : float; mean_off_s : float }

type config = {
  spec : Topology.spec;
  workload : workload;
  duration_s : float;
  seed : int;
}

let low_utilization =
  {
    spec = Topology.paper_spec;
    workload = { mean_on_bytes = 500e3; mean_off_s = 2.0 };
    duration_s = 120.;
    seed = 1;
  }

let high_utilization =
  { low_utilization with workload = { mean_on_bytes = 500e3; mean_off_s = 0.3 } }

let table3 =
  {
    low_utilization with
    workload = { mean_on_bytes = 100e3; mean_off_s = 0.5 };
    duration_s = 60.;
  }

type result = {
  throughput_bps : float;
  queueing_delay_s : float;
  loss_rate : float;
  utilization : float;
  power : float;
  connections : int;
  records : Flow.conn_stats list;
}

let power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s =
  Phi.Metric.power_with_loss ~throughput_bps ~loss_rate
    ~delay_s:(spec.Topology.rtt_s +. queueing_delay_s)

(* Aggregate on-time throughput: total bits over total connection-on
   time, per the paper's "throughput = bits transferred / ontime". *)
let aggregate_throughput records =
  let bits, on_time =
    List.fold_left
      (fun (bits, on_time) r ->
        (bits +. float_of_int (r.Flow.bytes * 8), on_time +. Flow.duration r))
      (0., 0.) records
  in
  if on_time <= 0. then 0. else bits /. on_time

let result_of_run ~spec ~duration_s ~bottleneck records =
  let queueing_delay_s =
    let delivered = Link.packets_delivered bottleneck in
    if delivered = 0 then 0. else Link.total_queue_wait bottleneck /. float_of_int delivered
  in
  let loss_rate =
    let offered = Link.packets_offered bottleneck in
    if offered = 0 then 0. else float_of_int (Link.drops bottleneck) /. float_of_int offered
  in
  let throughput_bps = aggregate_throughput records in
  {
    throughput_bps;
    queueing_delay_s;
    loss_rate;
    utilization = Float.min 1. (Link.busy_time bottleneck /. duration_s);
    power = power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s;
    connections = List.length records;
    records;
  }

let default_factory _index () = Cubic.make Cubic.default_params

let run ?(cc_factory = default_factory) ?(on_conn_end = fun _ -> ()) ?(observe = fun _ _ -> ())
    config =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine config.spec in
  observe engine dumbbell;
  let rng = Prng.create ~seed:config.seed in
  let flows = Flow.allocator () in
  let records = ref [] in
  let sources =
    Array.init config.spec.Topology.n (fun i ->
        Phi_tcp.Source.create engine ~rng:(Prng.split rng) ~flows
          ~src_node:dumbbell.Topology.senders.(i)
          ~dst_node:dumbbell.Topology.receivers.(i)
          ~index:i ~cc_factory:(cc_factory i)
          ~on_conn_end:(fun stats ->
            records := stats :: !records;
            on_conn_end stats)
          {
            Phi_tcp.Source.mean_on_bytes = config.workload.mean_on_bytes;
            mean_off_s = config.workload.mean_off_s;
          })
  in
  Array.iter Phi_tcp.Source.start sources;
  Engine.run ~until:config.duration_s engine;
  Array.iter Phi_tcp.Source.abort_current sources;
  result_of_run ~spec:config.spec ~duration_s:config.duration_s
    ~bottleneck:dumbbell.Topology.bottleneck !records

let run_cubic ~params config = run ~cc_factory:(fun _ () -> Cubic.make params) config

let run_persistent ?(params = Cubic.default_params) ~n_flows ~duration_s ~spec ~seed () =
  let spec = { spec with Topology.n = n_flows } in
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine spec in
  let rng = Prng.create ~seed in
  let flows = Flow.allocator () in
  let senders =
    Array.init n_flows (fun i ->
        let flow = Flow.fresh flows in
        let _receiver =
          Phi_tcp.Receiver.create engine
            ~node:dumbbell.Topology.receivers.(i)
            ~flow
            ~peer:(Topology.sender_id dumbbell i)
        in
        let sender =
          Phi_tcp.Sender.create engine
            ~node:dumbbell.Topology.senders.(i)
            ~flow
            ~dst:(Topology.receiver_id dumbbell i)
            ~cc:(Cubic.make params) ~total_segments:Phi_tcp.Sender.persistent_total
            ~source_index:i ()
        in
        sender)
  in
  (* Stagger flow starts over the first second to desynchronize. *)
  Array.iter
    (fun sender ->
      ignore
        (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () ->
             Phi_tcp.Sender.start sender)))
    senders;
  (* Warm-up half, then measure deltas over the second half. *)
  let half = duration_s /. 2. in
  Engine.run ~until:half engine;
  let bottleneck = dumbbell.Topology.bottleneck in
  let window = Link.window_open bottleneck in
  Engine.run ~until:duration_s engine;
  let queueing_delay_s = Link.window_queue_delay_s bottleneck window in
  let loss_rate = Link.window_loss_rate bottleneck window in
  let throughput_bps = Link.window_throughput_bps bottleneck window ~elapsed_s:half in
  let records = Array.to_list (Array.map Phi_tcp.Sender.stats senders) in
  Array.iter Phi_tcp.Sender.abort senders;
  {
    throughput_bps;
    queueing_delay_s;
    loss_rate;
    utilization = Link.window_utilization bottleneck window ~elapsed_s:half;
    power = power_of ~spec ~throughput_bps ~loss_rate ~queueing_delay_s;
    connections = n_flows;
    records;
  }

(* {2 The generalized scenario plane}

   [run_zoo] evaluates topology x workload x dynamics x AQM: any
   {!Zoo} topology realized through the graph builder, the same on/off
   workload as {!run}, one {!Dynamics} regime, and an AQM regime on
   the bottleneck links.  One call is one matrix cell. *)

type aqm = Drop_tail | Red | Red_ecn

let aqm_name = function Drop_tail -> "droptail" | Red -> "red" | Red_ecn -> "red_ecn"
let aqm_names = [ "droptail"; "red"; "red_ecn" ]

let aqm_by_name = function
  | "droptail" -> Drop_tail
  | "red" -> Red
  | "red_ecn" -> Red_ecn
  | other -> invalid_arg (Printf.sprintf "Scenario.aqm_by_name: unknown AQM %S" other)

type zoo_result = {
  z_throughput_bps : float;
  z_queueing_delay_s : float;
  z_delay_s : float;
  z_loss_rate : float;
  z_utilization : float;
  z_power : float;
  z_jain : float;
  z_p99_fct_s : float;
  z_connections : int;
  z_flows : int;
  z_records : Flow.conn_stats list;
}

let default_zoo_workload = { mean_on_bytes = 300e3; mean_off_s = 0.5 }

let run_zoo ?(cc_factory = default_factory) ?(aqm = Drop_tail) ?(dynamics = Dynamics.Steady)
    ?(workload = default_zoo_workload) ?(duration_s = 30.) ?(seed = 1)
    ?(on_conn_end = fun _ -> ()) ?(observe = fun _ _ -> ()) (zoo : Zoo.t) =
  if duration_s <= 0. then invalid_arg "Scenario.run_zoo: duration must be positive";
  let engine = Engine.create () in
  let built = Topology.build engine zoo.Zoo.graph in
  observe engine built;
  let rng = Prng.create ~seed in
  let bottlenecks = Array.map (Topology.link_of built) zoo.Zoo.bottlenecks in
  (match aqm with
  | Drop_tail -> ()
  | Red | Red_ecn ->
      Array.iter
        (fun link ->
          Link.set_discipline link ~rng:(Prng.split rng)
            (Link.Red (Link.default_red ~ecn:(aqm = Red_ecn) ~capacity_pkts:(Link.capacity_pkts link) ())))
        bottlenecks);
  let flows = Flow.allocator () in
  let records = ref [] in
  let n_flows = Array.length zoo.Zoo.flow_paths in
  let mk_source ~index (fp : Zoo.flow_path) =
    Phi_tcp.Source.create engine ~rng:(Prng.split rng) ~flows
      ~src_node:(Topology.node built ~id:fp.Zoo.src)
      ~dst_node:(Topology.node built ~id:fp.Zoo.dst)
      ~index ~cc_factory:(cc_factory index)
      ~on_conn_end:(fun stats ->
        records := stats :: !records;
        on_conn_end stats)
      { Phi_tcp.Source.mean_on_bytes = workload.mean_on_bytes; mean_off_s = workload.mean_off_s }
  in
  let primaries = Array.mapi (fun i fp -> mk_source ~index:i fp) zoo.Zoo.flow_paths in
  (* Workload-level dynamics own transport, so they are interpreted
     here; everything is constructed up-front and only *started* by the
     scripted events, keeping the rng draw order a pure function of the
     cell parameters. *)
  let extras =
    match dynamics with
    | Dynamics.Flash_crowd { at_frac; multiplier } when multiplier > 1 && n_flows > 0 ->
        if at_frac < 0. || at_frac >= 1. then
          invalid_arg "Scenario.run_zoo: flash crowd at_frac must be within [0, 1)";
        let xs =
          Array.init
            ((multiplier - 1) * n_flows)
            (fun e -> mk_source ~index:(n_flows + e) zoo.Zoo.flow_paths.(e mod n_flows))
        in
        Dynamics.at engine ~time:(at_frac *. duration_s) (fun () ->
            Array.iter Phi_tcp.Source.start xs);
        xs
    | _ -> [||]
  in
  (match dynamics with
  | Dynamics.Incast { period_s; fan_in; burst_segments }
    when Array.length zoo.Zoo.incast_sources > 0 && fan_in > 0 && burst_segments > 0 ->
      if period_s <= 0. then invalid_arg "Scenario.run_zoo: incast period must be positive";
      let srcs = zoo.Zoo.incast_sources in
      let fan = Stdlib.min fan_in (Array.length srcs) in
      let sink_node = Topology.node built ~id:zoo.Zoo.incast_sink in
      let k = ref 1 in
      while float_of_int !k *. period_s < duration_s do
        let time = float_of_int !k *. period_s in
        let burst =
          Array.init fan (fun j ->
              (* Rotate the fan over the eligible sources so repeated
                 bursts stress different access paths. *)
              let src_id = srcs.((!k - 1 + j) mod Array.length srcs) in
              let flow = Flow.fresh flows in
              let receiver = Phi_tcp.Receiver.create engine ~node:sink_node ~flow ~peer:src_id in
              Phi_tcp.Sender.create engine
                ~node:(Topology.node built ~id:src_id)
                ~flow ~dst:zoo.Zoo.incast_sink
                ~cc:(cc_factory (n_flows + j) ())
                ~total_segments:burst_segments
                ~on_complete:(fun _ -> Phi_tcp.Receiver.close receiver)
                ())
        in
        Dynamics.at engine ~time (fun () -> Array.iter Phi_tcp.Sender.start burst);
        incr k
      done
  | _ -> ());
  Dynamics.install ~engine ~rng:(Prng.split rng) ~bottlenecks ~duration_s dynamics;
  Array.iter Phi_tcp.Source.start primaries;
  (* Warm-up half, then measure link deltas over the second half;
     connection records (feeding fairness and FCT) span the whole run. *)
  let half = duration_s /. 2. in
  Engine.run ~until:half engine;
  let windows = Array.map Link.window_open bottlenecks in
  Engine.run ~until:duration_s engine;
  Array.iter Phi_tcp.Source.abort_current primaries;
  Array.iter Phi_tcp.Source.abort_current extras;
  let delivered = ref 0 and offered = ref 0 and dropped = ref 0 in
  let wait_s = ref 0. and util = ref 0. in
  Array.iteri
    (fun i link ->
      let w = windows.(i) in
      let d = Link.window_delivered link w in
      delivered := !delivered + d;
      offered := !offered + Link.window_offered link w;
      dropped := !dropped + Link.window_drops link w;
      wait_s := !wait_s +. (Link.window_queue_delay_s link w *. float_of_int d);
      util := !util +. Link.window_utilization link w ~elapsed_s:half)
    bottlenecks;
  let queueing_delay_s = if !delivered = 0 then 0. else !wait_s /. float_of_int !delivered in
  let loss_rate =
    if !offered = 0 then 0. else float_of_int !dropped /. float_of_int !offered
  in
  let utilization = !util /. float_of_int (Stdlib.max 1 (Array.length bottlenecks)) in
  let records = !records in
  let throughput_bps = aggregate_throughput records in
  let base_rtt_s =
    if n_flows = 0 then 0.
    else
      Array.fold_left (fun acc fp -> acc +. fp.Zoo.rtt_s) 0. zoo.Zoo.flow_paths
      /. float_of_int n_flows
  in
  let delay_s = base_rtt_s +. queueing_delay_s in
  let n_sources = n_flows + Array.length extras in
  let jain =
    if n_sources = 0 then 1.
    else begin
      let bytes = Array.make n_sources 0. in
      List.iter
        (fun r ->
          let i = r.Flow.source_index in
          if i >= 0 && i < n_sources then bytes.(i) <- bytes.(i) +. float_of_int r.Flow.bytes)
        records;
      Stats.jain bytes
    end
  in
  let p99_fct_s =
    match records with
    | [] -> 0.
    | _ -> Stats.percentile (Array.of_list (List.map Flow.duration records)) ~p:99.
  in
  {
    z_throughput_bps = throughput_bps;
    z_queueing_delay_s = queueing_delay_s;
    z_delay_s = delay_s;
    z_loss_rate = loss_rate;
    z_utilization = utilization;
    z_power = Phi.Metric.power_with_loss ~throughput_bps ~loss_rate ~delay_s;
    z_jain = jain;
    z_p99_fct_s = p99_fct_s;
    z_connections = List.length records;
    z_flows = n_flows;
    z_records = records;
  }
