(** Shared dumbbell scenario runner for the congestion-control
    experiments (Sections 2.2.1–2.2.4).

    One run = one seeded simulation of [n] on/off senders over the Figure
    1 dumbbell, yielding the aggregate measurements every figure and table
    is built from. *)

type workload = {
  mean_on_bytes : float;
  mean_off_s : float;
}

type config = {
  spec : Phi_net.Topology.spec;
  workload : workload;
  duration_s : float;
  seed : int;
}

val low_utilization : config
(** Figure 2a's setting: 8 senders, 500 KB mean transfers, 2 s mean idle
    (~50–60 % bottleneck utilization). *)

val high_utilization : config
(** Figure 2b's setting: same transfers, 0.3 s mean idle (~85–95 %). *)

val table3 : config
(** Table 3's setting: 100 KB mean transfers, 0.5 s mean idle. *)

type result = {
  throughput_bps : float;
      (** aggregate on-time throughput: total bits over total "on" time *)
  queueing_delay_s : float;  (** mean per-packet wait in the bottleneck queue *)
  loss_rate : float;  (** bottleneck drops / packets offered *)
  utilization : float;  (** bottleneck busy fraction over the run *)
  power : float;  (** the paper's P_l, with delay = base RTT + queueing delay *)
  connections : int;
  records : Phi_tcp.Flow.conn_stats list;
}

val power_of : spec:Phi_net.Topology.spec -> throughput_bps:float -> loss_rate:float -> queueing_delay_s:float -> float
(** The P_l formula used everywhere: throughput (Mbps) times delivery rate
    over (base RTT + queueing delay). *)

val run :
  ?cc_factory:(int -> unit -> Phi_tcp.Cc.t) ->
  ?on_conn_end:(Phi_tcp.Flow.conn_stats -> unit) ->
  ?observe:(Phi_sim.Engine.t -> Phi_net.Topology.dumbbell -> unit) ->
  config ->
  result
(** Run the scenario.  [cc_factory index] builds the controller for each
    new connection of sender [index] (default: Cubic with default
    parameters).  [observe] runs right after topology construction — the
    hook for attaching monitors or context servers. *)

val run_cubic : params:Phi_tcp.Cubic.params -> config -> result
(** All senders use the same fixed Cubic parameters (the paper's
    simplified setting of Section 2.2.1). *)

val run_persistent :
  ?params:Phi_tcp.Cubic.params ->
  n_flows:int ->
  duration_s:float ->
  spec:Phi_net.Topology.spec ->
  seed:int ->
  unit ->
  result
(** Figure 2c's setting: [n_flows] long-running Cubic connections
    (one per sender/receiver pair, [spec.n] forced to [n_flows]),
    measured over the second half of the run to skip the start-up
    transient.  Throughput is the aggregate delivery rate. *)

(** {2 The generalized scenario plane}

    [run_zoo] evaluates topology x workload x dynamics x AQM: one call
    is one cell of the WAN evaluation matrix.  Cells are pure functions
    of their parameters (seeded rng, engine-scheduled dynamics), so
    fanning them over a worker pool is deterministic. *)

type aqm = Drop_tail | Red | Red_ecn
(** Queue regime applied to the topology's bottleneck links:
    FIFO drop-tail (the paper's setting), RED, or RED with
    ECN marking. *)

val aqm_name : aqm -> string

val aqm_names : string list
(** The registry: ["droptail"; "red"; "red_ecn"]. *)

val aqm_by_name : string -> aqm
(** Raises [Invalid_argument] on an unknown name. *)

type zoo_result = {
  z_throughput_bps : float;
      (** aggregate on-time throughput over the whole run (the Pareto
          throughput coordinate) *)
  z_queueing_delay_s : float;
      (** delivery-weighted mean queue wait across the bottleneck
          links, second-half window *)
  z_delay_s : float;
      (** mean base path RTT + queueing delay (the Pareto delay
          coordinate) *)
  z_loss_rate : float;  (** bottleneck drops / offered, second-half window *)
  z_utilization : float;  (** mean bottleneck busy fraction, second-half window *)
  z_power : float;  (** the paper's P_l at [z_delay_s] *)
  z_jain : float;  (** Jain fairness over per-source delivered bytes *)
  z_p99_fct_s : float;
      (** 99th-percentile flow completion time over finished
          connections (0 when none finished) *)
  z_connections : int;  (** connections that completed during the run *)
  z_flows : int;  (** primary flow paths in the topology *)
  z_records : Phi_tcp.Flow.conn_stats list;
}

val default_zoo_workload : workload
(** 300 KB mean transfers, 0.5 s mean idle — busy enough that every
    zoo bottleneck sees contention within a 30 s cell. *)

val run_zoo :
  ?cc_factory:(int -> unit -> Phi_tcp.Cc.t) ->
  ?aqm:aqm ->
  ?dynamics:Dynamics.t ->
  ?workload:workload ->
  ?duration_s:float ->
  ?seed:int ->
  ?on_conn_end:(Phi_tcp.Flow.conn_stats -> unit) ->
  ?observe:(Phi_sim.Engine.t -> Phi_net.Topology.built -> unit) ->
  Phi_net.Topology.Zoo.t ->
  zoo_result
(** Run one matrix cell (defaults: drop-tail, steady dynamics,
    {!default_zoo_workload}, 30 s, seed 1).  The topology is realized
    serially through [Topology.build]; link-level dynamics are
    installed via [Dynamics.install] on the zoo's bottleneck links;
    incast bursts converge on the zoo's [incast_sink] from its
    [incast_sources]; flash crowds start [(multiplier - 1)] extra
    sources per flow path at the scripted instant.  All transport is
    constructed before the run starts, so the rng draw order — and
    hence the cell — is a pure function of the parameters.
    [observe] runs right after topology realization (the hook for
    attaching context servers); [on_conn_end] fires for every
    completed primary or flash-crowd connection. *)
