module Cloud_trace = Phi_workload.Cloud_trace
module Sampler = Phi_ipfix.Sampler
module Sharing = Phi_ipfix.Sharing
module Prng = Phi_util.Prng

type result = {
  total_flows : int;
  sampled_flows : int;
  slices : int;
  ccdf : (int * float) list;
}

let paper_points = [ (5, 0.50); (100, 0.12) ]

let run ?(config = Cloud_trace.default_config) ?(rate = Sampler.default_rate) ~seed () =
  let rng = Prng.create ~seed in
  let flows = Cloud_trace.generate rng config in
  let records = Sampler.sample_flows rng ~rate flows in
  let stats = Sharing.analyze records in
  {
    total_flows = List.length flows;
    sampled_flows = Sharing.flows_observed stats;
    slices = Sharing.slices stats;
    ccdf = Sharing.ccdf stats ~thresholds:[ 1; 5; 10; 50; 100 ];
  }

let run_many ?jobs ?config ?rate ~seeds () =
  Phi_runner.Pool.map ?jobs (fun seed -> run ?config ?rate ~seed ()) seeds
