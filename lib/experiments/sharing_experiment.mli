(** Section 2.1: the opportunity for sharing.

    Generate a synthetic cloud-egress trace, run it through 1-in-4096
    IPFIX sampling, aggregate per (destination /24, minute) and measure
    how many other flows a typical flow shares its WAN path with.  The
    paper reports 50 % of flows sharing with >= 5 others and 12 % with
    >= 100, *despite* the aggressive sub-sampling. *)

type result = {
  total_flows : int;  (** flows in the underlying trace *)
  sampled_flows : int;  (** flows observed after sampling *)
  slices : int;
  ccdf : (int * float) list;  (** (k, fraction sharing with >= k others) *)
}

val paper_points : (int * float) list
(** [(5, 0.50); (100, 0.12)]. *)

val run : ?config:Phi_workload.Cloud_trace.config -> ?rate:int -> seed:int -> unit -> result

val run_many :
  ?jobs:int ->
  ?config:Phi_workload.Cloud_trace.config ->
  ?rate:int ->
  seeds:int list ->
  unit ->
  result list
(** One independent trace analysis per seed, fanned across [jobs]
    domains via {!Phi_runner.Pool}; results are in seed order. *)
