module Engine = Phi_sim.Engine
module Pool = Phi_runner.Pool
module Stats = Phi_util.Stats
module Prng = Phi_util.Prng
module Cloud_trace = Phi_workload.Cloud_trace
module Context_server = Phi.Context_server
module Context_wire = Phi.Context_wire
module Context = Phi.Context
module Policy = Phi.Policy
module Cc_algo = Phi.Cc_algo

type config = {
  n_flows : int;
  seed : int;
  cells : int;
  shards_per_cell : int;
  epoch_s : float;
  window_s : float;
  ttl_epochs : int;
  max_paths_per_shard : int;
}

let default_config =
  {
    n_flows = 1_000_000;
    seed = 42;
    cells = 8;
    shards_per_cell = 8;
    epoch_s = 1.;
    window_s = 10.;
    ttl_epochs = 120;
    max_paths_per_shard = 4096;
  }

type result = {
  flows : int;
  lookups : int;
  reports : int;
  resident_paths : int;
  evictions : int;
  flushes : int;
  checksum : int;
  jain_index : float;
  choice_counts : (string * int) list;
  fingerprint : string;
  elapsed_s : float;
  lookups_per_s : float;
  reports_per_s : float;
  p50_lookup_s : float;
  p99_lookup_s : float;
}

(* {2 The fleet policy}

   Every lookup response closes the client-side loop: decode the
   context, ask the (compiled) policy which algorithm this connection
   should run.  The policy is a deterministic learned table covering all
   five registered algorithms, so the swarm exercises both the
   flat-array hits and the heuristic fallback. *)

let swarm_policy () =
  let policy = Policy.create () in
  let bucket u n q = { Context.u_bucket = u; n_bucket = n; q_bucket = q } in
  List.iter
    (fun (b, choice) -> Policy.learn policy b choice)
    [
      (bucket 0 0 0, Cc_algo.Remy);
      (bucket 0 1 0, Cc_algo.Remy_phi);
      (bucket 1 2 1, Cc_algo.Vegas);
      (bucket 2 3 1, Cc_algo.Reno 1.);
      (bucket 3 3 2, Cc_algo.Cubic Phi_tcp.Cubic.default_params);
    ];
  policy

(* Fixed tally slots, one per registered algorithm. *)
let algo_slot = function
  | Cc_algo.Cubic _ -> 0
  | Cc_algo.Reno _ -> 1
  | Cc_algo.Vegas -> 2
  | Cc_algo.Remy -> 3
  | Cc_algo.Remy_phi -> 4

let slots = 5

let slot_name = function
  | 0 -> "cubic"
  | 1 -> "reno"
  | 2 -> "vegas"
  | 3 -> "remy"
  | _ -> "remy-phi"

(* The same FNV-1a the context server uses for shard placement.  The
   cell index takes the hash's {e high} bits: the server takes it mod
   the shard count, and using the same low bits for both would send
   every path of a cell to a single shard. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xffffffff) s;
  !h

(* One pre-encoded wire message, stamped with its firing time and a
   global sequence number (the deterministic tie-break for messages
   landing in the same instant). *)
type op = { time : float; seq : int; wire : string }

(* {2 Workload generation}

   The million flows come from the Section 2.1 trace generator: Zipf
   destination subnets, Pareto sizes, Poisson arrivals.  Each flow is
   the paper's two-message protocol — a lookup when it starts, a report
   when it ends — pre-encoded into wire form and binned to one of
   [cells] independent server groups by path hash, so the execution
   phase is pure decode/serve/encode. *)

let generate config =
  let buckets = Array.make config.cells [] in
  let rng = Prng.create ~seed:config.seed in
  let trace =
    {
      Cloud_trace.default_config with
      Cloud_trace.flows_per_minute = 120_000.;
      (* Over-provision the horizon, then cut at exactly [n_flows]: a
         Poisson draw can come up short of its mean, never by 30 %. *)
      Cloud_trace.horizon_minutes =
        1 + int_of_float (Float.ceil (1.3 *. float_of_int config.n_flows /. 120_000.));
    }
  in
  let emitted = ref 0 in
  let exception Enough in
  (try
     Cloud_trace.iter rng trace (fun flow ->
         if !emitted >= config.n_flows then raise Enough;
         let i = !emitted in
         incr emitted;
         let path = "subnet-" ^ string_of_int (Cloud_trace.dst_subnet flow) in
         let cell = fnv1a path lsr 13 mod config.cells in
         (* Three quarters of the fleet tolerates two epochs of
            staleness; the rest demands a fresh answer, keeping both
            lookup paths hot. *)
         let max_staleness = if i land 3 = 0 then 0 else 2 in
         let lookup =
           Context_wire.request_to_string (Context_wire.Lookup { path; max_staleness })
         in
         let report =
           Context_wire.request_to_string
             (Context_wire.Report
                {
                  path;
                  bytes = flow.Cloud_trace.bytes;
                  duration_s = flow.Cloud_trace.duration_s;
                  min_rtt = 0.02;
                  mean_rtt = 0.02 +. (float_of_int (i land 15) *. 1e-4);
                  retransmitted = (if i mod 50 = 0 then 1 else 0);
                  segments = flow.Cloud_trace.packets;
                })
         in
         buckets.(cell) <-
           { time = flow.Cloud_trace.start_s; seq = 2 * i; wire = lookup }
           :: {
                time = flow.Cloud_trace.start_s +. flow.Cloud_trace.duration_s;
                seq = (2 * i) + 1;
                wire = report;
              }
           :: buckets.(cell))
   with Enough -> ());
  if !emitted < config.n_flows then
    invalid_arg "Swarm.run: trace horizon too short for the requested flow count";
  buckets

(* {2 Cell execution} *)

type cell_out = {
  c_lookups : int;
  c_reports : int;
  c_checksum : int;
  c_shard_lookups : int array;
  c_resident : int;
  c_evictions : int;
  c_flushes : int;
  c_choices : int array;  (* per-algorithm policy-choice tally *)
  c_lat : floatarray;  (* per-lookup service latencies, seconds *)
  c_lat_n : int;
}

(* Fold a response's wire bytes into a cell's FNV checksum: the
   determinism fingerprint covers every byte the swarm's clients would
   have seen. *)
let checksum_add acc wire =
  let h = ref acc in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xffffffff) wire;
  !h

let run_cell config policy ops =
  let ops = Array.of_list ops in
  Array.sort
    (fun a b ->
      match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c)
    ops;
  let engine = Engine.create () in
  let server =
    Context_server.create engine ~capacity_bps:1e9 ~window_s:config.window_s
      ~epoch_s:config.epoch_s ~shards:config.shards_per_cell
      ~max_paths_per_shard:config.max_paths_per_shard ~ttl_epochs:config.ttl_epochs ()
  in
  let lookups = ref 0 and reports = ref 0 and checksum = ref 0x811c9dc5 in
  let choices = Array.make slots 0 in
  let lat = Float.Array.make (Array.length ops) 0. in
  let lat_n = ref 0 in
  Array.iter
    (fun op ->
      Engine.run ~until:op.time engine;
      match Context_wire.decode_request op.wire with
      | Error e -> invalid_arg ("Swarm.run: corrupt pre-encoded request: " ^ e)
      | Ok req ->
        let t0 = Unix.gettimeofday () in
        let resp = Context_server.handle server req in
        let t1 = Unix.gettimeofday () in
        let resp_wire = Context_wire.response_to_string resp in
        (* The client half of the protocol: decode the response and, for
           lookups, run the decoded context through the compiled policy —
           the same algorithm choice a real connection setup would make. *)
        (match Context_wire.decode_response resp_wire with
        | Ok (Context_wire.Context_of { ctx; epoch = _ }) ->
          let slot = algo_slot (Policy.Compiled.choice_for policy ctx) in
          choices.(slot) <- choices.(slot) + 1
        | Ok (Context_wire.Accepted _) -> ()
        | Error e -> invalid_arg ("Swarm.run: response failed to round-trip: " ^ e));
        checksum := checksum_add !checksum resp_wire;
        (match req with
        | Context_wire.Lookup _ ->
          incr lookups;
          Float.Array.set lat !lat_n (t1 -. t0);
          incr lat_n
        | Context_wire.Report _ -> incr reports))
    ops;
  (* Quiesce so the final residency/eviction numbers reflect every
     report, not an open batch. *)
  Context_server.flush server;
  let stats = Context_server.shard_stats server in
  {
    c_lookups = !lookups;
    c_reports = !reports;
    c_checksum = !checksum;
    c_shard_lookups = Array.map (fun s -> s.Context_server.lookups) stats;
    c_resident = Context_server.resident_paths server;
    c_evictions = Context_server.eviction_count server;
    c_flushes = Context_server.flush_count server;
    c_choices = choices;
    c_lat = lat;
    c_lat_n = !lat_n;
  }

let run ?jobs ?(config = default_config) () =
  if config.n_flows < 1 then invalid_arg "Swarm.run: need at least one flow";
  if config.cells < 1 then invalid_arg "Swarm.run: need at least one cell";
  let buckets = generate config in
  (* Compiled once; immutable, so all cells share it across domains. *)
  let policy = Policy.Compiled.compile (swarm_policy ()) in
  let t0 = Unix.gettimeofday () in
  let outs = Pool.map ?jobs (run_cell config policy) (Array.to_list buckets) in
  let elapsed_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outs in
  let lookups = sum (fun o -> o.c_lookups) and reports = sum (fun o -> o.c_reports) in
  let checksum =
    List.fold_left (fun acc o -> (acc * 0x01000193 lxor o.c_checksum) land 0xffffffff)
      0x811c9dc5 outs
  in
  let shard_lookups = Array.concat (List.map (fun o -> o.c_shard_lookups) outs) in
  (* Jain over per-shard lookup loads: 1 is a perfectly balanced hash,
     1/n is every lookup on one shard. *)
  let jain_index = Stats.jain (Array.map float_of_int shard_lookups) in
  let resident_paths = sum (fun o -> o.c_resident) in
  let evictions = sum (fun o -> o.c_evictions) in
  let flushes = sum (fun o -> o.c_flushes) in
  let latencies =
    let n = sum (fun o -> o.c_lat_n) in
    let arr = Array.make (Stdlib.max 1 n) 0. in
    let k = ref 0 in
    List.iter
      (fun o ->
        for i = 0 to o.c_lat_n - 1 do
          arr.(!k) <- Float.Array.get o.c_lat i;
          incr k
        done)
      outs;
    arr
  in
  let choice_totals =
    let totals = Array.make slots 0 in
    List.iter (fun o -> Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) o.c_choices) outs;
    totals
  in
  let choice_counts =
    List.init slots (fun i -> (slot_name i, choice_totals.(i)))
  in
  let fingerprint =
    Printf.sprintf
      "flows=%d lookups=%d reports=%d checksum=%08x resident=%d evicted=%d jain=%.6f choices=%s"
      config.n_flows lookups reports checksum resident_paths evictions jain_index
      (String.concat ","
         (List.map (fun (name, count) -> Printf.sprintf "%s:%d" name count) choice_counts))
  in
  {
    flows = config.n_flows;
    lookups;
    reports;
    resident_paths;
    evictions;
    flushes;
    checksum;
    jain_index;
    choice_counts;
    fingerprint;
    elapsed_s;
    lookups_per_s = float_of_int lookups /. elapsed_s;
    reports_per_s = float_of_int reports /. elapsed_s;
    p50_lookup_s = Stats.percentile latencies ~p:50.;
    p99_lookup_s = Stats.percentile latencies ~p:99.;
  }
