(** The swarm benchmark: a million-flow context plane under load.

    The paper's pitch is that a "five computers" operator can afford a
    per-domain context service precisely because the protocol is two
    tiny messages per connection.  This experiment holds that claim to
    production shape: one million short flows from the Section 2.1 trace
    generator (Zipf destinations, Pareto sizes) are turned into their
    lookup/report wire messages, partitioned over [cells] independent
    {!Phi.Context_server} groups by path hash, and served in timestamp
    order against each group's virtual clock.  Every message round-trips
    through {!Phi.Context_wire} — encode, decode, serve, encode the
    response, decode it back — so the measured path is the real one.

    Results split cleanly in two:

    - a deterministic {e fingerprint} (message counts, an FNV checksum
      over every response byte, residency, evictions, Jain shard-balance
      index) that is byte-identical for a given config whatever [?jobs]
      is — the cell partition is fixed by the workload, not by the
      worker count;
    - {e timing} (lookups/s, reports/s, p50/p99 lookup service latency)
      from the wall clock, which CI gates against committed floors. *)

type config = {
  n_flows : int;
  seed : int;
  cells : int;  (** independent server groups (fixed, not tied to [?jobs]) *)
  shards_per_cell : int;
  epoch_s : float;
  window_s : float;
  ttl_epochs : int;
  max_paths_per_shard : int;
}

val default_config : config
(** One million flows over 8 cells of 8 shards — 64 shard bins for the
    balance index — with 1 s epochs and a 120-epoch TTL so the decay
    sweep actually runs within the trace horizon. *)

type result = {
  flows : int;
  lookups : int;
  reports : int;
  resident_paths : int;  (** committed prefixes after the final flush *)
  evictions : int;
  flushes : int;
  checksum : int;  (** FNV-1a over every encoded response, cell-ordered *)
  jain_index : float;  (** Jain fairness of per-shard lookup counts *)
  choice_counts : (string * int) list;
      (** Per-algorithm tally of the compiled-policy choices made from
          decoded lookup responses (the client half of connection
          setup); sums to [lookups] and is part of the fingerprint. *)
  fingerprint : string;  (** the deterministic half, as one line *)
  elapsed_s : float;
  lookups_per_s : float;
  reports_per_s : float;
  p50_lookup_s : float;
  p99_lookup_s : float;
}

val run : ?jobs:int -> ?config:config -> unit -> result
(** Generate, partition, and serve the swarm.  [?jobs] only sets the
    domain fan-out of cell execution; the fingerprint must not depend on
    it (the jobs-invariance test holds this). *)
