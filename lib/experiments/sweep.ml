module Cubic = Phi_tcp.Cubic
module Stats = Phi_util.Stats
module Pool = Phi_runner.Pool

type grid = { ssthresh : float list; init_w : float list; beta : float list }

let doubling lo hi =
  let rec go v = if v > hi then [] else float_of_int v :: go (2 * v) in
  go lo

let paper_grid =
  {
    ssthresh = doubling 2 256;
    init_w = doubling 2 256;
    beta = List.init 9 (fun i -> 0.1 +. (0.1 *. float_of_int i));
  }

let coarse_grid =
  { ssthresh = [ 2.; 16.; 64.; 256. ]; init_w = [ 2.; 16.; 64.; 256. ]; beta = [ 0.1; 0.2; 0.5 ] }

let beta_grid =
  {
    ssthresh = [ Cubic.default_params.Cubic.initial_ssthresh ];
    init_w = [ Cubic.default_params.Cubic.initial_cwnd ];
    beta = List.init 9 (fun i -> 0.1 +. (0.1 *. float_of_int i));
  }

type point = {
  params : Cubic.params;
  by_seed : Scenario.result array;
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
}

type t = {
  config : Scenario.config;
  seeds : int list;
  points : point list;
  default_point : point;
}

let settings grid =
  List.concat_map
    (fun ssthresh ->
      List.concat_map
        (fun init_w ->
          List.map
            (fun beta ->
              Cubic.with_knobs ~initial_cwnd:init_w ~initial_ssthresh:ssthresh ~beta
                Cubic.default_params)
            grid.beta)
        grid.init_w)
    grid.ssthresh

let mean_of f results = Stats.mean (Array.map f results)

let point_of ~params by_seed =
  {
    params;
    by_seed;
    mean_throughput_bps = mean_of (fun (r : Scenario.result) -> r.Scenario.throughput_bps) by_seed;
    mean_queueing_delay_s =
      mean_of (fun (r : Scenario.result) -> r.Scenario.queueing_delay_s) by_seed;
    mean_loss_rate = mean_of (fun (r : Scenario.result) -> r.Scenario.loss_rate) by_seed;
    mean_power = mean_of (fun (r : Scenario.result) -> r.Scenario.power) by_seed;
  }

(* Group a flat (setting-major, seed-minor) cell-result list back into
   one point per setting.  The pool returns results in submission order,
   so the regrouping is positional and the parallel sweep is bit-for-bit
   identical to the serial one. *)
let regroup ~n_seeds settings results =
  let arr = Array.of_list results in
  List.mapi (fun i params -> point_of ~params (Array.sub arr (i * n_seeds) n_seeds)) settings

let run ?(progress = fun _ _ -> ()) ?jobs config grid ~seeds =
  if seeds = [] then invalid_arg "Sweep.run: no seeds";
  let all = settings grid in
  let total = List.length all in
  (* One cell per (setting, seed) — the finest independent unit, so the
     pool load-balances across both axes.  The Table 1 default setting
     rides along as the last group of cells. *)
  let cells =
    List.concat_map
      (fun params -> List.map (fun seed -> (params, seed)) seeds)
      (all @ [ Cubic.default_params ])
  in
  let results =
    Pool.map ?jobs
      (fun (params, seed) -> Scenario.run_cubic ~params { config with Scenario.seed })
      cells
  in
  let points = regroup ~n_seeds:(List.length seeds) (all @ [ Cubic.default_params ]) results in
  List.iteri (fun i _ -> progress (i + 1) total) all;
  match List.rev points with
  | default_point :: rev_points ->
    { config; seeds; points = List.rev rev_points; default_point }
  | [] -> invalid_arg "Sweep.run: empty grid"

let optimal t =
  match t.points with
  | [] -> invalid_arg "Sweep.optimal: empty sweep"
  | first :: rest ->
    List.fold_left (fun best p -> if p.mean_power > best.mean_power then p else best) first rest

let run_longrunning ?jobs ~spec ~n_flows ~duration_s ~seeds ~betas () =
  let cells = List.concat_map (fun beta -> List.map (fun seed -> (beta, seed)) seeds) betas in
  let results =
    Pool.map ?jobs
      (fun (beta, seed) ->
        let params = Cubic.with_knobs ~beta Cubic.default_params in
        Scenario.run_persistent ~params ~n_flows ~duration_s ~spec ~seed ())
      cells
  in
  let params_of beta = Cubic.with_knobs ~beta Cubic.default_params in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i beta -> (beta, point_of ~params:(params_of beta) (Array.sub arr (i * n_seeds) n_seeds)))
    betas

type validation = { default_power : float; optimal_power : float; common_power : float }

let validate t =
  let n_seeds = List.length t.seeds in
  if n_seeds < 2 then invalid_arg "Sweep.validate: need at least 2 seeds";
  (* Best setting according to seed [i] alone. *)
  let best_for_seed i =
    match t.points with
    | [] -> invalid_arg "Sweep.validate: empty sweep"
    | first :: rest ->
      List.fold_left
        (fun best p ->
          if p.by_seed.(i).Scenario.power > best.by_seed.(i).Scenario.power then p else best)
        first rest
  in
  let optimal_powers = ref [] and common_powers = ref [] in
  for i = 0 to n_seeds - 1 do
    let best = best_for_seed i in
    optimal_powers := best.by_seed.(i).Scenario.power :: !optimal_powers;
    for j = 0 to n_seeds - 1 do
      if j <> i then common_powers := best.by_seed.(j).Scenario.power :: !common_powers
    done
  done;
  {
    default_power = t.default_point.mean_power;
    optimal_power = Stats.mean (Array.of_list !optimal_powers);
    common_power = Stats.mean (Array.of_list !common_powers);
  }
