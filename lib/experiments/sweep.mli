(** Parameter sweeps over the Table 2 grid (Section 2.2.1).

    For a given workload, run every (initial_ssthresh, windowInit_, beta)
    combination over several seeded runs and find the setting that
    maximizes the paper's [P_l] metric.  The per-(setting, seed) matrix is
    kept so Figure 3's leave-one-out validation costs no extra
    simulations. *)

type grid = { ssthresh : float list; init_w : float list; beta : float list }

val paper_grid : grid
(** Table 2: ssthresh and windowInit_ 2–256 doubling, beta 0.1–0.9 in 0.1
    steps (576 settings). *)

val coarse_grid : grid
(** The bench default: 4 x 4 x 3 = 48 settings (documented downsampling;
    use [phi-cli sweep --full] for the paper grid). *)

val beta_grid : grid
(** Figure 2c: beta 0.1–0.9 alone, other knobs at their defaults. *)

type point = {
  params : Phi_tcp.Cubic.params;
  by_seed : Scenario.result array;  (** one result per seed, in seed order *)
  mean_throughput_bps : float;
  mean_queueing_delay_s : float;
  mean_loss_rate : float;
  mean_power : float;
}

type t = {
  config : Scenario.config;  (** seed field unused; seeds below *)
  seeds : int list;
  points : point list;
  default_point : point;  (** Table 1 defaults under the same workload *)
}

val settings : grid -> Phi_tcp.Cubic.params list

val run :
  ?progress:(int -> int -> unit) -> ?jobs:int -> Scenario.config -> grid -> seeds:int list -> t
(** Runs every (setting, seed) cell as an independent job on a
    {!Phi_runner.Pool} of [jobs] domains (default
    {!Phi_runner.Pool.default_jobs}; [jobs:1] is the serial path).
    Results are reassembled in grid order, so the outcome is identical
    for every [jobs] value.  [progress done_ total] is called once per
    grid setting after the batch completes (with [jobs:1] the pool still
    drains the whole batch before progress fires). *)

val optimal : t -> point
(** Highest mean [P_l]. *)

val run_longrunning :
  ?jobs:int ->
  spec:Phi_net.Topology.spec ->
  n_flows:int ->
  duration_s:float ->
  seeds:int list ->
  betas:float list ->
  unit ->
  (float * point) list
(** Figure 2c: persistent flows, sweeping beta only.  Returns
    [(beta, point)] pairs.  (beta, seed) cells fan out across [jobs]
    domains like {!run}. *)

(** {2 Figure 3: leave-one-out validation} *)

type validation = {
  default_power : float;
  optimal_power : float;  (** mean over seeds of that seed's own best setting *)
  common_power : float;
      (** leave-one-out: mean over seeds of (the best setting of one seed,
          evaluated on the others) *)
}

val validate : t -> validation
