module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Monitor = Phi_net.Monitor
module Flow = Phi_tcp.Flow
module Prng = Phi_util.Prng
module Stats = Phi_util.Stats
module Remy_source = Phi_remy.Remy_source

type row = {
  name : string;
  median_throughput_bps : float;
  median_queueing_delay_s : float;
  median_objective : float;
  connections : int;
  server_messages : int;
}

let paper_rows =
  [
    ("Remy-Phi-practical", 1.93, 5.6, 2.52);
    ("Remy-Phi-ideal", 1.97, 3.0, 2.56);
    ("Remy", 1.45, 1.7, 2.26);
    ("Cubic", 1.03, 9.3, 1.87);
  ]

let conn_objective (r : Flow.conn_stats) =
  let thr = Flow.throughput_bps r in
  if thr <= 0. || not (Float.is_finite r.Flow.mean_rtt) || r.Flow.mean_rtt <= 0. then None
  else Some (Phi.Metric.log_power ~throughput_bps:thr ~delay_s:r.Flow.mean_rtt)

let row_of ~name ~server_messages records =
  let arr f = Array.of_list (List.filter_map f records) in
  let throughputs =
    arr (fun r ->
        let t = Flow.throughput_bps r in
        if t > 0. then Some t else None)
  in
  let qdelays =
    arr (fun r ->
        let q = Flow.queueing_delay r in
        if Float.is_finite q && q >= 0. then Some q else None)
  in
  let objectives = arr conn_objective in
  let median xs = if Array.length xs = 0 then nan else Stats.median xs in
  {
    name;
    median_throughput_bps = median throughputs;
    median_queueing_delay_s = median qdelays;
    median_objective = median objectives;
    connections = List.length records;
    server_messages;
  }

type variant =
  | Cubic_default
  | Remy_classic
  | Remy_phi of [ `Ideal | `Practical ]

(* One seeded run of one variant; returns (records, server messages). *)
let run_variant ~remy_table ~remy_phi_table ~seed (config : Scenario.config) variant =
  match variant with
  | Cubic_default ->
    let result = Scenario.run { config with Scenario.seed } in
    (result.Scenario.records, 0)
  | Remy_classic | Remy_phi _ ->
    let engine = Engine.create () in
    let dumbbell = Topology.dumbbell engine config.Scenario.spec in
    let server_messages = ref 0 in
    let server =
      Phi.Context_server.create engine
        ~capacity_bps:config.Scenario.spec.Topology.bottleneck_bw_bps ()
    in
    let util_feed : Phi_remy.Remy_sender.util_feed =
      match variant with
      | Remy_classic | Cubic_default -> `None
      | Remy_phi `Ideal ->
        let monitor = Monitor.create engine dumbbell.Topology.bottleneck ~interval_s:0.1 in
        `Live (fun () -> Monitor.current_utilization monitor)
      | Remy_phi `Practical ->
        `At_start
          (fun () ->
            incr server_messages;
            (Phi.Context_server.lookup server ~path:"dumbbell").Phi.Context.utilization)
    in
    let table = match variant with Remy_phi _ -> remy_phi_table | _ -> remy_table in
    let on_conn_end =
      match variant with
      | Remy_phi `Practical ->
        fun stats ->
          incr server_messages;
          Phi.Context_server.report_stats server ~path:"dumbbell" stats
      | _ -> fun _ -> ()
    in
    let rng = Prng.create ~seed in
    let flows = Flow.allocator () in
    let records = ref [] in
    let sources =
      Array.init config.Scenario.spec.Topology.n (fun i ->
          Remy_source.create engine ~rng:(Prng.split rng) ~flows
            ~src_node:dumbbell.Topology.senders.(i)
            ~dst_node:dumbbell.Topology.receivers.(i)
            ~index:i ~table ~util:util_feed
            ~on_conn_end:(fun stats ->
              records := stats :: !records;
              on_conn_end stats)
            {
              Remy_source.mean_on_bytes = config.Scenario.workload.Scenario.mean_on_bytes;
              mean_off_s = config.Scenario.workload.Scenario.mean_off_s;
            })
    in
    Array.iter Remy_source.start sources;
    Engine.run ~until:config.Scenario.duration_s engine;
    Array.iter Remy_source.abort_current sources;
    (!records, !server_messages)

let run ?remy_table ?remy_phi_table ~seeds config =
  if seeds = [] then invalid_arg "Table3.run: no seeds";
  let remy_table = match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy () in
  let remy_phi_table =
    match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ()
  in
  let pooled variant =
    List.fold_left
      (fun (records, msgs) seed ->
        let r, m = run_variant ~remy_table ~remy_phi_table ~seed config variant in
        (r @ records, m + msgs))
      ([], 0) seeds
  in
  List.map
    (fun (name, variant) ->
      let records, msgs = pooled variant in
      row_of ~name ~server_messages:msgs records)
    [
      ("Remy-Phi-practical", Remy_phi `Practical);
      ("Remy-Phi-ideal", Remy_phi `Ideal);
      ("Remy", Remy_classic);
      ("Cubic", Cubic_default);
    ]
