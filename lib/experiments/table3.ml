module Topology = Phi_net.Topology
module Monitor = Phi_net.Monitor
module Flow = Phi_tcp.Flow
module Stats = Phi_util.Stats
module Pool = Phi_runner.Pool
module Remy_cc = Phi_remy.Remy_cc
module Compiled_table = Phi_remy.Compiled_table

type row = {
  name : string;
  median_throughput_bps : float;
  median_queueing_delay_s : float;
  median_objective : float;
  connections : int;
  server_messages : int;
}

let paper_rows =
  [
    ("Remy-Phi-practical", 1.93, 5.6, 2.52);
    ("Remy-Phi-ideal", 1.97, 3.0, 2.56);
    ("Remy", 1.45, 1.7, 2.26);
    ("Cubic", 1.03, 9.3, 1.87);
  ]

let conn_objective (r : Flow.conn_stats) =
  let thr = Flow.throughput_bps r in
  if thr <= 0. || not (Float.is_finite r.Flow.mean_rtt) || r.Flow.mean_rtt <= 0. then None
  else Some (Phi.Metric.log_power ~throughput_bps:thr ~delay_s:r.Flow.mean_rtt)

let row_of ~name ~server_messages records =
  let arr f = Array.of_list (List.filter_map f records) in
  let throughputs =
    arr (fun r ->
        let t = Flow.throughput_bps r in
        if t > 0. then Some t else None)
  in
  let qdelays =
    arr (fun r ->
        let q = Flow.queueing_delay r in
        if Float.is_finite q && q >= 0. then Some q else None)
  in
  let objectives = arr conn_objective in
  let median xs = if Array.length xs = 0 then nan else Stats.median xs in
  {
    name;
    median_throughput_bps = median throughputs;
    median_queueing_delay_s = median qdelays;
    median_objective = median objectives;
    connections = List.length records;
    server_messages;
  }

type variant =
  | Cubic_default
  | Remy_classic
  | Remy_phi of [ `Ideal | `Practical ]

(* One seeded run of one variant on the shared scenario runner; returns
   (records, server messages).  The Remy variants are ordinary
   controllers on the unified sender: [observe] attaches the context
   server (and, for the ideal feed, a bottleneck monitor) right after
   topology construction, and the controller factory consumes the feed. *)
let run_variant ~remy_table ~remy_phi_table ~seed (config : Scenario.config) variant =
  match variant with
  | Cubic_default ->
    let result = Scenario.run { config with Scenario.seed } in
    (result.Scenario.records, 0)
  | Remy_classic | Remy_phi _ ->
    let server_messages = ref 0 in
    let util_feed : Remy_cc.util_feed ref = ref `None in
    let on_conn_end = ref (fun (_ : Flow.conn_stats) -> ()) in
    let observe engine (dumbbell : Topology.dumbbell) =
      let server =
        Phi.Context_server.create engine
          ~capacity_bps:config.Scenario.spec.Topology.bottleneck_bw_bps ()
      in
      match variant with
      | Remy_classic | Cubic_default -> ignore server
      | Remy_phi `Ideal ->
        let monitor = Monitor.create engine dumbbell.Topology.bottleneck ~interval_s:0.1 in
        util_feed := `Live (fun () -> Monitor.current_utilization monitor)
      | Remy_phi `Practical ->
        util_feed :=
          `At_start
            (fun () ->
              incr server_messages;
              (Phi.Context_server.lookup server ~path:"dumbbell").Phi.Context.utilization);
        on_conn_end :=
          fun stats ->
            incr server_messages;
            Phi.Context_server.report_stats server ~path:"dumbbell" stats
    in
    let table =
      match variant with
      | Remy_phi _ -> remy_phi_table
      | Remy_classic | Cubic_default -> remy_table
    in
    let result =
      Scenario.run
        ~cc_factory:(fun _ () -> Remy_cc.make ~table ~util:!util_feed ())
        ~on_conn_end:(fun stats -> !on_conn_end stats)
        ~observe
        { config with Scenario.seed }
    in
    (result.Scenario.records, !server_messages)

let variants =
  [
    ("Remy-Phi-practical", Remy_phi `Practical);
    ("Remy-Phi-ideal", Remy_phi `Ideal);
    ("Remy", Remy_classic);
    ("Cubic", Cubic_default);
  ]

let run ?jobs ?remy_table ?remy_phi_table ~seeds config =
  if seeds = [] then invalid_arg "Table3.run: no seeds";
  (* Compile once before fanning out.  Lookups are pure and the compiled
     form immutable, so — unlike the old usage-mutating tables, which
     needed a private copy per cell — every (variant, seed) cell shares
     the same two flat tables across worker domains. *)
  let remy_table =
    Compiled_table.compile
      (match remy_table with Some t -> t | None -> Phi_remy.Pretrained.remy ())
  in
  let remy_phi_table =
    Compiled_table.compile
      (match remy_phi_table with Some t -> t | None -> Phi_remy.Pretrained.remy_phi ())
  in
  (* One cell per (variant, seed), variant-major so the regrouping is
     positional. *)
  let cells =
    List.concat_map (fun (_, variant) -> List.map (fun seed -> (variant, seed)) seeds) variants
  in
  let results =
    Pool.map ?jobs
      (fun (variant, seed) -> run_variant ~remy_table ~remy_phi_table ~seed config variant)
      cells
  in
  let n_seeds = List.length seeds in
  let arr = Array.of_list results in
  List.mapi
    (fun i (name, _) ->
      let records, msgs =
        Array.fold_left
          (fun (records, msgs) (r, m) -> (r @ records, m + msgs))
          ([], 0)
          (Array.sub arr (i * n_seeds) n_seeds)
      in
      row_of ~name ~server_messages:msgs records)
    variants
