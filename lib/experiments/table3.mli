(** Table 3 (Section 2.2.4): Remy with and without Phi's shared
    utilization signal, against Cubic, on the paper dumbbell.

    Four rows: [Remy-Phi-practical] (utilization looked up at connection
    start from a context server fed by end-of-connection reports),
    [Remy-Phi-ideal] (up-to-the-minute utilization from a bottleneck
    monitor), classic [Remy], and default-parameter [Cubic].  Metrics are
    per-connection medians, pooled across seeds: throughput, queueing
    delay (the connection's [mean_rtt - min_rtt]) and Remy's objective
    [ln (throughput_Mbps / mean_rtt)]. *)

type row = {
  name : string;
  median_throughput_bps : float;
  median_queueing_delay_s : float;
  median_objective : float;
  connections : int;
  server_messages : int;
      (** context-server lookups + reports (the coordination overhead);
          0 for non-Phi rows *)
}

val paper_rows : (string * float * float * float) list
(** The published numbers, [(name, Mbps, delay_ms, objective)], for
    side-by-side printing in EXPERIMENTS.md. *)

val run :
  ?jobs:int ->
  ?remy_table:Phi_remy.Rule_table.t ->
  ?remy_phi_table:Phi_remy.Rule_table.t ->
  seeds:int list ->
  Scenario.config ->
  row list
(** Tables default to the pretrained ones shipped in
    {!Phi_remy.Pretrained}.  Rows come back in the paper's order.
    [(variant, seed)] cells fan out over a {!Phi_runner.Pool} with [jobs]
    workers (default: core count); results are identical for every
    [jobs] value. *)
