module Prng = Phi_util.Prng
module Dist = Phi_util.Dist
module Cloud_trace = Phi_workload.Cloud_trace

type record = { ts : float; src_ip : int; src_port : int; dst_ip : int; dst_port : int }

let key r = (r.src_ip, r.src_port, r.dst_ip, r.dst_port)

let default_rate = 4096

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial: negative n";
  if p < 0. || p > 1. then invalid_arg "Sampler.binomial: p out of [0, 1]";
  if n = 0 || Float.equal p 0. then 0
  else if n < 512 then begin
    let hits = ref 0 in
    for _ = 1 to n do
      if Prng.float rng < p then incr hits
    done;
    !hits
  end
  else
    (* p is ~1/4096 here, so Poisson(np) is an excellent approximation. *)
    Stdlib.min n (Dist.poisson rng ~lambda:(float_of_int n *. p))

let sample_flows rng ~rate flows =
  if rate < 1 then invalid_arg "Sampler.sample_flows: rate must be >= 1";
  let p = 1. /. float_of_int rate in
  let records = ref [] in
  List.iter
    (fun (flow : Cloud_trace.flow) ->
      let hits = binomial rng ~n:flow.packets ~p in
      for _ = 1 to hits do
        let ts = flow.start_s +. (Prng.float rng *. flow.duration_s) in
        records :=
          {
            ts;
            src_ip = flow.src_ip;
            src_port = flow.src_port;
            dst_ip = flow.dst_ip;
            dst_port = flow.dst_port;
          }
          :: !records
      done)
    flows;
  List.sort (fun a b -> Float.compare a.ts b.ts) !records
