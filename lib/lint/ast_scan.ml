(* AST fact extraction for the cross-module analyses.

   [Parse.implementation] (compiler-libs, the exact parser the build
   uses) turns each source into a Parsetree; one recursive walk then
   distils the per-module facts the dataflow passes consume: every
   module-level function with its allocation sites, outgoing references
   and cold regions, plus every module-level binding that constructs
   mutable state.

   Cold regions — code that cannot run on a steady-state hot path — are
   excluded from allocation-effect propagation at the source:
   - arguments of [raise] / [invalid_arg] / [failwith] (error paths);
   - branches guarded by [Invariant.enabled ()] / [!Invariant.armed]
     (sanitizer-only paths, compiled out of disarmed runs);
   - bodies of functions annotated [@inline never] — the codebase
     convention for out-of-line anomaly handlers (see lib/sim/engine.ml).

   The walk is syntactic: it sees no types, so a handful of judgement
   calls are encoded as tables below (which stdlib entry points
   allocate, which expressions produce a boxed float).  Both engines'
   shared limitations — calls through record fields (the [Cc]
   controllers, link receivers) and through escaping function
   parameters are not resolved — are documented in the interface; the
   runtime allocation gate and sanitizer remain the backstop for those
   paths. *)

type alloc_kind = Closure | Block | Boxed_float | Array_alloc | Extern

let kind_to_string = function
  | Closure -> "closure"
  | Block -> "tuple/record/constructor"
  | Boxed_float -> "boxed float"
  | Array_alloc -> "array"
  | Extern -> "allocating stdlib call"

type alloc = { a_line : int; a_kind : alloc_kind; a_what : string; a_cold : bool }

type call = { c_line : int; c_path : string; c_cold : bool }

type func = {
  f_id : string;
  f_file : string;
  f_line : int;
  f_cold : bool;
  f_allocs : alloc list;
  f_calls : call list;
  f_pool_spawn : bool;
}

type global = { g_id : string; g_file : string; g_line : int; g_what : string }

type modinfo = {
  m_name : string;
  m_file : string;
  m_funcs : func list;
  m_globals : global list;
}

let module_name path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

(* {2 Name tables} *)

let strip_stdlib p =
  let prefix = "Stdlib." in
  let pn = String.length prefix in
  if String.length p > pn && String.sub p 0 pn = prefix then String.sub p pn (String.length p - pn)
  else p

(* Stdlib entry points that allocate on every call (approximate,
   curated: containers that cons, [_opt] lookups that box in [Some],
   formatters, copying operations). *)
let extern_allocates =
  [
    "ref"; "Atomic.make";
    "Hashtbl.create"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy";
    "Hashtbl.find_opt"; "Hashtbl.to_seq"; "Hashtbl.fold";
    "Queue.create"; "Queue.push"; "Queue.add"; "Queue.copy"; "Queue.take_opt";
    "Queue.peek_opt";
    "Stack.create"; "Stack.push"; "Stack.pop_opt"; "Stack.top_opt";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.copy"; "Array.append";
    "Array.sub"; "Array.of_list"; "Array.to_list"; "Array.map"; "Array.mapi";
    "Array.make_matrix"; "Array.to_seq";
    "Float.Array.create"; "Float.Array.make"; "Float.Array.copy"; "Float.Array.sub";
    "Bytes.create"; "Bytes.make"; "Bytes.copy"; "Bytes.sub"; "Bytes.of_string";
    "Bytes.to_string";
    "String.make"; "String.init"; "String.sub"; "String.concat"; "String.map";
    "String.split_on_char"; "String.uppercase_ascii"; "String.lowercase_ascii";
    "String.trim"; "^"; "^^";
    "List.map"; "List.mapi"; "List.map2"; "List.init"; "List.append"; "List.concat";
    "List.concat_map"; "List.rev"; "List.rev_append"; "List.rev_map"; "List.sort";
    "List.stable_sort"; "List.fast_sort"; "List.filter"; "List.filter_map";
    "List.partition"; "List.split"; "List.combine"; "List.of_seq"; "List.to_seq";
    "List.cons"; "@"; "List.nth_opt"; "List.assoc_opt"; "List.find_opt";
    "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes";
    "Printf.sprintf"; "Format.sprintf"; "Format.asprintf";
    "Seq.map"; "Seq.filter"; "Seq.cons";
    "string_of_int"; "string_of_float"; "string_of_bool"; "Int.to_string";
    "Float.to_string"; "float_of_string_opt"; "int_of_string_opt"; "Sys.getenv_opt";
  ]

(* Constructors of mutable state, for the module-level global scan. *)
let mutable_ctors =
  [
    "ref"; "Atomic.make"; "Hashtbl.create"; "Queue.create"; "Stack.create";
    "Buffer.create"; "Array.make"; "Array.create_float"; "Array.init";
    "Array.make_matrix"; "Bytes.create"; "Bytes.make"; "Float.Array.create";
    "Float.Array.make"; "Dynarray.create";
  ]

let raise_like = [ "raise"; "raise_notrace"; "invalid_arg"; "failwith"; "exit" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "float_of_string" ]

(* {2 Parsetree helpers} *)

open Parsetree

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum

let rec flatten_lid (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten_lid l @ [ s ]
  | Lapply (l, _) -> flatten_lid l

let path_of_lid lid = String.concat "." (flatten_lid lid)

let has_inline_never (attrs : attributes) =
  List.exists
    (fun (a : attribute) ->
      a.attr_name.txt = "inline"
      &&
      match a.attr_payload with
      | PStr [ { pstr_desc = Pstr_eval ({ pexp_desc = Pexp_ident { txt = Lident "never"; _ }; _ }, _); _ } ] ->
        true
      | _ -> false)
    attrs

(* A float-producing expression, syntactically: a float literal, an
   application of a float operator, or a [Float.*] call.  Used to spot
   the boxed store [r.field <- <float>] into a mixed record. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let p = strip_stdlib (path_of_lid txt) in
    List.mem p float_ops
    || (String.length p > 6 && String.sub p 0 6 = "Float." && p <> "Float.to_int")
  | Pexp_ifthenelse (_, t, Some e') -> floatish t || floatish e'
  | Pexp_constraint (e', _) -> floatish e'
  | _ -> false

(* {2 The walker} *)

let rec pat_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p', _) -> pat_name p'
  | _ -> None

(* [let x = ref e in body] where every use of [x] is a bare [!x] or
   [x := e'] and none sits under a nested function: the compiler's
   lambda-level [eliminate_ref] turns this into a mutable stack
   variable with no allocation (hot loops here are written with index
   refs in exactly this shape).  Any other occurrence — passed, stored,
   returned, captured by a closure — defeats the optimization. *)
let ref_eliminable x body =
  let ok = ref true in
  let rec go ~in_fun e =
    match e.pexp_desc with
    | Pexp_ident { txt = Lident y; _ } when y = x -> ok := false
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident ("!" | ":="); _ }; _ },
          (_, { pexp_desc = Pexp_ident { txt = Lident y; _ }; _ }) :: rest )
      when y = x ->
      if in_fun then ok := false;
      List.iter (fun (_, a) -> go ~in_fun a) rest
    | Pexp_fun (_, d, _, b) ->
      Option.iter (go ~in_fun:true) d;
      go ~in_fun:true b
    | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (go ~in_fun:true) c.pc_guard;
          go ~in_fun:true c.pc_rhs)
        cases
    | Pexp_let (_, vbs, b) ->
      List.iter (fun vb -> go ~in_fun vb.pvb_expr) vbs;
      (* A rebinding of [x] shadows it for the rest of the body. *)
      if not (List.exists (fun vb -> pat_name vb.pvb_pat = Some x) vbs) then go ~in_fun b
    | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e' -> if e' != e then go ~in_fun e');
        }
      in
      Ast_iterator.default_iterator.expr it e
  in
  go ~in_fun:false body;
  !ok

type acc = {
  mutable allocs : alloc list;
  mutable calls : call list;
  mutable pool_spawn : bool;
}

let sanitizer_guard ~self cond =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            let p = path_of_lid txt in
            let hit =
              let n = String.length p in
              let suffix s = n >= String.length s && String.sub p (n - String.length s) (String.length s) = s in
              suffix "Invariant.enabled" || suffix "Invariant.armed"
              || (self = "Invariant" && (p = "enabled" || p = "armed"))
            in
            if hit then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e)
    }
  in
  it.expr it cond;
  !found

(* Walk one function body, attributing every fact to [acc].  [cold]
   tracks the syntactic cold contexts described above. *)
let walk_body ~self ~acc body =
  let add_alloc ~cold line kind what =
    acc.allocs <- { a_line = line; a_kind = kind; a_what = what; a_cold = cold } :: acc.allocs
  in
  let add_call ~cold line path =
    acc.calls <- { c_line = line; c_path = path; c_cold = cold } :: acc.calls;
    let p = strip_stdlib path in
    let n = String.length p in
    let suffix s = n >= String.length s && String.sub p (n - String.length s) (String.length s) = s in
    if
      suffix "Pool.map" || suffix "Pool.try_map" || suffix "Pdes.run"
      || suffix "Pdes.on_drain"
      (* The dynamics-script combinators register engine callbacks: a
         scenario installing them is fanned over pool domains by the
         evaluation matrix, so whatever the callbacks touch is
         pool-reachable too. *)
      || suffix "Dynamics.at" || suffix "Dynamics.every"
    then acc.pool_spawn <- true
  in
  let rec go ~cold e =
    let line = line_of_loc e.pexp_loc in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> add_call ~cold line (path_of_lid txt)
    | Pexp_fun (_, default, _, body') ->
      add_alloc ~cold line Closure "fun";
      Option.iter (go ~cold) default;
      go ~cold body'
    | Pexp_function cases ->
      add_alloc ~cold line Closure "function";
      List.iter (case ~cold) cases
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let p = path_of_lid txt in
      let sp = strip_stdlib p in
      if List.mem sp raise_like then begin
        add_call ~cold line p;
        List.iter (fun (_, a) -> go ~cold:true a) args
      end
      else begin
        add_call ~cold line p;
        if List.mem sp extern_allocates then add_alloc ~cold line Extern sp;
        List.iter (fun (_, a) -> go ~cold a) args
      end
    | Pexp_apply (head, args) ->
      go ~cold head;
      List.iter (fun (_, a) -> go ~cold a) args
    | Pexp_ifthenelse (cond, then_, else_) ->
      let guard = sanitizer_guard ~self cond in
      go ~cold cond;
      go ~cold:(cold || guard) then_;
      Option.iter (go ~cold:(cold || guard)) else_
    | Pexp_tuple es ->
      add_alloc ~cold line Block "tuple";
      List.iter (go ~cold) es
    | Pexp_record (fields, base) ->
      add_alloc ~cold line Block "record";
      List.iter (fun (_, v) -> go ~cold v) fields;
      Option.iter (go ~cold) base
    | Pexp_construct ({ txt; _ }, Some arg) ->
      add_alloc ~cold line Block (path_of_lid txt);
      go ~cold arg
    | Pexp_variant (tag, Some arg) ->
      add_alloc ~cold line Block ("`" ^ tag);
      go ~cold arg
    | Pexp_array es ->
      add_alloc ~cold line Array_alloc "array literal";
      List.iter (go ~cold) es
    | Pexp_setfield (r, _, v) ->
      if floatish v then add_alloc ~cold (line_of_loc v.pexp_loc) Boxed_float "float store into mutable field";
      go ~cold r;
      go ~cold v
    | Pexp_lazy e' ->
      add_alloc ~cold line Block "lazy";
      go ~cold e'
    | Pexp_let (_, vbs, body') ->
      List.iter
        (fun vb ->
          match (pat_name vb.pvb_pat, vb.pvb_expr.pexp_desc) with
          | ( Some x,
              Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ]) )
            when strip_stdlib (path_of_lid txt) = "ref" && ref_eliminable x body' ->
            go ~cold arg
          | _ -> go ~cold vb.pvb_expr)
        vbs;
      go ~cold body'
    | Pexp_sequence (a, b) ->
      go ~cold a;
      go ~cold b
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      go ~cold scrut;
      List.iter (case ~cold) cases
    | Pexp_while (c, b) ->
      go ~cold c;
      go ~cold b
    | Pexp_for (_, lo, hi, _, b) ->
      go ~cold lo;
      go ~cold hi;
      go ~cold b
    | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_open (_, e')
    | Pexp_newtype (_, e') | Pexp_assert e' | Pexp_field (e', _) ->
      go ~cold e'
    | Pexp_letmodule (_, _, e') -> go ~cold e'
    | Pexp_send (e', _) -> go ~cold e'
    | Pexp_setinstvar (_, e') -> go ~cold e'
    | _ ->
      (* Constants, unreachable forms, objects: walk children generically
         so no reference is lost. *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e' -> if e' != e then go ~cold e');
        }
      in
      Ast_iterator.default_iterator.expr it e
  and case ~cold c =
    Option.iter (go ~cold) c.pc_guard;
    go ~cold c.pc_rhs
  in
  go ~cold:false body

(* Strip the leading curried-parameter spine: [let f a b = e] is one
   function, not a chain of closure allocations. *)
let rec peel_params e n =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_params body (n + 1)
  | Pexp_newtype (_, body) -> peel_params body n
  | Pexp_constraint (body, _) -> peel_params body n
  | Pexp_function cases -> (`Cases cases, n + 1)
  | _ -> (`Body e, n)

(* Does [e] construct mutable state anywhere outside a nested function?
   (State built inside a [fun] is per-call — the isolation the pool
   wants.)  Returns the innermost construction found. *)
let rec find_mutable_ctor e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> None
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    let p = strip_stdlib (path_of_lid txt) in
    if List.mem p mutable_ctors then Some (line_of_loc e.pexp_loc, p)
    else List.fold_left (fun acc (_, a) -> match acc with Some _ -> acc | None -> find_mutable_ctor a) None args
  | Pexp_array _ -> Some (line_of_loc e.pexp_loc, "array literal")
  | _ ->
    let found = ref None in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun _ e' ->
            if e' != e && !found = None then
              match e'.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> ()
              | _ -> found := find_mutable_ctor e');
      }
    in
    Ast_iterator.default_iterator.expr it e;
    !found

let scan_structure ~path ~mod_path str =
  let funcs = ref [] and globals = ref [] in
  let rec item ~mod_path (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let line = line_of_loc vb.pvb_loc in
          let name = match pat_name vb.pvb_pat with Some n -> n | None -> Printf.sprintf "_init_%d" line in
          let id = mod_path ^ "." ^ name in
          match peel_params vb.pvb_expr 0 with
          | `Body body, 0 ->
            (* A module-level value: the [domain-race] pass cares whether
               it constructs mutable state (anywhere in the right-hand
               side — nested, indented, inside a record: all the shapes
               the old column-0 heuristic missed). *)
            (match find_mutable_ctor body with
            | Some (_, what) ->
              globals := { g_id = id; g_file = path; g_line = line; g_what = what } :: !globals
            | None -> ())
          | `Body body, _ ->
            let acc = { allocs = []; calls = []; pool_spawn = false } in
            walk_body ~self:mod_path ~acc body;
            funcs :=
              {
                f_id = id;
                f_file = path;
                f_line = line;
                f_cold = has_inline_never vb.pvb_attributes;
                f_allocs = List.rev acc.allocs;
                f_calls = List.rev acc.calls;
                f_pool_spawn = acc.pool_spawn;
              }
              :: !funcs
          | `Cases cases, _ ->
            let acc = { allocs = []; calls = []; pool_spawn = false } in
            List.iter
              (fun c ->
                Option.iter (fun g -> walk_body ~self:mod_path ~acc g) c.pc_guard;
                walk_body ~self:mod_path ~acc c.pc_rhs)
              cases;
            funcs :=
              {
                f_id = id;
                f_file = path;
                f_line = line;
                f_cold = has_inline_never vb.pvb_attributes;
                f_allocs = List.rev acc.allocs;
                f_calls = List.rev acc.calls;
                f_pool_spawn = acc.pool_spawn;
              }
              :: !funcs)
        vbs
    | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> module_expr ~mod_path:(mod_path ^ "." ^ sub) pmb_expr
    | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          match mb.pmb_name.txt with
          | Some sub -> module_expr ~mod_path:(mod_path ^ "." ^ sub) mb.pmb_expr
          | None -> ())
        mbs
    | _ -> ()
  and module_expr ~mod_path me =
    match me.pmod_desc with
    | Pmod_structure str -> List.iter (item ~mod_path) str
    | Pmod_constraint (me', _) -> module_expr ~mod_path me'
    | _ -> ()
  in
  List.iter (item ~mod_path) str;
  (List.rev !funcs, List.rev !globals)

let scan ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str ->
    let m_name = module_name path in
    let m_funcs, m_globals = scan_structure ~path ~mod_path:m_name str in
    Ok { m_name; m_file = path; m_funcs; m_globals }
  | exception e -> Error (Printexc.to_string e)
