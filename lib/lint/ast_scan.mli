(** Parsetree fact extraction: the front end of phi-lint's AST engine.

    Each [.ml] source is parsed with the compiler's own parser
    ([Parse.implementation] from compiler-libs) and reduced to the facts
    the dataflow passes consume: per-module function summaries
    (allocation sites, outgoing references, cold regions, pool fan-out
    markers) and module-level mutable-state bindings.

    {2 Cold regions}

    Allocation and call sites are tagged cold when they cannot execute
    on a steady-state hot path: arguments of [raise] / [invalid_arg] /
    [failwith]; branches guarded by [Invariant.enabled ()] or
    [!Invariant.armed] (sanitizer-only code); and whole functions
    annotated [@inline never] (the codebase convention for out-of-line
    anomaly handlers).  The {!Effects} pass neither reports cold
    allocations nor follows cold calls.

    {2 Known limitations}

    The walk is purely syntactic (no typing): calls through record
    fields (the [Phi_tcp.Cc] controller hooks, link receiver callbacks)
    and through function parameters that escape are not resolved, and
    the allocating-stdlib table is curated rather than derived.  The
    runtime allocation gate ([bench/micro.exe] + [phi_json_check]) and
    the [PHI_SANITIZE=1] sanitizer remain the dynamic backstop on those
    paths. *)

type alloc_kind =
  | Closure  (** a [fun]/[function] evaluated inside a function body *)
  | Block  (** tuple, record, non-constant constructor, lazy *)
  | Boxed_float  (** a float expression stored into a mutable record field *)
  | Array_alloc  (** an array literal *)
  | Extern  (** a call into the curated allocating-stdlib table *)

val kind_to_string : alloc_kind -> string

type alloc = {
  a_line : int;
  a_kind : alloc_kind;
  a_what : string;  (** constructor / callee, for diagnostics *)
  a_cold : bool;
}

type call = { c_line : int; c_path : string; c_cold : bool }
(** One outgoing reference: an application head or a bare identifier
    (a function passed as a value may be called by its receiver, so
    both count as edges).  [c_path] is the raw dotted path as written
    ([send], [Link.send], [Phi_net.Link.send]); {!Callgraph} resolves
    it. *)

type func = {
  f_id : string;  (** ["Module.name"], nested modules dotted in between *)
  f_file : string;
  f_line : int;
  f_cold : bool;  (** [@inline never]: an out-of-line cold helper *)
  f_allocs : alloc list;
  f_calls : call list;
  f_pool_spawn : bool;
      (** references a multi-domain entry point: [Pool.map] /
          [Pool.try_map], the parallel-DES coordinator's [Pdes.run]
          / [Pdes.on_drain] (island window and drain bodies run on
          worker domains), or the dynamics-script combinators
          [Dynamics.at] / [Dynamics.every] (their callbacks run when
          the evaluation matrix fans the enclosing scenario over pool
          domains) *)
}

type global = { g_id : string; g_file : string; g_line : int; g_what : string }
(** A module-level binding that constructs mutable state ([ref],
    [Hashtbl.create], an array, ...) anywhere in its right-hand side
    outside a nested [fun] — including the nested and indented shapes
    the old column-0 lexical heuristic missed. *)

type modinfo = {
  m_name : string;
  m_file : string;
  m_funcs : func list;
  m_globals : global list;
}

val module_name : string -> string
(** ["lib/net/link.ml"] -> ["Link"] — the unprefixed module name used in
    analysis ids. *)

(** {2 Parsetree helpers shared with {!Handle_flow}} *)

val flatten_lid : Longident.t -> string list

val pat_name : Parsetree.pattern -> string option

val peel_params :
  Parsetree.expression ->
  int ->
  [ `Body of Parsetree.expression | `Cases of Parsetree.case list ] * int
(** Strip the curried-parameter spine; returns the innermost body (or
    the cases of a final [function]) and the parameter count. *)

val scan : path:string -> string -> (modinfo, string) result
(** Parse and distil one source.  [Error] carries the parser's message
    (a file that does not parse cannot be analyzed — the build itself
    will reject it; the token engine still scans it). *)
