(* Project-wide call graph over the per-module facts.

   Identifiers are resolved purely by name shape, which matches how
   this codebase is written: every library module is referred to either
   unqualified (within its own file), as [Module.f] (via the
   conventional [module M = Phi_x.M] aliases, which keep the basename),
   or fully qualified as [Phi_lib.Module.f].  Resolution therefore
   keys on the last two dotted components — [Module.f] — falling back
   to [SelfModule.f] for bare names.  Module basenames are unique
   across lib/ (checked by construction: dune would reject the
   ambiguous link anyway), so the suffix key is unambiguous today; if
   two modules ever share a basename both candidates are returned and
   the analyses stay conservative. *)

type t = {
  mods : Ast_scan.modinfo list;
  by_id : (string, Ast_scan.func) Hashtbl.t;  (* "Module.f" (last two components) *)
  globals_by_id : (string, Ast_scan.global) Hashtbl.t;
}

(* The last two dotted components of an id: "Phi_net.Link.send" and
   "Link.send" both key as "Link.send". *)
let suffix_key id =
  match String.rindex_opt id '.' with
  | None -> id
  | Some last -> (
    match String.rindex_opt (String.sub id 0 last) '.' with
    | None -> id
    | Some prev -> String.sub id (prev + 1) (String.length id - prev - 1))

let build mods =
  let by_id = Hashtbl.create 512 and globals_by_id = Hashtbl.create 64 in
  List.iter
    (fun (m : Ast_scan.modinfo) ->
      List.iter (fun (f : Ast_scan.func) -> Hashtbl.add by_id (suffix_key f.f_id) f) m.m_funcs;
      List.iter
        (fun (g : Ast_scan.global) -> Hashtbl.add globals_by_id (suffix_key g.g_id) g)
        m.m_globals)
    mods;
  { mods; by_id; globals_by_id }

let funcs t = List.concat_map (fun (m : Ast_scan.modinfo) -> m.m_funcs) t.mods
let globals t = List.concat_map (fun (m : Ast_scan.modinfo) -> m.m_globals) t.mods

let find t name = Hashtbl.find_all t.by_id (suffix_key name)

(* Resolve a raw reference written inside [caller_module]. *)
let resolve t ~caller_module path =
  if String.contains path '.' then Hashtbl.find_all t.by_id (suffix_key path)
  else Hashtbl.find_all t.by_id (caller_module ^ "." ^ path)

let resolve_global t ~caller_module path =
  let key =
    if String.contains path '.' then suffix_key path else caller_module ^ "." ^ path
  in
  Hashtbl.find_opt t.globals_by_id key

let caller_module_of (f : Ast_scan.func) =
  match String.rindex_opt f.f_id '.' with
  | None -> f.f_id
  | Some i -> (
    let m = String.sub f.f_id 0 i in
    (* For nested modules ("Mod.Sub.f" -> "Mod.Sub") bare references
       resolve within the innermost module; the suffix key normalizes
       the rest. *)
    match String.rindex_opt m '.' with None -> m | Some j -> String.sub m (j + 1) (String.length m - j - 1))

(* Breadth-first reachability from [roots].  Cold call sites and cold
   callees are skipped unless [include_cold] (allocation analysis wants
   only hot paths; race analysis wants every path).  Returns the call
   chain (root first) that first reached each function. *)
let reach t ~roots ~include_cold =
  let paths : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun (f : Ast_scan.func) ->
      if (include_cold || not f.f_cold) && not (Hashtbl.mem paths f.f_id) then begin
        Hashtbl.replace paths f.f_id [ f.f_id ];
        Queue.push f queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let f = Queue.pop queue in
    let here =
      match Hashtbl.find_opt paths f.f_id with Some p -> p | None -> [ f.f_id ]
    in
    let caller_module = caller_module_of f in
    List.iter
      (fun (c : Ast_scan.call) ->
        if include_cold || not c.c_cold then
          List.iter
            (fun (callee : Ast_scan.func) ->
              if (include_cold || not callee.f_cold) && not (Hashtbl.mem paths callee.f_id)
              then begin
                Hashtbl.replace paths callee.f_id (here @ [ callee.f_id ]);
                Queue.push callee queue
              end)
            (resolve t ~caller_module c.c_path))
      f.f_calls
  done;
  paths
