(** Project-wide call graph over {!Ast_scan} facts.

    Resolution is by name shape, matching this codebase's conventions:
    references key on their last two dotted components ([Module.f] —
    the conventional [module M = Phi_x.M] aliases keep basenames, and
    module basenames are unique across lib/), with bare names resolved
    inside the referencing module.  Calls through record fields or
    escaping function parameters are not resolved (see {!Ast_scan}). *)

type t

val build : Ast_scan.modinfo list -> t

val funcs : t -> Ast_scan.func list
val globals : t -> Ast_scan.global list

val find : t -> string -> Ast_scan.func list
(** All functions whose id matches the given name's last two dotted
    components — normally zero or one; several only if two modules
    share a basename (the analyses then stay conservative). *)

val resolve : t -> caller_module:string -> string -> Ast_scan.func list
(** Resolve a raw reference as written inside [caller_module]: bare
    names resolve within that module, dotted paths by suffix. *)

val resolve_global : t -> caller_module:string -> string -> Ast_scan.global option
(** Like {!resolve} for module-level mutable bindings. *)

val caller_module_of : Ast_scan.func -> string
(** The innermost enclosing module of a function id — the module bare
    references inside it resolve against. *)

val reach : t -> roots:Ast_scan.func list -> include_cold:bool -> (string, string list) Hashtbl.t
(** Breadth-first reachability.  Maps each reachable function id to the
    call chain (root first) that first reached it.  With
    [include_cold:false], cold call sites and [@inline never] callees
    are not followed — the hot-path view; with [include_cold:true]
    every edge counts — the race-analysis view. *)
