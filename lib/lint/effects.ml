(* hot-alloc: the allocation-effect lattice and its propagation.

   Each function's own effect is the set of allocation kinds appearing
   (non-cold) in its body; its summary effect is the join of its own
   and its resolvable callees' — a fixpoint over the call graph.  The
   violation pass walks every function reachable from the hot entry
   points through non-cold edges and reports each non-cold allocation
   site, carrying the call chain so the report explains *why* the site
   is hot.  This is the static complement of the runtime
   words-per-packet gate: the gate samples the packets a bench run
   happens to execute; this pass quantifies over every path the call
   graph can prove. *)

(* The steady-state hot paths: the engine event loop, the link/port
   pipeline, local packet delivery, and the sender/receiver per-packet
   handlers.  Setup ([create], [bind], topology builders) is
   deliberately absent — allocation there is amortized across a run. *)
let default_entries =
  [
    "Engine.step"; "Engine.run";
    "Link.send"; "Link.start_service"; "Link.on_tx_done"; "Link.on_deliver";
    "Node.receive";
    "Sender.on_ack"; "Sender.on_packet";
    "Receiver.handle"; "Receiver.send_ack";
  ]

module Kinds = Set.Make (struct
  type t = Ast_scan.alloc_kind

  let compare = Stdlib.compare (* phi-lint: allow poly-compare *)
end)

let own_effect (f : Ast_scan.func) =
  List.fold_left
    (fun acc (a : Ast_scan.alloc) -> if a.a_cold then acc else Kinds.add a.a_kind acc)
    Kinds.empty f.f_allocs

(* Per-function summary effects: own ∪ callees', to a fixpoint.  The
   graph is small (hundreds of nodes), so a simple iterate-until-stable
   pass is plenty. *)
let summaries graph =
  let fs = Callgraph.funcs graph in
  let eff : (string, Kinds.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (f : Ast_scan.func) -> Hashtbl.replace eff f.f_id (own_effect f)) fs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast_scan.func) ->
        if not f.f_cold then begin
          let caller_module = Callgraph.caller_module_of f in
          let cur =
            match Hashtbl.find_opt eff f.f_id with Some k -> k | None -> Kinds.empty
          in
          let next =
            List.fold_left
              (fun acc (c : Ast_scan.call) ->
                if c.c_cold then acc
                else
                  List.fold_left
                    (fun acc (callee : Ast_scan.func) ->
                      if callee.f_cold then acc
                      else
                        Kinds.union acc
                          (match Hashtbl.find_opt eff callee.f_id with
                          | Some k -> k
                          | None -> Kinds.empty))
                    acc
                    (Callgraph.resolve graph ~caller_module c.c_path))
              cur f.f_calls
          in
          if not (Kinds.equal next cur) then begin
            Hashtbl.replace eff f.f_id next;
            changed := true
          end
        end)
      fs
  done;
  eff

let effect_of graph name =
  let eff = summaries graph in
  match Callgraph.find graph name with
  | [] -> []
  | f :: _ ->
    Kinds.elements
      (match Hashtbl.find_opt eff f.Ast_scan.f_id with Some k -> k | None -> Kinds.empty)

(* Render a call chain compactly: entry, an ellipsis when deep, and the
   last couple of hops — enough to locate the path without drowning the
   diagnostic. *)
let render_chain chain =
  match chain with
  | [] -> ""
  | [ only ] -> only
  | _ ->
    let n = List.length chain in
    if n <= 4 then String.concat " -> " chain
    else
      let arr = Array.of_list chain in
      Printf.sprintf "%s -> ... -> %s -> %s" arr.(0) arr.(n - 2) arr.(n - 1)

type finding = { file : string; line : int; message : string }

let violations ?(entries = default_entries) graph =
  let roots = List.concat_map (Callgraph.find graph) entries in
  let paths = Callgraph.reach graph ~roots ~include_cold:false in
  let out = ref [] in
  List.iter
    (fun (f : Ast_scan.func) ->
      match Hashtbl.find_opt paths f.f_id with
      | None -> ()
      | Some chain ->
        List.iter
          (fun (a : Ast_scan.alloc) ->
            if not a.a_cold then
              out :=
                {
                  file = f.f_file;
                  line = a.a_line;
                  message =
                    Printf.sprintf "%s (%s) in %s, hot via %s"
                      (Ast_scan.kind_to_string a.a_kind)
                      a.a_what f.f_id (render_chain chain);
                }
                :: !out)
          f.f_allocs)
    (Callgraph.funcs graph);
  List.rev !out
