(** hot-alloc: allocation-effect propagation over the call graph.

    A function's effect is the set of {!Ast_scan.alloc_kind}s it can
    perform, joined with its resolvable callees' effects to a fixpoint.
    {!violations} reports every non-cold allocation site in every
    function reachable from the hot entry points through non-cold
    edges, each carrying the call chain that makes it hot. *)

val default_entries : string list
(** The steady-state hot paths: the engine event loop ([Engine.step] /
    [Engine.run]), the link pipeline ([Link.send] and its service /
    completion / delivery handlers), local delivery ([Node.receive]),
    and the transport per-packet handlers ([Sender.on_ack] /
    [Sender.on_packet], [Receiver.handle] / [Receiver.send_ack]).
    Setup paths are deliberately absent. *)

val effect_of : Callgraph.t -> string -> Ast_scan.alloc_kind list
(** Fixpoint summary effect of the named function (suffix-resolved),
    own allocations joined with reachable callees'.  Empty when the
    function is unknown or allocation-free. *)

type finding = { file : string; line : int; message : string }

val violations : ?entries:string list -> Callgraph.t -> finding list
(** One finding per non-cold allocation site reachable from [entries]
    (default {!default_entries}), in file order of discovery. *)
