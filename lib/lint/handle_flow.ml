(* handle-lifetime: intraprocedural dataflow over pooled Packet handles.

   Packet handles are generation-stamped ints with single-owner
   semantics: [acquire_*] hands the caller a cell, exactly one owner
   must eventually [release] it, and no read may follow the release.
   The token engine can only see same-statement patterns; this pass
   runs a small abstract interpretation over each function's Parsetree,
   so the release and the offending use (or the leaking early return)
   can be any distance apart and on different control-flow paths.

   The abstraction: each tracked variable maps to a cell; a cell's
   state is Live, Rel (released) or Maybe (released on some path but
   not all — the join of Live and Rel).  [let y = x] aliases y to x's
   cell.  Releasing an untracked variable (e.g. a function parameter)
   creates a tracked Rel cell, so later uses still flag.  Passing a
   tracked handle to anything other than a [Packet.*] accessor
   transfers ownership (the callee or the data structure now owns it) —
   reads through [Packet.*] do not.  Conditionals interpret both arms
   and join pointwise; match cases likewise; loop bodies are
   interpreted once and joined with the entry state (one unrolling is
   enough to see a release inside the loop).

   Violations:
   - use of a Rel cell        -> use-after-release
   - use of a Maybe cell      -> use-after-release (on some path)
   - release of a Rel/Maybe   -> double release
   - acquired, never transferred, Live/Maybe at exit -> leak-on-path

   Purely syntactic, like the rest of the engine: handles that escape
   into closures or data structures count as transferred and drop out
   of tracking; the armed sanitizer (PHI_SANITIZE=1) is the dynamic
   backstop there. *)

open Parsetree

type state = Live | Maybe | Rel

type cell = { id : int; c_line : int; c_acquired : bool; mutable c_transferred : bool }

type finding = { line : int; message : string }

module SMap = Map.Make (String)
module IMap = Map.Make (Int)

let line_of e = e.pexp_loc.Location.loc_start.pos_lnum

let path_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Ast_scan.flatten_lid txt))
  | _ -> None

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

(* The three shapes of Packet call the lattice distinguishes. *)
type pkt_call = Acquire | Release | Read | Not_packet

let classify path =
  if has_suffix path "Packet.acquire_data" || has_suffix path "Packet.acquire_ack" then Acquire
  else if has_suffix path "Packet.release" then Release
  else if
    (* Any other Packet.* entry point: accessors and [add_sack] read or
       write fields through the pool without taking ownership. *)
    has_suffix path "Packet.create_pool" = false
    && (String.length path >= 7 && String.sub path 0 7 = "Packet.")
  then Read
  else Not_packet

let join a b =
  match (a, b) with
  | Live, Live -> Live
  | Rel, Rel -> Rel
  | _ -> Maybe

let state_to_string = function
  | Rel -> "released"
  | Maybe -> "released on some path"
  | Live -> "live"

type ctx = {
  mutable next_id : int;
  mutable cells : cell list;
  late : (string, cell) Hashtbl.t;
      (* variables first seen at their release site (parameters, outer
         bindings): tracked from that point on *)
  mutable findings : finding list;
  fname : string;
}

let report ctx line fmt = Printf.ksprintf (fun m -> ctx.findings <- { line; message = m } :: ctx.findings) fmt

let fresh ctx ~line ~acquired =
  let c = { id = ctx.next_id; c_line = line; c_acquired = acquired; c_transferred = false } in
  ctx.next_id <- ctx.next_id + 1;
  ctx.cells <- c :: ctx.cells;
  c

let lookup ctx env name =
  match SMap.find_opt name env with
  | Some c -> Some c
  | None -> Hashtbl.find_opt ctx.late name

let state_of st (c : cell) = match IMap.find_opt c.id st with Some s -> s | None -> Live

(* Pointwise join of two branch-exit states.  A cell touched on one
   path only keeps that path's state: joining against the other path's
   implicit entry value is what the caller's sequencing already did. *)
let merge a b =
  IMap.union (fun _ sa sb -> Some (join sa sb)) a b

let use ctx env st line name =
  match lookup ctx env name with
  | None -> ()
  | Some c -> (
    match state_of st c with
    | Live -> ()
    | (Rel | Maybe) as s ->
      report ctx line "handle %s used after release (%s; released at cell from line %d) in %s" name
        (state_to_string s) c.c_line ctx.fname)

let transfer ctx env name =
  match lookup ctx env name with None -> () | Some c -> c.c_transferred <- true

(* The last bare-identifier argument is the handle: [release pool h]
   and single-argument [release h] both resolve, and labels are
   irrelevant. *)
let handle_arg args =
  List.fold_left
    (fun acc (_, a) -> match path_of a with Some p when not (String.contains p '.') -> Some (line_of a, p) | _ -> acc)
    None args

let rec interp ctx env st e =
  let line = line_of e in
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } ->
    (* A bare tracked identifier outside a [Packet.*] argument position:
       it is being read, returned or stored — a use, and ownership
       leaves this function's hands. *)
    use ctx env st line x;
    transfer ctx env x;
    st
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable -> st
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    let p = String.concat "." (Ast_scan.flatten_lid txt) in
    match classify p with
    | Release -> (
      let st = List.fold_left (fun st (_, a) -> match a.pexp_desc with Pexp_ident _ -> st | _ -> interp ctx env st a) st args in
      match handle_arg args with
      | None -> st
      | Some (hline, h) -> (
        match lookup ctx env h with
        | Some c -> (
          match state_of st c with
          | Live -> IMap.add c.id Rel st
          | (Rel | Maybe) as s ->
            report ctx hline "handle %s double-released (already %s; first release traced from line %d) in %s" h
              (state_to_string s) c.c_line ctx.fname;
            IMap.add c.id Rel st)
        | None ->
          (* First sighting at its own release: start tracking so any
             later use of this name flags. *)
          let c = fresh ctx ~line:hline ~acquired:false in
          Hashtbl.replace ctx.late h c;
          IMap.add c.id Rel st))
    | Read ->
      (* Accessor: handles passed here are read through the pool, not
         consumed — but reading a released handle is the bug. *)
      List.fold_left
        (fun st (_, a) ->
          match a.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } ->
            use ctx env st (line_of a) x;
            st
          | _ -> interp ctx env st a)
        st args
    | Acquire | Not_packet ->
      (* Any non-Packet callee takes ownership of handle arguments. *)
      List.fold_left
        (fun st (_, a) ->
          match a.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } ->
            use ctx env st (line_of a) x;
            transfer ctx env x;
            st
          | _ -> interp ctx env st a)
        st args)
  | Pexp_apply (head, args) ->
    let st = interp ctx env st head in
    List.fold_left (fun st (_, a) -> interp ctx env st a) st args
  | Pexp_let (_, vbs, body) ->
    let st, env =
      List.fold_left
        (fun (st, env') vb ->
          let name = Ast_scan.pat_name vb.pvb_pat in
          match (name, vb.pvb_expr.pexp_desc) with
          | Some n, Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when classify (String.concat "." (Ast_scan.flatten_lid txt)) = Acquire ->
            let st = List.fold_left (fun st (_, a) -> interp ctx env st a) st args in
            let c = fresh ctx ~line:(line_of vb.pvb_expr) ~acquired:true in
            (IMap.add c.id Live st, SMap.add n c env')
          | Some n, Pexp_ident { txt = Lident y; _ } -> (
            (* [let n = y]: alias — both names share the cell. *)
            match lookup ctx env y with
            | Some c -> (st, SMap.add n c env')
            | None -> (st, SMap.remove n env'))
          | Some n, _ ->
            let st = interp ctx env st vb.pvb_expr in
            (st, SMap.remove n env')
          | None, _ -> (interp ctx env st vb.pvb_expr, env'))
        (st, env) vbs
    in
    interp ctx env st body
  | Pexp_sequence (a, b) ->
    let st = interp ctx env st a in
    interp ctx env st b
  | Pexp_ifthenelse (cond, then_, else_) ->
    let st = interp ctx env st cond in
    let st_t = interp ctx env st then_ in
    let st_e = match else_ with Some e' -> interp ctx env st e' | None -> st in
    merge st_t st_e
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let st = interp ctx env st scrut in
    let exits =
      List.map
        (fun c ->
          let st = match c.pc_guard with Some g -> interp ctx env st g | None -> st in
          interp ctx env st c.pc_rhs)
        cases
    in
    (match exits with [] -> st | first :: rest -> List.fold_left merge first rest)
  | Pexp_while (cond, body) ->
    let st = interp ctx env st cond in
    merge st (interp ctx env st body)
  | Pexp_for (_, lo, hi, _, body) ->
    let st = interp ctx env st lo in
    let st = interp ctx env st hi in
    merge st (interp ctx env st body)
  | Pexp_fun (_, default, _, body) ->
    (* A nested closure: interpret for uses (a closure reading a
       released handle is still a bug at arm time), but any tracked
       handle it mentions escapes — transferred. *)
    let st = match default with Some d -> interp ctx env st d | None -> st in
    interp ctx env st body
  | Pexp_function cases ->
    List.fold_left
      (fun st c ->
        let st = match c.pc_guard with Some g -> interp ctx env st g | None -> st in
        interp ctx env st c.pc_rhs)
      st cases
  | Pexp_tuple es | Pexp_array es -> List.fold_left (fun st e' -> interp ctx env st e') st es
  | Pexp_record (fields, base) ->
    let st = List.fold_left (fun st (_, v) -> interp ctx env st v) st fields in
    (match base with Some b -> interp ctx env st b | None -> st)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> interp ctx env st a
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> st
  | Pexp_field (e', _) -> interp ctx env st e'
  | Pexp_setfield (r, _, v) ->
    let st = interp ctx env st r in
    interp ctx env st v
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_open (_, e') | Pexp_newtype (_, e')
  | Pexp_assert e' | Pexp_lazy e' ->
    interp ctx env st e'
  | Pexp_letmodule (_, _, e') -> interp ctx env st e'
  | _ ->
    (* Remaining forms (objects, extensions): walk children for uses
       via the generic iterator, keeping the state unchanged. *)
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun _ e' ->
            if e' != e then ignore (interp ctx env st e'));
      }
    in
    Ast_iterator.default_iterator.expr it e;
    st

let check_function ~fname body =
  let ctx = { next_id = 0; cells = []; late = Hashtbl.create 4; findings = []; fname } in
  let exit_st = interp ctx SMap.empty IMap.empty body in
  List.iter
    (fun (c : cell) ->
      if c.c_acquired && not c.c_transferred then
        match state_of exit_st c with
        | Rel -> ()
        | Live ->
          report ctx c.c_line "handle acquired at line %d leaks: never released or transferred in %s"
            c.c_line ctx.fname
        | Maybe ->
          report ctx c.c_line
            "handle acquired at line %d leaks on some path: released on one branch but not the other in %s"
            c.c_line ctx.fname)
    ctx.cells;
  List.rev ctx.findings

let check ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception _ -> [] (* unparseable: the build and token engine own it *)
  | str ->
    let out = ref [] in
    let rec item ~mod_path (si : structure_item) =
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match Ast_scan.pat_name vb.pvb_pat with Some n -> n | None -> "_"
            in
            let fname = mod_path ^ "." ^ name in
            match Ast_scan.peel_params vb.pvb_expr 0 with
            | `Body _, 0 -> ()
            | `Body body, _ -> out := check_function ~fname body @ !out
            | `Cases cases, _ ->
              List.iter
                (fun c ->
                  out := check_function ~fname c.pc_rhs @ !out)
                cases)
          vbs
      | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } ->
        module_expr ~mod_path:(mod_path ^ "." ^ sub) pmb_expr
      | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | Some sub -> module_expr ~mod_path:(mod_path ^ "." ^ sub) mb.pmb_expr
            | None -> ())
          mbs
      | _ -> ()
    and module_expr ~mod_path me =
      match me.pmod_desc with
      | Pmod_structure s -> List.iter (item ~mod_path) s
      | Pmod_constraint (me', _) -> module_expr ~mod_path me'
      | _ -> ()
    in
    List.iter (item ~mod_path:(Ast_scan.module_name path)) str;
    List.sort (fun (a : finding) b -> Int.compare a.line b.line) !out
