(** handle-lifetime: intraprocedural dataflow over pooled Packet
    handles.

    Abstract interpretation per function: each handle variable maps to
    a cell in the lattice [Live] / [Rel] (released) / [Maybe] (released
    on some path; the join of the other two).  [let y = x] aliases;
    releasing an as-yet-untracked variable (a parameter) starts
    tracking it; passing a handle to anything other than a [Packet.*]
    accessor transfers ownership.  Branches are joined pointwise and
    loop bodies unrolled once.

    Findings: use-after-release (including the cross-line and
    some-path cases the token engine cannot see), double release, and
    leak-on-path (acquired, never transferred, not released on every
    path).  Handles that escape into closures or data structures count
    as transferred — the [PHI_SANITIZE=1] runtime sanitizer backs those
    up. *)

type finding = { line : int; message : string }

val check : path:string -> string -> finding list
(** Analyze one source; returns findings sorted by line.  Sources that
    do not parse return no findings (the build and the token engine own
    them). *)
