type violation = { file : string; line : int; rule : string; message : string }

let rules =
  [
    ("obj-magic", "Obj.magic defeats the type system; use a typed representation");
    ( "poly-compare",
      "polymorphic compare is unsound on floats (NaN) and float-carrying records; use \
       Float.compare / Int.compare / String.compare or a dedicated comparator" );
    ( "float-equal",
      "(=) or (<>) against a float constant; use Float.equal or an epsilon comparison" );
    ("list-nth", "List.nth is partial and O(n); use List.nth_opt or an array");
    ("hashtbl-find", "Hashtbl.find raises Not_found; use Hashtbl.find_opt");
    ("failwith", "failwith in library code; raise a typed exception or return a result");
    ("exit", "exit in library code; only binaries may terminate the process");
    ("missing-mli", "library module has no .mli interface");
    ("mli-doc", "library interface must open with a (** ... *) doc comment");
    ( "domain-global",
      "top-level mutable state in a pool-driven library is shared across worker domains; \
       allocate it per run (from the seed) or suppress with an explicit justification" );
    ( "hot-queue",
      "Stdlib.Queue allocates one cons cell per element; hot-path simulation code \
       (lib/net, lib/sim) must use Phi_sim.Ring instead" );
    ( "packet-escape",
      "pooled packet handles die at release: construct packets only through the pool \
       (Packet.acquire_data / Packet.acquire_ack), never store a handle in a mutable \
       field, and never touch one after Packet.release" );
    ( "transport-unified",
      "one sender transport: outside lib/tcp, do not bind flows on Phi_net.Node directly \
       or call legacy Remy_sender entry points; build a Phi_tcp.Cc controller (Remy_cc \
       for Remy) and drive it through Phi_tcp.Sender / Phi_tcp.Source" );
    ( "hot-alloc",
      "allocation on a steady-state hot path: this site is reachable from the engine \
       loop / link pipeline / per-packet transport handlers through the call graph; \
       hoist the allocation to setup, use a pooled or flat representation, or suppress \
       with a justification" );
    ( "handle-lifetime",
      "pooled packet handle misused across control flow: used after Packet.release, \
       double-released, or acquired without a release or ownership transfer on every \
       path" );
    ( "domain-race",
      "module-level mutable state reachable from a Phi_runner.Pool job: worker domains \
       would share it unsynchronized; allocate it per job or suppress with a documented \
       exception" );
    ( "interpreted-lookup",
      "interpreted decision-plane lookup on a hot path: Rule_table.lookup walks the \
       whisker list and Policy.choice_for probes a hashtable on every call; compile \
       once at setup and take the flat form here (Compiled_table.lookup / \
       Policy.Compiled.choice_for)" )
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c || c = '\''
let is_op_char c = String.contains "!$%&*+-/<=>@^|~:" c

(* Tokens that may precede [ident = <float>] when the [=] is a binding
   (let, record field, functor arg, optional-argument default) rather
   than a comparison. *)
let binding_context =
  [ "let"; "and"; "rec"; "{"; ";"; ","; "with"; "mutable"; "method"; "val"; "module" ]

let float_constants =
  [
    "nan"; "infinity"; "neg_infinity"; "epsilon_float"; "max_float"; "min_float";
    "Float.nan"; "Float.infinity"; "Float.neg_infinity"; "Float.epsilon"; "Float.pi";
    "Float.max_float"; "Float.min_float"
  ]

let is_float_literal s =
  String.length s > 0
  && is_digit s.[0]
  && (not
        (String.length s > 1
        && s.[0] = '0'
        && (s.[1] = 'x' || s.[1] = 'X' || s.[1] = 'o' || s.[1] = 'O' || s.[1] = 'b'
          || s.[1] = 'B')))
  && (String.contains s '.' || String.contains s 'e' || String.contains s 'E')

let is_floatish s = is_float_literal s || List.mem s float_constants

let path_has_dir path dir =
  let needle = "/" ^ dir ^ "/" in
  let n = String.length path and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub path i m = needle || scan (i + 1)) in
  let prefix = dir ^ "/" in
  (String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix)
  || scan 0

(* Directories whose code runs inside Phi_runner.Pool worker domains:
   top-level mutable state there is shared mutable state. *)
let in_domain_pool path = path_has_dir path "lib/experiments" || path_has_dir path "lib/runner"

(* The per-packet hot path: every simulated packet crosses lib/net and
   lib/sim, so container choices there are perf-critical. *)
let in_hot_path path = path_has_dir path "lib/net" || path_has_dir path "lib/sim"

let in_lib path =
  let path = if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  let starts = String.length path >= 4 && String.sub path 0 4 = "lib/" in
  let contains =
    let n = String.length path in
    let rec scan i = i + 5 <= n && (String.sub path i 5 = "/lib/" || scan (i + 1)) in
    scan 0
  in
  starts || contains

(* {2 Scanner} *)

type scan = {
  tokens : (int * string) array;  (* (line, text), comments and strings stripped *)
  allows : (int * string) list;  (* (line, rule) from "phi-lint: allow" comments *)
}

(* Extract [allow] directives from one comment body. *)
let parse_allows ~line text acc =
  let n = String.length text in
  let directive = "phi-lint:" in
  let dn = String.length directive in
  let is_word c = (c >= 'a' && c <= 'z') || is_digit c || c = '-' in
  let rec skip_soft i =
    if i < n && (text.[i] = ' ' || text.[i] = '\t' || text.[i] = ',') then skip_soft (i + 1)
    else i
  in
  let read_word i =
    let j = ref i in
    while !j < n && is_word text.[!j] do incr j done;
    (String.sub text i (!j - i), !j)
  in
  let rec find i acc =
    if i + dn > n then acc
    else if String.sub text i dn = directive then begin
      let i = skip_soft (i + dn) in
      let word, i = read_word i in
      if word = "allow" then
        let rec take i acc =
          let i = skip_soft i in
          let word, j = read_word i in
          if word = "" then (acc, i) else take j ((line, word) :: acc)
        in
        let acc, i = take i acc in
        find i acc
      else find i acc
    end
    else find (i + 1) acc
  in
  find 0 acc

let scan_source src =
  let n = String.length src in
  let tokens = ref [] and allows = ref [] in
  let line = ref 1 and i = ref 0 in
  let emit text = tokens := (!line, text) :: !tokens in
  let bump c = if c = '\n' then incr line in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  (* Skip a string literal; [!i] is on the opening quote. *)
  let skip_string () =
    incr i;
    let fin = ref false in
    while (not !fin) && !i < n do
      (match src.[!i] with
      | '\\' -> if !i + 1 < n then (bump src.[!i + 1]; incr i)
      | '"' -> fin := true
      | c -> bump c);
      incr i
    done
  in
  (* Skip a quotation {id|...|id}; [!i] is on '{'. Returns false when it
     is not actually a quotation opener. *)
  let skip_quotation () =
    let j = ref (!i + 1) in
    while !j < n && (src.[!j] >= 'a' && src.[!j] <= 'z' || src.[!j] = '_') do incr j done;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ id ^ "}" in
      let cn = String.length closing in
      i := !j + 1;
      let fin = ref false in
      while (not !fin) && !i < n do
        if !i + cn <= n && String.sub src !i cn = closing then begin
          i := !i + cn;
          fin := true
        end
        else begin
          bump src.[!i];
          incr i
        end
      done;
      true
    end
    else false
  in
  (* Skip a (possibly nested) comment; [!i] is on the '('. Collects any
     phi-lint directives found inside. *)
  let skip_comment () =
    let start_line = !line in
    let buf = Buffer.create 64 in
    let depth = ref 0 in
    let fin = ref false in
    while (not !fin) && !i < n do
      if src.[!i] = '(' && peek 1 = '*' then begin
        incr depth;
        i := !i + 2
      end
      else if src.[!i] = '*' && peek 1 = ')' then begin
        decr depth;
        i := !i + 2;
        if !depth = 0 then fin := true
      end
      else if src.[!i] = '"' then begin
        (* String literals inside comments follow string lexing rules. *)
        let s0 = !i in
        skip_string ();
        Buffer.add_string buf (String.sub src s0 (Stdlib.min (!i - s0) (n - s0)))
      end
      else begin
        bump src.[!i];
        Buffer.add_char buf src.[!i];
        incr i
      end
    done;
    allows := parse_allows ~line:start_line (Buffer.contents buf) !allows
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && peek 1 = '*' then skip_comment ()
    else if c = '"' then skip_string ()
    else if c = '{' && not (skip_quotation ()) then begin
      emit "{";
      incr i
    end
    else if c = '\'' then begin
      (* Char literal vs. type variable / polymorphic variant tick. *)
      if peek 1 = '\\' then begin
        i := !i + 2;
        while !i < n && src.[!i] <> '\'' do incr i done;
        incr i
      end
      else if peek 2 = '\'' && peek 1 <> '\'' then i := !i + 3
      else incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      (* Merge dotted access paths (Stdlib.compare, t.field) into one
         token so qualified names can be matched exactly. *)
      while !i + 1 < n && src.[!i] = '.' && is_ident_start src.[!i + 1] do
        incr i;
        while !i < n && is_ident_char src.[!i] do incr i done
      done;
      emit (String.sub src start (!i - start))
    end
    else if is_digit c then begin
      let start = !i in
      while
        !i < n
        && (is_ident_char src.[!i]
           || src.[!i] = '.'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      emit (String.sub src start (!i - start))
    end
    else if is_op_char c then begin
      let start = !i in
      while !i < n && is_op_char src.[!i] do incr i done;
      emit (String.sub src start (!i - start))
    end
    else begin
      (match c with
      | '(' | ')' | '}' | '[' | ']' | ';' | ',' | '?' | '`' | '#' | '.' ->
        emit (String.make 1 c)
      | _ -> ());
      incr i
    end
  done;
  { tokens = Array.of_list (List.rev !tokens); allows = !allows }

(* {2 Rules} *)

let message_of rule =
  match List.assoc_opt rule rules with Some m -> m | None -> rule

let violation file line rule = { file; line; rule; message = message_of rule }

let starts_with ~prefix s =
  let pn = String.length prefix in
  String.length s >= pn && String.sub s 0 pn = prefix

let ends_with ~suffix s =
  let sn = String.length suffix and n = String.length s in
  n >= sn && String.sub s (n - sn) sn = suffix

(* [packet-escape] polices the pooled-packet ownership contract in the
   layers that handle live packets (lib/net, lib/tcp).  The pool module
   itself is exempt — it is the one place allowed to mint handles. *)
let in_packet_scope path =
  (path_has_dir path "lib/net" || path_has_dir path "lib/tcp")
  && not (ends_with ~suffix:"/packet.ml" path)
  && not (ends_with ~suffix:"/packet.mli" path)

(* [transport-unified] polices the single-sender-transport invariant:
   only lib/tcp (the transport itself) and lib/net (the substrate it
   binds to) may touch flow binding; everything above goes through
   Phi_tcp.Sender / Phi_tcp.Source with a Cc controller. *)
let in_transport_scope path =
  in_lib path && not (path_has_dir path "lib/tcp") && not (path_has_dir path "lib/net")

(* [interpreted-lookup] keeps the decision plane compiled where it is
   hot: the per-ack sender paths (lib/tcp, the Remy controller),
   per-connection setup (Phi_client), and the swarm's million-lookup
   client half.  The compilers themselves (Compiled_table,
   Policy.Compiled) must call the interpreted forms to lower them, and
   live outside this scope. *)
let in_decision_scope path =
  path_has_dir path "lib/tcp"
  || (path_has_dir path "lib/remy"
     && (ends_with ~suffix:"/remy_cc.ml" path || ends_with ~suffix:"/remy_cc.mli" path))
  || (path_has_dir path "lib/experiments" && ends_with ~suffix:"/swarm.ml" path)
  || (path_has_dir path "lib/core" && ends_with ~suffix:"/phi_client.ml" path)

let token_violations ~path { tokens; _ } =
  let lib = in_lib path in
  let hot = in_hot_path path in
  let packet_scope = in_packet_scope path in
  let transport_scope = in_transport_scope path in
  let decision_scope = in_decision_scope path in
  let out = ref [] in
  let add line rule = out := violation path line rule :: !out in
  let text k = if k >= 0 && k < Array.length tokens then snd tokens.(k) else "" in
  Array.iteri
    (fun k (line, tok) ->
      (match tok with
      | "Obj.magic" -> add line "obj-magic"
      | "compare" | "Stdlib.compare" -> add line "poly-compare"
      | "List.nth" -> add line "list-nth"
      | "Hashtbl.find" -> add line "hashtbl-find"
      | "failwith" | "Stdlib.failwith" -> if lib then add line "failwith"
      | "exit" | "Stdlib.exit" -> if lib then add line "exit"
      (* The legacy heap-allocating packet constructors: everything must
         go through the pool's acquire_data/acquire_ack. *)
      | "Packet.data" | "Packet.ack" -> if packet_scope then add line "packet-escape"
      (* A [mutable f : Packet.handle] record field retains a handle
         across events — it dangles the moment the packet is released.
         A handle-consuming callback field ([...: Packet.handle -> unit])
         stores a function, not a handle, and is fine. *)
      | "Packet.handle" ->
        if
          packet_scope
          && text (k - 1) = ":"
          && text (k - 3) = "mutable"
          && text (k + 1) <> "->"
        then add line "packet-escape"
      (* Touching a handle after releasing it on the same line: the
         cheap lexical slice of use-after-free (the [handle-lifetime]
         AST pass and the sanitizer's generation stamps own the
         cross-line cases).  Argument-shape-aware: [release pool h]
         takes the second argument, the partially applied or
         locally-opened [release h] takes the first. *)
      | "Packet.release" ->
        if packet_scope then begin
          let is_ident s = s <> "" && is_ident_start s.[0] in
          let a1 = text (k + 1) and a2 = text (k + 2) in
          let h, after =
            if is_ident a1 && is_ident a2 then (a2, k + 3)
            else if is_ident a1 then (a1, k + 2)
            else ("", k)
          in
          if h <> "" then begin
            let rec reused j =
              j < Array.length tokens
              && fst tokens.(j) = line
              && (snd tokens.(j) = h || reused (j + 1))
            in
            if reused after then add line "packet-escape"
          end
        end
      | "Node.bind_flow" | "Phi_net.Node.bind_flow" ->
        if transport_scope then add line "transport-unified"
      | _ -> ());
      if
        transport_scope
        && (tok = "Remy_sender"
           || starts_with ~prefix:"Remy_sender." tok
           || tok = "Phi_remy.Remy_sender"
           || starts_with ~prefix:"Phi_remy.Remy_sender." tok)
      then add line "transport-unified";
      (* Prefix-matched on purpose: [Rule_table.lookup_index] is the
         same list walk.  [Policy.Compiled.choice_for] is a different
         dotted token and stays legal. *)
      if
        decision_scope
        && (starts_with ~prefix:"Rule_table.lookup" tok
           || starts_with ~prefix:"Phi_remy.Rule_table.lookup" tok
           || tok = "Policy.choice_for" || tok = "Phi.Policy.choice_for")
      then add line "interpreted-lookup";
      if
        hot
        && (tok = "Queue" || starts_with ~prefix:"Queue." tok || tok = "Stdlib.Queue"
          || starts_with ~prefix:"Stdlib.Queue." tok)
      then add line "hot-queue";
      if tok = "=" || tok = "<>" then begin
        let next = text (k + 1) and prev = text (k - 1) in
        if is_floatish next || is_floatish prev then begin
          (* [ident = <float>] directly after let/field/default syntax is
             a binding, not a comparison. *)
          let before = text (k - 2) in
          let binding =
            List.mem before binding_context || (before = "(" && text (k - 3) = "?")
          in
          if not binding then add line "float-equal"
        end
      end)
    tokens;
  List.rev !out

let suppressed allows v =
  List.exists (fun (line, rule) -> rule = v.rule && (line = v.line || line = v.line - 1)) allows

let suppressed_anywhere allows rule = List.exists (fun (_, r) -> r = rule) allows

(* [domain-global]: a module-level [let] in a pool-driven library that
   binds a value built from a mutable-state constructor.

   Primary detection is the AST engine ({!Ast_scan}): any zero-parameter
   module-level binding whose right-hand side constructs mutable state
   anywhere outside a nested [fun] — nested in a record, indented over
   several lines, inside a submodule.  The lexical scan below remains as
   the fallback for sources that do not parse, with its historical
   limits: column-0 [let], constructor on the same line. *)
let mutable_constructors =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Atomic.make"; "Array.make"; "Bytes.create"; "Bytes.make"
  ]

let lexical_domain_global_violations ~path src { tokens; _ } =
  begin
    let by_line = Hashtbl.create 64 in
    Array.iter
      (fun (line, tok) ->
        let prev = match Hashtbl.find_opt by_line line with Some l -> l | None -> [] in
        Hashtbl.replace by_line line (tok :: prev))
      tokens;
    let line_tokens line =
      match Hashtbl.find_opt by_line line with Some l -> List.rev l | None -> []
    in
    let out = ref [] in
    List.iteri
      (fun i0 raw ->
        let line = i0 + 1 in
        if String.length raw >= 4 && String.sub raw 0 4 = "let " then
          match line_tokens line with
          | "let" :: rest ->
            let rest = match rest with "rec" :: r -> r | r -> r in
            (match rest with
            | _name :: next :: _ when next = "=" || next = ":" || next = "," ->
              if List.exists (fun t -> List.mem t mutable_constructors) rest then
                out := violation path line "domain-global" :: !out
            | _ -> ())
          | _ -> ())
      (String.split_on_char '\n' src);
    List.rev !out
  end

let domain_global_violations ~path src scan =
  if not (in_domain_pool path && ends_with ~suffix:".ml" path) then []
  else
    match Ast_scan.scan ~path src with
    | Error _ -> lexical_domain_global_violations ~path src scan
    | Ok m ->
      List.map
        (fun (g : Ast_scan.global) ->
          {
            file = path;
            line = g.g_line;
            rule = "domain-global";
            message = Printf.sprintf "%s (binds %s): %s" g.g_id g.g_what (message_of "domain-global");
          })
        m.m_globals

(* [handle-lifetime]: the per-function dataflow pass over pooled packet
   handles (see {!Handle_flow}), in the same scope as [packet-escape]. *)
let handle_lifetime_violations ~path src =
  if not (in_packet_scope path && ends_with ~suffix:".ml" path) then []
  else
    List.map
      (fun (f : Handle_flow.finding) ->
        { file = path; line = f.line; rule = "handle-lifetime"; message = f.message })
      (Handle_flow.check ~path src)

let starts_with_doc_comment src =
  let n = String.length src in
  let i = ref 0 in
  while !i < n && (src.[!i] = ' ' || src.[!i] = '\t' || src.[!i] = '\n' || src.[!i] = '\r') do
    incr i
  done;
  !i + 2 < n && src.[!i] = '(' && src.[!i + 1] = '*' && src.[!i + 2] = '*'

let lint_source ~path src =
  let scan = scan_source src in
  let vs =
    token_violations ~path scan
    @ domain_global_violations ~path src scan
    @ handle_lifetime_violations ~path src
  in
  let vs =
    if ends_with ~suffix:".mli" path && in_lib path && not (starts_with_doc_comment src)
    then violation path 1 "mli-doc" :: vs
    else vs
  in
  List.filter
    (fun v ->
      if v.rule = "mli-doc" then not (suppressed_anywhere scan.allows v.rule)
      else not (suppressed scan.allows v))
    vs

(* {2 Cross-module passes}

   [hot-alloc] and [domain-race] need the whole library at once: the
   per-file facts feed one call graph, the dataflow passes run on top,
   and each finding is filtered against its own file's allow
   directives (same line or the line above, like every other rule). *)
let cross_module_violations files =
  let mods =
    List.filter_map
      (fun (path, src) ->
        if in_lib path && ends_with ~suffix:".ml" path then
          match Ast_scan.scan ~path src with Ok m -> Some m | Error _ -> None
        else None)
      files
  in
  match mods with
  | [] -> []
  | _ ->
    let graph = Callgraph.build mods in
    let vs =
      List.map
        (fun (f : Effects.finding) ->
          { file = f.file; line = f.line; rule = "hot-alloc"; message = f.message })
        (Effects.violations graph)
      @ List.map
          (fun (f : Race.finding) ->
            { file = f.file; line = f.line; rule = "domain-race"; message = f.message })
          (Race.violations graph)
    in
    let allows_by_file = Hashtbl.create 16 in
    let allows_of path =
      match Hashtbl.find_opt allows_by_file path with
      | Some a -> a
      | None ->
        let a =
          match List.assoc_opt path files with
          | Some src -> (scan_source src).allows
          | None -> []
        in
        Hashtbl.replace allows_by_file path a;
        a
    in
    List.filter (fun v -> not (suppressed (allows_of v.file) v)) vs

let lint_tree files =
  let paths = List.map fst files in
  let have path = List.mem path paths in
  let missing =
    List.filter_map
      (fun (path, src) ->
        if
          ends_with ~suffix:".ml" path
          && in_lib path
          && not (have (path ^ "i"))
          && not (suppressed_anywhere (scan_source src).allows "missing-mli")
        then Some (violation path 1 "missing-mli")
        else None)
      files
  in
  let all =
    List.concat_map (fun (path, src) -> lint_source ~path src) files
    @ missing
    @ cross_module_violations files
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> Int.compare a.line b.line
      | c -> c)
    all

let to_string v = Printf.sprintf "%s:%d: %s: %s" v.file v.line v.rule v.message

(* {2 Machine-readable report} *)

let json_report vs =
  let module J = Phi_util.Json in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + match Hashtbl.find_opt tbl key with Some c -> c | None -> 0)
  in
  let by_rule = Hashtbl.create 16 and by_file = Hashtbl.create 16 in
  List.iter
    (fun v ->
      bump by_rule v.rule;
      bump by_file v.file)
    vs;
  let counts tbl =
    Hashtbl.fold (fun k c acc -> (k, J.Int c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  J.Obj
    [
      ( "violations",
        J.List
          (List.map
             (fun v ->
               J.Obj
                 [
                   ("file", J.String v.file);
                   ("line", J.Int v.line);
                   ("rule", J.String v.rule);
                   ("message", J.String v.message);
                 ])
             vs) );
      ("total", J.Int (List.length vs));
      ("by_rule", J.Obj (counts by_rule));
      ("by_file", J.Obj (counts by_file));
    ]
