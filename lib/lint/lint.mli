(** phi-lint: project-specific static analysis over OCaml sources.

    A line/token-level analyzer enforcing the correctness conventions of
    this repository: no polymorphic comparison (a silent NaN hazard on
    the float-carrying records that dominate this codebase), no partial
    stdlib lookups, no [failwith]/[exit] in library code, and a
    documented [.mli] for every library module.

    Two engines share one violation stream and one suppression
    mechanism:

    - The {b token engine} tokenizes the source (stripping comments and
      string literals) — dependency-free, microseconds per file.  It
      owns everything lexical: comment-hosted allow directives, [.mli]
      checks, and the pattern rules below.
    - The {b AST engine} parses each [.ml] with the compiler's own
      parser (compiler-libs) and runs dataflow on top: an
      allocation-effect lattice propagated over a project-wide call
      graph ([hot-alloc], see {!Effects}), an intraprocedural
      handle-lifetime analysis for pooled packets ([handle-lifetime],
      see {!Handle_flow}), and a reachability analysis from pool jobs
      to module-level mutable state ([domain-race], see {!Race};
      [domain-global] also uses the AST scan, falling back to the old
      lexical heuristic only for sources that do not parse).

    Violations from either engine can be suppressed with a
    [(* phi-lint: allow <rule> *)] comment on the same line or the line
    directly above.  Both engines run under the same [dune build @lint]
    tier-1 gate. *)

type violation = {
  file : string;
  line : int;  (** 1-based; file-scoped rules report line 1 *)
  rule : string;
  message : string;
}

val rules : (string * string) list
(** Every rule the analyzer knows, as [(name, description)]:
    - [obj-magic]: any use of [Obj.magic].
    - [poly-compare]: bare [compare] / [Stdlib.compare]; require a typed
      comparator ([Float.compare], [Int.compare], ...).
    - [float-equal]: [=] or [<>] against a float literal (or [nan],
      [infinity], ...); require [Float.equal] or an epsilon test.
    - [list-nth]: [List.nth]; require [List.nth_opt] or an array.
    - [hashtbl-find]: [Hashtbl.find]; require [Hashtbl.find_opt].
    - [failwith]: [failwith] inside [lib/]; require a typed exception.
    - [exit]: [exit] inside [lib/]; only binaries may terminate.
    - [missing-mli]: a [lib/**/*.ml] with no sibling [.mli].
    - [mli-doc]: a [lib/**/*.mli] that does not open with a doc comment.
    - [domain-global]: a top-level [let] binding mutable state ([ref],
      [Hashtbl.create], [Atomic.make], ...) in a library whose code runs
      inside {!Phi_runner.Pool} worker domains ([lib/experiments],
      [lib/runner]) — such state is shared across domains and breaks the
      pool's per-job isolation.  Lexical approximation: the [let] must
      start in column 0, bind a value (not a function), and construct
      the mutable state on the same line.
    - [hot-queue]: any [Queue]/[Stdlib.Queue] use inside the per-packet
      hot-path libraries ([lib/net], [lib/sim]) — the stdlib queue
      allocates a cons cell per element; use {!Phi_sim.Ring}.
    - [packet-escape]: violations of the pooled-packet ownership
      contract in the packet-handling layers ([lib/net], [lib/tcp],
      except the pool module itself): constructing a packet through the
      legacy [Packet.data]/[Packet.ack] heap constructors instead of the
      pool's acquire functions, declaring a [mutable] record field of
      type [Packet.handle] (retaining a handle across events dangles it
      once the packet is released; handle-consuming callback fields are
      fine), or mentioning a handle again on the same line after
      [Packet.release] passed it back to the free list.
    - [transport-unified]: library code outside [lib/tcp] / [lib/net]
      that binds flows on [Phi_net.Node] directly or references the
      deleted [Remy_sender] transport — there is exactly one sender
      transport; algorithms are [Phi_tcp.Cc] controllers driven by
      [Phi_tcp.Sender]/[Phi_tcp.Source].
    - [hot-alloc] (AST): an allocation site (closure, tuple/record/
      constructor, boxed-float store, array, or a curated allocating
      stdlib call) in a function reachable from the hot entry points
      (engine loop, link pipeline, per-packet transport handlers)
      through non-cold call-graph edges.  Error paths ([raise] /
      [invalid_arg] arguments), sanitizer-guarded branches
      ([Invariant.enabled ()] / [!Invariant.armed]) and
      [@inline never] cold helpers are excluded.
    - [handle-lifetime] (AST): per-function dataflow over pooled packet
      handles in the [packet-escape] scope — use after
      [Packet.release] (any distance, any control flow), double
      release, and handles acquired but neither released nor
      ownership-transferred on every path.
    - [domain-race] (AST): module-level mutable state referenced by any
      function reachable (through the call graph, cold edges included)
      from a function that fans work out via [Pool.map] /
      [Pool.try_map] — reported at the global's definition line.
      Unlike [domain-global] (which polices where pool-adjacent code
      {e lives}), this follows actual reachability from the fan-out
      sites across modules.
    - [interpreted-lookup]: a call to the interpreted decision plane
      ([Rule_table.lookup]/[lookup_index] or [Policy.choice_for]) from a
      hot module ([lib/tcp], the Remy controller [lib/remy/remy_cc.ml],
      the swarm client half [lib/experiments/swarm.ml], or
      [lib/core/phi_client.ml]) — hot paths must take the compiled flat
      forms ([Compiled_table.lookup], [Policy.Compiled.choice_for]);
      only the compilers themselves lower via the interpreted scan. *)

val in_lib : string -> bool
(** Whether a path is under a [lib/] directory, i.e. subject to the
    library-only rules. *)

val in_domain_pool : string -> bool
(** Whether a path is under [lib/experiments/] or [lib/runner/], i.e.
    subject to the [domain-global] rule because its code is executed by
    {!Phi_runner.Pool} worker domains. *)

val in_hot_path : string -> bool
(** Whether a path is under [lib/net/] or [lib/sim/], i.e. subject to
    the [hot-queue] rule because its code runs once (or more) per
    simulated packet. *)

val in_packet_scope : string -> bool
(** Whether a path is subject to the [packet-escape] rule: under
    [lib/net/] or [lib/tcp/] but not the pool module
    ([packet.ml]/[packet.mli]) itself, which is the one place allowed to
    mint and recycle handles. *)

val in_transport_scope : string -> bool
(** Whether a path is subject to the [transport-unified] rule: library
    code outside [lib/tcp/] (the transport) and [lib/net/] (the
    substrate it binds to). *)

val in_decision_scope : string -> bool
(** Whether a path is subject to the [interpreted-lookup] rule: the
    decision-plane hot modules ([lib/tcp/], [lib/remy/remy_cc.ml],
    [lib/experiments/swarm.ml], [lib/core/phi_client.ml]).  The
    compilers ([lib/remy/compiled_table.ml], [lib/core/policy.ml]) are
    deliberately outside — lowering needs the interpreted forms. *)

val lint_source : path:string -> string -> violation list
(** Token-level rules plus (for [.mli] paths) the [mli-doc] rule, with
    [phi-lint: allow] suppressions already applied.  [path] is used for
    diagnostics and to decide whether library-only rules apply; the
    source itself is passed as a string, so fixtures need no files. *)

val lint_tree : (string * string) list -> violation list
(** [lint_tree files] lints every [(path, contents)] pair, adds the
    cross-file [missing-mli] check, and runs the cross-module AST
    passes ([hot-alloc], [domain-race]) over the [lib/] sources in the
    set.  Results are sorted by file and line. *)

val to_string : violation -> string
(** Renders as [file:line: rule: message] — one diagnostic per line. *)

val json_report : violation list -> Phi_util.Json.t
(** The machine-readable report written by [phi_lint --json]: an object
    with [violations] (file/line/rule/message records, in input order),
    [total], and [by_rule] / [by_file] count objects with keys
    sorted. *)
