(* domain-race: mutable module-level state reachable from pool jobs.

   Phi_runner.Pool fans work out across domains; any module-level
   mutable binding touched by code a pool job can reach is a data race
   waiting for a reproduction nobody will enjoy.  The old check was a
   column-0 lexical heuristic over files under lib/experiments and
   lib/runner; this pass instead takes every function that references
   a multi-domain entry point — Pool.map / Pool.try_map, the Pdes
   window and drain hooks, or the Dynamics.at / Dynamics.every script
   combinators whose callbacks run inside pool-fanned scenario cells —
   as a root, walks the call graph including cold edges (a race in an
   error path is still a race), and flags each module-level mutable
   global any reachable function refers to.

   Reports are deduplicated per global and placed at the global's
   definition line — that is where the fix (thread the state through
   the job, or justify the exception) lives. *)

type finding = { file : string; line : int; message : string }

let render_chain chain = String.concat " -> " chain

let violations graph =
  let roots =
    List.filter (fun (f : Ast_scan.func) -> f.f_pool_spawn) (Callgraph.funcs graph)
  in
  let paths = Callgraph.reach graph ~roots ~include_cold:true in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (f : Ast_scan.func) ->
      match Hashtbl.find_opt paths f.f_id with
      | None -> ()
      | Some chain ->
        let caller_module = Callgraph.caller_module_of f in
        List.iter
          (fun (c : Ast_scan.call) ->
            match Callgraph.resolve_global graph ~caller_module c.c_path with
            | None -> ()
            | Some g ->
              if not (Hashtbl.mem seen g.g_id) then begin
                Hashtbl.replace seen g.g_id ();
                out :=
                  {
                    file = g.g_file;
                    line = g.g_line;
                    message =
                      Printf.sprintf
                        "mutable global %s (%s) touched by %s, reachable from pool job via %s"
                        g.g_id g.g_what f.f_id (render_chain chain);
                  }
                  :: !out
              end)
          f.f_calls)
    (Callgraph.funcs graph);
  List.rev !out
