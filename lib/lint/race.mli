(** domain-race: mutable module-level state reachable from pool jobs.

    Roots are every function referencing [Pool.map] / [Pool.try_map];
    reachability includes cold edges (a race in an error path is still
    a race).  One finding per mutable global, reported at the global's
    definition line and naming the accessing function plus the call
    chain from the pool fan-out. *)

type finding = { file : string; line : int; message : string }

val violations : Callgraph.t -> finding list
