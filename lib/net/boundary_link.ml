module Engine = Phi_sim.Engine
module Pdes = Phi_sim.Pdes

(* A boundary link replaces an ordinary {!Link} at an island cut.  The
   egress half — queueing and serialization — is a real [Link] on the
   source island's engine, so drop-tail/RED behaviour, counters and the
   conservation sanitizer all apply unchanged.  Propagation, however,
   crosses domains: when the egress link finishes serializing a packet
   (its [set_handoff] hook), the packet's fields are flattened into a
   fixed-capacity SPSC ring of plain ints/floats and the source-pool
   cell is released.  The destination island copies the ring into a
   private pending queue during the between-windows drain phase (see
   [Pdes.on_drain]) and re-materializes each record into its own pool
   when the arrival time comes.

   Two rules keep this deterministic:

   - The consumer never reads the ring mid-window — only in the drain
     phase, with both islands quiescent at a barrier.  (Consuming
     eagerly would make the deliver port's re-arm decisions depend on
     producer progress, i.e. on wall-clock scheduling.)

   - Arrival times are computed on the producer side as
     [now +. delay_s] — the same IEEE expression the serial engine's
     [schedule_port_after] uses — so a partitioned run delivers at
     bit-identical virtual times.

   The ring must never block the producer: the consumer may be parked
   at the window barrier waiting for the producer, so blocking would
   deadlock.  Overflow is therefore a hard failure with a sizing hint —
   capacity bounds the traffic one window can emit, and the default is
   far above what a lookahead-bounded window can serialize. *)

(* Flattened record layout. *)
let ri_flow = 0
let ri_src = 1
let ri_dst = 2
let ri_seq = 3 (* data: segment seq; ack: next_expected *)
let ri_flags = 4
let ri_sack0 = 5 (* lo/hi pairs, [max_sack_blocks] of them *)
let ints_per = ri_sack0 + (2 * Packet.max_sack_blocks)
let rf_arrival = 0
let rf_sent_at = 1
let rf_echo_sent_at = 2
let rf_echo_tx_time = 3
let floats_per = 4

(* [ri_flags] bits. *)
let fl_data = 1
let fl_retransmit = 2
let fl_ce = 4
let fl_has_echo = 8
let fl_ece = 16
let fl_sack_shift = 5

exception Fault of string

type t = {
  egress : Link.t;
  src_engine : Engine.t;
  src_pool : Packet.pool;
  src_island : Pdes.island;
  dst_engine : Engine.t;
  dst_pool : Packet.pool;
  dst_island : Pdes.island;
  delay_s : float;
  (* SPSC ring: producer = source island (inside its window), consumer =
     destination island (drain phase only).  [head]/[tail] are monotonic
     operation counts; slot = count mod capacity.  The consumer's reads
     of the payload arrays are ordered after the producer's writes by
     the [Atomic] tail (and, belt and braces, by the window barrier that
     separates every produce from its consume). *)
  capacity : int;
  ring_ints : int array;
  ring_floats : floatarray;
  head : int Atomic.t;
  tail : int Atomic.t;
  (* Destination-private pending queue (circular, growable); only the
     destination island ever touches it.  Arrivals are nondecreasing —
     the egress link is FIFO and the propagation delay constant — so the
     head entry is always the next delivery. *)
  mutable p_ints : int array;
  mutable p_floats : floatarray;
  mutable p_cap : int;
  mutable p_head : int;
  mutable p_len : int;
  mutable deliver_port : Engine.port;
  mutable armed : bool;
  mutable receiver : Packet.handle -> unit;
  mutable delivered : int;
}

let set_receiver t f = t.receiver <- f
let egress t = t.egress
let delay_s t = t.delay_s
let delivered t = t.delivered
let in_transit t = Atomic.get t.tail - Atomic.get t.head + t.p_len

(* Producer side: runs on the source island inside its window, via the
   egress link's handoff hook.  Allocation-free except on overflow. *)
let handoff t pkt =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head >= t.capacity then
    raise
      (Fault
         (Printf.sprintf
            "Boundary_link: ring overflow (%d entries); a window emitted more \
             cross-island packets than the ring holds — raise ~ring_capacity"
            t.capacity));
  let bi = tail mod t.capacity * ints_per in
  let bf = tail mod t.capacity * floats_per in
  let pool = t.src_pool in
  Array.unsafe_set t.ring_ints (bi + ri_flow) (Packet.flow pool pkt);
  Array.unsafe_set t.ring_ints (bi + ri_src) (Packet.src pool pkt);
  Array.unsafe_set t.ring_ints (bi + ri_dst) (Packet.dst pool pkt);
  Array.unsafe_set t.ring_ints (bi + ri_seq) (Packet.seq pool pkt);
  let nsack = if Packet.is_data pool pkt then 0 else Packet.sack_count pool pkt in
  let flags =
    (if Packet.is_data pool pkt then fl_data else 0)
    lor (if Packet.is_data pool pkt && Packet.retransmit pool pkt then fl_retransmit else 0)
    lor (if Packet.ce pool pkt then fl_ce else 0)
    lor (if (not (Packet.is_data pool pkt)) && Packet.ack_has_echo pool pkt then fl_has_echo
         else 0)
    lor (if (not (Packet.is_data pool pkt)) && Packet.ack_ece pool pkt then fl_ece else 0)
    lor (nsack lsl fl_sack_shift)
  in
  Array.unsafe_set t.ring_ints (bi + ri_flags) flags;
  for i = 0 to nsack - 1 do
    Array.unsafe_set t.ring_ints (bi + ri_sack0 + (2 * i)) (Packet.sack_lo pool pkt i);
    Array.unsafe_set t.ring_ints (bi + ri_sack0 + (2 * i) + 1) (Packet.sack_hi pool pkt i)
  done;
  (* Same expression as the serial engine's [schedule_port_after]:
     bit-identical arrival times partitioned or not. *)
  Float.Array.unsafe_set t.ring_floats (bf + rf_arrival) (Engine.now t.src_engine +. t.delay_s);
  Float.Array.unsafe_set t.ring_floats (bf + rf_sent_at) (Packet.sent_at pool pkt);
  Float.Array.unsafe_set t.ring_floats (bf + rf_echo_sent_at)
    (if Packet.is_data pool pkt then 0. else Packet.ack_echo_sent_at pool pkt);
  Float.Array.unsafe_set t.ring_floats (bf + rf_echo_tx_time)
    (if Packet.is_data pool pkt then 0. else Packet.ack_echo_tx_time pool pkt);
  Atomic.set t.tail (tail + 1);
  Packet.release pool pkt

(* Destination-private queue helpers. *)

let p_grow t =
  let cap = t.p_cap * 2 in
  let ints = Array.make (cap * ints_per) 0 in
  let floats = Float.Array.make (cap * floats_per) 0. in
  for i = 0 to t.p_len - 1 do
    let src = (t.p_head + i) mod t.p_cap in
    Array.blit t.p_ints (src * ints_per) ints (i * ints_per) ints_per;
    Float.Array.blit t.p_floats (src * floats_per) floats (i * floats_per) floats_per
  done;
  t.p_ints <- ints;
  t.p_floats <- floats;
  t.p_cap <- cap;
  t.p_head <- 0

let p_head_arrival t =
  Float.Array.get t.p_floats ((t.p_head * floats_per) + rf_arrival)

(* Materialize the head pending record into the destination pool and
   hand it to the receiver. *)
let on_deliver t =
  let bi = t.p_head * ints_per in
  let bf = t.p_head * floats_per in
  let flags = t.p_ints.(bi + ri_flags) in
  let flow = t.p_ints.(bi + ri_flow) in
  let src = t.p_ints.(bi + ri_src) in
  let dst = t.p_ints.(bi + ri_dst) in
  let seq = t.p_ints.(bi + ri_seq) in
  let sent_at = Float.Array.get t.p_floats (bf + rf_sent_at) in
  let pkt =
    if flags land fl_data <> 0 then begin
      let h =
        Packet.acquire_data t.dst_pool ~flow ~src ~dst ~seq ~now:sent_at
          ~retransmit:(flags land fl_retransmit <> 0)
      in
      if flags land fl_ce <> 0 then Packet.mark_ce t.dst_pool h;
      h
    end
    else begin
      let h =
        Packet.acquire_ack t.dst_pool ~flow ~src ~dst ~next_expected:seq
          ~has_echo:(flags land fl_has_echo <> 0)
          ~echo_sent_at:(Float.Array.get t.p_floats (bf + rf_echo_sent_at))
          ~echo_tx_time:(Float.Array.get t.p_floats (bf + rf_echo_tx_time))
          ~ece:(flags land fl_ece <> 0) ~now:sent_at
      in
      for i = 0 to (flags lsr fl_sack_shift) - 1 do
        Packet.add_sack t.dst_pool h ~lo:t.p_ints.(bi + ri_sack0 + (2 * i))
          ~hi:t.p_ints.(bi + ri_sack0 + (2 * i) + 1)
      done;
      h
    end
  in
  t.p_head <- (t.p_head + 1) mod t.p_cap;
  t.p_len <- t.p_len - 1;
  t.delivered <- t.delivered + 1;
  t.receiver pkt;
  if t.p_len > 0 then
    Engine.schedule_port_at t.dst_engine ~time:(p_head_arrival t) t.deliver_port
  else t.armed <- false

(* Consumer side: runs in the destination island's drain phase, with
   both islands parked at the window barrier. *)
let drain t =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail > head then begin
    (* The conservative bound this whole module exists to maintain:
       everything now in the ring was emitted before the source's
       published horizon, which the window scheme keeps at least level
       with ours. *)
    if Pdes.horizon_s t.src_island < Pdes.horizon_s t.dst_island then
      raise (Fault "Boundary_link: source island horizon behind destination");
    for i = head to tail - 1 do
      if t.p_len = t.p_cap then p_grow t;
      let slot = (t.p_head + t.p_len) mod t.p_cap in
      Array.blit t.ring_ints (i mod t.capacity * ints_per) t.p_ints (slot * ints_per) ints_per;
      Float.Array.blit t.ring_floats
        (i mod t.capacity * floats_per)
        t.p_floats (slot * floats_per) floats_per;
      t.p_len <- t.p_len + 1
    done;
    Atomic.set t.head tail;
    if not t.armed then begin
      t.armed <- true;
      Engine.schedule_port_at t.dst_engine ~time:(p_head_arrival t) t.deliver_port
    end
  end

let create coordinator ~src ~dst ~src_pool ~dst_pool ~bandwidth_bps ~delay_s ~capacity_pkts
    ?(ring_capacity = 1 lsl 14) () =
  if ring_capacity < 1 then invalid_arg "Boundary_link.create: ring_capacity must be >= 1";
  if not (Float.is_finite delay_s) || delay_s <= 0. then
    invalid_arg "Boundary_link.create: delay must be positive (it is the lookahead)";
  if Pdes.index src = Pdes.index dst then
    invalid_arg "Boundary_link.create: source and destination island coincide";
  let src_engine = Pdes.engine src in
  let dst_engine = Pdes.engine dst in
  let egress = Link.create src_engine src_pool ~bandwidth_bps ~delay_s ~capacity_pkts in
  let p_cap = 64 in
  let t =
    {
      egress;
      src_engine;
      src_pool;
      src_island = src;
      dst_engine;
      dst_pool;
      dst_island = dst;
      delay_s;
      capacity = ring_capacity;
      ring_ints = Array.make (ring_capacity * ints_per) 0;
      ring_floats = Float.Array.make (ring_capacity * floats_per) 0.;
      head = Atomic.make 0;
      tail = Atomic.make 0;
      p_ints = Array.make (p_cap * ints_per) 0;
      p_floats = Float.Array.make (p_cap * floats_per) 0.;
      p_cap;
      p_head = 0;
      p_len = 0;
      deliver_port = Engine.port dst_engine (fun () -> ());
      armed = false;
      receiver = (fun _ -> invalid_arg "Boundary_link: receiver not set");
      delivered = 0;
    }
  in
  t.deliver_port <- Engine.port dst_engine (fun () -> on_deliver t);
  Link.set_handoff egress (fun pkt -> handoff t pkt);
  Pdes.note_lookahead coordinator delay_s;
  Pdes.on_drain dst (fun () -> drain t);
  t
