(** Cross-island link for the conservative parallel engine.

    Replaces an ordinary {!Link} wherever a topology is cut into
    [Phi_sim.Pdes] islands.  The egress half (queue + serialization) is
    a real {!Link} on the {e source} island — identical drop, RED, ECN
    and counter behaviour — while propagation crosses the cut: each
    serialized packet is flattened into a fixed-capacity SPSC ring (and
    its source-pool cell released), and the destination island drains
    the ring between windows, re-materializing each record into its own
    pool at the recorded arrival time.  Arrival times are computed with
    the same IEEE expression the serial engine uses, so a partitioned
    run delivers at bit-identical virtual times.

    The link's propagation delay is the boundary's {e lookahead}; it is
    registered with the coordinator at creation, bounding the window
    size ([Pdes.run] refuses windows larger than the minimum lookahead).

    The ring never blocks the producer (the consumer may be parked at
    the window barrier, so blocking would deadlock): overflow raises
    {!Fault} with a sizing hint instead.  The default capacity (16384
    entries) far exceeds what a lookahead-bounded window can serialize
    on any realistic link. *)

type t

exception Fault of string
(** A boundary invariant broke: the SPSC ring overflowed (a window
    emitted more cross-island packets than the ring holds — raise
    [~ring_capacity]) or the source island's published horizon fell
    behind the destination's at drain time (a coordinator bug; the
    conservative window scheme is supposed to make this impossible). *)

val create :
  Phi_sim.Pdes.t ->
  src:Phi_sim.Pdes.island ->
  dst:Phi_sim.Pdes.island ->
  src_pool:Packet.pool ->
  dst_pool:Packet.pool ->
  bandwidth_bps:float ->
  delay_s:float ->
  capacity_pkts:int ->
  ?ring_capacity:int ->
  unit ->
  t
(** Build the boundary: creates the egress {!Link} on [src]'s engine,
    registers the propagation delay as lookahead with the coordinator,
    and registers the drain on [dst].  [delay_s] must be strictly
    positive (zero lookahead admits no parallel window) and the two
    islands distinct.  Like ordinary links, construction is serial
    wiring — it must happen before [Pdes.run]. *)

val egress : t -> Link.t
(** The source-side link; route traffic into the boundary by sending to
    this (e.g. from a {!Node} forwarding table).  Its delivery counters
    count packets that completed serialization and entered the ring. *)

val set_receiver : t -> (Packet.handle -> unit) -> unit
(** Where re-materialized packets go on the destination island —
    typically [Node.receive] of the island's ingress router.  The
    receiver takes ownership of each handle (drawn from [dst_pool]).
    Must be set before traffic flows. *)

val delay_s : t -> float
(** Propagation delay across the cut (= this boundary's lookahead). *)

val delivered : t -> int
(** Packets materialized and handed to the destination receiver. *)

val in_transit : t -> int
(** Records currently crossing: still in the ring plus drained but not
    yet delivered.  After a run ends mid-flight these are dropped on the
    floor (their pool cells were already released at serialization, so
    nothing leaks). *)
