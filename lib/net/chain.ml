module Engine = Phi_sim.Engine

type spec = {
  hops : int;
  hop_bw_bps : float array;
  hop_delay_s : float;
  buffer_bdp_factor : float;
  access_bw_bps : float;
  access_delay_s : float;
}

let default_spec ~hops =
  {
    hops;
    hop_bw_bps = Array.make hops 15e6;
    hop_delay_s = 0.020;
    buffer_bdp_factor = 5.;
    access_bw_bps = 1e9;
    access_delay_s = 0.001;
  }

(* A hop's BDP is computed against a nominal two-hop-RTT path through it;
   what matters for the experiments is that buffers scale with hop speed. *)
let hop_buffer_pkts spec ~hop =
  if hop < 0 || hop >= spec.hops then invalid_arg "Chain.hop_buffer_pkts: bad hop";
  let rtt = 2. *. (spec.hop_delay_s +. (2. *. spec.access_delay_s)) in
  let bdp_bytes = spec.hop_bw_bps.(hop) *. rtt /. 8. in
  Stdlib.max 2
    (int_of_float (Float.round (spec.buffer_bdp_factor *. bdp_bytes /. float_of_int Packet.mss)))

(* All hop links of a chain share one delay, so every cut is equally
   good lookahead-wise and [Pdes.plan_cuts] reduces to an even split —
   but routing through it keeps the one partition planner authoritative
   for every line-shaped topology. *)
let cut_hops spec ~islands =
  if spec.hops < 1 then invalid_arg "Chain.cut_hops: need at least one hop";
  Phi_sim.Pdes.plan_cuts ~delays:(Array.make spec.hops spec.hop_delay_s) ~islands

type t = {
  engine : Engine.t;
  spec : spec;
  pool : Packet.pool;
  long_sender : Node.t;
  long_receiver : Node.t;
  cross_senders : Node.t array;
  cross_receivers : Node.t array;
  routers : Node.t array;
  hop_links : Link.t array;
  reverse_hop_links : Link.t array;
}

(* Node id scheme (stable and readable in traces). *)
let long_sender_id _t = 0
let long_receiver_id _t = 1
let cross_sender_id _t i = 100 + i
let cross_receiver_id _t i = 200 + i
let router_id i = 300 + i

let create engine spec =
  if spec.hops < 1 then invalid_arg "Chain.create: need at least one hop";
  if Array.length spec.hop_bw_bps <> spec.hops then
    invalid_arg "Chain.create: hop_bw_bps length must equal hops";
  Array.iter
    (fun bw -> if bw <= 0. then invalid_arg "Chain.create: hop bandwidth must be positive")
    spec.hop_bw_bps;
  let hops = spec.hops in
  let pool = Packet.create_pool () in
  let routers = Array.init (hops + 1) (fun i -> Node.create engine pool ~id:(router_id i)) in
  let long_sender = Node.create engine pool ~id:0 in
  let long_receiver = Node.create engine pool ~id:1 in
  let cross_senders = Array.init hops (fun i -> Node.create engine pool ~id:(100 + i)) in
  let cross_receivers = Array.init hops (fun i -> Node.create engine pool ~id:(200 + i)) in
  let access ~to_ =
    let link =
      Link.create engine pool ~bandwidth_bps:spec.access_bw_bps ~delay_s:spec.access_delay_s
        ~capacity_pkts:10_000
    in
    Link.set_receiver link (Node.receive to_);
    link
  in
  let hop_link i ~reverse =
    let link =
      Link.create engine pool ~bandwidth_bps:spec.hop_bw_bps.(i) ~delay_s:spec.hop_delay_s
        ~capacity_pkts:(hop_buffer_pkts spec ~hop:i)
    in
    let dst = if reverse then routers.(i) else routers.(i + 1) in
    Link.set_receiver link (Node.receive dst);
    link
  in
  let hop_links = Array.init hops (fun i -> hop_link i ~reverse:false) in
  let reverse_hop_links = Array.init hops (fun i -> hop_link i ~reverse:true) in
  (* End hosts: single access link up to their router; default route. *)
  Node.set_default_route long_sender (access ~to_:routers.(0));
  Node.set_default_route long_receiver (access ~to_:routers.(hops));
  Array.iteri
    (fun i sender -> Node.set_default_route sender (access ~to_:routers.(i)))
    cross_senders;
  Array.iteri
    (fun i receiver -> Node.set_default_route receiver (access ~to_:routers.(i + 1)))
    cross_receivers;
  (* Router-to-host access links. *)
  let to_long_sender = access ~to_:long_sender in
  let to_long_receiver = access ~to_:long_receiver in
  let to_cross_sender = Array.init hops (fun i -> access ~to_:cross_senders.(i)) in
  let to_cross_receiver = Array.init hops (fun i -> access ~to_:cross_receivers.(i)) in
  (* Routes at router [i], for every destination in the network. *)
  for i = 0 to hops do
    let router = routers.(i) in
    (* Long sender lives off router 0. *)
    if i = 0 then Node.add_route router ~dst:0 to_long_sender
    else Node.add_route router ~dst:0 reverse_hop_links.(i - 1);
    (* Long receiver lives off router [hops]. *)
    if i = hops then Node.add_route router ~dst:1 to_long_receiver
    else Node.add_route router ~dst:1 hop_links.(i);
    for j = 0 to hops - 1 do
      (* Cross sender [j] homes at router [j]. *)
      (if i = j then Node.add_route router ~dst:(100 + j) to_cross_sender.(j)
       else if i > j then Node.add_route router ~dst:(100 + j) reverse_hop_links.(i - 1)
       else Node.add_route router ~dst:(100 + j) hop_links.(i));
      (* Cross receiver [j] homes at router [j + 1]. *)
      if i = j + 1 then Node.add_route router ~dst:(200 + j) to_cross_receiver.(j)
      else if i > j + 1 then Node.add_route router ~dst:(200 + j) reverse_hop_links.(i - 1)
      else Node.add_route router ~dst:(200 + j) hop_links.(i)
    done
  done;
  {
    engine;
    spec;
    pool;
    long_sender;
    long_receiver;
    cross_senders;
    cross_receivers;
    routers;
    hop_links;
    reverse_hop_links;
  }
