(** Parking-lot (chain) topology: several bottleneck hops in a row.

    One long path crosses every hop, and each hop carries its own local
    cross traffic — the classic multi-bottleneck arrangement.  The
    dumbbell of Figure 1 is all the paper's experiments need, but a
    provider's context server is keyed by *path*; this topology is what
    exercises several distinct bottlenecks (and hence several contexts)
    at once.

    Node layout: routers [r_0 .. r_hops]; hop link [i] joins [r_i] to
    [r_i+1] (with a mirror reverse link for ACKs).  The long sender homes
    at [r_0], the long receiver at [r_hops]; cross sender [i] homes at
    [r_i] and its receiver at [r_i+1], so cross pair [i] loads exactly
    hop [i]. *)

type spec = {
  hops : int;  (** bottleneck links in the chain (>= 1) *)
  hop_bw_bps : float array;  (** per-hop bandwidth; length [hops] *)
  hop_delay_s : float;  (** one-way propagation per hop *)
  buffer_bdp_factor : float;  (** per-hop buffer as a multiple of that hop's BDP *)
  access_bw_bps : float;
  access_delay_s : float;
}

val default_spec : hops:int -> spec
(** Every hop at 15 Mb/s, 20 ms per hop, buffer 5 x BDP, 1 Gb/s access. *)

type t = {
  engine : Phi_sim.Engine.t;
  spec : spec;
  pool : Packet.pool;  (** the packet slab shared by every node and link *)
  long_sender : Node.t;
  long_receiver : Node.t;
  cross_senders : Node.t array;  (** one per hop *)
  cross_receivers : Node.t array;
  routers : Node.t array;
  hop_links : Link.t array;  (** forward direction *)
  reverse_hop_links : Link.t array;
}

val create : Phi_sim.Engine.t -> spec -> t
(** Build the chain and wire all routes in both directions.  Raises
    [Invalid_argument] on inconsistent specs. *)

val long_sender_id : t -> int
val long_receiver_id : t -> int
val cross_sender_id : t -> int -> int
val cross_receiver_id : t -> int -> int

val hop_buffer_pkts : spec -> hop:int -> int
(** Queue capacity of the given hop. *)

val cut_hops : spec -> islands:int -> int list
(** Which hop links to replace with [Boundary_link]s to split the chain
    into [islands] contiguous segments — [Phi_sim.Pdes.plan_cuts] over
    the per-hop delays (uniform in a chain, so the cuts land on an even
    split; the hop delay is the resulting lookahead).  Raises
    [Invalid_argument] when [islands] exceeds [hops + 1] or is < 1. *)
