module Engine = Phi_sim.Engine
module Ring = Phi_sim.Ring
module Invariant = Phi_sim.Invariant

type red_params = {
  min_threshold : int;
  max_threshold : int;
  max_probability : float;
  weight : float;
  mark_ecn : bool;
}

let default_red ?(ecn = false) ~capacity_pkts () =
  let min_threshold = Stdlib.max 5 (capacity_pkts / 12) in
  {
    min_threshold;
    max_threshold = 3 * min_threshold;
    max_probability = 0.1;
    weight = 0.002;
    mark_ecn = ecn;
  }

type discipline = Drop_tail | Red of red_params

type t = {
  engine : Engine.t;
  bandwidth_bps : float;
  delay_s : float;
  capacity_pkts : int;
  queue : Packet.t Ring.t;
  (* Packets serialized but still propagating.  Every delivery on a link
     takes the same [delay_s], so deliveries complete in FIFO order and
     the pre-registered delivery port can simply pop this ring — no
     per-packet closure capturing the packet. *)
  in_flight : Packet.t Ring.t;
  mutable tx_done_port : Engine.port;
  mutable deliver_port : Engine.port;
  (* Serialization time of the packet at the head of [queue], recorded
     when its service starts. *)
  mutable in_service_tx : float;
  (* One-entry [tx_time] memo.  Traffic on a link is dominated by one or
     two packet sizes (MSS data, 40-byte ACKs), so this removes the
     per-packet division while keeping the exact IEEE quotient —
     multiplying by a precomputed 1/bandwidth would perturb event times
     in the last ulp and break bit-for-bit reproducibility against
     recorded runs. *)
  mutable memo_size : int;
  mutable memo_tx : float;
  mutable receiver : Packet.t -> unit;
  mutable busy : bool;
  mutable packets_offered : int;
  mutable packets_delivered : int;
  mutable bytes_offered : int;
  mutable bytes_delivered : int;
  mutable bytes_dropped : int;
  mutable drops : int;
  mutable busy_time : float;
  mutable total_queue_wait : float;
  mutable fault : (Phi_util.Prng.t * float) option;
  mutable discipline : discipline;
  mutable red_rng : Phi_util.Prng.t option;
  mutable red_avg : float;  (* RED's average queue estimate *)
  mutable ecn_marks : int;
}

let set_receiver t f = t.receiver <- f

let set_fault_injection t ~rng ~drop_probability =
  if drop_probability < 0. || drop_probability > 1. then
    invalid_arg "Link.set_fault_injection: probability out of [0, 1]";
  t.fault <- if Float.equal drop_probability 0. then None else Some (rng, drop_probability)

let tx_time t (pkt : Packet.t) =
  if pkt.size = t.memo_size then t.memo_tx
  else begin
    let tx = float_of_int (pkt.size * 8) /. t.bandwidth_bps in
    t.memo_size <- pkt.size;
    t.memo_tx <- tx;
    tx
  end

let queued_bytes t = Ring.fold (fun acc (p : Packet.t) -> acc + p.size) 0 t.queue

(* Sanitizer hook: every packet and byte offered to the link must be
   delivered, dropped, or still queued — nothing may vanish or be
   double-counted.  Checked after each enqueue and each service
   completion when PHI_SANITIZE=1. *)
let check_conservation t =
  if Invariant.enabled () then begin
    let now = Engine.now t.engine in
    let queued = Ring.length t.queue in
    if queued > t.capacity_pkts then
      Invariant.record ~rule:"queue-occupancy" ~time:now
        (Printf.sprintf "Link: queue %d exceeds capacity %d" queued t.capacity_pkts);
    let accounted = t.packets_delivered + t.drops + queued in
    if t.packets_offered <> accounted then
      Invariant.record ~rule:"link-conservation" ~time:now
        (Printf.sprintf
           "Link: %d packets offered <> %d accounted (%d delivered + %d dropped + %d queued)"
           t.packets_offered accounted t.packets_delivered t.drops queued);
    let bytes_accounted = t.bytes_delivered + t.bytes_dropped + queued_bytes t in
    if t.bytes_offered <> bytes_accounted then
      Invariant.record ~rule:"byte-conservation" ~time:now
        (Printf.sprintf
           "Link: %d bytes offered <> %d accounted (%d delivered + %d dropped + %d queued)"
           t.bytes_offered bytes_accounted t.bytes_delivered t.bytes_dropped (queued_bytes t))
  end

(* The self-rescheduling transmit loop.  Serve the head-of-line packet:
   serialization (the [tx_done] port), then propagation (the [deliver]
   port), then start on the next queued packet.  [busy] guards against
   starting two transmissions at once.  Both ports are registered once
   at link creation, so the per-packet path schedules them without
   allocating a single closure. *)
let start_service t =
  match Ring.peek_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let now = Engine.now t.engine in
    t.total_queue_wait <- t.total_queue_wait +. (now -. pkt.enqueued_at);
    t.in_service_tx <- tx_time t pkt;
    Engine.schedule_port_after t.engine ~delay:t.in_service_tx t.tx_done_port

let on_tx_done t =
  let pkt = Ring.pop t.queue in
  t.busy_time <- t.busy_time +. t.in_service_tx;
  t.packets_delivered <- t.packets_delivered + 1;
  t.bytes_delivered <- t.bytes_delivered + pkt.Packet.size;
  Ring.push t.in_flight pkt;
  Engine.schedule_port_after t.engine ~delay:t.delay_s t.deliver_port;
  check_conservation t;
  start_service t

let on_deliver t = t.receiver (Ring.pop t.in_flight)

let create engine ~bandwidth_bps ~delay_s ~capacity_pkts =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  if capacity_pkts < 1 then invalid_arg "Link.create: capacity must be >= 1";
  let t =
    {
      engine;
      bandwidth_bps;
      delay_s;
      capacity_pkts;
      queue = Ring.create ();
      in_flight = Ring.create ();
      tx_done_port = Engine.port engine (fun () -> ());
      deliver_port = Engine.port engine (fun () -> ());
      in_service_tx = 0.;
      memo_size = -1;
      memo_tx = 0.;
      receiver = (fun _ -> invalid_arg "Link: receiver not set");
      busy = false;
      packets_offered = 0;
      packets_delivered = 0;
      bytes_offered = 0;
      bytes_delivered = 0;
      bytes_dropped = 0;
      drops = 0;
      busy_time = 0.;
      total_queue_wait = 0.;
      fault = None;
      discipline = Drop_tail;
      red_rng = None;
      red_avg = 0.;
      ecn_marks = 0;
    }
  in
  t.tx_done_port <- Engine.port engine (fun () -> on_tx_done t);
  t.deliver_port <- Engine.port engine (fun () -> on_deliver t);
  t

let set_discipline t ~rng discipline =
  (match discipline with
  | Red p ->
    if p.min_threshold < 1 || p.max_threshold <= p.min_threshold then
      invalid_arg "Link.set_discipline: bad RED thresholds";
    if p.max_probability <= 0. || p.max_probability > 1. then
      invalid_arg "Link.set_discipline: bad RED max probability";
    if p.weight <= 0. || p.weight > 1. then invalid_arg "Link.set_discipline: bad RED weight"
  | Drop_tail -> ());
  t.discipline <- discipline;
  t.red_rng <- Some rng;
  t.red_avg <- float_of_int (Ring.length t.queue)

(* RED early-drop/mark decision (simplified: no idle-time correction, no
   between-drop spacing).  With [mark_ecn], band "drops" become CE marks
   on data packets; only forced drops above max_threshold still drop. *)
let red_rejects t p (pkt : Packet.t) =
  t.red_avg <- ((1. -. p.weight) *. t.red_avg) +. (p.weight *. float_of_int (Ring.length t.queue));
  if t.red_avg < float_of_int p.min_threshold then false
  else if t.red_avg >= float_of_int p.max_threshold then true
  else begin
    let range = float_of_int (p.max_threshold - p.min_threshold) in
    let drop_p = p.max_probability *. (t.red_avg -. float_of_int p.min_threshold) /. range in
    let hit =
      match t.red_rng with Some rng -> Phi_util.Prng.float rng < drop_p | None -> false
    in
    if hit && p.mark_ecn && Packet.is_data pkt then begin
      pkt.Packet.ce <- true;
      t.ecn_marks <- t.ecn_marks + 1;
      false
    end
    else hit
  end

let discipline_rejects t pkt =
  match t.discipline with Drop_tail -> false | Red p -> red_rejects t p pkt

let faulted t =
  match t.fault with
  | None -> false
  | Some (rng, p) -> Phi_util.Prng.float rng < p

let send t pkt =
  t.packets_offered <- t.packets_offered + 1;
  t.bytes_offered <- t.bytes_offered + pkt.Packet.size;
  if Ring.length t.queue >= t.capacity_pkts || discipline_rejects t pkt || faulted t then begin
    t.drops <- t.drops + 1;
    t.bytes_dropped <- t.bytes_dropped + pkt.Packet.size
  end
  else begin
    pkt.Packet.enqueued_at <- Engine.now t.engine;
    Ring.push t.queue pkt;
    if not t.busy then start_service t
  end;
  check_conservation t

let bandwidth_bps t = t.bandwidth_bps
let delay_s t = t.delay_s
let capacity_pkts t = t.capacity_pkts
let queue_length t = Ring.length t.queue
let ecn_marks t = t.ecn_marks
let packets_delivered t = t.packets_delivered
let bytes_offered t = t.bytes_offered
let bytes_delivered t = t.bytes_delivered
let bytes_dropped t = t.bytes_dropped
let drops t = t.drops
let packets_offered t = t.packets_offered
let busy_time t = t.busy_time
let total_queue_wait t = t.total_queue_wait

let utilization_since t ~since_busy_time ~since_clock ~now =
  let elapsed = now -. since_clock in
  if elapsed <= 0. then 0. else Float.min 1. ((t.busy_time -. since_busy_time) /. elapsed)
