module Engine = Phi_sim.Engine
module Ring = Phi_sim.Ring
module Invariant = Phi_sim.Invariant

type red_params = {
  min_threshold : int;
  max_threshold : int;
  max_probability : float;
  weight : float;
  mark_ecn : bool;
}

let default_red ?(ecn = false) ~capacity_pkts () =
  let min_threshold = Stdlib.max 5 (capacity_pkts / 12) in
  {
    min_threshold;
    max_threshold = 3 * min_threshold;
    max_probability = 0.1;
    weight = 0.002;
    mark_ecn = ecn;
  }

type discipline = Drop_tail | Red of red_params

type t = {
  engine : Engine.t;
  pool : Packet.pool;
  (* Mutable for the scenario plane's runtime dynamics ({!set_rate_bps},
     {!set_delay_s}): a WAN link can be re-provisioned or jittered
     mid-run.  Constant-parameter runs never write these, so the legacy
     experiments are bit-identical. *)
  mutable bandwidth_bps : float;
  mutable delay_s : float;
  capacity_pkts : int;
  queue : Packet.handle Ring.t;
  (* Packets serialized but still propagating.  Every delivery on a link
     takes the same [delay_s], so deliveries complete in FIFO order and
     the pre-registered delivery port can simply pop this ring — no
     per-packet closure capturing the packet. *)
  in_flight : Packet.handle Ring.t;
  mutable tx_done_port : Engine.port;
  mutable deliver_port : Engine.port;
  mutable memo_size : int;
  mutable receiver : Packet.handle -> unit;
  (* When set, serialized packets are handed to this function instead of
     entering propagation on this engine — the boundary-link hook for
     cross-island handoff.  The handle is still owned by this link's
     pool; the handoff must consume it (serialize-and-release). *)
  mutable handoff : (Packet.handle -> unit) option;
  mutable busy : bool;
  (* Administrative state for link-flap dynamics.  While down, arrivals
     are dropped (and counted), queued packets freeze in place, and the
     packet in service — plus everything already propagating — still
     completes: serialization and photons in flight don't care about
     control-plane state. *)
  mutable up : bool;
  mutable packets_offered : int;
  mutable packets_delivered : int;
  mutable bytes_offered : int;
  mutable bytes_delivered : int;
  mutable bytes_dropped : int;
  mutable drops : int;
  (* The per-packet float state (see the [fs_*] indices below) lives in
     a [floatarray] rather than mutable float fields: storing a float
     into a mixed record allocates a fresh box on every write, and
     several of these are written for every packet served. *)
  fs : floatarray;
  mutable fault : (Phi_util.Prng.t * float) option;
  mutable discipline : discipline;
  mutable red_rng : Phi_util.Prng.t option;
  mutable ecn_marks : int;
}

(* Serialization time of the packet at the head of [queue], recorded
   when its service starts. *)
let fs_in_service_tx = 0

(* One-entry [tx_time] memo (keyed by [memo_size]).  Traffic on a link
   is dominated by one or two packet sizes (MSS data, 40-byte ACKs), so
   this removes the per-packet division while keeping the exact IEEE
   quotient — multiplying by a precomputed 1/bandwidth would perturb
   event times in the last ulp and break bit-for-bit reproducibility
   against recorded runs. *)
let fs_memo_tx = 1
let fs_busy_time = 2
let fs_total_queue_wait = 3
let fs_red_avg = 4  (* RED's average queue estimate *)

(* Latest scheduled delivery time.  Deliveries pop [in_flight] in FIFO
   order, so when {!set_delay_s} shrinks the delay mid-run a later
   packet must not be scheduled to land before an earlier one — its
   delivery is clamped to this watermark instead (no reordering, only
   compression of inter-delivery gaps). *)
let fs_last_delivery = 5
let fs_len = 6

let[@inline] fs_get t i = Float.Array.unsafe_get t.fs i
let[@inline] fs_set t i v = Float.Array.unsafe_set t.fs i v

let set_receiver t f = t.receiver <- f
let set_handoff t f = t.handoff <- Some f

let set_fault_injection t ~rng ~drop_probability =
  if drop_probability < 0. || drop_probability > 1. then
    invalid_arg "Link.set_fault_injection: probability out of [0, 1]";
  t.fault <- if Float.equal drop_probability 0. then None else Some (rng, drop_probability)

let[@inline] tx_time t size =
  if size = t.memo_size then fs_get t fs_memo_tx
  else begin
    let tx = float_of_int (size * 8) /. t.bandwidth_bps in
    t.memo_size <- size;
    fs_set t fs_memo_tx tx;
    tx
  end

let queued_bytes t = Ring.fold (fun acc p -> acc + Packet.size t.pool p) 0 t.queue

(* Sanitizer hook: every packet and byte offered to the link must be
   delivered, dropped, or still queued — nothing may vanish or be
   double-counted.  Checked after each enqueue and each service
   completion when PHI_SANITIZE=1. *)
let check_conservation t =
  if Invariant.enabled () then begin
    let now = Engine.now t.engine in
    let queued = Ring.length t.queue in
    if queued > t.capacity_pkts then
      Invariant.record ~rule:"queue-occupancy" ~time:now
        (Printf.sprintf "Link: queue %d exceeds capacity %d" queued t.capacity_pkts);
    let accounted = t.packets_delivered + t.drops + queued in
    if t.packets_offered <> accounted then
      Invariant.record ~rule:"link-conservation" ~time:now
        (Printf.sprintf
           "Link: %d packets offered <> %d accounted (%d delivered + %d dropped + %d queued)"
           t.packets_offered accounted t.packets_delivered t.drops queued);
    let bytes_accounted = t.bytes_delivered + t.bytes_dropped + queued_bytes t in
    if t.bytes_offered <> bytes_accounted then
      Invariant.record ~rule:"byte-conservation" ~time:now
        (Printf.sprintf
           "Link: %d bytes offered <> %d accounted (%d delivered + %d dropped + %d queued)"
           t.bytes_offered bytes_accounted t.bytes_delivered t.bytes_dropped (queued_bytes t))
  end

(* The self-rescheduling transmit loop.  Serve the head-of-line packet:
   serialization (the [tx_done] port), then propagation (the [deliver]
   port), then start on the next queued packet.  [busy] guards against
   starting two transmissions at once.  Both ports are registered once
   at link creation, so the per-packet path schedules them without
   allocating a single closure — and the rings hold pool handles
   (immediate ints), so no packet is ever boxed either. *)
let start_service t =
  if (not t.up) || Ring.is_empty t.queue then t.busy <- false
  else begin
    let pkt = Ring.peek t.queue in
    t.busy <- true;
    let now = Engine.now t.engine in
    fs_set t fs_total_queue_wait
      (fs_get t fs_total_queue_wait +. (now -. Packet.enqueued_at t.pool pkt));
    let tx = tx_time t (Packet.size t.pool pkt) in
    fs_set t fs_in_service_tx tx;
    Engine.schedule_port_after t.engine ~delay:tx t.tx_done_port
  end

let on_tx_done t =
  let pkt = Ring.pop t.queue in
  fs_set t fs_busy_time (fs_get t fs_busy_time +. fs_get t fs_in_service_tx);
  t.packets_delivered <- t.packets_delivered + 1;
  t.bytes_delivered <- t.bytes_delivered + Packet.size t.pool pkt;
  (match t.handoff with
  | None ->
    Ring.push t.in_flight pkt;
    (* [schedule_port_after] lands at [now +. delay] — the same IEEE
       expression as [due] — so the fast path below is the legacy
       behaviour verbatim; only a mid-run delay {e decrease} can take
       the clamped branch. *)
    let due = Engine.now t.engine +. t.delay_s in
    if due >= fs_get t fs_last_delivery then begin
      fs_set t fs_last_delivery due;
      Engine.schedule_port_after t.engine ~delay:t.delay_s t.deliver_port
    end
    else Engine.schedule_port_at t.engine ~time:(fs_get t fs_last_delivery) t.deliver_port
  | Some f -> f pkt);
  check_conservation t;
  start_service t

let on_deliver t = t.receiver (Ring.pop t.in_flight)

let create engine pool ~bandwidth_bps ~delay_s ~capacity_pkts =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  if capacity_pkts < 1 then invalid_arg "Link.create: capacity must be >= 1";
  let t =
    {
      engine;
      pool;
      bandwidth_bps;
      delay_s;
      capacity_pkts;
      queue = Ring.create ();
      in_flight = Ring.create ();
      tx_done_port = Engine.port engine (fun () -> ());
      deliver_port = Engine.port engine (fun () -> ());
      memo_size = -1;
      receiver = (fun _ -> invalid_arg "Link: receiver not set");
      handoff = None;
      busy = false;
      up = true;
      packets_offered = 0;
      packets_delivered = 0;
      bytes_offered = 0;
      bytes_delivered = 0;
      bytes_dropped = 0;
      drops = 0;
      fs = Float.Array.make fs_len 0.;
      fault = None;
      discipline = Drop_tail;
      red_rng = None;
      ecn_marks = 0;
    }
  in
  t.tx_done_port <- Engine.port engine (fun () -> on_tx_done t);
  t.deliver_port <- Engine.port engine (fun () -> on_deliver t);
  t

let set_discipline t ~rng discipline =
  (match discipline with
  | Red p ->
    if p.min_threshold < 1 || p.max_threshold <= p.min_threshold then
      invalid_arg "Link.set_discipline: bad RED thresholds";
    if p.max_probability <= 0. || p.max_probability > 1. then
      invalid_arg "Link.set_discipline: bad RED max probability";
    if p.weight <= 0. || p.weight > 1. then invalid_arg "Link.set_discipline: bad RED weight"
  | Drop_tail -> ());
  t.discipline <- discipline;
  t.red_rng <- Some rng;
  fs_set t fs_red_avg (float_of_int (Ring.length t.queue))

(* RED early-drop/mark decision (simplified: no idle-time correction, no
   between-drop spacing).  With [mark_ecn], band "drops" become CE marks
   on data packets; only forced drops above max_threshold still drop. *)
let red_rejects t p pkt =
  let avg =
    ((1. -. p.weight) *. fs_get t fs_red_avg)
    +. (p.weight *. float_of_int (Ring.length t.queue))
  in
  fs_set t fs_red_avg avg;
  if avg < float_of_int p.min_threshold then false
  else if avg >= float_of_int p.max_threshold then true
  else begin
    let range = float_of_int (p.max_threshold - p.min_threshold) in
    let drop_p = p.max_probability *. (avg -. float_of_int p.min_threshold) /. range in
    let hit =
      match t.red_rng with Some rng -> Phi_util.Prng.float rng < drop_p | None -> false
    in
    if hit && p.mark_ecn && Packet.is_data t.pool pkt then begin
      Packet.mark_ce t.pool pkt;
      t.ecn_marks <- t.ecn_marks + 1;
      false
    end
    else hit
  end

let discipline_rejects t pkt =
  match t.discipline with Drop_tail -> false | Red p -> red_rejects t p pkt

let faulted t =
  match t.fault with
  | None -> false
  | Some (rng, p) -> Phi_util.Prng.float rng < p

let send t pkt =
  let size = Packet.size t.pool pkt in
  t.packets_offered <- t.packets_offered + 1;
  t.bytes_offered <- t.bytes_offered + size;
  if (not t.up) || Ring.length t.queue >= t.capacity_pkts || discipline_rejects t pkt
     || faulted t
  then begin
    t.drops <- t.drops + 1;
    t.bytes_dropped <- t.bytes_dropped + size;
    (* A drop is the end of the packet's life: back to the free list. *)
    Packet.release t.pool pkt
  end
  else begin
    Packet.set_enqueued_at t.pool pkt (Engine.now t.engine);
    Ring.push t.queue pkt;
    if not t.busy then start_service t
  end;
  check_conservation t

let bandwidth_bps t = t.bandwidth_bps
let delay_s t = t.delay_s
let capacity_pkts t = t.capacity_pkts
let is_up t = t.up

(* {2 Runtime dynamics} *)

let set_rate_bps t bps =
  if not (Float.is_finite bps) || bps <= 0. then
    invalid_arg "Link.set_rate_bps: rate must be positive";
  t.bandwidth_bps <- bps;
  (* Invalidate the tx-time memo; the packet in service keeps the
     serialization time computed when its service began. *)
  t.memo_size <- -1

let set_delay_s t delay =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Link.set_delay_s: negative or non-finite delay";
  t.delay_s <- delay

let set_down t = t.up <- false

let set_up t =
  if not t.up then begin
    t.up <- true;
    if not t.busy then start_service t
  end

(* {2 Windowed measurement} *)

type window = {
  w_busy_s : float;
  w_wait_s : float;
  w_delivered : int;
  w_offered : int;
  w_drops : int;
  w_bytes_delivered : int;
}

let window_open t =
  {
    w_busy_s = fs_get t fs_busy_time;
    w_wait_s = fs_get t fs_total_queue_wait;
    w_delivered = t.packets_delivered;
    w_offered = t.packets_offered;
    w_drops = t.drops;
    w_bytes_delivered = t.bytes_delivered;
  }

let window_delivered t w = t.packets_delivered - w.w_delivered
let window_offered t w = t.packets_offered - w.w_offered
let window_drops t w = t.drops - w.w_drops
let window_bytes_delivered t w = t.bytes_delivered - w.w_bytes_delivered
let window_busy_s t w = fs_get t fs_busy_time -. w.w_busy_s

let window_queue_delay_s t w =
  let delivered = window_delivered t w in
  if delivered = 0 then 0.
  else (fs_get t fs_total_queue_wait -. w.w_wait_s) /. float_of_int delivered

let window_loss_rate t w =
  let offered = window_offered t w in
  if offered = 0 then 0. else float_of_int (window_drops t w) /. float_of_int offered

let window_throughput_bps t w ~elapsed_s =
  float_of_int (window_bytes_delivered t w * 8) /. elapsed_s

let window_utilization t w ~elapsed_s = Float.min 1. (window_busy_s t w /. elapsed_s)
let queue_length t = Ring.length t.queue
let ecn_marks t = t.ecn_marks
let packets_delivered t = t.packets_delivered
let bytes_offered t = t.bytes_offered
let bytes_delivered t = t.bytes_delivered
let bytes_dropped t = t.bytes_dropped
let drops t = t.drops
let packets_offered t = t.packets_offered
let busy_time t = fs_get t fs_busy_time
let total_queue_wait t = fs_get t fs_total_queue_wait

let utilization_since t ~since_busy_time ~since_clock ~now =
  let elapsed = now -. since_clock in
  if elapsed <= 0. then 0.
  else Float.min 1. ((fs_get t fs_busy_time -. since_busy_time) /. elapsed)
