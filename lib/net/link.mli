(** Unidirectional link with a finite FIFO queue.

    Models ns-2's queue + duplex-link halves: a packet reaching the head
    of the queue is serialized for [size * 8 / bandwidth] seconds and then
    propagates for [delay] seconds before delivery.  The queue discipline
    is drop-tail by default (the paper's setting — its Section 3.1 rests
    on FIFO's incentive incompatibility) with RED available for the
    DESIGN.md ablations.

    The link keeps the counters the Phi experiments need: bytes and packets
    carried, drops, busy (serialization) time for utilization, and the
    aggregate time packets spent queued (for queueing-delay figures). *)

type t

type red_params = {
  min_threshold : int;  (** packets; no early drops below this average *)
  max_threshold : int;  (** packets; all arrivals dropped above this average *)
  max_probability : float;  (** early-drop probability at [max_threshold] *)
  weight : float;  (** EWMA weight of the average-queue estimator *)
  mark_ecn : bool;
      (** mark data packets (RFC 3168 CE) instead of early-dropping them;
          forced drops above [max_threshold] still drop *)
}

val default_red : ?ecn:bool -> capacity_pkts:int -> unit -> red_params
(** Conventional setting scaled to the buffer: min = capacity/12 (at
    least 5), max = 3 x min, max_p = 0.1, weight = 0.002; [ecn]
    (default false) switches early drops to CE marks. *)

type discipline = Drop_tail | Red of red_params

val set_discipline : t -> rng:Phi_util.Prng.t -> discipline -> unit
(** Switch the queue discipline (takes effect for subsequent arrivals).
    The rng drives RED's random early drops. *)

val create :
  Phi_sim.Engine.t ->
  Packet.pool ->
  bandwidth_bps:float ->
  delay_s:float ->
  capacity_pkts:int ->
  t
(** All parameters must be positive ([capacity_pkts >= 1]).  Every
    packet offered to the link must come from the given pool. *)

val set_receiver : t -> (Packet.handle -> unit) -> unit
(** Where delivered packets go.  Must be set before traffic flows.  The
    receiver takes ownership of each delivered handle: it must consume
    it ([Node.receive] does), re-send it, or release it back to the
    pool. *)

val set_handoff : t -> (Packet.handle -> unit) -> unit
(** Divert serialized packets: instead of entering this link's
    propagation stage, each packet that finishes serialization is passed
    to [f], which takes ownership of the handle (it must serialize or
    release it).  This is how {!Boundary_link} turns the egress half of
    a link into a cross-island handoff — delivery counters still
    accumulate here, but propagation is simulated on the destination
    island.  With a handoff installed the receiver is never called. *)

val set_fault_injection : t -> rng:Phi_util.Prng.t -> drop_probability:float -> unit
(** Drop each arriving packet independently with the given probability
    (on top of queue overflows).  For tests and failure-injection
    experiments; probability 0 disables. *)

val send : t -> Packet.handle -> unit
(** Enqueue a packet (or drop it if the queue is full).  Consumes the
    handle: a dropped packet is released back to the pool immediately,
    a carried one is handed to the receiver on delivery. *)

val bandwidth_bps : t -> float
val delay_s : t -> float
val capacity_pkts : t -> int

val queue_length : t -> int
(** Packets currently queued, including the one in service. *)

(** {2 Runtime dynamics}

    Hooks for the scenario plane's adversarial dynamics (link flaps,
    rate renegotiation, RTT jitter).  All of them are safe to call from
    engine-scheduled events mid-run; none of them is called by the
    static experiments, whose runs stay bit-identical. *)

val set_rate_bps : t -> float -> unit
(** Change the serialization rate for packets whose service starts from
    now on; the packet currently in service completes at the rate in
    effect when its service began.  Raises [Invalid_argument] unless
    positive and finite. *)

val set_delay_s : t -> float -> unit
(** Change the propagation delay for packets that finish serialization
    from now on.  Packets already propagating are unaffected.  Delivery
    stays FIFO: when the delay shrinks, a packet that would overtake an
    earlier in-flight one is clamped to land at the same instant as its
    predecessor (gaps compress, order never inverts).  Raises
    [Invalid_argument] on negative or non-finite delays. *)

val set_down : t -> unit
(** Take the link administratively down: subsequent arrivals are
    dropped (counted in {!drops}/{!bytes_dropped}, so conservation
    holds), queued packets freeze in place (their queue-wait keeps
    accruing), and the packet in service — plus everything already
    propagating — still completes delivery. *)

val set_up : t -> unit
(** Bring the link back up and resume serving the frozen queue.
    Idempotent. *)

val is_up : t -> bool

(** {2 Windowed measurement}

    A [window] is a snapshot of the link's monotonic counters; the
    [window_*] accessors read the deltas accumulated since the
    snapshot, plus the derived per-window metrics every experiment
    computes (mean queueing delay, loss rate, throughput,
    utilization). *)

type window

val window_open : t -> window
(** Snapshot the counters now; O(1), allocation is one small record. *)

val window_delivered : t -> window -> int
val window_offered : t -> window -> int
val window_drops : t -> window -> int
val window_bytes_delivered : t -> window -> int

val window_busy_s : t -> window -> float
(** Serialization time accumulated since the snapshot. *)

val window_queue_delay_s : t -> window -> float
(** Mean queue wait per packet delivered in the window (0 if none). *)

val window_loss_rate : t -> window -> float
(** Fraction of packets offered in the window that were dropped (0 if
    nothing was offered). *)

val window_throughput_bps : t -> window -> elapsed_s:float -> float
(** Delivered bits in the window over [elapsed_s]. *)

val window_utilization : t -> window -> elapsed_s:float -> float
(** Busy time over [elapsed_s], capped at 1. *)

(** {2 Counters (monotonic since creation)} *)

val ecn_marks : t -> int
(** Packets marked congestion-experienced by a RED+ECN discipline. *)

val packets_delivered : t -> int
val bytes_delivered : t -> int
val drops : t -> int
val packets_offered : t -> int

val bytes_offered : t -> int
val bytes_dropped : t -> int
(** Byte-level twins of [packets_offered]/[drops]; with [bytes_delivered]
    and the queued bytes they form the conservation identity the
    [PHI_SANITIZE=1] sanitizer checks after every enqueue and service
    completion: offered = delivered + dropped + queued. *)

val busy_time : t -> float
(** Total serialization time so far; divided by elapsed time this is the
    link utilization. *)

val total_queue_wait : t -> float
(** Sum over delivered packets of time spent waiting before service. *)

val utilization_since : t -> since_busy_time:float -> since_clock:float -> now:float -> float
(** Utilization over a window given a snapshot of [busy_time] and the clock
    at the window start. *)
