module Engine = Phi_sim.Engine

type t = {
  engine : Engine.t;
  link : Link.t;
  interval_s : float;
  started_at : float;
  mutable sample_port : Engine.port;
  mutable last_busy_time : float;
  mutable last_clock : float;
  mutable current_utilization : float;
  mutable util_series : (float * float) list;  (* reversed *)
  mutable queue_series : (float * int) list;  (* reversed *)
  mutable queue_sample_sum : int;
  mutable queue_sample_count : int;
  mutable running : bool;
}

(* Periodic sampling rides the engine's port registry, like the link
   pipeline: the handler is registered once at creation and reschedules
   itself by index — no fresh closure per interval. *)
let sample t =
  if t.running then begin
    let now = Engine.now t.engine in
    let busy = Link.busy_time t.link in
    let elapsed = now -. t.last_clock in
    let util = if elapsed > 0. then Float.min 1. ((busy -. t.last_busy_time) /. elapsed) else 0. in
    t.current_utilization <- util;
    t.util_series <- (now, util) :: t.util_series;
    let q = Link.queue_length t.link in
    t.queue_series <- (now, q) :: t.queue_series;
    t.queue_sample_sum <- t.queue_sample_sum + q;
    t.queue_sample_count <- t.queue_sample_count + 1;
    t.last_busy_time <- busy;
    t.last_clock <- now;
    Engine.schedule_port_after t.engine ~delay:t.interval_s t.sample_port
  end

let create engine link ~interval_s =
  if interval_s <= 0. then invalid_arg "Monitor.create: interval must be positive";
  let t =
    {
      engine;
      link;
      interval_s;
      started_at = Engine.now engine;
      sample_port = Engine.port engine (fun () -> ());
      last_busy_time = Link.busy_time link;
      last_clock = Engine.now engine;
      current_utilization = 0.;
      util_series = [];
      queue_series = [];
      queue_sample_sum = 0;
      queue_sample_count = 0;
      running = true;
    }
  in
  t.sample_port <- Engine.port engine (fun () -> sample t);
  Engine.schedule_port_after engine ~delay:interval_s t.sample_port;
  t

let current_utilization t = t.current_utilization

let current_queue t = Link.queue_length t.link

let mean_utilization t =
  let elapsed = Engine.now t.engine -. t.started_at in
  if elapsed <= 0. then 0. else Float.min 1. (Link.busy_time t.link /. elapsed)

let mean_queue t =
  if t.queue_sample_count = 0 then 0.
  else float_of_int t.queue_sample_sum /. float_of_int t.queue_sample_count

let utilization_series t = Array.of_list (List.rev t.util_series)

let queue_series t = Array.of_list (List.rev t.queue_series)

let stop t = t.running <- false
