type t = {
  id : int;
  pool : Packet.pool;
  routes : (int, Link.t) Hashtbl.t;
  mutable default_route : Link.t option;
  flows : (int, Packet.handle -> unit) Hashtbl.t;
  mutable unroutable_drops : int;
  mutable unclaimed_deliveries : int;
}

let create _engine pool ~id =
  {
    id;
    pool;
    routes = Hashtbl.create 16;
    default_route = None;
    flows = Hashtbl.create 16;
    unroutable_drops = 0;
    unclaimed_deliveries = 0;
  }

let id t = t.id
let pool t = t.pool

let add_route t ~dst link = Hashtbl.replace t.routes dst link

let set_default_route t link = t.default_route <- Some link

let bind_flow t ~flow handler = Hashtbl.replace t.flows flow handler

let unbind_flow t ~flow = Hashtbl.remove t.flows flow

(* Lookups use [Hashtbl.find] + exception matching rather than
   [find_opt]: this is the per-packet path and the [Some] box would be
   one allocation per forwarded/delivered packet.  [Not_found] here is a
   preallocated constant, so the miss path is allocation-free too. *)
let receive t pkt =
  let dst = Packet.dst t.pool pkt in
  if dst = t.id then begin
    (match Hashtbl.find t.flows (Packet.flow t.pool pkt) (* phi-lint: allow hashtbl-find *) with
    | handler -> handler pkt
    | exception Not_found -> t.unclaimed_deliveries <- t.unclaimed_deliveries + 1);
    (* Local delivery ends the packet's life: handlers read fields out
       and must not retain the handle. *)
    Packet.release t.pool pkt
  end
  else
    match Hashtbl.find t.routes dst (* phi-lint: allow hashtbl-find *) with
    | link -> Link.send link pkt
    | exception Not_found -> (
      match t.default_route with
      | Some link -> Link.send link pkt
      | None ->
        t.unroutable_drops <- t.unroutable_drops + 1;
        Packet.release t.pool pkt;
        invalid_arg (Printf.sprintf "Node %d: no route for destination %d" t.id dst))

let unroutable_drops t = t.unroutable_drops
let unclaimed_deliveries t = t.unclaimed_deliveries
