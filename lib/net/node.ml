type t = {
  id : int;
  routes : (int, Link.t) Hashtbl.t;
  mutable default_route : Link.t option;
  flows : (int, Packet.t -> unit) Hashtbl.t;
  mutable unroutable_drops : int;
  mutable unclaimed_deliveries : int;
}

let create _engine ~id =
  {
    id;
    routes = Hashtbl.create 16;
    default_route = None;
    flows = Hashtbl.create 16;
    unroutable_drops = 0;
    unclaimed_deliveries = 0;
  }

let id t = t.id

let add_route t ~dst link = Hashtbl.replace t.routes dst link

let set_default_route t link = t.default_route <- Some link

let bind_flow t ~flow handler = Hashtbl.replace t.flows flow handler

let unbind_flow t ~flow = Hashtbl.remove t.flows flow

let receive t (pkt : Packet.t) =
  if pkt.dst = t.id then
    match Hashtbl.find_opt t.flows pkt.flow with
    | Some handler -> handler pkt
    | None -> t.unclaimed_deliveries <- t.unclaimed_deliveries + 1
  else
    match Hashtbl.find_opt t.routes pkt.dst with
    | Some link -> Link.send link pkt
    | None -> (
      match t.default_route with
      | Some link -> Link.send link pkt
      | None ->
        t.unroutable_drops <- t.unroutable_drops + 1;
        invalid_arg
          (Printf.sprintf "Node %d: no route for destination %d" t.id pkt.dst))

let unroutable_drops t = t.unroutable_drops
let unclaimed_deliveries t = t.unclaimed_deliveries
