(** Forwarding nodes.

    A node either consumes a packet addressed to it (dispatching on the
    flow id to the handler a sender/receiver registered) or forwards it on
    the link its routing table maps the destination to.  This is all the
    routing the paper's dumbbell experiments need, while staying general
    enough for arbitrary topologies.

    Nodes speak pool handles: [receive] consumes the handle it is given —
    a locally delivered packet is released back to the pool after its
    flow handler returns (handlers copy fields out and must not retain
    the handle), and a forwarded packet's ownership passes to
    [Link.send]. *)

type t

val create : Phi_sim.Engine.t -> Packet.pool -> id:int -> t
(** All packets this node touches must come from the given pool (one
    pool per simulation; topology builders handle this). *)

val id : t -> int

val pool : t -> Packet.pool
(** The packet pool this node (and its whole topology) uses.  Senders
    and receivers acquire their outgoing packets here. *)

val add_route : t -> dst:int -> Link.t -> unit
(** Route packets destined to node [dst] out of the given link.  Replaces
    any previous route for [dst]. *)

val set_default_route : t -> Link.t -> unit
(** Fallback when no per-destination route matches. *)

val bind_flow : t -> flow:int -> (Packet.handle -> unit) -> unit
(** Local delivery handler for packets of [flow] addressed to this node.
    The handle is only valid for the duration of the call — the node
    releases it when the handler returns. *)

val unbind_flow : t -> flow:int -> unit

val receive : t -> Packet.handle -> unit
(** Entry point used by links (and by local senders to originate traffic).
    Consumes the handle.  Packets addressed to this node with no bound
    flow are counted and released; packets with no route are released,
    counted, and raise [Invalid_argument]. *)

val unroutable_drops : t -> int
val unclaimed_deliveries : t -> int
