module Invariant = Phi_sim.Invariant

let mss = 1500
let ack_size = 40
let max_sack_blocks = 3

(* Handles are immediate ints packing (generation, cell index), exactly
   like the engine's event handles: low [idx_bits] bits index the slab,
   the rest are the cell's generation at acquire time.  Releasing a cell
   bumps its generation, so every handle to the previous life of the
   cell becomes detectably stale. *)
type handle = int

let idx_bits = 25
let idx_mask = (1 lsl idx_bits) - 1
let max_cells = 1 lsl idx_bits

(* Structure-of-arrays slab: one stripe of ints and one of unboxed
   floats per cell.  ACK metadata lives inline — up to
   [max_sack_blocks] (lo, hi) pairs in the int stripe — so an ACK never
   allocates an inner record or a list. *)
let i_flow = 0
let i_src = 1
let i_dst = 2
let i_seq = 3
let i_size = 4
let i_flags = 5
let i_nsack = 6
let i_sack0 = 7
let i_stride = i_sack0 + (2 * max_sack_blocks)

let f_sent_at = 0
let f_enqueued_at = 1
let f_echo_sent_at = 2
let f_echo_tx = 3
let f_stride = 4

let fl_data = 1
let fl_retransmit = 2
let fl_ce = 4
let fl_ece = 8
let fl_echo = 16

type pool = {
  mutable gen : int array;  (* current generation of each cell *)
  mutable ints : int array;  (* [i_stride] ints per cell *)
  mutable floats : floatarray;  (* [f_stride] unboxed floats per cell *)
  mutable free : int array;  (* stack of free cell indices *)
  mutable free_len : int;
  mutable live : int;
  mutable high_water : int;
}

let create_pool () =
  {
    gen = [||];
    ints = [||];
    floats = Float.Array.create 0;
    free = [||];
    free_len = 0;
    live = 0;
    high_water = 0;
  }

(* Double the slab (64 cells minimum).  Only called with an empty free
   list, so the old free stack can be discarded; the new indices are
   stacked so the lowest pops first, keeping live cells clustered at the
   bottom of the slab. *)
let grow pool =
  let cap = Array.length pool.gen in
  let ncap = if cap = 0 then 64 else 2 * cap in
  if ncap > max_cells then invalid_arg "Packet: pool exceeded 2^25 cells";
  (* Amortized doubling: each cell is copied O(1) times over the pool's
     lifetime, and a sized [create_pool] never grows at all. *)
  let gen = Array.make ncap 0 in (* phi-lint: allow hot-alloc *)
  Array.blit pool.gen 0 gen 0 cap;
  let ints = Array.make (ncap * i_stride) 0 in (* phi-lint: allow hot-alloc *)
  Array.blit pool.ints 0 ints 0 (cap * i_stride);
  let floats = Float.Array.make (ncap * f_stride) 0. in (* phi-lint: allow hot-alloc *)
  Float.Array.blit pool.floats 0 floats 0 (cap * f_stride);
  let free = Array.make ncap 0 in (* phi-lint: allow hot-alloc *)
  let fresh = ncap - cap in
  for i = 0 to fresh - 1 do
    free.(i) <- ncap - 1 - i
  done;
  pool.gen <- gen;
  pool.ints <- ints;
  pool.floats <- floats;
  pool.free <- free;
  pool.free_len <- fresh

let[@inline] alive pool h =
  let idx = h land idx_mask in
  idx < Array.length pool.gen && pool.gen.(idx) = h lsr idx_bits

let[@inline never] record_stale h =
  Invariant.record ~rule:"packet-stale-handle" ~time:0.
    (Printf.sprintf "Packet: field access through stale handle (cell %d)" (h land idx_mask))

(* Sanitizer hook: reading through a handle whose cell has been released
   (and possibly re-acquired for another packet) yields garbage field
   values without crashing — exactly the class of bug a generation check
   catches.  Gated on the armed flag so the steady-state cost is one
   load and branch; the recording path stays out of line so the
   accessors below inline even without flambda. *)
let[@inline] check pool h = if !Invariant.armed && not (alive pool h) then record_stale h

let acquire pool =
  if pool.free_len = 0 then grow pool;
  pool.free_len <- pool.free_len - 1;
  let idx = pool.free.(pool.free_len) in
  pool.live <- pool.live + 1;
  if pool.live > pool.high_water then pool.high_water <- pool.live;
  idx

let acquire_data pool ~flow ~src ~dst ~seq ~now ~retransmit =
  let idx = acquire pool in
  let base = idx * i_stride in
  let ints = pool.ints in
  ints.(base + i_flow) <- flow;
  ints.(base + i_src) <- src;
  ints.(base + i_dst) <- dst;
  ints.(base + i_seq) <- seq;
  ints.(base + i_size) <- mss;
  ints.(base + i_flags) <- (if retransmit then fl_data lor fl_retransmit else fl_data);
  ints.(base + i_nsack) <- 0;
  let fbase = idx * f_stride in
  Float.Array.set pool.floats (fbase + f_sent_at) now;
  Float.Array.set pool.floats (fbase + f_enqueued_at) now;
  Float.Array.set pool.floats (fbase + f_echo_sent_at) 0.;
  Float.Array.set pool.floats (fbase + f_echo_tx) 0.;
  (pool.gen.(idx) lsl idx_bits) lor idx

let acquire_ack pool ~flow ~src ~dst ~next_expected ~has_echo ~echo_sent_at ~echo_tx_time
    ~ece ~now =
  let idx = acquire pool in
  let base = idx * i_stride in
  let ints = pool.ints in
  ints.(base + i_flow) <- flow;
  ints.(base + i_src) <- src;
  ints.(base + i_dst) <- dst;
  ints.(base + i_seq) <- next_expected;
  ints.(base + i_size) <- ack_size;
  ints.(base + i_flags) <- (if has_echo then fl_echo else 0) lor (if ece then fl_ece else 0);
  ints.(base + i_nsack) <- 0;
  let fbase = idx * f_stride in
  Float.Array.set pool.floats (fbase + f_sent_at) now;
  Float.Array.set pool.floats (fbase + f_enqueued_at) now;
  Float.Array.set pool.floats (fbase + f_echo_sent_at) echo_sent_at;
  Float.Array.set pool.floats (fbase + f_echo_tx) echo_tx_time;
  (pool.gen.(idx) lsl idx_bits) lor idx

let add_sack pool h ~lo ~hi =
  check pool h;
  let base = (h land idx_mask) * i_stride in
  let n = pool.ints.(base + i_nsack) in
  if n >= max_sack_blocks then invalid_arg "Packet.add_sack: too many SACK blocks";
  pool.ints.(base + i_sack0 + (2 * n)) <- lo;
  pool.ints.(base + i_sack0 + (2 * n) + 1) <- hi;
  pool.ints.(base + i_nsack) <- n + 1

(* A release through a stale handle means a double release or a
   use-after-free: letting it through would push the cell onto the free
   list twice and hand the same cell to two owners.  Always
   generation-checked; the sanitizer records the violation and keeps
   going, a bare run fails fast. *)
let release pool h =
  let idx = h land idx_mask in
  if idx >= Array.length pool.gen || pool.gen.(idx) <> h lsr idx_bits then begin
    if !Invariant.armed then
      Invariant.record ~rule:"packet-double-release" ~time:0.
        (Printf.sprintf "Packet: release through stale handle (cell %d): double release?" idx)
    else invalid_arg "Packet.release: stale handle (double release?)"
  end
  else begin
    pool.gen.(idx) <- pool.gen.(idx) + 1;
    pool.free.(pool.free_len) <- idx;
    pool.free_len <- pool.free_len + 1;
    pool.live <- pool.live - 1
  end

let in_use pool = pool.live
let high_water pool = pool.high_water

(* The accessors below are forced inline (the paths through them run
   once or more per simulated packet, and an out-of-line float-returning
   call would box its result on every read), and they index the slab
   with unsafe gets: a handle can only be minted by [acquire] with an
   in-range cell index, and the slab never shrinks, so the index is in
   range for the life of the pool.  Staleness is covered by the
   generation stamp in [check]. *)

let[@inline] ibase h = (h land idx_mask) * i_stride
let[@inline] fbase h = (h land idx_mask) * f_stride
let[@inline] iget pool off = Array.unsafe_get pool.ints off
let[@inline] fget pool off = Float.Array.unsafe_get pool.floats off

let[@inline] flow pool h =
  check pool h;
  iget pool (ibase h + i_flow)

let[@inline] src pool h =
  check pool h;
  iget pool (ibase h + i_src)

let[@inline] dst pool h =
  check pool h;
  iget pool (ibase h + i_dst)

let[@inline] seq pool h =
  check pool h;
  iget pool (ibase h + i_seq)

let[@inline] size pool h =
  check pool h;
  iget pool (ibase h + i_size)

let[@inline] is_data pool h =
  check pool h;
  iget pool (ibase h + i_flags) land fl_data <> 0

let[@inline] retransmit pool h =
  check pool h;
  iget pool (ibase h + i_flags) land fl_retransmit <> 0

let[@inline] ce pool h =
  check pool h;
  iget pool (ibase h + i_flags) land fl_ce <> 0

let[@inline] mark_ce pool h =
  check pool h;
  let off = ibase h + i_flags in
  Array.unsafe_set pool.ints off (iget pool off lor fl_ce)

let[@inline] ack_ece pool h =
  check pool h;
  iget pool (ibase h + i_flags) land fl_ece <> 0

let[@inline] ack_has_echo pool h =
  check pool h;
  iget pool (ibase h + i_flags) land fl_echo <> 0

let[@inline] sent_at pool h =
  check pool h;
  fget pool (fbase h + f_sent_at)

let[@inline] enqueued_at pool h =
  check pool h;
  fget pool (fbase h + f_enqueued_at)

let[@inline] set_enqueued_at pool h now =
  check pool h;
  Float.Array.unsafe_set pool.floats (fbase h + f_enqueued_at) now

let[@inline] ack_echo_sent_at pool h =
  check pool h;
  fget pool (fbase h + f_echo_sent_at)

let[@inline] ack_echo_tx_time pool h =
  check pool h;
  fget pool (fbase h + f_echo_tx)

let[@inline] sack_count pool h =
  check pool h;
  iget pool (ibase h + i_nsack)

let sack_lo pool h i =
  check pool h;
  if i < 0 || i >= pool.ints.(ibase h + i_nsack) then invalid_arg "Packet.sack_lo: bad index";
  pool.ints.(ibase h + i_sack0 + (2 * i))

let sack_hi pool h i =
  check pool h;
  if i < 0 || i >= pool.ints.(ibase h + i_nsack) then invalid_arg "Packet.sack_hi: bad index";
  pool.ints.(ibase h + i_sack0 + (2 * i) + 1)

let pp pool ppf h =
  let kind = if is_data pool h then "data" else "ack" in
  Format.fprintf ppf "%s[flow=%d %d->%d seq=%d %dB t=%.4f]" kind (flow pool h) (src pool h)
    (dst pool h) (seq pool h) (size pool h) (sent_at pool h)
