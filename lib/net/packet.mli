(** Pooled packets exchanged inside the simulator.

    Segments are counted in MSS-sized units (as in ns-2's TCP agents):
    [seq] is a segment number on data packets and a cumulative
    next-expected segment number on ACKs.  ACKs echo the original send
    timestamp so senders can take RTT samples without keeping a
    retransmission map, and carry SACK blocks describing out-of-order
    data the receiver holds (the paper's ns-2 Cubic is the SACK-enabled
    linux agent).

    Packets live in a generation-stamped slab pool — the same design as
    the engine's event cells, and as ns-2's recycled packet objects.  A
    packet is a {!handle}: an immediate int packing (generation, slab
    index) into the fields of a structure-of-arrays slab, so acquiring,
    reading, writing and releasing a packet allocates nothing.  ACK
    metadata (RTT echo, up to {!max_sack_blocks} SACK ranges, ECN echo)
    is flattened into fixed inline slab fields — no inner record, no
    list.

    {2 Ownership}

    [acquire_data]/[acquire_ack] hand the caller ownership of a cell;
    exactly one owner must eventually {!release} it.  Ownership follows
    the packet through the network: [Node.receive] consumes the handle
    (releasing it after local dispatch, or passing ownership to
    [Link.send]), and a link releases every packet it drops.  Handlers
    must copy the fields they need out of the packet and never retain
    the handle past their own return — after release the generation
    check makes any kept handle detectably stale (the [PHI_SANITIZE=1]
    sanitizer records [packet-stale-handle] / [packet-double-release]
    violations; an unarmed run raises on double release).  The phi-lint
    [packet-escape] rule polices retention patterns statically. *)

type pool
(** A packet slab.  Topology builders create one per simulation
    ([Topology.dumbbell], [Chain.create]) and every node and link of
    that simulation shares it.  Not domain-safe: never share a pool
    across concurrently running engines. *)

type handle = private int
(** A pooled packet.  Immediates only — never allocated, compared, or
    retained after release. *)

val create_pool : unit -> pool

val mss : int
(** Data segment wire size in bytes (1500, Ethernet-sized as in the ns-2
    setup). *)

val ack_size : int
(** ACK wire size in bytes (40). *)

val max_sack_blocks : int
(** Maximum SACK ranges carried per ACK (3, as in a real TCP header with
    timestamps). *)

val acquire_data :
  pool -> flow:int -> src:int -> dst:int -> seq:int -> now:float -> retransmit:bool -> handle
(** A fresh MSS-sized data segment; [retransmit] flags a retransmission. *)

val acquire_ack :
  pool ->
  flow:int ->
  src:int ->
  dst:int ->
  next_expected:int ->
  has_echo:bool ->
  echo_sent_at:float ->
  echo_tx_time:float ->
  ece:bool ->
  now:float ->
  handle
(** A cumulative ACK for [next_expected].  [has_echo] is false when the
    segment that triggered this ACK was a retransmission (Karn's
    algorithm: such ACKs must not produce RTT samples); [echo_sent_at]
    is only meaningful when [has_echo].  [echo_tx_time] is echoed
    unconditionally; FIFO paths make it a precise delivery-order signal
    (RACK-style loss detection).  [ece] echoes an ECN
    congestion-experienced mark (RFC 3168, simulator-grade).  SACK
    ranges start empty; add them with {!add_sack}. *)

val add_sack : pool -> handle -> lo:int -> hi:int -> unit
(** Append a half-open [\[lo, hi)] SACK range of segments held above the
    cumulative ACK (most recent first).  Raises [Invalid_argument] past
    {!max_sack_blocks} ranges. *)

val release : pool -> handle -> unit
(** Return the cell to the free list and bump its generation, making
    every outstanding handle to it stale.  Releasing a stale handle
    (double release / use-after-free) raises [Invalid_argument] — or,
    under the armed sanitizer, records a [packet-double-release]
    violation and continues. *)

(** {2 Field accessors}

    All reads/writes go through the pool.  When the sanitizer is armed,
    each access generation-checks the handle and records a
    [packet-stale-handle] violation on use-after-release. *)

val flow : pool -> handle -> int
(** Globally unique flow identifier. *)

val src : pool -> handle -> int
(** Source node id. *)

val dst : pool -> handle -> int
(** Destination node id. *)

val seq : pool -> handle -> int
val size : pool -> handle -> int
(** Wire size in bytes. *)

val is_data : pool -> handle -> bool

val sent_at : pool -> handle -> float
(** Origination time (set at acquire). *)

val retransmit : pool -> handle -> bool
(** True when this data segment is a retransmission. *)

val ce : pool -> handle -> bool
(** Congestion experienced: set by an ECN-marking queue in place of
    dropping (data packets are always ECN-capable here). *)

val mark_ce : pool -> handle -> unit

val enqueued_at : pool -> handle -> float
(** Bookkeeping for per-queue waiting time. *)

val set_enqueued_at : pool -> handle -> float -> unit

val ack_has_echo : pool -> handle -> bool
val ack_echo_sent_at : pool -> handle -> float
val ack_echo_tx_time : pool -> handle -> float
val ack_ece : pool -> handle -> bool
val sack_count : pool -> handle -> int

val sack_lo : pool -> handle -> int -> int
val sack_hi : pool -> handle -> int -> int
(** Bounds of the i-th SACK range; raise [Invalid_argument] outside
    [0 .. sack_count - 1]. *)

(** {2 Pool introspection} *)

val in_use : pool -> int
(** Cells currently acquired and not yet released.  Returns to zero when
    a simulation drains completely — the leak check the pool tests
    assert. *)

val high_water : pool -> int
(** Maximum simultaneously live cells since creation. *)

val pp : pool -> Format.formatter -> handle -> unit
