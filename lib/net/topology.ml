module Engine = Phi_sim.Engine

type spec = {
  n : int;
  bottleneck_bw_bps : float;
  rtt_s : float;
  buffer_bdp_factor : float;
  access_bw_bps : float;
  access_delay_s : float;
}

let paper_spec =
  {
    n = 8;
    bottleneck_bw_bps = 15e6;
    rtt_s = 0.150;
    buffer_bdp_factor = 5.;
    access_bw_bps = 1e9;
    access_delay_s = 0.001;
  }

let bdp_packets spec =
  let bdp_bytes = spec.bottleneck_bw_bps *. spec.rtt_s /. 8. in
  Stdlib.max 1 (int_of_float (Float.round (bdp_bytes /. float_of_int Packet.mss)))

let buffer_packets spec =
  Stdlib.max 1 (int_of_float (Float.round (spec.buffer_bdp_factor *. float_of_int (bdp_packets spec))))

type dumbbell = {
  engine : Engine.t;
  spec : spec;
  pool : Packet.pool;
  senders : Node.t array;
  receivers : Node.t array;
  left_router : Node.t;
  right_router : Node.t;
  bottleneck : Link.t;
  reverse_bottleneck : Link.t;
}

let sender_id _t i = i
let receiver_id t i = Array.length t.senders + i

(* One-way bottleneck propagation delay such that the total two-way path
   delay (two access links each way plus the bottleneck each way) equals
   the requested RTT. *)
let bottleneck_delay spec =
  let one_way = spec.rtt_s /. 2. in
  let d = one_way -. (2. *. spec.access_delay_s) in
  if d <= 0. then invalid_arg "Topology.dumbbell: rtt too small for access delays";
  d

let cut_lookahead_s = bottleneck_delay

let dumbbell engine spec =
  if spec.n < 1 then invalid_arg "Topology.dumbbell: need at least one sender";
  let n = spec.n in
  let pool = Packet.create_pool () in
  let senders = Array.init n (fun i -> Node.create engine pool ~id:i) in
  let receivers = Array.init n (fun i -> Node.create engine pool ~id:(n + i)) in
  let left_router = Node.create engine pool ~id:(2 * n) in
  let right_router = Node.create engine pool ~id:((2 * n) + 1) in
  let access_capacity = 10_000 in
  let access ~from ~to_ =
    let link =
      Link.create engine pool ~bandwidth_bps:spec.access_bw_bps ~delay_s:spec.access_delay_s
        ~capacity_pkts:access_capacity
    in
    Link.set_receiver link (Node.receive to_);
    ignore from;
    link
  in
  let bneck_delay = bottleneck_delay spec in
  let capacity = buffer_packets spec in
  let bottleneck =
    Link.create engine pool ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay
      ~capacity_pkts:capacity
  in
  Link.set_receiver bottleneck (Node.receive right_router);
  let reverse_bottleneck =
    Link.create engine pool ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay
      ~capacity_pkts:capacity
  in
  Link.set_receiver reverse_bottleneck (Node.receive left_router);
  (* Wire access links and routes in both directions. *)
  Array.iter
    (fun sender ->
      let up = access ~from:sender ~to_:left_router in
      Node.set_default_route sender up;
      let down = access ~from:left_router ~to_:sender in
      Node.add_route left_router ~dst:(Node.id sender) down)
    senders;
  Array.iter
    (fun receiver ->
      let down = access ~from:right_router ~to_:receiver in
      Node.add_route right_router ~dst:(Node.id receiver) down;
      let up = access ~from:receiver ~to_:right_router in
      Node.set_default_route receiver up)
    receivers;
  (* Traffic crossing the core: receivers live behind the right router and
     senders behind the left one. *)
  Node.set_default_route left_router bottleneck;
  Node.set_default_route right_router reverse_bottleneck;
  {
    engine;
    spec;
    pool;
    senders;
    receivers;
    left_router;
    right_router;
    bottleneck;
    reverse_bottleneck;
  }
