module Engine = Phi_sim.Engine
module Pdes = Phi_sim.Pdes

type spec = {
  n : int;
  bottleneck_bw_bps : float;
  rtt_s : float;
  buffer_bdp_factor : float;
  access_bw_bps : float;
  access_delay_s : float;
}

let paper_spec =
  {
    n = 8;
    bottleneck_bw_bps = 15e6;
    rtt_s = 0.150;
    buffer_bdp_factor = 5.;
    access_bw_bps = 1e9;
    access_delay_s = 0.001;
  }

let bdp_packets spec =
  let bdp_bytes = spec.bottleneck_bw_bps *. spec.rtt_s /. 8. in
  Stdlib.max 1 (int_of_float (Float.round (bdp_bytes /. float_of_int Packet.mss)))

let buffer_packets spec =
  Stdlib.max 1 (int_of_float (Float.round (spec.buffer_bdp_factor *. float_of_int (bdp_packets spec))))

type dumbbell = {
  engine : Engine.t;
  spec : spec;
  pool : Packet.pool;
  senders : Node.t array;
  receivers : Node.t array;
  left_router : Node.t;
  right_router : Node.t;
  bottleneck : Link.t;
  reverse_bottleneck : Link.t;
}

let sender_id _t i = i
let receiver_id t i = Array.length t.senders + i

(* One-way bottleneck propagation delay such that the total two-way path
   delay (two access links each way plus the bottleneck each way) equals
   the requested RTT. *)
let bottleneck_delay spec =
  let one_way = spec.rtt_s /. 2. in
  let d = one_way -. (2. *. spec.access_delay_s) in
  if d <= 0. then invalid_arg "Topology.dumbbell: rtt too small for access delays";
  d

let cut_lookahead_s = bottleneck_delay

let dumbbell engine spec =
  if spec.n < 1 then invalid_arg "Topology.dumbbell: need at least one sender";
  let n = spec.n in
  let pool = Packet.create_pool () in
  let senders = Array.init n (fun i -> Node.create engine pool ~id:i) in
  let receivers = Array.init n (fun i -> Node.create engine pool ~id:(n + i)) in
  let left_router = Node.create engine pool ~id:(2 * n) in
  let right_router = Node.create engine pool ~id:((2 * n) + 1) in
  let access_capacity = 10_000 in
  let access ~from ~to_ =
    let link =
      Link.create engine pool ~bandwidth_bps:spec.access_bw_bps ~delay_s:spec.access_delay_s
        ~capacity_pkts:access_capacity
    in
    Link.set_receiver link (Node.receive to_);
    ignore from;
    link
  in
  let bneck_delay = bottleneck_delay spec in
  let capacity = buffer_packets spec in
  let bottleneck =
    Link.create engine pool ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay
      ~capacity_pkts:capacity
  in
  Link.set_receiver bottleneck (Node.receive right_router);
  let reverse_bottleneck =
    Link.create engine pool ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay
      ~capacity_pkts:capacity
  in
  Link.set_receiver reverse_bottleneck (Node.receive left_router);
  (* Wire access links and routes in both directions. *)
  Array.iter
    (fun sender ->
      let up = access ~from:sender ~to_:left_router in
      Node.set_default_route sender up;
      let down = access ~from:left_router ~to_:sender in
      Node.add_route left_router ~dst:(Node.id sender) down)
    senders;
  Array.iter
    (fun receiver ->
      let down = access ~from:right_router ~to_:receiver in
      Node.add_route right_router ~dst:(Node.id receiver) down;
      let up = access ~from:receiver ~to_:right_router in
      Node.set_default_route receiver up)
    receivers;
  (* Traffic crossing the core: receivers live behind the right router and
     senders behind the left one. *)
  Node.set_default_route left_router bottleneck;
  Node.set_default_route right_router reverse_bottleneck;
  {
    engine;
    spec;
    pool;
    senders;
    receivers;
    left_router;
    right_router;
    bottleneck;
    reverse_bottleneck;
  }

(* {2 The general graph builder}

   A [Graph.t] is a pure description — node ids with island assignments,
   directed links with parameters, and routing entries — with no engine
   attached.  [build] realizes it serially on one engine;
   [build_partitioned] realizes it across [Pdes] islands, turning every
   cross-island link into a {!Boundary_link}.  Keeping description and
   realization separate is what lets one topology run serial, pool-fanned
   (each worker realizes its own copy) and partitioned without three
   builders drifting apart. *)

module Graph = struct
  type link_spec = {
    l_src : int;
    l_dst : int;
    l_bw : float;
    l_delay : float;
    l_cap : int;
    l_label : string;
  }

  type route_spec = { r_at : int; r_dst : int option; r_via : int }

  type t = {
    mutable nodes_rev : int list;  (* ids, reversed insertion order *)
    mutable n_nodes : int;
    mutable links_rev : link_spec list;
    mutable n_links : int;
    mutable routes_rev : route_spec list;
    node_island : (int, int) Hashtbl.t;
    mutable max_island : int;
  }

  let create () =
    {
      nodes_rev = [];
      n_nodes = 0;
      links_rev = [];
      n_links = 0;
      routes_rev = [];
      node_island = Hashtbl.create 64;
      max_island = 0;
    }

  let island_of t id =
    match Hashtbl.find_opt t.node_island id with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Topology.Graph: unknown node id %d" id)

  let add_node t ?(island = 0) id =
    if island < 0 then invalid_arg "Topology.Graph.add_node: negative island";
    if Hashtbl.mem t.node_island id then
      invalid_arg (Printf.sprintf "Topology.Graph.add_node: duplicate node id %d" id);
    Hashtbl.replace t.node_island id island;
    if island > t.max_island then t.max_island <- island;
    t.nodes_rev <- id :: t.nodes_rev;
    t.n_nodes <- t.n_nodes + 1

  let add_link t ?(label = "") ~src ~dst ~bandwidth_bps ~delay_s ~capacity_pkts () =
    ignore (island_of t src);
    ignore (island_of t dst);
    if bandwidth_bps <= 0. then invalid_arg "Topology.Graph.add_link: bandwidth must be positive";
    if delay_s < 0. then invalid_arg "Topology.Graph.add_link: negative delay";
    if capacity_pkts < 1 then invalid_arg "Topology.Graph.add_link: capacity must be >= 1";
    let ix = t.n_links in
    t.links_rev <-
      { l_src = src; l_dst = dst; l_bw = bandwidth_bps; l_delay = delay_s;
        l_cap = capacity_pkts; l_label = label }
      :: t.links_rev;
    t.n_links <- ix + 1;
    ix

  let check_via t ~at ~via =
    if via < 0 || via >= t.n_links then
      invalid_arg (Printf.sprintf "Topology.Graph: link index %d out of range" via);
    ignore (island_of t at)

  let add_route t ~at ~dst ~via =
    check_via t ~at ~via;
    t.routes_rev <- { r_at = at; r_dst = Some dst; r_via = via } :: t.routes_rev

  let set_default_route t ~at ~via =
    check_via t ~at ~via;
    t.routes_rev <- { r_at = at; r_dst = None; r_via = via } :: t.routes_rev

  let n_nodes t = t.n_nodes
  let n_links t = t.n_links
  let islands t = t.max_island + 1
  let links t = Array.of_list (List.rev t.links_rev)
  let node_ids t = Array.of_list (List.rev t.nodes_rev)
  let routes t = Array.of_list (List.rev t.routes_rev)
  let is_cut t l = island_of t l.l_src <> island_of t l.l_dst

  (* The minimum propagation delay over cross-island links — the
     lookahead a partitioned realization yields, hence the largest
     window [Pdes.run] will accept ([infinity] when nothing crosses). *)
  let cut_lookahead_s t =
    List.fold_left
      (fun acc l -> if is_cut t l then Float.min acc l.l_delay else acc)
      Float.infinity t.links_rev
end

type conduit = Direct of Link.t | Boundary of Boundary_link.t

type built = {
  graph : Graph.t;
  engines : Engine.t array;  (* one per island (partitioned) or one total (serial) *)
  pools : Packet.pool array;
  islands : Pdes.island array;  (* [||] when built serially *)
  node_tbl : (int, Node.t) Hashtbl.t;
  conduits : conduit array;
  labels : (string, int) Hashtbl.t;
}

let node b ~id =
  match Hashtbl.find_opt b.node_tbl id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Topology.node: unknown node id %d" id)

let island_engine b ~island =
  if Array.length b.islands = 0 then b.engines.(0) else b.engines.(island)

let island_pool b ~island =
  if Array.length b.islands = 0 then b.pools.(0) else b.pools.(island)

let node_engine b ~id = island_engine b ~island:(Graph.island_of b.graph id)
let node_pool b ~id = island_pool b ~island:(Graph.island_of b.graph id)

let link_of b ix =
  match b.conduits.(ix) with Direct l -> l | Boundary bl -> Boundary_link.egress bl

let boundary_of b ix = match b.conduits.(ix) with Direct _ -> None | Boundary bl -> Some bl

let find_link b ~label =
  match Hashtbl.find_opt b.labels label with
  | Some ix -> ix
  | None -> invalid_arg (Printf.sprintf "Topology.find_link: no link labeled %S" label)

let islands_of b = b.islands
let engines b = b.engines
let total_events b = Array.fold_left (fun acc e -> acc + Engine.executed e) 0 b.engines

(* Shared realization core.  Nodes first (engine-neutral), then links in
   insertion order — for a partitioned build this fixes the relative
   order of the boundary drains, which is part of the determinism
   contract — then routes in insertion order. *)
let realize ~graph ~engines ~pools ~islands ~island_ix =
  let node_tbl = Hashtbl.create (Graph.n_nodes graph) in
  Array.iter
    (fun id ->
      let island = island_ix (Graph.island_of graph id) in
      Hashtbl.replace node_tbl id (Node.create engines.(island) pools.(island) ~id))
    (Graph.node_ids graph);
  let labels = Hashtbl.create 16 in
  let conduits =
    Array.mapi
      (fun ix (l : Graph.link_spec) ->
        if String.length l.l_label > 0 then Hashtbl.replace labels l.l_label ix;
        let si = island_ix (Graph.island_of graph l.l_src) in
        let di = island_ix (Graph.island_of graph l.l_dst) in
        let to_ =
          match Hashtbl.find_opt node_tbl l.l_dst with
          | Some n -> n
          | None -> assert false (* every link endpoint was just inserted above *)
        in
        if si = di then begin
          let link =
            Link.create engines.(si) pools.(si) ~bandwidth_bps:l.l_bw ~delay_s:l.l_delay
              ~capacity_pkts:l.l_cap
          in
          Link.set_receiver link (Node.receive to_);
          Direct link
        end
        else begin
          let coordinator, pdes_islands =
            match islands with
            | Some (c, arr) -> (c, arr)
            | None -> assert false (* serial builds collapse every island to index 0 *)
          in
          let b =
            Boundary_link.create coordinator ~src:pdes_islands.(si) ~dst:pdes_islands.(di)
              ~src_pool:pools.(si) ~dst_pool:pools.(di) ~bandwidth_bps:l.l_bw
              ~delay_s:l.l_delay ~capacity_pkts:l.l_cap ()
          in
          Boundary_link.set_receiver b (Node.receive to_);
          Boundary b
        end)
      (Graph.links graph)
  in
  let egress ix =
    match conduits.(ix) with Direct l -> l | Boundary bl -> Boundary_link.egress bl
  in
  Array.iter
    (fun (r : Graph.route_spec) ->
      let at =
        match Hashtbl.find_opt node_tbl r.r_at with
        | Some n -> n
        | None -> assert false (* Graph.route validated the node id at insertion *)
      in
      (* A node can only transmit into a link that starts on its own
         island (a boundary's egress half lives on the source island). *)
      let l = (Graph.links graph).(r.r_via) in
      if island_ix (Graph.island_of graph r.r_at) <> island_ix (Graph.island_of graph l.l_src)
      then
        invalid_arg
          (Printf.sprintf "Topology: route at node %d uses link %d from another island" r.r_at
             r.r_via);
      match r.r_dst with
      | Some dst -> Node.add_route at ~dst (egress r.r_via)
      | None -> Node.set_default_route at (egress r.r_via))
    (Graph.routes graph);
  { graph; engines; pools; islands = (match islands with Some (_, a) -> a | None -> [||]);
    node_tbl; conduits; labels }

let build engine graph =
  let pool = Packet.create_pool () in
  realize ~graph ~engines:[| engine |] ~pools:[| pool |] ~islands:None ~island_ix:(fun _ -> 0)

let build_partitioned coordinator graph =
  let n_islands = Graph.islands graph in
  if Float.is_finite (Graph.cut_lookahead_s graph) && Graph.cut_lookahead_s graph <= 0. then
    invalid_arg "Topology.build_partitioned: cross-island links need positive delay";
  let islands = Array.init n_islands (fun _ -> Pdes.add_island coordinator) in
  let engines = Array.map Pdes.engine islands in
  let pools = Array.map (fun _ -> Packet.create_pool ()) islands in
  realize ~graph ~engines ~pools ~islands:(Some (coordinator, islands)) ~island_ix:(fun i -> i)

(* {2 The topology zoo}

   Named scenario-plane topologies, all emitted through {!Graph} so one
   description serves the serial, pool-fanned and partitioned paths.
   Island assignments are baked in (and ignored by {!build}), so the
   same constructor output can be realized either way. *)

module Zoo = struct
  type flow_path = { src : int; dst : int; rtt_s : float }

  type t = {
    name : string;
    graph : Graph.t;
    flow_paths : flow_path array;
    bottlenecks : int array;
    bottleneck_bw_bps : float;
    incast_sink : int;
    incast_sources : int array;
  }

  (* {3 Dumbbell} — the paper's Figure 1, as a graph.  Same node-id
     scheme as the legacy record constructor (senders [0..n-1],
     receivers [n..2n-1], routers [2n]/[2n+1]); the qcheck equivalence
     property in the test suite holds the two byte-identical.  Left side
     is island 0 and right side island 1 — the natural cut runs through
     the bottleneck. *)
  let dumbbell ?(spec = paper_spec) () =
    if spec.n < 1 then invalid_arg "Zoo.dumbbell: need at least one sender";
    let bneck_delay = bottleneck_delay spec in
    let n = spec.n in
    let g = Graph.create () in
    for i = 0 to n - 1 do
      Graph.add_node g ~island:0 i
    done;
    for i = 0 to n - 1 do
      Graph.add_node g ~island:1 (n + i)
    done;
    let left = 2 * n and right = (2 * n) + 1 in
    Graph.add_node g ~island:0 left;
    Graph.add_node g ~island:1 right;
    let access_capacity = 10_000 in
    let capacity = buffer_packets spec in
    let bottleneck =
      Graph.add_link g ~label:"bottleneck" ~src:left ~dst:right
        ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay ~capacity_pkts:capacity ()
    in
    let reverse =
      Graph.add_link g ~label:"reverse_bottleneck" ~src:right ~dst:left
        ~bandwidth_bps:spec.bottleneck_bw_bps ~delay_s:bneck_delay ~capacity_pkts:capacity ()
    in
    let access ~src ~dst =
      Graph.add_link g ~src ~dst ~bandwidth_bps:spec.access_bw_bps
        ~delay_s:spec.access_delay_s ~capacity_pkts:access_capacity ()
    in
    for i = 0 to n - 1 do
      let up = access ~src:i ~dst:left in
      Graph.set_default_route g ~at:i ~via:up;
      let down = access ~src:left ~dst:i in
      Graph.add_route g ~at:left ~dst:i ~via:down
    done;
    for i = 0 to n - 1 do
      let r = n + i in
      let down = access ~src:right ~dst:r in
      Graph.add_route g ~at:right ~dst:r ~via:down;
      let up = access ~src:r ~dst:right in
      Graph.set_default_route g ~at:r ~via:up
    done;
    Graph.set_default_route g ~at:left ~via:bottleneck;
    Graph.set_default_route g ~at:right ~via:reverse;
    {
      name = "dumbbell";
      graph = g;
      flow_paths = Array.init n (fun i -> { src = i; dst = n + i; rtt_s = spec.rtt_s });
      bottlenecks = [| bottleneck |];
      bottleneck_bw_bps = spec.bottleneck_bw_bps;
      (* Any sender can reach any receiver across the bottleneck. *)
      incast_sink = n;
      incast_sources = Array.init n Fun.id;
    }

  (* {3 Parking lot} — the multi-bottleneck chain the partitioned
     engine runs: one island per segment, long flows crossing every
     cut.  Node ids follow the scheme the [Parking_lot] experiment has
     always used (globally unique across islands). *)

  type parking_lot_spec = {
    segments : int;
    local_pairs : int;
    long_flows : int;
    hop_bw_bps : float;
    hop_delay_s : float;
    cut_bw_bps : float;
    cut_delay_s : float;
    pl_access_bw_bps : float;
    pl_access_delay_s : float;
    buffer_pkts : int;
  }

  (* A light matrix-cell sizing; the partitioned bench passes its own
     heavier spec. *)
  let default_parking_lot =
    {
      segments = 3;
      local_pairs = 3;
      long_flows = 3;
      hop_bw_bps = 40e6;
      hop_delay_s = 0.005;
      cut_bw_bps = 80e6;
      cut_delay_s = 0.010;
      pl_access_bw_bps = 1e9;
      pl_access_delay_s = 0.0005;
      buffer_pkts = 300;
    }

  let pl_long_sender_id i = i
  let pl_long_receiver_id i = 1_000_000 + i
  let pl_local_sender_id ~segment ~pair = (10_000 * (segment + 1)) + pair
  let pl_local_receiver_id ~segment ~pair = (10_000 * (segment + 1)) + 5_000 + pair
  let pl_left_router_id segment = 900_000 + (2 * segment)
  let pl_right_router_id segment = 900_000 + (2 * segment) + 1

  let parking_lot ?(spec = default_parking_lot) () =
    if spec.segments < 1 then invalid_arg "Zoo.parking_lot: need at least one segment";
    if spec.local_pairs < 0 || spec.long_flows < 0 then
      invalid_arg "Zoo.parking_lot: negative flow counts";
    let s_count = spec.segments in
    let g = Graph.create () in
    for s = 0 to s_count - 1 do
      Graph.add_node g ~island:s (pl_left_router_id s);
      Graph.add_node g ~island:s (pl_right_router_id s)
    done;
    for s = 0 to s_count - 1 do
      for j = 0 to spec.local_pairs - 1 do
        Graph.add_node g ~island:s (pl_local_sender_id ~segment:s ~pair:j);
        Graph.add_node g ~island:s (pl_local_receiver_id ~segment:s ~pair:j)
      done
    done;
    for i = 0 to spec.long_flows - 1 do
      Graph.add_node g ~island:0 (pl_long_sender_id i);
      Graph.add_node g ~island:(s_count - 1) (pl_long_receiver_id i)
    done;
    (* Links in the order the ad-hoc builder created them: hops forward,
       hops reverse, forward cuts, reverse cuts (the cut order fixes the
       boundary-drain registration order), then host access pairs. *)
    let hop ~label ~src ~dst =
      Graph.add_link g ~label ~src ~dst ~bandwidth_bps:spec.hop_bw_bps
        ~delay_s:spec.hop_delay_s ~capacity_pkts:spec.buffer_pkts ()
    in
    let hop_fwd =
      Array.init s_count (fun s ->
          hop ~label:(Printf.sprintf "hop_fwd:%d" s) ~src:(pl_left_router_id s)
            ~dst:(pl_right_router_id s))
    in
    let hop_rev =
      Array.init s_count (fun s ->
          hop ~label:(Printf.sprintf "hop_rev:%d" s) ~src:(pl_right_router_id s)
            ~dst:(pl_left_router_id s))
    in
    let cut ~label ~src ~dst =
      Graph.add_link g ~label ~src ~dst ~bandwidth_bps:spec.cut_bw_bps
        ~delay_s:spec.cut_delay_s ~capacity_pkts:10_000 ()
    in
    let f_cut =
      Array.init (s_count - 1) (fun s ->
          cut ~label:(Printf.sprintf "f_cut:%d" s) ~src:(pl_right_router_id s)
            ~dst:(pl_left_router_id (s + 1)))
    in
    let r_cut =
      Array.init (s_count - 1) (fun s ->
          cut ~label:(Printf.sprintf "r_cut:%d" s) ~src:(pl_left_router_id (s + 1))
            ~dst:(pl_right_router_id s))
    in
    let access ~src ~dst =
      Graph.add_link g ~src ~dst ~bandwidth_bps:spec.pl_access_bw_bps
        ~delay_s:spec.pl_access_delay_s ~capacity_pkts:10_000 ()
    in
    (* Hosts: up link at creation, down link with the router's route. *)
    for s = 0 to s_count - 1 do
      for j = 0 to spec.local_pairs - 1 do
        let sender = pl_local_sender_id ~segment:s ~pair:j in
        Graph.set_default_route g ~at:sender ~via:(access ~src:sender ~dst:(pl_left_router_id s));
        Graph.add_route g ~at:(pl_left_router_id s) ~dst:sender
          ~via:(access ~src:(pl_left_router_id s) ~dst:sender);
        let receiver = pl_local_receiver_id ~segment:s ~pair:j in
        Graph.set_default_route g ~at:receiver
          ~via:(access ~src:receiver ~dst:(pl_right_router_id s));
        Graph.add_route g ~at:(pl_right_router_id s) ~dst:receiver
          ~via:(access ~src:(pl_right_router_id s) ~dst:receiver)
      done
    done;
    for i = 0 to spec.long_flows - 1 do
      let sender = pl_long_sender_id i in
      Graph.set_default_route g ~at:sender ~via:(access ~src:sender ~dst:(pl_left_router_id 0));
      Graph.add_route g ~at:(pl_left_router_id 0) ~dst:sender
        ~via:(access ~src:(pl_left_router_id 0) ~dst:sender);
      let receiver = pl_long_receiver_id i in
      Graph.set_default_route g ~at:receiver
        ~via:(access ~src:receiver ~dst:(pl_right_router_id (s_count - 1)));
      Graph.add_route g ~at:(pl_right_router_id (s_count - 1)) ~dst:receiver
        ~via:(access ~src:(pl_right_router_id (s_count - 1)) ~dst:receiver)
    done;
    (* Router forwarding (same shape as the ad-hoc builder): left router
       [s] sends long-sender traffic back toward segment 0 and defaults
       forward over the hop; right router [s] sends any sender traffic
       back over the reverse hop and long-receiver traffic onward. *)
    for s = 0 to s_count - 1 do
      for i = 0 to spec.long_flows - 1 do
        if s > 0 then
          Graph.add_route g ~at:(pl_left_router_id s) ~dst:(pl_long_sender_id i)
            ~via:r_cut.(s - 1)
      done;
      Graph.set_default_route g ~at:(pl_left_router_id s) ~via:hop_fwd.(s);
      for j = 0 to spec.local_pairs - 1 do
        Graph.add_route g ~at:(pl_right_router_id s)
          ~dst:(pl_local_sender_id ~segment:s ~pair:j)
          ~via:hop_rev.(s)
      done;
      for i = 0 to spec.long_flows - 1 do
        Graph.add_route g ~at:(pl_right_router_id s) ~dst:(pl_long_sender_id i) ~via:hop_rev.(s);
        if s < s_count - 1 then
          Graph.add_route g ~at:(pl_right_router_id s) ~dst:(pl_long_receiver_id i)
            ~via:f_cut.(s)
      done;
      if s = s_count - 1 then Graph.set_default_route g ~at:(pl_right_router_id s) ~via:hop_rev.(s)
      else Graph.set_default_route g ~at:(pl_right_router_id s) ~via:f_cut.(s)
    done;
    let local_rtt = 2. *. ((2. *. spec.pl_access_delay_s) +. spec.hop_delay_s) in
    let long_rtt =
      2.
      *. ((2. *. spec.pl_access_delay_s)
          +. (float_of_int s_count *. spec.hop_delay_s)
          +. (float_of_int (s_count - 1) *. spec.cut_delay_s))
    in
    let flow_paths =
      Array.init
        ((s_count * spec.local_pairs) + spec.long_flows)
        (fun f ->
          if f < s_count * spec.local_pairs then begin
            let s = f / spec.local_pairs and j = f mod spec.local_pairs in
            {
              src = pl_local_sender_id ~segment:s ~pair:j;
              dst = pl_local_receiver_id ~segment:s ~pair:j;
              rtt_s = local_rtt;
            }
          end
          else
            let i = f - (s_count * spec.local_pairs) in
            { src = pl_long_sender_id i; dst = pl_long_receiver_id i; rtt_s = long_rtt })
    in
    (* Incast anchors must respect the chain's directional routing: the
       only hosts with a return route from segment 0's right router are
       that segment's local senders and the long senders. *)
    let incast_sink, incast_sources =
      if spec.local_pairs > 0 then
        ( pl_local_receiver_id ~segment:0 ~pair:0,
          Array.append
            (Array.init spec.local_pairs (fun j -> pl_local_sender_id ~segment:0 ~pair:j))
            (Array.init spec.long_flows pl_long_sender_id) )
      else if spec.long_flows > 0 then
        (pl_long_receiver_id 0, Array.init spec.long_flows pl_long_sender_id)
      else (-1, [||])
    in
    {
      name = "parking_lot";
      graph = g;
      flow_paths;
      bottlenecks = hop_fwd;
      bottleneck_bw_bps = spec.hop_bw_bps;
      incast_sink;
      incast_sources;
    }

  (* {3 Fat-tree pod} — one pod of a k-ary fat tree: k/2 edge switches,
     k/2 aggregation switches, k/2 hosts per edge.  Paths between hosts
     on different edge switches climb to an aggregation switch chosen
     deterministically by destination (ECMP-by-destination), so routing
     stays purely destination-based. *)

  let ft_host_id ~edge ~slot = (100 * (edge + 1)) + slot
  let ft_edge_id e = 10_000 + e
  let ft_agg_id a = 20_000 + a

  let fat_tree_pod ?(k = 4) ?(core_bw_bps = 40e6) ?(core_delay_s = 0.002)
      ?(host_bw_bps = 400e6) ?(host_delay_s = 0.0005) ?(buffer_pkts = 200) () =
    if k < 2 || k mod 2 <> 0 then invalid_arg "Zoo.fat_tree_pod: k must be even and >= 2";
    let half = k / 2 in
    let g = Graph.create () in
    for e = 0 to half - 1 do
      Graph.add_node g (ft_edge_id e)
    done;
    for a = 0 to half - 1 do
      Graph.add_node g (ft_agg_id a)
    done;
    for e = 0 to half - 1 do
      for h = 0 to half - 1 do
        Graph.add_node g (ft_host_id ~edge:e ~slot:h)
      done
    done;
    (* Core fabric: an up and a down link per (edge, agg) pair. *)
    let up = Array.make_matrix half half (-1) in
    let down = Array.make_matrix half half (-1) in
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        up.(e).(a) <-
          Graph.add_link g
            ~label:(Printf.sprintf "up:%d:%d" e a)
            ~src:(ft_edge_id e) ~dst:(ft_agg_id a) ~bandwidth_bps:core_bw_bps
            ~delay_s:core_delay_s ~capacity_pkts:buffer_pkts ();
        down.(e).(a) <-
          Graph.add_link g ~src:(ft_agg_id a) ~dst:(ft_edge_id e) ~bandwidth_bps:core_bw_bps
            ~delay_s:core_delay_s ~capacity_pkts:buffer_pkts ()
      done
    done;
    (* Host access links and destination routes. *)
    for e = 0 to half - 1 do
      for h = 0 to half - 1 do
        let host = ft_host_id ~edge:e ~slot:h in
        let host_up =
          Graph.add_link g ~src:host ~dst:(ft_edge_id e) ~bandwidth_bps:host_bw_bps
            ~delay_s:host_delay_s ~capacity_pkts:10_000 ()
        in
        Graph.set_default_route g ~at:host ~via:host_up;
        let host_down =
          Graph.add_link g ~src:(ft_edge_id e) ~dst:host ~bandwidth_bps:host_bw_bps
            ~delay_s:host_delay_s ~capacity_pkts:10_000 ()
        in
        Graph.add_route g ~at:(ft_edge_id e) ~dst:host ~via:host_down;
        (* Every other edge climbs to this host's home aggregation
           switch; the aggregation switch descends to its edge. *)
        let agg = ((e * half) + h) mod half in
        Graph.add_route g ~at:(ft_agg_id agg) ~dst:host ~via:down.(e).(agg);
        for e' = 0 to half - 1 do
          if e' <> e then Graph.add_route g ~at:(ft_edge_id e') ~dst:host ~via:up.(e').(agg)
        done
      done
    done;
    let n_hosts = half * half in
    let rtt_s = 2. *. ((2. *. host_delay_s) +. (2. *. core_delay_s)) in
    let flow_paths =
      (* Host i talks to its slot-mate one edge over: every flow crosses
         the fabric, and the deterministic agg choice spreads them. *)
      Array.init n_hosts (fun i ->
          let e = i / half and h = i mod half in
          let e' = (e + 1) mod half in
          { src = ft_host_id ~edge:e ~slot:h; dst = ft_host_id ~edge:e' ~slot:h; rtt_s })
    in
    let bottlenecks =
      Array.init (half * half) (fun i -> up.(i / half).(i mod half))
    in
    {
      name = "fat_tree_pod";
      graph = g;
      flow_paths;
      bottlenecks;
      bottleneck_bw_bps = core_bw_bps;
      (* All-pairs destination routing: every other host can converge
         on host (0, 0). *)
      incast_sink = ft_host_id ~edge:0 ~slot:0;
      incast_sources =
        Array.of_list
          (List.concat_map
             (fun e ->
               List.filter_map
                 (fun h -> if e = 0 && h = 0 then None else Some (ft_host_id ~edge:e ~slot:h))
                 (List.init half Fun.id))
             (List.init half Fun.id));
    }

  (* {3 WAN} — a handful of sites joined by a full mesh of
     heterogeneous-RTT long-haul links (the inter-datacenter setting of
     the CC thesis in PAPERS.md): island per site, every long-haul link
     a cut.  One-way delays spread ~15–105 ms across the pairs, so
     algorithm behaviour at short and long RTT lands in the same run. *)

  let wan_site_router_id i = 50_000 + i
  let wan_host_id ~site ~slot = (1_000 * (site + 1)) + slot

  (* Deterministic heterogeneous one-way delay for the pair (i, j),
     i < j: 15 ms plus 18 ms per enumeration step. *)
  let wan_pair_delay_s ~sites ~i ~j =
    let rec pair_index ~i ~j acc a b =
      if a = i && b = j then acc
      else if b = sites - 1 then pair_index ~i ~j (acc + 1) (a + 1) (a + 2)
      else pair_index ~i ~j (acc + 1) a (b + 1)
    in
    0.015 +. (0.018 *. float_of_int (pair_index ~i ~j 0 0 1))

  let wan ?(sites = 4) ?(hosts_per_site = 3) ?(wan_bw_bps = 30e6) ?(access_bw_bps = 1e9)
      ?(access_delay_s = 0.0005) ?(buffer_pkts = 400) () =
    if sites < 2 then invalid_arg "Zoo.wan: need at least two sites";
    if hosts_per_site < 1 then invalid_arg "Zoo.wan: need at least one host per site";
    let g = Graph.create () in
    for i = 0 to sites - 1 do
      Graph.add_node g ~island:i (wan_site_router_id i)
    done;
    for i = 0 to sites - 1 do
      for h = 0 to hosts_per_site - 1 do
        Graph.add_node g ~island:i (wan_host_id ~site:i ~slot:h)
      done
    done;
    (* Long-haul mesh: one directed link each way per site pair. *)
    let mesh = Array.make_matrix sites sites (-1) in
    for i = 0 to sites - 1 do
      for j = i + 1 to sites - 1 do
        let delay_s = wan_pair_delay_s ~sites ~i ~j in
        mesh.(i).(j) <-
          Graph.add_link g
            ~label:(Printf.sprintf "wan:%d:%d" i j)
            ~src:(wan_site_router_id i) ~dst:(wan_site_router_id j) ~bandwidth_bps:wan_bw_bps
            ~delay_s ~capacity_pkts:buffer_pkts ();
        mesh.(j).(i) <-
          Graph.add_link g
            ~label:(Printf.sprintf "wan:%d:%d" j i)
            ~src:(wan_site_router_id j) ~dst:(wan_site_router_id i) ~bandwidth_bps:wan_bw_bps
            ~delay_s ~capacity_pkts:buffer_pkts ()
      done
    done;
    (* Hosts and destination-based routing: the mesh is one hop, so
       every router routes a remote host over the direct long-haul link
       and a local host down its access link. *)
    for i = 0 to sites - 1 do
      for h = 0 to hosts_per_site - 1 do
        let host = wan_host_id ~site:i ~slot:h in
        let host_up =
          Graph.add_link g ~src:host ~dst:(wan_site_router_id i) ~bandwidth_bps:access_bw_bps
            ~delay_s:access_delay_s ~capacity_pkts:10_000 ()
        in
        Graph.set_default_route g ~at:host ~via:host_up;
        let host_down =
          Graph.add_link g ~src:(wan_site_router_id i) ~dst:host ~bandwidth_bps:access_bw_bps
            ~delay_s:access_delay_s ~capacity_pkts:10_000 ()
        in
        Graph.add_route g ~at:(wan_site_router_id i) ~dst:host ~via:host_down;
        for j = 0 to sites - 1 do
          if j <> i then Graph.add_route g ~at:(wan_site_router_id j) ~dst:host ~via:mesh.(j).(i)
        done
      done
    done;
    (* Flows: round-robin over the ordered site pairs, so every RTT class
       carries traffic in both directions. *)
    let pairs =
      Array.of_list
        (List.concat_map
           (fun i ->
             List.filter_map
               (fun j -> if j <> i then Some (i, j) else None)
               (List.init sites Fun.id))
           (List.init sites Fun.id))
    in
    let n_flows = sites * hosts_per_site in
    let flow_paths =
      Array.init n_flows (fun f ->
          let i, j = pairs.(f mod Array.length pairs) in
          let slot = f / Array.length pairs mod hosts_per_site in
          let d = wan_pair_delay_s ~sites ~i:(Stdlib.min i j) ~j:(Stdlib.max i j) in
          {
            src = wan_host_id ~site:i ~slot;
            dst = wan_host_id ~site:j ~slot;
            rtt_s = 2. *. ((2. *. access_delay_s) +. d);
          })
    in
    let bottlenecks =
      Array.of_list
        (List.concat_map
           (fun i ->
             List.filter_map
               (fun j -> if mesh.(i).(j) >= 0 then Some mesh.(i).(j) else None)
               (List.init sites Fun.id))
           (List.init sites Fun.id))
    in
    {
      name = "wan";
      graph = g;
      flow_paths;
      bottlenecks;
      bottleneck_bw_bps = wan_bw_bps;
      (* Full mesh: every other host can converge on host (0, 0). *)
      incast_sink = wan_host_id ~site:0 ~slot:0;
      incast_sources =
        Array.of_list
          (List.concat_map
             (fun i ->
               List.filter_map
                 (fun h -> if i = 0 && h = 0 then None else Some (wan_host_id ~site:i ~slot:h))
                 (List.init hosts_per_site Fun.id))
             (List.init sites Fun.id));
    }

  let names = [ "dumbbell"; "parking_lot"; "fat_tree_pod"; "wan" ]

  let by_name = function
    | "dumbbell" -> dumbbell ()
    | "parking_lot" -> parking_lot ()
    | "fat_tree_pod" -> fat_tree_pod ()
    | "wan" -> wan ()
    | other -> invalid_arg (Printf.sprintf "Zoo.by_name: unknown topology %S" other)
end
