(** Topology builders.

    The paper's experiments all run on the Figure 1 dumbbell: [n] senders
    and [n] receivers joined by two routers and a single bottleneck link
    whose buffer is a multiple of the bandwidth-delay product. *)

type spec = {
  n : int;  (** sender/receiver pairs *)
  bottleneck_bw_bps : float;
  rtt_s : float;  (** end-to-end two-way propagation delay *)
  buffer_bdp_factor : float;  (** bottleneck buffer as a multiple of BDP (paper: 5) *)
  access_bw_bps : float;
  access_delay_s : float;  (** one-way delay of each access link *)
}

val paper_spec : spec
(** Table 3's topology: 8 senders, 15 Mbps bottleneck, 150 ms RTT,
    buffer = 5 x BDP, 1 Gbps access links. *)

val bdp_packets : spec -> int
(** Bottleneck bandwidth-delay product in MSS-sized packets (at least 1). *)

val buffer_packets : spec -> int
(** Bottleneck queue capacity implied by [buffer_bdp_factor]. *)

val cut_lookahead_s : spec -> float
(** One-way propagation delay of the bottleneck link — the natural
    island cut of a dumbbell runs through the bottleneck, and this is
    the lookahead (hence maximum [Phi_sim.Pdes] window) that cut
    yields.  Raises like {!dumbbell} when the RTT is too small for the
    access delays. *)

type dumbbell = {
  engine : Phi_sim.Engine.t;
  spec : spec;
  pool : Packet.pool;  (** the packet slab shared by every node and link *)
  senders : Node.t array;
  receivers : Node.t array;
  left_router : Node.t;
  right_router : Node.t;
  bottleneck : Link.t;  (** forward direction: left -> right *)
  reverse_bottleneck : Link.t;
}

val dumbbell : Phi_sim.Engine.t -> spec -> dumbbell
(** Build the topology and wire all routes (both directions).  Sender node
    ids are [0 .. n-1] and receiver ids [n .. 2n-1]. *)

val sender_id : dumbbell -> int -> int
val receiver_id : dumbbell -> int -> int
(** Node ids of the i-th sender/receiver (also their array indices). *)
