(** Topology builders.

    The paper's experiments all run on the Figure 1 dumbbell: [n] senders
    and [n] receivers joined by two routers and a single bottleneck link
    whose buffer is a multiple of the bandwidth-delay product. *)

type spec = {
  n : int;  (** sender/receiver pairs *)
  bottleneck_bw_bps : float;
  rtt_s : float;  (** end-to-end two-way propagation delay *)
  buffer_bdp_factor : float;  (** bottleneck buffer as a multiple of BDP (paper: 5) *)
  access_bw_bps : float;
  access_delay_s : float;  (** one-way delay of each access link *)
}

val paper_spec : spec
(** Table 3's topology: 8 senders, 15 Mbps bottleneck, 150 ms RTT,
    buffer = 5 x BDP, 1 Gbps access links. *)

val bdp_packets : spec -> int
(** Bottleneck bandwidth-delay product in MSS-sized packets (at least 1). *)

val buffer_packets : spec -> int
(** Bottleneck queue capacity implied by [buffer_bdp_factor]. *)

val cut_lookahead_s : spec -> float
(** One-way propagation delay of the bottleneck link — the natural
    island cut of a dumbbell runs through the bottleneck, and this is
    the lookahead (hence maximum [Phi_sim.Pdes] window) that cut
    yields.  Raises like {!dumbbell} when the RTT is too small for the
    access delays. *)

type dumbbell = {
  engine : Phi_sim.Engine.t;
  spec : spec;
  pool : Packet.pool;  (** the packet slab shared by every node and link *)
  senders : Node.t array;
  receivers : Node.t array;
  left_router : Node.t;
  right_router : Node.t;
  bottleneck : Link.t;  (** forward direction: left -> right *)
  reverse_bottleneck : Link.t;
}

val dumbbell : Phi_sim.Engine.t -> spec -> dumbbell
(** Build the topology and wire all routes (both directions).  Sender node
    ids are [0 .. n-1] and receiver ids [n .. 2n-1]. *)

val sender_id : dumbbell -> int -> int
val receiver_id : dumbbell -> int -> int
(** Node ids of the i-th sender/receiver (also their array indices). *)

(** {2 The general graph builder}

    A {!Graph.t} is a pure topology description — nodes with island
    assignments, directed links, routing entries — with no engine
    attached.  {!build} realizes it serially on one engine (island
    assignments ignored); {!build_partitioned} realizes it across
    [Phi_sim.Pdes] islands, turning every cross-island link into a
    {!Boundary_link}.  One description serves the serial, pool-fanned
    and partitioned execution paths. *)

module Graph : sig
  type t

  val create : unit -> t

  val add_node : t -> ?island:int -> int -> unit
  (** Declare node [id] (any int, globally unique) on [island]
      (default 0).  Raises [Invalid_argument] on a duplicate id or a
      negative island. *)

  val add_link :
    t ->
    ?label:string ->
    src:int ->
    dst:int ->
    bandwidth_bps:float ->
    delay_s:float ->
    capacity_pkts:int ->
    unit ->
    int
  (** Declare a directed link and return its index.  Both endpoints
      must already be declared.  A cross-island link needs [delay_s]
      strictly positive to be realizable as a boundary.  [label] makes
      the link findable via {!find_link} after realization. *)

  val add_route : t -> at:int -> dst:int -> via:int -> unit
  (** Packets at node [at] destined to node [dst] leave on link [via].
      [via]'s source must sit on [at]'s island (checked at
      realization). *)

  val set_default_route : t -> at:int -> via:int -> unit

  val island_of : t -> int -> int
  (** Island a node was declared on. *)

  val n_nodes : t -> int
  val n_links : t -> int

  val islands : t -> int
  (** Highest declared island index + 1. *)

  val cut_lookahead_s : t -> float
  (** Minimum propagation delay over cross-island links — the lookahead
      a partitioned realization yields, hence the largest window
      [Pdes.run] will accept.  [infinity] when no link crosses
      islands. *)
end

type built
(** A realized graph: engines, pools, nodes, links (and boundary links
    at island cuts). *)

val build : Phi_sim.Engine.t -> Graph.t -> built
(** Serial realization: every node and link on the given engine with
    one shared packet pool; island assignments are ignored and
    cross-island links become ordinary links. *)

val build_partitioned : Phi_sim.Pdes.t -> Graph.t -> built
(** Partitioned realization: adds one [Pdes] island per graph island
    (in index order) to the given coordinator, gives each its own
    packet pool, and realizes every cross-island link as a
    {!Boundary_link} (registering its delay as lookahead and its drain
    in link-insertion order — part of the determinism contract).
    Raises [Invalid_argument] if any cross-island link has zero
    delay. *)

val node : built -> id:int -> Node.t
val node_engine : built -> id:int -> Phi_sim.Engine.t
val node_pool : built -> id:int -> Packet.pool

val island_engine : built -> island:int -> Phi_sim.Engine.t
(** The island's engine (a serial build has a single engine, returned
    for every island). *)

val island_pool : built -> island:int -> Packet.pool
val islands_of : built -> Phi_sim.Pdes.island array
(** The coordinator islands of a partitioned build ([[||]] serial). *)

val engines : built -> Phi_sim.Engine.t array

val link_of : built -> int -> Link.t
(** The realized link at a graph link index.  For a boundary this is
    the egress half — queue, drop and delivery counters all live
    there. *)

val boundary_of : built -> int -> Boundary_link.t option
(** The boundary at a link index, when the link crosses islands in a
    partitioned build. *)

val find_link : built -> label:string -> int
(** Index of the link declared with [~label].  Raises
    [Invalid_argument] when no such label exists. *)

val total_events : built -> int
(** Sum of [Engine.executed] over the realization's engines. *)

(** {2 The topology zoo}

    Named scenario-plane topologies, all emitted through {!Graph}. *)

module Zoo : sig
  type flow_path = {
    src : int;  (** sender node id *)
    dst : int;  (** receiver node id *)
    rtt_s : float;  (** two-way propagation delay of the path *)
  }

  type t = {
    name : string;
    graph : Graph.t;
    flow_paths : flow_path array;
    bottlenecks : int array;
        (** graph link indices of the contended links — where AQM
            regimes apply and windowed measurement happens *)
    bottleneck_bw_bps : float;  (** bandwidth of one bottleneck link *)
    incast_sink : int;
        (** node incast bursts converge on ([-1] when the topology has
            no host pairs at all) *)
    incast_sources : int array;
        (** hosts with a valid forward route to — and ACK route back
            from — [incast_sink]; empty disables the incast regime *)
  }

  val dumbbell : ?spec:spec -> unit -> t
  (** The paper's Figure 1 dumbbell through the graph builder — same
      node ids, link parameters and routes as the legacy {!dumbbell}
      record constructor (a qcheck property holds the two
      byte-identical).  Island 0 holds the left side, island 1 the
      right; the cut runs through the bottleneck. *)

  type parking_lot_spec = {
    segments : int;
    local_pairs : int;  (** sender/receiver pairs per segment *)
    long_flows : int;  (** flows traversing every segment *)
    hop_bw_bps : float;
    hop_delay_s : float;
    cut_bw_bps : float;
    cut_delay_s : float;  (** inter-segment delay = partition lookahead *)
    pl_access_bw_bps : float;
    pl_access_delay_s : float;
    buffer_pkts : int;
  }

  val default_parking_lot : parking_lot_spec
  (** Light matrix-cell sizing (3 segments x 3 pairs + 3 long flows);
      the partitioned bench passes its own heavier spec. *)

  val parking_lot : ?spec:parking_lot_spec -> unit -> t
  (** The multi-bottleneck chain: one island per segment, long flows
      crossing every cut over 10 ms boundaries.  Subsumes the ad-hoc
      builder the [Parking_lot] experiment carried; node ids keep its
      global scheme ({!pl_long_sender_id} and friends). *)

  val pl_long_sender_id : int -> int
  val pl_long_receiver_id : int -> int
  val pl_local_sender_id : segment:int -> pair:int -> int
  val pl_local_receiver_id : segment:int -> pair:int -> int
  val pl_left_router_id : int -> int
  val pl_right_router_id : int -> int

  val fat_tree_pod :
    ?k:int ->
    ?core_bw_bps:float ->
    ?core_delay_s:float ->
    ?host_bw_bps:float ->
    ?host_delay_s:float ->
    ?buffer_pkts:int ->
    unit ->
    t
  (** One pod of a [k]-ary fat tree ([k] even): k/2 edge switches, k/2
      aggregation switches, k/2 hosts per edge.  Inter-edge paths climb
      to an aggregation switch chosen deterministically by destination,
      so routing stays destination-based.  Flows pair each host with
      its slot-mate one edge over. *)

  val wan :
    ?sites:int ->
    ?hosts_per_site:int ->
    ?wan_bw_bps:float ->
    ?access_bw_bps:float ->
    ?access_delay_s:float ->
    ?buffer_pkts:int ->
    unit ->
    t
  (** Inter-datacenter mesh: [sites] routers fully meshed by long-haul
      links with heterogeneous one-way delays (15 ms + 18 ms per pair
      enumeration step, so ~15–105 ms at 4 sites), one island per site.
      Flows round-robin over the ordered site pairs.  Every long-haul
      link is a cut, so the partition lookahead is the smallest pair
      delay. *)

  val wan_site_router_id : int -> int
  val wan_host_id : site:int -> slot:int -> int

  val names : string list
  (** The registry: ["dumbbell"; "parking_lot"; "fat_tree_pod"; "wan"]. *)

  val by_name : string -> t
  (** Default-sized constructor lookup — how matrix cells materialize a
      topology inside a pool worker from its name alone.  Raises
      [Invalid_argument] on an unknown name. *)
end
