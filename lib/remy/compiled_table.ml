type t = {
  source : Rule_table.t;
  generation : int;
  dims : int;
  (* Interior cut points per axis, sorted ascending, padded to a
     power-of-two length with [infinity] so the interval search below
     needs no length check.  An axis with a single interval stores just
     the padding. *)
  cuts : floatarray array;
  (* Intervals per axis (= interior cuts + 1). *)
  sizes : int array;
  (* Flat cell -> whisker index, axis-major. *)
  cells : int array;
  (* SoA copies of the whisker actions (already clamped by
     [Whisker.create]). *)
  inc : floatarray;
  mult : floatarray;
  isend : floatarray;
}

let max_cells = 1 lsl 22

let sorted_unique values =
  let values = List.sort_uniq Float.compare values in
  Array.of_list values

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Distinct box boundaries on [axis], ascending: the grid lines. *)
let boundaries whiskers axis =
  sorted_unique
    (List.concat_map
       (fun w ->
         [ w.Whisker.box.Whisker.lo.(axis); w.Whisker.box.Whisker.hi.(axis) ])
       whiskers)

let compile table =
  let dims = Rule_table.dims table in
  let whiskers = Rule_table.whiskers table in
  let bounds = Array.init dims (fun axis -> boundaries whiskers axis) in
  let sizes = Array.map (fun b -> Array.length b - 1) bounds in
  Array.iter
    (fun n -> if n < 1 then invalid_arg "Compiled_table.compile: degenerate axis")
    sizes;
  let cell_count = Array.fold_left ( * ) 1 sizes in
  if cell_count > max_cells then
    invalid_arg
      (Printf.sprintf "Compiled_table.compile: %d cells exceeds the %d-cell cap" cell_count
         max_cells);
  let cuts =
    Array.map
      (fun b ->
        (* Interior boundaries only: the outer faces bound the whole
           cube, so they never discriminate between intervals. *)
        let interior = Array.length b - 2 in
        let padded = Float.Array.make (pow2_at_least (Int.max 1 interior)) infinity in
        for i = 0 to interior - 1 do
          Float.Array.set padded i b.(i + 1)
        done;
        padded)
      bounds
  in
  (* Resolve each grid cell through the interpreted reference lookup on
     the cell's center.  Grid lines include every whisker boundary, so a
     whisker box is exactly a union of cells: the center's whisker is
     the whole cell's whisker. *)
  let cells = Array.make cell_count 0 in
  let center = Array.make dims 0. in
  let indices = Array.make dims 0 in
  for cell = 0 to cell_count - 1 do
    let rest = ref cell in
    for axis = dims - 1 downto 0 do
      indices.(axis) <- !rest mod sizes.(axis);
      rest := !rest / sizes.(axis)
    done;
    for axis = 0 to dims - 1 do
      let b = bounds.(axis) in
      let i = indices.(axis) in
      center.(axis) <- (b.(i) +. b.(i + 1)) /. 2.
    done;
    cells.(cell) <- Rule_table.lookup_index table center
  done;
  let n = List.length whiskers in
  let inc = Float.Array.create n in
  let mult = Float.Array.create n in
  let isend = Float.Array.create n in
  List.iteri
    (fun i w ->
      let a = w.Whisker.action in
      Float.Array.set inc i a.Whisker.window_increment;
      Float.Array.set mult i a.Whisker.window_multiple;
      Float.Array.set isend i a.Whisker.intersend_s)
    whiskers;
  {
    source = table;
    generation = Rule_table.generation table;
    dims;
    cuts;
    sizes;
    cells;
    inc;
    mult;
    isend;
  }

(* Count of cut points <= p.(axis): branch-free binary search over a
   power-of-two array (padding is [infinity], never <= a finite
   coordinate).  With half-open boxes this count is exactly the
   interval index: a point sitting on a cut belongs to the interval the
   cut opens, and x = 1 lands in the last interval (the inclusive upper
   face).  The probe coordinate is re-read from the floatarray inside
   each comparison rather than passed as an argument: float arguments
   are boxed across function calls (two minor words per axis per
   lookup), while int-and-pointer arguments keep the whole search
   allocation-free. *)
let rec count_le (cuts : floatarray) (p : floatarray) axis base half =
  if half = 0 then
    base
    + Bool.to_int (Float.Array.unsafe_get cuts base <= Float.Array.unsafe_get p axis)
  else
    let le =
      Float.Array.unsafe_get cuts (base + half - 1) <= Float.Array.unsafe_get p axis
    in
    count_le cuts p axis (base + (half land -(Bool.to_int le))) (half lsr 1)

let rec cell_of t (p : floatarray) axis acc =
  if axis >= t.dims then acc
  else
    let cuts = Array.unsafe_get t.cuts axis in
    let idx = count_le cuts p axis 0 (Float.Array.length cuts lsr 1) in
    cell_of t p (axis + 1) ((acc * Array.unsafe_get t.sizes axis) + idx)

let[@inline] lookup t (p : floatarray) = Array.unsafe_get t.cells (cell_of t p 0 0)

let lookup_point t point =
  if Array.length point < t.dims then invalid_arg "Compiled_table.lookup_point: short point";
  let p = Float.Array.create t.dims in
  for i = 0 to t.dims - 1 do
    Float.Array.set p i point.(i)
  done;
  lookup t p

let[@inline] apply t index ~cwnd =
  let x =
    (Float.Array.unsafe_get t.mult index *. cwnd) +. Float.Array.unsafe_get t.inc index
  in
  Float.max 1. (Float.min Whisker.max_cwnd x)

let[@inline] window_increment t index = Float.Array.get t.inc index
let[@inline] window_multiple t index = Float.Array.get t.mult index
let[@inline] intersend_s t index = Float.Array.unsafe_get t.isend index

let is_fresh t table = t.source == table && t.generation = Rule_table.generation table

let source t = t.source
let generation t = t.generation
let dims t = t.dims
let size t = Float.Array.length t.inc
let cell_count t = Array.length t.cells
