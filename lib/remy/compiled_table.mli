(** The decision-plane compiler: lower a trained {!Rule_table.t} into
    flat, unboxed match tables.

    The interpreted table is a linear scan over boxed whisker records —
    fine for training, hostile to the per-ack hot path.  Following the
    NetKAT-compiler idiom (compile the policy language once, then do
    cheap lookups forever), [compile] lowers the whisker partition into:

    - per-axis sorted {e cut points} (every distinct box boundary on that
      axis), padded to a power-of-two length with [infinity] so interval
      location is a branch-free binary search;
    - a flat {e cell → whisker index} array over the grid the cuts
      induce (axis-major), resolved at compile time by the interpreted
      reference lookup on each cell's center;
    - structure-of-arrays copies of the (already clamped) whisker
      actions in unboxed [floatarray]s.

    Because the grid boundaries include every whisker's own boundaries,
    each whisker box is exactly a union of grid cells, so the compiled
    lookup agrees with the interpreted one on {e every} point of the
    unit cube — including points exactly on cut planes (half-open boxes,
    upper face inclusive at 1).  A qcheck property and the pretrained
    tables pin this equivalence.

    The compiled form is immutable and safe to share across
    {!Phi_runner.Pool} domains.  It is generation-stamped against its
    source: any {!Rule_table.split}, {!Rule_table.split_axis} or
    {!Rule_table.set_action} bumps the source generation, after which
    {!is_fresh} returns [false] and the holder must recompile. *)

type t

val compile : Rule_table.t -> t
(** Lower the table.  O(cells x whiskers) — done once per trained table,
    off the hot path.  Raises [Invalid_argument] if the induced grid
    exceeds 2^22 cells (a partition that fine is a training bug). *)

val lookup : t -> floatarray -> int
(** The whisker index (position in [Rule_table.whiskers] of the source)
    containing the point.  Branch-free interval binary search per axis +
    one flat array load: no allocation, no pointer chasing.  The point
    must have at least [dims] coordinates; coordinates are clamped to
    the grid, so out-of-cube points resolve to the nearest edge cell
    rather than raising. *)

val lookup_point : t -> float array -> int
(** {!lookup} for a boxed point (allocates a scratch; for tests and
    cold paths). *)

val apply : t -> int -> cwnd:float -> float
(** [Whisker.apply] for the indexed action, replaying the exact same
    float operations on the SoA copies — byte-identical windows. *)

val window_increment : t -> int -> float
val window_multiple : t -> int -> float

val intersend_s : t -> int -> float
(** The indexed action's pacing gap, straight from the unboxed copy. *)

val is_fresh : t -> Rule_table.t -> bool
(** [true] iff this compiled form was compiled from exactly this table
    (physical equality) at its current generation. *)

val source : t -> Rule_table.t
val generation : t -> int

val dims : t -> int

val size : t -> int
(** Number of whisker actions (= [Rule_table.size] of the source at
    compile time). *)

val cell_count : t -> int
(** Number of grid cells in the flat match table. *)
