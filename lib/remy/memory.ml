let alpha = 1. /. 8.
let ewma_scale = 0.15

type t = {
  mutable ack_ewma : float;
  mutable send_ewma : float;
  mutable rtt_ratio : float;
  mutable util : float;
  mutable last_ack_at : float;
  mutable last_echo : float;
  mutable min_rtt : float;
  mutable seen_ack : bool;
}

let create () =
  {
    ack_ewma = 0.;
    send_ewma = 0.;
    rtt_ratio = 1.;
    util = 0.;
    last_ack_at = 0.;
    last_echo = 0.;
    min_rtt = infinity;
    seen_ack = false;
  }

let dims_remy = 3
let dims_phi = 4

let blend old x = ((1. -. alpha) *. old) +. (alpha *. x)

let on_ack t ~now ~echo_sent_at =
  let rtt = now -. echo_sent_at in
  if rtt > 0. then begin
    if rtt < t.min_rtt then t.min_rtt <- rtt;
    t.rtt_ratio <- Float.max 1. (rtt /. t.min_rtt)
  end;
  if t.seen_ack then begin
    t.ack_ewma <- blend t.ack_ewma (Float.max 0. (now -. t.last_ack_at));
    t.send_ewma <- blend t.send_ewma (Float.max 0. (echo_sent_at -. t.last_echo))
  end;
  t.last_ack_at <- now;
  t.last_echo <- echo_sent_at;
  t.seen_ack <- true

let set_utilization t u = t.util <- Float.max 0. (Float.min 1. u)

let utilization t = t.util
let ack_ewma t = t.ack_ewma
let send_ewma t = t.send_ewma
let rtt_ratio t = t.rtt_ratio
let min_rtt t = if Float.is_finite t.min_rtt then Some t.min_rtt else None

let squash_ewma x = x /. (x +. ewma_scale)
let squash_ratio r = (r -. 1.) /. r

let to_point t ~dims =
  if dims = dims_remy then
    [| squash_ewma t.send_ewma; squash_ewma t.ack_ewma; squash_ratio t.rtt_ratio |]
  else if dims = dims_phi then
    [| squash_ewma t.send_ewma; squash_ewma t.ack_ewma; squash_ratio t.rtt_ratio; t.util |]
  else invalid_arg "Memory.to_point: dims must be 3 or 4"

let write_point t ~dims (out : floatarray) =
  if Float.Array.length out < dims then invalid_arg "Memory.write_point: scratch too short";
  if dims <> dims_remy && dims <> dims_phi then
    invalid_arg "Memory.write_point: dims must be 3 or 4";
  Float.Array.unsafe_set out 0 (squash_ewma t.send_ewma);
  Float.Array.unsafe_set out 1 (squash_ewma t.ack_ewma);
  Float.Array.unsafe_set out 2 (squash_ratio t.rtt_ratio);
  if dims = dims_phi then Float.Array.unsafe_set out 3 t.util

let reset t =
  t.ack_ewma <- 0.;
  t.send_ewma <- 0.;
  t.rtt_ratio <- 1.;
  t.last_ack_at <- 0.;
  t.last_echo <- 0.;
  t.min_rtt <- infinity;
  t.seen_ack <- false
