(** A Remy sender's congestion signals ("memory" in Remy parlance).

    Per TCP ex machina (Winstein & Balakrishnan, SIGCOMM 2013), each sender
    tracks:

    - [ack_ewma]: moving average of the interarrival time between ACKs;
    - [send_ewma]: moving average of the interarrival time between the
      send times of the packets being ACKed (echoed by the receiver);
    - [rtt_ratio]: the latest RTT divided by the minimum RTT seen.

    The Phi extension (Section 2.2.4 of the Five Computers paper) adds a
    fourth dimension: the bottleneck-link utilization [u] as supplied by
    the context server (practical) or a live oracle (ideal).

    For rule matching, signals are mapped into the unit cube: EWMAs via
    [x / (x + 0.15)] (0.15 s being the topology's RTT scale), the RTT
    ratio via [(r - 1) / r], and utilization as-is. *)

type t

val create : unit -> t

val dims_remy : int
(** 3: the classic signal set. *)

val dims_phi : int
(** 4: classic signals plus utilization. *)

val on_ack : t -> now:float -> echo_sent_at:float -> unit
(** Update the EWMAs and RTT ratio from an ACK received at [now] for a
    packet originally sent at [echo_sent_at]. *)

val set_utilization : t -> float -> unit
(** Install the shared utilization signal (clamped to [0, 1]). *)

val utilization : t -> float

val ack_ewma : t -> float
val send_ewma : t -> float
val rtt_ratio : t -> float
val min_rtt : t -> float option

val to_point : t -> dims:int -> float array
(** Normalized position in the unit cube; [dims] is {!dims_remy} or
    {!dims_phi}. *)

val write_point : t -> dims:int -> floatarray -> unit
(** {!to_point} without the allocation: write the same [dims] normalized
    coordinates into the first [dims] slots of a caller-owned unboxed
    scratch array.  This is the per-ack hot path feeding
    {!Compiled_table.lookup}. *)

val reset : t -> unit
