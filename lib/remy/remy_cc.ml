module Cc = Phi_tcp.Cc

type util_feed = [ `None | `At_start of (unit -> float) | `Live of (unit -> float) ]

let make ?name ~table ~util () =
  let dims =
    match util with `None -> Memory.dims_remy | `At_start _ | `Live _ -> Memory.dims_phi
  in
  if Rule_table.dims table <> dims then
    invalid_arg "Remy_cc.make: table dimensionality does not match utilization feed";
  let memory = Memory.create () in
  (match util with
  | `At_start f | `Live f -> Memory.set_utilization memory (f ())
  | `None -> ());
  let apply_whisker (cc : Cc.t) =
    let whisker = Rule_table.lookup table (Memory.to_point memory ~dims) in
    cc.Cc.cwnd <- Whisker.apply whisker.Whisker.action ~cwnd:cc.Cc.cwnd;
    cc.Cc.pacing_gap_s <- whisker.Whisker.action.Whisker.intersend_s
  in
  let on_ack cc ~now ~rtt ~sent_at ~newly_acked:_ =
    (* [rtt > 0.] is the has-sample test: no sample is [nan]. *)
    if rtt > 0. then begin
      Memory.on_ack memory ~now ~echo_sent_at:sent_at;
      (match util with
      | `Live f -> Memory.set_utilization memory (f ())
      | `At_start _ | `None -> ());
      apply_whisker cc
    end
  in
  (* Remy prescribes no loss response; on timeout the window collapses and
     the rule table rebuilds it from subsequent ACKs. *)
  let on_loss _cc ~now:_ = () in
  let on_timeout (cc : Cc.t) ~now:_ = cc.Cc.cwnd <- 1. in
  (* The initial whisker (matching the blank memory) sets the starting
     window and pacing. *)
  let whisker = Rule_table.lookup_quiet table (Memory.to_point memory ~dims) in
  let name =
    match name with
    | Some n -> n
    | None -> ( match util with `None -> "remy" | `At_start _ | `Live _ -> "remy-phi")
  in
  Cc.make ~name
    ~initial_cwnd:(Whisker.apply whisker.Whisker.action ~cwnd:1.)
    ~initial_ssthresh:65536. ~recovery:Cc.Go_back_n
    ~pacing_gap_s:whisker.Whisker.action.Whisker.intersend_s ~on_ack ~on_loss ~on_timeout ()
