module Cc = Phi_tcp.Cc

type util_feed = [ `None | `At_start of (unit -> float) | `Live of (unit -> float) ]

let no_counts : int array = [||]

let make ?name ?(counts = no_counts) ~table ~util () =
  let dims =
    match util with `None -> Memory.dims_remy | `At_start _ | `Live _ -> Memory.dims_phi
  in
  if Compiled_table.dims table <> dims then
    invalid_arg "Remy_cc.make: table dimensionality does not match utilization feed";
  if Array.length counts <> 0 && Array.length counts < Compiled_table.size table then
    invalid_arg "Remy_cc.make: counts array shorter than the table";
  let memory = Memory.create () in
  (match util with
  | `At_start f | `Live f -> Memory.set_utilization memory (f ())
  | `None -> ());
  (* One unboxed scratch point per controller: the ack path writes the
     normalized memory into it and the compiled lookup reads it back —
     no per-ack allocation. *)
  let point = Float.Array.make dims 0. in
  let on_ack (cc : Cc.t) ~now ~rtt ~sent_at ~newly_acked:_ =
    (* [rtt > 0.] is the has-sample test: no sample is [nan]. *)
    if rtt > 0. then begin
      Memory.on_ack memory ~now ~echo_sent_at:sent_at;
      (match util with
      | `Live f -> Memory.set_utilization memory (f ())
      | `At_start _ | `None -> ());
      Memory.write_point memory ~dims point;
      let index = Compiled_table.lookup table point in
      if Array.length counts <> 0 then
        Array.unsafe_set counts index (Array.unsafe_get counts index + 1);
      cc.Cc.cwnd <- Compiled_table.apply table index ~cwnd:cc.Cc.cwnd;
      cc.Cc.pacing_gap_s <- Compiled_table.intersend_s table index
    end
  in
  (* Remy prescribes no loss response; on timeout the window collapses and
     the rule table rebuilds it from subsequent ACKs. *)
  let on_loss _cc ~now:_ = () in
  let on_timeout (cc : Cc.t) ~now:_ = cc.Cc.cwnd <- 1. in
  (* The initial whisker (matching the blank memory) sets the starting
     window and pacing. *)
  Memory.write_point memory ~dims point;
  let index = Compiled_table.lookup table point in
  let name =
    match name with
    | Some n -> n
    | None -> ( match util with `None -> "remy" | `At_start _ | `Live _ -> "remy-phi")
  in
  Cc.make ~name
    ~initial_cwnd:(Compiled_table.apply table index ~cwnd:1.)
    ~initial_ssthresh:65536. ~recovery:Cc.Go_back_n
    ~pacing_gap_s:(Compiled_table.intersend_s table index)
    ~on_ack ~on_loss ~on_timeout ()
