(** Remy as a congestion controller on the unified {!Phi_tcp.Sender}.

    On every (RTT-sampling) ACK the controller updates its {!Memory.t},
    looks up the matching whisker in the {!Rule_table.t} and applies its
    action: the window map becomes [Cc.cwnd], the minimum intersend
    spacing becomes [Cc.pacing_gap_s] (the sender paces transmissions
    accordingly).  Recovery is [Cc.Go_back_n]: Remy's control law is
    loss-agnostic, so losses repair through the retransmission timeout
    alone and SACK information is ignored.

    Utilization feeds (the Phi extension) come in two flavours matching
    the paper: [`Live] re-reads an oracle at every ACK (Remy-Phi-ideal),
    [`At_start] samples once when the controller is created — i.e. at
    connection start (Remy-Phi-practical); [`None] is classic Remy. *)

type util_feed =
  [ `None  (** classic Remy: 3-dimensional memory *)
  | `At_start of (unit -> float)  (** sampled once at connection start *)
  | `Live of (unit -> float)  (** re-read on every ACK *) ]

val make : ?name:string -> table:Rule_table.t -> util:util_feed -> unit -> Phi_tcp.Cc.t
(** A fresh controller for one connection ([name] defaults to ["remy"] or
    ["remy-phi"] by feed).  Raises [Invalid_argument] when the table's
    dimensionality does not match the utilization feed (3 for [`None],
    4 otherwise). *)
