(** Remy as a congestion controller on the unified {!Phi_tcp.Sender}.

    On every (RTT-sampling) ACK the controller updates its {!Memory.t},
    locates the matching whisker through the {e compiled} decision table
    ({!Compiled_table.lookup}: branch-free, allocation-free) and applies
    its action: the window map becomes [Cc.cwnd], the minimum intersend
    spacing becomes [Cc.pacing_gap_s] (the sender paces transmissions
    accordingly).  Recovery is [Cc.Go_back_n]: Remy's control law is
    loss-agnostic, so losses repair through the retransmission timeout
    alone and SACK information is ignored.

    Utilization feeds (the Phi extension) come in two flavours matching
    the paper: [`Live] re-reads an oracle at every ACK (Remy-Phi-ideal),
    [`At_start] samples once when the controller is created — i.e. at
    connection start (Remy-Phi-practical); [`None] is classic Remy. *)

type util_feed =
  [ `None  (** classic Remy: 3-dimensional memory *)
  | `At_start of (unit -> float)  (** sampled once at connection start *)
  | `Live of (unit -> float)  (** re-read on every ACK *) ]

val make :
  ?name:string ->
  ?counts:int array ->
  table:Compiled_table.t ->
  util:util_feed ->
  unit ->
  Phi_tcp.Cc.t
(** A fresh controller for one connection ([name] defaults to ["remy"] or
    ["remy-phi"] by feed).  [counts], when non-empty, is a caller-owned
    per-whisker usage array (indexed like {!Compiled_table.lookup}
    results) incremented on every ack-path lookup — how the trainer
    observes usage now that lookups are pure.  Raises [Invalid_argument]
    when the table's dimensionality does not match the utilization feed
    (3 for [`None], 4 otherwise) or when [counts] is non-empty but
    shorter than the table. *)
