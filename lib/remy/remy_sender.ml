module Engine = Phi_sim.Engine
module Node = Phi_net.Node
module Packet = Phi_net.Packet
module Rto = Phi_tcp.Rto
module Flow = Phi_tcp.Flow

type util_feed = [ `None | `At_start of (unit -> float) | `Live of (unit -> float) ]

type t = {
  engine : Engine.t;
  node : Node.t;
  pool : Packet.pool;
  flow : int;
  dst : int;
  table : Rule_table.t;
  memory : Memory.t;
  util : util_feed;
  dims : int;
  total : int;
  source_index : int;
  on_complete : Flow.conn_stats -> unit;
  rto : Rto.t;
  mutable cwnd : float;
  mutable intersend : float;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable highest_sent : int;
  mutable next_send_at : float;
  mutable send_timer : Engine.handle option;
  mutable rto_handle : Engine.handle option;
  mutable started : bool;
  mutable completed : bool;
  mutable started_at : float;
  mutable finished_at : float;
  mutable retransmitted : int;
  mutable timeouts : int;
  mutable rtt_count : int;
  mutable rtt_sum : float;
  mutable rtt_min : float;
}

let cwnd t = t.cwnd
let acked_segments t = t.snd_una
let completed t = t.completed
let timeouts t = t.timeouts

let stats t =
  let finished_at = if t.completed then t.finished_at else Engine.now t.engine in
  {
    Flow.flow = t.flow;
    source_index = t.source_index;
    started_at = t.started_at;
    finished_at;
    bytes = t.snd_una * Packet.mss;
    segments = t.snd_una;
    retransmitted_segments = t.retransmitted;
    timeouts = t.timeouts;
    rtt_samples = t.rtt_count;
    min_rtt = (if t.rtt_count > 0 then t.rtt_min else nan);
    mean_rtt = (if t.rtt_count > 0 then t.rtt_sum /. float_of_int t.rtt_count else nan);
  }

let cancel_timer engine handle_ref cancel_set =
  match handle_ref with
  | Some h ->
    Engine.cancel engine h;
    cancel_set ()
  | None -> ()

let cancel_send_timer t = cancel_timer t.engine t.send_timer (fun () -> t.send_timer <- None)
let cancel_rto t = cancel_timer t.engine t.rto_handle (fun () -> t.rto_handle <- None)

let send_segment t seq =
  let retransmit = seq < t.highest_sent in
  if retransmit then t.retransmitted <- t.retransmitted + 1;
  let pkt =
    Packet.acquire_data t.pool ~flow:t.flow ~src:(Node.id t.node) ~dst:t.dst ~seq
      ~now:(Engine.now t.engine) ~retransmit
  in
  Node.receive t.node pkt;
  if seq >= t.highest_sent then t.highest_sent <- seq + 1

let rec arm_rto t =
  cancel_rto t;
  let delay = Rto.current t.rto in
  t.rto_handle <- Some (Engine.schedule_after t.engine ~delay (fun () -> on_rto t))

and on_rto t =
  t.rto_handle <- None;
  if (not t.completed) && t.snd_una < t.total then begin
    t.timeouts <- t.timeouts + 1;
    Rto.backoff t.rto;
    (* Remy prescribes no timeout response; collapse the window and let
       the rule table rebuild it from subsequent ACKs. *)
    t.cwnd <- 1.;
    t.snd_nxt <- t.snd_una;
    pump t;
    arm_rto t
  end

and pump t =
  if not t.completed then begin
    let now = Engine.now t.engine in
    let window = int_of_float (Float.max 1. t.cwnd) in
    let blocked_on_pacing = ref false in
    let continue = ref true in
    while !continue do
      if t.snd_nxt - t.snd_una >= window || t.snd_nxt >= t.total then continue := false
      else if now < t.next_send_at then begin
        blocked_on_pacing := true;
        continue := false
      end
      else begin
        send_segment t t.snd_nxt;
        t.snd_nxt <- t.snd_nxt + 1;
        t.next_send_at <- Float.max now t.next_send_at +. t.intersend
      end
    done;
    if t.rto_handle = None && t.snd_nxt > t.snd_una then arm_rto t;
    if !blocked_on_pacing && t.send_timer = None then begin
      let delay = Float.max 0. (t.next_send_at -. now) in
      t.send_timer <-
        Some
          (Engine.schedule_after t.engine ~delay (fun () ->
               t.send_timer <- None;
               pump t))
    end
  end

let complete t =
  t.completed <- true;
  t.finished_at <- Engine.now t.engine;
  cancel_rto t;
  cancel_send_timer t;
  Node.unbind_flow t.node ~flow:t.flow;
  t.on_complete (stats t)

let apply_whisker t =
  let point = Memory.to_point t.memory ~dims:t.dims in
  let whisker = Rule_table.lookup t.table point in
  t.cwnd <- Whisker.apply whisker.Whisker.action ~cwnd:t.cwnd;
  t.intersend <- whisker.Whisker.action.Whisker.intersend_s

let on_packet t pkt =
  (* Remy senders only consume ACKs; fields are copied out of the pooled
     handle before it dies. *)
  if (not (Packet.is_data t.pool pkt)) && not t.completed then begin
    let now = Engine.now t.engine in
    let ack_seq = Packet.seq t.pool pkt in
    if ack_seq > t.snd_una then begin
      t.snd_una <- ack_seq;
      (if Packet.ack_has_echo t.pool pkt then begin
         let sent_at = Packet.ack_echo_sent_at t.pool pkt in
         let rtt = now -. sent_at in
         if rtt > 0. then begin
           Rto.observe t.rto ~rtt;
           t.rtt_count <- t.rtt_count + 1;
           t.rtt_sum <- t.rtt_sum +. rtt;
           if rtt < t.rtt_min then t.rtt_min <- rtt
         end;
         Memory.on_ack t.memory ~now ~echo_sent_at:sent_at;
         (match t.util with
         | `Live f -> Memory.set_utilization t.memory (f ())
         | `At_start _ | `None -> ());
         apply_whisker t
       end);
      if t.snd_una >= t.total then complete t
      else begin
        arm_rto t;
        pump t
      end
    end
    else pump t
  end

let create engine ~node ~flow ~dst ~table ~util ~total_segments ?(source_index = 0)
    ?(on_complete = fun _ -> ()) () =
  if total_segments < 1 then invalid_arg "Remy_sender.create: total_segments must be >= 1";
  let expected_dims =
    match util with `None -> Memory.dims_remy | `At_start _ | `Live _ -> Memory.dims_phi
  in
  if Rule_table.dims table <> expected_dims then
    invalid_arg "Remy_sender.create: table dimensionality does not match utilization feed";
  let memory = Memory.create () in
  (match util with
  | `At_start f | `Live f -> Memory.set_utilization memory (f ())
  | `None -> ());
  let t =
    {
      engine;
      node;
      pool = Node.pool node;
      flow;
      dst;
      table;
      memory;
      util;
      dims = expected_dims;
      total = total_segments;
      source_index;
      on_complete;
      rto = Rto.create ();
      cwnd = 1.;
      intersend = 0.;
      snd_una = 0;
      snd_nxt = 0;
      highest_sent = 0;
      next_send_at = 0.;
      send_timer = None;
      rto_handle = None;
      started = false;
      completed = false;
      started_at = Engine.now engine;
      finished_at = Engine.now engine;
      retransmitted = 0;
      timeouts = 0;
      rtt_count = 0;
      rtt_sum = 0.;
      rtt_min = infinity;
    }
  in
  (* The initial whisker (matching the blank memory) sets the starting
     window and pacing. *)
  let whisker = Rule_table.lookup_quiet table (Memory.to_point memory ~dims:expected_dims) in
  t.cwnd <- Whisker.apply whisker.Whisker.action ~cwnd:1.;
  t.intersend <- whisker.Whisker.action.Whisker.intersend_s;
  Node.bind_flow node ~flow (on_packet t);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    t.started_at <- Engine.now t.engine;
    t.next_send_at <- Engine.now t.engine;
    pump t
  end

let abort t =
  if not t.completed then begin
    t.completed <- true;
    t.finished_at <- Engine.now t.engine;
    cancel_rto t;
    cancel_send_timer t;
    Node.unbind_flow t.node ~flow:t.flow
  end
