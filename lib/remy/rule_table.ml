type t = { dims : int; mutable whiskers : Whisker.t list; mutable generation : int }

let create ~dims action =
  if dims < 1 then invalid_arg "Rule_table.create: dims must be positive";
  { dims; whiskers = [ Whisker.create (Whisker.root_box ~dims) action ]; generation = 0 }

let dims t = t.dims

let whiskers t = t.whiskers

let size t = List.length t.whiskers

let generation t = t.generation

let lookup t point =
  if Array.length point <> t.dims then invalid_arg "Rule_table.lookup: dimension mismatch";
  match List.find_opt (fun w -> Whisker.contains w.Whisker.box point) t.whiskers with
  | Some w -> w
  | None -> invalid_arg "Rule_table.lookup: point outside every whisker (broken partition)"

let lookup_index t point =
  if Array.length point <> t.dims then
    invalid_arg "Rule_table.lookup_index: dimension mismatch";
  let rec find i = function
    | [] -> invalid_arg "Rule_table.lookup_index: point outside every whisker (broken partition)"
    | w :: rest -> if Whisker.contains w.Whisker.box point then i else find (i + 1) rest
  in
  find 0 t.whiskers

let set_action t target action =
  if not (List.memq target t.whiskers) then invalid_arg "Rule_table.set_action: unknown whisker";
  target.Whisker.action <- Whisker.clamp_action action;
  t.generation <- t.generation + 1

let split t target =
  if not (List.memq target t.whiskers) then invalid_arg "Rule_table.split: unknown whisker";
  let children =
    List.map (fun box -> Whisker.create box target.Whisker.action)
      (Whisker.split_box target.Whisker.box)
  in
  t.whiskers <- List.concat_map (fun w -> if w == target then children else [ w ]) t.whiskers;
  t.generation <- t.generation + 1

let split_axis t target ~axis =
  if not (List.memq target t.whiskers) then invalid_arg "Rule_table.split_axis: unknown whisker";
  if axis < 0 || axis >= t.dims then invalid_arg "Rule_table.split_axis: bad axis";
  let box = target.Whisker.box in
  let mid = (box.Whisker.lo.(axis) +. box.Whisker.hi.(axis)) /. 2. in
  let child ~upper =
    let lo = Array.copy box.Whisker.lo and hi = Array.copy box.Whisker.hi in
    if upper then lo.(axis) <- mid else hi.(axis) <- mid;
    Whisker.create { Whisker.lo; hi } target.Whisker.action
  in
  let children = [ child ~upper:false; child ~upper:true ] in
  t.whiskers <- List.concat_map (fun w -> if w == target then children else [ w ]) t.whiskers;
  t.generation <- t.generation + 1

let copy t =
  {
    dims = t.dims;
    whiskers = List.map (fun w -> Whisker.create w.Whisker.box w.Whisker.action) t.whiskers;
    generation = 0;
  }

let extrude t =
  let lift (w : Whisker.t) =
    let box =
      {
        Whisker.lo = Array.append w.Whisker.box.Whisker.lo [| 0. |];
        hi = Array.append w.Whisker.box.Whisker.hi [| 1. |];
      }
    in
    Whisker.create box w.Whisker.action
  in
  { dims = t.dims + 1; whiskers = List.map lift t.whiskers; generation = 0 }

let serialize t =
  let header = Printf.sprintf "remy-table|dims=%d" t.dims in
  String.concat "\n" (header :: List.map Whisker.to_line t.whiskers)

let parse_error msg = raise (Whisker.Parse_error msg)

let deserialize s =
  match String.split_on_char '\n' (String.trim s) with
  | [] -> parse_error "Rule_table.deserialize: empty input"
  | header :: lines -> (
    match String.split_on_char '|' header with
    | [ "remy-table"; dims_field ] -> (
      match String.split_on_char '=' dims_field with
      | [ "dims"; d ] ->
        let dims =
          try int_of_string d
          with Failure _ -> parse_error "Rule_table.deserialize: bad dims"
        in
        let whiskers =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              if line = "" then None else Some (Whisker.of_line line))
            lines
        in
        if whiskers = [] then parse_error "Rule_table.deserialize: no whiskers";
        List.iter
          (fun w ->
            if Array.length w.Whisker.box.Whisker.lo <> dims then
              parse_error "Rule_table.deserialize: whisker dimension mismatch")
          whiskers;
        { dims; whiskers; generation = 0 }
      | _ -> parse_error "Rule_table.deserialize: bad header")
    | _ -> parse_error "Rule_table.deserialize: bad header")
