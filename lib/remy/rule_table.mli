(** A Remy congestion-control program: a partition of the memory space
    into whiskers. *)

type t

val create : dims:int -> Whisker.action -> t
(** One whisker covering the whole unit cube with the given action. *)

val dims : t -> int

val whiskers : t -> Whisker.t list

val size : t -> int

val lookup : t -> float array -> Whisker.t
(** The unique whisker containing the point; increments its usage
    counter.  Raises [Invalid_argument] on dimension mismatch or if the
    partition is somehow broken. *)

val lookup_quiet : t -> float array -> Whisker.t
(** {!lookup} without usage accounting. *)

val most_used : t -> Whisker.t option
(** The whisker with the highest usage count (ties broken arbitrarily);
    [None] when no usage has been recorded. *)

val reset_usage : t -> unit

val split : t -> Whisker.t -> unit
(** Replace a whisker by its [2^d] children, all inheriting its action.
    Raises [Invalid_argument] if the whisker is not in the table. *)

val split_axis : t -> Whisker.t -> axis:int -> unit
(** Bisect a whisker along one axis only (two children).  Used to refine
    the utilization dimension without diluting the rest of the memory
    space.  Raises [Invalid_argument] on unknown whiskers or axes. *)

val copy : t -> t
(** Deep copy (fresh whiskers, usage reset). *)

val extrude : t -> t
(** Lift every whisker into one more dimension, spanning [\[0, 1\]] on the
    new axis.  This is how a Phi table is seeded from a trained classic
    table: start as utilization-oblivious, let training split the new
    axis where the signal pays. *)

val serialize : t -> string

val deserialize : string -> t
(** Inverse of {!serialize}; raises [Whisker.Parse_error] on malformed
    input. *)
