(** A Remy congestion-control program: a partition of the memory space
    into whiskers. *)

type t

val create : dims:int -> Whisker.action -> t
(** One whisker covering the whole unit cube with the given action. *)

val dims : t -> int

val whiskers : t -> Whisker.t list

val size : t -> int

val generation : t -> int
(** A counter bumped by every structural or action mutation ({!split},
    {!split_axis}, {!set_action}).  [Compiled_table] stamps the
    generation it was compiled from, so a stale compiled form is
    detectable with {!Compiled_table.is_fresh}. *)

val lookup : t -> float array -> Whisker.t
(** The unique whisker containing the point.  Pure: shared tables can be
    looked up concurrently.  Raises [Invalid_argument] on dimension
    mismatch or if the partition is somehow broken. *)

val lookup_index : t -> float array -> int
(** Like {!lookup} but returns the whisker's position in {!whiskers}
    (the same index space {!Compiled_table.lookup} returns). *)

val set_action : t -> Whisker.t -> Whisker.action -> unit
(** Replace a whisker's action (clamped) and bump the generation.  The
    only sanctioned way to mutate actions — direct field writes would
    leave stale compiled tables undetectable.  Raises [Invalid_argument]
    if the whisker is not in the table. *)

val split : t -> Whisker.t -> unit
(** Replace a whisker by its [2^d] children, all inheriting its action.
    Bumps the generation.  Raises [Invalid_argument] if the whisker is
    not in the table. *)

val split_axis : t -> Whisker.t -> axis:int -> unit
(** Bisect a whisker along one axis only (two children).  Used to refine
    the utilization dimension without diluting the rest of the memory
    space.  Bumps the generation.  Raises [Invalid_argument] on unknown
    whiskers or axes. *)

val copy : t -> t
(** Deep copy (fresh whiskers, generation reset to 0). *)

val extrude : t -> t
(** Lift every whisker into one more dimension, spanning [\[0, 1\]] on the
    new axis.  This is how a Phi table is seeded from a trained classic
    table: start as utilization-oblivious, let training split the new
    axis where the signal pays. *)

val serialize : t -> string

val deserialize : string -> t
(** Inverse of {!serialize}; raises [Whisker.Parse_error] on malformed
    input. *)
