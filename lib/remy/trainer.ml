module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Monitor = Phi_net.Monitor
module Flow = Phi_tcp.Flow
module Source = Phi_tcp.Source
module Prng = Phi_util.Prng
module Stats = Phi_util.Stats

type scenario = {
  spec : Topology.spec;
  mean_on_bytes : float;
  mean_off_s : float;
  duration_s : float;
}

let paper_scenario =
  { spec = Topology.paper_spec; mean_on_bytes = 100e3; mean_off_s = 0.5; duration_s = 60. }

let default_scenarios =
  (* Load diversity matters: the utilization dimension only pays off if
     training sees both idle and saturated regimes. *)
  [
    paper_scenario;
    { paper_scenario with mean_off_s = 3.0 };  (* light load *)
    { paper_scenario with mean_on_bytes = 500e3; mean_off_s = 1.0 };
    { paper_scenario with spec = { Topology.paper_spec with n = 16 }; mean_off_s = 0.3 };
  ]

type eval_result = {
  objective : float;
  median_objective : float;
  median_throughput_bps : float;
  median_queueing_delay_s : float;
  connections : int;
}

(* Per-connection Remy objective: ln(throughput in Mbps / mean RTT in s).
   Connections without an RTT sample (pathological) are skipped. *)
let conn_objective (stats : Flow.conn_stats) =
  let thr = Flow.throughput_bps stats in
  if thr <= 0. || not (Float.is_finite stats.mean_rtt) || stats.mean_rtt <= 0. then None
  else Some (log (thr /. 1e6 /. stats.mean_rtt))

let run_once ~compiled ~counts ~util ~seed scenario =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine scenario.spec in
  let util_feed : Remy_cc.util_feed =
    match util with
    | `None -> `None
    | `Ideal ->
      let monitor = Monitor.create engine dumbbell.Topology.bottleneck ~interval_s:0.1 in
      `Live (fun () -> Monitor.current_utilization monitor)
  in
  let rng = Prng.create ~seed in
  let flows = Flow.allocator () in
  let records = ref [] in
  let sources =
    Array.init scenario.spec.Topology.n (fun i ->
        Source.create engine ~rng:(Prng.split rng) ~flows
          ~src_node:dumbbell.Topology.senders.(i)
          ~dst_node:dumbbell.Topology.receivers.(i)
          ~index:i
          ~cc_factory:(fun () -> Remy_cc.make ~counts ~table:compiled ~util:util_feed ())
          ~on_conn_end:(fun st -> records := st :: !records)
          { Source.mean_on_bytes = scenario.mean_on_bytes; mean_off_s = scenario.mean_off_s })
  in
  Array.iter Source.start sources;
  Engine.run ~until:scenario.duration_s engine;
  Array.iter Source.abort_current sources;
  !records

let evaluate ?(counts = [||]) ~table ~util ~seeds scenarios =
  if seeds = [] then invalid_arg "Trainer.evaluate: no seeds";
  if scenarios = [] then invalid_arg "Trainer.evaluate: no scenarios";
  (* Compile once per evaluation: the table is fixed for its duration,
     and every simulated ack then pays the flat-table price. *)
  let compiled = Compiled_table.compile table in
  let records =
    List.concat_map
      (fun scenario ->
        List.concat_map (fun seed -> run_once ~compiled ~counts ~util ~seed scenario) seeds)
      scenarios
  in
  let objectives = List.filter_map conn_objective records in
  let throughputs = List.map Flow.throughput_bps records in
  let qdelays =
    List.filter_map
      (fun (r : Flow.conn_stats) ->
        let q = Flow.queueing_delay r in
        if Float.is_finite q && q >= 0. then Some q else None)
      records
  in
  let arr = Array.of_list in
  match objectives with
  | [] ->
    {
      objective = neg_infinity;
      median_objective = neg_infinity;
      median_throughput_bps = 0.;
      median_queueing_delay_s = 0.;
      connections = List.length records;
    }
  | _ ->
    {
      objective = Stats.mean (arr objectives);
      median_objective = Stats.median (arr objectives);
      median_throughput_bps =
        (if throughputs = [] then 0. else Stats.median (arr throughputs));
      median_queueing_delay_s = (if qdelays = [] then 0. else Stats.median (arr qdelays));
      connections = List.length records;
    }

type budget = { rounds : int; seeds : int list; max_passes : int; whiskers_per_round : int }

let default_budget = { rounds = 6; seeds = [ 1; 2 ]; max_passes = 3; whiskers_per_round = 2 }

(* Neighbour actions for coordinate descent. *)
let candidates (a : Whisker.action) =
  let open Whisker in
  List.map clamp_action
    [
      { a with window_increment = a.window_increment +. 8. };
      { a with window_increment = a.window_increment -. 8. };
      { a with window_increment = a.window_increment +. 2. };
      { a with window_increment = a.window_increment -. 2. };
      { a with window_increment = a.window_increment +. 0.5 };
      { a with window_increment = a.window_increment -. 0.5 };
      { a with window_multiple = a.window_multiple *. 1.2 };
      { a with window_multiple = a.window_multiple /. 1.2 };
      { a with window_multiple = a.window_multiple *. 1.02 };
      { a with window_multiple = a.window_multiple /. 1.02 };
      { a with intersend_s = a.intersend_s *. 2. };
      { a with intersend_s = a.intersend_s /. 2. };
      { a with intersend_s = a.intersend_s *. 1.2 };
      { a with intersend_s = a.intersend_s /. 1.2 };
    ]

(* One evaluation run purely to observe usage: the whiskers paired with
   their ack-path lookup counts, busiest first (count ties keep table
   order, like the old usage-counter sort). *)
let rank_by_usage ~table ~util ~seeds scenarios =
  let counts = Array.make (Rule_table.size table) 0 in
  ignore (evaluate ~counts ~table ~util ~seeds scenarios);
  List.mapi (fun i w -> (w, counts.(i))) (Rule_table.whiskers table)
  |> List.filter (fun (_, c) -> c > 0)
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let improve_whisker ~log ~table ~util ~scenarios ~budget (whisker : Whisker.t) =
  let score action =
    let saved = whisker.Whisker.action in
    Rule_table.set_action table whisker action;
    let result = evaluate ~table ~util ~seeds:budget.seeds scenarios in
    Rule_table.set_action table whisker saved;
    result.objective
  in
  let current = ref (score whisker.Whisker.action) in
  let improved_any = ref false in
  let pass () =
    let improved = ref false in
    List.iter
      (fun action ->
        let s = score action in
        if s > !current +. 1e-9 then begin
          Rule_table.set_action table whisker action;
          current := s;
          improved := true;
          improved_any := true
        end)
      (candidates whisker.Whisker.action);
    !improved
  in
  let rec loop passes = if passes > 0 && pass () then loop (passes - 1) in
  loop budget.max_passes;
  log
    (Printf.sprintf "  whisker optimized to obj=%.4f inc=%.2f mult=%.3f isend=%.4f%s" !current
       whisker.Whisker.action.Whisker.window_increment
       whisker.Whisker.action.Whisker.window_multiple
       whisker.Whisker.action.Whisker.intersend_s
       (if !improved_any then "" else " (no improvement)"))

(* Phi refinement: bisect the busiest whiskers along the utilization axis
   and re-optimize each half separately, so the table can be aggressive
   when the shared signal says the bottleneck is idle and conservative
   when it is busy.  This is the step that turns an extruded
   (utilization-oblivious) table into a genuine Remy-Phi table. *)
let refine_utilization ?(log = fun _ -> ()) ~table ~scenarios ~top budget =
  if Rule_table.dims table <> Memory.dims_phi then
    invalid_arg "Trainer.refine_utilization: table must be 4-dimensional";
  let axis = Memory.dims_phi - 1 in
  let busiest = rank_by_usage ~table ~util:`Ideal ~seeds:budget.seeds scenarios in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let targets = take top busiest in
  List.iter
    (fun (w, usage) ->
      Rule_table.split_axis table w ~axis;
      log (Printf.sprintf "refine: split whisker along utilization (usage %d)" usage))
    targets;
  (* Optimize every whisker produced by the axis splits (they are the ones
     whose action may now diverge by utilization). *)
  let children = rank_by_usage ~table ~util:`Ideal ~seeds:budget.seeds scenarios in
  List.iter
    (fun (w, _) -> improve_whisker ~log ~table ~util:`Ideal ~scenarios ~budget w)
    (take (2 * top) children);
  evaluate ~table ~util:`Ideal ~seeds:budget.seeds scenarios

let train ?(log = fun _ -> ()) ~table ~util ~scenarios budget =
  if budget.rounds < 1 then invalid_arg "Trainer.train: rounds must be >= 1";
  for round = 1 to budget.rounds do
    log (Printf.sprintf "round %d/%d (whiskers: %d)" round budget.rounds (Rule_table.size table));
    let by_usage = rank_by_usage ~table ~util ~seeds:budget.seeds scenarios in
    (match by_usage with
    | [] -> log "  no whisker used; stopping early"
    | (busiest, _) :: _ ->
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      List.iter
        (fun (w, _) -> improve_whisker ~log ~table ~util ~scenarios ~budget w)
        (take (Stdlib.max 1 budget.whiskers_per_round) by_usage);
      if round < budget.rounds then Rule_table.split table busiest)
  done;
  evaluate ~table ~util ~seeds:budget.seeds scenarios
