(** Offline Remy training (TCP ex machina, Section 2.2.4 of the Phi
    paper): improve a whisker table by simulation.

    The optimizer is a simplified form of Remy's: repeatedly evaluate the
    table on the training scenarios, pick the most-used whisker, improve
    its action by greedy coordinate descent on the mean objective, then
    split it so later rounds refine the busy region of memory space.  The
    objective per connection is Remy's log network power,
    [ln (throughput_Mbps / mean_rtt_s)]. *)

type scenario = {
  spec : Phi_net.Topology.spec;
  mean_on_bytes : float;
  mean_off_s : float;
  duration_s : float;
}

val paper_scenario : scenario
(** Table 3's setup: the paper dumbbell (8 senders, 15 Mbps, 150 ms RTT),
    exponential on/off with mean 100 KB transfers and 0.5 s idle,
    simulated for 60 s. *)

val default_scenarios : scenario list
(** {!paper_scenario} plus lighter and heavier workload variations,
    mirroring the "range of network and traffic parameters" the paper
    retrained over; the spread of load levels is what lets the Phi
    utilization dimension earn its keep. *)

type eval_result = {
  objective : float;  (** mean per-connection log power (the training signal) *)
  median_objective : float;
  median_throughput_bps : float;
  median_queueing_delay_s : float;
  connections : int;
}

val evaluate :
  ?counts:int array ->
  table:Rule_table.t ->
  util:[ `None | `Ideal ] ->
  seeds:int list ->
  scenario list ->
  eval_result
(** Run every (scenario, seed) pair and aggregate.  The table is
    compiled once ({!Compiled_table.compile}) and every simulated ack
    goes through the flat lookup.  [`Ideal] attaches a bottleneck
    monitor and feeds live utilization to every sender (the
    training-time assumption in the paper); the table must then be
    4-dimensional.  [counts], when given, must have at least
    [Rule_table.size table] slots: slot [i] is incremented for every
    ack-path lookup resolving to whisker [i] — the trainer's usage
    signal, owned by the caller now that table lookups are pure. *)

type budget = {
  rounds : int;  (** optimize-and-split rounds *)
  seeds : int list;  (** training seeds per evaluation *)
  max_passes : int;  (** coordinate-descent sweeps per whisker *)
  whiskers_per_round : int;  (** how many of the busiest whiskers to optimize each round *)
}

val default_budget : budget
(** 6 rounds, 2 seeds, 3 passes, 2 whiskers per round — minutes of CPU,
    enough to beat Cubic on the paper topology. *)

val train :
  ?log:(string -> unit) ->
  table:Rule_table.t ->
  util:[ `None | `Ideal ] ->
  scenarios:scenario list ->
  budget ->
  eval_result
(** Mutates [table] in place; returns the final evaluation. *)

val refine_utilization :
  ?log:(string -> unit) ->
  table:Rule_table.t ->
  scenarios:scenario list ->
  top:int ->
  budget ->
  eval_result
(** The Phi-specific training step: bisect the [top] busiest whiskers of a
    4-dimensional table along the utilization axis and re-optimize the
    resulting halves independently, letting the policy diverge between
    idle and busy network conditions.  Typical use: extrude a trained
    classic table, then refine. *)
