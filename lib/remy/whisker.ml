type action = { window_increment : float; window_multiple : float; intersend_s : float }

let clamp lo hi x = Float.max lo (Float.min hi x)

let clamp_action a =
  {
    window_increment = clamp (-10.) 32. a.window_increment;
    window_multiple = clamp 0.1 2. a.window_multiple;
    intersend_s = clamp 0.0002 0.5 a.intersend_s;
  }

let default_action = { window_increment = 1.; window_multiple = 1.; intersend_s = 0.001 }

let max_cwnd = 1024.

let apply a ~cwnd =
  clamp 1. max_cwnd ((a.window_multiple *. cwnd) +. a.window_increment)

type box = { lo : float array; hi : float array }

let root_box ~dims = { lo = Array.make dims 0.; hi = Array.make dims 1. }

let contains box point =
  let dims = Array.length box.lo in
  if Array.length point <> dims then invalid_arg "Whisker.contains: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims - 1 do
    let x = point.(i) in
    (* The global upper face (hi = 1) is inclusive so that a point on the
       boundary of the root box always matches some whisker. *)
    let upper_ok = x < box.hi.(i) || (box.hi.(i) >= 1. && x <= box.hi.(i)) in
    if not (x >= box.lo.(i) && upper_ok) then ok := false
  done;
  !ok

let split_box box =
  let dims = Array.length box.lo in
  let mid = Array.init dims (fun i -> (box.lo.(i) +. box.hi.(i)) /. 2.) in
  (* Enumerate the 2^d children by the bitmask of "upper half" choices. *)
  let child mask =
    let lo = Array.copy box.lo and hi = Array.copy box.hi in
    for i = 0 to dims - 1 do
      if mask land (1 lsl i) <> 0 then lo.(i) <- mid.(i) else hi.(i) <- mid.(i)
    done;
    { lo; hi }
  in
  List.init (1 lsl dims) child

type t = { box : box; mutable action : action }

let create box action = { box; action = clamp_action action }

let pp ppf t =
  let dims = Array.length t.box.lo in
  let range i = Printf.sprintf "[%.3f,%.3f)" t.box.lo.(i) t.box.hi.(i) in
  let ranges = String.concat "x" (List.init dims range) in
  Format.fprintf ppf "%s -> inc=%.2f mult=%.3f isend=%.4fs" ranges t.action.window_increment
    t.action.window_multiple t.action.intersend_s

let to_line t =
  let floats a = String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list a)) in
  Printf.sprintf "w|%s|%s|%.17g;%.17g;%.17g" (floats t.box.lo) (floats t.box.hi)
    t.action.window_increment t.action.window_multiple t.action.intersend_s

exception Parse_error of string

let of_line line =
  let fail () = raise (Parse_error ("Whisker.of_line: malformed line: " ^ line)) in
  match String.split_on_char '|' line with
  | [ "w"; lo; hi; action ] -> (
    let parse_floats s =
      String.split_on_char ',' s
      |> List.map (fun x -> try float_of_string x with Failure _ -> fail ())
      |> Array.of_list
    in
    let lo = parse_floats lo and hi = parse_floats hi in
    if Array.length lo <> Array.length hi || Array.length lo = 0 then fail ();
    match String.split_on_char ';' action with
    | [ inc; mult; isend ] ->
      let f x = try float_of_string x with Failure _ -> fail () in
      create { lo; hi }
        { window_increment = f inc; window_multiple = f mult; intersend_s = f isend }
    | _ -> fail ())
  | _ -> fail ()
