(** A whisker: one rule of a Remy congestion-control program.

    A whisker owns an axis-aligned box of the (normalized) memory space
    and prescribes the action to take whenever the sender's memory falls
    inside it: how to map the congestion window and how long to wait
    between sends. *)

type action = {
  window_increment : float;  (** additive term, segments *)
  window_multiple : float;  (** multiplicative term *)
  intersend_s : float;  (** minimum gap between packet sends *)
}

val clamp_action : action -> action
(** Clamp into the optimizer's search bounds: increment in [-10, 32]
    (large enough that an idle-network whisker can open a whole short
    transfer's window at once), multiple in [0.1, 2], intersend in
    [0.0002, 0.5] s. *)

val default_action : action
(** A sane conservative starting rule (increment 1, multiple 1, 1 ms
    intersend). *)

val max_cwnd : float
(** 1024 segments: the cap {!apply} enforces.  Exported so
    [Compiled_table.apply] replays the exact same float operations. *)

val apply : action -> cwnd:float -> float
(** [max 1 (multiple * cwnd + increment)], capped at 1024 segments. *)

type box = { lo : float array; hi : float array }
(** Half-open box: [lo.(i) <= x.(i) < hi.(i)].  The root box is
    [\[0, 1)^d] (with 1 treated inclusively by {!contains} so utilization
    1.0 still matches). *)

val root_box : dims:int -> box

val contains : box -> float array -> bool

val split_box : box -> box list
(** All [2^d] children obtained by bisecting every dimension. *)

type t = { box : box; mutable action : action }
(** Usage accounting lives outside the whisker: the trainer keeps an
    explicit per-whisker counts array (see [Trainer]), so lookups on
    shared tables stay pure. *)

val create : box -> action -> t

val pp : Format.formatter -> t -> unit

(** {2 Serialization} — a line-oriented text format used to embed trained
    tables in the library and to save/load them from disk. *)

exception Parse_error of string
(** Raised by {!of_line} (and [Rule_table.deserialize]) on malformed
    table text. *)

val to_line : t -> string

val of_line : string -> t
(** Raises {!Parse_error} on malformed input. *)
