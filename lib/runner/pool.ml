type error = { index : int; exn : exn; backtrace : string }

exception Job_failed of error list

let positive_env name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Some v
    | Some _ | None -> None)

(* [Domain.recommended_domain_count] folds in cgroup quotas and CPU
   affinity, so it is the robust default; PHI_CORES overrides it for
   containers that misreport (a CI runner pinned to one core used to
   make bench reports claim "cores": 1 while running --jobs 4). *)
let available_cores () =
  match positive_env "PHI_CORES" with
  | Some c -> c
  | None -> Domain.recommended_domain_count ()

let default_jobs () =
  match positive_env "PHI_JOBS" with
  | Some j -> j
  | None -> available_cores ()

(* With the engine and packet pools recycling their cells, steady-state
   minor allocation is near zero, so minor collections are rare whatever
   the heap size — what matters is that the minor heap stays resident in
   cache alongside the slabs the simulation actually walks.  64 Kwords
   (512 KB, a quarter of a typical L2) measured best on the sweep
   workloads; the stock 256 Kwords and anything larger just evict slab
   lines.  PHI_MINOR_HEAP=<words> overrides in either direction. *)
let tune_gc () =
  let target =
    match positive_env "PHI_MINOR_HEAP" with
    | Some words -> words
    | None -> 1 lsl 16 (* 64 Kwords = 512 KB per domain *)
  in
  let g = Gc.get () in
  if g.Gc.minor_heap_size <> target then Gc.set { g with Gc.minor_heap_size = target }

(* The worker count a [try_map] actually uses — also what bench
   sections stamp into report metadata, so BENCH_*.json records the
   parallelism a section really ran with (a [--jobs] override included)
   rather than the machine default. *)
let effective_jobs ?jobs ~cells () =
  let requested = match jobs with Some j -> j | None -> default_jobs () in
  if requested < 1 then invalid_arg "Pool.effective_jobs: jobs must be >= 1";
  Stdlib.min requested (Stdlib.max 1 cells)

let run_one f items results i =
  let r =
    try Ok (f items.(i))
    with e -> Error { index = i; exn = e; backtrace = Printexc.get_backtrace () }
  in
  results.(i) <- Some r

let try_map ?jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let results = Array.make n None in
  let workers =
    try effective_jobs ?jobs ~cells:n ()
    with Invalid_argument _ -> invalid_arg "Pool.try_map: jobs must be >= 1"
  in
  let workers = Stdlib.min workers n in
  if workers <= 1 then begin
    (* The serial path: no domain is spawned, jobs run in submission
       order in the calling domain. *)
    tune_gc ();
    for i = 0 to n - 1 do
      run_one f items results i
    done
  end
  else begin
    (* Work-stealing over a shared cursor: each worker claims the next
       unclaimed index.  Each slot of [results] is written by exactly
       one domain, and [Domain.join] publishes those writes before the
       reassembly below reads them. *)
    let next = Atomic.make 0 in
    let worker () =
      tune_gc ();
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else run_one f items results i
      done
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  List.init n (fun i ->
      match results.(i) with
      | Some r -> r
      | None -> Error { index = i; exn = Not_found; backtrace = "" })

let map ?jobs f xs =
  let results = try_map ?jobs f xs in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if errors <> [] then raise (Job_failed errors);
  List.map (function Ok v -> v | Error _ -> assert false) results

let error_to_string e = Printf.sprintf "job %d: %s" e.index (Printexc.to_string e.exn)
