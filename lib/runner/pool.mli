(** Domain-based fan-out for embarrassingly parallel experiment grids.

    Every (setting, seed) cell of a parameter sweep is an independent
    deterministic simulation, so a sweep is a [map] over cells.  [map]
    fans the cells across OCaml 5 domains and reassembles the results in
    submission order, making the parallel run's output bit-for-bit
    identical to the serial run's — callers never observe completion
    order.

    {2 Domain-safety contract}

    The job function is executed concurrently on several domains, so it
    must not touch shared mutable state.  The experiment harness
    satisfies this by constructing everything per run from the seed: a
    job builds its own {!Phi_util.Prng.t}, engine, topology and result
    records, and returns a pure value.  Global accumulators are the one
    exception in this codebase — the {!Phi_sim.Invariant} sanitizer's
    report buffer is process-global and unsynchronized, so armed
    sanitizer runs ([PHI_SANITIZE=1]) must use [jobs:1] (the bench
    driver enforces this).  A phi-lint rule ([domain-global]) guards
    against introducing new top-level mutable state under
    [lib/experiments] and [lib/runner]. *)

type error = {
  index : int;  (** position of the failed job in the submission list *)
  exn : exn;
  backtrace : string;  (** raw backtrace, empty unless recording is on *)
}

exception Job_failed of error list
(** Raised by {!map} after the whole batch has drained, carrying every
    failure (submission order).  One failing job never kills the pool or
    its sibling jobs. *)

val available_cores : unit -> int
(** The parallelism available to this process: the [PHI_CORES]
    environment variable when set to a positive integer (the escape
    hatch for containers whose limits misreport), otherwise
    [Domain.recommended_domain_count ()] — which already accounts for
    cgroup quotas and CPU affinity.  This is what bench reports record
    as ["cores"] and the default width for [--jobs]. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [PHI_JOBS]
    environment variable when set to a positive integer, otherwise
    {!available_cores}. *)

val tune_gc : unit -> unit
(** Size the calling domain's minor heap for sweep workloads: the
    [PHI_MINOR_HEAP] environment variable (in words) when set to a
    positive integer, otherwise 64 Kwords (512 KB) — small enough to
    stay cache-resident next to the event and packet slabs, which is
    what matters now that the steady-state hot path allocates nothing.
    {!try_map} applies this to every worker domain (and to the calling
    domain on the serial path), so sweeps get it automatically;
    standalone drivers may call it directly. *)

val effective_jobs : ?jobs:int -> cells:int -> unit -> int
(** The worker count a [try_map ?jobs] over [cells] items actually
    uses: [jobs] (default {!default_jobs}) clamped to the cell count
    (floor 1).  Bench sections stamp this into their report metadata so
    BENCH_*.json records the parallelism each section really ran with —
    including [--jobs] overrides — not just the machine default.

    @raise Invalid_argument when [jobs < 1]. *)

val try_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [try_map ~jobs f xs] applies [f] to every element of [xs] on a pool
    of [min jobs (List.length xs)] domains (the calling domain counts as
    one worker, so [jobs:4] spawns three).  Results are returned in
    submission order regardless of completion order.  A job that raises
    is captured as [Error] — siblings run to completion.  [jobs:1] (or a
    batch of one) runs everything serially in the calling domain with no
    domain spawned at all — exactly the pre-pool code path.

    @raise Invalid_argument when [jobs < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!try_map} but unwraps the results.

    @raise Job_failed when any job raised, after all jobs finished. *)

val error_to_string : error -> string
(** [job 17: Failure("boom")] — one line per failure, for reports. *)
