(* Allocation-free event core.

   The previous engine allocated, per scheduled event: a [handle] record,
   an [event] record, the action closure, and a boxed float inside the
   heap entry.  At ~10 events per simulated packet that allocation (and
   the GC work to collect it) dominated the per-packet cost.

   This version keeps everything in flat arrays:

   - The event queue is a structure-of-arrays 8-ary min-heap ordered by
     (time, seq): [hp.(i)] holds entry [i]'s timestamp in a [floatarray]
     (unboxed), and [hm] interleaves the FIFO tie-break sequence number
     ([hm.(2i)]) with the payload key ([hm.(2i+1)]) so both land on the
     same cache line.  The heap is inlined here rather than reusing the
     generic {!Heap}: without flambda, [Heap.pop]'s cross-module call
     and the [Some (time, seq, v)] tuple it allocates (including a
     freshly boxed float) cost about 2x on the event-churn
     microbenchmark (bench/micro.ml).

   - Cancellable events live in a slab of reusable cells in parallel
     arrays.  A cell is identified by its index and a generation
     counter; the packed [((generation << idx_bits) | index) << 1] int
     is both the heap payload and the cancellation handle — an
     immediate, so scheduling allocates nothing.  Cancellation bumps the
     cell's generation (entries already in the heap become stale and are
     skipped when popped) and recycles the cell through a free list.  A
     stale handle — cancelled, fired, or pointing at a recycled cell —
     always fails the generation check, so cancel-after-recycle is safe.

   - Hot paths that fire the same logical event over and over (a link's
     transmit-complete and propagation-delivery) pre-register their
     handler once as a {!port}: an index into a per-engine registry,
     carried in the heap key with tag bit 0 set.  Scheduling a port
     touches no cell, no free list and no closure — one heap push.

   Timestamps are compared with raw [<] / [=] rather than
   [Float.compare]: {!checked_time} / {!checked_delay} guarantee every
   queued time is finite (strict mode raises on NaN/infinite input, the
   armed sanitizer clamps to the current clock, itself always finite),
   and on finite floats the raw comparisons agree with [Float.compare]'s
   total order up to -0. = 0. — a tie the seq number then breaks in
   scheduling order, which is exactly the documented FIFO contract. *)

type handle = int

(* Real handles are [packed << 1] of non-negative generation and index,
   so every one is >= 0: any negative int is recognizably no handle at
   all.  [cancel]'s bounds-then-generation check already rejects it. *)
let null : handle = -1

let is_null (h : handle) = h < 0

type port = int

(* 2^25 simultaneous cells is far beyond any simulation here; the
   remaining 37 bits of generation would take ~1.4e11 reuses of one cell
   to wrap. *)
let idx_bits = 25
let idx_mask = (1 lsl idx_bits) - 1

let nop () = ()

type t = {
  (* The clock and the sift scratch cell live in one-slot [floatarray]s
     rather than mutable float fields: storing a float into a mixed
     record allocates a fresh box on every write (one per event for the
     clock), while a [floatarray] store is an unboxed write.  The same
     reasoning moves the in-flight sift timestamp into [tscratch]: it
     lets [push]/[step] hand a timestamp to the sifts without a float
     argument, which the non-flambda compiler would box at the call. *)
  clock : floatarray;
  tscratch : floatarray;
  (* 8-ary min-heap over (time, seq, key). *)
  mutable hp : floatarray;
  mutable hm : int array;  (* hm.(2i) = seq, hm.(2i+1) = key *)
  mutable hlen : int;
  mutable next_seq : int;
  mutable n_exec : int;
  mutable stopping : bool;
  (* Event-cell slab (struct of arrays) plus its free list.  Every cell
     is at all times either live (scheduled, counted by [n_live]) or on
     the free list — the [cell-accounting] sanitizer rule checks this. *)
  mutable cell_gen : int array;
  mutable cell_act : (unit -> unit) array;
  mutable free : int array;
  mutable free_len : int;
  mutable n_live : int;
  (* Pre-registered port handlers; never unregistered. *)
  mutable ports : (unit -> unit) array;
  mutable n_ports : int;
}

let create () =
  {
    clock = Float.Array.make 1 0.;
    tscratch = Float.Array.make 1 0.;
    hp = Float.Array.create 0;
    hm = [||];
    hlen = 0;
    next_seq = 0;
    n_exec = 0;
    stopping = false;
    cell_gen = [||];
    cell_act = [||];
    free = [||];
    free_len = 0;
    n_live = 0;
    ports = [||];
    n_ports = 0;
  }

let[@inline] now t = Float.Array.unsafe_get t.clock 0
let[@inline] set_clock t v = Float.Array.unsafe_set t.clock 0 v

(* {2 Heap primitives}

   Hole-style sifts: keep the moving element in registers, shift
   entries over it, write it once at its final slot.  The unsafe
   accessors are justified by the loop bounds: indices stay within
   [0, hlen) and the arrays never shrink. *)

let grow_heap t =
  let cap = Float.Array.length t.hp in
  let ncap = Stdlib.max 64 (2 * cap) in
  (* Amortized doubling; a sized [create] pre-allocates and never grows. *)
  let np = Float.Array.create ncap in (* phi-lint: allow hot-alloc *)
  Float.Array.blit t.hp 0 np 0 t.hlen;
  t.hp <- np;
  let nm = Array.make (2 * ncap) 0 in (* phi-lint: allow hot-alloc *)
  Array.blit t.hm 0 nm 0 (2 * t.hlen);
  t.hm <- nm

(* [hp]/[hm] are hoisted into locals in both sifts: they are mutable
   record fields, so the compiler would otherwise reload them after
   every array store in the loop.  Safe because the arrays cannot be
   replaced (no grow) while a sift is running. *)
(* Both sifts take their timestamp through [tscratch] rather than a
   float parameter: their callers read it out of a [floatarray] (or
   compute it), and a float argument would be boxed at the call. *)
let sift_up t i0 seq key =
  let time = Float.Array.unsafe_get t.tscratch 0 in
  let hp = t.hp and hm = t.hm in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) lsr 3 in
    let pt = Float.Array.unsafe_get hp parent in
    if time < pt || (time = pt && seq < Array.unsafe_get hm (2 * parent)) then begin
      Float.Array.unsafe_set hp !i pt;
      Array.unsafe_set hm (2 * !i) (Array.unsafe_get hm (2 * parent));
      Array.unsafe_set hm ((2 * !i) + 1) (Array.unsafe_get hm ((2 * parent) + 1));
      i := parent
    end
    else continue := false
  done;
  Float.Array.unsafe_set hp !i time;
  Array.unsafe_set hm (2 * !i) seq;
  Array.unsafe_set hm ((2 * !i) + 1) key

(* [push] takes its timestamp through [tscratch] (see the sifts). *)
let push t ~seq key =
  if t.hlen = Float.Array.length t.hp then grow_heap t;
  let i = t.hlen in
  t.hlen <- i + 1;
  sift_up t i seq key

(* Re-seat [(time, seq, key)] (the former last entry) starting from the
   root, after the minimum has been removed. *)
let sift_down t seq key =
  let time = Float.Array.unsafe_get t.tscratch 0 in
  let hp = t.hp and hm = t.hm in
  let len = t.hlen in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let base = (8 * !i) + 1 in
    if base >= len then continue := false
    else begin
      (* Find the smallest of the up-to-eight children. *)
      let last = Stdlib.min (base + 7) (len - 1) in
      let m = ref base in
      let mt = ref (Float.Array.unsafe_get hp base) in
      let ms = ref (Array.unsafe_get hm (2 * base)) in
      for j = base + 1 to last do
        let jt = Float.Array.unsafe_get hp j in
        if jt < !mt || (jt = !mt && Array.unsafe_get hm (2 * j) < !ms) then begin
          m := j;
          mt := jt;
          ms := Array.unsafe_get hm (2 * j)
        end
      done;
      if !mt < time || (!mt = time && !ms < seq) then begin
        Float.Array.unsafe_set hp !i !mt;
        Array.unsafe_set hm (2 * !i) !ms;
        Array.unsafe_set hm ((2 * !i) + 1) (Array.unsafe_get hm ((2 * !m) + 1));
        i := !m
      end
      else continue := false
    end
  done;
  Float.Array.unsafe_set hp !i time;
  Array.unsafe_set hm (2 * !i) seq;
  Array.unsafe_set hm ((2 * !i) + 1) key

(* {2 Event cells} *)

let grow_slab t =
  let cap = Array.length t.cell_gen in
  let ncap = Stdlib.max 64 (2 * cap) in
  if ncap > idx_mask + 1 then invalid_arg "Engine: event slab exceeds 2^25 cells";
  (* Amortized doubling; a sized [create] pre-allocates and never grows. *)
  let ngen = Array.make ncap 0 in (* phi-lint: allow hot-alloc *)
  Array.blit t.cell_gen 0 ngen 0 cap;
  t.cell_gen <- ngen;
  let nact = Array.make ncap nop in (* phi-lint: allow hot-alloc *)
  Array.blit t.cell_act 0 nact 0 cap;
  t.cell_act <- nact;
  let nfree = Array.make ncap 0 in (* phi-lint: allow hot-alloc *)
  Array.blit t.free 0 nfree 0 t.free_len;
  t.free <- nfree;
  (* Hand out low indices first: the busiest cells stay clustered. *)
  for i = ncap - 1 downto cap do
    t.free.(t.free_len) <- i;
    t.free_len <- t.free_len + 1
  done

(* Return a cell to the free list and invalidate every outstanding
   handle/heap entry for it.  Runs before the action fires, so a handler
   cancelling itself is a no-op, exactly like the old [live] flag.

   The fire path deliberately leaves the fired closure in [cell_act]:
   overwriting it with [nop] costs a write barrier per event, and the
   cell is reused (overwriting the slot anyway) as soon as the next
   event is scheduled.  [cancel] does pay for the [nop] store — a
   cancelled closure may capture a packet that would otherwise be
   pinned until the cell's next reuse, and cancellation is off the
   per-event hot path. *)
let consume t idx =
  Array.unsafe_set t.cell_gen idx (Array.unsafe_get t.cell_gen idx + 1);
  Array.unsafe_set t.free t.free_len idx;
  t.free_len <- t.free_len + 1;
  t.n_live <- t.n_live - 1

let check_cells t =
  let cap = Array.length t.cell_gen in
  if t.n_live < 0 || t.free_len + t.n_live <> cap then
    Invariant.record ~rule:"cell-accounting" ~time:(now t)
      (Printf.sprintf "Engine: %d live + %d free cells <> %d slab capacity" t.n_live
         t.free_len cap)

(* Scheduling-time anomalies either raise (strict mode) or, with the
   sanitizer armed, are recorded and clamped to "now" so that one broken
   timestamp does not abort the whole run.  The anomaly handlers stay
   out of line so the checks themselves inline into the per-event
   scheduling path. *)
let[@inline never] bad_time t time =
  let msg = Printf.sprintf "Engine.schedule_at: non-finite time %g" time in
  if Invariant.enabled () then begin
    Invariant.record ~rule:"non-finite-time" ~time:(now t) msg;
    now t
  end
  else invalid_arg msg

let[@inline never] past_time t time =
  let msg = Printf.sprintf "Engine.schedule_at: time %g is before now %g" time (now t) in
  if Invariant.enabled () then begin
    Invariant.record ~rule:"time-in-past" ~time:(now t) msg;
    now t
  end
  else invalid_arg msg

let[@inline never] negative_delay t delay =
  let msg = Printf.sprintf "Engine.schedule_after: negative delay %g" delay in
  if Invariant.enabled () then begin
    Invariant.record ~rule:"negative-delay" ~time:(now t) msg;
    0.
  end
  else invalid_arg msg

let[@inline] checked_time t time =
  if not (Float.is_finite time) then bad_time t time
  else if time < now t then past_time t time
  else time

let[@inline] checked_delay t delay = if delay < 0. then negative_delay t delay else delay

(* The enqueue path hands timestamps to [push] through [tscratch] and is
   forced inline so the timestamp never crosses a call boundary as a
   float argument (which would box it, once per scheduled event). *)
let[@inline] enqueue t action =
  if t.free_len = 0 then grow_slab t;
  t.free_len <- t.free_len - 1;
  let idx = Array.unsafe_get t.free t.free_len in
  t.cell_act.(idx) <- action;
  t.n_live <- t.n_live + 1;
  let key = ((Array.unsafe_get t.cell_gen idx lsl idx_bits) lor idx) lsl 1 in
  push t ~seq:t.next_seq key;
  t.next_seq <- t.next_seq + 1;
  key

let[@inline] schedule_at t ~time f =
  Float.Array.unsafe_set t.tscratch 0 (checked_time t time);
  enqueue t f

let[@inline] schedule_after t ~delay f =
  Float.Array.unsafe_set t.tscratch 0 (now t +. checked_delay t delay);
  enqueue t f

(* {2 Ports} *)

let port t f =
  let cap = Array.length t.ports in
  if t.n_ports = cap then begin
    let np = Array.make (Stdlib.max 8 (2 * cap)) nop in
    Array.blit t.ports 0 np 0 cap;
    t.ports <- np
  end;
  t.ports.(t.n_ports) <- f;
  t.n_ports <- t.n_ports + 1;
  t.n_ports - 1

let[@inline] push_port t id =
  if id < 0 || id >= t.n_ports then
    invalid_arg "Engine.schedule_port: port is not registered on this engine";
  push t ~seq:t.next_seq ((id lsl 1) lor 1);
  t.next_seq <- t.next_seq + 1

let[@inline] schedule_port_at t ~time id =
  Float.Array.unsafe_set t.tscratch 0 (checked_time t time);
  push_port t id

let[@inline] schedule_port_after t ~delay id =
  Float.Array.unsafe_set t.tscratch 0 (now t +. checked_delay t delay);
  push_port t id

(* {2 Cancellation} *)

let cancel t handle =
  let k = handle lsr 1 in
  let idx = k land idx_mask in
  if idx < Array.length t.cell_gen && t.cell_gen.(idx) = k lsr idx_bits then begin
    consume t idx;
    t.cell_act.(idx) <- nop
  end

let cancelled t handle =
  let k = handle lsr 1 in
  let idx = k land idx_mask in
  not (idx < Array.length t.cell_gen && t.cell_gen.(idx) = k lsr idx_bits)

let pending t = t.hlen
let executed t = t.n_exec

let[@inline never] record_nonmonotonic t time =
  Invariant.record ~rule:"event-time-monotonic" ~time:(now t)
    (Printf.sprintf "Engine.step: popped event at %g behind clock %g" time (now t))

let step t =
  if t.hlen = 0 then false
  else begin
    let time = Float.Array.unsafe_get t.hp 0 in
    let key = Array.unsafe_get t.hm 1 in
    let len = t.hlen - 1 in
    t.hlen <- len;
    if len > 0 then begin
      Float.Array.unsafe_set t.tscratch 0 (Float.Array.unsafe_get t.hp len);
      sift_down t (Array.unsafe_get t.hm (2 * len)) (Array.unsafe_get t.hm ((2 * len) + 1))
    end;
    if time < now t then record_nonmonotonic t time else set_clock t time;
    if key land 1 = 1 then begin
      t.n_exec <- t.n_exec + 1;
      (Array.unsafe_get t.ports (key lsr 1)) ()
    end
    else begin
      let k = key lsr 1 in
      let idx = k land idx_mask in
      (* Indices in heap keys were valid at enqueue time and the slab
         never shrinks, so the unsafe read is in bounds; the generation
         check rejects stale (cancelled or recycled) entries. *)
      if Array.unsafe_get t.cell_gen idx = k lsr idx_bits then begin
        let action = Array.unsafe_get t.cell_act idx in
        consume t idx;
        t.n_exec <- t.n_exec + 1;
        if !Invariant.armed then check_cells t;
        action ()
      end
    end;
    true
  end

let stop t = t.stopping <- true

let run ?until t =
  t.stopping <- false;
  (* Two closures per [run] call, not per event; runs span millions of
     events so this is outside the per-event budget. *)
  let horizon_reached () = (* phi-lint: allow hot-alloc *)
    match until with
    | None -> false
    | Some limit -> t.hlen = 0 || Float.Array.get t.hp 0 > limit
  in
  let rec loop () = (* phi-lint: allow hot-alloc *)
    if t.stopping then ()
    else if horizon_reached () then ()
    else if step t then loop ()
  in
  loop ();
  match until with
  | Some limit when not t.stopping -> if limit > now t then set_clock t limit
  | _ -> ()
