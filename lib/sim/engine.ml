type handle = { mutable live : bool }

type event = { handle : handle; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable next_seq : int;
  mutable stopping : bool;
}

let create () = { clock = 0.; queue = Heap.create (); next_seq = 0; stopping = false }

let now t = t.clock

(* Scheduling-time anomalies either raise (strict mode) or, with the
   sanitizer armed, are recorded and clamped to "now" so that one broken
   timestamp does not abort the whole run. *)
let checked_time t time =
  if not (Float.is_finite time) then begin
    let msg = Printf.sprintf "Engine.schedule_at: non-finite time %g" time in
    if Invariant.enabled () then begin
      Invariant.record ~rule:"non-finite-time" ~time:t.clock msg;
      t.clock
    end
    else invalid_arg msg
  end
  else if time < t.clock then begin
    let msg = Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock in
    if Invariant.enabled () then begin
      Invariant.record ~rule:"time-in-past" ~time:t.clock msg;
      t.clock
    end
    else invalid_arg msg
  end
  else time

let schedule_at t ~time f =
  let time = checked_time t time in
  let handle = { live = true } in
  Heap.push t.queue ~priority:time ~seq:t.next_seq { handle; action = f };
  t.next_seq <- t.next_seq + 1;
  handle

let schedule_after t ~delay f =
  let delay =
    if delay < 0. then begin
      let msg = Printf.sprintf "Engine.schedule_after: negative delay %g" delay in
      if Invariant.enabled () then begin
        Invariant.record ~rule:"negative-delay" ~time:t.clock msg;
        0.
      end
      else invalid_arg msg
    end
    else delay
  in
  schedule_at t ~time:(t.clock +. delay) f

let cancel handle = handle.live <- false

let cancelled handle = not handle.live

let pending t = Heap.size t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _seq, event) ->
    if time < t.clock then
      Invariant.record ~rule:"event-time-monotonic" ~time:t.clock
        (Printf.sprintf "Engine.step: popped event at %g behind clock %g" time t.clock);
    t.clock <- Stdlib.max t.clock time;
    if event.handle.live then begin
      event.handle.live <- false;
      event.action ()
    end;
    true

let stop t = t.stopping <- true

let run ?until t =
  t.stopping <- false;
  let horizon_reached () =
    match until with
    | None -> false
    | Some limit -> (
      match Heap.peek t.queue with
      | None -> true
      | Some (time, _, _) -> time > limit)
  in
  let rec loop () =
    if t.stopping then ()
    else if horizon_reached () then ()
    else if step t then loop ()
  in
  loop ();
  match until with
  | Some limit when not t.stopping -> t.clock <- Stdlib.max t.clock limit
  | _ -> ()
