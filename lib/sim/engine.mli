(** Discrete-event simulation engine.

    This is the substitute for ns-2's scheduler: a virtual clock plus an
    ordered queue of callbacks.  Events scheduled for the same instant
    run in scheduling order, and every event may be cancelled (needed
    for TCP retransmission timers).

    Internally the engine keeps a slab of reusable, generation-stamped
    event cells over a structure-of-arrays 8-ary heap: scheduling,
    firing and cancelling allocate nothing beyond the caller's own
    closure, and the per-packet hot paths avoid even that via
    {!port}s — handlers registered once and scheduled by reference. *)

type t

type handle
(** Token identifying a scheduled event; used only for cancellation.
    Handles are immediates (no allocation) and are generation-checked:
    a handle whose event has fired, been cancelled, or whose cell has
    been recycled for a newer event is simply stale — cancelling it is
    a safe no-op. *)

val null : handle
(** A handle that identifies no event — {!cancel} on it is a no-op.
    Lets callers keep "no timer armed" in a plain [handle] field
    instead of a [handle option], which would box a [Some] on every
    re-arm (the sender's RTO path re-arms once per ACK). *)

val is_null : handle -> bool
(** Recognizes {!null} (and only it among handles this engine ever
    returns). *)

val create : unit -> t
(** Fresh engine with the clock at 0. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past or not finite —
    unless the {!Invariant} sanitizer is armed, in which case the
    anomaly is recorded and [time] is clamped to the current clock so
    the run can continue and report every violation at once. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Relative form of {!schedule_at}; [delay] must be non-negative (same
    raise-or-record contract as {!schedule_at}). *)

(** {2 Closure-free fast path}

    The two dominant event kinds of a packet simulation — link
    transmit-complete and propagation-delivery — fire the same handler
    millions of times.  A {!port} registers that handler exactly once
    in a per-engine table; the [schedule_port_*] functions then enqueue
    its index with zero allocation per event — no closure, no event
    cell, no write barrier, just one heap push.  Port events cannot be
    cancelled individually. *)

type port

val port : t -> (unit -> unit) -> port
(** Pre-register a reusable handler on this engine.  Build ports at
    component-creation time, never per event (that would grow the
    registry without bound); registrations are permanent.  A port is
    only valid on the engine it was registered with — scheduling it
    elsewhere raises [Invalid_argument]. *)

val schedule_port_at : t -> time:float -> port -> unit
(** Like {!schedule_at} for a pre-registered handler: no closure, no
    handle.  Same time-validation contract. *)

val schedule_port_after : t -> delay:float -> port -> unit

(** {2 Cancellation} *)

val cancel : t -> handle -> unit
(** Cancelled events are skipped when their time comes and their cell is
    recycled immediately.  Cancelling twice, after the event fired, or
    after the cell was recycled is a no-op (generation-checked). *)

val cancelled : t -> handle -> bool

val pending : t -> int
(** Number of not-yet-fired (and not cancelled-and-collected) events. *)

val executed : t -> int
(** Number of events dispatched since creation (port firings plus live
    cell firings; skipped stale entries do not count).  The parallel-DES
    bench aggregates this across island engines for its events/s
    figure, and being a pure function of the event sequence it is also
    a cheap determinism probe. *)

val step : t -> bool
(** Execute the next event.  Returns [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the queue.  With [until], stops once the next event lies
    strictly beyond that time and advances the clock to [until]. *)

val stop : t -> unit
(** Make the current [run] return after the in-flight event completes. *)
