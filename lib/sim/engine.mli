(** Discrete-event simulation engine.

    This is the substitute for ns-2's scheduler: a virtual clock plus an
    ordered queue of callbacks.  Events scheduled for the same instant run
    in scheduling order, and every event may be cancelled (needed for TCP
    retransmission timers). *)

type t

type handle
(** Token identifying a scheduled event; used only for cancellation. *)

val create : unit -> t
(** Fresh engine with the clock at 0. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past or not finite —
    unless the {!Invariant} sanitizer is armed, in which case the
    anomaly is recorded and [time] is clamped to the current clock so
    the run can continue and report every violation at once. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Relative form of {!schedule_at}; [delay] must be non-negative (same
    raise-or-record contract as {!schedule_at}). *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time comes.  Cancelling twice,
    or after the event fired, is a no-op. *)

val cancelled : handle -> bool

val pending : t -> int
(** Number of not-yet-fired (and not cancelled-and-collected) events. *)

val step : t -> bool
(** Execute the next event.  Returns [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the queue.  With [until], stops once the next event lies strictly
    beyond that time and advances the clock to [until]. *)

val stop : t -> unit
(** Make the current [run] return after the in-flight event completes. *)
