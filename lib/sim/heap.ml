(* Structure-of-arrays 4-ary min-heap.

   Priorities live in a [Float.Array.t]: a mixed OCaml record with a
   float field boxes that float, so the previous entry-record design
   paid one box per pending event plus pointer-chasing on every sift.
   Here a sift touches three parallel arrays (flat float storage,
   immediate ints for seqs, payload words) — no dereferences, no
   allocation on push/pop.

   4-ary beats binary here: the tree is half as deep, and the four
   children of node [i] are adjacent ([4i+1 .. 4i+4]), so a sift-down
   level is one cache line of priorities instead of a scattered pair. *)

type 'a t = {
  mutable prio : Float.Array.t;
  mutable seq : int array;
  mutable payload : 'a array;
  mutable len : int;
}

let create () =
  { prio = Float.Array.create 0; seq = [||]; payload = [||]; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

(* Explicit total order: [Float.compare] (never [=] on floats) makes the
   heap self-defending against NaN priorities — NaN compares less than
   every other float, deterministically, instead of poisoning the
   ordering the way [<]/[=] comparisons would.  (The engine rejects
   non-finite times at [checked_time]; this is defense in depth.)
   Ties break on the lower sequence number: FIFO among equal
   priorities, the property deterministic replay rests on. *)
let less t i j =
  let c = Float.compare (Float.Array.get t.prio i) (Float.Array.get t.prio j) in
  if c <> 0 then c < 0 else t.seq.(i) < t.seq.(j)

let grow t filler =
  let cap = Array.length t.seq in
  if t.len = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let nprio = Float.Array.create ncap in
    Float.Array.blit t.prio 0 nprio 0 t.len;
    t.prio <- nprio;
    let nseq = Array.make ncap 0 in
    Array.blit t.seq 0 nseq 0 t.len;
    t.seq <- nseq;
    let npayload = Array.make ncap filler in
    Array.blit t.payload 0 npayload 0 t.len;
    t.payload <- npayload
  end

let swap t i j =
  let p = Float.Array.get t.prio i in
  Float.Array.set t.prio i (Float.Array.get t.prio j);
  Float.Array.set t.prio j p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let v = t.payload.(i) in
  t.payload.(i) <- t.payload.(j);
  t.payload.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let first = (4 * i) + 1 in
  if first < t.len then begin
    let last = Stdlib.min (first + 3) (t.len - 1) in
    let smallest = ref i in
    for c = first to last do
      if less t c !smallest then smallest := c
    done;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end
  end

let push t ~priority ~seq payload =
  grow t payload;
  let i = t.len in
  Float.Array.set t.prio i priority;
  t.seq.(i) <- seq;
  t.payload.(i) <- payload;
  t.len <- i + 1;
  sift_up t i

let peek t =
  if t.len = 0 then None
  else Some (Float.Array.get t.prio 0, t.seq.(0), t.payload.(0))

let pop t =
  if t.len = 0 then None
  else begin
    let priority = Float.Array.get t.prio 0
    and seq = t.seq.(0)
    and payload = t.payload.(0) in
    let last = t.len - 1 in
    t.len <- last;
    if last > 0 then begin
      Float.Array.set t.prio 0 (Float.Array.get t.prio last);
      t.seq.(0) <- t.seq.(last);
      t.payload.(0) <- t.payload.(last);
      (* Keep the vacated tail slot pointing at a live payload so the
         heap never pins a popped element. *)
      t.payload.(last) <- t.payload.(0);
      sift_down t 0
    end;
    Some (priority, seq, payload)
  end

let clear t =
  t.prio <- Float.Array.create 0;
  t.seq <- [||];
  t.payload <- [||];
  t.len <- 0
