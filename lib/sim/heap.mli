(** Structure-of-arrays 4-ary min-heap keyed by [(priority, seq)].

    Priorities are stored unboxed in a [Float.Array.t] with seqs and
    payloads in parallel arrays — no per-entry records, no boxed floats,
    no allocation on push or pop.  Ordering is the explicit total order
    [Float.compare] (NaN sorts first, deterministically, rather than
    corrupting the heap) with the integer sequence number breaking ties
    so that events scheduled for the same instant pop in FIFO order —
    the property the whole simulator relies on for deterministic
    replay. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> seq:int -> 'a -> unit

val peek : 'a t -> (float * int * 'a) option
(** Smallest element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
