type violation = { rule : string; time : float; detail : string }

(* These globals are the sanctioned exception to the no-shared-state rule:
   pool.mli documents that armed (PHI_SANITIZE=1) runs use [jobs:1], so the
   recorder is never touched from more than one domain at a time. *)
let armed = (* phi-lint: allow domain-race *)
  ref (match Sys.getenv_opt "PHI_SANITIZE" with Some "1" -> true | _ -> false)

let enabled () = !armed
let set_enabled b = armed := b

(* Keep a bounded prefix of the violations; a broken run can produce one
   per event, and the first few hundred are what you debug with. *)
let max_kept = 1000

let kept : violation list ref = ref []  (* newest first *) (* phi-lint: allow domain-race *)
let n_kept = ref 0 (* phi-lint: allow domain-race *)
let total = ref 0 (* phi-lint: allow domain-race *)

let record ~rule ~time detail =
  if !armed then begin
    incr total;
    if !n_kept < max_kept then begin
      kept := { rule; time; detail } :: !kept;
      incr n_kept
    end
  end

let check_finite ~rule ~time ~what v =
  if Float.is_finite v then true
  else begin
    record ~rule ~time (Printf.sprintf "%s is not finite (%g)" what v);
    false
  end

let violations () = List.rev !kept
let count () = !total

let clear () =
  kept := [];
  n_kept := 0;
  total := 0

let report () =
  if !total = 0 then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "phi-sanitize: %d invariant violation(s)\n" !total);
    List.iter
      (fun v ->
        Buffer.add_string buf (Printf.sprintf "  [t=%.9g] %s: %s\n" v.time v.rule v.detail))
      (violations ());
    if !total > !n_kept then
      Buffer.add_string buf (Printf.sprintf "  ... %d more suppressed\n" (!total - !n_kept));
    Buffer.contents buf
  end

let with_capture f =
  let saved_enabled = !armed in
  let saved_kept = !kept and saved_n = !n_kept and saved_total = !total in
  clear ();
  armed := true;
  let restore () =
    armed := saved_enabled;
    kept := saved_kept;
    n_kept := saved_n;
    total := saved_total
  in
  match f () with
  | result ->
    let captured = violations () in
    restore ();
    (result, captured)
  | exception e ->
    restore ();
    raise e
