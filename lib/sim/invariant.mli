(** Runtime invariant sanitizer for simulation runs.

    A silent NaN in a reported metric or a non-monotonic event clock
    corrupts every experiment downstream, so the hot paths of the
    engine, links, TCP senders and the context server carry cheap
    invariant checks that are compiled in but dormant by default.
    Setting [PHI_SANITIZE=1] in the environment arms them; violations
    are then accumulated into a global report instead of aborting the
    run, so a single sweep surfaces every breakage at once.

    Checks performed when armed:
    - [non-finite-time], [time-in-past], [negative-delay]: scheduling
      anomalies (recorded, then clamped to "now" so the run proceeds).
    - [event-time-monotonic]: the engine popped an event timestamped
      before the current clock.
    - [link-conservation], [byte-conservation], [queue-occupancy]:
      per-link packet/byte accounting.
    - [cwnd-bound]: a congestion window below 1 packet, NaN, or above a
      configured buffer+BDP bound.
    - [metric-finite], [metric-range], [conn-stats]: NaN/Inf or
      out-of-range values in metrics reported to the context server.

    The accumulator is global (simulations are single-threaded); tests
    use {!with_capture} to arm the sanitizer for one closure and inspect
    exactly the violations it produced.

    {2 Domain-safety}

    Simulation state is per-run — engine, topology, flows and PRNG are
    all constructed from the seed inside one run and never shared, which
    is what lets [Phi_runner.Pool] fan (setting, seed) cells across
    domains.  This module is the deliberate exception: the violation
    accumulator is process-global and unsynchronized, so armed runs
    ([PHI_SANITIZE=1] or {!set_enabled}) must stay serial ([--jobs 1];
    the bench driver enforces this, and {!with_capture} likewise must
    not wrap a parallel batch).  When dormant (the default) the checks
    only read {!enabled} and record nothing, so parallel unarmed runs
    are safe.  The phi-lint [domain-global] rule guards against
    introducing further shared mutable globals under [lib/experiments]
    and [lib/runner]. *)

type violation = {
  rule : string;  (** stable rule name, e.g. ["negative-delay"] *)
  time : float;  (** virtual time at which the violation was observed *)
  detail : string;
}

val enabled : unit -> bool
(** Whether checks are armed.  Initialised from [PHI_SANITIZE=1]; can be
    overridden with {!set_enabled}. *)

val armed : bool ref
(** The flag behind {!enabled}, exposed so per-event hot paths (the
    engine's step loop) can test it with a single load instead of a
    cross-module call.  Read-only outside this module: flip it with
    {!set_enabled} (or {!with_capture}), never by assignment. *)

val set_enabled : bool -> unit

val record : rule:string -> time:float -> string -> unit
(** Accumulate one violation.  No-op when disabled.  At most 1000
    violations are kept; further ones only bump {!count}. *)

val check_finite : rule:string -> time:float -> what:string -> float -> bool
(** [check_finite ~rule ~time ~what v] returns [true] when [v] is
    finite; otherwise records a violation (when enabled) and returns
    [false]. *)

val violations : unit -> violation list
(** Accumulated violations, oldest first. *)

val count : unit -> int
(** Total violations recorded, including any beyond the kept cap. *)

val clear : unit -> unit

val report : unit -> string
(** Human-readable multi-line report; empty string when clean. *)

val with_capture : (unit -> 'a) -> 'a * violation list
(** [with_capture f] arms the sanitizer, runs [f] against a fresh
    accumulator, and returns [f]'s result with the violations it
    recorded.  The previous enabled state and accumulator are restored
    afterwards, even on exception. *)
