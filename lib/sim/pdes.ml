(* Conservative parallel discrete-event simulation.

   A topology is partitioned into islands — disjoint sub-simulations,
   each with its own {!Engine} (and, one layer up, its own packet pool)
   — connected only by latency links.  A cross-island link's
   propagation delay is *lookahead*: an event executed on the source
   island at time [t] can influence the destination island no earlier
   than [t + delay].  That bound makes a window/barrier scheme safe:
   pick a window [W <= min lookahead over every boundary], let every
   island execute all events with [time <= (k+1) * W] in parallel,
   exchange the cross-island traffic produced, barrier, and repeat.
   Anything an island handed off during window [k] arrives strictly
   after window [k+1] begins, so no island ever receives an event in
   its past — the classic conservative (Chandy–Misra–Bryant) argument
   with the null messages replaced by a shared window.

   Determinism is the contract the rest of the repo holds us to
   (`--jobs 1` golden replays): each island's event sequence must not
   depend on the number of worker domains.  Two properties deliver it:

   - Within a window, islands share no mutable state at all — handoffs
     are published into SPSC rings (see [Phi_net.Boundary_link]) that
     the consumer only reads *between* windows.

   - Between windows, every island (a) publishes its horizon, (b) waits
     at a barrier until all horizons reach the window end, (c) drains
     its inbound rings in registration order, and (d) barriers again
     before anyone starts the next window.  All engine scheduling
     therefore happens either inside the island's own window execution
     or in the fixed-order drain phase, so the engine's FIFO tie-break
     sequence numbers come out identical whether the phases of
     different islands run on one domain or eight.

   The barrier blocks on a [Mutex]/[Condition] pair rather than
   spinning: benchmarks run with more workers than cores (CI boxes are
   routinely 1–2 cores), and a spinning waiter would starve the very
   island it is waiting for. *)

type island = {
  index : int;
  engine : Engine.t;
  (* Inbound boundary drains, kept in registration order — the order is
     part of the determinism contract (drains schedule deliveries, and
     engine tie-breaks follow scheduling order). *)
  mutable drains_rev : (unit -> unit) list;
  (* Published after the island finishes executing a window; boundary
     drains read their peer's horizon to assert the conservative bound.
     An [Atomic] both publishes the store to other domains and makes
     the happens-before explicit. *)
  horizon : float Atomic.t;
}

type t = {
  mutable islands_rev : island list;
  mutable n_islands : int;
  (* Minimum lookahead over every registered boundary; [infinity] until
     the first boundary registers (an unpartitioned topology runs in
     one window). *)
  mutable min_lookahead : float;
  (* Window barrier (generation-counted so it is reusable). *)
  mu : Mutex.t;
  cond : Condition.t;
  mutable arrived : int;
  mutable barrier_gen : int;
  (* First failure raised inside any worker; the run re-raises it after
     the domains join.  Once set, the remaining windows become no-ops
     (every worker still visits every barrier, so nobody deadlocks). *)
  failure : exn option Atomic.t;
}

let create () =
  {
    islands_rev = [];
    n_islands = 0;
    min_lookahead = infinity;
    mu = Mutex.create ();
    cond = Condition.create ();
    arrived = 0;
    barrier_gen = 0;
    failure = Atomic.make None;
  }

let add_island t =
  let island =
    {
      index = t.n_islands;
      engine = Engine.create ();
      drains_rev = [];
      horizon = Atomic.make 0.;
    }
  in
  t.islands_rev <- island :: t.islands_rev;
  t.n_islands <- t.n_islands + 1;
  island

let engine island = island.engine
let index island = island.index
let islands t = t.n_islands
let on_drain island f = island.drains_rev <- f :: island.drains_rev

let note_lookahead t lookahead_s =
  if not (Float.is_finite lookahead_s) || lookahead_s <= 0. then
    invalid_arg "Pdes.note_lookahead: lookahead must be positive and finite";
  if lookahead_s < t.min_lookahead then t.min_lookahead <- lookahead_s

let lookahead_s t = t.min_lookahead
let horizon_s island = Atomic.get island.horizon

let barrier t ~parties =
  if parties > 1 then begin
    Mutex.lock t.mu;
    t.arrived <- t.arrived + 1;
    if t.arrived = parties then begin
      t.arrived <- 0;
      t.barrier_gen <- t.barrier_gen + 1;
      Condition.broadcast t.cond
    end
    else begin
      let gen = t.barrier_gen in
      while t.barrier_gen = gen do
        Condition.wait t.cond t.mu
      done
    end;
    Mutex.unlock t.mu
  end

let record_failure t e = ignore (Atomic.compare_and_set t.failure None (Some e))

(* One worker's share of a window: execute every owned island up to the
   window end and publish the horizons, barrier, drain every owned
   island's inbound rings, barrier.  Ownership is by index stride so
   the assignment is a pure function of (island, jobs) — results do not
   depend on it, only load balance does. *)
let exec_window t isls ~who ~jobs ~parties ~w_end =
  Array.iter
    (fun isl ->
      if isl.index mod jobs = who then begin
        (if Atomic.get t.failure = None then
           try Engine.run ~until:w_end isl.engine with e -> record_failure t e);
        Atomic.set isl.horizon w_end
      end)
    isls;
  barrier t ~parties;
  Array.iter
    (fun isl ->
      if isl.index mod jobs = who then
        if Atomic.get t.failure = None then (
          try List.iter (fun f -> f ()) (List.rev isl.drains_rev)
          with e -> record_failure t e))
    isls;
  barrier t ~parties

let run ?jobs ?window_s ~until t =
  let isls = Array.of_list (List.rev t.islands_rev) in
  let n = Array.length isls in
  if n = 0 then invalid_arg "Pdes.run: no islands";
  if not (Float.is_finite until) || until < 0. then
    invalid_arg "Pdes.run: until must be non-negative and finite";
  let window =
    match window_s with
    | Some w ->
      if not (Float.is_finite w) || w <= 0. then
        invalid_arg "Pdes.run: window must be positive and finite";
      if w > t.min_lookahead then
        invalid_arg "Pdes.run: window exceeds the minimum boundary lookahead";
      w
    | None -> if Float.is_finite t.min_lookahead then t.min_lookahead else until
  in
  let window = if window > 0. then window else until in
  let n_windows =
    if window <= 0. then 1
    else Stdlib.max 1 (int_of_float (Float.ceil (until /. window)))
  in
  let jobs =
    let requested = match jobs with Some j -> j | None -> n in
    if requested < 1 then invalid_arg "Pdes.run: jobs must be >= 1";
    (* The invariant sanitizer accumulates into a process-global,
       unsynchronized buffer; armed runs must stay serial. *)
    if Invariant.enabled () then 1 else Stdlib.min requested n
  in
  Atomic.set t.failure None;
  let parties = jobs in
  let worker who () =
    for k = 0 to n_windows - 1 do
      (* Every worker computes the same [w_end] from [k] alone, so all
         horizons agree bit-for-bit whatever the domain count. *)
      let w_end = Float.min until (window *. float_of_int (k + 1)) in
      exec_window t isls ~who ~jobs ~parties ~w_end
    done
  in
  if jobs = 1 then worker 0 ()
  else begin
    let spawned = List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    List.iter Domain.join spawned
  end;
  match Atomic.get t.failure with Some e -> raise e | None -> ()

(* {2 Partition planning} *)

let plan_cuts ~delays ~islands =
  let n = Array.length delays in
  if islands < 1 then invalid_arg "Pdes.plan_cuts: islands must be >= 1";
  if islands > n + 1 then invalid_arg "Pdes.plan_cuts: more islands than nodes";
  Array.iter
    (fun d ->
      if not (Float.is_finite d) || d < 0. then
        invalid_arg "Pdes.plan_cuts: delays must be non-negative and finite")
    delays;
  let k = islands - 1 in
  if k = 0 then []
  else begin
    (* Maximize the minimum delay over the chosen cut edges — the cut
       with the smallest delay is the lookahead, hence the window, hence
       the synchronization rate.  The optimum is the k-th largest delay
       [d*]; any k edges with delay >= d* achieve it, so among those
       candidates pick the set that best balances segment lengths. *)
    let sorted = Array.copy delays in
    Array.sort (fun a b -> Float.compare b a) sorted;
    let d_star = sorted.(k - 1) in
    let candidates =
      Array.of_list
        (List.filter
           (fun i -> delays.(i) >= d_star)
           (List.init n (fun i -> i)))
    in
    let m = Array.length candidates in
    let chosen = ref [] in
    let prev = ref (-1) in
    for j = 0 to k - 1 do
      (* Ideal cut position for the j-th boundary of an even split. *)
      let ideal = float_of_int ((j + 1) * n) /. float_of_int islands -. 0.5 in
      let best = ref (-1) in
      let best_dist = ref infinity in
      for c = 0 to m - 1 do
        (* Feasible: after [prev], and leaving enough candidates for the
           remaining boundaries. *)
        if candidates.(c) > !prev && m - c >= k - j then begin
          let dist = Float.abs (float_of_int candidates.(c) -. ideal) in
          if dist < !best_dist then begin
            best := candidates.(c);
            best_dist := dist
          end
        end
      done;
      chosen := !best :: !chosen;
      prev := !best
    done;
    List.rev !chosen
  end
