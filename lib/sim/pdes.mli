(** Conservative parallel discrete-event simulation coordinator.

    Partition a topology into {e islands} — disjoint sub-simulations,
    each with its own {!Engine} — connected only by latency links, and
    advance all islands in lock-step windows across OCaml domains.  A
    cross-island link's propagation delay is {e lookahead}: anything an
    island emits at time [t] reaches its neighbour no earlier than
    [t + delay], so with a window [W] no larger than the minimum
    lookahead every island may execute a whole window in parallel
    without ever receiving an event in its past (the conservative
    Chandy–Misra–Bryant argument, with a shared window in place of null
    messages).

    The schedule per window [k] is: every island executes events up to
    [(k+1) * W] and publishes that horizon through an [Atomic]; a
    barrier; every island drains its inbound boundary rings (in
    registration order), scheduling the deliveries that arrived from
    its neighbours; a second barrier; next window.  Because islands
    share no mutable state inside a window and all cross-island
    scheduling happens in the fixed-order drain phase, each island's
    event sequence — including the engine's FIFO tie-break numbering —
    is byte-identical whatever the worker count: [run ~jobs:1] is the
    golden reference and [~jobs:n] must replay it exactly.

    The barrier blocks on a mutex/condition pair rather than spinning,
    so oversubscribed runs (more workers than cores) degrade gracefully
    instead of starving the island they wait for.

    Cross-island traffic itself is carried by [Phi_net.Boundary_link],
    which registers its rings here via {!on_drain} and its propagation
    delay via {!note_lookahead}. *)

type t
(** A coordinator: a set of islands plus the window barrier state. *)

type island
(** One partition: an engine of its own plus its inbound boundary
    drains.  Islands must never touch another island's engine, pools or
    state except through a boundary ring. *)

val create : unit -> t
(** A coordinator with no islands yet. *)

val add_island : t -> island
(** Append a fresh island (with a fresh engine).  Island construction
    and all topology wiring happen serially, before {!run}. *)

val engine : island -> Engine.t
(** The island's private engine; all of the island's components are
    built on it. *)

val index : island -> int
(** Position of the island in creation order, starting at 0. *)

val islands : t -> int
(** Number of islands added so far. *)

val on_drain : island -> (unit -> unit) -> unit
(** Register a between-windows callback on the {e destination} island
    of a boundary: it runs at every window barrier (and once more at
    the end of the run), with every other island quiescent, and is
    where a boundary link moves handed-off traffic from its SPSC ring
    into the island's engine.  Callbacks run in registration order —
    that order is part of the determinism contract. *)

val note_lookahead : t -> float -> unit
(** Record a boundary's propagation delay.  {!run} refuses any window
    larger than the minimum recorded lookahead — that bound is what
    makes the window scheme conservative.  Raises [Invalid_argument]
    unless positive and finite. *)

val lookahead_s : t -> float
(** Minimum lookahead registered so far ([infinity] when no boundary
    has registered — an unpartitioned run needs no windows). *)

val horizon_s : island -> float
(** The island's published execution horizon: virtual time it has
    completed up to.  Boundary drains read their peer's horizon to
    assert the conservative bound. *)

val run : ?jobs:int -> ?window_s:float -> until:float -> t -> unit
(** Advance every island to virtual time [until].  [jobs] worker
    domains (default: one per island, capped at the island count; the
    calling domain is worker 0) each own the islands with
    [index mod jobs = worker]; ownership affects load balance only,
    never results.  [window_s] defaults to the minimum registered
    lookahead and must not exceed it.  When the {!Invariant} sanitizer
    is armed the run is forced serial — the sanitizer's report buffer
    is process-global and unsynchronized.  A worker exception aborts
    the remaining windows and is re-raised after all domains join.

    Raises [Invalid_argument] on an empty coordinator, a non-finite or
    negative [until], [jobs < 1], or a [window_s] that is not positive
    or exceeds the lookahead bound. *)

val plan_cuts : delays:float array -> islands:int -> int list
(** Partition a line of [n + 1] nodes joined by [n] edges (edge [i]
    has propagation delay [delays.(i)]) into [islands] contiguous
    segments: returns the [islands - 1] cut-edge indices, in
    increasing order.  The cut set maximizes the minimum delay over
    the chosen edges — the smallest cut delay is the lookahead, hence
    the window size, hence how often the islands must synchronize —
    and among the optimal sets prefers evenly sized segments.  Raises
    [Invalid_argument] when [islands < 1], when there are more islands
    than nodes, or on a negative/non-finite delay. *)
