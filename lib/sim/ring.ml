type 'a t = { mutable data : 'a array; mutable head : int; mutable len : int }

let create () = { data = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Doubling growth; the first pushed element doubles as the filler for
   the unused slots (same trick as Heap), so no dummy value is needed and
   ['a] stays unconstrained. *)
let grow t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    (* Amortized doubling; steady-state pushes reuse the existing array. *)
    let ndata = Array.make ncap x in (* phi-lint: allow hot-alloc *)
    for i = 0 to t.len - 1 do
      ndata.(i) <- t.data.((t.head + i) mod cap)
    done;
    t.data <- ndata;
    t.head <- 0
  end

let push t x =
  grow t x;
  let cap = Array.length t.data in
  let tail = t.head + t.len in
  t.data.(if tail >= cap then tail - cap else tail) <- x;
  t.len <- t.len + 1

let peek_opt t = if t.len = 0 then None else Some t.data.(t.head)

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.data.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let old = t.head in
  let x = t.data.(old) in
  let next = old + 1 in
  t.head <- (if next >= Array.length t.data then 0 else next);
  t.len <- t.len - 1;
  (* Overwrite the vacated slot with a still-live element so the ring
     retains at most one stale reference (when it just became empty). *)
  if t.len > 0 then t.data.(old) <- t.data.(t.head);
  x

let pop_opt t = if t.len = 0 then None else Some (pop t)

let fold f acc t =
  let cap = Array.length t.data in
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.((t.head + i) mod cap)
  done;
  !acc

let iter f t = fold (fun () x -> f x) () t

let clear t =
  t.data <- [||];
  t.head <- 0;
  t.len <- 0
