(** Growable circular FIFO buffer — the hot-path replacement for
    [Stdlib.Queue].

    [Stdlib.Queue] allocates one cons cell per element; on the link
    transmit path that is one allocation per packet.  This ring keeps
    elements in a contiguous array (amortized zero allocation per
    push/pop) and doubles in place when full.  The phi-lint [hot-queue]
    rule steers [lib/net] and [lib/sim] code here. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail. *)

val pop : 'a t -> 'a
(** Remove and return the head.  Raises [Invalid_argument] when empty. *)

val pop_opt : 'a t -> 'a option

val peek : 'a t -> 'a
(** Head without removing it.  Raises [Invalid_argument] when empty. *)

val peek_opt : 'a t -> 'a option

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Head-to-tail fold over the queued elements. *)

val iter : ('a -> unit) -> 'a t -> unit

val clear : 'a t -> unit
(** Drop every element and release the backing storage. *)
