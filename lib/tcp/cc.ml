type recovery = Sack | Go_back_n

type t = {
  name : string;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable pacing_gap_s : float;
  recovery : recovery;
  on_ack : t -> now:float -> rtt:float -> sent_at:float -> newly_acked:int -> unit;
  on_loss : t -> now:float -> unit;
  on_timeout : t -> now:float -> unit;
}

let make ~name ~initial_cwnd ~initial_ssthresh ?(recovery = Sack) ?(pacing_gap_s = 0.) ~on_ack
    ~on_loss ~on_timeout () =
  if initial_cwnd < 1. then invalid_arg "Cc.make: initial_cwnd must be >= 1";
  if initial_ssthresh < 1. then invalid_arg "Cc.make: initial_ssthresh must be >= 1";
  if not (pacing_gap_s >= 0.) then invalid_arg "Cc.make: pacing_gap_s must be >= 0";
  {
    name;
    cwnd = initial_cwnd;
    ssthresh = initial_ssthresh;
    pacing_gap_s;
    recovery;
    on_ack;
    on_loss;
    on_timeout;
  }

let min_cwnd = 2.

let in_slow_start t = t.cwnd < t.ssthresh
