(** Pluggable congestion control.

    A congestion controller owns the congestion window and slow-start
    threshold (both in segments, as in ns-2) and reacts to the three
    events the sender machinery reports: a new cumulative ACK, a fast-
    retransmit loss indication (three duplicate ACKs) and a retransmission
    timeout.  Algorithm-private state lives inside the event closures.

    Beyond the window, a controller can dictate two transport behaviours
    the shared sender honours: a minimum intersend gap ([pacing_gap_s],
    for rate-paced algorithms such as Remy) and the recovery style
    ([recovery]: SACK scoreboard retransmission, or timeout-driven
    go-back-N for controllers that model loss through their own rules). *)

type recovery =
  | Sack  (** RFC 6675 scoreboard: SACK-driven fast retransmit. *)
  | Go_back_n  (** No fast retransmit; losses repair via RTO only. *)

type t = {
  name : string;
  mutable cwnd : float;  (** congestion window, segments *)
  mutable ssthresh : float;  (** slow-start threshold, segments *)
  mutable pacing_gap_s : float;
      (** minimum gap between segment transmissions, seconds; [0.] sends
          back-to-back (pure window control) *)
  recovery : recovery;
  on_ack : t -> now:float -> rtt:float -> sent_at:float -> newly_acked:int -> unit;
      (** [rtt] is the sample from this ACK when one was available and
          [nan] otherwise (a sentinel rather than a [float option], so
          the per-ACK call allocates no [Some] box; real samples are
          always [> 0.], so [rtt > 0.] is the has-sample test and is
          false on [nan]).  [sent_at] is the exact echoed transmission
          timestamp the sample was computed from (meaningful only when a
          sample is present). *)
  on_loss : t -> now:float -> unit;
  on_timeout : t -> now:float -> unit;
}

val make :
  name:string ->
  initial_cwnd:float ->
  initial_ssthresh:float ->
  ?recovery:recovery ->
  ?pacing_gap_s:float ->
  on_ack:(t -> now:float -> rtt:float -> sent_at:float -> newly_acked:int -> unit) ->
  on_loss:(t -> now:float -> unit) ->
  on_timeout:(t -> now:float -> unit) ->
  unit ->
  t

val min_cwnd : float
(** Floor the sender enforces on [cwnd] and [ssthresh] after every
    [on_loss] (2 segments, per RFC 5681).  Controllers may go lower only
    through [on_timeout], where the sender floors [cwnd] at one segment. *)

val in_slow_start : t -> bool
