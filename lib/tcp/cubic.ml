type params = {
  initial_cwnd : float;
  initial_ssthresh : float;
  beta : float;
  c : float;
  fast_convergence : bool;
  tcp_friendly : bool;
}

let default_params =
  {
    initial_cwnd = 2.;
    initial_ssthresh = 65536.;
    beta = 0.2;
    c = 0.4;
    fast_convergence = true;
    tcp_friendly = true;
  }

let with_knobs ?initial_cwnd ?initial_ssthresh ?beta params =
  let params =
    match initial_cwnd with Some v -> { params with initial_cwnd = v } | None -> params
  in
  let params =
    match initial_ssthresh with Some v -> { params with initial_ssthresh = v } | None -> params
  in
  match beta with Some v -> { params with beta = v } | None -> params

let pp_params ppf p =
  Format.fprintf ppf "cubic{init=%g ssthresh=%g beta=%.2g}" p.initial_cwnd p.initial_ssthresh
    p.beta

let params_to_string p =
  Printf.sprintf "%g/%g/%.2g" p.initial_ssthresh p.initial_cwnd p.beta

type state = {
  mutable w_max : float;
  mutable epoch_start : float option;
  mutable k : float;
  mutable origin_point : float;
  mutable w_tcp : float;
  mutable min_rtt : float;
}

let cbrt x = if x < 0. then -.((-.x) ** (1. /. 3.)) else x ** (1. /. 3.)

let make params =
  if params.beta <= 0. || params.beta >= 1. then invalid_arg "Cubic.make: beta out of (0, 1)";
  if params.c <= 0. then invalid_arg "Cubic.make: c must be positive";
  let s =
    { w_max = 0.; epoch_start = None; k = 0.; origin_point = 0.; w_tcp = 0.; min_rtt = infinity }
  in
  let begin_epoch (cc : Cc.t) ~now =
    s.epoch_start <- Some now;
    if cc.cwnd < s.w_max then begin
      s.k <- cbrt ((s.w_max -. cc.cwnd) /. params.c);
      s.origin_point <- s.w_max
    end
    else begin
      s.k <- 0.;
      s.origin_point <- cc.cwnd
    end;
    s.w_tcp <- cc.cwnd
  in
  let on_ack (cc : Cc.t) ~now ~rtt ~sent_at:_ ~newly_acked =
    (* [rtt > 0.] is the has-sample test: no sample is [nan]. *)
    if rtt > 0. then s.min_rtt <- Float.min s.min_rtt rtt;
    let acked = float_of_int newly_acked in
    if Cc.in_slow_start cc then cc.cwnd <- Float.min (cc.cwnd +. acked) (Float.max cc.ssthresh cc.cwnd)
    else begin
      let epoch_start =
        match s.epoch_start with
        | Some e -> e
        | None ->
          begin_epoch cc ~now;
          now
      in
      let min_rtt = if Float.is_finite s.min_rtt then s.min_rtt else 0.1 in
      (* Window target one RTT into the future, per RFC 8312. *)
      let t = now +. min_rtt -. epoch_start in
      let delta = t -. s.k in
      let target = s.origin_point +. (params.c *. delta *. delta *. delta) in
      if target > cc.cwnd then cc.cwnd <- cc.cwnd +. ((target -. cc.cwnd) /. cc.cwnd *. acked)
      else
        (* Max-probing plateau: grow very slowly while below the target. *)
        cc.cwnd <- cc.cwnd +. (0.01 /. cc.cwnd *. acked);
      if params.tcp_friendly then begin
        (* Estimate of what standard AIMD with the same beta would earn. *)
        let rtt_for_est = if rtt > 0. then rtt else min_rtt in
        s.w_tcp <-
          s.w_tcp +. (3. *. params.beta /. (2. -. params.beta) *. (acked /. rtt_for_est *. min_rtt /. cc.cwnd));
        if s.w_tcp > cc.cwnd then cc.cwnd <- s.w_tcp
      end
    end
  in
  (* The sender floors cwnd/ssthresh at [Cc.min_cwnd] after these events;
     the controller only computes the multiplicative decrease. *)
  let on_loss (cc : Cc.t) ~now:_ =
    s.epoch_start <- None;
    if params.fast_convergence && cc.cwnd < s.w_max then
      s.w_max <- cc.cwnd *. (2. -. params.beta) /. 2.
    else s.w_max <- cc.cwnd;
    cc.cwnd <- cc.cwnd *. (1. -. params.beta);
    cc.ssthresh <- cc.cwnd
  in
  let on_timeout (cc : Cc.t) ~now:_ =
    s.epoch_start <- None;
    s.w_max <- cc.cwnd;
    cc.ssthresh <- cc.cwnd *. (1. -. params.beta);
    cc.cwnd <- 1.
  in
  Cc.make ~name:"cubic" ~initial_cwnd:params.initial_cwnd
    ~initial_ssthresh:params.initial_ssthresh ~on_ack ~on_loss ~on_timeout ()
