type allocator = { mutable next : int }

let allocator () = { next = 0 }

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

type conn_stats = {
  flow : int;
  source_index : int;
  started_at : float;
  finished_at : float;
  bytes : int;
  segments : int;
  retransmitted_segments : int;
  timeouts : int;
  rtt_samples : int;
  min_rtt : float;
  mean_rtt : float;
}

let duration t = t.finished_at -. t.started_at

let throughput_bps t =
  let d = duration t in
  if d <= 0. then 0. else float_of_int (t.bytes * 8) /. d

let queueing_delay t = t.mean_rtt -. t.min_rtt

(* Sanitizer hook: validate a finished connection's stats before they
   are reported downstream (context server, experiment aggregation).
   Both RTTs being NaN is the legitimate "no samples" sentinel. *)
let sanitize t =
  let module Invariant = Phi_sim.Invariant in
  if Invariant.enabled () then begin
    let bad rule detail = Invariant.record ~rule ~time:t.finished_at detail in
    if t.finished_at < t.started_at then
      bad "conn-stats"
        (Printf.sprintf "flow %d: finished at %g before start %g" t.flow t.finished_at
           t.started_at);
    if t.bytes < 0 || t.segments < 0 || t.retransmitted_segments < 0 || t.timeouts < 0 then
      bad "conn-stats" (Printf.sprintf "flow %d: negative counter" t.flow);
    if t.rtt_samples > 0 then begin
      if not (Float.is_finite t.min_rtt && Float.is_finite t.mean_rtt) then
        bad "metric-finite"
          (Printf.sprintf "flow %d: rtt min=%g mean=%g with %d samples" t.flow t.min_rtt
             t.mean_rtt t.rtt_samples)
      else if t.min_rtt -. t.mean_rtt > 1e-9 *. t.min_rtt then
        (* Tolerance: a mean over n equal samples can round an ulp or two
           below the min; only a materially smaller mean is a violation. *)
        bad "metric-range"
          (Printf.sprintf "flow %d: mean rtt %g below min rtt %g" t.flow t.mean_rtt t.min_rtt)
    end
  end

let pp ppf t =
  Format.fprintf ppf
    "conn[flow=%d src=%d bytes=%d dur=%.3fs thr=%.3fMbps rexmit=%d rto=%d rtt=%.1f/%.1fms]"
    t.flow t.source_index t.bytes (duration t)
    (throughput_bps t /. 1e6)
    t.retransmitted_segments t.timeouts (1000. *. t.min_rtt) (1000. *. t.mean_rtt)
