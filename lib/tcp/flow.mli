(** Flow identifiers and per-connection accounting. *)

type allocator
(** Hands out flow ids unique within one experiment. *)

val allocator : unit -> allocator
val fresh : allocator -> int

type conn_stats = {
  flow : int;
  source_index : int;  (** which sender launched the connection *)
  started_at : float;
  finished_at : float;
  bytes : int;  (** application bytes delivered (segments x MSS) *)
  segments : int;
  retransmitted_segments : int;
  timeouts : int;
  rtt_samples : int;
  min_rtt : float;  (** [nan] when no sample was taken *)
  mean_rtt : float;  (** [nan] when no sample was taken *)
}

val duration : conn_stats -> float

val throughput_bps : conn_stats -> float
(** Goodput over the connection's "on" time. *)

val queueing_delay : conn_stats -> float
(** [mean_rtt - min_rtt]: the connection's own estimate of time spent in
    queues (the signal Phi uses for [q]); [nan] without samples. *)

val pp : Format.formatter -> conn_stats -> unit

val sanitize : conn_stats -> unit
(** [PHI_SANITIZE=1] hook: record an invariant violation for stats whose
    timestamps run backwards, whose counters are negative, or whose RTTs
    are NaN/Inf or inverted despite positive [rtt_samples] (both RTTs
    NaN is the legitimate "no samples" sentinel).  No-op when the
    sanitizer is disarmed. *)
