module Engine = Phi_sim.Engine
module Node = Phi_net.Node
module Packet = Phi_net.Packet

(* [recent] mirrors the cons-list it replaced: a fixed-capacity scratch
   array of recently arrived out-of-order seqs, newest first.  One extra
   slot beyond the retention cap lets [remember_recent] insert before
   truncating, exactly like the old [seq :: take (2 * max) keep]. *)
let recent_capacity = (Packet.max_sack_blocks * 2) + 1

type t = {
  engine : Engine.t;
  node : Node.t;
  pool : Packet.pool;
  flow : int;
  peer : int;
  buffered : (int, unit) Hashtbl.t;  (* received out-of-order segments *)
  recent : int array;  (* recently arrived out-of-order seqs, newest first *)
  mutable n_recent : int;
  mutable next_expected : int;
  mutable segments_received : int;
  mutable duplicate_segments : int;
}

(* Expand the contiguous buffered run containing a seq into a [lo, hi)
   block (two allocation-free int scans). *)
let rec block_lo t lo = if Hashtbl.mem t.buffered (lo - 1) then block_lo t (lo - 1) else lo
let rec block_hi t hi = if Hashtbl.mem t.buffered hi then block_hi t (hi + 1) else hi

(* Compact [recent] in place, keeping (in order) the seqs still above the
   cumulative ACK and distinct from [drop]; returns the new length.
   Pass [drop:min_int] to filter on [next_expected] alone. *)
let rec compact t ~drop i w =
  if i >= t.n_recent then w
  else begin
    let s = t.recent.(i) in
    if s <> drop && s >= t.next_expected then begin
      t.recent.(w) <- s;
      compact t ~drop (i + 1) (w + 1)
    end
    else compact t ~drop (i + 1) w
  end

let remember_recent t seq =
  let kept = compact t ~drop:seq 0 0 in
  let keep = Stdlib.min kept (Packet.max_sack_blocks * 2) in
  for i = keep downto 1 do
    t.recent.(i) <- t.recent.(i - 1)
  done;
  t.recent.(0) <- seq;
  t.n_recent <- keep + 1

(* True when the ack already carries the [lo, hi) block among its first
   [j + 1] SACK ranges. *)
let rec have_block t ack ~lo ~hi j =
  j >= 0
  && ((Packet.sack_lo t.pool ack j = lo && Packet.sack_hi t.pool ack j = hi)
     || have_block t ack ~lo ~hi (j - 1))

(* Write up to [max_sack_blocks] deduplicated blocks straight into the
   ack's inline SACK fields, walking [recent] newest first — the same
   blocks, in the same order, as the old list-building collector. *)
let rec emit_sack_blocks t ack k =
  if k < t.n_recent && Packet.sack_count t.pool ack < Packet.max_sack_blocks then begin
    let seq = t.recent.(k) in
    if seq >= t.next_expected && Hashtbl.mem t.buffered seq then begin
      let lo = block_lo t seq in
      let hi = block_hi t (seq + 1) in
      if not (have_block t ack ~lo ~hi (Packet.sack_count t.pool ack - 1)) then
        Packet.add_sack t.pool ack ~lo ~hi
    end;
    emit_sack_blocks t ack (k + 1)
  end

let send_ack t ~has_echo ~echo_sent_at ~tx_time ~ece =
  let pkt =
    Packet.acquire_ack t.pool ~flow:t.flow ~src:(Node.id t.node) ~dst:t.peer
      ~next_expected:t.next_expected ~has_echo ~echo_sent_at ~echo_tx_time:tx_time ~ece
      ~now:(Engine.now t.engine)
  in
  emit_sack_blocks t pkt 0;
  Node.receive t.node pkt

let handle t pkt =
  if Packet.is_data t.pool pkt then begin
    (* Copy every field out before replying: the handle dies when this
       handler returns. *)
    let seq = Packet.seq t.pool pkt in
    let sent_at = Packet.sent_at t.pool pkt in
    let ece = Packet.ce t.pool pkt in
    let retransmitted = Packet.retransmit t.pool pkt in
    if seq < t.next_expected || Hashtbl.mem t.buffered seq then begin
      (* Already have it: spurious retransmission; still ACK so the sender
         can make progress. *)
      t.duplicate_segments <- t.duplicate_segments + 1;
      send_ack t ~has_echo:false ~echo_sent_at:sent_at ~tx_time:sent_at ~ece
    end
    else begin
      t.segments_received <- t.segments_received + 1;
      if seq = t.next_expected then begin
        t.next_expected <- t.next_expected + 1;
        (* Advance over any previously buffered run. *)
        while Hashtbl.mem t.buffered t.next_expected do
          Hashtbl.remove t.buffered t.next_expected;
          t.next_expected <- t.next_expected + 1
        done;
        t.n_recent <- compact t ~drop:min_int 0 0;
        (* No RTT echo on retransmissions (Karn's algorithm). *)
        send_ack t ~has_echo:(not retransmitted) ~echo_sent_at:sent_at ~tx_time:sent_at ~ece
      end
      else begin
        (* Out-of-order arrival: only reordered/lossy episodes buffer;
           in-order delivery never reaches this branch. *)
        Hashtbl.add t.buffered seq (); (* phi-lint: allow hot-alloc *)
        remember_recent t seq;
        (* Duplicate ACK: cumulative number unchanged, SACK describes the
           hole; no RTT echo. *)
        send_ack t ~has_echo:false ~echo_sent_at:sent_at ~tx_time:sent_at ~ece
      end
    end
  end

let create engine ~node ~flow ~peer =
  let t =
    {
      engine;
      node;
      pool = Node.pool node;
      flow;
      peer;
      buffered = Hashtbl.create 64;
      recent = Array.make recent_capacity 0;
      n_recent = 0;
      next_expected = 0;
      segments_received = 0;
      duplicate_segments = 0;
    }
  in
  Node.bind_flow node ~flow (handle t);
  t

let next_expected t = t.next_expected
let segments_received t = t.segments_received
let duplicate_segments t = t.duplicate_segments
let close t = Node.unbind_flow t.node ~flow:t.flow
