let make_weighted ~weight ?(initial_cwnd = 2.) ?(initial_ssthresh = 65536.) () =
  if weight <= 0. then invalid_arg "Reno.make_weighted: weight must be positive";
  let on_ack (cc : Cc.t) ~now:_ ~rtt:_ ~sent_at:_ ~newly_acked =
    let acked = float_of_int newly_acked in
    if Cc.in_slow_start cc then
      (* Weighted slow start opens the window [weight] segments per ACKed
         segment, capped at ssthresh to avoid overshooting into CA. *)
      cc.cwnd <- Float.min (cc.cwnd +. (weight *. acked)) (Float.max cc.ssthresh cc.cwnd)
    else cc.cwnd <- cc.cwnd +. (weight *. acked /. cc.cwnd)
  in
  let decrease (cc : Cc.t) =
    (* MulTCP decrease: one of the [weight] virtual flows halves, so the
       ensemble drops by a factor 1 - 1/(2w).  The sender floors the
       result at [Cc.min_cwnd]. *)
    let factor = 1. -. (1. /. (2. *. weight)) in
    cc.ssthresh <- cc.cwnd *. factor;
    cc.cwnd <- cc.ssthresh
  in
  let on_loss cc ~now:_ = decrease cc in
  let on_timeout (cc : Cc.t) ~now:_ =
    cc.ssthresh <- cc.cwnd /. 2.;
    cc.cwnd <- 1.
  in
  let name = if Float.equal weight 1. then "reno" else Printf.sprintf "reno-w%.2g" weight in
  Cc.make ~name ~initial_cwnd ~initial_ssthresh ~on_ack ~on_loss ~on_timeout ()

let make ?initial_cwnd ?initial_ssthresh () =
  make_weighted ~weight:1. ?initial_cwnd ?initial_ssthresh ()
