(* Mutable estimator state lives in a flat floatarray: this record also
   carries non-float fields, so [mutable f : float] fields would box a
   fresh float on every store — once per RTT sample on the ACK hot path
   (phi-lint [hot-alloc]).  Floatarray stores are unboxed. *)

(* Slot layout of [s]. *)
let srtt_i = 0
let rttvar_i = 1
let have_sample_i = 2 (* 0. = no sample yet, 1. = have one *)
let backoff_i = 3

type t = { min_rto : float; max_rto : float; s : floatarray }

let get t i = Float.Array.get t.s i
let set t i v = Float.Array.set t.s i v

let create ?(min_rto = 0.2) ?(max_rto = 60.) () =
  if min_rto <= 0. || max_rto < min_rto then invalid_arg "Rto.create: bad bounds";
  let s = Float.Array.create 4 in
  Float.Array.set s srtt_i 1.;
  Float.Array.set s rttvar_i 0.5;
  Float.Array.set s have_sample_i 0.;
  Float.Array.set s backoff_i 1.;
  { min_rto; max_rto; s }

let observe t ~rtt =
  if rtt <= 0. then invalid_arg "Rto.observe: non-positive rtt";
  if get t have_sample_i > 0. then begin
    set t rttvar_i ((0.75 *. get t rttvar_i) +. (0.25 *. Float.abs (get t srtt_i -. rtt)));
    set t srtt_i ((0.875 *. get t srtt_i) +. (0.125 *. rtt))
  end
  else begin
    set t srtt_i rtt;
    set t rttvar_i (rtt /. 2.);
    set t have_sample_i 1.
  end;
  set t backoff_i 1.

let current t =
  let base =
    if get t have_sample_i > 0. then get t srtt_i +. (4. *. get t rttvar_i)
    else 1. (* RFC 6298 initial RTO before any sample *)
  in
  Float.min t.max_rto (Float.max t.min_rto base *. get t backoff_i)

let backoff t = set t backoff_i (Float.min (get t backoff_i *. 2.) 64.)

let reset_backoff t = set t backoff_i 1.

let srtt t ~default = if get t have_sample_i > 0. then get t srtt_i else default
