(** Retransmission-timeout estimation per RFC 6298: smoothed RTT plus four
    times the RTT variance, exponential backoff on expiry, backoff cleared
    by the next valid sample. *)

type t

val create : ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: [min_rto = 0.2] (ns-2's convention), [max_rto = 60.]. *)

val observe : t -> rtt:float -> unit
(** Feed a (non-retransmitted-segment) RTT sample. *)

val current : t -> float
(** Timeout to arm now, including any backoff. *)

val backoff : t -> unit
(** Double the timeout (saturating at [max_rto]); call on expiry. *)

val reset_backoff : t -> unit

val srtt : t -> default:float -> float
(** Smoothed RTT, or [default] before the first sample.  Returns a bare
    float (no [option]) so per-ACK callers allocate nothing. *)
