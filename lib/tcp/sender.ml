module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant
module Node = Phi_net.Node
module Packet = Phi_net.Packet

let dupthresh = 3

(* Hot mutable floats live in [fs], one flat floatarray per sender:
   storing into a mutable float field of this mixed record would box a
   fresh float on every write — per ACK for the delivery watermark and
   RTT accounting, per transmission for the pacing clock — while a
   floatarray store is unboxed (same idiom as the engine clock and
   Rto).  Cold timestamps (started_at, finished_at) stay ordinary
   fields. *)
let delivered_tx_high_i = 0
(* latest transmission time echoed by any ACK: everything sent earlier
   has either been delivered or dropped (paths are FIFO) *)

let next_send_at_i = 1 (* earliest paced transmission time *)
let rtt_sum_i = 2
let rtt_min_i = 3
let ecn_reaction_until_i = 4 (* ignore further ECE until this time *)
let fs_slots = 5

type t = {
  engine : Engine.t;
  node : Node.t;
  pool : Packet.pool;
  flow : int;
  dst : int;
  cc : Cc.t;
  rto : Rto.t;
  total : int;
  source_index : int;
  on_complete : Flow.conn_stats -> unit;
  mutable started : bool;
  mutable completed : bool;
  mutable snd_una : int;  (* first unacknowledged segment *)
  mutable snd_nxt : int;  (* next new segment to send *)
  mutable highest_sent : int;  (* one past the highest segment ever sent *)
  (* SACK scoreboard: all sets hold seqs in [snd_una, snd_nxt). *)
  sacked : (int, unit) Hashtbl.t;
  lost : (int, unit) Hashtbl.t;
  retx : (int, float) Hashtbl.t;
      (* lost segments retransmitted and not yet cum-acked, mapped to the
         retransmission's send time (used to detect lost
         retransmissions) *)
  retx_queue : int Queue.t;  (* lost segments awaiting retransmission *)
  mutable n_sacked : int;
  mutable n_lost : int;
  mutable n_retx : int;
  mutable highest_sacked : int;  (* one past the highest sacked seq, >= snd_una *)
  mutable loss_scan : int;  (* first seq not yet evaluated for loss *)
  fs : floatarray;  (* hot mutable floats; slots above *)
  mutable in_recovery : bool;
  mutable recover : int;  (* recovery ends when snd_una reaches this *)
  mutable send_timer : Engine.handle;  (* pending paced-send wakeup, or null *)
  mutable rto_handle : Engine.handle;  (* pending RTO, or null *)
  mutable rto_cb : unit -> unit;
      (* the RTO and paced-send callbacks, allocated once at create: the
         RTO re-arms on every ACK and a per-arm closure would be a
         per-ACK allocation *)
  mutable send_timer_cb : unit -> unit;
  mutable started_at : float;
  mutable finished_at : float;
  mutable retransmitted : int;
  mutable timeouts : int;
  mutable rtt_count : int;
  mutable ecn_reductions : int;
  mutable cwnd_bound : float option;
      (* sanitizer upper bound (typically buffer + BDP in packets); None
         disables the upper check *)
}

let fget t i = Float.Array.get t.fs i
let fset t i v = Float.Array.set t.fs i v

let persistent_total = max_int / 2

let cwnd t = t.cc.Cc.cwnd
let in_recovery t = t.in_recovery
let acked_segments t = t.snd_una
let sent_segments t = t.highest_sent
let retransmitted_segments t = t.retransmitted
let timeouts t = t.timeouts
let ecn_reductions t = t.ecn_reductions
let completed t = t.completed

let stats t =
  let finished_at = if t.completed then t.finished_at else Engine.now t.engine in
  (* One record per [stats] call; callers sample at completion or at a
     coarse reporting cadence, never per event. *)
  { (* phi-lint: allow hot-alloc *)
    Flow.flow = t.flow;
    source_index = t.source_index;
    started_at = t.started_at;
    finished_at;
    bytes = t.snd_una * Packet.mss;
    segments = t.snd_una;
    retransmitted_segments = t.retransmitted;
    timeouts = t.timeouts;
    rtt_samples = t.rtt_count;
    min_rtt = (if t.rtt_count > 0 then fget t rtt_min_i else nan);
    mean_rtt =
      (if t.rtt_count > 0 then fget t rtt_sum_i /. float_of_int t.rtt_count else nan);
  }

(* RFC 6675-style pipe: data sent minus data known to have left the
   network (sacked or deemed lost), plus retransmissions in flight. *)
let pipe t = t.snd_nxt - t.snd_una - t.n_sacked - t.n_lost + t.n_retx

let set_cwnd_bound t bound =
  if bound < 1. then invalid_arg "Sender.set_cwnd_bound: bound must be >= 1 packet";
  t.cwnd_bound <- Some bound

(* Sanitizer hook: a congestion window that is NaN, below one packet, or
   above the configured buffer+BDP bound silently corrupts the pacing of
   every later experiment. *)
let check_cwnd t =
  if Invariant.enabled () then begin
    let c = t.cc.Cc.cwnd in
    let now = Engine.now t.engine in
    if Float.is_nan c || c < 1. then
      Invariant.record ~rule:"cwnd-bound" ~time:now
        (Printf.sprintf "Sender flow %d: cwnd %g below 1 packet" t.flow c)
    else
      match t.cwnd_bound with
      | Some bound when c > bound ->
        Invariant.record ~rule:"cwnd-bound" ~time:now
          (Printf.sprintf "Sender flow %d: cwnd %g above bound %g" t.flow c bound)
      | _ -> ()
  end

let cancel_rto t =
  if not (Engine.is_null t.rto_handle) then begin
    Engine.cancel t.engine t.rto_handle;
    t.rto_handle <- Engine.null
  end

let cancel_send_timer t =
  if not (Engine.is_null t.send_timer) then begin
    Engine.cancel t.engine t.send_timer;
    t.send_timer <- Engine.null
  end

(* The [min_cwnd] floor lives here, not in each controller: after a loss
   event both the window and the threshold stay at or above two segments
   (RFC 5681), and after a timeout the window stays at or above one.  The
   [not (_ >= _)] form also repairs NaN from a buggy controller. *)
let clamp_after_loss t =
  let cc = t.cc in
  if not (cc.Cc.cwnd >= Cc.min_cwnd) then cc.Cc.cwnd <- Cc.min_cwnd;
  if not (cc.Cc.ssthresh >= Cc.min_cwnd) then cc.Cc.ssthresh <- Cc.min_cwnd

let clamp_after_timeout t =
  let cc = t.cc in
  if not (cc.Cc.cwnd >= 1.) then cc.Cc.cwnd <- 1.;
  if not (cc.Cc.ssthresh >= Cc.min_cwnd) then cc.Cc.ssthresh <- Cc.min_cwnd

let send_segment t seq =
  let retransmit = seq < t.highest_sent in
  if retransmit then t.retransmitted <- t.retransmitted + 1;
  let pkt =
    Packet.acquire_data t.pool ~flow:t.flow ~src:(Node.id t.node) ~dst:t.dst ~seq
      ~now:(Engine.now t.engine) ~retransmit
  in
  Node.receive t.node pkt;
  if seq >= t.highest_sent then t.highest_sent <- seq + 1

let clear_scoreboard t =
  Hashtbl.reset t.sacked;
  Hashtbl.reset t.lost;
  Hashtbl.reset t.retx;
  Queue.clear t.retx_queue;
  t.n_sacked <- 0;
  t.n_lost <- 0;
  t.n_retx <- 0;
  t.highest_sacked <- t.snd_una;
  t.loss_scan <- t.snd_una

let mark_sacked t seq =
  if seq >= t.snd_una && seq < t.snd_nxt && not (Hashtbl.mem t.sacked seq) then begin
    (* SACK bookkeeping: only reordered/lost segments enter this branch. *)
    Hashtbl.add t.sacked seq (); (* phi-lint: allow hot-alloc *)
    t.n_sacked <- t.n_sacked + 1;
    if Hashtbl.mem t.lost seq then begin
      Hashtbl.remove t.lost seq;
      t.n_lost <- t.n_lost - 1
    end;
    if Hashtbl.mem t.retx seq then begin
      Hashtbl.remove t.retx seq;
      t.n_retx <- t.n_retx - 1
    end;
    if seq + 1 > t.highest_sacked then t.highest_sacked <- seq + 1
  end

(* Mark every segment the ACK's inline SACK ranges cover. *)
let merge_sack t pkt =
  for i = 0 to Packet.sack_count t.pool pkt - 1 do
    let lo = Stdlib.max (Packet.sack_lo t.pool pkt i) t.snd_una
    and hi = Stdlib.min (Packet.sack_hi t.pool pkt i) t.snd_nxt in
    for seq = lo to hi - 1 do
      mark_sacked t seq
    done
  done

(* RACK-style rescue: the paths are FIFO, so once an ACK echoes a
   transmission time later than a retransmission's send time, that
   retransmission either arrived (and would have been SACKed or
   cumulatively ACKed by now) or was dropped.  If its segment is still
   outstanding, re-queue it instead of waiting for the RTO. *)
let requeue_lost_retransmissions t =
  (* Guarded on table size: the fold's closure would otherwise be an
     allocation on every ACK of a loss-free steady state. *)
  if Hashtbl.length t.retx > 0 then begin
    let stale =
      Hashtbl.fold (* phi-lint: allow hot-alloc *)
        (fun seq sent_at acc -> (* phi-lint: allow hot-alloc *)
          if sent_at < fget t delivered_tx_high_i then seq :: acc else acc) (* phi-lint: allow hot-alloc *)
        t.retx []
    in
    List.iter
      (fun seq -> (* phi-lint: allow hot-alloc *)
        Hashtbl.remove t.retx seq;
        t.n_retx <- t.n_retx - 1;
        Queue.push seq t.retx_queue) (* phi-lint: allow hot-alloc *)
      stale
  end

(* A segment is deemed lost once the receiver holds data [dupthresh]
   segments above it (the SACK analogue of three duplicate ACKs). *)
let detect_losses t =
  while t.loss_scan < t.highest_sacked - dupthresh + 1 do
    let seq = t.loss_scan in
    if
      seq >= t.snd_una
      && (not (Hashtbl.mem t.sacked seq))
      && not (Hashtbl.mem t.lost seq)
    then begin
      (* Loss marking: reached only when SACK reports a hole. *)
      Hashtbl.add t.lost seq (); (* phi-lint: allow hot-alloc *)
      t.n_lost <- t.n_lost + 1;
      Queue.push seq t.retx_queue (* phi-lint: allow hot-alloc *)
    end;
    t.loss_scan <- t.loss_scan + 1
  done

(* Drop scoreboard state for segments below the new cumulative ACK. *)
let advance_una t new_una =
  for seq = t.snd_una to new_una - 1 do
    if Hashtbl.mem t.sacked seq then begin
      Hashtbl.remove t.sacked seq;
      t.n_sacked <- t.n_sacked - 1
    end;
    if Hashtbl.mem t.lost seq then begin
      Hashtbl.remove t.lost seq;
      t.n_lost <- t.n_lost - 1
    end;
    if Hashtbl.mem t.retx seq then begin
      Hashtbl.remove t.retx seq;
      t.n_retx <- t.n_retx - 1
    end
  done;
  t.snd_una <- new_una;
  if t.highest_sacked < new_una then t.highest_sacked <- new_una;
  if t.loss_scan < new_una then t.loss_scan <- new_una

(* Next eligible lost segment to retransmit, or -1 when the queue holds
   none: a sentinel rather than an option, and [Queue.pop] rather than
   [take_opt], so the dequeue allocates nothing. *)
let rec next_retransmit t =
  if Queue.is_empty t.retx_queue then -1
  else begin
    let seq = Queue.pop t.retx_queue in
    if seq >= t.snd_una && Hashtbl.mem t.lost seq && not (Hashtbl.mem t.retx seq) then seq
    else next_retransmit t
  end

let rec arm_rto t =
  cancel_rto t;
  let delay = Rto.current t.rto in
  t.rto_handle <- Engine.schedule_after t.engine ~delay t.rto_cb

and on_rto t =
  t.rto_handle <- Engine.null;
  if (not t.completed) && t.snd_una < t.total then begin
    t.timeouts <- t.timeouts + 1;
    Rto.backoff t.rto;
    t.cc.Cc.on_timeout t.cc ~now:(Engine.now t.engine);
    clamp_after_timeout t;
    t.in_recovery <- false;
    (* Conservative go-back-N: assume SACK state reneged, resume from the
       first unacknowledged segment. *)
    clear_scoreboard t;
    t.snd_nxt <- t.snd_una;
    try_send t;
    arm_rto t
  end

and try_send t =
  check_cwnd t;
  let now = Engine.now t.engine in
  let gap = t.cc.Cc.pacing_gap_s in
  let window = int_of_float (Float.max 1. t.cc.Cc.cwnd) in
  let progressed = ref false in
  let blocked = ref false in
  let continue = ref true in
  while !continue && pipe t < window do
    if
      gap > 0.
      && now < fget t next_send_at_i
      && ((not (Queue.is_empty t.retx_queue)) || t.snd_nxt < t.total)
    then begin
      blocked := true;
      continue := false
    end
    else begin
      let seq = next_retransmit t in
      if seq >= 0 then begin
        send_segment t seq;
        Hashtbl.add t.retx seq (Engine.now t.engine); (* phi-lint: allow hot-alloc *)
        (* ^ retransmission bookkeeping: runs only for lost segments,
           never in a loss-free steady state *)
        t.n_retx <- t.n_retx + 1;
        progressed := true;
        if gap > 0. then fset t next_send_at_i (Float.max now (fget t next_send_at_i) +. gap)
      end
      else if t.snd_nxt < t.total then begin
        send_segment t t.snd_nxt;
        t.snd_nxt <- t.snd_nxt + 1;
        progressed := true;
        if gap > 0. then fset t next_send_at_i (Float.max now (fget t next_send_at_i) +. gap)
      end
      else continue := false
    end
  done;
  if !progressed && Engine.is_null t.rto_handle then arm_rto t;
  if !blocked && Engine.is_null t.send_timer then begin
    let delay = Float.max 0. (fget t next_send_at_i -. now) in
    t.send_timer <- Engine.schedule_after t.engine ~delay t.send_timer_cb
  end

let complete t =
  t.completed <- true;
  t.finished_at <- Engine.now t.engine;
  cancel_rto t;
  cancel_send_timer t;
  Node.unbind_flow t.node ~flow:t.flow;
  let stats = stats t in
  Flow.sanitize stats;
  t.on_complete stats

let record_rtt t sample =
  if sample > 0. then begin
    Rto.observe t.rto ~rtt:sample;
    t.rtt_count <- t.rtt_count + 1;
    fset t rtt_sum_i (fget t rtt_sum_i +. sample);
    if sample < fget t rtt_min_i then fset t rtt_min_i sample
  end

(* React to an ECN echo like a loss-based decrease, but at most once per
   RTT and without any retransmission (RFC 3168 semantics). *)
let on_ecn_echo t ~now =
  if now >= fget t ecn_reaction_until_i then begin
    t.cc.Cc.on_loss t.cc ~now;
    clamp_after_loss t;
    t.ecn_reductions <- t.ecn_reductions + 1;
    fset t ecn_reaction_until_i (now +. Rto.srtt t.rto ~default:0.2)
  end

(* [pkt] must be an ACK handle; every field is read through the pooled
   accessors and nothing of the packet survives this call. *)
let on_ack t pkt =
  let now = Engine.now t.engine in
  let ack_seq = Packet.seq t.pool pkt in
  let has_echo = Packet.ack_has_echo t.pool pkt in
  let echo_sent_at = Packet.ack_echo_sent_at t.pool pkt in
  let tx_time = Packet.ack_echo_tx_time t.pool pkt in
  if Packet.ack_ece t.pool pkt then on_ecn_echo t ~now;
  if tx_time > fget t delivered_tx_high_i then fset t delivered_tx_high_i tx_time;
  (* A go-back-N controller repairs losses through the RTO alone: ignore
     the receiver's SACK blocks so the scoreboard stays empty and no fast
     retransmit ever fires. *)
  (match t.cc.Cc.recovery with Cc.Sack -> merge_sack t pkt | Cc.Go_back_n -> ());
  requeue_lost_retransmissions t;
  let newly_acked = Stdlib.max 0 (ack_seq - t.snd_una) in
  if newly_acked > 0 then begin
    advance_una t ack_seq;
    if has_echo then record_rtt t (now -. echo_sent_at)
  end;
  detect_losses t;
  if t.in_recovery && t.snd_una >= t.recover then t.in_recovery <- false;
  if (not t.in_recovery) && t.n_lost > 0 then begin
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    t.cc.Cc.on_loss t.cc ~now;
    clamp_after_loss t
  end;
  if newly_acked > 0 && not t.in_recovery then begin
    (* nan = no sample (see Cc.on_ack): a sentinel, not a [Some] box. *)
    let rtt = if has_echo then now -. echo_sent_at else Float.nan in
    t.cc.Cc.on_ack t.cc ~now ~rtt ~sent_at:echo_sent_at ~newly_acked
  end;
  if t.snd_una >= t.total then complete t
  else begin
    if newly_acked > 0 then arm_rto t;
    try_send t
  end

let on_packet t pkt =
  (* Senders only consume ACKs. *)
  if (not (Packet.is_data t.pool pkt)) && not t.completed then on_ack t pkt

let nop () = ()

let create engine ~node ~flow ~dst ~cc ~total_segments ?(source_index = 0)
    ?(on_complete = fun _ -> ()) () =
  if total_segments < 1 then invalid_arg "Sender.create: total_segments must be >= 1";
  let fs = Float.Array.create fs_slots in
  Float.Array.set fs delivered_tx_high_i neg_infinity;
  Float.Array.set fs next_send_at_i 0.;
  Float.Array.set fs rtt_sum_i 0.;
  Float.Array.set fs rtt_min_i infinity;
  Float.Array.set fs ecn_reaction_until_i neg_infinity;
  let t =
    {
      engine;
      node;
      pool = Node.pool node;
      flow;
      dst;
      cc;
      rto = Rto.create ();
      total = total_segments;
      source_index;
      on_complete;
      started = false;
      completed = false;
      snd_una = 0;
      snd_nxt = 0;
      highest_sent = 0;
      sacked = Hashtbl.create 64;
      lost = Hashtbl.create 16;
      retx = Hashtbl.create 16;
      retx_queue = Queue.create ();
      n_sacked = 0;
      n_lost = 0;
      n_retx = 0;
      highest_sacked = 0;
      loss_scan = 0;
      in_recovery = false;
      recover = 0;
      fs;
      send_timer = Engine.null;
      rto_handle = Engine.null;
      rto_cb = nop;
      send_timer_cb = nop;
      started_at = Engine.now engine;
      finished_at = Engine.now engine;
      retransmitted = 0;
      timeouts = 0;
      rtt_count = 0;
      ecn_reductions = 0;
      cwnd_bound = None;
    }
  in
  (* Allocate the timer callbacks once here; arming only stores them. *)
  t.rto_cb <- (fun () -> on_rto t);
  t.send_timer_cb <-
    (fun () ->
      t.send_timer <- Engine.null;
      if not t.completed then try_send t);
  Node.bind_flow node ~flow (on_packet t);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    t.started_at <- Engine.now t.engine;
    try_send t
  end

let abort t =
  if not t.completed then begin
    t.completed <- true;
    t.finished_at <- Engine.now t.engine;
    cancel_rto t;
    cancel_send_timer t;
    Node.unbind_flow t.node ~flow:t.flow
  end
