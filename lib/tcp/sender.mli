(** Window-based TCP sender with SACK loss recovery.

    The transport machinery follows the SACK-enabled ns-2 linux agent the
    paper used: congestion window evolution is delegated to a {!Cc.t};
    loss recovery is scoreboard-driven in the style of RFC 6675 (a segment
    is deemed lost once the receiver has selectively acknowledged data
    three or more segments above it; sending is governed by a pipe
    estimate); a go-back-N retransmission timeout with exponential backoff
    is the fallback for tail losses and lost retransmissions.  Sequence
    numbers count MSS-sized segments. *)

type t

val create :
  Phi_sim.Engine.t ->
  node:Phi_net.Node.t ->
  flow:int ->
  dst:int ->
  cc:Cc.t ->
  total_segments:int ->
  ?source_index:int ->
  ?on_complete:(Flow.conn_stats -> unit) ->
  unit ->
  t
(** The sender binds [flow] on [node] to receive ACKs; a matching
    {!Receiver} must be bound on the destination.  [total_segments] must be
    at least 1; use {!persistent_total} for effectively infinite flows. *)

val persistent_total : int
(** A segment count no realistic simulation can finish. *)

val start : t -> unit
(** Begin transmitting (idempotent). *)

val abort : t -> unit
(** Stop without completing: cancels timers and unbinds the flow.  No
    [on_complete] callback fires. *)

val cwnd : t -> float

val set_cwnd_bound : t -> float -> unit
(** Arm the [PHI_SANITIZE=1] cwnd upper bound for this sender (typically
    bottleneck buffer + BDP, in packets).  The sanitizer always checks
    the lower bound (>= 1 packet, non-NaN); the upper check only runs
    once a bound is set.  Raises [Invalid_argument] if [bound < 1]. *)

val in_recovery : t -> bool
val acked_segments : t -> int
val sent_segments : t -> int
val retransmitted_segments : t -> int
val timeouts : t -> int

val ecn_reductions : t -> int
(** Window reductions triggered by ECN echoes (at most one per RTT). *)

val completed : t -> bool

val stats : t -> Flow.conn_stats
(** Snapshot of the connection's accounting so far ([finished_at] is the
    current time while still running). *)
