type state = {
  mutable base_rtt : float;
  mutable rtt_sum : float;
  mutable rtt_count : int;
  mutable next_adjust_at : float;  (* end of the current observation epoch *)
}

let make ?(alpha = 2.) ?(beta = 4.) ?(gamma = 1.) ?(initial_cwnd = 2.)
    ?(initial_ssthresh = 65536.) () =
  if alpha > beta then invalid_arg "Vegas.make: alpha must be <= beta";
  if alpha <= 0. then invalid_arg "Vegas.make: alpha must be positive";
  let s = { base_rtt = infinity; rtt_sum = 0.; rtt_count = 0; next_adjust_at = 0. } in
  let on_ack (cc : Cc.t) ~now ~rtt ~sent_at:_ ~newly_acked =
    (* [rtt > 0.] is the has-sample test: no sample is [nan]. *)
    if rtt > 0. then begin
      if rtt < s.base_rtt then s.base_rtt <- rtt;
      s.rtt_sum <- s.rtt_sum +. rtt;
      s.rtt_count <- s.rtt_count + 1
    end;
    if now >= s.next_adjust_at && s.rtt_count > 0 && Float.is_finite s.base_rtt then begin
      let mean_rtt = s.rtt_sum /. float_of_int s.rtt_count in
      s.rtt_sum <- 0.;
      s.rtt_count <- 0;
      s.next_adjust_at <- now +. mean_rtt;
      (* Segments this connection keeps queued in the network. *)
      let diff = cc.Cc.cwnd *. (1. -. (s.base_rtt /. mean_rtt)) in
      if Cc.in_slow_start cc then begin
        if diff > gamma then begin
          (* Leave slow start: the queue is already building. *)
          cc.Cc.ssthresh <- Float.max Cc.min_cwnd (cc.Cc.cwnd /. 2.);
          cc.Cc.cwnd <- Float.max Cc.min_cwnd (cc.Cc.cwnd -. 1.)
        end
        else
          (* Vegas doubles only every other RTT; approximated by +0.5 per
             acked segment within the epoch (net: x1.5-2 per RTT). *)
          cc.Cc.cwnd <- Float.min (cc.Cc.cwnd +. (0.5 *. float_of_int newly_acked)) (Float.max cc.Cc.ssthresh cc.Cc.cwnd)
      end
      else if diff < alpha then cc.Cc.cwnd <- cc.Cc.cwnd +. 1.
      else if diff > beta then cc.Cc.cwnd <- Float.max Cc.min_cwnd (cc.Cc.cwnd -. 1.)
    end
    else if Cc.in_slow_start cc then
      cc.Cc.cwnd <- Float.min (cc.Cc.cwnd +. (0.5 *. float_of_int newly_acked)) (Float.max cc.Cc.ssthresh cc.Cc.cwnd)
  in
  (* Loss/timeout decreases rely on the sender's [Cc.min_cwnd] floor; the
     in-epoch decreases above keep their own clamps (algorithmic). *)
  let on_loss (cc : Cc.t) ~now:_ =
    cc.Cc.ssthresh <- cc.Cc.cwnd *. 0.75;
    cc.Cc.cwnd <- cc.Cc.ssthresh
  in
  let on_timeout (cc : Cc.t) ~now:_ =
    cc.Cc.ssthresh <- cc.Cc.cwnd /. 2.;
    cc.Cc.cwnd <- 1.
  in
  Cc.make ~name:"vegas" ~initial_cwnd ~initial_ssthresh ~on_ack ~on_loss ~on_timeout ()
