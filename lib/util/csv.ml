let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let rec mkdir_p dir =
  if not (dir = "" || dir = "." || dir = "/" || Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (* Attempt-then-check rather than check-then-attempt: two concurrent
       writers racing to create the same directory must both succeed. *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end
  else if Sys.file_exists dir && not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "mkdir_p: %s exists and is not a directory" dir))

let write ?(mkdirs = false) ~path ~header rows =
  if mkdirs then mkdir_p (Filename.dirname path);
  let oc = open_out path in
  let emit row = output_string oc (String.concat "," (List.map escape row) ^ "\n") in
  (try
     emit header;
     List.iter emit rows
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let float_cell x = Printf.sprintf "%.17g" x
