(** Minimal CSV writing, for exporting figure data from the bench harness
    (each paper figure can be re-plotted from these files). *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents, like [mkdir -p].
    Tolerates concurrent creation of the same directories (two
    experiments exporting under the same [--csv DIR] at once must both
    succeed).

    @raise Sys_error when a path component exists but is not a
    directory, naming the offending component. *)

val write : ?mkdirs:bool -> path:string -> header:string list -> string list list -> unit
(** Write a header plus rows.  Creates/truncates [path].  [mkdirs]
    (default [false]) first creates [path]'s parent directories. *)

val float_cell : float -> string
(** Full-precision float rendering ([%.17g]). *)
