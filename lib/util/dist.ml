let exponential rng ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  (* 1 - u is in (0, 1], so log never sees zero. *)
  -.mean *. log (1. -. Prng.float rng)

let uniform rng ~lo ~hi = Prng.float_range rng ~lo ~hi

let normal rng ~mu ~sigma =
  let u1 = 1. -. Prng.float rng in
  let u2 = Prng.float rng in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  scale /. ((1. -. Prng.float rng) ** (1. /. shape))

let poisson rng ~lambda =
  if lambda < 0. then invalid_arg "Dist.poisson: lambda must be non-negative";
  if Float.equal lambda 0. then 0
  else if lambda < 64. then begin
    let limit = exp (-.lambda) in
    let rec count k p =
      let p = p *. Prng.float rng in
      if p <= limit then k else count (k + 1) p
    in
    count 0 1.
  end
  else
    (* Normal approximation keeps large-rate streams O(1) per draw. *)
    let x = normal rng ~mu:lambda ~sigma:(sqrt lambda) in
    Stdlib.max 0 (int_of_float (Float.round x))

type zipf = { cdf : float array }

let zipf ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let acc = ref 0. in
  let cdf =
    Array.map
      (fun w ->
        acc := !acc +. (w /. total);
        !acc)
      weights
  in
  (* Guard against floating-point shortfall at the top of the CDF. *)
  cdf.(n - 1) <- 1.;
  { cdf }

let zipf_draw { cdf } rng =
  let u = Prng.float rng in
  (* Binary search for the first index whose cumulative weight exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)

let zipf_support { cdf } = Array.length cdf
