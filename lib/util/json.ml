type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float x = if Float.is_finite x then Float x else Null

(* {2 Writer} *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  (* %.17g round-trips any double; strip to a valid JSON number (17e2 is
     fine, a bare "17" for 17.0 is also valid JSON). *)
  Printf.sprintf "%.17g" x

let to_string ?(indent = 2) t =
  let buf = Buffer.create 1024 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          emit (level + 1) item)
        items;
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          escape_string buf key;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          emit (level + 1) value)
        fields;
      pad level;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let to_file ?indent ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (to_string ?indent t);
     output_char oc '\n'
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

(* {2 Parser} *)

exception Bad of int * string

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub src !pos w = word then begin
      pos := !pos + w;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match src.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> error "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = src.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then error "unterminated escape";
        let e = src.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'b' -> Buffer.add_char buf '\b'; loop ()
        | 'f' -> Buffer.add_char buf '\012'; loop ()
        | 'n' -> Buffer.add_char buf '\n'; loop ()
        | 'r' -> Buffer.add_char buf '\r'; loop ()
        | 't' -> Buffer.add_char buf '\t'; loop ()
        | 'u' ->
          let code = hex4 () in
          let code =
            (* Combine a UTF-16 surrogate pair into one code point. *)
            if code >= 0xD800 && code <= 0xDBFF
               && !pos + 1 < n && src.[!pos] = '\\' && src.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let low = hex4 () in
              if low >= 0xDC00 && low <= 0xDFFF then
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              else error "invalid low surrogate"
            end
            else code
          in
          add_utf8 buf code;
          loop ()
        | _ -> error "bad escape character")
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char src.[!pos] do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> error "malformed number"
    else (
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> error "malformed number"))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "byte %d: %s" at msg)

let of_file ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> of_string src
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
