(** Minimal JSON tree, writer and parser — just enough for the bench
    harness's machine-readable reports ([bench/main.exe --json PATH])
    and for CI to validate them, with no external dependency.

    The writer renders every float as its shortest exact decimal form
    where possible ([%.17g]), so report numbers round-trip bit-for-bit;
    non-finite floats have no JSON representation and are emitted as
    [null].  The parser is a strict recursive-descent reader of the JSON
    the writer produces (objects, arrays, strings with escapes, numbers,
    booleans, null) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float x], or [Null] when [x] is NaN or infinite. *)

val to_string : ?indent:int -> t -> string
(** Render with [indent]-space indentation (default 2); [indent:0]
    renders compactly on one line. *)

val to_file : ?indent:int -> path:string -> t -> unit
(** {!to_string} plus a trailing newline, written atomically via a
    temporary file in the same directory (a crashed or concurrent run
    never leaves a half-written report). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and
    reason. *)

val of_file : path:string -> (t, string) result

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on other constructors. *)
