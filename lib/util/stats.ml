let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs ~p =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.of_int (int_of_float rank)) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs ~p:50.

let cdf_at xs ~x =
  require_nonempty "Stats.cdf_at" xs;
  let below = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 xs in
  float_of_int below /. float_of_int (Array.length xs)

let fraction_at_least xs ~threshold =
  require_nonempty "Stats.fraction_at_least" xs;
  let above = Array.fold_left (fun acc v -> if v >= threshold then acc + 1 else acc) 0 xs in
  float_of_int above /. float_of_int (Array.length xs)

(* Jain's fairness index: (Σx)² / (n·Σx²).  Degenerate samples — empty,
   or all-zero (Σx² ≤ 0) — are defined as perfectly fair (1.), matching
   the convention the swarm experiment has used since PR 7: a shard map
   that received no traffic is not unfair, it is idle. *)
let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let s = ref 0. and s2 = ref 0. in
    for i = 0 to n - 1 do
      let x = Array.unsafe_get xs i in
      s := !s +. x;
      s2 := !s2 +. (x *. x)
    done;
    if !s2 <= 0. then 1. else !s *. !s /. (float_of_int n *. !s2)
  end

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  require_nonempty "Stats.summarize" xs;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p25 = percentile xs ~p:25.;
    median = median xs;
    p75 = percentile xs ~p:75.;
    p90 = percentile xs ~p:90.;
    p99 = percentile xs ~p:99.;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g max=%.4g" s.count
    s.mean s.stddev s.min s.median s.p90 s.max

type ewma = { alpha : float; mutable value : float; mutable seen : bool }

let ewma ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Stats.ewma: alpha must be in (0, 1]";
  { alpha; value = 0.; seen = false }

let ewma_update e x =
  if e.seen then e.value <- e.value +. (e.alpha *. (x -. e.value))
  else begin
    e.value <- x;
    e.seen <- true
  end

let ewma_value e = if e.seen then Some e.value else None

let ewma_value_or e ~default = if e.seen then e.value else default

(* A batch of [n] observations coalesced into one step with their mean:
   equivalent to [n] sequential updates of that same value, so the
   retained weight of the old estimate is (1 - alpha)^n. *)
let ewma_next e x ~n =
  if n <= 0 then invalid_arg "Stats.ewma_next: n must be positive";
  if not e.seen then x
  else begin
    let keep = (1. -. e.alpha) ** float_of_int n in
    x +. ((e.value -. x) *. keep)
  end

let ewma_update_n e x ~n =
  let v = ewma_next e x ~n in
  e.value <- v;
  e.seen <- true
