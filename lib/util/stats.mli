(** Descriptive statistics over float samples.

    Used throughout the experiment harness: medians for Table 3, means and
    percentiles for the sweep scatter plots, CDFs for the Section 2.1
    path-sharing statistic. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (0 for singleton samples). *)

val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks.  Does not mutate its argument. *)

val median : float array -> float

val cdf_at : float array -> x:float -> float
(** Empirical CDF: fraction of samples [<= x]. *)

val fraction_at_least : float array -> threshold:float -> float
(** Fraction of samples [>= threshold] (survival function, used for the
    "share with at least k flows" statistic). *)

val jain : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)], in (0, 1] for any
    non-degenerate sample: 1 when all values are equal, 1/n when a
    single element carries everything.  Empty or all-zero samples are
    defined as 1. (idle, not unfair). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** Full summary; raises [Invalid_argument] on empty input. *)

val pp_summary : Format.formatter -> summary -> unit

type ewma
(** Exponentially weighted moving average with fixed smoothing factor. *)

val ewma : alpha:float -> ewma
(** [alpha] in (0, 1]: weight of each new observation. *)

val ewma_update : ewma -> float -> unit
val ewma_value : ewma -> float option
(** [None] until the first observation. *)

val ewma_value_or : ewma -> default:float -> float

val ewma_next : ewma -> float -> n:int -> float
(** [ewma_next e x ~n] is the value the estimate would take after [n]
    coalesced observations whose mean is [x], without mutating [e] —
    equivalent to [n] sequential {!ewma_update}s of [x].  Lets batch
    consumers (the epoch-coalescing context server) preview or commit a
    whole epoch's reports in one step.  [n] must be positive. *)

val ewma_update_n : ewma -> float -> n:int -> unit
(** Commit the {!ewma_next} step. *)
