module Prng = Phi_util.Prng
module Dist = Phi_util.Dist

type flow = {
  start_s : float;
  duration_s : float;
  src_ip : int;
  src_port : int;
  dst_ip : int;
  dst_port : int;
  packets : int;
  bytes : int;
}

let dst_subnet flow = flow.dst_ip lsr 8

type config = {
  n_servers : int;
  n_subnets : int;
  zipf_alpha : float;
  flows_per_minute : float;
  horizon_minutes : int;
  mean_flow_packets : float;
}

let default_config =
  {
    n_servers = 4669;
    n_subnets = 10_000;
    zipf_alpha = 1.1;
    flows_per_minute = 60_000.;
    horizon_minutes = 10;
    mean_flow_packets = 60.;
  }

(* Pareto with shape 1.5 has mean scale * 3; pick the scale to hit the
   configured mean, floor at 1 packet. *)
let flow_packets rng config =
  let shape = 1.5 in
  let scale = config.mean_flow_packets *. (shape -. 1.) /. shape in
  Stdlib.max 1 (int_of_float (Dist.pareto rng ~shape ~scale))

let iter rng config f =
  if config.n_servers < 1 || config.n_subnets < 1 then
    invalid_arg "Cloud_trace.iter: need at least one server and subnet";
  if config.horizon_minutes < 1 then invalid_arg "Cloud_trace.iter: empty horizon";
  let zipf = Dist.zipf ~n:config.n_subnets ~alpha:config.zipf_alpha in
  for minute = 0 to config.horizon_minutes - 1 do
    let count = Dist.poisson rng ~lambda:config.flows_per_minute in
    for _ = 1 to count do
      let start_s = (float_of_int minute +. Prng.float rng) *. 60. in
      let subnet = Dist.zipf_draw zipf rng in
      let dst_ip = (subnet lsl 8) lor Prng.int rng ~bound:256 in
      let packets = flow_packets rng config in
      (* Throughput-ish durations: bigger flows last longer, capped so a
         flow stays within a few minutes. *)
      let duration_s = Float.min 180. (0.2 +. (float_of_int packets *. 0.01)) in
      f
        {
          start_s;
          duration_s;
          src_ip = Prng.int rng ~bound:config.n_servers;
          src_port = 1024 + Prng.int rng ~bound:64511;
          dst_ip;
          dst_port = 443;
          packets;
          bytes = packets * 1200;
        }
    done
  done

let generate rng config =
  let flows = ref [] in
  iter rng config (fun flow -> flows := flow :: !flows);
  List.sort (fun a b -> Float.compare a.start_s b.start_s) !flows
