(** Synthetic cloud-egress flow traces.

    Stands in for the production IPFIX feed of Section 2.1: a large
    provider's Internet-bound TCP flows.  Destination /24 subnets follow a
    Zipf popularity law (a handful of eyeball networks receive most
    traffic), flow sizes are heavy-tailed, and flow arrivals are Poisson
    per minute.  The generator produces flow records (not packets); the
    IPFIX sampler consumes these directly. *)

type flow = {
  start_s : float;
  duration_s : float;
  src_ip : int;
  src_port : int;
  dst_ip : int;
  dst_port : int;
  packets : int;
  bytes : int;
}

val dst_subnet : flow -> int
(** The /24 prefix of the destination (i.e. [dst_ip lsr 8]). *)

type config = {
  n_servers : int;  (** provider egress servers (source IPs) *)
  n_subnets : int;  (** distinct destination /24s *)
  zipf_alpha : float;  (** destination popularity skew *)
  flows_per_minute : float;  (** mean arrival rate *)
  horizon_minutes : int;
  mean_flow_packets : float;  (** Pareto-distributed sizes with this mean *)
}

val default_config : config
(** 4,669 servers (the paper's Netflix census), 10,000 subnets, alpha 1.1,
    60,000 flows/min over 10 minutes, mean 60 packets per flow — calibrated
    so the sampled path-sharing CCDF lands near the paper's 50 % / 12 %
    observation. *)

val generate : Phi_util.Prng.t -> config -> flow list
(** Flows ordered by start time. *)

val iter : Phi_util.Prng.t -> config -> (flow -> unit) -> unit
(** Streaming form of {!generate} for consumers too big to materialize
    (the million-flow swarm benchmark): flows are emitted in generation
    order — minute by minute, unsorted within a minute — without
    building a list.  Draws the same flows as {!generate} for the same
    PRNG state. *)
