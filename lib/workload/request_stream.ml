module Dist = Phi_util.Dist

type cell = { metro : string; isp : string; service : string }

let pp_cell ppf c = Format.fprintf ppf "%s/%s/%s" c.metro c.isp c.service

type scope = { metro : string option; isp : string option; service : string option }

let scope_matches (scope : scope) (cell : cell) =
  let ok field value = match field with None -> true | Some v -> String.equal v value in
  ok scope.metro cell.metro && ok scope.isp cell.isp && ok scope.service cell.service

let pp_scope ppf s =
  let part name = function None -> name ^ "=*" | Some v -> name ^ "=" ^ v in
  Format.fprintf ppf "%s %s %s" (part "metro" s.metro) (part "isp" s.isp)
    (part "service" s.service)

type outage = { start_min : int; duration_min : int; scope : scope; severity : float }

type config = {
  metros : string list;
  isps : string list;
  services : string list;
  base_rate_per_min : float;
  days : int;
}

let default_config =
  {
    metros = [ "seattle"; "london"; "mumbai"; "sydney"; "saopaulo" ];
    isps = [ "as7922"; "as3320"; "as9829"; "as4804" ];
    services = [ "voip"; "storage"; "video" ];
    base_rate_per_min = 6000.;
    days = 3;
  }

let minutes_per_day = 1440

(* Deterministic cell weight so the traffic mix does not depend on the
   noise seed: a mild geometric skew over each dimension's position. *)
let cell_weight ~metro_idx ~isp_idx ~service_idx =
  (0.6 ** float_of_int metro_idx)
  *. (0.7 ** float_of_int isp_idx)
  *. (0.8 ** float_of_int service_idx)

let diurnal minute_of_day =
  (* Peak in the "evening" of each cell's day; amplitude 60 % around 1. *)
  let phase = 2. *. Float.pi *. float_of_int minute_of_day /. float_of_int minutes_per_day in
  1. +. (0.6 *. sin (phase -. (Float.pi /. 2.)))

let outage_factor outages cell minute =
  List.fold_left
    (fun acc o ->
      if
        minute >= o.start_min
        && minute < o.start_min + o.duration_min
        && scope_matches o.scope cell
      then acc *. (1. -. o.severity)
      else acc)
    1. outages

let generate rng config ~outages =
  if config.days < 1 then invalid_arg "Request_stream.generate: days must be >= 1";
  List.iter
    (fun o ->
      if o.severity <= 0. || o.severity > 1. then
        invalid_arg "Request_stream.generate: outage severity out of (0, 1]")
    outages;
  let total_minutes = config.days * minutes_per_day in
  let indexed l = List.mapi (fun i x -> (i, x)) l in
  let cells =
    List.concat_map
      (fun (mi, metro) ->
        List.concat_map
          (fun (ii, isp) ->
            List.map
              (fun (si, service) ->
                ( ({ metro; isp; service } : cell),
                  cell_weight ~metro_idx:mi ~isp_idx:ii ~service_idx:si ))
              (indexed config.services))
          (indexed config.isps))
      (indexed config.metros)
  in
  let weight_sum = List.fold_left (fun acc (_, w) -> acc +. w) 0. cells in
  List.map
    (fun (cell, weight) ->
      let mean_rate = config.base_rate_per_min *. weight /. weight_sum in
      let series =
        Array.init total_minutes (fun minute ->
            let lambda =
              mean_rate
              *. diurnal (minute mod minutes_per_day)
              *. outage_factor outages cell minute
            in
            float_of_int (Dist.poisson rng ~lambda))
      in
      (cell, series))
    cells

let total_series cells =
  match cells with
  | [] -> [||]
  | (_, first) :: _ ->
    let acc = Array.make (Array.length first) 0. in
    List.iter (fun (_, series) -> Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) series) cells;
    acc

let sum_where cells scope =
  total_series (List.filter (fun (cell, _) -> scope_matches scope cell) cells)
