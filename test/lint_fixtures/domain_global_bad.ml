(* Nested, indented mutable state: shared across every worker domain.
   The old column-0 scan never looked inside submodules. *)

module Cache = struct
  module Inner = struct
    let table = Hashtbl.create 64
  end

  let hits = ref 0
end
