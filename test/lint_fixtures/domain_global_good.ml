(* Per-job state: minted inside the job function, nothing shared. *)
let fresh_cache () = Hashtbl.create 64

let run seeds =
  let acc = ref 0 in
  List.iter (fun s -> acc := !acc + s) seeds;
  !acc
