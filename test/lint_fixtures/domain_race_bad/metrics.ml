(* Nested, indented mutable global: the column-0 scan never saw it. *)
module Counters = struct
  let hits = ref 0
end

let bump () = incr Counters.hits
