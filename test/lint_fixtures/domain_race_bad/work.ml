(* Each job bumps a shared counter. *)
let step x =
  Metrics.bump ();
  x + 1
