(** Pool job fixture. *)

val step : int -> int
