(* Fans jobs across worker domains. *)
let launch xs = Pool.map xs Work.step
