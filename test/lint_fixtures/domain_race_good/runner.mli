(** Pool fan-out fixture. *)

val launch : int list -> int list
