(* Per-job accumulator: state lives and dies inside the job. *)
let step x =
  let acc = ref x in
  acc := !acc + x;
  !acc
