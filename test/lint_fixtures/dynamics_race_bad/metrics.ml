(* Nested, indented mutable global shared by every scenario cell. *)
module Counters = struct
  let flaps = ref 0
end

let bump () = incr Counters.flaps
