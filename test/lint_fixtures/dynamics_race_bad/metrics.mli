(** Shared metrics fixture. *)

val bump : unit -> unit
