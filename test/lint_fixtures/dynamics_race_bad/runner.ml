(* Dynamics-script callbacks run inside pool-fanned scenario cells. *)
let script engine = Dynamics.every engine (Work.step engine)
let kick engine = Dynamics.at engine (Work.step engine)
