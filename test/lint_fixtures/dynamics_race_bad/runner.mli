(** Dynamics script fan-out fixture. *)

val script : int -> unit
val kick : int -> unit
