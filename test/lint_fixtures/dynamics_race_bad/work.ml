(* Each scripted event tallies into a shared counter. *)
let step engine () =
  Metrics.bump ();
  ignore engine
