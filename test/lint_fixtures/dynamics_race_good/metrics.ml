(* Pure combiner: cell results merge after the pool joins. *)
let combine a b = a + b
