(** Pure combiner fixture. *)

val combine : int -> int -> int
