(* Per-cell accumulator: state lives and dies inside the cell. *)
let step engine () =
  let flaps = ref 0 in
  incr flaps;
  ignore (Metrics.combine engine !flaps)
