(** Scripted-event fixture. *)

val step : int -> unit -> unit
