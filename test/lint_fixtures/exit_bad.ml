(* Libraries must not terminate the process. *)
let abort () = exit 1
