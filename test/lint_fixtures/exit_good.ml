(* Raise instead; only binaries may exit. *)
exception Fatal

let abort () = raise Fatal
