(* Stringly-typed failure in library code. *)
let checked x = if x < 0 then failwith "negative" else x
