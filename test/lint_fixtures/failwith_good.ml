(* A typed precondition failure callers can match on. *)
let checked x = if x < 0 then invalid_arg "checked: negative" else x
