(* Exact equality against a float constant is a rounding trap. *)
let at_origin x = x = 0.
