(* Compare against an epsilon instead. *)
let at_origin x = Float.abs x < 1e-9
