(* Three lifetime bugs the same-line token scan cannot see: the
   release and the offending use are lines apart. *)

let use_after_release pool h =
  Packet.release pool h;
  Packet.seq pool h

let double_release pool flag h =
  if flag then Packet.release pool h;
  Packet.release pool h

let leak_on_path pool ~flow =
  let p = Packet.acquire_ack pool ~flow in
  ignore (Packet.seq pool p)
