(* The compliant shapes: release on every path, alias-aware releases,
   and ownership transfer to the sink. *)

let read_then_release pool h =
  let seq = Packet.seq pool h in
  Packet.release pool h;
  seq

let release_on_both_paths pool urgent h =
  if urgent then Packet.release pool h
  else Packet.release pool h

let transfer_to_sink sink pool ~flow =
  let p = Packet.acquire_ack pool ~flow in
  sink p
