(* Hashtbl.find raises Not_found on a miss. *)
let weight tbl key = Hashtbl.find tbl key
