(* find_opt makes the miss explicit. *)
let weight tbl key = Hashtbl.find_opt tbl key
