(* Two calls below the link loop, a closure is minted per packet. *)
let stage2 t =
  let scale = fun x -> x * t in
  scale 2

let stage1 t h = stage2 (t + h)
