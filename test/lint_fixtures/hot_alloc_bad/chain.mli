(** Pipeline stage fixture. *)

val stage1 : int -> int -> int
val stage2 : int -> int
