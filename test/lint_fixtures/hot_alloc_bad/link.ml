(* The per-packet transmit loop: Link.send is a hot entry point. *)
let send t h = Chain.stage1 t h
