(** Hot-path entry fixture. *)

val send : int -> int -> int
