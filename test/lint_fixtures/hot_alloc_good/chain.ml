(* The worker is hoisted to module level: nothing allocates per packet. *)
let double x = x * 2

let stage2 t = double t

let stage1 t h = stage2 (t + h)
