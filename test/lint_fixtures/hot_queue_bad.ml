(* One cons cell per element, on the per-packet path. *)
let pending = Queue.create ()
