(* Phi_sim.Ring is the flat hot-path container. *)
let pending = Ring.create 16
