(* Interpreted scans on the per-ack path: a whisker-list walk and a
   hashtable probe per call. *)
let on_ack table point = Rule_table.lookup table point
let pick policy ctx = Policy.choice_for policy ctx
