(* The compiled decision plane: flat-table lookups, lowered once at
   setup and shared by every connection. *)
let on_ack table point = Compiled_table.lookup table point
let pick policy ctx = Policy.Compiled.choice_for policy ctx
