(* List.nth is partial and O(n). *)
let third xs = List.nth xs 2
