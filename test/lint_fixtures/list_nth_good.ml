(* nth_opt is total; use an array if the index is hot. *)
let third xs = List.nth_opt xs 2
