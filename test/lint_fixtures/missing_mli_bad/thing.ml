let answer = 42
