let answer = 42
