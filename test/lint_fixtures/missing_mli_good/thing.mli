(** The answer, documented. *)

val answer : int
