val answer : int
