(** The documented answer. *)

val answer : int
