(* Reuses one buffer across types by erasing them. *)
let coerce x = Obj.magic x
