(* A typed wrapper keeps the representation honest. *)
type packed = Int of int | Str of string

let pack_int i = Int i
