(* A stored handle outlives its pool generation. *)
type t = { mutable last : Packet.handle }

let legacy () = Packet.ack ~flow:0
