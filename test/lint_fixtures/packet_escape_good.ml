(* Handles arrive as arguments and leave by transfer. *)
let forward pool sink h =
  ignore (Packet.seq pool h);
  sink h
