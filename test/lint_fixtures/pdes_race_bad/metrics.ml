(* Nested, indented mutable global shared by every island. *)
module Counters = struct
  let drained = ref 0
end

let bump () = incr Counters.drained
