(* Island window and drain bodies run on worker domains. *)
let wire cluster island = Pdes.on_drain island (Work.step cluster)
let advance cluster = Pdes.run cluster
