(** Pdes island fan-out fixture. *)

val wire : int -> int -> unit
val advance : int -> unit
