(* Each drain tallies into a shared counter. *)
let step cluster () =
  Metrics.bump ();
  ignore cluster
