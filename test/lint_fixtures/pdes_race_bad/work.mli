(** Island drain fixture. *)

val step : int -> unit -> unit
