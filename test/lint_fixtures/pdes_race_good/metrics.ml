(* Pure combiner: island results merge after the run joins. *)
let combine a b = a + b
