(* Per-island accumulator: state lives and dies inside the island. *)
let step cluster () =
  let drained = ref 0 in
  incr drained;
  ignore (Metrics.combine cluster !drained)
