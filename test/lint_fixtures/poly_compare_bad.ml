(* Polymorphic compare is unsound on NaN and float-carrying records. *)
let sort_weights ws = List.sort compare ws
