(* A monomorphic comparator pins the semantics. *)
let sort_weights ws = List.sort Float.compare ws
