(* Binding flows on the substrate bypasses the unified sender. *)
let attach node flow = Phi_net.Node.bind_flow node flow
