(* Flows go through the one transport: a Cc controller and a Source. *)
let attach engine node flow cc = Phi_tcp.Source.start ~engine ~node ~flow ~cc
