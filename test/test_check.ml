(* The CI report gate (Phi_check.Report_check): a well-formed /7 report
   passes, and injected regressions — swarm throughput below the floor,
   p99 over budget, allocation over budget, decision-plane speedup
   below the floor or lookups that box, pdes determinism or scaling
   broken, wan_matrix fairness/FCT out of range or serial-probe
   divergence — trip it.  This is the acceptance proof that the gate
   actually gates. *)

module J = Phi_util.Json
module Check = Phi_check.Report_check

let experiments =
  J.List [ J.Obj [ ("id", J.String "swarm"); ("wall_s", J.float 16.4); ("cells", J.Int 8) ] ]

let alloc ?(minor_words_per_packet = 0.0) () =
  J.Obj
    [
      ("minor_words_per_event", J.float 12.5);
      ("minor_words_per_packet", J.float minor_words_per_packet);
      ("pool_high_water", J.Int 64);
    ]

(* One cell per registered algorithm: /3+ requires full coverage. *)
let cc_matrix ?(drop_first_algorithm = false) () =
  let names =
    match Phi.Cc_algo.names with
    | _ :: rest when drop_first_algorithm -> rest
    | names -> names
  in
  J.List
    (List.map
       (fun name ->
         J.Obj
           [
             ("algorithm", J.String name);
             ("workload", J.String "paper");
             ("mean_power", J.float 1.0);
             ("connections", J.Int 8);
           ])
       names)

let swarm ?(lookups_per_s = 60_000.) ?(p99_lookup_s = 4e-6) ?(jain = 0.3) ?(lookups = 1_000_000)
    () =
  J.Obj
    [
      ("flows", J.Int 1_000_000);
      ("lookups", J.Int lookups);
      ("reports", J.Int 1_000_000);
      ("lookups_per_s", J.float lookups_per_s);
      ("reports_per_s", J.float lookups_per_s);
      ("p50_lookup_s", J.float 1e-6);
      ("p99_lookup_s", J.float p99_lookup_s);
      ("jain_index", J.float jain);
      ("resident_paths", J.Int 5231);
      ("evictions", J.Int 6034);
      ("flushes", J.Int 34719);
      ("fingerprint", J.String "flows=1000000 checksum=c074b375");
    ]

let decision ?(speedup = 150.) ?(minor_words_per_lookup = 0.0) () =
  J.Obj
    [
      ("whiskers", J.Int 512);
      ("cells", J.Int 4000);
      ("points", J.Int 10_000);
      ("interpreted_lookups_per_s", J.float 150_000.);
      ("compiled_lookups_per_s", J.float (150_000. *. speedup));
      ("speedup", J.float speedup);
      ("minor_words_per_lookup", J.float minor_words_per_lookup);
      ("policy_interpreted_choices_per_s", J.float 6_500_000.);
      ("policy_compiled_choices_per_s", J.float 24_000_000.);
      ("policy_speedup", J.float 3.7);
    ]

(* One point of the parking-lot scaling curve; identical fingerprints
   and event counts by default, as determinism demands. *)
let pdes_run ?(jobs = 1) ?(wall_s = 8.0) ?(events = 750_000)
    ?(fingerprint = "senders=1000 events=750000 boundary=50000 retx=900 checksum=757e1b62") () =
  J.Obj
    [
      ("jobs", J.Int jobs);
      ("wall_s", J.float wall_s);
      ("events", J.Int events);
      ("events_per_s", J.float (float_of_int events /. wall_s));
      ("fingerprint", J.String fingerprint);
    ]

let pdes ?(cores = 4)
    ?(runs = [ pdes_run (); pdes_run ~jobs:2 ~wall_s:4.2 (); pdes_run ~jobs:4 ~wall_s:2.3 () ])
    () =
  J.Obj
    [
      ("islands", J.Int 4);
      ("window_s", J.float 0.01);
      ("senders", J.Int 1000);
      ("duration_s", J.float 8.);
      ("cores", J.Int cores);
      ("jobs", J.Int 4);
      ("runs", J.List runs);
    ]

(* One cell of the topology-zoo evaluation matrix, physically sane by
   default. *)
let wan_cell ?(algorithm = "cubic") ?(topology = "wan") ?(dynamics = "flap")
    ?(throughput_bps = 3.7e6) ?(loss_rate = 0.02) ?(jain = 0.54) ?(p99_fct_s = 1.8)
    ?(connections = 54) () =
  J.Obj
    [
      ("algorithm", J.String algorithm);
      ("topology", J.String topology);
      ("dynamics", J.String dynamics);
      ("aqm", J.String "droptail");
      ("throughput_bps", J.float throughput_bps);
      ("delay_s", J.float 0.138);
      ("queueing_delay_s", J.float 0.018);
      ("loss_rate", J.float loss_rate);
      ("power", J.float 26.3);
      ("jain", J.float jain);
      ("p99_fct_s", J.float p99_fct_s);
      ("connections", J.Int connections);
    ]

let wan_matrix ?(duration_s = 6.) ?(cells = [ wan_cell () ])
    ?(serial = "0x1.c4fp+21;0x1.1aap-3;0x1.169p-1;0x1.c89p+0;0x1.a3fp+4;54")
    ?probe_parallel () =
  let parallel = match probe_parallel with Some p -> p | None -> serial in
  J.Obj
    [
      ("duration_s", J.float duration_s);
      ("seeds", J.Int 1);
      ("jobs", J.Int 4);
      ("aqm", J.String "droptail");
      ("cells", J.List cells);
      ( "determinism",
        J.Obj
          [
            ("cell", J.String "cubic/wan/flap");
            ("parallel", J.String parallel);
            ("serial", J.String serial);
          ] );
    ]

let report ?(schema = "phi-bench-report/5") ?(swarm_section = Some (swarm ()))
    ?(alloc_section = Some (alloc ())) ?(cc_section = Some (cc_matrix ()))
    ?(decision_section = Some (decision ())) ?(pdes_section = None) ?(wan_section = None) () =
  let optional name = function Some v -> [ (name, v) ] | None -> [] in
  J.Obj
    ([
       ("schema", J.String schema);
       ("budget", J.String "quick (4-point grid, 2 seeds, 45 s runs)");
       ("jobs", J.Int 4);
       ("cores", J.Int 4);
       ("experiments", experiments);
       ("headline", J.Obj []);
     ]
    @ optional "alloc" alloc_section
    @ optional "cc_matrix" cc_section
    @ optional "swarm" swarm_section
    @ optional "decision" decision_section
    @ optional "pdes" pdes_section
    @ optional "wan_matrix" wan_section)

let check doc = Check.check ~path:"report.json" doc

let expect_pass what doc =
  match check doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s should pass the gate but failed: %s" what msg

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let expect_fail what ~mentioning doc =
  match check doc with
  | Ok () -> Alcotest.failf "%s should trip the gate but passed" what
  | Error msg ->
    if not (contains ~needle:mentioning msg) then
      Alcotest.failf "%s tripped the gate but for the wrong reason: %s" what msg

let test_valid_reports_pass () =
  expect_pass "a full /7 report"
    (report ~schema:"phi-bench-report/7" ~pdes_section:(Some (pdes ()))
       ~wan_section:(Some (wan_matrix ())) ());
  expect_pass "a full /6 report"
    (report ~schema:"phi-bench-report/6" ~pdes_section:(Some (pdes ())) ());
  expect_pass "a full /5 report" (report ());
  expect_pass "a /4 report without a decision section"
    (report ~schema:"phi-bench-report/4" ~decision_section:None ());
  expect_pass "a /3 report without a swarm section"
    (report ~schema:"phi-bench-report/3" ~swarm_section:None ~decision_section:None ());
  expect_pass "a /2 report"
    (report ~schema:"phi-bench-report/2" ~swarm_section:None ~cc_section:None
       ~decision_section:None ());
  expect_pass "a bare /1 report"
    (report ~schema:"phi-bench-report/1" ~swarm_section:None ~cc_section:None
       ~alloc_section:None ~decision_section:None ())

let test_swarm_throughput_gate () =
  (* An order-of-magnitude slowdown must fail CI. *)
  expect_fail "lookups/s below the committed floor" ~mentioning:"below the committed floor"
    (report ~swarm_section:(Some (swarm ~lookups_per_s:6_000. ())) ());
  (* The floor applies whenever the section is present, whatever the
     schema version — a /1 --only swarm smoke is gated too. *)
  expect_fail "a /1 report with a slow swarm section" ~mentioning:"below the committed floor"
    (report ~schema:"phi-bench-report/1" ~cc_section:None ~alloc_section:None
       ~swarm_section:(Some (swarm ~lookups_per_s:6_000. ())) ())

let test_swarm_latency_gate () =
  expect_fail "p99 over the latency budget" ~mentioning:"exceeds the budget"
    (report ~swarm_section:(Some (swarm ~p99_lookup_s:0.25 ())) ())

let test_swarm_structure_gate () =
  expect_fail "/4 without a swarm section" ~mentioning:"requires a \"swarm\" section"
    (report ~swarm_section:None ());
  expect_fail "collapsed shard balance" ~mentioning:"shard balance collapsed"
    (report ~swarm_section:(Some (swarm ~jain:0.01 ())) ());
  expect_fail "broken flow accounting" ~mentioning:"flow accounting"
    (report ~swarm_section:(Some (swarm ~lookups:999_999 ())) ())

let test_alloc_gate () =
  expect_fail "allocation regression" ~mentioning:"allocation regression"
    (report ~alloc_section:(Some (alloc ~minor_words_per_packet:3.2 ())) ())

let test_cc_matrix_gate () =
  expect_fail "cc_matrix missing a registered algorithm" ~mentioning:"does not cover"
    (report ~cc_section:(Some (cc_matrix ~drop_first_algorithm:true ())) ())

let test_decision_speedup_gate () =
  (* The flat table degenerating back into a scan must fail CI. *)
  expect_fail "speedup below the committed floor" ~mentioning:"only 4.0x"
    (report ~decision_section:(Some (decision ~speedup:4. ())) ());
  (* The floor applies whenever the section is present, whatever the
     schema version. *)
  expect_fail "a /2 report with a slow decision section" ~mentioning:"only 4.0x"
    (report ~schema:"phi-bench-report/2" ~swarm_section:None ~cc_section:None
       ~decision_section:(Some (decision ~speedup:4. ()))
       ())

let test_decision_alloc_gate () =
  (* One boxed float on the lookup path is 2 words/lookup — far over. *)
  expect_fail "lookups that box" ~mentioning:"minor words/lookup exceeds"
    (report ~decision_section:(Some (decision ~minor_words_per_lookup:2.0 ())) ())

let test_decision_structure_gate () =
  expect_fail "/5 without a decision section" ~mentioning:"requires a \"decision\" section"
    (report ~decision_section:None ())

let full_6 ?cores ?runs () =
  report ~schema:"phi-bench-report/6" ~pdes_section:(Some (pdes ?cores ?runs ())) ()

let test_pdes_determinism_gate () =
  (* A jobs-dependent fingerprint means the partitioned engine is not
     replaying the serial schedule — the whole contract. *)
  expect_fail "fingerprint divergence" ~mentioning:"determinism broken"
    (full_6
       ~runs:[ pdes_run (); pdes_run ~jobs:2 ~fingerprint:"checksum=deadbeef" () ]
       ());
  expect_fail "event count divergence" ~mentioning:"determinism broken"
    (full_6 ~runs:[ pdes_run (); pdes_run ~jobs:2 ~events:749_999 () ] ());
  (* The gate applies whenever the section is present, whatever the
     schema version. *)
  expect_fail "a /5 report with a diverging pdes section" ~mentioning:"determinism broken"
    (report
       ~pdes_section:
         (Some (pdes ~runs:[ pdes_run (); pdes_run ~jobs:2 ~fingerprint:"x" () ] ()))
       ())

let test_pdes_scaling_gate () =
  (* 1.38x at 4 domains on a 4-core box is a scaling regression... *)
  expect_fail "speedup below the committed floor" ~mentioning:"scaling regression"
    (full_6 ~runs:[ pdes_run (); pdes_run ~jobs:4 ~wall_s:5.8 () ] ());
  (* ...but the same curve on a 1-core box is unmeasurable, and a curve
     with no >= 4-domain run has nothing to hold to the floor. *)
  expect_pass "slow scaling on a 1-core box"
    (full_6 ~cores:1 ~runs:[ pdes_run (); pdes_run ~jobs:4 ~wall_s:5.8 () ] ());
  expect_pass "no 4-domain run recorded"
    (full_6 ~runs:[ pdes_run (); pdes_run ~jobs:2 ~wall_s:4.4 () ] ())

let test_pdes_structure_gate () =
  expect_fail "/6 without a pdes section" ~mentioning:"requires a \"pdes\" section"
    (report ~schema:"phi-bench-report/6" ());
  expect_fail "empty runs array" ~mentioning:"non-empty \"runs\""
    (full_6 ~runs:[] ());
  expect_fail "run without a fingerprint" ~mentioning:"fingerprint"
    (full_6 ~runs:[ pdes_run ~fingerprint:"" () ] ())

let test_wan_matrix_sanity_gate () =
  (* Jain is a mean of ratios in (0, 1]; anything outside means the
     per-source byte accounting broke. *)
  expect_fail "jain over 1" ~mentioning:"\"jain\" must be in (0, 1]"
    (report ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~jain:1.2 () ] ())) ());
  expect_fail "jain of 0" ~mentioning:"\"jain\" must be in (0, 1]"
    (report ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~jain:0. () ] ())) ());
  (* FCTs are measured inside the run, so p99 past the cell duration is
     a bookkeeping bug, not a slow network. *)
  expect_fail "p99 FCT past the cell duration" ~mentioning:"outside (0, 6]"
    (report ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~p99_fct_s:7.5 () ] ())) ());
  expect_fail "cell with no completed connections" ~mentioning:"positive \"connections\""
    (report ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~connections:0 () ] ())) ());
  expect_fail "loss rate over 1" ~mentioning:"\"loss_rate\" must be in [0, 1]"
    (report ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~loss_rate:1.5 () ] ())) ());
  (* The gate applies whenever the section is present, whatever the
     schema version — the --quick --only wan_matrix smoke is gated
     too. *)
  expect_fail "a /1 report with an unfair wan_matrix cell" ~mentioning:"(0, 1]"
    (report ~schema:"phi-bench-report/1" ~swarm_section:None ~cc_section:None
       ~alloc_section:None ~decision_section:None
       ~wan_section:(Some (wan_matrix ~cells:[ wan_cell ~jain:1.2 () ] ()))
       ())

let test_wan_matrix_determinism_gate () =
  (* A pool-fanned cell that disagrees with its serial replay means the
     matrix is jobs-dependent — the contract run_matrix promises. *)
  expect_fail "serial probe divergence" ~mentioning:"determinism broken"
    (report ~wan_section:(Some (wan_matrix ~probe_parallel:"0x1.deadbeefp+0;54" ())) ())

let test_wan_matrix_structure_gate () =
  expect_fail "/7 without a wan_matrix section" ~mentioning:"requires a \"wan_matrix\" section"
    (report ~schema:"phi-bench-report/7" ~pdes_section:(Some (pdes ())) ());
  expect_fail "empty cells array" ~mentioning:"non-empty \"cells\""
    (report ~wan_section:(Some (wan_matrix ~cells:[] ())) ());
  expect_fail "missing determinism probe" ~mentioning:"\"determinism\" probe"
    (report
       ~wan_section:
         (Some (J.Obj [ ("duration_s", J.float 6.); ("cells", J.List [ wan_cell () ]) ]))
       ())

let test_schema_gate () =
  expect_fail "unknown schema" ~mentioning:"unknown \"schema\""
    (report ~schema:"phi-bench-report/99" ())

let suite =
  [
    Alcotest.test_case "well-formed reports pass" `Quick test_valid_reports_pass;
    Alcotest.test_case "swarm throughput floor trips" `Quick test_swarm_throughput_gate;
    Alcotest.test_case "swarm p99 budget trips" `Quick test_swarm_latency_gate;
    Alcotest.test_case "swarm structure is enforced" `Quick test_swarm_structure_gate;
    Alcotest.test_case "allocation budget trips" `Quick test_alloc_gate;
    Alcotest.test_case "cc_matrix coverage is enforced" `Quick test_cc_matrix_gate;
    Alcotest.test_case "decision speedup floor trips" `Quick test_decision_speedup_gate;
    Alcotest.test_case "decision allocation budget trips" `Quick test_decision_alloc_gate;
    Alcotest.test_case "decision structure is enforced" `Quick test_decision_structure_gate;
    Alcotest.test_case "pdes determinism gate trips" `Quick test_pdes_determinism_gate;
    Alcotest.test_case "pdes scaling floor trips" `Quick test_pdes_scaling_gate;
    Alcotest.test_case "pdes structure is enforced" `Quick test_pdes_structure_gate;
    Alcotest.test_case "wan_matrix sanity gates trip" `Quick test_wan_matrix_sanity_gate;
    Alcotest.test_case "wan_matrix determinism gate trips" `Quick test_wan_matrix_determinism_gate;
    Alcotest.test_case "wan_matrix structure is enforced" `Quick test_wan_matrix_structure_gate;
    Alcotest.test_case "unknown schemas are rejected" `Quick test_schema_gate;
  ]
