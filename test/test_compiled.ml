(* The compiled decision plane (Phi_remy.Compiled_table,
   Phi.Policy.Compiled) against its interpreted reference: lookup
   equivalence on random tables and random points (qcheck), on cut-plane
   boundary points, and on every pretrained table; physically identical
   policy choices; generation stamping and staleness detection; exact
   float-for-float action application. *)

module Whisker = Phi_remy.Whisker
module Rule_table = Phi_remy.Rule_table
module Compiled_table = Phi_remy.Compiled_table
module Memory = Phi_remy.Memory
module Context = Phi.Context
module Policy = Phi.Policy
module Cc_algo = Phi.Cc_algo
module Prng = Phi_util.Prng

(* {2 Random tables}

   A deterministic mutation walk from one seed: random splits (full and
   single-axis) interleaved with random action rewrites — the same
   operation mix training performs, so the compiled grid sees realistic
   uneven partitions. *)

let random_action rng =
  {
    Whisker.window_increment = Prng.float_range rng ~lo:(-12.) ~hi:35.;
    Whisker.window_multiple = Prng.float_range rng ~lo:0.05 ~hi:2.3;
    Whisker.intersend_s = Prng.float_range rng ~lo:0.0001 ~hi:0.6;
  }

let random_table ~seed ~dims ~splits =
  let rng = Prng.create ~seed in
  let table = Rule_table.create ~dims Whisker.default_action in
  for _ = 1 to splits do
    let ws = Array.of_list (Rule_table.whiskers table) in
    let w = Prng.choose rng ws in
    if Prng.bool rng then Rule_table.split_axis table w ~axis:(Prng.int rng ~bound:dims)
    else Rule_table.split table w;
    let ws = Array.of_list (Rule_table.whiskers table) in
    Rule_table.set_action table (Prng.choose rng ws) (random_action rng)
  done;
  table

let random_point rng dims = Array.init dims (fun _ -> Prng.float rng)

let check_point ?(msg = "compiled = interpreted") table compiled point =
  Alcotest.(check int) msg
    (Rule_table.lookup_index table point)
    (Compiled_table.lookup_point compiled point)

(* {2 qcheck equivalence on random tables and points} *)

let prop_equivalence =
  QCheck.Test.make ~name:"compiled lookup = interpreted lookup" ~count:60
    QCheck.(triple (int_range 0 10_000) (int_range 3 4) (int_range 0 6))
    (fun (seed, dims, splits) ->
      let table = random_table ~seed ~dims ~splits in
      let compiled = Compiled_table.compile table in
      let rng = Prng.create ~seed:(seed + 1) in
      let ok = ref true in
      for _ = 1 to 50 do
        let p = random_point rng dims in
        if Rule_table.lookup_index table p <> Compiled_table.lookup_point compiled p then
          ok := false
      done;
      !ok)

(* {2 Boundary points: cut planes resolve identically}

   The half-open box contract says a point sitting exactly on a cut
   belongs to the interval the cut opens — the compiled binary search
   must agree with the interpreted containment scan on every whisker
   face, including the inclusive x = 1 upper face. *)

let boundary_values table axis =
  List.sort_uniq Float.compare
    (List.concat_map
       (fun w -> [ w.Whisker.box.Whisker.lo.(axis); w.Whisker.box.Whisker.hi.(axis) ])
       (Rule_table.whiskers table))

let test_boundary_points () =
  List.iter
    (fun (seed, dims, splits) ->
      let table = random_table ~seed ~dims ~splits in
      let compiled = Compiled_table.compile table in
      let rng = Prng.create ~seed:(seed + 2) in
      for axis = 0 to dims - 1 do
        List.iter
          (fun v ->
            (* The boundary coordinate on [axis], the rest random — and
               the all-boundary corner point. *)
            let p = random_point rng dims in
            p.(axis) <- v;
            check_point ~msg:"cut plane" table compiled p;
            let corner = Array.init dims (fun a -> if a = axis then v else 0.5) in
            check_point ~msg:"cut corner" table compiled corner)
          (boundary_values table axis)
      done)
    [ (3, 3, 5); (17, 4, 5); (23, 4, 6) ]

let test_unit_corners () =
  let table = random_table ~seed:7 ~dims:4 ~splits:6 in
  let compiled = Compiled_table.compile table in
  for mask = 0 to 15 do
    let p = Array.init 4 (fun a -> if mask land (1 lsl a) <> 0 then 1. else 0.) in
    check_point ~msg:"unit corner" table compiled p
  done

(* {2 Every pretrained table} *)

let test_pretrained_equivalence () =
  List.iter
    (fun (name, table) ->
      let compiled = Compiled_table.compile table in
      Alcotest.(check int)
        (name ^ " sizes agree")
        (Rule_table.size table) (Compiled_table.size compiled);
      let dims = Rule_table.dims table in
      let rng = Prng.create ~seed:42 in
      for _ = 1 to 500 do
        check_point ~msg:(name ^ " random point") table compiled (random_point rng dims)
      done;
      for axis = 0 to dims - 1 do
        List.iter
          (fun v ->
            let p = random_point rng dims in
            p.(axis) <- v;
            check_point ~msg:(name ^ " cut plane") table compiled p)
          (boundary_values table axis)
      done)
    [ ("remy", Phi_remy.Pretrained.remy ()); ("remy-phi", Phi_remy.Pretrained.remy_phi ()) ]

(* {2 Actions replay the exact float operations} *)

let test_apply_exact () =
  let table = random_table ~seed:9 ~dims:3 ~splits:6 in
  let compiled = Compiled_table.compile table in
  let whiskers = Array.of_list (Rule_table.whiskers table) in
  let rng = Prng.create ~seed:10 in
  for _ = 1 to 200 do
    let i = Prng.int rng ~bound:(Array.length whiskers) in
    let a = whiskers.(i).Whisker.action in
    let cwnd = Prng.float_range rng ~lo:1. ~hi:1500. in
    (* Bit-for-bit equality: the compiled apply must be the same float
       expression as Whisker.apply, or golden %h replays diverge. *)
    Alcotest.(check bool) "apply bit-identical" true
      (Int64.equal
         (Int64.bits_of_float (Whisker.apply a ~cwnd))
         (Int64.bits_of_float (Compiled_table.apply compiled i ~cwnd)));
    Alcotest.(check bool) "intersend bit-identical" true
      (Int64.equal
         (Int64.bits_of_float a.Whisker.intersend_s)
         (Int64.bits_of_float (Compiled_table.intersend_s compiled i)))
  done

(* {2 Memory scratch writes match the boxed projection} *)

let test_write_point_matches_to_point () =
  let m = Memory.create () in
  Memory.on_ack m ~now:1.0 ~echo_sent_at:0.87;
  Memory.on_ack m ~now:1.13 ~echo_sent_at:0.99;
  Memory.set_utilization m 0.62;
  List.iter
    (fun dims ->
      let boxed = Memory.to_point m ~dims in
      let scratch = Float.Array.make dims nan in
      Memory.write_point m ~dims scratch;
      for i = 0 to dims - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "coordinate %d identical" i)
          true
          (Int64.equal
             (Int64.bits_of_float boxed.(i))
             (Int64.bits_of_float (Float.Array.get scratch i)))
      done)
    [ Memory.dims_remy; Memory.dims_phi ]

(* {2 Staleness: generation stamping} *)

let test_staleness () =
  let table = random_table ~seed:4 ~dims:3 ~splits:3 in
  let compiled = Compiled_table.compile table in
  Alcotest.(check bool) "fresh after compile" true (Compiled_table.is_fresh compiled table);
  Alcotest.(check int) "generation stamped" (Rule_table.generation table)
    (Compiled_table.generation compiled);
  let w = List.hd (Rule_table.whiskers table) in
  Rule_table.set_action table w (random_action (Prng.create ~seed:5));
  Alcotest.(check bool) "stale after set_action" false
    (Compiled_table.is_fresh compiled table);
  let recompiled = Compiled_table.compile table in
  Alcotest.(check bool) "fresh after recompile" true
    (Compiled_table.is_fresh recompiled table);
  Rule_table.split table (List.hd (Rule_table.whiskers table));
  Alcotest.(check bool) "stale after split" false (Compiled_table.is_fresh recompiled table);
  (* Physical identity is part of freshness: a deep copy at the same
     generation is still a different table. *)
  let again = Compiled_table.compile table in
  Alcotest.(check bool) "other table is never fresh" false
    (Compiled_table.is_fresh again (Rule_table.copy table))

(* {2 Policy: compiled choices are physically the interpreted ones} *)

let swarm_entries =
  let bucket u n q = { Context.u_bucket = u; Context.n_bucket = n; Context.q_bucket = q } in
  [
    (bucket 0 0 0, Cc_algo.Remy);
    (bucket 0 1 0, Cc_algo.Remy_phi);
    (bucket 1 2 1, Cc_algo.Vegas);
    (bucket 2 3 1, Cc_algo.Reno 1.4);
    (bucket 3 3 2, Cc_algo.Cubic Phi_tcp.Cubic.default_params);
  ]

let learned_policy () =
  let policy = Policy.create () in
  List.iter (fun (b, a) -> Policy.learn policy b a) swarm_entries;
  policy

let random_context rng =
  {
    Context.utilization = Prng.float rng;
    Context.queue_delay_s = Prng.float_range rng ~lo:0. ~hi:0.4;
    Context.competing_senders = Prng.int rng ~bound:80;
    Context.loss_rate = Prng.float_range rng ~lo:0. ~hi:0.08;
  }

let test_policy_compiled_identical () =
  let policy = learned_policy () in
  let compiled = Policy.Compiled.compile policy in
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 2_000 do
    let ctx = random_context rng in
    Alcotest.(check bool) "physically the same choice" true
      (Policy.choice_for policy ctx == Policy.Compiled.choice_for compiled ctx)
  done;
  (* Every packed bucket code, via its bucket's representative context:
     full coverage of the 64-entry array including heuristic holes. *)
  for code = 0 to Context.bucket_codes - 1 do
    let b = Context.bucket_of_code code in
    Alcotest.(check int) "pack round-trips" code (Context.pack_bucket b)
  done

let test_policy_staleness () =
  let policy = learned_policy () in
  let compiled = Policy.Compiled.compile policy in
  Alcotest.(check bool) "fresh after compile" true (Policy.Compiled.is_fresh compiled policy);
  Policy.learn policy
    { Context.u_bucket = 1; Context.n_bucket = 1; Context.q_bucket = 1 }
    Cc_algo.Vegas;
  Alcotest.(check bool) "stale after learn" false (Policy.Compiled.is_fresh compiled policy);
  let recompiled = Policy.Compiled.compile policy in
  Alcotest.(check bool) "fresh after recompile" true
    (Policy.Compiled.is_fresh recompiled policy);
  Alcotest.(check bool) "other policy is never fresh" false
    (Policy.Compiled.is_fresh recompiled (Policy.create ()))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_equivalence;
    Alcotest.test_case "cut-plane boundary points" `Quick test_boundary_points;
    Alcotest.test_case "unit-cube corners" `Quick test_unit_corners;
    Alcotest.test_case "pretrained tables equivalent" `Quick test_pretrained_equivalence;
    Alcotest.test_case "apply is bit-identical" `Quick test_apply_exact;
    Alcotest.test_case "write_point matches to_point" `Quick test_write_point_matches_to_point;
    Alcotest.test_case "compiled table staleness" `Quick test_staleness;
    Alcotest.test_case "policy choices physically identical" `Quick
      test_policy_compiled_identical;
    Alcotest.test_case "compiled policy staleness" `Quick test_policy_staleness;
  ]
