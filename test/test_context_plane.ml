(* The sharded, epoch-batched context plane: sharding transparency
   against a single-shard reference, the lookup-no-persist regression,
   bounded staleness, decay/LRU eviction, and the wire dispatch path. *)

module Engine = Phi_sim.Engine
module Server = Phi.Context_server
module Wire = Phi.Context_wire
module Context = Phi.Context

let feq = Float.equal

(* {2 Lookups on unknown prefixes must not allocate persistent state}

   The pre-sharding server lazily created [path_state] on lookup, so a
   scan over never-reported prefixes grew the table forever. *)
let test_lookup_does_not_persist () =
  let engine = Engine.create () in
  let server = Server.create engine ~capacity_bps:1e9 ~epoch_s:1. ~shards:4 ~ttl_epochs:2 () in
  for i = 1 to 100 do
    ignore (Server.lookup server ~path:(Printf.sprintf "scan-%d" i))
  done;
  Alcotest.(check int) "nothing committed" 0 (Server.resident_paths server);
  Alcotest.(check bool) "scan is pending" true (Server.pending_paths server > 0);
  Engine.run ~until:2. engine;
  Server.flush server;
  (* Never committed; pending only until the scan outlives the ttl. *)
  Alcotest.(check int) "nothing committed by the flush" 0 (Server.resident_paths server);
  Engine.run ~until:10. engine;
  Server.flush server;
  Alcotest.(check int) "still nothing committed" 0 (Server.resident_paths server);
  Alcotest.(check int) "scan decayed out of pending" 0 (Server.pending_paths server);
  (* A prefix that reports does survive. *)
  ignore (Server.lookup server ~path:"real");
  Server.report server ~path:"real" ~bytes:10_000 ~duration_s:1. ~min_rtt:0.01
    ~mean_rtt:0.02 ~retransmitted:0 ~segments:10;
  Engine.run ~until:12. engine;
  Server.flush server;
  Alcotest.(check int) "reported prefix committed" 1 (Server.resident_paths server)

(* {2 Sharding transparency}

   The same operation stream must produce the same per-prefix answers
   whatever the shard count: shards change who shares a flush schedule,
   never what a path's state is.  The reference is the 1-shard server. *)

let paths = [| "pfx-a"; "pfx-b"; "pfx-c"; "pfx-d"; "pfx-e"; "pfx-f" |]

let context_equal (a : Context.t) (b : Context.t) =
  feq a.Context.utilization b.Context.utilization
  && feq a.Context.queue_delay_s b.Context.queue_delay_s
  && a.Context.competing_senders = b.Context.competing_senders
  && feq a.Context.loss_rate b.Context.loss_rate

(* Ops: 0-1 lookup (fresh / stale), 2 report, 3 advance the clock. *)
let apply_stream ~shards ops =
  let engine = Engine.create () in
  let server = Server.create engine ~epoch_s:1. ~window_s:5. ~shards () in
  let outstanding = Array.make (Array.length paths) 0 in
  List.iter
    (fun (p, kind) ->
      let path = paths.(p) in
      match kind with
      | 0 -> ignore (Server.lookup server ~path); outstanding.(p) <- outstanding.(p) + 1
      | 1 ->
        ignore (Server.lookup server ~max_staleness:2 ~path);
        outstanding.(p) <- outstanding.(p) + 1
      | 2 ->
        (* Only close a connection some lookup opened, so active counts
           stay meaningful. *)
        if outstanding.(p) > 0 then begin
          outstanding.(p) <- outstanding.(p) - 1;
          Server.report server ~path ~bytes:((p + 1) * 40_000) ~duration_s:1.5
            ~min_rtt:0.01
            ~mean_rtt:(0.01 +. (0.001 *. float_of_int (p + 1)))
            ~retransmitted:(p mod 2) ~segments:40
        end
      | _ -> Engine.run ~until:(Engine.now engine +. 0.7) engine)
    ops;
  (* Quiesce at an epoch boundary and read every path's answer. *)
  Engine.run ~until:(Float.of_int (int_of_float (Engine.now engine) + 1)) engine;
  Server.flush server;
  ( Array.map (fun path -> Server.peek server ~path) paths,
    Array.map (fun path -> Server.active_connections server ~path) paths,
    Array.map (fun path -> Server.learned_capacity_bps server ~path) paths )

let prop_sharded_matches_reference =
  QCheck.Test.make
    ~name:"sharded server matches 1-shard reference on any op stream" ~count:120
    QCheck.(
      pair (int_range 2 7)
        (list_of_size Gen.(int_range 0 120) (pair (int_bound 5) (int_bound 3))))
    (fun (shards, ops) ->
      let ctx1, act1, cap1 = apply_stream ~shards:1 ops in
      let ctxn, actn, capn = apply_stream ~shards ops in
      let cap_eq = function
        | Some a, Some b -> feq a b
        | None, None -> true
        | Some _, None | None, Some _ -> false
      in
      let ok = ref true in
      Array.iteri
        (fun i c1 ->
          ok :=
            !ok && context_equal c1 ctxn.(i) && act1.(i) = actn.(i)
            && cap_eq (cap1.(i), capn.(i)))
        ctx1;
      !ok)

(* {2 Bounded staleness} *)

let test_staleness_bounds () =
  let engine = Engine.create () in
  let server = Server.create engine ~capacity_bps:1e6 ~epoch_s:1. () in
  ignore (Server.lookup server ~path:"p");
  Engine.run ~until:0.5 engine;
  Server.report server ~path:"p" ~bytes:125_000 ~duration_s:0.5 ~min_rtt:0.01
    ~mean_rtt:0.05 ~retransmitted:0 ~segments:100;
  Engine.run ~until:1.2 engine;
  (* Within the staleness budget: served from the committed snapshot,
     which predates the report. *)
  let ctx, epoch = Server.lookup_epoch ~max_staleness:3 server ~path:"p" in
  Alcotest.(check int) "answered from epoch 0" 0 epoch;
  Alcotest.(check (float 0.)) "stale answer predates report" 0. ctx.Context.utilization;
  (* A fresh lookup sees the pending report and commits the epoch. *)
  let ctx, epoch = Server.lookup_epoch ~max_staleness:0 server ~path:"p" in
  Alcotest.(check int) "fresh answer at current epoch" 1 epoch;
  Alcotest.(check bool) "fresh answer sees report" true (ctx.Context.utilization > 0.);
  (* Staleness-tolerant lookups now ride the committed snapshot. *)
  let ctx, epoch = Server.lookup_epoch ~max_staleness:3 server ~path:"p" in
  Alcotest.(check int) "committed epoch" 1 epoch;
  Alcotest.(check bool) "committed answer has the report" true (ctx.Context.utilization > 0.);
  (* Beyond the budget the shard must recommit first. *)
  Engine.run ~until:10. engine;
  let _, epoch = Server.lookup_epoch ~max_staleness:3 server ~path:"p" in
  Alcotest.(check int) "stale snapshot refreshed" 10 epoch

(* {2 Decay and LRU eviction} *)

let test_eviction () =
  let engine = Engine.create () in
  let server =
    Server.create engine ~capacity_bps:1e9 ~epoch_s:1. ~shards:1 ~max_paths_per_shard:4
      ~ttl_epochs:2 ()
  in
  Server.set_oracle server ~path:"pinned" (fun () -> 0.5);
  let names = [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ] in
  List.iter
    (fun path ->
      ignore (Server.lookup server ~path);
      Server.report server ~path ~bytes:1000 ~duration_s:0.5 ~min_rtt:0.01 ~mean_rtt:0.02
        ~retransmitted:0 ~segments:1)
    names;
  Engine.run ~until:1. engine;
  Server.flush server;
  (* Capacity eviction: 9 resident, budget 4 — the overflow goes, the
     oracle-pinned path is exempt. *)
  Alcotest.(check int) "trimmed to budget" 4 (Server.resident_paths server);
  Alcotest.(check int) "evictions counted" 5 (Server.eviction_count server);
  Alcotest.(check bool) "flushes counted" true (Server.flush_count server > 0);
  (* TTL decay: every unpinned path idles past the ttl. *)
  Engine.run ~until:10. engine;
  Server.flush server;
  Alcotest.(check int) "only the pinned path survives" 1 (Server.resident_paths server);
  Alcotest.(check (float 1e-9)) "pinned oracle still answers" 0.5
    (Server.peek server ~path:"pinned").Context.utilization

(* {2 Wire dispatch} *)

let test_handle_matches_direct_api () =
  let mk () =
    let engine = Engine.create () in
    (engine, Server.create engine ~capacity_bps:1e6 ~epoch_s:1. ~shards:4 ())
  in
  let engine_a, via_wire = mk () in
  let engine_b, direct = mk () in
  let drive engine server f =
    ignore (f server "p" `Lookup);
    Engine.run ~until:0.5 engine;
    ignore (f server "p" `Report);
    Engine.run ~until:1.5 engine;
    f server "p" `Lookup
  in
  let wire_step server path op =
    let req =
      match op with
      | `Lookup -> Wire.Lookup { path; max_staleness = 0 }
      | `Report ->
        Wire.Report
          {
            path;
            bytes = 62_500;
            duration_s = 0.5;
            min_rtt = 0.01;
            mean_rtt = 0.03;
            retransmitted = 1;
            segments = 50;
          }
    in
    (* Full trip: encode, decode, serve, encode the response, decode. *)
    match Wire.decode_request (Wire.request_to_string req) with
    | Error e -> Alcotest.fail e
    | Ok req -> (
      match Wire.decode_response (Wire.response_to_string (Server.handle server req)) with
      | Error e -> Alcotest.fail e
      | Ok (Wire.Context_of { ctx; _ }) -> Some ctx
      | Ok (Wire.Accepted _) -> None)
  in
  let direct_step server path op =
    match op with
    | `Lookup -> Some (Server.lookup server ~path)
    | `Report ->
      Server.report server ~path ~bytes:62_500 ~duration_s:0.5 ~min_rtt:0.01 ~mean_rtt:0.03
        ~retransmitted:1 ~segments:50;
      None
  in
  match (drive engine_a via_wire wire_step, drive engine_b direct direct_step) with
  | Some a, Some b ->
    Alcotest.(check bool) "wire dispatch serves the same context" true (context_equal a b);
    Alcotest.(check bool) "report moved utilization" true (a.Context.utilization > 0.)
  | _ -> Alcotest.fail "lookup did not answer with a context"

let suite =
  [
    Alcotest.test_case "lookups never persist unknown prefixes" `Quick
      test_lookup_does_not_persist;
    QCheck_alcotest.to_alcotest prop_sharded_matches_reference;
    Alcotest.test_case "bounded staleness honours its budget" `Quick test_staleness_bounds;
    Alcotest.test_case "ttl + lru eviction, oracle pinned" `Quick test_eviction;
    Alcotest.test_case "wire handle matches the direct api" `Quick
      test_handle_matches_direct_api;
  ]
