(* Integration tests over the experiment harness — including the paper's
   headline claims as assertions, on reduced budgets. *)

module Topology = Phi_net.Topology
module Cubic = Phi_tcp.Cubic
open Phi_experiments

let quick config = { config with Scenario.duration_s = 30. }

(* {2 Scenario runner} *)

let test_scenario_run_basics () =
  let r = Scenario.run (quick Scenario.low_utilization) in
  Alcotest.(check bool) "connections completed" true (r.Scenario.connections > 10);
  Alcotest.(check bool) "throughput positive" true (r.Scenario.throughput_bps > 0.);
  Alcotest.(check bool) "utilization sane" true
    (r.Scenario.utilization > 0.1 && r.Scenario.utilization <= 1.);
  Alcotest.(check bool) "power positive" true (r.Scenario.power > 0.)

let test_scenario_deterministic () =
  let a = Scenario.run (quick Scenario.low_utilization) in
  let b = Scenario.run (quick Scenario.low_utilization) in
  Alcotest.(check (float 0.)) "same throughput" a.Scenario.throughput_bps
    b.Scenario.throughput_bps;
  Alcotest.(check int) "same conns" a.Scenario.connections b.Scenario.connections

let test_scenario_seed_changes_outcome () =
  let a = Scenario.run (quick Scenario.low_utilization) in
  let b = Scenario.run { (quick Scenario.low_utilization) with Scenario.seed = 99 } in
  Alcotest.(check bool) "different" true
    (a.Scenario.throughput_bps <> b.Scenario.throughput_bps)

let test_scenario_load_ordering () =
  let low = Scenario.run (quick Scenario.low_utilization) in
  let high = Scenario.run (quick Scenario.high_utilization) in
  Alcotest.(check bool) "high load busier" true
    (high.Scenario.utilization > low.Scenario.utilization)

(* The paper's headline claim (Figure 2): tuned Cubic parameters beat the
   Table 1 defaults on the power metric. *)
let test_tuned_beats_default () =
  let config = { Scenario.high_utilization with Scenario.duration_s = 60. } in
  let default = Scenario.run_cubic ~params:Cubic.default_params config in
  let tuned =
    Scenario.run_cubic
      ~params:(Cubic.with_knobs ~initial_cwnd:8. ~initial_ssthresh:32. Cubic.default_params)
      config
  in
  Alcotest.(check bool) "tuned beats default on P_l" true
    (tuned.Scenario.power > default.Scenario.power);
  Alcotest.(check bool) "tuned has lower queueing delay" true
    (tuned.Scenario.queueing_delay_s < default.Scenario.queueing_delay_s)

let test_persistent_run () =
  let r =
    Scenario.run_persistent ~n_flows:20 ~duration_s:30. ~spec:Topology.paper_spec ~seed:1 ()
  in
  Alcotest.(check bool) "near saturation" true (r.Scenario.utilization > 0.9);
  Alcotest.(check int) "all flows reported" 20 (List.length r.Scenario.records)

(* Figure 2c's claim: with long-running flows, a larger beta drains the
   queue (lower queueing delay). *)
let test_beta_lowers_queueing_delay_for_long_flows () =
  let run beta =
    Scenario.run_persistent
      ~params:(Cubic.with_knobs ~beta Cubic.default_params)
      ~n_flows:20 ~duration_s:40. ~spec:Topology.paper_spec ~seed:2 ()
  in
  let small = run 0.1 and large = run 0.7 in
  Alcotest.(check bool) "larger beta, smaller queue" true
    (large.Scenario.queueing_delay_s < small.Scenario.queueing_delay_s)

(* The full practical pipeline (context server + policy + report hooks),
   asserted end-to-end: Phi clients beat blind defaults on P_l. *)
let test_phi_pipeline_improves_power () =
  let config = { Scenario.high_utilization with Scenario.duration_s = 60.; Scenario.seed = 7 } in
  let baseline = Scenario.run config in
  let client = ref None in
  let phi_run =
    Scenario.run
      ~observe:(fun engine dumbbell ->
        let server =
          Phi.Context_server.create engine
            ~capacity_bps:(Phi_net.Link.bandwidth_bps dumbbell.Phi_net.Topology.bottleneck)
            ()
        in
        client := Some (Phi.Phi_client.create ~server ~policy:(Phi.Policy.create ()) ~path:"p" ()))
      ~cc_factory:(fun _ () ->
        match !client with Some c -> Phi.Phi_client.factory c () | None -> assert false)
      ~on_conn_end:(fun stats ->
        match !client with Some c -> Phi.Phi_client.on_conn_end c stats | None -> ())
      config
  in
  Alcotest.(check bool) "phi pipeline beats defaults" true
    (phi_run.Scenario.power > baseline.Scenario.power)

(* Pretrained tables must preserve the Table 3 ordering on a modest
   budget: Remy comfortably above Cubic, Phi at least on par with Remy. *)
let test_pretrained_tables_ordering () =
  let config = { Scenario.table3 with Scenario.duration_s = 40. } in
  let rows = Table3.run ~seeds:[ 11; 12 ] config in
  let find name = List.find (fun (r : Table3.row) -> r.Table3.name = name) rows in
  let obj name = (find name).Table3.median_objective in
  Alcotest.(check bool) "remy beats cubic" true (obj "Remy" > obj "Cubic" +. 0.2);
  Alcotest.(check bool) "phi-ideal at least remy" true
    (obj "Remy-Phi-ideal" > obj "Remy" -. 0.05);
  Alcotest.(check bool) "phi-practical at least remy" true
    (obj "Remy-Phi-practical" > obj "Remy" -. 0.05)

(* {2 Sweep} *)

let tiny_grid = { Sweep.ssthresh = [ 16.; 65536. ]; init_w = [ 2.; 16. ]; beta = [ 0.2 ] }

let test_sweep_structure () =
  Alcotest.(check int) "paper grid size" 576 (List.length (Sweep.settings Sweep.paper_grid));
  Alcotest.(check int) "coarse grid size" 48 (List.length (Sweep.settings Sweep.coarse_grid));
  Alcotest.(check int) "beta grid size" 9 (List.length (Sweep.settings Sweep.beta_grid))

let test_sweep_runs_and_finds_optimum () =
  let sweep = Sweep.run (quick Scenario.high_utilization) tiny_grid ~seeds:[ 1; 2 ] in
  Alcotest.(check int) "4 points" 4 (List.length sweep.Sweep.points);
  let best = Sweep.optimal sweep in
  Alcotest.(check bool) "optimum at least default" true
    (best.Sweep.mean_power >= sweep.Sweep.default_point.Sweep.mean_power);
  List.iter
    (fun p -> Alcotest.(check int) "both seeds" 2 (Array.length p.Sweep.by_seed))
    sweep.Sweep.points

let test_validation_stability () =
  let sweep = Sweep.run (quick Scenario.high_utilization) tiny_grid ~seeds:[ 1; 2; 3 ] in
  let v = Sweep.validate sweep in
  (* Figure 3's claim: the leave-one-out ("common") setting retains most
     of the per-run optimal's advantage over the default. *)
  Alcotest.(check bool) "optimal >= common" true
    (v.Sweep.optimal_power >= v.Sweep.common_power -. 1e-9);
  Alcotest.(check bool) "common beats default" true
    (v.Sweep.common_power > v.Sweep.default_power)

(* {2 Byte-identical replay (golden)} *)

(* Hex-float ([%h]) captures of a reduced figure2a sweep, recorded from
   the pre-refactor event core (boxed binary heap, per-event closures,
   [Stdlib.Queue] links).  The allocation-free core must reproduce every
   output bit — the whole point of keeping exact IEEE division on the
   link and the (priority, seq) tie-break in the heap — and the domain
   pool must not perturb it either, so each config is checked at
   [jobs:1] and [jobs:4]. *)
let golden_grid = { Sweep.ssthresh = [ 2.; 64. ]; init_w = [ 2.; 16. ]; beta = [ 0.2 ] }

(* Rows: throughput, queueing delay, loss rate, power — grid points in
   settings order, then the default point. *)
let golden_low =
  [
    "0x1.821a1e6f50c64p+19 0x1.948393971b91ep-10 0x0p+0 0x1.4dc1a2a5e7926p+2";
    "0x1.727097236ba1ap+20 0x1.a41775bf1b893p-10 0x0p+0 0x1.403a6142fa516p+3";
    "0x1.18c340ab45612p+21 0x1.475caba53ba63p-7 0x0p+0 0x1.cc596fbb6f4ep+3";
    "0x1.92cb23a9f1ef1p+21 0x1.0300b574c94f7p-6 0x0p+0 0x1.3e839afa56ec4p+4";
    "0x1.2051aef0d00abp+21 0x1.aea1e5feb36d6p-5 0x0p+0 0x1.79fbb98405e8p+3";
  ]

let golden_high =
  [
    "0x1.890a01e8ae77ap+19 0x1.3a44206b27c68p-9 0x0p+0 0x1.51f34ce8c3a94p+2";
    "0x1.714922a983d06p+20 0x1.87e7fb1074d72p-9 0x0p+0 0x1.3c5d5007a718ep+3";
    "0x1.d3087e73925ap+20 0x1.dab746cf198a2p-5 0x0p+0 0x1.28687b6dcbddcp+3";
    "0x1.ede21cb2d21ap+20 0x1.ad0bd1b7857d3p-4 0x0p+0 0x1.fd460ecaa2c2ep+2";
    "0x1.93ac45b5116e6p+20 0x1.570557754442ap-3 0x1.a2c2a87c51cap-9 0x1.505d7c8401c56p+2";
  ]

let run_golden config jobs =
  let sweep = Sweep.run ~jobs config golden_grid ~seeds:[ 1; 2 ] in
  List.map
    (fun (p : Sweep.point) ->
      Printf.sprintf "%h %h %h %h" p.Sweep.mean_throughput_bps p.Sweep.mean_queueing_delay_s
        p.Sweep.mean_loss_rate p.Sweep.mean_power)
    (sweep.Sweep.points @ [ sweep.Sweep.default_point ])

let test_golden_low_utilization () =
  let config = { Scenario.low_utilization with Scenario.duration_s = 8. } in
  Alcotest.(check (list string)) "serial replay" golden_low (run_golden config 1);
  Alcotest.(check (list string)) "parallel replay" golden_low (run_golden config 4)

let test_golden_high_utilization () =
  let config = { Scenario.high_utilization with Scenario.duration_s = 12. } in
  Alcotest.(check (list string)) "serial replay" golden_high (run_golden config 1);
  Alcotest.(check (list string)) "parallel replay" golden_high (run_golden config 4)

(* Table 3 under the unified control plane, recorded from the dedicated
   Remy_sender transport immediately before its deletion.  The Remy
   migration onto the shared Phi_tcp.Sender (go-back-N recovery + whisker
   pacing as controller policy) must reproduce every output bit, and the
   pool fan-out over (variant, seed) cells must not perturb it.

   The practical row was re-recorded when the context server moved to
   epoch-batched commits: lookups now see reports coalesced at epoch
   granularity (and the ring-bucketed window), which shifts the
   context-driven variant by a fraction of a percent.  The other three
   rows do not consult reported context and must stay bit-identical. *)
let golden_table3 =
  [
    "Remy-Phi-practical 0x1.9fb2d999bf891p+20 0x1.ae5a6293bab4p-9 0x1.30f647304ceb8p+1 373 753";
    "Remy-Phi-ideal 0x1.a06e095998bc3p+20 0x1.cc04db805388p-10 0x1.31eaf78afd10bp+1 371 0";
    "Remy 0x1.8eb1d30ab60f2p+20 0x1.8c89320aeep-13 0x1.2e23aebe5e3b4p+1 368 0";
    "Cubic 0x1.49dae35e17cd7p+19 0x1.4d9b05b5bad4p-8 0x1.78ae6521f328ap+0 252 0";
  ]

let run_golden_table3 jobs =
  let config = { Scenario.table3 with Scenario.duration_s = 20. } in
  List.map
    (fun (r : Table3.row) ->
      Printf.sprintf "%s %h %h %h %d %d" r.Table3.name r.Table3.median_throughput_bps
        r.Table3.median_queueing_delay_s r.Table3.median_objective r.Table3.connections
        r.Table3.server_messages)
    (Table3.run ~jobs ~seeds:[ 1; 2 ] config)

let test_golden_table3 () =
  Alcotest.(check (list string)) "serial replay" golden_table3 (run_golden_table3 1);
  Alcotest.(check (list string)) "parallel replay" golden_table3 (run_golden_table3 4)

(* Figure 5 (outage detection + localization), recorded with the
   compiled decision plane in place.  The diagnosis pipeline consumes a
   deterministic workload trace, so the detection window, the z-score
   and drop magnitudes, the localization scope and both deficit shares
   must all replay bit-for-bit — and the [run_many] pool fan-out must
   not perturb any of it.  Seed 41 stays below the detection threshold
   (a short shallow dip, not localized); seed 42 is the paper's outage. *)
module Anomaly = Phi_diagnosis.Anomaly
module Localize = Phi_diagnosis.Localize
module Rs = Phi_workload.Request_stream

let golden_figure5 =
  [
    "event=862-867 z=-0x1.1b209e498a7e3p+2 drop=0x1.e71b0cd8edc9ap-7 loc=none ok=false \
     total=0x1.8a97b4p+24 affected=0x1.b74e6p+20 baseline=0x1.c5fed0000000ep+20";
    "event=2340-2460 z=-0x1.5e12e1dbcaf81p+3 drop=0x1.fbcea96015db6p-5 loc=london/as3320 \
     share=0x1.ed26ecdd4704bp-1 own=0x1.e55c5a20762b7p-1 ok=true total=0x1.8a7d6dp+24 \
     affected=0x1.b7a03p+20 baseline=0x1.c5c0efffffff4p+20";
  ]

let summarize_figure5 (r : Figure5.result) =
  let sum = Array.fold_left ( +. ) 0. in
  let event =
    match r.Figure5.events with
    | [] -> "none"
    | e :: _ ->
      Printf.sprintf "%d-%d z=%h drop=%h" e.Anomaly.start_min e.Anomaly.end_min e.Anomaly.min_z
        e.Anomaly.mean_drop
  in
  let where =
    match r.Figure5.localization with
    | None -> "none"
    | Some f ->
      Printf.sprintf "%s/%s share=%h own=%h"
        (Option.value ~default:"*" f.Localize.scope.Rs.metro)
        (Option.value ~default:"*" f.Localize.scope.Rs.isp)
        f.Localize.deficit_share f.Localize.own_drop
  in
  Printf.sprintf "event=%s loc=%s ok=%b total=%h affected=%h baseline=%h" event where
    (Figure5.correctly_localized r)
    (sum r.Figure5.total_series) (sum r.Figure5.affected_series)
    (sum r.Figure5.affected_baseline)

let run_golden_figure5 jobs =
  List.map summarize_figure5 (Figure5.run_many ~jobs ~seeds:[ 41; 42 ] ())

let test_golden_figure5 () =
  Alcotest.(check (list string)) "serial replay" golden_figure5 (run_golden_figure5 1);
  Alcotest.(check (list string)) "parallel replay" golden_figure5 (run_golden_figure5 4)

(* A reduced parking lot (3 islands, 22 senders, 2 s) on the parallel
   engine.  The fingerprint folds every link counter, boundary crossing,
   per-flow progress number and the engines' event counts; the committed
   string is the jobs-1 golden, and runs with 2 and 4 worker domains
   must reproduce it byte for byte — the conservative-window determinism
   contract, asserted end-to-end through real Cubic traffic. *)
let reduced_lot =
  { Parking_lot.default_spec with
    Parking_lot.segments = 3;
    local_pairs = 6;
    long_flows = 4;
    duration_s = 2.0;
  }

let golden_parking_lot = "senders=22 events=2769590 boundary=323 retx=9853 checksum=286945ac"

let test_parking_lot_partitioned_replay () =
  let fp jobs = (Parking_lot.run ~jobs ~spec:reduced_lot ()).Parking_lot.fingerprint in
  Alcotest.(check string) "serial golden" golden_parking_lot (fp 1);
  Alcotest.(check string) "2 domains replay the golden" golden_parking_lot (fp 2);
  Alcotest.(check string) "4 domains replay the golden" golden_parking_lot (fp 4)

let test_parking_lot_traffic_shape () =
  let r = Parking_lot.run ~jobs:2 ~spec:reduced_lot () in
  Alcotest.(check int) "three islands" 3 r.Parking_lot.islands;
  Alcotest.(check (float 0.)) "window = cut delay" reduced_lot.Parking_lot.cut_delay_s
    r.Parking_lot.window_s;
  Alcotest.(check bool) "long flows make progress" true (r.Parking_lot.long_goodput_bps > 0.);
  Alcotest.(check bool) "local flows make progress" true
    (r.Parking_lot.local_goodput_bps > r.Parking_lot.long_goodput_bps);
  Alcotest.(check bool) "traffic crossed the cuts" true (r.Parking_lot.boundary_packets > 0);
  Alcotest.(check int) "one stat per hop" 3 (Array.length r.Parking_lot.hop_stats);
  Array.iter
    (fun (h : Parking_lot.hop_stat) ->
      Alcotest.(check bool) "every hop carried packets" true (h.Parking_lot.delivered > 0))
    r.Parking_lot.hop_stats

(* {2 Algorithm registry (unified control plane)} *)

let test_registry_round_trip () =
  let names = Phi.Cc_algo.names in
  Alcotest.(check (list string)) "five registered algorithms"
    [ "cubic"; "reno"; "vegas"; "remy"; "remy-phi" ]
    names;
  List.iter
    (fun algo ->
      match Phi.Cc_algo.of_name (Phi.Cc_algo.name algo) with
      | Some a ->
        Alcotest.(check string)
          ("of_name round-trips " ^ Phi.Cc_algo.name algo)
          (Phi.Cc_algo.name algo) (Phi.Cc_algo.name a)
      | None -> Alcotest.fail ("of_name missed " ^ Phi.Cc_algo.name algo))
    Phi.Cc_algo.all;
  (* parse_cc is the --cc entry point: case-insensitive, trimmed. *)
  List.iter
    (fun n ->
      Alcotest.(check string) ("parse_cc accepts " ^ n) n
        (Phi.Cc_algo.name (Cc_select.parse_cc ("  " ^ String.uppercase_ascii n ^ " "))))
    names;
  let rejected = try ignore (Cc_select.parse_cc "bogus"); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unknown name rejected" true rejected

let test_cc_select_builds_every_algorithm () =
  let sel = Cc_select.create () in
  let build = Cc_select.builder sel in
  List.iter
    (fun algo ->
      let cc = build ~ctx:Phi.Context.empty algo in
      Alcotest.(check bool)
        (Phi.Cc_algo.name algo ^ " starts with a usable window")
        true
        (Float.is_finite cc.Phi_tcp.Cc.cwnd && cc.Phi_tcp.Cc.cwnd >= 1.))
    Phi.Cc_algo.all

let test_cc_matrix_covers_registry () =
  let cells = Cc_matrix.run ~jobs:2 ~duration_s:8. ~seeds:[ 1 ] () in
  Alcotest.(check int) "5 algorithms x 2 workloads" 10 (List.length cells);
  List.iter
    (fun name ->
      List.iter
        (fun workload ->
          match
            List.find_opt
              (fun (c : Cc_matrix.cell) ->
                c.Cc_matrix.algorithm = name && c.Cc_matrix.workload = workload)
              cells
          with
          | Some cell ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s ran connections" name workload)
              true (cell.Cc_matrix.connections > 0)
          | None -> Alcotest.fail (Printf.sprintf "missing cell %s/%s" name workload))
        [ "low"; "high" ])
    Phi.Cc_algo.names;
  (* Pool fan-out must not perturb the cells. *)
  let serial = Cc_matrix.run ~jobs:1 ~duration_s:8. ~seeds:[ 1 ] () in
  Alcotest.(check bool) "jobs-invariant" true
    (List.for_all2
       (fun (a : Cc_matrix.cell) (b : Cc_matrix.cell) ->
         a.Cc_matrix.algorithm = b.Cc_matrix.algorithm
         && a.Cc_matrix.workload = b.Cc_matrix.workload
         && Float.equal a.Cc_matrix.mean_throughput_bps b.Cc_matrix.mean_throughput_bps
         && Float.equal a.Cc_matrix.mean_power b.Cc_matrix.mean_power)
       cells serial)

(* {2 Incremental deployment (Figure 4)} *)

let test_incremental_modified_benefit () =
  let config = { (quick Scenario.low_utilization) with Scenario.duration_s = 60. } in
  let params = Cubic.with_knobs ~initial_cwnd:16. ~initial_ssthresh:64. Cubic.default_params in
  let r = Incremental.run ~params_modified:params config in
  Alcotest.(check bool) "both groups ran" true
    (r.Incremental.modified.Incremental.connections > 0
    && r.Incremental.unmodified.Incremental.connections > 0);
  (* The paper's Figure 4: modified senders see a better power metric. *)
  Alcotest.(check bool) "modified senders benefit" true
    (r.Incremental.modified.Incremental.power > r.Incremental.unmodified.Incremental.power)

let test_incremental_fraction_extremes () =
  let config = quick Scenario.low_utilization in
  let params = Cubic.default_params in
  let r0 = Incremental.run ~fraction_modified:0. ~params_modified:params config in
  Alcotest.(check int) "nobody modified" 0 r0.Incremental.modified.Incremental.connections;
  let r1 = Incremental.run ~fraction_modified:1. ~params_modified:params config in
  Alcotest.(check int) "nobody unmodified" 0 r1.Incremental.unmodified.Incremental.connections

(* {2 Table 3 (reduced budget)} *)

let test_table3_rows_and_overhead () =
  let config = { Scenario.table3 with Scenario.duration_s = 20. } in
  let rows = Table3.run ~seeds:[ 1 ] config in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  let names = List.map (fun r -> r.Table3.name) rows in
  Alcotest.(check (list string)) "paper order"
    [ "Remy-Phi-practical"; "Remy-Phi-ideal"; "Remy"; "Cubic" ]
    names;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Table3.name ^ " has connections")
        true (r.Table3.connections > 0))
    rows;
  let practical = List.hd rows in
  (* Minimal overhead: two messages per completed connection, plus the
     lone lookup of each connection still in flight when the run ends. *)
  Alcotest.(check bool) "about 2 messages per connection" true
    (practical.Table3.server_messages >= 2 * practical.Table3.connections
    && practical.Table3.server_messages <= (2 * practical.Table3.connections) + 16)

(* {2 Sharing (Section 2.1)} *)

let test_sharing_experiment_shape () =
  let config =
    { Phi_workload.Cloud_trace.default_config with
      Phi_workload.Cloud_trace.flows_per_minute = 5000.;
      horizon_minutes = 5;
      n_subnets = 2000;
    }
  in
  let r = Sharing_experiment.run ~config ~seed:1 () in
  Alcotest.(check bool) "sampling observes a subset" true
    (r.Sharing_experiment.sampled_flows < r.Sharing_experiment.total_flows);
  let frac k = List.assoc k r.Sharing_experiment.ccdf in
  Alcotest.(check bool) "many flows share with >= 5" true (frac 5 > 0.2);
  Alcotest.(check bool) "ccdf decreasing" true (frac 5 >= frac 100)

(* The WAN matrix: algorithm x topology x dynamics cells, constructed
   from name tuples inside pool workers, jobs-invariant. *)
let test_wan_matrix_structure_and_jobs_invariance () =
  let algorithms = [ List.hd Phi.Cc_algo.all ] in
  let run jobs =
    Cc_matrix.run_matrix ~jobs ~algorithms ~duration_s:6. ~seeds:[ 1 ] ()
  in
  let cells = run 4 in
  Alcotest.(check int) "1 algorithm x 3 topologies x 3 regimes" 9 (List.length cells);
  List.iter
    (fun (c : Cc_matrix.matrix_cell) ->
      let cell = Printf.sprintf "%s/%s/%s" c.Cc_matrix.m_algorithm c.Cc_matrix.m_topology c.Cc_matrix.m_dynamics in
      Alcotest.(check bool) (cell ^ ": connections") true (c.Cc_matrix.m_connections > 0);
      Alcotest.(check bool) (cell ^ ": jain in (0,1]") true
        (c.Cc_matrix.m_jain > 0. && c.Cc_matrix.m_jain <= 1.);
      Alcotest.(check bool) (cell ^ ": p99 fct sane") true
        (c.Cc_matrix.m_p99_fct_s > 0. && c.Cc_matrix.m_p99_fct_s <= 6.);
      Alcotest.(check bool) (cell ^ ": pareto point") true
        (c.Cc_matrix.m_throughput_bps > 0. && c.Cc_matrix.m_delay_s > 0.))
    cells;
  let serial = run 1 in
  Alcotest.(check bool) "jobs-invariant" true
    (List.for_all2
       (fun (a : Cc_matrix.matrix_cell) (b : Cc_matrix.matrix_cell) ->
         a.Cc_matrix.m_topology = b.Cc_matrix.m_topology
         && a.Cc_matrix.m_dynamics = b.Cc_matrix.m_dynamics
         && Float.equal a.Cc_matrix.m_throughput_bps b.Cc_matrix.m_throughput_bps
         && Float.equal a.Cc_matrix.m_jain b.Cc_matrix.m_jain
         && Float.equal a.Cc_matrix.m_p99_fct_s b.Cc_matrix.m_p99_fct_s
         && Float.equal a.Cc_matrix.m_power b.Cc_matrix.m_power)
       cells serial);
  Alcotest.check_raises "unknown topology fails fast"
    (Invalid_argument "Zoo.by_name: unknown topology \"ring\"") (fun () ->
      ignore (Cc_matrix.run_matrix ~topologies:[ "ring" ] ~seeds:[ 1 ] ()))

(* {2 The generalized scenario plane (run_zoo)} *)

(* Every topology x dynamics x AQM corner produces a sane cell: this is
   the routing smoke test for the zoo (incast and flash-crowd transport
   must deliver on every topology, including the parking lot's
   directional chain). *)
let test_run_zoo_matrix_smoke () =
  List.iter
    (fun topology ->
      List.iter
        (fun regime ->
          let zoo = Topology.Zoo.by_name topology in
          let cell = Printf.sprintf "%s/%s" topology regime in
          let r =
            Scenario.run_zoo
              ~dynamics:(Dynamics.by_name regime)
              ~aqm:(if regime = "steady" then Scenario.Red_ecn else Scenario.Drop_tail)
              ~duration_s:6. ~seed:3 zoo
          in
          Alcotest.(check bool) (cell ^ ": connections completed") true (r.Scenario.z_connections > 0);
          Alcotest.(check bool) (cell ^ ": throughput positive") true (r.Scenario.z_throughput_bps > 0.);
          Alcotest.(check bool) (cell ^ ": jain in (0,1]") true
            (r.Scenario.z_jain > 0. && r.Scenario.z_jain <= 1.);
          Alcotest.(check bool) (cell ^ ": p99 fct sane") true
            (r.Scenario.z_p99_fct_s > 0. && r.Scenario.z_p99_fct_s <= 6.);
          Alcotest.(check bool) (cell ^ ": loss rate in [0,1]") true
            (r.Scenario.z_loss_rate >= 0. && r.Scenario.z_loss_rate <= 1.);
          Alcotest.(check bool) (cell ^ ": utilization in [0,1]") true
            (r.Scenario.z_utilization >= 0. && r.Scenario.z_utilization <= 1.);
          Alcotest.(check bool) (cell ^ ": power non-negative") true (r.Scenario.z_power >= 0.);
          Alcotest.(check bool) (cell ^ ": delay covers base rtt") true
            (r.Scenario.z_delay_s >= r.Scenario.z_queueing_delay_s))
        Dynamics.names)
    Topology.Zoo.names

(* A cell is a pure function of its parameters: replaying one gives
   bit-identical floats even under scripted dynamics. *)
let test_run_zoo_deterministic () =
  let cell () =
    Scenario.run_zoo ~dynamics:Dynamics.default_flap ~aqm:Scenario.Red ~duration_s:8. ~seed:11
      (Topology.Zoo.wan ())
  in
  let a = cell () and b = cell () in
  let same name f = Alcotest.(check string) name (Printf.sprintf "%h" (f a)) (Printf.sprintf "%h" (f b)) in
  same "throughput" (fun r -> r.Scenario.z_throughput_bps);
  same "queueing delay" (fun r -> r.Scenario.z_queueing_delay_s);
  same "jain" (fun r -> r.Scenario.z_jain);
  same "p99 fct" (fun r -> r.Scenario.z_p99_fct_s);
  same "power" (fun r -> r.Scenario.z_power);
  Alcotest.(check int) "connections" a.Scenario.z_connections b.Scenario.z_connections

(* The regimes bite: a flash crowd completes more connections than the
   steady baseline, and scripted dynamics perturb the trajectory. *)
let test_run_zoo_dynamics_bite () =
  let run dynamics =
    Scenario.run_zoo ~dynamics ~duration_s:10. ~seed:5 (Topology.Zoo.dumbbell ())
  in
  let steady = run Dynamics.steady in
  let crowd = run Dynamics.default_flash_crowd in
  let extra_records =
    List.filter
      (fun r -> r.Phi_tcp.Flow.source_index >= crowd.Scenario.z_flows)
      crowd.Scenario.z_records
  in
  Alcotest.(check bool) "flash crowd sources complete connections" true
    (List.length extra_records > 0);
  Alcotest.(check bool) "no crowd connection starts before the scripted instant" true
    (List.for_all (fun r -> r.Phi_tcp.Flow.started_at >= 5.) extra_records);
  let jitter = run Dynamics.default_jitter in
  Alcotest.(check bool) "jitter perturbs the run" true
    (jitter.Scenario.z_throughput_bps <> steady.Scenario.z_throughput_bps);
  let flap = run Dynamics.default_flap in
  Alcotest.(check bool) "flap perturbs the run" true
    (flap.Scenario.z_throughput_bps <> steady.Scenario.z_throughput_bps)

let test_dynamics_registry () =
  List.iter
    (fun n -> Alcotest.(check string) n n (Dynamics.name (Dynamics.by_name n)))
    Dynamics.names;
  List.iter
    (fun n -> Alcotest.(check string) n n (Scenario.aqm_name (Scenario.aqm_by_name n)))
    Scenario.aqm_names;
  Alcotest.check_raises "unknown regime"
    (Invalid_argument "Dynamics.by_name: unknown regime \"nope\"") (fun () ->
      ignore (Dynamics.by_name "nope"))

(* {2 Priority (Section 3.3)} *)

let test_priority_differentiation_and_friendliness () =
  let r = Priority_experiment.run ~spec:Topology.paper_spec ~seed:1 () in
  (match r.Priority_experiment.entity_flows with
  | { Priority_experiment.throughput_bps = hd_thr; _ } :: rest ->
    let bulk_mean =
      Phi_util.Stats.mean
        (Array.of_list (List.map (fun f -> f.Priority_experiment.throughput_bps) rest))
    in
    Alcotest.(check bool) "HD flow gets a multiple of bulk" true (hd_thr > 2. *. bulk_mean)
  | [] -> Alcotest.fail "no entity flows");
  (* Ensemble friendliness: within 30% of what k standard flows get. *)
  let ratio =
    r.Priority_experiment.entity_aggregate_bps /. r.Priority_experiment.reference_aggregate_bps
  in
  Alcotest.(check bool) "ensemble tcp-friendly" true (ratio > 0.7 && ratio < 1.3)

(* {2 Prediction and adaptation} *)

let test_predict_experiment_beats_global () =
  let r = Predict_experiment.run ~seed:1 () in
  Alcotest.(check bool) "hierarchical beats global baseline" true
    (r.Predict_experiment.hierarchical_mape < r.Predict_experiment.global_mape);
  Alcotest.(check bool) "mos examples ordered" true
    (match r.Predict_experiment.example_mos with
    | (_, good) :: (_, mid) :: (_, bad) :: _ -> good > mid && mid > bad
    | _ -> false)

let test_adaptation_experiment () =
  let r = Adaptation_experiment.run ~seed:1 () in
  let j = r.Adaptation_experiment.jitter in
  Alcotest.(check bool) "informed buffer smaller" true
    (j.Adaptation_experiment.buffer_saving_ms > 0.);
  Alcotest.(check bool) "late rate still low" true
    (j.Adaptation_experiment.informed_late_fraction < 0.08);
  let d = r.Adaptation_experiment.dupack in
  Alcotest.(check bool) "threshold raised" true
    (d.Adaptation_experiment.recommended_threshold > 3);
  Alcotest.(check bool) "fewer spurious retransmits" true
    (d.Adaptation_experiment.informed_spurious_fraction
    < d.Adaptation_experiment.standard_spurious_fraction)

let suite =
  [
    ("scenario run basics", `Quick, test_scenario_run_basics);
    ("scenario deterministic", `Quick, test_scenario_deterministic);
    ("scenario seed sensitivity", `Quick, test_scenario_seed_changes_outcome);
    ("scenario load ordering", `Quick, test_scenario_load_ordering);
    ("tuned beats default (headline)", `Slow, test_tuned_beats_default);
    ("persistent run", `Quick, test_persistent_run);
    ("beta drains queue (fig 2c)", `Slow, test_beta_lowers_queueing_delay_for_long_flows);
    ("phi pipeline beats defaults", `Slow, test_phi_pipeline_improves_power);
    ("pretrained table ordering", `Slow, test_pretrained_tables_ordering);
    ("sweep structure", `Quick, test_sweep_structure);
    ("sweep finds optimum", `Slow, test_sweep_runs_and_finds_optimum);
    ("validation stability (fig 3)", `Slow, test_validation_stability);
    ("golden replay low (bit-exact)", `Slow, test_golden_low_utilization);
    ("golden replay high (bit-exact)", `Slow, test_golden_high_utilization);
    ("golden replay table 3 (bit-exact)", `Slow, test_golden_table3);
    ("golden replay figure 5 (bit-exact)", `Slow, test_golden_figure5);
    ("parking lot partitioned replay (bit-exact)", `Slow, test_parking_lot_partitioned_replay);
    ("parking lot traffic shape", `Slow, test_parking_lot_traffic_shape);
    ("registry round trip and parse_cc", `Quick, test_registry_round_trip);
    ("cc_select builds every algorithm", `Quick, test_cc_select_builds_every_algorithm);
    ("cc matrix covers registry", `Slow, test_cc_matrix_covers_registry);
    ("wan matrix structure and jobs invariance", `Slow, test_wan_matrix_structure_and_jobs_invariance);
    ("incremental benefit (fig 4)", `Slow, test_incremental_modified_benefit);
    ("incremental extremes", `Quick, test_incremental_fraction_extremes);
    ("table 3 rows and overhead", `Slow, test_table3_rows_and_overhead);
    ("run_zoo matrix smoke (all cells)", `Slow, test_run_zoo_matrix_smoke);
    ("run_zoo deterministic", `Slow, test_run_zoo_deterministic);
    ("run_zoo dynamics bite", `Slow, test_run_zoo_dynamics_bite);
    ("dynamics and aqm registries", `Quick, test_dynamics_registry);
    ("sharing experiment (s2.1)", `Quick, test_sharing_experiment_shape);
    ("priority differentiation (s3.3)", `Slow, test_priority_differentiation_and_friendliness);
    ("prediction beats global (s3.5)", `Quick, test_predict_experiment_beats_global);
    ("adaptation informed (s3.2)", `Quick, test_adaptation_experiment);
  ]
