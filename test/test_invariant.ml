(* Tests for the PHI_SANITIZE invariant sanitizer: each hook is driven
   with deliberately broken input and must record the advertised rule
   name; a healthy end-to-end transfer must record nothing. *)

module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant
module Topology = Phi_net.Topology
module Packet = Phi_net.Packet
open Phi_tcp

let rules_of violations = List.map (fun v -> v.Invariant.rule) violations

let check_rules msg expected violations =
  Alcotest.(check (list string)) msg expected (rules_of violations)

(* {2 Engine scheduling anomalies} *)

let test_negative_delay_recorded () =
  let fired_at = ref nan in
  let (), vs =
    Invariant.with_capture (fun () ->
        let engine = Engine.create () in
        ignore (Engine.schedule_after engine ~delay:1. (fun () -> ()));
        Engine.run engine ~until:5.;
        ignore
          (Engine.schedule_after engine ~delay:(-0.5) (fun () ->
               fired_at := Engine.now engine));
        Engine.run engine)
  in
  check_rules "rule" [ "negative-delay" ] vs;
  (* The delay is clamped to zero: the event fires at the clock, not in
     the past. *)
  Alcotest.(check (float 1e-9)) "clamped to now" 5. !fired_at

let test_nonfinite_time_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let engine = Engine.create () in
        ignore (Engine.schedule_at engine ~time:nan (fun () -> ()));
        Engine.run engine)
  in
  check_rules "rule" [ "non-finite-time" ] vs

let test_time_in_past_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let engine = Engine.create () in
        ignore (Engine.schedule_after engine ~delay:2. (fun () -> ()));
        Engine.run engine;
        ignore (Engine.schedule_at engine ~time:1. (fun () -> ()));
        Engine.run engine)
  in
  check_rules "rule" [ "time-in-past" ] vs

(* {2 Context-server metric sanitization} *)

let server () =
  let engine = Engine.create () in
  (engine, Phi.Context_server.create engine ~capacity_bps:1e7 ())

let test_nan_metric_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let _engine, srv = server () in
        Phi.Context_server.report srv ~path:"p" ~bytes:1000 ~duration_s:1. ~min_rtt:nan
          ~mean_rtt:0.05 ~retransmitted:0 ~segments:10)
  in
  check_rules "mixed NaN rtt pair" [ "metric-finite" ] vs

let test_both_nan_rtt_is_clean () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let _engine, srv = server () in
        (* Both RTTs NaN is the legitimate "no samples" sentinel. *)
        Phi.Context_server.report srv ~path:"p" ~bytes:1000 ~duration_s:1. ~min_rtt:nan
          ~mean_rtt:nan ~retransmitted:0 ~segments:10)
  in
  check_rules "no violation" [] vs

let test_negative_bytes_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let _engine, srv = server () in
        Phi.Context_server.report srv ~path:"p" ~bytes:(-1) ~duration_s:1. ~min_rtt:0.1
          ~mean_rtt:0.12 ~retransmitted:0 ~segments:10)
  in
  check_rules "negative bytes" [ "metric-range" ] vs

let test_oracle_nan_recorded_and_clamped () =
  let utilization, vs =
    Invariant.with_capture (fun () ->
        let _engine, srv = server () in
        Phi.Context_server.set_oracle srv ~path:"p" (fun () -> nan);
        (Phi.Context_server.peek srv ~path:"p").Phi.Context.utilization)
  in
  check_rules "oracle NaN" [ "metric-finite" ] vs;
  Alcotest.(check (float 0.)) "clamped to 0" 0. utilization

(* {2 Connection-stats sanitization} *)

let test_flow_sanitize_mean_below_min () =
  let stats =
    {
      Flow.flow = 7;
      source_index = 0;
      started_at = 0.;
      finished_at = 1.;
      bytes = 1000;
      segments = 10;
      retransmitted_segments = 0;
      timeouts = 0;
      rtt_samples = 5;
      min_rtt = 0.2;
      mean_rtt = 0.1;
    }
  in
  let (), vs = Invariant.with_capture (fun () -> Flow.sanitize stats) in
  check_rules "mean below min" [ "metric-range" ] vs

let test_flow_sanitize_negative_counter () =
  let stats =
    {
      Flow.flow = 7;
      source_index = 0;
      started_at = 1.;
      finished_at = 0.5;
      bytes = -1;
      segments = 10;
      retransmitted_segments = 0;
      timeouts = 0;
      rtt_samples = 0;
      min_rtt = nan;
      mean_rtt = nan;
    }
  in
  let (), vs = Invariant.with_capture (fun () -> Flow.sanitize stats) in
  check_rules "finished before start + negative bytes" [ "conn-stats"; "conn-stats" ] vs

(* {2 Congestion-window bound} *)

let cwnd_fixture () =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
  let _receiver =
    Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0
  in
  let cc = Cubic.make Cubic.default_params in
  let sender =
    Sender.create engine
      ~node:dumbbell.Topology.senders.(0)
      ~flow:0
      ~dst:(Topology.receiver_id dumbbell 0)
      ~cc ~total_segments:50 ()
  in
  (engine, cc, sender)

let test_cwnd_nan_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let _engine, cc, sender = cwnd_fixture () in
        cc.Cc.cwnd <- nan;
        Sender.start sender)
  in
  Alcotest.(check bool) "cwnd-bound recorded" true (List.mem "cwnd-bound" (rules_of vs))

let test_cwnd_above_bound_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let _engine, cc, sender = cwnd_fixture () in
        Sender.set_cwnd_bound sender 8.;
        cc.Cc.cwnd <- 50.;
        Sender.start sender)
  in
  Alcotest.(check bool) "cwnd-bound recorded" true (List.mem "cwnd-bound" (rules_of vs))

let test_cwnd_bound_rejects_sub_packet () =
  let _engine, _cc, sender = cwnd_fixture () in
  let raised =
    try
      Sender.set_cwnd_bound sender 0.5;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bound < 1 rejected" true raised

(* {2 Packet-pool generation stamps} *)

let test_packet_double_release_recorded () =
  let in_use, vs =
    Invariant.with_capture (fun () ->
        let pool = Packet.create_pool () in
        let h = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:3 ~now:0. ~retransmit:false in
        Packet.release pool h;
        (* Armed, the second release is recorded rather than raised so the
           simulation can keep running under PHI_SANITIZE=1. *)
        Packet.release pool h;
        Packet.in_use pool)
  in
  check_rules "double release recorded" [ "packet-double-release" ] vs;
  Alcotest.(check int) "free list not corrupted" 0 in_use

let test_packet_stale_handle_recorded () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let pool = Packet.create_pool () in
        let h = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:3 ~now:0. ~retransmit:false in
        Packet.release pool h;
        (* The cell's generation was bumped on release, so any accessor
           through the old handle trips the stamp check. *)
        ignore (Packet.seq pool h))
  in
  check_rules "stale access recorded" [ "packet-stale-handle" ] vs

let test_packet_recycled_handle_is_clean () =
  let (), vs =
    Invariant.with_capture (fun () ->
        let pool = Packet.create_pool () in
        let a = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:1 ~now:0. ~retransmit:false in
        Packet.release pool a;
        (* Re-acquiring the same cell mints a fresh generation: accesses
           through the new handle are legitimate and record nothing. *)
        let b = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:2 ~now:0. ~retransmit:false in
        Alcotest.(check int) "cell reinitialized" 2 (Packet.seq pool b);
        Packet.release pool b)
  in
  check_rules "recycled handle is clean" [] vs

(* {2 Healthy runs stay clean} *)

let test_healthy_transfer_records_nothing () =
  let completed, vs =
    Invariant.with_capture (fun () ->
        let engine, _cc, sender = cwnd_fixture () in
        Sender.start sender;
        Engine.run engine;
        Sender.completed sender)
  in
  Alcotest.(check bool) "transfer completed" true completed;
  check_rules "no violations on healthy run" [] vs

(* {2 Accumulator mechanics} *)

let test_with_capture_isolates_and_restores () =
  let before_enabled = Invariant.enabled () in
  let before_count = Invariant.count () in
  let (), vs =
    Invariant.with_capture (fun () ->
        Invariant.record ~rule:"test-rule" ~time:1. "inside capture")
  in
  check_rules "captured" [ "test-rule" ] vs;
  Alcotest.(check bool) "enabled restored" before_enabled (Invariant.enabled ());
  Alcotest.(check int) "outer accumulator untouched" before_count (Invariant.count ())

let test_report_lists_rules () =
  let report, vs =
    Invariant.with_capture (fun () ->
        Invariant.record ~rule:"test-rule" ~time:2.5 "something broke";
        Invariant.report ())
  in
  check_rules "one violation" [ "test-rule" ] vs;
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n > 0 && go 0
  in
  Alcotest.(check bool) "report names the rule" true (contains ~needle:"test-rule" report)

let test_disabled_record_is_noop () =
  let prev = Invariant.enabled () in
  Invariant.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Invariant.set_enabled prev)
    (fun () ->
      let before = Invariant.count () in
      Invariant.record ~rule:"test-rule" ~time:0. "should be dropped";
      Alcotest.(check int) "nothing recorded" before (Invariant.count ()))

let suite =
  [
    Alcotest.test_case "negative delay recorded and clamped" `Quick
      test_negative_delay_recorded;
    Alcotest.test_case "non-finite time recorded" `Quick test_nonfinite_time_recorded;
    Alcotest.test_case "time in past recorded" `Quick test_time_in_past_recorded;
    Alcotest.test_case "NaN metric recorded" `Quick test_nan_metric_recorded;
    Alcotest.test_case "both-NaN rtt pair is clean" `Quick test_both_nan_rtt_is_clean;
    Alcotest.test_case "negative bytes recorded" `Quick test_negative_bytes_recorded;
    Alcotest.test_case "NaN oracle recorded and clamped" `Quick
      test_oracle_nan_recorded_and_clamped;
    Alcotest.test_case "flow stats: mean rtt below min" `Quick
      test_flow_sanitize_mean_below_min;
    Alcotest.test_case "flow stats: negative counters" `Quick
      test_flow_sanitize_negative_counter;
    Alcotest.test_case "NaN cwnd recorded" `Quick test_cwnd_nan_recorded;
    Alcotest.test_case "cwnd above bound recorded" `Quick test_cwnd_above_bound_recorded;
    Alcotest.test_case "sub-packet bound rejected" `Quick test_cwnd_bound_rejects_sub_packet;
    Alcotest.test_case "packet double release recorded" `Quick
      test_packet_double_release_recorded;
    Alcotest.test_case "packet stale handle recorded" `Quick
      test_packet_stale_handle_recorded;
    Alcotest.test_case "recycled packet handle is clean" `Quick
      test_packet_recycled_handle_is_clean;
    Alcotest.test_case "healthy transfer records nothing" `Quick
      test_healthy_transfer_records_nothing;
    Alcotest.test_case "with_capture isolates and restores" `Quick
      test_with_capture_isolates_and_restores;
    Alcotest.test_case "report names the rule" `Quick test_report_lists_rules;
    Alcotest.test_case "record is a no-op when disabled" `Quick test_disabled_record_is_noop;
  ]
